// Command longexpd is the Long Exposure fine-tuning and serving daemon: it
// serves the job API (internal/serve) over a scheduler and bounded worker
// pool (internal/jobs), and — with a registry directory — the inference
// gateway: completed fine-tuning jobs are auto-published as adapter
// artifacts and served with KV-cached, continuously-batched generation on
// a shared frozen base.
//
// The daemon ships its own observability and traffic-control plane:
// -metrics (default on) instruments every subsystem — training steps,
// decode batches, job queues, caches, per-layer sparsity, per-route HTTP
// — and serves Prometheus text format at GET /metrics; -rate-limit /
// -global-rate-limit / -tenant-header add token-bucket rate limiting and
// -max-inflight adds load-shedding admission control (429 + Retry-After)
// on POST /v1/generate and POST /v1/jobs. GET /healthz stays a pure
// liveness probe; GET /readyz reports 503 while draining or shedding.
//
// Usage:
//
//	longexpd -addr :8080 -workers 4 -cache 128 -registry adapters \
//	  -rate-limit 5 -max-inflight 8 -tenant-header X-API-Key
//
//	# submit a fine-tune job (its adapter publishes on completion)
//	curl -s localhost:8080/v1/jobs -d '{"kind":"finetune","finetune":{"method":"lora","steps":8}}'
//	# follow its progress
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	# list published adapters, then stream tokens from one
//	curl -s localhost:8080/v1/adapters
//	curl -N localhost:8080/v1/generate -d '{"adapter":"ad-…","prompt":[11,12,13],"max_tokens":16}'
//	# run a paper experiment
//	curl -s localhost:8080/v1/jobs -d '{"kind":"experiment","experiment":{"id":"fig4"}}'
//	# cancel
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// The tracing, logging, and profiling plane: every request gets a
// sampled span timeline (tune with -trace-sample / -trace-buffer /
// -trace-slowest) served as JSON span trees at GET /debug/traces;
// -log-level / -log-format configure log/slog structured logging with
// trace and span ids on every record; -pprof (off by default) mounts
// net/http/pprof at GET /debug/pprof/; -sse-keepalive emits comment
// frames on idle SSE streams so proxies don't reap them.
//
// The SLO plane: -slo-config (a JSON file, or "default" for the
// built-in objectives) starts a burn-rate alerting engine over the live
// metrics — Google-SRE multi-window multi-burn-rate rules per objective,
// lexp_slo_* gauges, GET /debug/slo error-budget reports, and a
// GET /v1/alerts SSE stream of pending/firing/resolved transitions.
// /readyz also reports 503 "slo_firing" while a critical objective
// fires. -flight-recorder-dir arms the black-box flight recorder: alert
// transitions, recent slog records, span trees and per-tick metric
// deltas are kept in fixed-size rings, served at
// GET /debug/flightrecorder, and dumped atomically to disk when an
// alert starts firing, on SIGQUIT, and on panic. -slo-interval,
// -slo-for, -slo-fast-windows and -slo-slow-windows override the
// evaluation cadence and alert windows without a config file.
//
// The accounting plane: every completed generate request and terminal
// job becomes one wide event — tenant, route, adapter, trace id, outcome,
// and the full resource vector (tokens, decode steps, dense-equivalent vs
// executed FLOPs and the sparsity saving, peak KV footprint, arena bytes,
// queue/phase durations) — served with filters and rollups at
// GET /debug/events and as per-tenant cumulative usage at GET /v1/usage
// (-usage-api). -account-dir persists events to a crash-tolerant
// segmented binary log replayed on startup; -account-retention ages
// sealed segments out.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains queued and
// running jobs, bounded by -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/jobs"
	"longexposure/internal/limit"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
	"longexposure/internal/slo"
	"longexposure/internal/trace"
)

// version is stamped by the build (-ldflags "-X main.version=v1.2.3");
// obs.Build falls back to VCS metadata when it is left at "dev".
var version = "dev"

// fatal reports a startup error and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "longexpd:", err)
	os.Exit(1)
}

// parseWindowPair parses "short,long" duration pairs for the
// -slo-fast-windows / -slo-slow-windows overrides.
func parseWindowPair(flagName, s string) (short, long slo.Duration, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%s: want \"short,long\" (e.g. \"5m,1h\"), got %q", flagName, s)
	}
	sd, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", flagName, err)
	}
	ld, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %w", flagName, err)
	}
	return slo.Duration(sd), slo.Duration(ld), nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent job executions")
		cache    = flag.Int("cache", 64, "result cache capacity (entries)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for draining jobs")
		regDir   = flag.String("registry", "adapters", "adapter registry directory; empty disables publishing and serving")
		maxBatch = flag.Int("max-batch", 4, "concurrent sequences per decode step in the generation engine")

		metrics      = flag.Bool("metrics", true, "instrument all subsystems and expose Prometheus text format at GET /metrics")
		rateLimit    = flag.Float64("rate-limit", 0, "per-tenant request rate (req/s) on /v1/generate and POST /v1/jobs; 0 disables rate limiting")
		globalRate   = flag.Float64("global-rate-limit", 0, "global request rate (req/s) across all tenants; 0 disables the global tier")
		tenantHeader = flag.String("tenant-header", "X-API-Key", "request header identifying the tenant for per-tenant rate limiting")
		maxInflight  = flag.Int("max-inflight", 0, "admission-control concurrency cap per guarded endpoint; 0 disables load shedding")
		maxWait      = flag.Int("max-wait", 8, "bounded admission wait queue per guarded endpoint (with -max-inflight)")

		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		traceSample  = flag.Float64("trace-sample", 1, "fraction of requests to trace (0 disables tracing)")
		traceBuffer  = flag.Int("trace-buffer", 4096, "span ring-buffer capacity behind GET /debug/traces")
		traceSlowest = flag.Int("trace-slowest", 32, "slowest spans retained for GET /debug/traces; negative disables")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof at GET /debug/pprof/")
		sseKeepalive = flag.Duration("sse-keepalive", 15*time.Second, "idle SSE keepalive comment interval; 0 disables")

		sloConfig   = flag.String("slo-config", "", `SLO objectives: a JSON config path, or "default" for the built-in objectives; empty disables the SLO engine`)
		sloInterval = flag.Duration("slo-interval", 0, "override the SLO evaluation interval (0 keeps the config value)")
		sloFor      = flag.Duration("slo-for", 0, "override how long a burn-rate violation must hold before an alert fires (0 keeps the config value)")
		sloFast     = flag.String("slo-fast-windows", "", `override the fast-burn alert windows as "short,long" (e.g. "5m,1h")`)
		sloSlow     = flag.String("slo-slow-windows", "", `override the slow-burn alert windows as "short,long" (e.g. "30m,6h")`)
		flightDir   = flag.String("flight-recorder-dir", "", "directory for flight-recorder dumps (alert-firing, SIGQUIT, panic); empty keeps the black box in memory only")

		accountDir       = flag.String("account-dir", "", "directory for the wide-event accounting log; empty keeps accounting in memory only")
		accountRetention = flag.Duration("account-retention", 0, "prune sealed accounting segments older than this age; 0 keeps them until the size budget evicts them")
		usageAPI         = flag.Bool("usage-api", true, "mount GET /v1/usage (per-tenant usage rollups) alongside GET /debug/events")

		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		b := obs.Build(version)
		fmt.Printf("longexpd %s (commit %s, %s)\n", b.Version, b.Commit, b.GoVersion)
		return
	}

	logger := trace.NewLogger(os.Stderr, *logLevel, *logFormat)

	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			SampleRatio: *traceSample,
			Capacity:    *traceBuffer,
			SlowestN:    *traceSlowest,
		})
	}

	// The flight recorder tees every slog record into its ring, so it
	// wraps the logger before any subsystem takes a reference. It exists
	// whenever the SLO engine does (dir-less recorders still serve
	// GET /debug/flightrecorder); a dump directory arms dumps-to-disk.
	var recorder *slo.Recorder
	if *sloConfig != "" {
		recorder = slo.NewRecorder(slo.RecorderConfig{Dir: *flightDir}, tracer)
		logger = slog.New(recorder.LogHandler(logger.Handler()))
		defer recorder.HandlePanic()
	}
	slog.SetDefault(logger)

	jcfg := jobs.Config{Workers: *workers, CacheSize: *cache, Logger: logger}
	var opts []serve.Option
	opts = append(opts, serve.WithLogger(logger))
	if *sseKeepalive > 0 {
		opts = append(opts, serve.WithSSEKeepalive(*sseKeepalive))
	}
	if *pprofFlag {
		opts = append(opts, serve.WithPprof())
	}
	if tracer != nil {
		jcfg.Tracer = tracer
		opts = append(opts, serve.WithTracing(tracer))
	}
	var obsReg *obs.Registry
	if *metrics {
		obsReg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(obsReg)
		obs.RegisterBuildInfo(obsReg, version)
		jcfg.Obs = obsReg
		opts = append(opts, serve.WithMetrics(obsReg))
	}
	// The accounting plane is always on: the in-memory ring and
	// GET /debug/events cost nothing when idle; -account-dir additionally
	// persists every event to a crash-tolerant segmented log (replayed on
	// startup, so usage rollups survive restarts).
	var acctMetrics *obs.AccountMetrics
	if obsReg != nil {
		acctMetrics = obs.NewAccountMetrics(obsReg)
	}
	plane, err := account.New(account.Config{
		Dir:       *accountDir,
		Retention: *accountRetention,
		Metrics:   acctMetrics,
	})
	if err != nil {
		fatal(err)
	}
	defer plane.Close()
	jcfg.Account = plane
	opts = append(opts, serve.WithAccounting(plane, *usageAPI))

	var sloEngine *slo.Engine
	if *sloConfig != "" {
		if obsReg == nil {
			fatal(fmt.Errorf("-slo-config requires -metrics (the engine evaluates live metrics)"))
		}
		cfg := slo.DefaultConfig()
		if *sloConfig != "default" {
			var err error
			if cfg, err = slo.LoadConfig(*sloConfig); err != nil {
				fatal(err)
			}
		}
		if *sloInterval > 0 {
			cfg.Interval = slo.Duration(*sloInterval)
		}
		if *sloFor > 0 {
			cfg.Windows.For = slo.Duration(*sloFor)
		}
		if *sloFast != "" {
			short, long, err := parseWindowPair("-slo-fast-windows", *sloFast)
			if err != nil {
				fatal(err)
			}
			cfg.Windows.FastShort, cfg.Windows.FastLong = short, long
		}
		if *sloSlow != "" {
			short, long, err := parseWindowPair("-slo-slow-windows", *sloSlow)
			if err != nil {
				fatal(err)
			}
			cfg.Windows.SlowShort, cfg.Windows.SlowLong = short, long
		}
		var err error
		sloEngine, err = slo.New(cfg, slo.Deps{
			Metrics:  obsReg,
			Tracer:   tracer,
			Logger:   logger,
			Recorder: recorder,
		})
		if err != nil {
			fatal(err)
		}
		opts = append(opts, serve.WithSLO(sloEngine))
		// Cross-plane joins: every accounting event carries the SLO
		// verdict at emit time, and flight-recorder dumps include the
		// last wide events next to the spans and logs they share trace
		// ids with.
		plane.SetHealth(sloEngine.Healthy)
		if recorder != nil {
			recorder.SetEventSource(func() any { return plane.Recent(32) })
		}
	}
	if *regDir != "" {
		reg, err := registry.Open(*regDir)
		if err != nil {
			fatal(err)
		}
		if obsReg != nil {
			reg.Instrument(obs.NewRegistryMetrics(obsReg))
		}
		jcfg.Registry = reg
		opts = append(opts, serve.WithRegistry(reg, *maxBatch))
	}
	if *rateLimit > 0 || *globalRate > 0 || *maxInflight > 0 {
		opts = append(opts, serve.WithLimits(serve.LimitConfig{
			Limit:        limit.Config{Rate: *rateLimit, GlobalRate: *globalRate},
			TenantHeader: *tenantHeader,
			MaxInFlight:  *maxInflight,
			MaxWait:      *maxWait,
		}))
	}
	store := jobs.NewStore(jcfg)
	srv := serve.New(store, opts...)
	if sloEngine != nil {
		sloEngine.Start()
		defer sloEngine.Stop()
	}

	// SIGQUIT: dump the black box, then restore the runtime's default
	// handler and re-raise so the process still dies with its goroutine
	// stacks — the dump is a bonus, not a behavior change.
	if recorder != nil {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			if path, err := recorder.Dump("SIGQUIT"); err != nil {
				logger.Error("flight recorder dump failed", "err", err)
			} else if path != "" {
				logger.Info("flight recorder dump written", "path", path)
			}
			signal.Reset(syscall.SIGQUIT)
			syscall.Kill(syscall.Getpid(), syscall.SIGQUIT)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	serving := "disabled"
	if *regDir != "" {
		serving = *regDir
	}
	logger.Info("listening",
		"addr", *addr,
		"workers", store.Workers(),
		"cache", *cache,
		"registry", serving,
		"trace_sample", *traceSample,
		"pprof", *pprofFlag)

	select {
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down, draining jobs", "budget", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("drained")
	}
}
