// Command longexpd is the Long Exposure fine-tuning and serving daemon: it
// serves the job API (internal/serve) over a scheduler and bounded worker
// pool (internal/jobs), and — with a registry directory — the inference
// gateway: completed fine-tuning jobs are auto-published as adapter
// artifacts and served with KV-cached, continuously-batched generation on
// a shared frozen base.
//
// The daemon ships its own observability and traffic-control plane:
// -metrics (default on) instruments every subsystem — training steps,
// decode batches, job queues, caches, per-layer sparsity, per-route HTTP
// — and serves Prometheus text format at GET /metrics; -rate-limit /
// -global-rate-limit / -tenant-header add token-bucket rate limiting and
// -max-inflight adds load-shedding admission control (429 + Retry-After)
// on POST /v1/generate and POST /v1/jobs. GET /healthz stays a pure
// liveness probe; GET /readyz reports 503 while draining or shedding.
//
// Usage:
//
//	longexpd -addr :8080 -workers 4 -cache 128 -registry adapters \
//	  -rate-limit 5 -max-inflight 8 -tenant-header X-API-Key
//
//	# submit a fine-tune job (its adapter publishes on completion)
//	curl -s localhost:8080/v1/jobs -d '{"kind":"finetune","finetune":{"method":"lora","steps":8}}'
//	# follow its progress
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	# list published adapters, then stream tokens from one
//	curl -s localhost:8080/v1/adapters
//	curl -N localhost:8080/v1/generate -d '{"adapter":"ad-…","prompt":[11,12,13],"max_tokens":16}'
//	# run a paper experiment
//	curl -s localhost:8080/v1/jobs -d '{"kind":"experiment","experiment":{"id":"fig4"}}'
//	# cancel
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// The tracing, logging, and profiling plane: every request gets a
// sampled span timeline (tune with -trace-sample / -trace-buffer /
// -trace-slowest) served as JSON span trees at GET /debug/traces;
// -log-level / -log-format configure log/slog structured logging with
// trace and span ids on every record; -pprof (off by default) mounts
// net/http/pprof at GET /debug/pprof/; -sse-keepalive emits comment
// frames on idle SSE streams so proxies don't reap them.
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains queued and
// running jobs, bounded by -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/limit"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
	"longexposure/internal/trace"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent job executions")
		cache    = flag.Int("cache", 64, "result cache capacity (entries)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for draining jobs")
		regDir   = flag.String("registry", "adapters", "adapter registry directory; empty disables publishing and serving")
		maxBatch = flag.Int("max-batch", 4, "concurrent sequences per decode step in the generation engine")

		metrics      = flag.Bool("metrics", true, "instrument all subsystems and expose Prometheus text format at GET /metrics")
		rateLimit    = flag.Float64("rate-limit", 0, "per-tenant request rate (req/s) on /v1/generate and POST /v1/jobs; 0 disables rate limiting")
		globalRate   = flag.Float64("global-rate-limit", 0, "global request rate (req/s) across all tenants; 0 disables the global tier")
		tenantHeader = flag.String("tenant-header", "X-API-Key", "request header identifying the tenant for per-tenant rate limiting")
		maxInflight  = flag.Int("max-inflight", 0, "admission-control concurrency cap per guarded endpoint; 0 disables load shedding")
		maxWait      = flag.Int("max-wait", 8, "bounded admission wait queue per guarded endpoint (with -max-inflight)")

		logLevel     = flag.String("log-level", "info", "structured log level: debug, info, warn, error")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		traceSample  = flag.Float64("trace-sample", 1, "fraction of requests to trace (0 disables tracing)")
		traceBuffer  = flag.Int("trace-buffer", 4096, "span ring-buffer capacity behind GET /debug/traces")
		traceSlowest = flag.Int("trace-slowest", 32, "slowest spans retained for GET /debug/traces; negative disables")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof at GET /debug/pprof/")
		sseKeepalive = flag.Duration("sse-keepalive", 15*time.Second, "idle SSE keepalive comment interval; 0 disables")
	)
	flag.Parse()

	logger := trace.NewLogger(os.Stderr, *logLevel, *logFormat)
	slog.SetDefault(logger)

	jcfg := jobs.Config{Workers: *workers, CacheSize: *cache, Logger: logger}
	var opts []serve.Option
	opts = append(opts, serve.WithLogger(logger))
	if *sseKeepalive > 0 {
		opts = append(opts, serve.WithSSEKeepalive(*sseKeepalive))
	}
	if *pprofFlag {
		opts = append(opts, serve.WithPprof())
	}
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{
			SampleRatio: *traceSample,
			Capacity:    *traceBuffer,
			SlowestN:    *traceSlowest,
		})
		jcfg.Tracer = tracer
		opts = append(opts, serve.WithTracing(tracer))
	}
	var obsReg *obs.Registry
	if *metrics {
		obsReg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(obsReg)
		jcfg.Obs = obsReg
		opts = append(opts, serve.WithMetrics(obsReg))
	}
	if *regDir != "" {
		reg, err := registry.Open(*regDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "longexpd:", err)
			os.Exit(1)
		}
		if obsReg != nil {
			reg.Instrument(obs.NewRegistryMetrics(obsReg))
		}
		jcfg.Registry = reg
		opts = append(opts, serve.WithRegistry(reg, *maxBatch))
	}
	if *rateLimit > 0 || *globalRate > 0 || *maxInflight > 0 {
		opts = append(opts, serve.WithLimits(serve.LimitConfig{
			Limit:        limit.Config{Rate: *rateLimit, GlobalRate: *globalRate},
			TenantHeader: *tenantHeader,
			MaxInFlight:  *maxInflight,
			MaxWait:      *maxWait,
		}))
	}
	store := jobs.NewStore(jcfg)
	srv := serve.New(store, opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	serving := "disabled"
	if *regDir != "" {
		serving = *regDir
	}
	logger.Info("listening",
		"addr", *addr,
		"workers", store.Workers(),
		"cache", *cache,
		"registry", serving,
		"trace_sample", *traceSample,
		"pprof", *pprofFlag)

	select {
	case err := <-errc:
		if err != nil {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down, draining jobs", "budget", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("drained")
	}
}
