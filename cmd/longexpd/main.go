// Command longexpd is the Long Exposure fine-tuning daemon: it serves the
// job API (internal/serve) over a scheduler and bounded worker pool
// (internal/jobs), turning fine-tuning sessions and paper experiments into
// queued, cancellable, observable HTTP workloads.
//
// Usage:
//
//	longexpd -addr :8080 -workers 4 -cache 128
//
//	# submit a fine-tune job
//	curl -s localhost:8080/v1/jobs -d '{"kind":"finetune","finetune":{"method":"lora","steps":8}}'
//	# follow its progress
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	# run a paper experiment
//	curl -s localhost:8080/v1/jobs -d '{"kind":"experiment","experiment":{"id":"fig4"}}'
//	# cancel
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains queued and
// running jobs, bounded by -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent job executions")
		cache   = flag.Int("cache", 64, "result cache capacity (entries)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for draining jobs")
	)
	flag.Parse()

	store := jobs.NewStore(jobs.Config{Workers: *workers, CacheSize: *cache})
	srv := serve.New(store)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	fmt.Printf("longexpd: listening on %s (%d workers, cache %d)\n", *addr, store.Workers(), *cache)

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "longexpd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("longexpd: shutting down, draining jobs…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "longexpd: shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("longexpd: drained")
	}
}
