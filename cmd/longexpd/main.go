// Command longexpd is the Long Exposure fine-tuning and serving daemon: it
// serves the job API (internal/serve) over a scheduler and bounded worker
// pool (internal/jobs), and — with a registry directory — the inference
// gateway: completed fine-tuning jobs are auto-published as adapter
// artifacts and served with KV-cached, continuously-batched generation on
// a shared frozen base.
//
// Usage:
//
//	longexpd -addr :8080 -workers 4 -cache 128 -registry adapters
//
//	# submit a fine-tune job (its adapter publishes on completion)
//	curl -s localhost:8080/v1/jobs -d '{"kind":"finetune","finetune":{"method":"lora","steps":8}}'
//	# follow its progress
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	# list published adapters, then stream tokens from one
//	curl -s localhost:8080/v1/adapters
//	curl -N localhost:8080/v1/generate -d '{"adapter":"ad-…","prompt":[11,12,13],"max_tokens":16}'
//	# run a paper experiment
//	curl -s localhost:8080/v1/jobs -d '{"kind":"experiment","experiment":{"id":"fig4"}}'
//	# cancel
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001
//
// SIGINT/SIGTERM trigger a graceful shutdown that drains queued and
// running jobs, bounded by -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", max(1, runtime.NumCPU()/2), "concurrent job executions")
		cache    = flag.Int("cache", 64, "result cache capacity (entries)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown budget for draining jobs")
		regDir   = flag.String("registry", "adapters", "adapter registry directory; empty disables publishing and serving")
		maxBatch = flag.Int("max-batch", 4, "concurrent sequences per decode step in the generation engine")
	)
	flag.Parse()

	jcfg := jobs.Config{Workers: *workers, CacheSize: *cache}
	var opts []serve.Option
	if *regDir != "" {
		reg, err := registry.Open(*regDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "longexpd:", err)
			os.Exit(1)
		}
		jcfg.Registry = reg
		opts = append(opts, serve.WithRegistry(reg, *maxBatch))
	}
	store := jobs.NewStore(jcfg)
	srv := serve.New(store, opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	serving := "serving disabled"
	if *regDir != "" {
		serving = "registry " + *regDir
	}
	fmt.Printf("longexpd: listening on %s (%d workers, cache %d, %s)\n", *addr, store.Workers(), *cache, serving)

	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "longexpd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("longexpd: shutting down, draining jobs…")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "longexpd: shutdown:", err)
			os.Exit(1)
		}
		fmt.Println("longexpd: drained")
	}
}
