// Command lefinetune runs a Long Exposure fine-tuning job end to end on the
// synthetic E2E corpus: optional predictor pre-training, phase-timed
// training with per-step progress, a sample generation, and an optional
// weight checkpoint. Ctrl-C cancels the run gracefully, keeping the
// partial result. (For managed, queued jobs over HTTP, see cmd/longexpd.)
//
// Usage:
//
//	lefinetune -method lora -steps 20 -sparse
//	lefinetune -method adapter -steps 10 -save model.ckpt
//	lefinetune -method lora -load model.ckpt -steps 0     # inference only
//	lefinetune -method lora -save model.ckpt -resume      # continue an interrupted run
//
// -resume reloads -save's checkpoint (when it exists) before training, so
// an interrupted run picks up from its last saved weights; optimizer
// moments restart, exactly like resuming from a weights-only checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/train"
)

func main() {
	var (
		methodF  = flag.String("method", "lora", "fine-tuning method: full|lora|adapter|bitfit|ptuning")
		steps    = flag.Int("steps", 20, "training steps")
		seq      = flag.Int("seq", 128, "sequence length")
		batch    = flag.Int("batch", 2, "batch size")
		blk      = flag.Int("blk", 8, "sparsity block size")
		sparseF  = flag.Bool("sparse", true, "enable Long Exposure sparsity")
		seed     = flag.Uint64("seed", 1, "seed")
		save     = flag.String("save", "", "write a weight checkpoint here after training")
		load     = flag.String("load", "", "load a weight checkpoint before training")
		resume   = flag.Bool("resume", false, "reload -save's checkpoint (if present) before training, continuing an interrupted run")
		progress = flag.Bool("progress", false, "print a line per training step")
	)
	flag.Parse()

	method, err := parseMethod(*methodF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec := model.Sim(model.OPT1p3B())
	cfg := core.Config{
		Spec: spec, Method: method, Blk: *blk, Seed: *seed, LR: 1e-3, Prime: true,
	}
	corpus := data.NewE2ECorpus(spec.Config.Vocab, *seq/12, *seed)
	nBatches := max(1, *steps)
	batches := data.Batches(corpus.Generate(nBatches**batch, *seed+1), *batch, *seq)

	sys := core.New(cfg)
	eng := sys.Engine()
	if !*sparseF {
		eng = core.NewBaseline(cfg)
	} else {
		calib := [][][]int{batches[0].Inputs}
		if len(batches) > 1 {
			calib = append(calib, batches[1].Inputs)
		}
		stats := sys.PretrainPredictors(calib, predictor.TrainConfig{Epochs: 15, Seed: *seed})
		fmt.Printf("predictors: attention recall %.2f, MLP recall %.2f\n", stats.AttnRecall, stats.MLPRecall)
	}

	if *resume {
		if *save == "" {
			fmt.Fprintln(os.Stderr, "lefinetune: -resume needs -save (the checkpoint to continue from)")
			os.Exit(2)
		}
		switch err := loadCheckpoint(*save, eng.Model.Params()); {
		case os.IsNotExist(err):
			fmt.Printf("no checkpoint at %s yet, starting fresh\n", *save)
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		default:
			fmt.Printf("resumed from checkpoint %s\n", *save)
		}
	}
	if *load != "" {
		if err := loadCheckpoint(*load, eng.Model.Params()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded checkpoint %s\n", *load)
	}

	total, trainable := eng.Model.NumParams()
	fmt.Printf("model %s: %d params, %d trainable (%.3f%%), method %s, sparse=%v\n",
		spec, total, trainable, 100*float64(trainable)/float64(total), method, *sparseF)

	if *steps > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		hook := func(si train.StepInfo) {
			if *progress {
				fmt.Printf("step %d/%d: loss %.4f (%.1fms)\n",
					si.GlobalStep+1, si.TotalSteps, si.Loss, si.Times.Total().Seconds()*1000)
			}
		}
		res, err := eng.RunContext(ctx, batches[:min(*steps, len(batches))], 1, hook)
		stop()
		if errors.Is(err, context.Canceled) {
			fmt.Printf("interrupted after %d steps\n", res.Steps)
		}
		if res.Steps > 0 {
			pt := res.MeanStepTime()
			fmt.Printf("trained %d steps: loss %.4f → %.4f\n", res.Steps, res.Losses[0], res.FinalLoss())
			fmt.Printf("per step: forward %.1fms backward %.1fms optim %.1fms predict %.1fms\n",
				pt.Forward.Seconds()*1000, pt.Backward.Seconds()*1000,
				pt.Optim.Seconds()*1000, pt.Predict.Seconds()*1000)
		}
	}

	// Sample generation from the first prompt.
	prompt := batches[0].Inputs[0][:8]
	out := eng.Model.Generate(prompt, nn.GenerateConfig{MaxTokens: 12, StopToken: data.TokEOS})
	fmt.Printf("sample generation from %v: %v\n", prompt, out)

	if *save != "" {
		if err := saveCheckpoint(*save, eng.Model.Params()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved checkpoint %s\n", *save)
	}
}

// saveCheckpoint writes the parameter set to path atomically (temp file +
// rename), so a crash mid-write never corrupts the checkpoint a -resume
// run would reload.
func saveCheckpoint(path string, ps nn.ParamSet) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := ps.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpoint restores the parameter set from path. The os.IsNotExist
// case is surfaced unchanged so -resume can treat a missing checkpoint as
// a fresh start.
func loadCheckpoint(path string, ps nn.ParamSet) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ps.Load(f)
}

func parseMethod(s string) (peft.Method, error) {
	switch strings.ToLower(s) {
	case "full":
		return peft.FullFT, nil
	case "lora":
		return peft.LoRA, nil
	case "adapter":
		return peft.Adapter, nil
	case "bitfit":
		return peft.BitFit, nil
	case "ptuning":
		return peft.PTuning, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
