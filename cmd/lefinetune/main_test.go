package main

import (
	"os"
	"path/filepath"
	"testing"

	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

func testEngine(seed uint64) (*train.Engine, []data.Batch) {
	spec := model.SimSmall(nn.ActReLU)
	r := tensor.NewRNG(seed)
	m := nn.NewTransformer(spec.Config, r)
	peft.Apply(m, peft.LoRA, peft.Options{LoRARank: 2}, r.Split())
	corpus := data.NewE2ECorpus(spec.Config.Vocab, 3, seed)
	batches := data.Batches(corpus.Generate(4, seed+1), 1, 12)
	return &train.Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0)}, batches
}

// TestCheckpointSaveResumeRoundTrip pins the -save/-resume cycle: training
// is interrupted after a save, a fresh process (fresh engine, same seed)
// resumes from the checkpoint, and the restored weights are bit-equal to
// what the interrupted run saved — so the continued run picks up exactly
// where training stopped.
func TestCheckpointSaveResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")

	// "First run": train a little, save, note the weights.
	eng, batches := testEngine(42)
	eng.Run(batches[:2], 1)
	if err := saveCheckpoint(path, eng.Model.Params()); err != nil {
		t.Fatal(err)
	}

	// "Resumed run": same construction path as a fresh process, then load.
	resumed, moreBatches := testEngine(42)
	if d := tensor.MaxAbsDiff(resumed.Model.Blocks[0].Attn.Wq.LoRAB.W, eng.Model.Blocks[0].Attn.Wq.LoRAB.W); d == 0 {
		t.Fatal("training moved nothing; the round trip below would be vacuous")
	}
	if err := loadCheckpoint(path, resumed.Model.Params()); err != nil {
		t.Fatal(err)
	}
	for _, p := range eng.Model.Params() {
		rp := resumed.Model.Params().ByName(p.Name)
		if rp == nil {
			t.Fatalf("resumed model missing %s", p.Name)
		}
		if d := tensor.MaxAbsDiff(p.W, rp.W); d != 0 {
			t.Fatalf("parameter %s differs after resume by %v", p.Name, d)
		}
	}

	// The resumed engine trains on without error and saves again.
	res := resumed.Run(moreBatches[2:], 1)
	if res.Steps == 0 {
		t.Fatal("resumed run executed no steps")
	}
	if err := saveCheckpoint(path, resumed.Model.Params()); err != nil {
		t.Fatal(err)
	}
}

// TestSaveCheckpointAtomic pins that a failed save never clobbers the
// existing checkpoint (temp-file + rename discipline).
func TestSaveCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	eng, _ := testEngine(7)
	if err := saveCheckpoint(path, eng.Model.Params()); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save into an unwritable location fails without touching path.
	if err := saveCheckpoint(filepath.Join(dir, "missing-dir", "x.ckpt"), eng.Model.Params()); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed save corrupted the existing checkpoint")
	}
}

// TestLoadCheckpointMissingFile pins the -resume fresh-start case.
func TestLoadCheckpointMissingFile(t *testing.T) {
	eng, _ := testEngine(8)
	err := loadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), eng.Model.Params())
	if !os.IsNotExist(err) {
		t.Fatalf("want os.IsNotExist error, got %v", err)
	}
}
