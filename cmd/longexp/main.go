// Command longexp regenerates the paper's tables and figures.
//
// Usage:
//
//	longexp -exp fig7            # one experiment, full fidelity
//	longexp -exp all             # everything (slow)
//	longexp -exp table1 -quick   # reduced sizes, seconds instead of minutes
//	longexp -list                # show available experiment ids
//	longexp -exp fig9 -out out.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"longexposure/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (table1..table4, fig7..fig14, or 'all')")
		quick = flag.Bool("quick", false, "reduced sizes for a fast pass")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		out   = flag.String("out", "", "write markdown to this file instead of stdout")
		seed  = flag.Uint64("seed", 0, "override the experiment seed")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed}
	var reports []*experiments.Report
	if *exp == "all" {
		reports = experiments.RunAll(opts)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			r, err := experiments.Run(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			reports = append(reports, r)
		}
	}

	var b strings.Builder
	for _, r := range reports {
		b.WriteString(r.Markdown())
		b.WriteString("\n")
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}
	fmt.Print(b.String())
}
