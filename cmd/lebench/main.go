// Command lebench runs the repository's benchmark suites and writes the
// BENCH_<suite>.json artifacts consumed by CI's perf tracking.
//
//	go run ./cmd/lebench -suite kernels            # kernel microbenchmarks
//	go run ./cmd/lebench -suite kernels -short     # CI-sized run
//	go run ./cmd/lebench -suite all -out artifacts # every suite
//	go run ./cmd/lebench -suite kernels,train_step -short -baseline .github/bench
//
// With -baseline (a report file, or a directory of BENCH_<suite>.json
// files resolved per suite), each freshly measured suite is compared
// against its baseline and the process exits 2 on regression: more than
// -tolerance slower in ns/op, more than -alloc-tolerance additional
// allocs/op (absolute delta — the axis that locks in the workspace arena's
// near-zero steady-state allocations), or more than -bytes-tolerance
// relative growth in declared bytes/op (the reduced-precision kernels'
// traffic accounting). The wall-clock and allocation gates only arm when
// baseline and runner hardware match; the bytes gate is deterministic and
// always arms.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"longexposure/internal/bench"
	"longexposure/internal/parallel"
)

func main() {
	var (
		suiteFlag = flag.String("suite", "kernels", "suite to run: one of "+strings.Join(bench.Suites(), ", ")+", a comma list, or 'all'")
		short     = flag.Bool("short", false, "short mode: smaller sizes and budgets (what CI runs)")
		runFilter = flag.String("run", "", "only run benchmarks matching this regexp")
		outDir    = flag.String("out", "bench-reports", "directory for BENCH_<suite>.json artifacts (created if missing)")
		baseline  = flag.String("baseline", "", "baseline report to compare against; exit 2 on regression")
		tolerance = flag.Float64("tolerance", 0.20, "allowed slowdown vs baseline before failing (0.20 = 20%)")
		allocTol  = flag.Float64("alloc-tolerance", 16, "allowed absolute growth in allocs/op vs baseline before failing; negative disables the allocation gate")
		bytesTol  = flag.Float64("bytes-tolerance", 0.10, "allowed relative growth in declared bytes/op vs baseline before failing; negative disables the bytes gate")
		minTime   = flag.Duration("mintime", 0, "minimum timed duration per round (default 300ms, 100ms in short mode)")
		repeats   = flag.Int("repeats", 0, "measurement rounds per benchmark, best-of (default 3, 2 in short mode)")
		workers   = flag.Int("workers", 0, "worker-pool size for parallel kernels (default GOMAXPROCS)")
		list      = flag.Bool("list", false, "list suites and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range bench.Suites() {
			fmt.Println(s)
		}
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("creating -out directory: %v", err)
	}

	o := bench.Options{Short: *short, MinTime: *minTime, Repeats: *repeats}
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fatalf("bad -run pattern: %v", err)
		}
		o.Filter = re
	}

	suites := strings.Split(*suiteFlag, ",")
	if *suiteFlag == "all" {
		suites = bench.Suites()
	}

	regressed := false
	for _, suite := range suites {
		suite = strings.TrimSpace(suite)
		fmt.Printf("suite %s (short=%v, workers=%d)\n", suite, *short, parallel.Workers())
		start := time.Now()
		report, err := bench.RunSuite(suite, o, printResult)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("suite %s done in %s\n", suite, time.Since(start).Round(time.Millisecond))

		path := filepath.Join(*outDir, "BENCH_"+suite+".json")
		if err := report.Write(path); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("wrote %s\n", path)

		if *baseline != "" {
			// A directory baseline resolves per suite (BENCH_<suite>.json
			// inside it), so one -baseline flag gates a multi-suite run. A
			// suite without a checked-in baseline is skipped, not failed —
			// the same suite-membership policy bench.Compare applies to
			// individual benchmarks, and what lets a new suite land one PR
			// before its baseline.
			basePath := *baseline
			if st, err := os.Stat(basePath); err == nil && st.IsDir() {
				basePath = filepath.Join(basePath, "BENCH_"+suite+".json")
				if _, err := os.Stat(basePath); err != nil {
					fmt.Fprintf(os.Stderr, "warning: no baseline %s for suite %q, skipping comparison (run 'make baseline' to record one)\n", basePath, suite)
					continue
				}
			}
			base, err := bench.ReadReport(basePath)
			if err != nil {
				fatalf("reading baseline: %v", err)
			}
			if base.Suite != report.Suite {
				fmt.Fprintf(os.Stderr, "warning: baseline suite %q != %q, skipping comparison\n", base.Suite, report.Suite)
				continue
			}
			// Absolute ns/op only gates when the baseline came from the same
			// hardware class; otherwise deltas mostly measure the machine, so
			// the comparison is informational until a baseline recorded on
			// the target runner (e.g. from the CI artifact) is checked in.
			hwMatch := base.GOARCH == report.GOARCH && base.CPUs == report.CPUs
			if !hwMatch {
				fmt.Fprintf(os.Stderr, "warning: baseline hardware differs (%s/%dcpu/%s vs %s/%dcpu/%s): "+
					"comparison is informational only; refresh the baseline from this runner (make baseline) to arm the gate\n",
					base.GOARCH, base.CPUs, orDash(base.Host), report.GOARCH, report.CPUs, orDash(report.Host))
			}
			deltas, bad := bench.Compare(base, report, bench.Tolerances{Ns: *tolerance, Allocs: *allocTol, Bytes: *bytesTol})
			fmt.Printf("\nvs baseline %s (commit %s, tolerance %.0f%%, alloc tolerance %+.0f, bytes tolerance %.0f%%):\n%s",
				basePath, orDash(base.Commit), *tolerance*100, *allocTol, *bytesTol*100, bench.FormatDeltas(deltas))
			// Declared bytes/op is machine-independent, so its gate arms even
			// when the baseline hardware differs; ns/op and allocs only gate
			// on matching hardware.
			bytesBad := false
			for _, d := range deltas {
				bytesBad = bytesBad || d.BytesRegressed
			}
			regressed = regressed || (bad && hwMatch) || bytesBad
		}
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "FAIL: performance regression beyond tolerance")
		os.Exit(2)
	}
}

func printResult(r bench.Result) {
	line := fmt.Sprintf("  %-36s %12.0f ns/op", r.Name, r.NsPerOp)
	if r.GFLOPS > 0 {
		line += fmt.Sprintf(" %8.2f GFLOP/s", r.GFLOPS)
	}
	if r.AllocsPerOp >= 0.5 {
		line += fmt.Sprintf(" %8.0f allocs/op", r.AllocsPerOp)
	}
	fmt.Println(line)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatalf(format string, args ...any) {
	fmt.Fprintln(os.Stderr, "lebench: "+fmt.Sprintf(format, args...))
	os.Exit(1)
}
