// Package longexposure is the public API of the Long Exposure
// reproduction: a system that accelerates parameter-efficient fine-tuning
// (PEFT) of transformer language models by exposing, predicting and
// exploiting the sparsity hidden in sequence-level fine-tuning ("shadowy
// sparsity", SC'24).
//
// # Quick start
//
//	sys := longexposure.New(longexposure.Config{
//		Spec:   longexposure.SimSmall(longexposure.ActReLU),
//		Method: longexposure.LoRA,
//	})
//	sys.PretrainPredictors(calibrationBatches, longexposure.TrainConfig{})
//	result := sys.Engine().Run(batches, epochs)
//
// Long runs are cancellable and observable through the context-aware
// variant, Engine.RunContext(ctx, batches, epochs, hook), which reports
// per-step loss and phase times to the hook.
//
// # Service entry point
//
// cmd/longexpd serves fine-tuning sessions and paper experiments as
// managed jobs over HTTP (internal/jobs + internal/serve): POST /v1/jobs
// queues work onto a priority scheduler and bounded worker pool,
// GET /v1/jobs/{id}/events streams per-step progress as server-sent
// events, DELETE cancels, and identical resubmissions are served from a
// result cache. NewJobStore/NewServer expose the same subsystem to
// embedders.
//
// # Serving
//
// The downstream half closes the loop: completed fine-tuning jobs publish
// their trainable delta into a content-addressed adapter registry
// (internal/registry), and an inference gateway (internal/infer) serves
// those adapters with KV-cached decoding — bit-identical to the naive
// full-prefix re-run, ~20× the tokens/s at sim scale — and continuous
// batching, attaching per-request adapters functionally over one shared
// frozen base. POST /v1/generate streams tokens as server-sent events;
// /v1/adapters lists, inspects and deletes artifacts.
//
// The package re-exports the stable surface of the internal packages:
// model specs (paper Table II), PEFT methods (Table I), the Long Exposure
// session (core), the experiment drivers that regenerate every paper table
// and figure, and the GPU cost model used for paper-scale projections.
package longexposure

import (
	"longexposure/internal/account"
	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/experiments"
	"longexposure/internal/gpusim"
	"longexposure/internal/infer"
	"longexposure/internal/jobs"
	"longexposure/internal/limit"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
	"longexposure/internal/slo"
	"longexposure/internal/trace"
	"longexposure/internal/train"
)

// Config assembles a Long Exposure fine-tuning session (see core.Config).
type Config = core.Config

// System is a live Long Exposure session.
type System = core.System

// TrainConfig tunes offline predictor training.
type TrainConfig = predictor.TrainConfig

// Engine is the phase-timed fine-tuning engine.
type Engine = train.Engine

// Batch is a fixed-shape training batch.
type Batch = data.Batch

// Example is one training/evaluation item.
type Example = data.Example

// Spec is a named model configuration.
type Spec = model.Spec

// Method selects the fine-tuning strategy.
type Method = peft.Method

// Activation selects the MLP nonlinearity.
type Activation = nn.Activation

// Fine-tuning methods (paper Table I).
const (
	FullFT  = peft.FullFT
	LoRA    = peft.LoRA
	Adapter = peft.Adapter
	BitFit  = peft.BitFit
	PTuning = peft.PTuning
)

// Activations.
const (
	ActReLU = nn.ActReLU
	ActGeLU = nn.ActGeLU
)

// New builds a Long Exposure session: model + PEFT method + exposer +
// predictors + dynamic-aware operators.
func New(cfg Config) *System { return core.New(cfg) }

// NewBaseline builds the dense PEFT baseline sharing cfg's initialization.
func NewBaseline(cfg Config) *Engine { return core.NewBaseline(cfg) }

// Model zoo (paper Table II) and sim-scale variants.
var (
	OPT125M   = model.OPT125M
	OPT350M   = model.OPT350M
	OPT1p3B   = model.OPT1p3B
	OPT2p7B   = model.OPT2p7B
	GPT2Large = model.GPT2Large
	GPT2XL    = model.GPT2XL
	Sim       = model.Sim
	SimSmall  = model.SimSmall
)

// Workload generators (synthetic analogues of the paper's datasets).
var (
	NewE2ECorpus    = data.NewE2ECorpus
	NewAlpacaCorpus = data.NewAlpacaCorpus
	Tasks           = data.Tasks
	Batches         = data.Batches
)

// EvaluateTask measures restricted-choice accuracy on a task's examples.
var EvaluateTask = train.EvaluateTask

// Perplexity evaluates exp(mean NLL) over batches without training.
var Perplexity = train.Perplexity

// Experiments: regenerate any paper table or figure by id ("table1",
// "fig7", …). See internal/experiments for the full registry.
type ExperimentOptions = experiments.Options

// Report is a regenerated paper artifact.
type Report = experiments.Report

// RunExperiment regenerates one paper artifact.
func RunExperiment(id string, o ExperimentOptions) (*Report, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }

// Job service: run fine-tuning sessions and experiments as queued,
// cancellable, observable jobs (what cmd/longexpd serves over HTTP).

// JobStore is the scheduler + worker pool + result cache behind the
// service.
type JobStore = jobs.Store

// JobSpec is the JSON job submission.
type JobSpec = jobs.Spec

// JobServer is the HTTP API over a JobStore.
type JobServer = serve.Server

// NewJobStore builds a job store and starts its worker pool.
func NewJobStore(cfg jobs.Config) *JobStore { return jobs.NewStore(cfg) }

// NewServer builds the HTTP job API over a store. Options enable optional
// subsystems; pass WithRegistry to serve the inference gateway too.
func NewServer(store *JobStore, opts ...serve.Option) *JobServer { return serve.New(store, opts...) }

// WithRegistry enables the adapter CRUD and generation endpoints over a
// registry (pair with jobs.Config.Registry for auto-publish).
var WithRegistry = serve.WithRegistry

// Serving: adapter artifacts and the KV-cached generation engine.

// Model is the decoder-only transformer (the shared frozen base serving
// decodes on).
type Model = nn.Transformer

// GenerateConfig tunes autoregressive decoding (nn.Generate and the
// KV-cached nn.Transformer.GenerateCached).
type GenerateConfig = nn.GenerateConfig

// AdapterRegistry is the content-addressed adapter artifact store.
type AdapterRegistry = registry.Store

// AdapterManifest describes one published adapter artifact.
type AdapterManifest = registry.Manifest

// GenerateEngine is the continuous-batching KV-cached generation engine.
type GenerateEngine = infer.Engine

// GenerateRequest is one generation submission to a GenerateEngine.
type GenerateRequest = infer.Request

// OpenRegistry opens (creating if needed) an adapter registry directory.
func OpenRegistry(dir string) (*AdapterRegistry, error) { return registry.Open(dir) }

// NewGenerateEngine starts a generation engine over a shared frozen base.
func NewGenerateEngine(base *Model, cfg infer.Config) *GenerateEngine { return infer.New(base, cfg) }

// BuildBase rebuilds the frozen base model an adapter artifact names,
// bit-for-bit (registry.Manifest.Base → model).
var BuildBase = jobs.BuildBase

// ExtractDelta returns a fine-tuned model's detachable parameter delta —
// what jobs publish into the registry.
var ExtractDelta = peft.Delta

// CompileAdapter turns an artifact's parameters into decode-time weights.
var CompileAdapter = infer.Compile

// GPU cost-model devices (paper §VII-A platforms).
var (
	A100  = gpusim.A100
	A6000 = gpusim.A6000
)

// Observability and traffic control (internal/obs + internal/limit).

// MetricsRegistry is the zero-alloc-on-hot-path metrics registry behind
// GET /metrics: counters, gauges, log-bucket histograms, Prometheus text
// exposition. Share one registry across jobs.Config.Obs,
// AdapterRegistry.Instrument and WithMetrics for full coverage.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithMetrics attaches a metrics registry to a server: per-route HTTP
// instruments plus the GET /metrics endpoint.
var WithMetrics = serve.WithMetrics

// WithLimits attaches the traffic-control plane to a server: per-tenant
// and global token-bucket rate limiting plus load-shedding admission
// control (429 + Retry-After) on the expensive endpoints.
var WithLimits = serve.WithLimits

// ServerLimitConfig configures WithLimits.
type ServerLimitConfig = serve.LimitConfig

// RateLimitConfig configures the rate-limit tiers inside a
// ServerLimitConfig (limit.Config).
type RateLimitConfig = limit.Config

// SLOEngine evaluates declarative service-level objectives over the live
// metrics registry on a fixed tick: windowed good/total rates, Google-SRE
// multi-window multi-burn-rate alerting (pending → firing → resolved),
// error-budget accounting, lexp_slo_* instruments, and an alert-event
// stream served at GET /v1/alerts.
type SLOEngine = slo.Engine

// SLOConfig declares the objectives and alert windows an SLOEngine
// evaluates. DefaultSLOConfig returns the built-in objective set.
type SLOConfig = slo.Config

// DefaultSLOConfig is the built-in objective set: generate latency and
// availability, admission queue wait, job failures, and serving-density
// drift.
func DefaultSLOConfig() SLOConfig { return slo.DefaultConfig() }

// NewSLOEngine builds an SLO engine over cfg; Deps.Metrics must be the
// same registry the server and job store are instrumented with. The
// caller owns Start/Stop.
func NewSLOEngine(cfg SLOConfig, d slo.Deps) (*SLOEngine, error) { return slo.New(cfg, d) }

// FlightRecorder is the black-box crash recorder: bounded rings of alert
// transitions, slog records, span trees and per-tick metric deltas,
// dumped atomically to disk on alert-firing, SIGQUIT and panic, and
// served live at GET /debug/flightrecorder.
type FlightRecorder = slo.Recorder

// NewFlightRecorder builds a flight recorder; attach it to an engine via
// slo.Deps.Recorder and wrap your logger with its LogHandler.
func NewFlightRecorder(cfg slo.RecorderConfig, tr *trace.Tracer) *FlightRecorder {
	return slo.NewRecorder(cfg, tr)
}

// WithSLO attaches an SLO engine to a server: GET /debug/slo reports,
// the GET /v1/alerts SSE stream, GET /debug/flightrecorder (when a
// recorder is attached), and readiness gating while a critical objective
// fires.
var WithSLO = serve.WithSLO

// AccountPlane is the wide-event resource-accounting plane: one
// structured record per completed generate request, fine-tune job and
// train run — identity, outcome, and the full resource vector (tokens,
// dense-equivalent vs executed FLOPs and the sparsity saving, peak KV
// footprint, arena bytes, queue and phase durations) — kept in a bounded
// ring, rolled up per tenant, folded into lexp_account_* metrics, and
// optionally persisted to a crash-tolerant segmented binary log.
type AccountPlane = account.Plane

// AccountConfig sizes an AccountPlane (ring, segment/retention policy,
// metrics fold).
type AccountConfig = account.Config

// AccountEvent is one wide accounting record.
type AccountEvent = account.Event

// NewAccountPlane opens an accounting plane, replaying any events
// already on disk when cfg.Dir is set.
func NewAccountPlane(cfg AccountConfig) (*AccountPlane, error) { return account.New(cfg) }

// WithAccounting attaches an accounting plane to a server:
// GET /debug/events (filtered wide-event queries with ?agg= rollups)
// and, when usageAPI is set, GET /v1/usage per-tenant rollups. Pair it
// with JobsConfig.Account on the same plane.
var WithAccounting = serve.WithAccounting
