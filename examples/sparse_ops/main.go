// sparse_ops demonstrates the Dynamic-aware Operators directly (paper §VI):
// the offline pattern pool with pre-computed layout lookup tables, online
// per-head combination with offset shifting, the SDD/DSD block-sparse
// attention kernels, and the neuron-block MLP kernels — including the
// numerical equivalence against dense references.
package main

import (
	"fmt"
	"math"
	"time"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

func main() {
	const (
		seq, blk, hd = 256, 16, 64
		nb           = seq / blk
	)
	rng := tensor.NewRNG(7)
	q := randSlice(rng, seq*hd)
	k := randSlice(rng, seq*hd)
	v := randSlice(rng, seq*hd)

	// Offline: build the pattern pool once; layouts are lookup tables.
	pool := sparse.NewPool()
	pool.Warm(sparse.DefaultPool(), nb)
	fmt.Printf("offline pool: %d layouts pre-computed for a %d×%d block grid\n", pool.Size(), nb, nb)

	// Online: assign each head an atomic pattern and combine — only offsets
	// are computed here, never layouts.
	heads := []sparse.Pattern{
		{Kind: sparse.KindLocal, Window: 2},
		{Kind: sparse.KindLocalGlobal, Window: 2, Global: 1},
		{Kind: sparse.KindStrided, Stride: 4},
		{Kind: sparse.KindBigBird, Window: 2, Global: 1, RandomPerRow: 2, Seed: 17},
	}
	var layouts []*sparse.Layout
	for _, p := range heads {
		layouts = append(layouts, pool.Get(p, nb))
	}
	combined := sparse.Combine(layouts)
	fmt.Printf("online combine: %d heads → %d block tasks (density %.3f)\n\n",
		combined.NumHeads(), combined.TotalBlocks(), combined.Density())

	// Per-head sparse attention vs the dense reference.
	scale := float32(1 / math.Sqrt(hd))
	fmt.Println("head  pattern                     blocks  time(sparse)  time(dense)  max|Δ| vs masked dense")
	for h, layout := range layouts {
		sp := sparse.NewBlockSparse(layout, blk)
		start := time.Now()
		sparse.SDD(sp, q, k, hd)
		sparse.CausalSoftmax(sp, scale)
		out := make([]float32, seq*hd)
		sparse.DSD(out, sp, v, hd)
		sparseTime := time.Since(start)

		// Dense reference (full causal attention).
		ref := make([]float32, seq*hd)
		start = time.Now()
		sparse.DenseCausalAttention(ref, q, k, v, seq, hd, scale)
		denseTime := time.Since(start)

		// Numerical check against the masked-dense computation.
		diff := maskedDiff(out, q, k, v, seq, hd, scale, layout, blk)
		fmt.Printf("%4d  %-26s  %6d  %12v  %11v  %.2e\n",
			h, heads[h], layout.NNZ(), sparseTime, denseTime, diff)
	}

	// Neuron-block MLP kernels with layout-aware weights.
	const tokens, d, hidden = 256, 256, 1024
	x := randSlice(rng, tokens*d)
	w1 := sparse.NewColMajor(d, hidden)
	w2 := sparse.NewRowMajor(hidden, d)
	copy(w1.Data, randSlice(rng, d*hidden))
	copy(w2.Data, randSlice(rng, hidden*d))

	fmt.Println("\nMLP neuron-block kernels (FC1 column-major, FC2 row-major):")
	all := sparse.AllBlocks(hidden, blk)
	for _, frac := range []float64{1.0, 0.5, 0.25, 0.1} {
		blocks := all[:max(1, int(float64(len(all))*frac))]
		hiddenBuf := make([]float32, tokens*hidden)
		outBuf := make([]float32, tokens*d)
		start := time.Now()
		sparse.FC1Sparse(hiddenBuf, x, tokens, w1, blocks, blk)
		sparse.FC2Sparse(outBuf, hiddenBuf, tokens, w2, blocks, blk)
		fmt.Printf("  active %3.0f%% (%3d blocks): %v\n", frac*100, len(blocks), time.Since(start))
	}
}

func randSlice(rng *tensor.RNG, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.Norm())
	}
	return x
}

func maskedDiff(got, q, k, v []float32, s, hd int, scale float32, l *sparse.Layout, blk int) float64 {
	scores := tensor.New(s, s)
	tensor.GemmTBRange(scores.Data, q, k, hd, s, 0, s)
	for i := 0; i < s; i++ {
		row := scores.Row(i)
		for j := 0; j < s; j++ {
			if j > i || !l.Active(i/blk, j/blk) {
				row[j] = tensor.NegInf
			} else {
				row[j] *= scale
			}
		}
		tensor.SoftmaxRow(row)
	}
	want := make([]float32, s*hd)
	tensor.GemmRange(want, scores.Data, v, s, hd, 0, s)
	var m float64
	for i := range want {
		d := math.Abs(float64(got[i] - want[i]))
		if d > m {
			m = d
		}
	}
	return m
}
