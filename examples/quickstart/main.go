// Quickstart: fine-tune a small ReLU transformer with LoRA under Long
// Exposure and compare against the dense PEFT baseline — the 60-second tour
// of the public API.
package main

import (
	"fmt"

	"longexposure"
)

func main() {
	spec := longexposure.Sim(longexposure.OPT1p3B())

	// Workload: the synthetic E2E-style slot-to-text corpus.
	corpus := longexposure.NewE2ECorpus(spec.Config.Vocab, 2, 42)
	batches := longexposure.Batches(corpus.Generate(24, 1), 2, 128)
	calib := [][][]int{batches[0].Inputs, batches[1].Inputs}

	// Dense baseline (the PEFT-library equivalent).
	cfg := longexposure.Config{Spec: spec, Method: longexposure.LoRA, Blk: 8, Seed: 1, LR: 2e-3, Prime: true}
	baseline := longexposure.NewBaseline(cfg)
	baseRes := baseline.Run(batches, 2)

	// Long Exposure: same init, predictors pre-trained offline, then
	// fine-tuning under predicted sparsity.
	sys := longexposure.New(cfg)
	stats := sys.PretrainPredictors(calib, longexposure.TrainConfig{Epochs: 10})
	leRes := sys.Engine().Run(batches, 2)

	fmt.Println("== Long Exposure quickstart ==")
	fmt.Printf("model: %s  (%d params)\n", spec, spec.ParamCount())
	fmt.Printf("predictor recall: attention %.2f, MLP %.2f\n", stats.AttnRecall, stats.MLPRecall)
	fmt.Printf("dense   : loss %.3f → %.3f, %.1f ms/step\n",
		baseRes.Losses[0], baseRes.FinalLoss(), msPerStep(baseRes.Times.Total().Seconds(), baseRes.Steps))
	fmt.Printf("longexp : loss %.3f → %.3f, %.1f ms/step (predict %.1f ms)\n",
		leRes.Losses[0], leRes.FinalLoss(), msPerStep(leRes.Times.Total().Seconds(), leRes.Steps),
		msPerStep(leRes.Times.Predict.Seconds(), leRes.Steps))
	fmt.Printf("speedup : %.2fx end-to-end\n",
		baseRes.Times.Total().Seconds()/leRes.Times.Total().Seconds())
}

func msPerStep(totalSeconds float64, steps int) float64 {
	if steps == 0 {
		return 0
	}
	return totalSeconds / float64(steps) * 1000
}
