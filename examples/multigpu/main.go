// multigpu demonstrates the scalability story (Figure 14): a real
// data-parallel fine-tuning run across simulated workers (replicas stay
// bit-identical through gradient all-reduce), plus the modeled strong
// scaling of Long Exposure on A100s.
package main

import (
	"fmt"

	"longexposure"
	"longexposure/internal/gpusim"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

func main() {
	// Real multi-worker run at sim scale.
	spec := longexposure.SimSmall(longexposure.ActReLU)
	corpus := longexposure.NewE2ECorpus(spec.Config.Vocab, 2, 21)
	batches := longexposure.Batches(corpus.Generate(32, 9), 4, 16)

	rng := tensor.NewRNG(1)
	m := nn.NewTransformer(spec.Config, rng)
	peft.Apply(m, peft.LoRA, peft.Options{}, rng.Split())
	dp := train.NewDataParallel(m, 2, func() peft.Optimizer { return peft.NewAdamW(1e-3, 0) }, rng.Split())

	fmt.Println("== Real data-parallel fine-tuning (2 simulated GPUs) ==")
	for i, b := range batches {
		loss, elapsed := dp.Step(b)
		if i%2 == 0 {
			fmt.Printf("step %2d: loss %.4f  (%v, replica drift %.1e)\n", i, loss, elapsed, dp.MaxReplicaDrift())
		}
	}

	// Modeled paper-scale strong scaling.
	fmt.Println("\n== Modeled strong scaling, LongExposure + LoRA on A100 (ms/step) ==")
	dev := gpusim.A100()
	fmt.Printf("%-10s %8s %8s %8s %12s\n", "model", "1 GPU", "2 GPUs", "4 GPUs", "4-GPU eff.")
	for _, spec := range []model.Spec{model.OPT125M(), model.OPT350M(), model.OPT1p3B()} {
		shape := gpusim.StepShape{
			Spec: spec, Batch: 8, Seq: 512, Method: peft.LoRA,
			UseLongExposure: true, AttnDensity: 0.25, MLPDensity: 0.35,
		}
		t1 := gpusim.DataParallelStep(dev, shape, 1)
		t2 := gpusim.DataParallelStep(dev, shape, 2)
		t4 := gpusim.DataParallelStep(dev, shape, 4)
		fmt.Printf("%-10s %8.1f %8.1f %8.1f %11.2f\n",
			spec.Config.Name,
			t1.Seconds()*1000, t2.Seconds()*1000, t4.Seconds()*1000,
			gpusim.ScalingEfficiency(dev, shape, 4))
	}
}
