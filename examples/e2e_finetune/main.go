// e2e_finetune reproduces the paper's performance-evaluation setting at sim
// scale: fine-tune on the E2E-style generation corpus under every PEFT
// method, with the per-phase breakdown (forward / backward / optimizer /
// prediction) that Table I and Figure 10 report.
package main

import (
	"fmt"

	"longexposure"
	"longexposure/internal/peft"
)

func main() {
	spec := longexposure.Sim(longexposure.OPT1p3B())
	corpus := longexposure.NewE2ECorpus(spec.Config.Vocab, 8, 11)
	batches := longexposure.Batches(corpus.Generate(16, 5), 2, 128)
	calib := [][][]int{batches[0].Inputs, batches[1].Inputs}

	fmt.Println("== E2E fine-tuning phase breakdown (sim-OPT-1.3B, ms/step) ==")
	fmt.Printf("%-24s %9s %9s %9s %9s %9s\n", "configuration", "forward", "backward", "optim", "predict", "total")

	for _, method := range []longexposure.Method{peft.FullFT, peft.LoRA, peft.Adapter, peft.BitFit} {
		cfg := longexposure.Config{Spec: spec, Method: method, Blk: 8, Seed: 5, LR: 1e-3, Prime: true}

		base := longexposure.NewBaseline(cfg)
		bres := base.Run(batches, 1)
		bt := bres.MeanStepTime()
		fmt.Printf("%-24s %9.1f %9.1f %9.1f %9s %9.1f\n",
			method.String(), msf(bt.Forward), msf(bt.Backward), msf(bt.Optim), "-", msf(bt.Total()))

		sys := longexposure.New(cfg)
		sys.PretrainPredictors(calib, longexposure.TrainConfig{Epochs: 12})
		lres := sys.Engine().Run(batches, 1)
		lt := lres.MeanStepTime()
		fmt.Printf("%-24s %9.1f %9.1f %9.1f %9.1f %9.1f   (%.2fx)\n",
			method.String()+"+LongExposure", msf(lt.Forward), msf(lt.Backward), msf(lt.Optim), msf(lt.Predict), msf(lt.Total()),
			bt.Total().Seconds()/lt.Total().Seconds())
	}
}

func msf(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1000 }
