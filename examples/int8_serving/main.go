// int8_serving runs the reduced-precision serving loop end to end, in
// process: start the gateway, decode a prompt against the sim-small frozen
// base at f32 and again with the same base published at int8 storage
// precision, then read back the resident-weight gauge showing the ~4x
// footprint drop. The two requests differ only in the base descriptor's
// "precision" field — quantization is a publish-time decision, and the
// int8 base is a distinct serving artifact (different content hash) from
// the f32 base it was derived from.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"longexposure/internal/jobs"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
)

func main() {
	// An in-process daemon: the same serve.New wiring longexpd uses, on an
	// httptest listener so the example is self-contained.
	dir, err := os.MkdirTemp("", "int8-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	reg, err := registry.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	obsReg := obs.NewRegistry()
	store := jobs.NewStore(jobs.Config{Workers: 1, Registry: reg, Obs: obsReg})
	srv := serve.New(store, serve.WithRegistry(reg, 2), serve.WithMetrics(obsReg))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, precision := range []string{"f32", "int8"} {
		base := map[string]any{"model": "sim-small", "activation": "relu", "seed": 1, "blk": 8, "prime": true}
		if precision != "f32" {
			base["precision"] = precision
		}
		tokens := generate(ts.URL, base)
		fmt.Printf("%-5s base: %d tokens: %v\n", precision, len(tokens), tokens)
	}

	// The metrics plane reports the resident frozen-base weight bytes per
	// storage precision. Only the large matrices quantize (embeddings and
	// norms stay f32), so at sim-small scale the int8 twin lands under
	// half the f32 gauge; at real model shapes the packed matrices
	// dominate and the ratio approaches 4x.
	fmt.Println("\nlexp_base_weight_bytes:")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "lexp_base_weight_bytes{") {
			fmt.Println("  " + sc.Text())
		}
	}
}

// generate posts one /v1/generate request against an explicit base
// description and returns the token ids from the stream's done frame.
func generate(url string, base map[string]any) []int {
	body, _ := json.Marshal(map[string]any{
		"base":   base,
		"prompt": []int{5, 6, 7},
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 8, "seed": 3}},
	})
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e bytes.Buffer
		e.ReadFrom(resp.Body)
		log.Fatalf("generate: %s: %s", resp.Status, e.String())
	}
	event := ""
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "done":
			var done struct {
				Tokens []int `json:"tokens"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &done); err != nil {
				log.Fatalf("bad done frame: %v", err)
			}
			return done.Tokens
		case strings.HasPrefix(line, "data: ") && event == "error":
			log.Fatalf("error frame: %s", line)
		}
	}
	log.Fatal("stream ended without done frame")
	return nil
}
