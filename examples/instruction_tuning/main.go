// instruction_tuning mirrors the paper's accuracy study (Table IV) at sim
// scale: fine-tune with LoRA on instruction-style data, with and without
// Long Exposure, and evaluate on the five downstream tasks — showing that
// predicted sparsity preserves accuracy.
package main

import (
	"fmt"

	"longexposure"
)

func main() {
	spec := longexposure.SimSmall(longexposure.ActReLU)
	tasks := longexposure.Tasks()
	const seqLen = 16

	// Mixed instruction-style training data across all tasks.
	var trainEx []longexposure.Example
	for ti, task := range tasks {
		trainEx = append(trainEx, task.Generate(96, spec.Config.Vocab, uint64(100+ti))...)
	}
	batches := longexposure.Batches(trainEx, 8, seqLen)
	calib := [][][]int{batches[0].Inputs, batches[1].Inputs}

	cfg := longexposure.Config{
		Spec: spec, Method: longexposure.LoRA,
		Blk: 4, Seed: 3, LR: 3e-3, ClipNorm: 1, Prime: true,
	}

	// Arm 1: dense LoRA.
	dense := longexposure.NewBaseline(cfg)
	dense.Run(batches, 6)

	// Arm 2: LoRA + Long Exposure (same initialization).
	sys := longexposure.New(cfg)
	sys.PretrainPredictors(calib, longexposure.TrainConfig{Epochs: 10})
	sys.Engine().Run(batches, 6)

	fmt.Println("== Instruction tuning: accuracy with vs without Long Exposure ==")
	fmt.Printf("%-12s %10s %10s %8s\n", "Task", "w/o LE", "w LE", "Δ")
	for ti, task := range tasks {
		testEx := task.Generate(64, spec.Config.Vocab, uint64(900+ti))
		accDense := longexposure.EvaluateTask(dense.Model, testEx, seqLen, nil)
		accLE := longexposure.EvaluateTask(sys.Model, testEx, seqLen, sys.Planner)
		fmt.Printf("%-12s %9.1f%% %9.1f%% %+7.1f%%\n",
			task.Name, accDense*100, accLE*100, (accLE-accDense)*100)
	}
	fmt.Println("\n(random-chance baselines: 50% for binary tasks, 25% for HellaSwag)")
}
