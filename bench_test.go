package longexposure

// The benchmark harness: one testing.B benchmark per paper table and
// figure, each running the corresponding experiment driver end to end in
// quick mode (real engine execution at sim scale plus the paper-scale cost
// model). `go test -bench=. -benchmem` regenerates every artifact;
// `cmd/longexp` prints them at full fidelity.

import (
	"testing"

	"longexposure/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		// Even in quick mode a full driver takes seconds — far over CI's
		// budget. CI measures kernels via `go run ./cmd/lebench -suite
		// kernels -short` instead; run these locally without -short.
		b.Skipf("skipping experiment benchmark %s in -short mode", id)
	}
	if !experiments.Known(id) {
		// A renamed or not-yet-implemented driver should not fail the
		// whole benchmark run.
		b.Skipf("unknown experiment %q (have %v)", id, experiments.IDs())
	}
	o := experiments.Options{Quick: true, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Sections) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkTable1 regenerates Table I (per-phase time breakdown).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table II (model zoo).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3 regenerates Table III (downstream tasks).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4 regenerates Table IV (accuracy with/without LE).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkFig7 regenerates Figure 7 (OPT execution time + speedup).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (memory footprints).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (per-layer sparsity + performance).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (phase breakdown w/ and w/o LE).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (loss curves + predictor viz).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (dynamic operators vs dense).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (GPT-2 scalability).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14 (multi-GPU strong scaling).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig4 regenerates the Figure 4 shadowy-sparsity observation.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkAblations regenerates the design-choice ablation study.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }
