package longexposure

// Integration tests over the public API: the library surface a downstream
// user programs against.

import (
	"math"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	spec := SimSmall(ActReLU)
	corpus := NewE2ECorpus(spec.Config.Vocab, 2, 42)
	batches := Batches(corpus.Generate(16, 1), 2, 16)
	calib := [][][]int{batches[0].Inputs}

	cfg := Config{Spec: spec, Method: LoRA, Blk: 4, Seed: 1, Prime: true}
	base := NewBaseline(cfg)
	bres := base.Run(batches, 1)

	sys := New(cfg)
	stats := sys.PretrainPredictors(calib, TrainConfig{Epochs: 5})
	if stats.AttnRecall <= 0 || stats.MLPRecall <= 0 {
		t.Fatalf("predictor stats empty: %+v", stats)
	}
	lres := sys.Engine().Run(batches, 1)

	if math.IsNaN(bres.FinalLoss()) || math.IsNaN(lres.FinalLoss()) {
		t.Fatal("NaN losses")
	}
	// Same seed → identical first-step loss (sparsity only kicks in via
	// the planner; step 0 forward differs only by masked-out mass).
	if math.Abs(bres.Losses[0]-lres.Losses[0]) > 0.5 {
		t.Fatalf("arms diverged at step 0: %v vs %v", bres.Losses[0], lres.Losses[0])
	}
}

func TestPublicMethodsAndSpecs(t *testing.T) {
	for _, m := range []Method{FullFT, LoRA, Adapter, BitFit, PTuning} {
		if m.String() == "" {
			t.Fatal("method unnamed")
		}
	}
	for _, spec := range []Spec{OPT125M(), OPT350M(), OPT1p3B(), OPT2p7B(), GPT2Large(), GPT2XL()} {
		if spec.ParamCount() <= 0 {
			t.Fatalf("%s has no parameters", spec)
		}
	}
	if A100().MemBytes <= A6000().MemBytes {
		t.Fatal("A100 should have more memory than A6000")
	}
}

func TestPublicTaskEvaluation(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 5 {
		t.Fatalf("want 5 Table III tasks, got %d", len(tasks))
	}
	spec := SimSmall(ActReLU)
	sys := New(Config{Spec: spec, Method: LoRA, Blk: 4, Seed: 2})
	ex := tasks[0].Generate(8, spec.Config.Vocab, 3)
	acc := EvaluateTask(sys.Model, ex, 16, nil)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 13 {
		t.Fatalf("registry too small: %v", ids)
	}
	r, err := RunExperiment("table2", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Markdown(), "OPT-1.3B") {
		t.Fatal("table2 markdown missing models")
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
