# Convenience targets mirroring .github/workflows/ci.yml exactly, so local
# runs and CI agree. `make ci` is the full gate; `make check` is the fast
# pre-commit subset (see README "Development").

GO ?= go
BASELINE := .github/bench/BENCH_kernels.json

.PHONY: build test race bench bench-all baseline fmt vet check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrent packages (job service, HTTP API,
# worker pool) — the same set CI runs.
race:
	$(GO) test -race ./internal/jobs/... ./internal/serve/... ./internal/parallel/...

# CI-sized kernel benchmarks, gated against the checked-in baseline.
bench:
	$(GO) run ./cmd/lebench -suite kernels -short -baseline $(BASELINE) -tolerance 0.20

# Every suite at full size (kernels + whole-experiment timings).
bench-all:
	$(GO) run ./cmd/lebench -suite all

# Regenerate the checked-in baseline from this machine. Commit the result
# only when intentionally resetting the perf reference (e.g. after a
# deliberate trade-off or a runner change).
baseline:
	$(GO) run ./cmd/lebench -suite kernels -short -out .github/bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet

ci: check build test race bench
