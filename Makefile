# Convenience targets mirroring .github/workflows/ci.yml exactly, so local
# runs and CI agree. `make ci` is the full gate; `make check` is the fast
# pre-commit subset (see README "Development").

GO ?= go
BASELINES := .github/bench

.PHONY: build test race bench bench-precision bench-allocs bench-slo bench-all baseline fmt vet check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the concurrent packages (job service, HTTP API,
# worker pool, concurrent training replicas, multi-adapter decoding on a
# shared base) — the same set CI runs.
race:
	$(GO) test -race ./internal/jobs/... ./internal/serve/... ./internal/parallel/... ./internal/train/... ./internal/tensor/... ./internal/infer/... ./internal/registry/... ./internal/nn/... ./internal/obs/... ./internal/limit/... ./internal/trace/... ./internal/predictor/... ./internal/half/... ./internal/sparse/... ./internal/slo/... ./internal/events/... ./internal/account/...

# CI-sized benchmarks, gated against the checked-in baselines on both
# ns/op (relative tolerance) and allocs/op (absolute tolerance).
bench:
	$(GO) run ./cmd/lebench -suite kernels,kernels_precision,train_step,generate,obs,trace,slo,account -short -baseline $(BASELINES) -tolerance 0.20 -alloc-tolerance 16

# Reduced-precision pipeline alone: f16/int8 packed GEMM vs the f32 tiled
# core, decode/prefill TB shapes, 2:4 N:M vs dense, and end-to-end int8
# decode — gated on ns/op, allocs/op and the declared bytes/op model.
bench-precision:
	$(GO) run ./cmd/lebench -suite kernels_precision -short -baseline $(BASELINES) -tolerance 0.20 -alloc-tolerance 16

# Allocation gate alone: the train_step, obs, trace, slo and account
# suites compare the workspace-arena step (bare and instrumented), the
# instrumented decode step, the SLO evaluation tick, and the wide-event
# emit against their checked-in zero allocs/op baselines — mirrors the CI
# bench job's allocation axis.
bench-allocs:
	$(GO) run ./cmd/lebench -suite train_step,obs,trace,slo,account -short -baseline $(BASELINES) -tolerance 1000 -alloc-tolerance 16

# SLO engine alone: the zero-alloc evaluation tick (bare and with the
# flight recorder's per-tick capture) plus the /readyz enabled/disabled
# parity pair.
bench-slo:
	$(GO) run ./cmd/lebench -suite slo -short -baseline $(BASELINES) -tolerance 0.20 -alloc-tolerance 16

# Every suite at full size (kernels + train step + whole-experiment timings).
bench-all:
	$(GO) run ./cmd/lebench -suite all

# Regenerate the checked-in baselines from this machine. Commit the result
# only when intentionally resetting the perf reference (e.g. after a
# deliberate trade-off or a runner change).
baseline:
	$(GO) run ./cmd/lebench -suite kernels,kernels_precision,train_step,generate,obs,trace,slo,account -short -repeats 4 -out .github/bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt vet

ci: check build test race bench
