package sparse

import "fmt"

// Kind enumerates the atomic sparse-attention pattern families the offline
// pool is built from (§VI-A). Existing sparse attention masks — Longformer,
// Big Bird, A-shape, strided — are combinations of these atoms, which is
// what makes a small pre-computed pool sufficient for the dynamic patterns
// the predictor emits at runtime.
type Kind uint8

const (
	// KindDense activates every causal block (no sparsity).
	KindDense Kind = iota
	// KindLocal activates a sliding window of Window block-diagonals.
	KindLocal
	// KindGlobal activates the first Global block-columns (sink tokens) and,
	// symmetrically, the first Global block-rows within the causal triangle.
	KindGlobal
	// KindLocalGlobal is Local ∪ Global — the Longformer / A-shape family.
	KindLocalGlobal
	// KindStrided activates every Stride-th block-column per row plus the
	// diagonal (the Sparse-Transformer family).
	KindStrided
	// KindRandom activates the diagonal plus RandomPerRow random causal
	// blocks per row, seeded — the Big Bird random component.
	KindRandom
	// KindBigBird is Local ∪ Global ∪ Random.
	KindBigBird
)

// String names the pattern kind.
func (k Kind) String() string {
	switch k {
	case KindDense:
		return "dense"
	case KindLocal:
		return "local"
	case KindGlobal:
		return "global"
	case KindLocalGlobal:
		return "local+global"
	case KindStrided:
		return "strided"
	case KindRandom:
		return "random"
	case KindBigBird:
		return "bigbird"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Pattern is a parameterized atomic sparse-attention pattern. All patterns
// are causal: no block above the diagonal is ever active, and the diagonal
// itself is always active (a token must attend to itself).
type Pattern struct {
	Kind         Kind
	Window       int    // KindLocal/-Global/BigBird: width in block-diagonals (≥1)
	Global       int    // KindGlobal/-LocalGlobal/BigBird: number of sink block-columns
	Stride       int    // KindStrided: column period (≥2)
	RandomPerRow int    // KindRandom/BigBird: random blocks per row
	Seed         uint64 // KindRandom/BigBird: deterministic seed
}

// String renders a compact key such as "local(w=2)".
func (p Pattern) String() string {
	switch p.Kind {
	case KindDense:
		return "dense"
	case KindLocal:
		return fmt.Sprintf("local(w=%d)", p.Window)
	case KindGlobal:
		return fmt.Sprintf("global(g=%d)", p.Global)
	case KindLocalGlobal:
		return fmt.Sprintf("local+global(w=%d,g=%d)", p.Window, p.Global)
	case KindStrided:
		return fmt.Sprintf("strided(s=%d)", p.Stride)
	case KindRandom:
		return fmt.Sprintf("random(r=%d,seed=%d)", p.RandomPerRow, p.Seed)
	case KindBigBird:
		return fmt.Sprintf("bigbird(w=%d,g=%d,r=%d,seed=%d)", p.Window, p.Global, p.RandomPerRow, p.Seed)
	default:
		return p.Kind.String()
	}
}

// activeAt reports whether block (br, bc) is active under p on an nb grid.
// Only causal coordinates (bc ≤ br) are ever queried.
func (p Pattern) activeAt(br, bc, nb int) bool {
	if bc > br {
		return false
	}
	if bc == br {
		return true // diagonal always active
	}
	switch p.Kind {
	case KindDense:
		return true
	case KindLocal:
		return br-bc < max(1, p.Window)
	case KindGlobal:
		return bc < p.Global || br < p.Global
	case KindLocalGlobal:
		return br-bc < max(1, p.Window) || bc < p.Global || br < p.Global
	case KindStrided:
		s := max(2, p.Stride)
		return (br-bc)%s == 0
	case KindRandom:
		return randBlockActive(br, bc, nb, p.RandomPerRow, p.Seed)
	case KindBigBird:
		if br-bc < max(1, p.Window) || bc < p.Global || br < p.Global {
			return true
		}
		return randBlockActive(br, bc, nb, p.RandomPerRow, p.Seed)
	default:
		return false
	}
}

// randBlockActive deterministically selects r pseudo-random causal columns
// per row using a hash, so the same (row, seed) always picks the same
// columns — required for the layout LUT to be precomputable.
func randBlockActive(br, bc, nb, r int, seed uint64) bool {
	if r <= 0 || br == 0 {
		return false
	}
	for i := 0; i < r; i++ {
		h := seed ^ uint64(br)*0x9e3779b97f4a7c15 ^ uint64(i)*0xbf58476d1ce4e5b9
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
		if int(h%uint64(br)) == bc { // pick among columns [0, br)
			return true
		}
	}
	return false
}

// Build constructs the layout of p on an nb × nb block grid.
func (p Pattern) Build(nb int) *Layout {
	return NewLayout(nb, func(br, bc int) bool { return p.activeAt(br, bc, nb) })
}

// DefaultPool returns the atomic patterns pre-computed offline by the
// operator pool: the parameter grid the exposer matches predicted masks
// against. The pool spans the patterns used by Longformer, Big Bird and the
// strided family at several widths, plus dense as the fallback.
func DefaultPool() []Pattern {
	return []Pattern{
		{Kind: KindLocal, Window: 1},
		{Kind: KindLocal, Window: 2},
		{Kind: KindLocal, Window: 4},
		{Kind: KindLocalGlobal, Window: 1, Global: 1},
		{Kind: KindLocalGlobal, Window: 2, Global: 1},
		{Kind: KindLocalGlobal, Window: 2, Global: 2},
		{Kind: KindLocalGlobal, Window: 4, Global: 2},
		{Kind: KindStrided, Stride: 2},
		{Kind: KindStrided, Stride: 4},
		{Kind: KindBigBird, Window: 2, Global: 1, RandomPerRow: 2, Seed: 17},
		{Kind: KindDense},
	}
}
