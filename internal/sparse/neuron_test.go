package sparse

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

func randVec(r *tensor.RNG, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(r.Norm())
	}
	return x
}

func TestColMajorRoundTrip(t *testing.T) {
	r := tensor.NewRNG(1)
	in, out := 5, 7
	rm := randVec(r, in*out)
	w := NewColMajor(in, out)
	w.SetFromRowMajor(rm)
	for row := 0; row < in; row++ {
		for c := 0; c < out; c++ {
			if w.Col(c)[row] != rm[row*out+c] {
				t.Fatalf("(%d,%d) mismatched", row, c)
			}
		}
	}
}

func TestFC1SparseAllBlocksEqualsDense(t *testing.T) {
	r := tensor.NewRNG(2)
	tokens, d, H, blk := 6, 8, 16, 4
	x := randVec(r, tokens*d)
	wrm := randVec(r, d*H)
	w := NewColMajor(d, H)
	w.SetFromRowMajor(wrm)

	got := make([]float32, tokens*H)
	FC1Sparse(got, x, tokens, w, AllBlocks(H, blk), blk)

	want := make([]float32, tokens*H)
	tensor.GemmRange(want, x, wrm, d, H, 0, tokens)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("FC1[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFC1SparseSubsetTouchesOnlyActive(t *testing.T) {
	r := tensor.NewRNG(3)
	tokens, d, H, blk := 4, 6, 16, 4
	x := randVec(r, tokens*d)
	w := NewColMajor(d, H)
	w.SetFromRowMajor(randVec(r, d*H))

	blocks := []int{1, 3}
	got := make([]float32, tokens*H)
	FC1Sparse(got, x, tokens, w, blocks, blk)

	active := map[int]bool{}
	for _, nb := range blocks {
		for c := nb * blk; c < (nb+1)*blk; c++ {
			active[c] = true
		}
	}
	for i := 0; i < tokens; i++ {
		for c := 0; c < H; c++ {
			v := got[i*H+c]
			if !active[c] && v != 0 {
				t.Fatalf("inactive column %d written: %v", c, v)
			}
			if active[c] {
				var want float32
				col := w.Col(c)
				for kk := 0; kk < d; kk++ {
					want += x[i*d+kk] * col[kk]
				}
				if math.Abs(float64(v-want)) > 1e-4 {
					t.Fatalf("active column %d wrong", c)
				}
			}
		}
	}
}

func TestFC2SparseAllBlocksEqualsDense(t *testing.T) {
	r := tensor.NewRNG(4)
	tokens, H, d, blk := 5, 16, 7, 4
	hidden := randVec(r, tokens*H)
	wrm := randVec(r, H*d)
	w := NewRowMajor(H, d)
	copy(w.Data, wrm) // row-major is the native layout for FC2

	got := make([]float32, tokens*d)
	FC2Sparse(got, hidden, tokens, w, AllBlocks(H, blk), blk)

	want := make([]float32, tokens*d)
	tensor.GemmRange(want, hidden, wrm, H, d, 0, tokens)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("FC2[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFC2SparseSubsetEqualsZeroedHidden(t *testing.T) {
	r := tensor.NewRNG(5)
	tokens, H, d, blk := 4, 16, 5, 4
	hidden := randVec(r, tokens*H)
	w := NewRowMajor(H, d)
	copy(w.Data, randVec(r, H*d))

	blocks := []int{0, 2}
	got := make([]float32, tokens*d)
	FC2Sparse(got, hidden, tokens, w, blocks, blk)

	// Reference: zero out hidden outside active blocks, dense matmul.
	hz := append([]float32(nil), hidden...)
	for i := 0; i < tokens; i++ {
		for h := 0; h < H; h++ {
			if h/blk != 0 && h/blk != 2 {
				hz[i*H+h] = 0
			}
		}
	}
	want := make([]float32, tokens*d)
	tensor.GemmRange(want, hz, w.Data, H, d, 0, tokens)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("FC2 subset[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFC1GradInputMatchesDense(t *testing.T) {
	r := tensor.NewRNG(6)
	tokens, d, H, blk := 4, 6, 12, 4
	dHidden := randVec(r, tokens*H)
	wrm := randVec(r, d*H)
	w := NewColMajor(d, H)
	w.SetFromRowMajor(wrm)

	got := make([]float32, tokens*d)
	FC1GradInput(got, dHidden, tokens, w, AllBlocks(H, blk), blk)

	// dx = dHidden · W1ᵀ; with row-major W1 [d,H]: dx = dHidden · (W1ᵀ) =
	// GemmTB(dHidden [tokens,H], W1 [d,H]).
	want := make([]float32, tokens*d)
	tensor.GemmTBRange(want, dHidden, wrm, H, d, 0, tokens)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("FC1GradInput[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFC2GradHiddenMatchesDense(t *testing.T) {
	r := tensor.NewRNG(7)
	tokens, H, d, blk := 4, 12, 6, 4
	dOut := randVec(r, tokens*d)
	w := NewRowMajor(H, d)
	copy(w.Data, randVec(r, H*d))

	got := make([]float32, tokens*H)
	FC2GradHidden(got, dOut, tokens, w, AllBlocks(H, blk), blk)

	// dHidden = dOut · W2ᵀ = GemmTB(dOut [tokens,d], W2 [H,d]).
	want := make([]float32, tokens*H)
	tensor.GemmTBRange(want, dOut, w.Data, d, H, 0, tokens)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("FC2GradHidden[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestFC1GradWeightMatchesDense(t *testing.T) {
	r := tensor.NewRNG(8)
	tokens, d, H, blk := 5, 6, 12, 4
	x := randVec(r, tokens*d)
	dHidden := randVec(r, tokens*H)

	dW := NewColMajor(d, H)
	FC1GradWeight(dW, x, dHidden, tokens, AllBlocks(H, blk), blk)

	// dW1 = xᵀ · dHidden, row-major [d, H].
	want := make([]float32, d*H)
	tensor.GemmTARange(want, x, dHidden, tokens, d, H, 0, d)

	for row := 0; row < d; row++ {
		for c := 0; c < H; c++ {
			got := dW.Col(c)[row]
			if math.Abs(float64(got-want[row*H+c])) > 1e-4 {
				t.Fatalf("dW1(%d,%d): %v vs %v", row, c, got, want[row*H+c])
			}
		}
	}
}

func TestFC2GradWeightMatchesDense(t *testing.T) {
	r := tensor.NewRNG(9)
	tokens, H, d, blk := 5, 12, 6, 4
	hidden := randVec(r, tokens*H)
	dOut := randVec(r, tokens*d)

	dW := NewRowMajor(H, d)
	FC2GradWeight(dW, hidden, dOut, tokens, AllBlocks(H, blk), blk)

	// dW2 = hiddenᵀ · dOut, row-major [H, d].
	want := make([]float32, H*d)
	tensor.GemmTARange(want, hidden, dOut, tokens, H, d, 0, H)

	for i := range want {
		if math.Abs(float64(dW.Data[i]-want[i])) > 1e-4 {
			t.Fatalf("dW2[%d]: %v vs %v", i, dW.Data[i], want[i])
		}
	}
}

func TestAllBlocksCeil(t *testing.T) {
	if got := AllBlocks(10, 4); len(got) != 3 {
		t.Fatalf("AllBlocks(10,4) = %v", got)
	}
}
