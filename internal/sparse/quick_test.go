package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"longexposure/internal/tensor"
)

// randomLayoutFromSeed builds a deterministic pseudo-random causal layout.
func randomLayoutFromSeed(seed uint32, nb int) *Layout {
	return NewLayout(nb, func(br, bc int) bool {
		if bc > br {
			return false
		}
		if bc == br {
			return true
		}
		h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(br*131+bc)
		h = (h ^ (h >> 31)) * 0xbf58476d1ce4e5b9
		return h%5 < 2
	})
}

// Property: ToDense ∘ FromDense is the identity on active blocks for any
// layout, and inactive blocks stay zero in ToDense.
func TestQuickBlockSparseRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		nb, blk := 5, 3
		l := randomLayoutFromSeed(seed, nb)
		m := NewBlockSparse(l, blk)
		r := tensor.NewRNG(uint64(seed) + 1)
		for i := range m.Data {
			m.Data[i] = float32(r.Norm())
		}
		d := m.ToDense()
		// Inactive blocks must be zero.
		for br := 0; br < nb; br++ {
			for bc := 0; bc < nb; bc++ {
				if l.Active(br, bc) {
					continue
				}
				for i := 0; i < blk; i++ {
					for j := 0; j < blk; j++ {
						if d.At(br*blk+i, bc*blk+j) != 0 {
							return false
						}
					}
				}
			}
		}
		m2 := NewBlockSparse(l, blk)
		m2.FromDense(d)
		for i := range m.Data {
			if m.Data[i] != m2.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: SDD is additive in its inputs — SDD(a+a', b) = SDD(a, b) +
// SDD(a', b) blockwise (bilinearity of the kernel).
func TestQuickSDDLinearity(t *testing.T) {
	f := func(seed uint32) bool {
		nb, blk, hd := 4, 2, 3
		s := nb * blk
		l := randomLayoutFromSeed(seed, nb)
		r := tensor.NewRNG(uint64(seed)*7 + 3)
		mk := func() []float32 {
			x := make([]float32, s*hd)
			for i := range x {
				x[i] = float32(r.Norm())
			}
			return x
		}
		a1, a2, b := mk(), mk(), mk()

		sum := make([]float32, s*hd)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		mSum := NewBlockSparse(l, blk)
		SDD(mSum, sum, b, hd)

		m1 := NewBlockSparse(l, blk)
		m2 := NewBlockSparse(l, blk)
		SDD(m1, a1, b, hd)
		SDD(m2, a2, b, hd)
		for i := range mSum.Data {
			if math.Abs(float64(mSum.Data[i]-(m1.Data[i]+m2.Data[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: DSD(sp, b) equals the dense product of sp.ToDense() with b for
// any random layout and contents.
func TestQuickDSDMatchesDense(t *testing.T) {
	f := func(seed uint32) bool {
		nb, blk, n := 4, 2, 3
		s := nb * blk
		l := randomLayoutFromSeed(seed, nb)
		r := tensor.NewRNG(uint64(seed)*13 + 5)
		sp := NewBlockSparse(l, blk)
		for i := range sp.Data {
			sp.Data[i] = float32(r.Norm())
		}
		b := make([]float32, s*n)
		for i := range b {
			b[i] = float32(r.Norm())
		}
		got := make([]float32, s*n)
		DSD(got, sp, b, n)
		want := make([]float32, s*n)
		tensor.GemmRange(want, sp.ToDense().Data, b, s, n, 0, s)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Combine's total equals the sum of per-head NNZ, its density is
// the mean layout density, and every task references an active block.
func TestQuickCombineConsistency(t *testing.T) {
	f := func(s1, s2, s3 uint32) bool {
		nb := 6
		heads := []*Layout{
			randomLayoutFromSeed(s1, nb),
			randomLayoutFromSeed(s2, nb),
			randomLayoutFromSeed(s3, nb),
		}
		hl := Combine(heads)
		want := 0
		for _, h := range heads {
			want += h.NNZ()
		}
		if hl.TotalBlocks() != want || len(hl.Tasks) != want {
			return false
		}
		for _, task := range hl.Tasks {
			if !heads[task.Head].Active(task.BR, task.BC) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CausalSoftmax output rows are valid distributions for any
// layout covering the diagonal.
func TestQuickCausalSoftmaxDistribution(t *testing.T) {
	f := func(seed uint32) bool {
		nb, blk, hd := 4, 3, 4
		s := nb * blk
		l := randomLayoutFromSeed(seed, nb)
		r := tensor.NewRNG(uint64(seed) + 11)
		q := make([]float32, s*hd)
		k := make([]float32, s*hd)
		for i := range q {
			q[i] = float32(r.Norm())
			k[i] = float32(r.Norm())
		}
		sp := NewBlockSparse(l, blk)
		SDD(sp, q, k, hd)
		CausalSoftmax(sp, 0.5)
		d := sp.ToDense()
		for i := 0; i < s; i++ {
			var sum float64
			for j := 0; j <= i; j++ {
				v := float64(d.At(i, j))
				if v < 0 || v > 1.000001 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
