package sparse

import (
	"fmt"

	"longexposure/internal/parallel"
)

// Neuron-centric MLP kernels (§VI-B). An MLP block is FC1 [d → H] followed
// by an activation and FC2 [H → d]. When a hidden neuron h is predicted
// inactive, column h of FC1 and row h of FC2 both drop out of the
// computation. The kernels therefore take a list of active neuron *blocks*
// (indices into the H dimension divided by blk) and touch nothing else —
// no data format conversion, exactly the conventional tiling loop with the
// inactive tiles skipped.
//
// The paper's memory-coalescing optimization is reflected in the storage
// layouts: FC1 weights are stored column-major so an active neuron's input
// weights are contiguous, FC2 weights row-major so an active neuron's
// output weights are contiguous. On CPU, contiguity buys cache lines and
// hardware prefetch — the same effect coalescing buys on GPU.

// ColMajor stores a [In × Out] weight matrix column-by-column:
// column c occupies Data[c*In : (c+1)*In]. FC1 uses it.
type ColMajor struct {
	In, Out int
	Data    []float32
}

// NewColMajor allocates a zeroed column-major weight matrix.
func NewColMajor(in, out int) *ColMajor {
	return &ColMajor{In: in, Out: out, Data: make([]float32, in*out)}
}

// Col returns column c (the input weights of neuron c), contiguous.
func (w *ColMajor) Col(c int) []float32 { return w.Data[c*w.In : (c+1)*w.In] }

// SetFromRowMajor fills w from a row-major [In × Out] matrix.
func (w *ColMajor) SetFromRowMajor(rm []float32) {
	if len(rm) != w.In*w.Out {
		panic(fmt.Sprintf("sparse: SetFromRowMajor got %d values, want %d", len(rm), w.In*w.Out))
	}
	for r := 0; r < w.In; r++ {
		for c := 0; c < w.Out; c++ {
			w.Data[c*w.In+r] = rm[r*w.Out+c]
		}
	}
}

// RowMajor stores a [In × Out] weight matrix row-by-row:
// row r occupies Data[r*Out : (r+1)*Out]. FC2 uses it.
type RowMajor struct {
	In, Out int
	Data    []float32
}

// NewRowMajor allocates a zeroed row-major weight matrix.
func NewRowMajor(in, out int) *RowMajor {
	return &RowMajor{In: in, Out: out, Data: make([]float32, in*out)}
}

// Row returns row r (the output weights of neuron r), contiguous.
func (w *RowMajor) Row(r int) []float32 { return w.Data[r*w.Out : (r+1)*w.Out] }

// FC1Sparse computes hidden[:, active] += x · W1[:, active] for the active
// neuron blocks only. x is [tokens × d] (d == w.In), hidden is
// [tokens × H] (H == w.Out) with inactive columns untouched (callers keep
// them zero). Parallel over token rows.
func FC1Sparse(hidden, x []float32, tokens int, w *ColMajor, blocks []int, blk int) {
	d, H := w.In, w.Out
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x[i*d : (i+1)*d]
			out := hidden[i*H : (i+1)*H]
			for _, nb := range blocks {
				for c := nb * blk; c < (nb+1)*blk && c < H; c++ {
					col := w.Col(c)
					var s float32
					for kk, xv := range xi {
						s += xv * col[kk]
					}
					out[c] += s
				}
			}
		}
	})
}

// FC2Sparse computes out += hidden[:, active] · W2[active, :] for the active
// neuron blocks only. hidden is [tokens × H] (H == w.In), out is
// [tokens × d] (d == w.Out). Parallel over token rows.
func FC2Sparse(out, hidden []float32, tokens int, w *RowMajor, blocks []int, blk int) {
	H, d := w.In, w.Out
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hid := hidden[i*H : (i+1)*H]
			oi := out[i*d : (i+1)*d]
			for _, nb := range blocks {
				for h := nb * blk; h < (nb+1)*blk && h < H; h++ {
					hv := hid[h]
					if hv == 0 {
						continue
					}
					row := w.Row(h)
					for c, wv := range row {
						oi[c] += hv * wv
					}
				}
			}
		}
	})
}

// FC1GradInput computes dx += dHidden[:, active] · W1[:, active]ᵀ — the
// input gradient through FC1 restricted to active neurons. Parallel over
// token rows.
func FC1GradInput(dx, dHidden []float32, tokens int, w *ColMajor, blocks []int, blk int) {
	d, H := w.In, w.Out
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dh := dHidden[i*H : (i+1)*H]
			dxi := dx[i*d : (i+1)*d]
			for _, nb := range blocks {
				for c := nb * blk; c < (nb+1)*blk && c < H; c++ {
					g := dh[c]
					if g == 0 {
						continue
					}
					col := w.Col(c)
					for kk, wv := range col {
						dxi[kk] += g * wv
					}
				}
			}
		}
	})
}

// FC2GradHidden computes dHidden[:, active] += dOut · W2[active, :]ᵀ — the
// hidden gradient through FC2 restricted to active neurons. Parallel over
// token rows.
func FC2GradHidden(dHidden, dOut []float32, tokens int, w *RowMajor, blocks []int, blk int) {
	H, d := w.In, w.Out
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			do := dOut[i*d : (i+1)*d]
			dh := dHidden[i*H : (i+1)*H]
			for _, nb := range blocks {
				for h := nb * blk; h < (nb+1)*blk && h < H; h++ {
					row := w.Row(h)
					var s float32
					for c, wv := range row {
						s += do[c] * wv
					}
					dh[h] += s
				}
			}
		}
	})
}

// FC1GradWeight accumulates dW1[:, active] += xᵀ · dHidden[:, active] into a
// column-major gradient buffer (used only when the backbone is trainable,
// i.e. the full fine-tuning baseline). Parallel over active blocks, so no
// two goroutines write the same column.
func FC1GradWeight(dW *ColMajor, x, dHidden []float32, tokens int, blocks []int, blk int) {
	d, H := dW.In, dW.Out
	parallel.For(len(blocks), func(bi int) {
		nb := blocks[bi]
		for c := nb * blk; c < (nb+1)*blk && c < H; c++ {
			col := dW.Col(c)
			for i := 0; i < tokens; i++ {
				g := dHidden[i*H+c]
				if g == 0 {
					continue
				}
				xi := x[i*d : (i+1)*d]
				for kk, xv := range xi {
					col[kk] += g * xv
				}
			}
		}
	})
}

// FC2GradWeight accumulates dW2[active, :] += hiddenᵀ[active, :] · dOut into
// a row-major gradient buffer. Parallel over active blocks.
func FC2GradWeight(dW *RowMajor, hidden, dOut []float32, tokens int, blocks []int, blk int) {
	H, d := dW.In, dW.Out
	parallel.For(len(blocks), func(bi int) {
		nb := blocks[bi]
		for h := nb * blk; h < (nb+1)*blk && h < H; h++ {
			row := dW.Row(h)
			for i := 0; i < tokens; i++ {
				hv := hidden[i*H+h]
				if hv == 0 {
					continue
				}
				do := dOut[i*d : (i+1)*d]
				for c, dv := range do {
					row[c] += hv * dv
				}
			}
		}
	})
}

// AllBlocks returns the block list {0, 1, …, ⌈H/blk⌉−1}, the "fully dense"
// active set used by baselines and tests.
func AllBlocks(H, blk int) []int {
	n := (H + blk - 1) / blk
	bs := make([]int, n)
	for i := range bs {
		bs[i] = i
	}
	return bs
}
