package sparse

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

// skewedHeads builds layouts with very different densities — the workload
// shape §VI-A's balancing targets.
func skewedHeads(nb int) []*Layout {
	return []*Layout{
		Pattern{Kind: KindLocal, Window: 1}.Build(nb),
		Pattern{Kind: KindDense}.Build(nb),
		Pattern{Kind: KindLocalGlobal, Window: 2, Global: 1}.Build(nb),
		Pattern{Kind: KindStrided, Stride: 2}.Build(nb),
	}
}

func randHeadBufs(seed uint64, heads, s, hd int) [][]float32 {
	r := tensor.NewRNG(seed)
	out := make([][]float32, heads)
	for h := range out {
		buf := make([]float32, s*hd)
		for i := range buf {
			buf[i] = float32(r.Norm())
		}
		out[h] = buf
	}
	return out
}

func TestMultiHeadSDDMatchesPerHead(t *testing.T) {
	nb, blk, hd := 4, 4, 6
	s := nb * blk
	heads := skewedHeads(nb)
	hl := Combine(heads)
	q := randHeadBufs(1, len(heads), s, hd)
	k := randHeadBufs(2, len(heads), s, hd)

	c := NewCombinedSparse(hl, blk)
	MultiHeadSDD(c, q, k, hd)

	for h, layout := range heads {
		want := NewBlockSparse(layout, blk)
		SDD(want, q[h], k[h], hd)
		got := c.HeadView(h)
		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("head %d data[%d]: %v vs %v", h, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMultiHeadPipelineMatchesPerHead(t *testing.T) {
	nb, blk, hd := 4, 4, 6
	s := nb * blk
	heads := skewedHeads(nb)
	hl := Combine(heads)
	q := randHeadBufs(3, len(heads), s, hd)
	k := randHeadBufs(4, len(heads), s, hd)
	v := randHeadBufs(5, len(heads), s, hd)

	// Combined pipeline.
	c := NewCombinedSparse(hl, blk)
	MultiHeadSDD(c, q, k, hd)
	MultiHeadCausalSoftmax(c, 0.4)
	out := make([][]float32, len(heads))
	for h := range out {
		out[h] = make([]float32, s*hd)
	}
	MultiHeadDSD(out, v, c, hd)

	// Per-head reference.
	for h, layout := range heads {
		sp := NewBlockSparse(layout, blk)
		SDD(sp, q[h], k[h], hd)
		CausalSoftmax(sp, 0.4)
		want := make([]float32, s*hd)
		DSD(want, sp, v[h], hd)
		for i := range want {
			if math.Abs(float64(out[h][i]-want[i])) > 1e-4 {
				t.Fatalf("head %d out[%d]: %v vs %v", h, i, out[h][i], want[i])
			}
		}
	}
}

func TestHeadViewSharesStorage(t *testing.T) {
	heads := skewedHeads(3)
	hl := Combine(heads)
	c := NewCombinedSparse(hl, 2)
	view := c.HeadView(1)
	view.Data[0] = 7
	bb := 4
	if c.Data[hl.DataOff[1]*bb] != 7 {
		t.Fatal("HeadView does not alias combined storage")
	}
	if view.L != heads[1] {
		t.Fatal("HeadView layout mismatch")
	}
}

func TestMultiHeadSDDBufferCountPanics(t *testing.T) {
	heads := skewedHeads(3)
	c := NewCombinedSparse(Combine(heads), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MultiHeadSDD(c, make([][]float32, 1), make([][]float32, 1), 2)
}

// BenchmarkBalancedVsPerHead demonstrates the §VI-A claim: with heavily
// skewed per-head sparsity, block-granular scheduling balances workers
// better than head-granular scheduling.
func BenchmarkBalancedVsPerHead(b *testing.B) {
	nb, blk, hd := 16, 16, 64
	s := nb * blk
	heads := []*Layout{
		Pattern{Kind: KindDense}.Build(nb), // one heavy head
		Pattern{Kind: KindLocal, Window: 1}.Build(nb),
		Pattern{Kind: KindLocal, Window: 1}.Build(nb),
		Pattern{Kind: KindLocal, Window: 1}.Build(nb),
	}
	hl := Combine(heads)
	q := randHeadBufs(10, len(heads), s, hd)
	k := randHeadBufs(11, len(heads), s, hd)

	b.Run("balanced-tasks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCombinedSparse(hl, blk)
			MultiHeadSDD(c, q, k, hd)
		}
	})
	b.Run("per-head", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for h, l := range heads {
				sp := NewBlockSparse(l, blk)
				SDD(sp, q[h], k[h], hd)
			}
		}
	})
}
