package sparse

// Decode-path neuron kernels: the single-row gather/scatter counterparts
// of FC1Sparse/FC2Sparse. A decode step computes one token row, where the
// training kernels' parallel dispatch (goroutine handoff plus closure
// capture) costs more than the arithmetic it would split — these run
// serially on the calling goroutine and allocate nothing, keeping the
// cached decode loop at 0 allocs/op.
//
// Both kernels are 4-way unrolled like the tiled GEMM micro-kernels
// (gemm_tiled.go): four independent accumulator chains sharing each x
// load. Without that, a sparse step loses to the dense GEMM on ILP alone
// and the density win never reaches the clock. Unrolling is bit-safe
// here: each neuron keeps its own k-ascending accumulator (FC1), and each
// output element still receives its contributions in h-ascending order
// (FC2) — the same float sequences as the training kernels.

// DecodeFC1Gather computes hidden[c] = relu(x · W1[:, c] + b1[c]) for the
// active neuron blocks of one token row, gathering each active neuron's
// contiguous column-major input weights. Inactive entries of hidden are
// left untouched (callers keep them zero — unlisted neurons contribute
// nothing, bias included, matching the predictor contract). The op order
// per neuron — products accumulated first, bias added after, then the
// clamp — is exactly FC1Sparse + the bias pass + ReLU, so the gathered
// row is bit-identical to the training sparse path on the same blocks.
func DecodeFC1Gather(hidden, x []float32, w *ColMajor, b1 []float32, blocks []int, blk int) {
	H := w.Out
	for _, nb := range blocks {
		lo, hi := nb*blk, (nb+1)*blk
		if hi > H {
			hi = H
		}
		c := lo
		for ; c+4 <= hi; c += 4 {
			col0 := w.Col(c)
			col1 := w.Col(c + 1)
			col2 := w.Col(c + 2)
			col3 := w.Col(c + 3)
			var s0, s1, s2, s3 float32
			for kk, xv := range x {
				s0 += xv * col0[kk]
				s1 += xv * col1[kk]
				s2 += xv * col2[kk]
				s3 += xv * col3[kk]
			}
			hidden[c] = relu(s0 + b1[c])
			hidden[c+1] = relu(s1 + b1[c+1])
			hidden[c+2] = relu(s2 + b1[c+2])
			hidden[c+3] = relu(s3 + b1[c+3])
		}
		for ; c < hi; c++ {
			col := w.Col(c)
			var s float32
			for kk, xv := range x {
				s += xv * col[kk]
			}
			hidden[c] = relu(s + b1[c])
		}
	}
}

func relu(s float32) float32 {
	if s < 0 {
		return 0
	}
	return s
}

// DecodeFC2Scatter computes out += hidden[h] · W2[h, :] over the active
// neuron blocks of one token row, scattering each active neuron's
// contiguous row-major output weights. Post-ReLU zeros are skipped exactly
// as FC2Sparse skips them; in the unrolled quad each out element gathers
// its four contributions in h-ascending order, preserving the training
// kernel's addition sequence bit for bit.
func DecodeFC2Scatter(out, hidden []float32, w *RowMajor, blocks []int, blk int) {
	H := w.In
	for _, nb := range blocks {
		lo, hi := nb*blk, (nb+1)*blk
		if hi > H {
			hi = H
		}
		h := lo
		for ; h+4 <= hi; h += 4 {
			h0, h1, h2, h3 := hidden[h], hidden[h+1], hidden[h+2], hidden[h+3]
			if h0 == 0 && h1 == 0 && h2 == 0 && h3 == 0 {
				continue
			}
			r0 := w.Row(h)
			r1 := w.Row(h + 1)
			r2 := w.Row(h + 2)
			r3 := w.Row(h + 3)
			for c := range out {
				s := out[c]
				if h0 != 0 {
					s += h0 * r0[c]
				}
				if h1 != 0 {
					s += h1 * r1[c]
				}
				if h2 != 0 {
					s += h2 * r2[c]
				}
				if h3 != 0 {
					s += h3 * r3[c]
				}
				out[c] = s
			}
		}
		for ; h < hi; h++ {
			hv := hidden[h]
			if hv == 0 {
				continue
			}
			row := w.Row(h)
			for c, wv := range row {
				out[c] += hv * wv
			}
		}
	}
}
