package sparse

import (
	"fmt"

	"longexposure/internal/tensor"
)

// BlockSparse is a block-sparse square matrix: only the blocks marked active
// by its Layout are stored, contiguously in block-id order, each block
// row-major blk × blk. It is the storage format of attention scores and
// probabilities under a head-specific mask.
type BlockSparse struct {
	L    *Layout
	Blk  int
	Data []float32
}

// NewBlockSparse allocates zeroed storage for layout l with block size blk.
func NewBlockSparse(l *Layout, blk int) *BlockSparse {
	return &BlockSparse{L: l, Blk: blk, Data: make([]float32, l.NNZ()*blk*blk)}
}

// NewBlockSparseIn is NewBlockSparse with the block storage taken from the
// workspace arena (sized by the layout's active-block count); ws == nil
// allocates exactly like NewBlockSparse.
func NewBlockSparseIn(ws *tensor.Arena, l *Layout, blk int) *BlockSparse {
	m := &BlockSparse{}
	m.ResetIn(ws, l, blk)
	return m
}

// ResetIn re-points m at layout l with zeroed storage from ws (or a fresh
// allocation when ws is nil). Callers that keep a persistent backing array
// of BlockSparse structs use it to rebuild per-step views without
// allocating the structs each step.
func (m *BlockSparse) ResetIn(ws *tensor.Arena, l *Layout, blk int) {
	m.L, m.Blk = l, blk
	m.Data = tensor.FloatsIn(ws, l.NNZ()*blk*blk)
}

// Block returns the storage of block id as a blk×blk row-major slice.
func (m *BlockSparse) Block(id int32) []float32 {
	bb := m.Blk * m.Blk
	return m.Data[int(id)*bb : (int(id)+1)*bb]
}

// Dim returns the dense dimension nb*blk of the represented square matrix.
func (m *BlockSparse) Dim() int { return m.L.NB() * m.Blk }

// Zero clears all stored blocks.
func (m *BlockSparse) Zero() { clear(m.Data) }

// ToDense materializes the matrix densely (inactive blocks are zero) —
// used by tests and the predictor-visualization experiment, never by the
// training fast path.
func (m *BlockSparse) ToDense() *tensor.Tensor {
	s := m.Dim()
	d := tensor.New(s, s)
	for br := 0; br < m.L.NB(); br++ {
		for _, bc := range m.L.RowBlocks(br) {
			id, _ := m.L.BlockID(br, int(bc))
			blkData := m.Block(id)
			for i := 0; i < m.Blk; i++ {
				copy(d.Data[(br*m.Blk+i)*s+int(bc)*m.Blk:(br*m.Blk+i)*s+(int(bc)+1)*m.Blk],
					blkData[i*m.Blk:(i+1)*m.Blk])
			}
		}
	}
	return d
}

// FromDense gathers the active blocks of a dense s×s matrix into m.
func (m *BlockSparse) FromDense(d *tensor.Tensor) {
	s := m.Dim()
	if d.Dim(0) != s || d.Dim(1) != s {
		panic(fmt.Sprintf("sparse: FromDense shape %v, want [%d %d]", d.Shape(), s, s))
	}
	for br := 0; br < m.L.NB(); br++ {
		for _, bc := range m.L.RowBlocks(br) {
			id, _ := m.L.BlockID(br, int(bc))
			blkData := m.Block(id)
			for i := 0; i < m.Blk; i++ {
				copy(blkData[i*m.Blk:(i+1)*m.Blk],
					d.Data[(br*m.Blk+i)*s+int(bc)*m.Blk:(br*m.Blk+i)*s+(int(bc)+1)*m.Blk])
			}
		}
	}
}
