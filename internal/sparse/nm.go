package sparse

import "fmt"

// N:M block-structured weight sparsity (SLoPe, arXiv:2405.16325): within
// every aligned group of M consecutive weights, at most N survive, stored as
// their values plus 1-byte in-group offsets. Unlike the neuron-block kernels
// in this package — which gate whole rows per input — N:M is a property of
// the frozen weights themselves, fixed at pack time, so the kernel's work
// drops to N/M of the dense multiply-adds on every call with no predictor in
// the loop. 2:4 is the hardware-canonical shape; the kernels here are its
// CPU analog: the pruned positions are skipped at pack time and never cost a
// load, a compare, or a multiply at run time.
//
// Storage is groups-of-N with fixed stride (Rows × Cols/M × N), so a zero
// group still stores N (zero-valued) entries: the fixed layout is what keeps
// the gather loop branch-free, exactly the trade the hardware format makes.
// At 2:4 the footprint is N·5 bytes per M·4 dense bytes — 0.625x — and the
// flops are halved.

// NMWeights is a row-major [Rows][Cols] matrix in N:M form. Val and Idx are
// parallel arrays of length Rows·(Cols/M)·N: entry (r, g, s) is
// Val[(r·groups+g)·N+s] at column g·M + Idx[same position]. Within a group,
// kept entries are ordered by ascending column offset.
type NMWeights struct {
	N, M       int
	Rows, Cols int
	Val        []float32
	Idx        []uint8
}

// Groups returns the number of M-wide groups per row.
func (p *NMWeights) Groups() int { return p.Cols / p.M }

// Bytes reports the resident storage footprint (values + offsets).
func (p *NMWeights) Bytes() int64 { return 4*int64(len(p.Val)) + int64(len(p.Idx)) }

// PackNM prunes a dense row-major [rows][cols] matrix to N:M, keeping the
// top-n entries of every aligned m-wide group by absolute magnitude (ties
// keep the lower column). cols must be a multiple of m, and m at most 256 so
// offsets fit a byte.
func PackNM(w []float32, rows, cols, n, m int) *NMWeights {
	switch {
	case len(w) != rows*cols:
		panic(fmt.Sprintf("sparse: PackNM data %d, want %d×%d", len(w), rows, cols))
	case m <= 0 || n <= 0 || n > m:
		panic(fmt.Sprintf("sparse: PackNM shape %d:%d", n, m))
	case cols%m != 0:
		panic(fmt.Sprintf("sparse: PackNM cols %d not a multiple of %d", cols, m))
	case m > 256:
		panic(fmt.Sprintf("sparse: PackNM group width %d exceeds uint8 offsets", m))
	}
	groups := cols / m
	p := &NMWeights{
		N: n, M: m, Rows: rows, Cols: cols,
		Val: make([]float32, rows*groups*n),
		Idx: make([]uint8, rows*groups*n),
	}
	keep := make([]int, 0, n)
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		for g := 0; g < groups; g++ {
			grp := row[g*m : (g+1)*m]
			// Select the top-n offsets by |value|; n and m are tiny (2:4),
			// so a selection scan beats sorting.
			keep = keep[:0]
			for s := 0; s < n; s++ {
				best, bestAbs := -1, float32(-1)
				for c, v := range grp {
					taken := false
					for _, kc := range keep {
						if kc == c {
							taken = true
							break
						}
					}
					if taken {
						continue
					}
					av := v
					if av < 0 {
						av = -av
					}
					if av > bestAbs {
						best, bestAbs = c, av
					}
				}
				keep = append(keep, best)
			}
			// Ascending column order within the group.
			for i := 1; i < len(keep); i++ {
				for j := i; j > 0 && keep[j] < keep[j-1]; j-- {
					keep[j], keep[j-1] = keep[j-1], keep[j]
				}
			}
			o := (r*groups + g) * n
			for s, c := range keep {
				p.Val[o+s] = grp[c]
				p.Idx[o+s] = uint8(c)
			}
		}
	}
	return p
}

// Dequant widens back to a dense row-major [Rows][Cols] matrix with zeros at
// the pruned positions — the exact matrix every kernel below computes with.
func (p *NMWeights) Dequant() []float32 {
	w := make([]float32, p.Rows*p.Cols)
	groups := p.Groups()
	for r := 0; r < p.Rows; r++ {
		for g := 0; g < groups; g++ {
			o := (r*groups + g) * p.N
			for s := 0; s < p.N; s++ {
				w[r*p.Cols+g*p.M+int(p.Idx[o+s])] = p.Val[o+s]
			}
		}
	}
	return w
}

// MulVecRange accumulates y[r] += dot(row r, x) for rows in [lo, hi) — the
// FC1 gather: rows are output neurons, x is one input row of length Cols.
// The 2:4 fast path unrolls four groups per iteration into eight independent
// accumulator chains to keep the float adds off the latency path. Even so,
// the single-token gather pays a value load, an offset load and an indexed
// load per multiply-add where the dense tiled core pays ~1.25 loads, so at
// one token it does not beat the dense core — halved madds don't cover a 3x
// per-madd load deficit. The N:M win on CPU comes from the token-blocked
// MulTB below, which amortizes the metadata loads (see the kernels_precision
// nm/ benchmarks for both shapes). Accumulation order is the stored
// (ascending-column) order over kept entries only; zero-valued kept entries
// still multiply, keeping the loop branch-free.
func (p *NMWeights) MulVecRange(y, x []float32, lo, hi int) {
	groups := p.Groups()
	if p.N == 2 {
		m := p.M
		for r := lo; r < hi; r++ {
			base := r * groups * 2
			vals := p.Val[base : base+groups*2]
			idxs := p.Idx[base : base+groups*2]
			var s0, s1, s2, s3, s4, s5, s6, s7 float32
			g := 0
			for ; g+4 <= groups; g += 4 {
				v := vals[2*g : 2*g+8]
				id := idxs[2*g : 2*g+8]
				j := g * m
				s0 += v[0] * x[j+int(id[0])]
				s1 += v[1] * x[j+int(id[1])]
				s2 += v[2] * x[j+m+int(id[2])]
				s3 += v[3] * x[j+m+int(id[3])]
				s4 += v[4] * x[j+2*m+int(id[4])]
				s5 += v[5] * x[j+2*m+int(id[5])]
				s6 += v[6] * x[j+3*m+int(id[6])]
				s7 += v[7] * x[j+3*m+int(id[7])]
			}
			for ; g < groups; g++ {
				j := g * m
				s0 += vals[2*g] * x[j+int(idxs[2*g])]
				s1 += vals[2*g+1] * x[j+int(idxs[2*g+1])]
			}
			y[r] += ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
		}
		return
	}
	for r := lo; r < hi; r++ {
		base := r * groups * p.N
		var s float32
		for g := 0; g < groups; g++ {
			xg := x[g*p.M:]
			o := base + g*p.N
			for t := 0; t < p.N; t++ {
				s += p.Val[o+t] * xg[p.Idx[o+t]]
			}
		}
		y[r] += s
	}
}

// MulVec is MulVecRange over every row.
func (p *NMWeights) MulVec(y, x []float32) { p.MulVecRange(y, x, 0, p.Rows) }

// TMulVec accumulates out[c] += Σ_r h[r]·w[r,c] — the FC2 scatter: rows are
// input neurons (post-activation hidden units), out has length Cols. Rows
// whose activation is exactly zero are skipped entirely, so the kernel
// composes with ReLU neuron sparsity the same way the dense cores'
// zero-product skip does.
func (p *NMWeights) TMulVec(out, h []float32) {
	groups := p.Groups()
	for r, hv := range h {
		if hv == 0 {
			continue
		}
		o := r * groups * p.N
		for g := 0; g < groups; g++ {
			og := out[g*p.M:]
			for t := 0; t < p.N; t++ {
				og[p.Idx[o+t]] += hv * p.Val[o+t]
			}
			o += p.N
		}
	}
}

// MulTB accumulates y[t,:] += x[t,:]·Wᵀ for every row t of x — the batch
// form of MulVec (y: [tokens, Rows], x: [tokens, Cols]).
//
// Tokens are processed in blocks of four so each value/offset load is
// amortized over four gathers — the same load-sharing the dense tiled core
// gets from its 4-wide output tile, and the CPU analog of how sparse tensor
// cores consume the 2:4 format tile-wise. With the metadata traffic shared,
// the kernel does half the dense multiply-adds at comparable per-madd cost,
// which is where the N:M speedup over the dense core materializes (the
// single-token MulVec gather pays its offset loads per madd and does not
// beat the dense core; see the kernels_precision nm/ benchmarks).
func (p *NMWeights) MulTB(y, x []float32, tokens int) {
	t := 0
	if p.N == 2 && tokens >= 4 {
		// One token-major scratch pane, reused across the blocks: packing is
		// O(tokens·Cols), amortized over Rows·Cols/2 multiply-adds per block.
		xt := make([][4]float32, p.Cols)
		for ; t+4 <= tokens; t += 4 {
			x4 := x[t*p.Cols:]
			for c := 0; c < p.Cols; c++ {
				xt[c] = [4]float32{x4[c], x4[p.Cols+c], x4[2*p.Cols+c], x4[3*p.Cols+c]}
			}
			p.mulTB4(y[t*p.Rows:], xt)
		}
	}
	for ; t < tokens; t++ {
		p.MulVecRange(y[t*p.Rows:(t+1)*p.Rows], x[t*p.Cols:(t+1)*p.Cols], 0, p.Rows)
	}
}

// mulTB4 is the 2:4 four-token block: y[t,:] += xt·Wᵀ where xt is the
// token-major pane xt[4c+t] = x[t,c]. The transpose turns every gather into
// a contiguous four-float quad at a provably in-bounds offset, so the eight
// accumulator chains (4 tokens × N=2) run with one bounds check per quad
// instead of one per load.
func (p *NMWeights) mulTB4(y []float32, xt [][4]float32) {
	groups := p.Groups()
	m := p.M
	for r := 0; r < p.Rows; r++ {
		base := r * groups * 2
		vals := p.Val[base : base+groups*2]
		idxs := p.Idx[base : base+groups*2]
		var a0, a1, b0, b1, c0, c1, d0, d1 float32
		g := 0
		for ; g+2 <= groups; g += 2 {
			v := vals[2*g : 2*g+4]
			id := idxs[2*g : 2*g+4]
			j := g * m
			q0 := &xt[j+int(id[0])]
			q1 := &xt[j+int(id[1])]
			q2 := &xt[j+m+int(id[2])]
			q3 := &xt[j+m+int(id[3])]
			a0 += v[0] * q0[0]
			b0 += v[0] * q0[1]
			c0 += v[0] * q0[2]
			d0 += v[0] * q0[3]
			a1 += v[1] * q1[0]
			b1 += v[1] * q1[1]
			c1 += v[1] * q1[2]
			d1 += v[1] * q1[3]
			a0 += v[2] * q2[0]
			b0 += v[2] * q2[1]
			c0 += v[2] * q2[2]
			d0 += v[2] * q2[3]
			a1 += v[3] * q3[0]
			b1 += v[3] * q3[1]
			c1 += v[3] * q3[2]
			d1 += v[3] * q3[3]
		}
		for ; g < groups; g++ {
			v0, v1 := vals[2*g], vals[2*g+1]
			j := g * m
			q0 := &xt[j+int(idxs[2*g])]
			q1 := &xt[j+int(idxs[2*g+1])]
			a0 += v0 * q0[0]
			b0 += v0 * q0[1]
			c0 += v0 * q0[2]
			d0 += v0 * q0[3]
			a1 += v1 * q1[0]
			b1 += v1 * q1[1]
			c1 += v1 * q1[2]
			d1 += v1 * q1[3]
		}
		y[0*p.Rows+r] += a0 + a1
		y[1*p.Rows+r] += b0 + b1
		y[2*p.Rows+r] += c0 + c1
		y[3*p.Rows+r] += d0 + d1
	}
}

// TMulBatch accumulates out[t,:] += h[t,:]·W for every row t — the batch
// form of TMulVec (out: [tokens, Cols], h: [tokens, Rows]).
func (p *NMWeights) TMulBatch(out, h []float32, tokens int) {
	for t := 0; t < tokens; t++ {
		p.TMulVec(out[t*p.Cols:(t+1)*p.Cols], h[t*p.Rows:(t+1)*p.Rows])
	}
}
