// Package sparse implements the paper's Dynamic-aware Operators (§VI):
// block-sparse attention kernels (SDD / DSD matrix multiplication) driven by
// pre-computed layout lookup tables, and neuron-block MLP kernels with
// layout-aware weight storage.
//
// The two-stage design follows the paper exactly: an *offline* pool of
// common atomic sparse patterns whose layouts (block index lookup tables)
// are pre-computed once, and an *online* combination step that assembles the
// per-head layouts of one multi-head attention invocation by applying data
// offsets — no per-step format conversion.
package sparse

import (
	"fmt"
	"sort"
)

// Layout is the pre-computed lookup table for one block-sparse pattern on an
// nb × nb block grid: which blocks are active, in row-major order, plus the
// inverse (column-wise) index needed by transposed operations.
//
// A Layout is immutable after construction; pools share them across steps.
type Layout struct {
	nb     int
	rows   [][]int32 // rows[br] = sorted active block-columns
	cols   [][]int32 // cols[bc] = sorted active block-rows
	rowPtr []int32   // prefix sum of len(rows[br]); block id space
	nnz    int
}

// NewLayout builds a layout from an active-block predicate over the nb × nb
// grid. This is the offline construction path; it is deliberately allowed to
// be slow relative to the online kernels.
func NewLayout(nb int, active func(br, bc int) bool) *Layout {
	l := &Layout{
		nb:     nb,
		rows:   make([][]int32, nb),
		cols:   make([][]int32, nb),
		rowPtr: make([]int32, nb+1),
	}
	for br := 0; br < nb; br++ {
		for bc := 0; bc < nb; bc++ {
			if active(br, bc) {
				l.rows[br] = append(l.rows[br], int32(bc))
				l.cols[bc] = append(l.cols[bc], int32(br))
			}
		}
		l.rowPtr[br+1] = l.rowPtr[br] + int32(len(l.rows[br]))
	}
	l.nnz = int(l.rowPtr[nb])
	return l
}

// NewLayoutFromBlocks builds a layout from an explicit list of active block
// coordinates (duplicates are merged).
func NewLayoutFromBlocks(nb int, blocks [][2]int) *Layout {
	seen := make(map[[2]int]bool, len(blocks))
	for _, b := range blocks {
		if b[0] < 0 || b[0] >= nb || b[1] < 0 || b[1] >= nb {
			panic(fmt.Sprintf("sparse: block %v outside %d×%d grid", b, nb, nb))
		}
		seen[b] = true
	}
	return NewLayout(nb, func(br, bc int) bool { return seen[[2]int{br, bc}] })
}

// NB returns the number of blocks per side.
func (l *Layout) NB() int { return l.nb }

// NNZ returns the number of active blocks.
func (l *Layout) NNZ() int { return l.nnz }

// Density returns nnz / nb².
func (l *Layout) Density() float64 {
	if l.nb == 0 {
		return 0
	}
	return float64(l.nnz) / float64(l.nb*l.nb)
}

// Sparsity returns 1 − Density.
func (l *Layout) Sparsity() float64 { return 1 - l.Density() }

// RowBlocks returns the sorted active block-columns of block-row br.
// The slice must not be mutated.
func (l *Layout) RowBlocks(br int) []int32 { return l.rows[br] }

// ColBlocks returns the sorted active block-rows of block-column bc.
// The slice must not be mutated.
func (l *Layout) ColBlocks(bc int) []int32 { return l.cols[bc] }

// RowPtr returns the block-id offset of block-row br: blocks of row br have
// ids [RowPtr(br), RowPtr(br+1)).
func (l *Layout) RowPtr(br int) int32 { return l.rowPtr[br] }

// BlockID returns the dense storage index of block (br, bc) and whether the
// block is active.
func (l *Layout) BlockID(br, bc int) (int32, bool) {
	row := l.rows[br]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(bc) })
	if i < len(row) && row[i] == int32(bc) {
		return l.rowPtr[br] + int32(i), true
	}
	return 0, false
}

// Active reports whether block (br, bc) is active.
func (l *Layout) Active(br, bc int) bool {
	_, ok := l.BlockID(br, bc)
	return ok
}

// Equal reports whether two layouts mark exactly the same blocks.
func (l *Layout) Equal(o *Layout) bool {
	if l.nb != o.nb || l.nnz != o.nnz {
		return false
	}
	for br := 0; br < l.nb; br++ {
		a, b := l.rows[br], o.rows[br]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// Union returns a layout active wherever either input is active.
func (l *Layout) Union(o *Layout) *Layout {
	if l.nb != o.nb {
		panic(fmt.Sprintf("sparse: Union of %d and %d block grids", l.nb, o.nb))
	}
	return NewLayout(l.nb, func(br, bc int) bool {
		return l.Active(br, bc) || o.Active(br, bc)
	})
}

// Intersect returns a layout active only where both inputs are active.
func (l *Layout) Intersect(o *Layout) *Layout {
	if l.nb != o.nb {
		panic(fmt.Sprintf("sparse: Intersect of %d and %d block grids", l.nb, o.nb))
	}
	return NewLayout(l.nb, func(br, bc int) bool {
		return l.Active(br, bc) && o.Active(br, bc)
	})
}

// Overlap returns |l ∧ o| — the number of blocks active in both layouts.
func (l *Layout) Overlap(o *Layout) int {
	if l.nb != o.nb {
		panic("sparse: Overlap on mismatched grids")
	}
	n := 0
	for br := 0; br < l.nb; br++ {
		for _, bc := range l.rows[br] {
			if o.Active(br, int(bc)) {
				n++
			}
		}
	}
	return n
}

// IsCausal reports whether every active block lies on or below the diagonal,
// the invariant all attention layouts in this repository must satisfy.
func (l *Layout) IsCausal() bool {
	for br := 0; br < l.nb; br++ {
		for _, bc := range l.rows[br] {
			if int(bc) > br {
				return false
			}
		}
	}
	return true
}

// CoversDiagonal reports whether every diagonal block is active. Causal
// attention requires this: token i must at least attend to itself.
func (l *Layout) CoversDiagonal() bool {
	for br := 0; br < l.nb; br++ {
		if !l.Active(br, br) {
			return false
		}
	}
	return true
}
