package sparse

import (
	"math"

	"longexposure/internal/tensor"
)

// This file contains the per-head 2-D block-sparse attention kernels.
// Shapes: q, k, v and their gradients are [s, hd] row-major with
// s = layout.NB() * blk; scores/probabilities are BlockSparse over the
// layout. All kernels are serial — callers parallelize over (batch, head)
// or over the combined Task list, which is how workload balance across
// heads with different sparsity is achieved.

// SDD computes dst(block br,bc) += a[rows of br] · b[rows of bc]ᵀ, the
// sampled-dense-dense product that produces attention scores (Q·Kᵀ) and,
// in backward, probability gradients (dOut·Vᵀ). Only active blocks are
// computed; k is the inner (head) dimension. Each block is one a·bᵀ
// product over contiguous row groups, delegated to the shared
// tensor.GemmTBRange core so the sparse path rides the tiled dense kernels.
func SDD(dst *BlockSparse, a, b []float32, k int) {
	blk := dst.Blk
	for br := 0; br < dst.L.NB(); br++ {
		aRows := a[br*blk*k : (br*blk+blk)*k]
		for _, bc32 := range dst.L.RowBlocks(br) {
			bc := int(bc32)
			id, _ := dst.L.BlockID(br, bc)
			tensor.GemmTBRange(dst.Block(id), aRows, b[bc*blk*k:(bc*blk+blk)*k], k, blk, 0, blk)
		}
	}
}

// DSD computes dst += sp · b for sparse sp and dense b [s, n] — the
// probabilities·V product and, in backward, dScores·K. dst is [s, n].
// Each active block is one blkData·bRows product on contiguous rows,
// delegated to the shared tensor.GemmRange core.
func DSD(dst []float32, sp *BlockSparse, b []float32, n int) {
	blk := sp.Blk
	for br := 0; br < sp.L.NB(); br++ {
		out := dst[br*blk*n : (br*blk+blk)*n]
		for _, bc32 := range sp.L.RowBlocks(br) {
			bc := int(bc32)
			id, _ := sp.L.BlockID(br, bc)
			tensor.GemmRange(out, sp.Block(id), b[bc*blk*n:(bc*blk+blk)*n], blk, n, 0, blk)
		}
	}
}

// DSDT computes dst += spᵀ · b — probabilityᵀ·dOut (for dV) and
// dScoresᵀ·Q (for dK). It traverses column-wise via the layout's inverse
// index so each destination block-row is written by exactly one iteration,
// keeping the kernel race-free if callers shard over block-columns. Each
// active block is one blkDataᵀ·bRows product, delegated to the shared
// tensor.GemmTARange core.
func DSDT(dst []float32, sp *BlockSparse, b []float32, n int) {
	blk := sp.Blk
	for bc := 0; bc < sp.L.NB(); bc++ {
		out := dst[bc*blk*n : (bc*blk+blk)*n]
		for _, br32 := range sp.L.ColBlocks(bc) {
			br := int(br32)
			id, _ := sp.L.BlockID(br, bc)
			tensor.GemmTARange(out, sp.Block(id), b[br*blk*n:(br*blk+blk)*n], blk, blk, n, 0, blk)
		}
	}
}

// CausalSoftmax scales the sparse scores by scale, applies causal masking
// inside diagonal blocks, and replaces each row with its softmax over the
// row's active entries. Rows are independent across the whole sparse matrix.
func CausalSoftmax(sp *BlockSparse, scale float32) {
	blk := sp.Blk
	for br := 0; br < sp.L.NB(); br++ {
		row := sp.L.RowBlocks(br)
		for i := 0; i < blk; i++ {
			r := br*blk + i // absolute row
			// Pass 1: max over active, causal entries.
			maxV := float32(math.Inf(-1))
			for _, bc32 := range row {
				bc := int(bc32)
				id, _ := sp.L.BlockID(br, bc)
				blkRow := sp.Block(id)[i*blk : (i+1)*blk]
				lim := causalLimit(r, bc, blk)
				for j := 0; j < lim; j++ {
					v := blkRow[j] * scale
					if v > maxV {
						maxV = v
					}
				}
			}
			// Pass 2: exponentiate and sum.
			var sum float64
			for _, bc32 := range row {
				bc := int(bc32)
				id, _ := sp.L.BlockID(br, bc)
				blkRow := sp.Block(id)[i*blk : (i+1)*blk]
				lim := causalLimit(r, bc, blk)
				for j := 0; j < blk; j++ {
					if j >= lim {
						blkRow[j] = 0
						continue
					}
					e := float32(math.Exp(float64(blkRow[j]*scale - maxV)))
					blkRow[j] = e
					sum += float64(e)
				}
			}
			if sum == 0 {
				continue
			}
			inv := float32(1 / sum)
			// Pass 3: normalize.
			for _, bc32 := range row {
				bc := int(bc32)
				id, _ := sp.L.BlockID(br, bc)
				blkRow := sp.Block(id)[i*blk : (i+1)*blk]
				for j := range blkRow {
					blkRow[j] *= inv
				}
			}
		}
	}
}

// causalLimit returns how many columns of block-column bc are visible to
// absolute row r: blk for strictly-lower blocks, a partial count on the
// diagonal block.
func causalLimit(r, bc, blk int) int {
	lim := r - bc*blk + 1
	if lim > blk {
		lim = blk
	}
	if lim < 0 {
		lim = 0
	}
	return lim
}

// SoftmaxBackward converts dProb (gradient w.r.t. probabilities, sparse, in
// place) into dScore using the stored probabilities p: for each row,
// dScore = p ⊙ (dProb − Σ p·dProb), then multiplies by scale to account for
// the score scaling done in CausalSoftmax. p and dProb share a layout.
func SoftmaxBackward(dProb, p *BlockSparse, scale float32) {
	blk := p.Blk
	for br := 0; br < p.L.NB(); br++ {
		row := p.L.RowBlocks(br)
		for i := 0; i < blk; i++ {
			// dot = Σ_j p_j · dProb_j over the row's active entries.
			var dot float64
			for _, bc32 := range row {
				id, _ := p.L.BlockID(br, int(bc32))
				pr := p.Block(id)[i*blk : (i+1)*blk]
				dr := dProb.Block(id)[i*blk : (i+1)*blk]
				for j := range pr {
					dot += float64(pr[j]) * float64(dr[j])
				}
			}
			for _, bc32 := range row {
				id, _ := p.L.BlockID(br, int(bc32))
				pr := p.Block(id)[i*blk : (i+1)*blk]
				dr := dProb.Block(id)[i*blk : (i+1)*blk]
				for j := range pr {
					dr[j] = scale * pr[j] * (dr[j] - float32(dot))
				}
			}
		}
	}
}

// DenseCausalAttention is the reference dense kernel the sparse path is
// validated against (and the baseline of the operator microbenchmarks):
// out = softmax(mask(q·kᵀ·scale)) · v with full causal masking.
// It returns the probability matrix for reuse by the dense backward.
func DenseCausalAttention(out, q, k, v []float32, s, hd int, scale float32) *tensor.Tensor {
	scores := tensor.New(s, s)
	DenseCausalAttentionInto(scores, out, q, k, v, s, hd, scale)
	return scores
}

// DenseCausalAttentionInto is DenseCausalAttention writing the probability
// matrix into a caller-provided zeroed [s, s] tensor — the workspace path,
// where scores come from the step arena instead of a fresh allocation.
func DenseCausalAttentionInto(scores *tensor.Tensor, out, q, k, v []float32, s, hd int, scale float32) {
	tensor.GemmTBRange(scores.Data, q, k, hd, s, 0, s)
	for i := 0; i < s; i++ {
		row := scores.Row(i)
		for j := 0; j <= i; j++ {
			row[j] *= scale
		}
		for j := i + 1; j < s; j++ {
			row[j] = tensor.NegInf
		}
		tensor.SoftmaxRow(row)
	}
	tensor.GemmRange(out, scores.Data, v, s, hd, 0, s)
}
