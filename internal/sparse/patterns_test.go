package sparse

import "testing"

func poolPatterns() []Pattern { return DefaultPool() }

func TestAllPoolPatternsCausalWithDiagonal(t *testing.T) {
	for _, p := range poolPatterns() {
		for _, nb := range []int{1, 4, 9, 16} {
			l := p.Build(nb)
			if !l.IsCausal() {
				t.Errorf("%s at nb=%d is not causal", p, nb)
			}
			if !l.CoversDiagonal() {
				t.Errorf("%s at nb=%d misses a diagonal block", p, nb)
			}
		}
	}
}

func TestDensePatternIsFullCausal(t *testing.T) {
	l := Pattern{Kind: KindDense}.Build(6)
	if l.NNZ() != 6*7/2 {
		t.Fatalf("dense causal nnz = %d, want 21", l.NNZ())
	}
}

func TestLocalWindowWidth(t *testing.T) {
	l := Pattern{Kind: KindLocal, Window: 2}.Build(8)
	for br := 0; br < 8; br++ {
		for bc := 0; bc <= br; bc++ {
			want := br-bc < 2
			if l.Active(br, bc) != want {
				t.Fatalf("local(w=2) block (%d,%d) active=%v", br, bc, l.Active(br, bc))
			}
		}
	}
}

func TestGlobalPattern(t *testing.T) {
	l := Pattern{Kind: KindGlobal, Global: 1}.Build(6)
	for br := 1; br < 6; br++ {
		if !l.Active(br, 0) {
			t.Fatalf("global(g=1) misses sink column at row %d", br)
		}
	}
	if l.Active(5, 2) {
		t.Fatal("global(g=1) has spurious block")
	}
}

func TestStridedPattern(t *testing.T) {
	l := Pattern{Kind: KindStrided, Stride: 2}.Build(8)
	if !l.Active(4, 2) || !l.Active(4, 0) {
		t.Fatal("strided(2) misses periodic blocks")
	}
	if l.Active(4, 3) {
		t.Fatal("strided(2) has off-period block")
	}
}

func TestBigBirdIsSupersetOfComponents(t *testing.T) {
	bb := Pattern{Kind: KindBigBird, Window: 2, Global: 1, RandomPerRow: 2, Seed: 17}
	lg := Pattern{Kind: KindLocalGlobal, Window: 2, Global: 1}
	nb := 12
	lb, ll := bb.Build(nb), lg.Build(nb)
	if lb.Overlap(ll) != ll.NNZ() {
		t.Fatal("bigbird does not cover its local+global component")
	}
	if lb.NNZ() <= ll.NNZ() {
		t.Fatal("bigbird adds no random blocks at nb=12")
	}
}

func TestRandomPatternDeterministic(t *testing.T) {
	p := Pattern{Kind: KindRandom, RandomPerRow: 3, Seed: 5}
	if !p.Build(10).Equal(p.Build(10)) {
		t.Fatal("random pattern not deterministic")
	}
	q := Pattern{Kind: KindRandom, RandomPerRow: 3, Seed: 6}
	if p.Build(10).Equal(q.Build(10)) {
		t.Fatal("different seeds gave identical random patterns")
	}
}

func TestPoolCachesLayouts(t *testing.T) {
	pool := NewPool()
	p := Pattern{Kind: KindLocal, Window: 2}
	a := pool.Get(p, 8)
	b := pool.Get(p, 8)
	if a != b {
		t.Fatal("pool rebuilt a cached layout")
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size = %d", pool.Size())
	}
	pool.Warm(DefaultPool(), 8)
	if pool.Size() < len(DefaultPool()) {
		t.Fatalf("Warm cached only %d layouts", pool.Size())
	}
}

func TestCombineOffsetsAndTasks(t *testing.T) {
	pool := NewPool()
	heads := []*Layout{
		pool.Get(Pattern{Kind: KindLocal, Window: 1}, 4), // 4 blocks
		pool.Get(Pattern{Kind: KindDense}, 4),            // 10 blocks
		pool.Get(Pattern{Kind: KindLocal, Window: 2}, 4), // 4+3=7 blocks
	}
	hl := Combine(heads)
	if hl.TotalBlocks() != 4+10+7 {
		t.Fatalf("TotalBlocks = %d, want 21", hl.TotalBlocks())
	}
	if hl.DataOff[1] != 4 || hl.DataOff[2] != 14 || hl.DataOff[3] != 21 {
		t.Fatalf("DataOff = %v", hl.DataOff)
	}
	if len(hl.Tasks) != 21 {
		t.Fatalf("len(Tasks) = %d", len(hl.Tasks))
	}
	// Every task offset must be unique and within range; head offsets must
	// partition the id space (the offset-shift property).
	seen := make(map[int]bool)
	for _, task := range hl.Tasks {
		if task.Off < hl.DataOff[task.Head] || task.Off >= hl.DataOff[task.Head+1] {
			t.Fatalf("task %+v outside its head's offset range", task)
		}
		if seen[task.Off] {
			t.Fatalf("duplicate offset %d", task.Off)
		}
		seen[task.Off] = true
	}
	if d := hl.Density(); d <= 0 || d > 1 {
		t.Fatalf("Density = %v", d)
	}
}
