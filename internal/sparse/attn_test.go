package sparse

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

// denseMaskedAttention is the element-level reference: causal attention
// where score (i,j) is kept only if the block containing it is active.
func denseMaskedAttention(q, k, v []float32, s, hd int, scale float32, l *Layout, blk int) ([]float32, *tensor.Tensor) {
	scores := tensor.New(s, s)
	tensor.GemmTBRange(scores.Data, q, k, hd, s, 0, s)
	for i := 0; i < s; i++ {
		row := scores.Row(i)
		for j := 0; j < s; j++ {
			if j > i || !l.Active(i/blk, j/blk) {
				row[j] = tensor.NegInf
			} else {
				row[j] *= scale
			}
		}
		tensor.SoftmaxRow(row)
	}
	out := make([]float32, s*hd)
	tensor.GemmRange(out, scores.Data, v, s, hd, 0, s)
	return out, scores
}

func randSlices(seed uint64, s, hd int) (q, k, v []float32) {
	r := tensor.NewRNG(seed)
	mk := func() []float32 {
		x := make([]float32, s*hd)
		for i := range x {
			x[i] = float32(r.Norm())
		}
		return x
	}
	return mk(), mk(), mk()
}

func TestSDDMatchesDenseGather(t *testing.T) {
	blk, nb, hd := 4, 3, 5
	s := blk * nb
	q, k, _ := randSlices(1, s, hd)
	l := Pattern{Kind: KindLocal, Window: 2}.Build(nb)
	sp := NewBlockSparse(l, blk)
	SDD(sp, q, k, hd)

	dense := tensor.New(s, s)
	tensor.GemmTBRange(dense.Data, q, k, hd, s, 0, s)
	for br := 0; br < nb; br++ {
		for _, bc := range l.RowBlocks(br) {
			id, _ := l.BlockID(br, int(bc))
			blkData := sp.Block(id)
			for i := 0; i < blk; i++ {
				for j := 0; j < blk; j++ {
					want := dense.At(br*blk+i, int(bc)*blk+j)
					got := blkData[i*blk+j]
					if math.Abs(float64(got-want)) > 1e-4 {
						t.Fatalf("block (%d,%d)[%d,%d]: %v vs %v", br, bc, i, j, got, want)
					}
				}
			}
		}
	}
}

func TestSparseAttentionFullLayoutEqualsDense(t *testing.T) {
	blk, nb, hd := 4, 4, 8
	s := blk * nb
	q, k, v := randSlices(2, s, hd)
	scale := float32(1 / math.Sqrt(float64(hd)))

	// Dense reference.
	wantOut := make([]float32, s*hd)
	DenseCausalAttention(wantOut, q, k, v, s, hd, scale)

	// Sparse path with the full causal layout.
	l := Pattern{Kind: KindDense}.Build(nb)
	sp := NewBlockSparse(l, blk)
	SDD(sp, q, k, hd)
	CausalSoftmax(sp, scale)
	gotOut := make([]float32, s*hd)
	DSD(gotOut, sp, v, hd)

	for i := range wantOut {
		if math.Abs(float64(gotOut[i]-wantOut[i])) > 1e-4 {
			t.Fatalf("out[%d]: %v vs %v", i, gotOut[i], wantOut[i])
		}
	}
}

func TestSparseAttentionMatchesMaskedDense(t *testing.T) {
	blk, nb, hd := 4, 5, 6
	s := blk * nb
	q, k, v := randSlices(3, s, hd)
	scale := float32(0.35)

	for _, p := range []Pattern{
		{Kind: KindLocal, Window: 2},
		{Kind: KindLocalGlobal, Window: 1, Global: 1},
		{Kind: KindStrided, Stride: 2},
		{Kind: KindBigBird, Window: 1, Global: 1, RandomPerRow: 1, Seed: 3},
	} {
		l := p.Build(nb)
		wantOut, _ := denseMaskedAttention(q, k, v, s, hd, scale, l, blk)

		sp := NewBlockSparse(l, blk)
		SDD(sp, q, k, hd)
		CausalSoftmax(sp, scale)
		gotOut := make([]float32, s*hd)
		DSD(gotOut, sp, v, hd)

		for i := range wantOut {
			if math.Abs(float64(gotOut[i]-wantOut[i])) > 1e-4 {
				t.Fatalf("%s: out[%d]: %v vs %v", p, i, gotOut[i], wantOut[i])
			}
		}
	}
}

func TestCausalSoftmaxRowsSumToOne(t *testing.T) {
	blk, nb := 4, 4
	q, k, _ := randSlices(4, blk*nb, 7)
	l := Pattern{Kind: KindLocal, Window: 2}.Build(nb)
	sp := NewBlockSparse(l, blk)
	SDD(sp, q, k, 7)
	CausalSoftmax(sp, 0.5)
	dense := sp.ToDense()
	s := dense.Dim(0)
	for i := 0; i < s; i++ {
		var sum float64
		for j := 0; j <= i; j++ {
			v := float64(dense.At(i, j))
			if v < 0 {
				t.Fatalf("negative probability at (%d,%d)", i, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
		for j := i + 1; j < s; j++ {
			if dense.At(i, j) != 0 {
				t.Fatalf("causality violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestDSDTMatchesTransposedDense(t *testing.T) {
	blk, nb, n := 3, 4, 5
	s := blk * nb
	l := Pattern{Kind: KindLocalGlobal, Window: 1, Global: 1}.Build(nb)
	sp := NewBlockSparse(l, blk)
	r := tensor.NewRNG(9)
	for i := range sp.Data {
		sp.Data[i] = float32(r.Norm())
	}
	b := make([]float32, s*n)
	for i := range b {
		b[i] = float32(r.Norm())
	}

	got := make([]float32, s*n)
	DSDT(got, sp, b, n)

	spD := sp.ToDense()
	want := make([]float32, s*n)
	tensor.GemmTARange(want, spD.Data, b, s, s, n, 0, s)

	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("DSDT[%d]: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSoftmaxBackwardMatchesDense(t *testing.T) {
	blk, nb, hd := 4, 3, 6
	s := blk * nb
	q, k, _ := randSlices(5, s, hd)
	scale := float32(0.4)
	l := Pattern{Kind: KindLocal, Window: 2}.Build(nb)

	// Sparse probabilities.
	p := NewBlockSparse(l, blk)
	SDD(p, q, k, hd)
	CausalSoftmax(p, scale)
	// Random upstream gradient on probabilities.
	r := tensor.NewRNG(11)
	dProb := NewBlockSparse(l, blk)
	for i := range dProb.Data {
		dProb.Data[i] = float32(r.Norm())
	}
	dProbDense := dProb.ToDense() // before in-place backward

	SoftmaxBackward(dProb, p, scale)
	got := dProb.ToDense()

	// Dense reference: per-row softmax backward over the same probabilities,
	// then scaled by `scale`.
	pd := p.ToDense()
	want := tensor.New(s, s)
	for i := 0; i < s; i++ {
		tensor.SoftmaxBackwardRow(want.Row(i), pd.Row(i), dProbDense.Row(i))
		for j := 0; j < s; j++ {
			want.Data[i*s+j] *= scale
		}
	}
	// Compare only on active blocks (inactive are zero on both sides by
	// construction: p=0 there).
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("SoftmaxBackward MaxAbsDiff = %v", d)
	}
}

func TestBlockSparseDenseRoundTrip(t *testing.T) {
	l := Pattern{Kind: KindLocal, Window: 2}.Build(3)
	m := NewBlockSparse(l, 4)
	r := tensor.NewRNG(13)
	for i := range m.Data {
		m.Data[i] = float32(r.Norm())
	}
	d := m.ToDense()
	m2 := NewBlockSparse(l, 4)
	m2.FromDense(d)
	for i := range m.Data {
		if m.Data[i] != m2.Data[i] {
			t.Fatal("FromDense∘ToDense is not identity on active blocks")
		}
	}
}
