package sparse

import (
	"math/rand"
	"testing"
)

// randSlice fills deterministic pseudo-random weights in [-1, 1).
func randSlice(r *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(r.Float64()*2 - 1)
	}
	return s
}

// TestDecodeFC1GatherMatchesScalarReference pins the fused single-row FC1
// kernel bit for bit against the obvious scalar computation in the same
// operation order (products accumulated over k, bias added once, ReLU
// clamp) — the order the training path FC1Sparse + bias + ReLU uses, which
// is what makes decode and training agree bitwise on shared selections.
func TestDecodeFC1GatherMatchesScalarReference(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	const d, H, blk = 12, 20, 8 // ragged final block: H % blk != 0
	w := ColMajor{In: d, Out: H, Data: randSlice(r, d*H)}
	bias := randSlice(r, H)
	x := randSlice(r, d)

	for _, blocks := range [][]int{{0}, {2}, {1, 2}, {0, 1, 2}} {
		hidden := make([]float32, H)
		DecodeFC1Gather(hidden, x, &w, bias, blocks, blk)

		active := make(map[int]bool)
		for _, nb := range blocks {
			for c := nb * blk; c < (nb+1)*blk && c < H; c++ {
				active[c] = true
				var s float32
				col := w.Col(c)
				for k, xv := range x {
					s += xv * col[k]
				}
				s += bias[c]
				if s < 0 {
					s = 0
				}
				if hidden[c] != s {
					t.Fatalf("blocks %v: hidden[%d] = %v, reference %v", blocks, c, hidden[c], s)
				}
			}
		}
		for c := 0; c < H; c++ {
			if !active[c] && hidden[c] != 0 {
				t.Fatalf("blocks %v: inactive neuron %d wrote %v", blocks, c, hidden[c])
			}
		}
	}
}

// TestDecodeFC2ScatterMatchesFC2Sparse pins the serial scatter kernel to
// the parallel training kernel on one row: same blocks, same zero-skip,
// same accumulation order per output column — bitwise equal.
func TestDecodeFC2ScatterMatchesFC2Sparse(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	const H, d, blk = 20, 12, 8
	w := RowMajor{In: H, Out: d, Data: randSlice(r, H*d)}
	hidden := randSlice(r, H)
	// Post-ReLU shape: a realistic mix of exact zeros the kernel must skip.
	for i := 0; i < H; i += 3 {
		hidden[i] = 0
	}

	for _, blocks := range [][]int{{0}, {2}, {0, 2}, AllBlocks(H, blk)} {
		got := make([]float32, d)
		DecodeFC2Scatter(got, hidden, &w, blocks, blk)
		want := make([]float32, d)
		FC2Sparse(want, hidden, 1, &w, blocks, blk)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("blocks %v: out[%d] = %v, FC2Sparse %v", blocks, c, got[c], want[c])
			}
		}
	}
}
