package sparse

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutRowColConsistency(t *testing.T) {
	l := NewLayout(4, func(br, bc int) bool { return bc <= br && (br+bc)%2 == 0 })
	// Every (br, bc) in rows must appear in cols and vice versa.
	for br := 0; br < 4; br++ {
		for _, bc := range l.RowBlocks(br) {
			found := false
			for _, r := range l.ColBlocks(int(bc)) {
				if int(r) == br {
					found = true
				}
			}
			if !found {
				t.Fatalf("(%d,%d) in rows but not cols", br, bc)
			}
		}
	}
	n := 0
	for bc := 0; bc < 4; bc++ {
		n += len(l.ColBlocks(bc))
	}
	if n != l.NNZ() {
		t.Fatalf("cols count %d != nnz %d", n, l.NNZ())
	}
}

func TestBlockIDDenseEnumeration(t *testing.T) {
	l := NewLayout(5, func(br, bc int) bool { return bc <= br })
	want := int32(0)
	for br := 0; br < 5; br++ {
		if l.RowPtr(br) != want {
			t.Fatalf("RowPtr(%d) = %d, want %d", br, l.RowPtr(br), want)
		}
		for _, bc := range l.RowBlocks(br) {
			id, ok := l.BlockID(br, int(bc))
			if !ok || id != want {
				t.Fatalf("BlockID(%d,%d) = %d,%v want %d", br, bc, id, ok, want)
			}
			want++
		}
	}
	if int(want) != l.NNZ() {
		t.Fatalf("enumerated %d blocks, nnz %d", want, l.NNZ())
	}
}

func TestBlockIDInactive(t *testing.T) {
	l := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {2, 1}})
	if _, ok := l.BlockID(1, 0); ok {
		t.Fatal("inactive block reported active")
	}
	if !l.Active(2, 1) {
		t.Fatal("active block reported inactive")
	}
}

func TestDensitySparsity(t *testing.T) {
	l := NewLayoutFromBlocks(4, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if l.Density() != 0.25 {
		t.Fatalf("Density = %v", l.Density())
	}
	if l.Sparsity() != 0.75 {
		t.Fatalf("Sparsity = %v", l.Sparsity())
	}
}

func TestUnionIntersect(t *testing.T) {
	a := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 0}})
	b := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {2, 1}})
	u := a.Union(b)
	if u.NNZ() != 3 || !u.Active(0, 0) || !u.Active(1, 0) || !u.Active(2, 1) {
		t.Fatalf("Union wrong: nnz=%d", u.NNZ())
	}
	x := a.Intersect(b)
	if x.NNZ() != 1 || !x.Active(0, 0) {
		t.Fatalf("Intersect wrong: nnz=%d", x.NNZ())
	}
	if a.Overlap(b) != 1 {
		t.Fatalf("Overlap = %d", a.Overlap(b))
	}
}

func TestCausalityChecks(t *testing.T) {
	causal := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 1}, {2, 2}, {2, 0}})
	if !causal.IsCausal() || !causal.CoversDiagonal() {
		t.Fatal("causal layout misclassified")
	}
	acausal := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {0, 2}, {1, 1}, {2, 2}})
	if acausal.IsCausal() {
		t.Fatal("acausal layout classified causal")
	}
	noDiag := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 1}, {2, 0}})
	if noDiag.CoversDiagonal() {
		t.Fatal("missing diagonal block not detected")
	}
}

func TestLayoutEqual(t *testing.T) {
	a := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 0}})
	b := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 0}})
	c := NewLayoutFromBlocks(3, [][2]int{{0, 0}, {1, 1}})
	if !a.Equal(b) {
		t.Fatal("equal layouts compare unequal")
	}
	if a.Equal(c) {
		t.Fatal("different layouts compare equal")
	}
}

// Property: for random layouts, Union covers both inputs and Intersect is
// covered by both inputs.
func TestUnionIntersectProperty(t *testing.T) {
	f := func(seedA, seedB uint32) bool {
		nb := 6
		mk := func(seed uint32) *Layout {
			return NewLayout(nb, func(br, bc int) bool {
				if bc > br {
					return false
				}
				h := uint64(seed)*2654435761 + uint64(br*31+bc)
				h = (h ^ (h >> 13)) * 0x9e3779b97f4a7c15
				return h%3 == 0 || br == bc
			})
		}
		a, b := mk(seedA), mk(seedB)
		u, x := a.Union(b), a.Intersect(b)
		for br := 0; br < nb; br++ {
			for bc := 0; bc <= br; bc++ {
				if (a.Active(br, bc) || b.Active(br, bc)) != u.Active(br, bc) {
					return false
				}
				if (a.Active(br, bc) && b.Active(br, bc)) != x.Active(br, bc) {
					return false
				}
			}
		}
		return u.NNZ()+x.NNZ() == a.NNZ()+b.NNZ() // inclusion–exclusion
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
