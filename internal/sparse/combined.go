package sparse

import (
	"fmt"

	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// CombinedSparse holds the block-sparse score matrices of *all* heads of
// one attention invocation in a single buffer, indexed by the online
// combination's offset table. Work is scheduled over the flat Task list at
// block granularity, so heads with very different sparsity cannot imbalance
// the workers — §VI-A's "the basic unit of operation is the block rather
// than the individual head".
type CombinedSparse struct {
	HL   *HeadLayouts
	Blk  int
	Data []float32 // TotalBlocks · Blk²
}

// NewCombinedSparse allocates zeroed storage for a head combination.
func NewCombinedSparse(hl *HeadLayouts, blk int) *CombinedSparse {
	return NewCombinedSparseIn(nil, hl, blk)
}

// NewCombinedSparseIn takes the combined buffer from the workspace arena
// (keyed, like all arena storage, by the buffer's size class — layouts of
// equal total active-block count share recycled storage); ws == nil
// allocates fresh zeroed storage.
func NewCombinedSparseIn(ws *tensor.Arena, hl *HeadLayouts, blk int) *CombinedSparse {
	return &CombinedSparse{HL: hl, Blk: blk, Data: tensor.FloatsIn(ws, hl.TotalBlocks()*blk*blk)}
}

// block returns the storage of the combined block offset.
func (c *CombinedSparse) block(off int) []float32 {
	bb := c.Blk * c.Blk
	return c.Data[off*bb : (off+1)*bb]
}

// HeadView adapts one head's slice of the combined buffer to the
// single-head BlockSparse type, sharing storage. Row-oriented passes
// (softmax, its backward) run through views; block-oriented passes run
// over the task list.
func (c *CombinedSparse) HeadView(h int) *BlockSparse {
	bb := c.Blk * c.Blk
	lo, hi := c.HL.DataOff[h]*bb, c.HL.DataOff[h+1]*bb
	return &BlockSparse{L: c.HL.Heads[h], Blk: c.Blk, Data: c.Data[lo:hi]}
}

// MultiHeadSDD computes every head's active score blocks from per-head
// query/key buffers (q[h], k[h]: [s·hd] row-major), parallelized over the
// combined task list. Each task writes exactly one block, so scheduling is
// balanced regardless of per-head sparsity skew.
func MultiHeadSDD(c *CombinedSparse, q, k [][]float32, hd int) {
	if len(q) != c.HL.NumHeads() || len(k) != c.HL.NumHeads() {
		panic(fmt.Sprintf("sparse: MultiHeadSDD got %d/%d buffers for %d heads", len(q), len(k), c.HL.NumHeads()))
	}
	blk := c.Blk
	tasks := c.HL.Tasks
	parallel.ForChunked(len(tasks), func(lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			task := tasks[ti]
			qh, kh := q[task.Head], k[task.Head]
			out := c.block(task.Off)
			for i := 0; i < blk; i++ {
				qr := qh[(task.BR*blk+i)*hd : (task.BR*blk+i+1)*hd]
				row := out[i*blk : (i+1)*blk]
				for j := 0; j < blk; j++ {
					kr := kh[(task.BC*blk+j)*hd : (task.BC*blk+j+1)*hd]
					var s float32
					for x, qv := range qr {
						s += qv * kr[x]
					}
					row[j] += s
				}
			}
		}
	})
}

// MultiHeadCausalSoftmax applies the causal softmax to every head,
// parallelized over heads (rows are the unit of coupling, and rows never
// cross heads).
func MultiHeadCausalSoftmax(c *CombinedSparse, scale float32) {
	parallel.For(c.HL.NumHeads(), func(h int) {
		CausalSoftmax(c.HeadView(h), scale)
	})
}

// MultiHeadDSD computes out[h] += headProbs·v[h] for every head,
// parallelized over (head, block-row) pairs — each pair owns a disjoint
// slice of its head's output, so the pass is race-free and finer-grained
// than per-head scheduling.
func MultiHeadDSD(out, v [][]float32, c *CombinedSparse, hd int) {
	if len(out) != c.HL.NumHeads() || len(v) != c.HL.NumHeads() {
		panic("sparse: MultiHeadDSD buffer count mismatch")
	}
	blk := c.Blk
	nb := 0
	if c.HL.NumHeads() > 0 {
		nb = c.HL.Heads[0].NB()
	}
	parallel.For(c.HL.NumHeads()*nb, func(idx int) {
		h, br := idx/nb, idx%nb
		sp := c.HeadView(h)
		vh, oh := v[h], out[h]
		for _, bc32 := range sp.L.RowBlocks(br) {
			bc := int(bc32)
			id, _ := sp.L.BlockID(br, bc)
			blkData := sp.Block(id)
			for i := 0; i < blk; i++ {
				dst := oh[(br*blk+i)*hd : (br*blk+i+1)*hd]
				row := blkData[i*blk : (i+1)*blk]
				for j, w := range row {
					if w == 0 {
						continue
					}
					src := vh[(bc*blk+j)*hd : (bc*blk+j+1)*hd]
					for x, sv := range src {
						dst[x] += w * sv
					}
				}
			}
		}
	})
}
