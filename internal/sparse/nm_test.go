package sparse

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

func randMat(rows, cols int, seed uint64) []float32 {
	t := tensor.New(rows, cols)
	tensor.NewRNG(seed).FillNormal(t, 1)
	return t.Data
}

// TestPackNMSelection pins the pruning rule: top-n by |value| per aligned
// group, ties to the lower column, kept entries in ascending column order.
func TestPackNMSelection(t *testing.T) {
	w := []float32{
		0.1, -3, 2, 0.5 /**/, 1, 1, -1, 0, // tie between cols 0,1,2: keep 0,1
		0, 0, 0, 0 /**/, -0.5, 0, 0, 4,
	}
	p := PackNM(w, 2, 8, 2, 4)
	wantVal := []float32{-3, 2, 1, 1, 0, 0, -0.5, 4}
	wantIdx := []uint8{1, 2, 0, 1, 0, 1, 0, 3}
	for i := range wantVal {
		if p.Val[i] != wantVal[i] || p.Idx[i] != wantIdx[i] {
			t.Fatalf("entry %d: (%g, %d), want (%g, %d)", i, p.Val[i], p.Idx[i], wantVal[i], wantIdx[i])
		}
	}
	if p.Bytes() != 4*8+8 {
		t.Fatalf("Bytes = %d, want 40", p.Bytes())
	}
}

// TestPackNMExactForStructured: a matrix that is already 2:4 structured
// survives pack→dequant bit-exactly.
func TestPackNMExactForStructured(t *testing.T) {
	const rows, cols = 6, 16
	w := randMat(rows, cols, 1)
	for i := 0; i < len(w); i += 4 { // zero two of every four
		w[i+1], w[i+3] = 0, 0
	}
	got := PackNM(w, rows, cols, 2, 4).Dequant()
	for i := range w {
		if math.Float32bits(got[i]) != math.Float32bits(w[i]) {
			t.Fatalf("element %d: %g -> %g", i, w[i], got[i])
		}
	}
}

// TestNMMulVec checks the gather kernel against a dense matvec over the
// dequantized matrix, including the generic (non-2:4) path.
func TestNMMulVec(t *testing.T) {
	const rows, cols = 33, 64
	w := randMat(rows, cols, 2)
	x := randMat(1, cols, 3)
	for _, shape := range []struct{ n, m int }{{2, 4}, {1, 4}, {3, 8}} {
		p := PackNM(w, rows, cols, shape.n, shape.m)
		deq := p.Dequant()
		y := make([]float32, rows)
		p.MulVec(y, x)
		for r := 0; r < rows; r++ {
			var want float64
			for c := 0; c < cols; c++ {
				want += float64(deq[r*cols+c]) * float64(x[c])
			}
			if d := math.Abs(float64(y[r]) - want); d > 1e-4 {
				t.Fatalf("%d:%d row %d: got %g, want %g", shape.n, shape.m, r, y[r], want)
			}
		}
	}
}

// TestNMTMulVec checks the scatter kernel (FC2 orientation) against a dense
// vector-matrix product, and that exact-zero activations are skipped without
// changing the result.
func TestNMTMulVec(t *testing.T) {
	const rows, cols = 24, 32
	w := randMat(rows, cols, 4)
	h := randMat(1, rows, 5)
	for r := 0; r < rows; r += 3 {
		h[r] = 0 // ReLU-style exact zeros
	}
	p := PackNM(w, rows, cols, 2, 4)
	deq := p.Dequant()
	out := make([]float32, cols)
	p.TMulVec(out, h)
	for c := 0; c < cols; c++ {
		var want float64
		for r := 0; r < rows; r++ {
			want += float64(h[r]) * float64(deq[r*cols+c])
		}
		if d := math.Abs(float64(out[c]) - want); d > 1e-4 {
			t.Fatalf("col %d: got %g, want %g", c, out[c], want)
		}
	}
}

// TestNMBatchForms checks MulTB/TMulBatch agree with their per-row kernels.
func TestNMBatchForms(t *testing.T) {
	const rows, cols, tokens = 16, 32, 3
	p := PackNM(randMat(rows, cols, 6), rows, cols, 2, 4)
	x := randMat(tokens, cols, 7)
	hb := randMat(tokens, rows, 8)

	y := make([]float32, tokens*rows)
	p.MulTB(y, x, tokens)
	out := make([]float32, tokens*cols)
	p.TMulBatch(out, hb, tokens)
	for tk := 0; tk < tokens; tk++ {
		yRow := make([]float32, rows)
		p.MulVec(yRow, x[tk*cols:(tk+1)*cols])
		for r := 0; r < rows; r++ {
			if y[tk*rows+r] != yRow[r] {
				t.Fatalf("MulTB token %d row %d diverges", tk, r)
			}
		}
		oRow := make([]float32, cols)
		p.TMulVec(oRow, hb[tk*rows:(tk+1)*rows])
		for c := 0; c < cols; c++ {
			if out[tk*cols+c] != oRow[c] {
				t.Fatalf("TMulBatch token %d col %d diverges", tk, c)
			}
		}
	}
}
