package sparse

import (
	"fmt"
	"sync"
)

// Pool caches pre-computed layout lookup tables for atomic patterns, keyed
// by (pattern, grid size). This is the paper's offline pool construction:
// data-layout indexing is the expensive part of sparse kernels, so the
// tables are built once and only combined (never rebuilt) at runtime.
type Pool struct {
	mu    sync.Mutex
	cache map[string]*Layout
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{cache: make(map[string]*Layout)}
}

// Get returns the layout of p on an nb-block grid, building and caching it
// on first use. Concurrent Get calls are safe.
func (pl *Pool) Get(p Pattern, nb int) *Layout {
	key := fmt.Sprintf("%s@%d", p.String(), nb)
	pl.mu.Lock()
	if l, ok := pl.cache[key]; ok {
		pl.mu.Unlock()
		return l
	}
	pl.mu.Unlock()
	l := p.Build(nb) // build outside the lock; duplicate builds are benign
	pl.mu.Lock()
	pl.cache[key] = l
	pl.mu.Unlock()
	return l
}

// Warm pre-builds every pattern in patterns at grid size nb — the offline
// construction step run before fine-tuning starts.
func (pl *Pool) Warm(patterns []Pattern, nb int) {
	for _, p := range patterns {
		pl.Get(p, nb)
	}
}

// Size reports how many layouts are cached.
func (pl *Pool) Size() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.cache)
}

// Task is one unit of block-sparse work after online combination: a single
// active block of a single head, with its storage offset pre-resolved. The
// basic unit of operation is the block, not the head, so the worker pool
// stays balanced even when heads have very different sparsity (§VI-A).
type Task struct {
	Head   int
	BR, BC int
	Off    int // block index into the combined data buffer
}

// HeadLayouts is the online combination of per-head layouts for one
// multi-head attention invocation. DataOff[h] is the block offset of head
// h's storage — the "offset shift" applied to each head's lookup table.
type HeadLayouts struct {
	Heads   []*Layout
	DataOff []int
	Tasks   []Task
	total   int
}

// Combine assembles per-head layouts into a flat, balanced task list.
// It is O(total active blocks); no layout is rebuilt.
func Combine(heads []*Layout) *HeadLayouts {
	hl := &HeadLayouts{
		Heads:   heads,
		DataOff: make([]int, len(heads)+1),
	}
	for h, l := range heads {
		hl.DataOff[h+1] = hl.DataOff[h] + l.NNZ()
	}
	hl.total = hl.DataOff[len(heads)]
	hl.Tasks = make([]Task, 0, hl.total)
	for h, l := range heads {
		base := hl.DataOff[h]
		for br := 0; br < l.NB(); br++ {
			ptr := int(l.RowPtr(br))
			for i, bc := range l.RowBlocks(br) {
				hl.Tasks = append(hl.Tasks, Task{Head: h, BR: br, BC: int(bc), Off: base + ptr + i})
			}
		}
	}
	return hl
}

// TotalBlocks returns the number of active blocks across all heads.
func (hl *HeadLayouts) TotalBlocks() int { return hl.total }

// NumHeads returns the head count.
func (hl *HeadLayouts) NumHeads() int { return len(hl.Heads) }

// Density returns active blocks / total causal-grid blocks over all heads.
func (hl *HeadLayouts) Density() float64 {
	if len(hl.Heads) == 0 {
		return 0
	}
	nb := hl.Heads[0].NB()
	return float64(hl.total) / float64(len(hl.Heads)*nb*nb)
}
