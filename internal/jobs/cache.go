package jobs

import "container/list"

// resultCache is a bounded LRU of spec-hash → Result. Only successful jobs
// populate it (failed or cancelled runs must re-execute on resubmission).
// Values are immutable; hits hand out the shared pointer.
type resultCache struct {
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *resultCache) get(key string) (*Result, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) put(key string, res *Result) {
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).res = res
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.ll.Len() }
