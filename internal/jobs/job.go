package jobs

import (
	"context"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/trace"
	"longexposure/internal/train"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// FinetuneResult summarizes a completed fine-tuning job.
type FinetuneResult struct {
	Model     string           `json:"model"`
	Steps     int              `json:"steps"`
	FirstLoss float64          `json:"first_loss"`
	FinalLoss float64          `json:"final_loss"`
	MeanStep  train.PhaseTimes `json:"mean_step"` // per-phase ns, averaged per step
	// AttnRecall/MLPRecall report predictor quality (sparse jobs only).
	AttnRecall float64 `json:"attn_recall,omitempty"`
	MLPRecall  float64 `json:"mlp_recall,omitempty"`
	// AdapterID names the registry artifact the job's trainable delta was
	// published as (set when the store runs with a registry attached).
	AdapterID string `json:"adapter_id,omitempty"`
}

// ExperimentResult carries a regenerated paper artifact.
type ExperimentResult struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Markdown string `json:"markdown"`
}

// Result is the terminal output of a successful job; exactly one field is
// set, matching the job kind. Results are immutable once published (they
// are shared with the cache and with API snapshots).
type Result struct {
	Finetune   *FinetuneResult   `json:"finetune,omitempty"`
	Experiment *ExperimentResult `json:"experiment,omitempty"`
}

// Job is one managed workload. The exported fields are the API surface;
// snapshots handed out by the store are value copies, safe to marshal
// without holding store locks.
type Job struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	Spec Spec   `json:"spec"`
	// Tenant is the submitting principal captured at admission; it drives
	// the ?tenant= list filter and the job's accounting event.
	Tenant string `json:"tenant,omitempty"`

	Status Status `json:"status"`
	// CacheHit marks a job served from the result cache without running.
	CacheHit bool   `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	Result *Result `json:"result,omitempty"`

	// TraceID links a sampled job to its span tree at /debug/traces and
	// to its structured log records. Empty when the job was unsampled.
	TraceID string `json:"trace_id,omitempty"`

	// Scheduling internals (not marshalled).
	seq    int64 // submission order, FIFO tiebreak within a priority
	ctx    context.Context
	cancel context.CancelFunc
	// span covers the job's whole lifetime; nil when unsampled (every
	// use is a nil-safe no-op).
	span *trace.Span
	// acct accumulates the job's wide-event resource vector while it
	// runs (nil until the worker arms it; nil for experiments and cache
	// hits). Written only by the owning worker before finalization.
	acct *account.TrainAccumulator
}

// EventKind tags a job event.
type EventKind string

const (
	EventQueued    EventKind = "queued"
	EventStarted   EventKind = "started"
	EventProgress  EventKind = "progress"
	EventDone      EventKind = "done"
	EventFailed    EventKind = "failed"
	EventCancelled EventKind = "cancelled"
	// EventLost is synthesized per subscriber when a slow consumer's
	// bounded backlog overflowed: Lost counts the dropped events and Seq
	// is the sequence number of the first one. It never appears in the
	// stored event log — only on streams that fell behind.
	EventLost EventKind = "lost"
)

// Terminal reports whether the event ends the job's stream. Every job
// emits exactly one terminal event.
func (k EventKind) Terminal() bool {
	return k == EventDone || k == EventFailed || k == EventCancelled
}

// StepProgress is the payload of a progress event: one fine-tuning step's
// loss and phase times (train.StepInfo, serialized).
type StepProgress struct {
	Epoch      int     `json:"epoch"`
	Step       int     `json:"step"`
	GlobalStep int     `json:"global_step"`
	TotalSteps int     `json:"total_steps"`
	Loss       float64 `json:"loss"`
	// Times carries the step's per-phase wall clock in nanoseconds
	// (Forward/Backward/Optim/Predict).
	Times train.PhaseTimes `json:"times"`
}

// Event is one item on a job's event stream.
type Event struct {
	Seq     int       `json:"seq"` // per-job, dense from 0
	JobID   string    `json:"job_id"`
	Kind    EventKind `json:"kind"`
	Time    time.Time `json:"time"`
	Message string    `json:"message,omitempty"`

	Progress *StepProgress `json:"progress,omitempty"`
	Result   *Result       `json:"result,omitempty"` // on done events
	Error    string        `json:"error,omitempty"`  // on failed events
	// Lost counts events dropped before this one (EventLost markers only).
	Lost int `json:"lost,omitempty"`
}
