// Package jobs turns Long Exposure fine-tuning sessions and paper
// experiments into managed workloads: a job store with a priority/FIFO
// scheduler, a bounded worker pool, per-job lifecycle
// (queued → running → done/failed/cancelled) with context-based
// cancellation, per-step progress events on subscriber channels, and a
// result cache keyed by a deterministic hash of the job spec so repeated
// submissions are served instantly.
//
// The package is the service layer the HTTP API (internal/serve) sits on;
// it mirrors how SparseLoRA/SLoPe wrap their sparsity-accelerated training
// behind a trainer façade, translated to a concurrent Go service.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"longexposure/internal/core"
	"longexposure/internal/experiments"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
)

// Kind selects what a job executes.
type Kind string

const (
	// KindFinetune runs a fine-tuning session (Long Exposure or dense
	// baseline) assembled from a FinetuneSpec.
	KindFinetune Kind = "finetune"
	// KindExperiment runs one experiments.Registry driver.
	KindExperiment Kind = "experiment"
)

// Spec is the JSON job submission. Exactly one of Finetune/Experiment must
// be set, matching Kind. Priority orders the queue (higher first, FIFO
// within a priority level) and is excluded from the result-cache hash —
// the same work at a different priority is still the same work.
type Spec struct {
	Kind     Kind `json:"kind"`
	Priority int  `json:"priority,omitempty"`

	// Tenant is the submitting principal, stamped by the API layer at
	// admission (never client-supplied JSON). It is excluded from both the
	// submission body and the result-cache hash — the same work submitted
	// by two tenants is still the same work.
	Tenant string `json:"-"`

	Finetune   *FinetuneSpec   `json:"finetune,omitempty"`
	Experiment *ExperimentSpec `json:"experiment,omitempty"`
}

// FinetuneSpec describes a fine-tuning job. Model names resolve through
// the Table II zoo but always build the CPU-trainable sim-scale variant
// (model.Sim); "sim-small" (the default) is the test-size config.
type FinetuneSpec struct {
	Model      string `json:"model,omitempty"`      // "sim-small" or a Table II name ("OPT-1.3B", …)
	Activation string `json:"activation,omitempty"` // "relu" (default) | "gelu", sim-small only
	Method     string `json:"method,omitempty"`     // full|lora|adapter|bitfit|ptuning (default lora)
	// Sparse selects the Long Exposure path (default true); false runs the
	// dense PEFT baseline.
	Sparse *bool `json:"sparse,omitempty"`

	Epochs int `json:"epochs,omitempty"` // default 1
	Steps  int `json:"steps,omitempty"`  // batches per epoch, default 4
	Batch  int `json:"batch,omitempty"`  // default 2
	Seq    int `json:"seq,omitempty"`    // default 32
	Blk    int `json:"blk,omitempty"`    // sparsity block size, default 8

	LR   float64 `json:"lr,omitempty"`   // default 1e-3
	Seed uint64  `json:"seed,omitempty"` // default 1

	// PredictorEpochs tunes the offline predictor pre-training phase
	// (sparse jobs only, default 6).
	PredictorEpochs int `json:"predictor_epochs,omitempty"`

	// Precision selects the weight storage of the published base artifact
	// ("f32" default, "f16", "int8", "nm24"). Training always runs f32;
	// the choice is recorded in the artifact's base descriptor, and the
	// serving gateway compresses the rebuilt base to match at load time.
	Precision string `json:"precision,omitempty"`
}

// ExperimentSpec names one registered paper experiment.
type ExperimentSpec struct {
	ID string `json:"id"`
	// Quick selects reduced sizes (default true — a service should not
	// default to minutes-long full-fidelity runs).
	Quick *bool  `json:"quick,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`
}

// boolOr dereferences an optional bool.
func boolOr(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// Normalized resolves every defaulted field, so equal work hashes equally
// regardless of how sparsely the submission was written.
func (s Spec) Normalized() Spec {
	out := s
	switch s.Kind {
	case KindFinetune:
		if s.Finetune != nil {
			f := s.Finetune.normalized()
			out.Finetune = &f
		}
	case KindExperiment:
		if s.Experiment != nil {
			e := *s.Experiment
			q := boolOr(e.Quick, true)
			e.Quick = &q
			if e.Seed == 0 {
				e.Seed = 2024 // experiments.Options default
			}
			out.Experiment = &e
		}
	}
	return out
}

func (f FinetuneSpec) normalized() FinetuneSpec {
	if f.Model == "" {
		f.Model = "sim-small"
	}
	if f.Activation == "" {
		f.Activation = "relu"
	}
	if f.Method == "" {
		f.Method = "lora"
	}
	// methodFromString is case-insensitive, so fold case here too: "LoRA"
	// and "lora" build identical work and must share a cache hash.
	f.Method = strings.ToLower(f.Method)
	sparse := boolOr(f.Sparse, true)
	f.Sparse = &sparse
	if f.Epochs == 0 {
		f.Epochs = 1
	}
	if f.Steps == 0 {
		f.Steps = 4
	}
	if f.Batch == 0 {
		f.Batch = 2
	}
	if f.Seq == 0 {
		f.Seq = 32
	}
	if f.Blk == 0 {
		f.Blk = 8
	}
	if f.LR == 0 {
		f.LR = 1e-3
	}
	if f.Seed == 0 {
		f.Seed = 1
	}
	if f.PredictorEpochs == 0 {
		f.PredictorEpochs = 6
	}
	// "f32" is the default spelled out: fold to empty so it hashes (and
	// base-descriptor-hashes) identically to a spec that omitted it.
	if f.Precision == nn.PrecisionF32 {
		f.Precision = ""
	}
	return f
}

// Validate rejects malformed submissions before they reach the queue.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindFinetune:
		if s.Finetune == nil {
			return fmt.Errorf("jobs: kind %q requires a finetune spec", s.Kind)
		}
		if s.Experiment != nil {
			return fmt.Errorf("jobs: kind %q must not carry an experiment spec", s.Kind)
		}
		return s.Finetune.validate()
	case KindExperiment:
		if s.Experiment == nil {
			return fmt.Errorf("jobs: kind %q requires an experiment spec", s.Kind)
		}
		if s.Finetune != nil {
			return fmt.Errorf("jobs: kind %q must not carry a finetune spec", s.Kind)
		}
		if _, ok := experiments.Registry[s.Experiment.ID]; !ok {
			return fmt.Errorf("jobs: unknown experiment id %q (have %v)", s.Experiment.ID, experiments.IDs())
		}
		return nil
	default:
		return fmt.Errorf("jobs: unknown job kind %q (want %q or %q)", s.Kind, KindFinetune, KindExperiment)
	}
}

func (f FinetuneSpec) validate() error {
	n := f.normalized()
	if _, err := n.modelSpec(); err != nil {
		return err
	}
	if _, err := methodFromString(n.Method); err != nil {
		return err
	}
	switch n.Activation {
	case "relu", "gelu":
	default:
		return fmt.Errorf("jobs: unknown activation %q (want relu or gelu)", f.Activation)
	}
	if !nn.ValidPrecision(n.Precision) {
		return fmt.Errorf("jobs: unknown base precision %q (want f32, f16, int8 or nm24)", f.Precision)
	}
	if f.Epochs < 0 || f.Steps < 0 || f.Batch < 0 || f.Seq < 0 || f.Blk < 0 || f.PredictorEpochs < 0 {
		return fmt.Errorf("jobs: negative finetune geometry")
	}
	if f.LR < 0 {
		return fmt.Errorf("jobs: negative learning rate")
	}
	return nil
}

// modelSpec resolves the sim-scale model of a normalized spec.
func (f FinetuneSpec) modelSpec() (model.Spec, error) {
	if f.Model == "sim-small" {
		act := nn.ActReLU
		if f.Activation == "gelu" {
			act = nn.ActGeLU
		}
		return model.SimSmall(act), nil
	}
	base, err := model.ByName(f.Model)
	if err != nil {
		return model.Spec{}, err
	}
	return model.Sim(base), nil
}

// CoreConfig assembles the session config of a normalized spec, resolving
// core's own defaults too so the hash covers exactly what gets built.
func (f FinetuneSpec) CoreConfig() (core.Config, error) {
	spec, err := f.modelSpec()
	if err != nil {
		return core.Config{}, err
	}
	method, err := methodFromString(f.Method)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Spec:   spec,
		Method: method,
		Blk:    f.Blk,
		LR:     f.LR,
		Seed:   f.Seed,
		Prime:  true,
	}.Normalized(), nil
}

func methodFromString(s string) (peft.Method, error) {
	m, err := peft.ParseMethod(s)
	if err != nil {
		return 0, fmt.Errorf("jobs: %w", err)
	}
	return m, nil
}

// Hash returns the deterministic cache key of the spec: SHA-256 over the
// canonical JSON of the normalized spec with priority cleared. Two
// submissions that build and run the same work share a hash, so the second
// is served from the result cache.
func (s Spec) Hash() string {
	n := s.Normalized()
	n.Priority = 0
	b, err := json.Marshal(n)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("jobs: hashing spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}
