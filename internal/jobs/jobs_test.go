package jobs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// quickFinetune is a spec small enough that a job finishes in well under a
// second on CPU. Distinct seeds keep specs out of each other's cache line.
func quickFinetune(seed uint64) Spec {
	sparse := false
	return Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Sparse: &sparse, Steps: 2, Epochs: 1, Batch: 1, Seq: 12, Seed: seed,
	}}
}

// slowFinetune runs enough steps that tests can observe and cancel it
// mid-run.
func slowFinetune(seed uint64) Spec {
	sparse := false
	return Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Sparse: &sparse, Steps: 4, Epochs: 500, Batch: 1, Seq: 12, Seed: seed,
	}}
}

func waitTerminal(t *testing.T, s *Store, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.Status.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal status", id)
	return Job{}
}

func shutdown(t *testing.T, s *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSpecHashDeterministicAndDefaultInsensitive(t *testing.T) {
	sparse := true
	a := Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{}}
	b := Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Model: "sim-small", Activation: "relu", Method: "lora", Sparse: &sparse,
		Epochs: 1, Steps: 4, Batch: 2, Seq: 32, Blk: 8, LR: 1e-3, Seed: 1, PredictorEpochs: 6,
	}}
	if a.Hash() != b.Hash() {
		t.Errorf("explicit defaults changed the hash: %s vs %s", a.Hash(), b.Hash())
	}
	// Priority must not affect identity.
	c := a
	c.Priority = 9
	if a.Hash() != c.Hash() {
		t.Errorf("priority changed the hash")
	}
	d := Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{Seed: 7}}
	if a.Hash() == d.Hash() {
		t.Errorf("different seeds share a hash")
	}
	// Method parsing is case-insensitive, so hashing must be too.
	e := Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{Method: "LoRA"}}
	if a.Hash() != e.Hash() {
		t.Errorf("method casing changed the hash: %s vs %s", a.Hash(), e.Hash())
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "mystery"},
		{Kind: KindFinetune},
		{Kind: KindExperiment},
		{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "nope"}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{Model: "OPT-9000B"}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{Method: "galore"}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{Activation: "swish"}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{Blk: -4}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{LR: -1}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{PredictorEpochs: -2}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{}, Experiment: &ExperimentSpec{ID: "fig4"}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d unexpectedly valid: %+v", i, spec)
		}
	}
	good := []Spec{
		{Kind: KindFinetune, Finetune: &FinetuneSpec{}},
		{Kind: KindFinetune, Finetune: &FinetuneSpec{Model: "OPT-1.3B", Method: "ptuning"}},
		{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "fig4"}},
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
	}
}

func TestConcurrentSubmitsSaturatePoolButNeverExceedIt(t *testing.T) {
	const workers, n = 2, 6
	s := NewStore(Config{Workers: workers})
	defer shutdown(t, s)

	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		j, err := s.Submit(quickFinetune(uint64(100 + i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}

	maxRunning := 0
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.Running > maxRunning {
			maxRunning = st.Running
		}
		if st.Done == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range ids {
		if j := waitTerminal(t, s, id); j.Status != StatusDone {
			t.Errorf("job %s: status %s (error %q)", id, j.Status, j.Error)
		}
	}
	if maxRunning > workers {
		t.Errorf("observed %d concurrent jobs, pool is %d", maxRunning, workers)
	}
	if maxRunning == 0 {
		// Every job was verified Done above, so work definitely ran; on
		// fast machines the 1ms sampling loop can miss every running
		// window, which is a sampling artifact, not a scheduler bug.
		t.Log("sampling never caught a job mid-run; completion already verified")
	}
}

func TestPriorityOrdersQueueFIFOWithinLevel(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	// Occupy the single worker so subsequent submissions stay queued.
	blocker, err := s.Submit(slowFinetune(1))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it actually runs (left the queue).
	for {
		if j, _ := s.Get(blocker.ID); j.Status == StatusRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	submit := func(prio int, seed uint64) string {
		spec := quickFinetune(seed)
		spec.Priority = prio
		j, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		return j.ID
	}
	lo1 := submit(0, 11)
	hi := submit(5, 12)
	lo2 := submit(0, 13)
	top := submit(9, 14)

	want := []string{top, hi, lo1, lo2}
	got := s.pendingIDs()
	if len(got) != len(want) {
		t.Fatalf("pending %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pending %v, want %v", got, want)
		}
	}

	s.Cancel(blocker.ID)
	for _, id := range append([]string{blocker.ID}, want...) {
		waitTerminal(t, s, id)
	}
}

func TestMidRunCancellationLeavesStatusCancelled(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	j, err := s.Submit(slowFinetune(2))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Wait for the first per-step progress event: the job is mid-run.
	sawProgress := false
	for e := range ch {
		if e.Kind == EventProgress && e.Progress != nil {
			sawProgress = true
			if _, ok := s.Cancel(j.ID); !ok {
				t.Fatalf("cancel: job not found")
			}
		}
		if e.Kind.Terminal() {
			if e.Kind != EventCancelled {
				t.Fatalf("terminal event %s, want %s", e.Kind, EventCancelled)
			}
			break
		}
	}
	if !sawProgress {
		t.Fatalf("stream ended without a progress event")
	}

	final := waitTerminal(t, s, j.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status %s, want %s", final.Status, StatusCancelled)
	}
	if final.Result != nil {
		t.Errorf("cancelled job carries a result")
	}
	// A cancelled run must not poison the cache: resubmitting runs afresh.
	re, err := s.Submit(slowFinetune(2))
	if err != nil {
		t.Fatal(err)
	}
	if re.CacheHit {
		t.Errorf("cancelled job populated the result cache")
	}
	s.Cancel(re.ID)
	waitTerminal(t, s, re.ID)
}

func TestCancelQueuedJob(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	blocker, _ := s.Submit(slowFinetune(3))
	queued, _ := s.Submit(quickFinetune(31))
	j, ok := s.Cancel(queued.ID)
	if !ok || j.Status != StatusCancelled {
		t.Fatalf("queued cancel: ok=%v status=%s", ok, j.Status)
	}
	s.Cancel(blocker.ID)
	waitTerminal(t, s, blocker.ID)
	// The cancelled-queued job must not run: its log is queued+cancelled.
	evs := s.Events(queued.ID)
	if len(evs) != 2 || evs[0].Kind != EventQueued || evs[1].Kind != EventCancelled {
		t.Fatalf("queued-cancelled event log: %+v", evs)
	}
}

func TestCacheHitServesStoredResultWithoutRerunning(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	spec := quickFinetune(42)
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, first.ID)
	if done.Status != StatusDone {
		t.Fatalf("first run: %s (%s)", done.Status, done.Error)
	}
	if done.CacheHit {
		t.Fatalf("first run flagged as cache hit")
	}
	if done.Result == nil || done.Result.Finetune == nil {
		t.Fatalf("first run has no finetune result")
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatalf("identical resubmission missed the cache")
	}
	if second.Status != StatusDone {
		t.Fatalf("cache-hit job status %s, want %s", second.Status, StatusDone)
	}
	if second.Result != done.Result {
		t.Errorf("cache hit did not return the stored result pointer")
	}
	// Served instantly: no started event, just queued+done.
	evs := s.Events(second.ID)
	if len(evs) != 2 || evs[1].Kind != EventDone || !strings.Contains(evs[1].Message, "cache hit") {
		t.Fatalf("cache-hit event log: %+v", evs)
	}

	// A different spec must not hit.
	other, err := s.Submit(quickFinetune(43))
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHit {
		t.Errorf("different spec hit the cache")
	}
	waitTerminal(t, s, other.ID)
}

func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &Result{}, &Result{}, &Result{}
	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // touch: a is now most recent
		t.Fatal("a missing")
	}
	c.put("c", r3) // evicts b
	if _, ok := c.get("b"); ok {
		t.Errorf("b survived eviction")
	}
	if got, ok := c.get("a"); !ok || got != r1 {
		t.Errorf("a lost or rebound")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

func TestSubscribersSeeTerminalEventExactlyOnce(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	j, err := s.Submit(quickFinetune(7))
	if err != nil {
		t.Fatal(err)
	}
	subscribe := func() <-chan Event {
		ch, _, err := s.Subscribe(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		return ch
	}
	chans := []<-chan Event{subscribe(), subscribe()}
	waitTerminal(t, s, j.ID)
	// Late subscriber: job already terminal, gets a pure replay.
	chans = append(chans, subscribe())

	for i, ch := range chans {
		terminals, progress := 0, 0
		lastSeq := -1
		for e := range ch { // channel must close after the terminal event
			if e.Seq != lastSeq+1 {
				t.Errorf("subscriber %d: event seq %d after %d", i, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if e.Kind.Terminal() {
				terminals++
			}
			if e.Kind == EventProgress {
				progress++
			}
		}
		if terminals != 1 {
			t.Errorf("subscriber %d: %d terminal events, want exactly 1", i, terminals)
		}
		if progress == 0 {
			t.Errorf("subscriber %d: no progress events", i)
		}
	}
}

func TestAbandonedSubscriberDoesNotBlockJob(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	j, err := s.Submit(Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Sparse: func() *bool { b := false; return &b }(),
		Steps:  4, Epochs: 8, Batch: 1, Seq: 12, Seed: 55,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe and walk away without reading: the per-step publisher must
	// not block on us, and unsubscribing must release the pump.
	_, cancel, err := s.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("job finished %s (%s)", done.Status, done.Error)
	}
	cancel()
	cancel() // idempotent
}

func TestExperimentJobRunsAndCaches(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)

	spec := Spec{Kind: KindExperiment, Experiment: &ExperimentSpec{ID: "table2"}}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("experiment job: %s (%s)", done.Status, done.Error)
	}
	r := done.Result.Experiment
	if r == nil || r.ID != "table2" || !strings.Contains(r.Markdown, "table2") {
		t.Fatalf("experiment result: %+v", done.Result)
	}
	again, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Errorf("experiment resubmission missed the cache")
	}
}

func TestRunnersObserveCancelledContextBeforeSetup(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sparse := true
	ft := &Job{ID: "ft", ctx: ctx, Spec: Spec{Kind: KindFinetune,
		Finetune: &FinetuneSpec{Sparse: &sparse}}}
	if _, err := s.execute(ft, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("finetune setup ignored cancelled ctx: %v", err)
	}
	quick := true
	ex := &Job{ID: "ex", ctx: ctx, Spec: Spec{Kind: KindExperiment,
		Experiment: &ExperimentSpec{ID: "table1", Quick: &quick}}}
	if _, err := s.execute(ex, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("experiment runner ignored cancelled ctx: %v", err)
	}
}

func TestExecutePanicFailsJobNotProcess(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)
	// A kind/payload mismatch that bypassed validation must surface as a
	// failed job, not kill the worker goroutine (and with it the daemon).
	j := &Job{ID: "crafted", Spec: Spec{Kind: KindFinetune}} // nil Finetune → panic inside
	res, err := s.execute(j, nil)
	if res != nil || err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("execute: res=%v err=%v, want recovered panic error", res, err)
	}
}

func TestEvictionBoundsRetainedJobs(t *testing.T) {
	s := NewStore(Config{Workers: 1, MaxJobs: 3})
	defer shutdown(t, s)
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit(quickFinetune(uint64(700 + i)))
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, j.ID)
		ids = append(ids, j.ID)
	}
	if n := len(s.List("")); n > 3 {
		t.Errorf("retained %d jobs, cap is 3", n)
	}
	// The oldest terminal jobs (and their event logs) are gone…
	if _, ok := s.Get(ids[0]); ok {
		t.Errorf("oldest job survived eviction")
	}
	if evs := s.Events(ids[0]); len(evs) != 0 {
		t.Errorf("evicted job kept %d events", len(evs))
	}
	// …the newest survives.
	if _, ok := s.Get(ids[4]); !ok {
		t.Errorf("newest job evicted")
	}
}

func TestShutdownDrainsRunningJobs(t *testing.T) {
	s := NewStore(Config{Workers: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s.Submit(quickFinetune(uint64(900 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		j, _ := s.Get(id)
		if j.Status != StatusDone {
			t.Errorf("job %s not drained: %s (%s)", id, j.Status, j.Error)
		}
	}
	if _, err := s.Submit(quickFinetune(999)); err != ErrClosed {
		t.Errorf("submit after shutdown: %v, want ErrClosed", err)
	}
}
