package jobs

import (
	"testing"
	"time"

	"longexposure/internal/trace"
)

// TestJobSpans pins the job-lifecycle trace: a submitted job opens a
// jobs.job root span, records its trace id on the Job for correlation,
// and by completion the ring holds the queue → run tree with the training
// steps nested under the run span.
func TestJobSpans(t *testing.T) {
	tr := trace.New(trace.Config{SampleRatio: 1, Seed: 42})
	s := NewStore(Config{Workers: 1, Tracer: tr})
	defer shutdown(t, s)

	j, err := s.Submit(quickFinetune(3))
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceID == "" {
		t.Fatal("submitted job carries no trace id")
	}
	done := waitTerminal(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("job status %s (%s)", done.Status, done.Error)
	}
	if done.TraceID != j.TraceID {
		t.Fatalf("trace id changed across lifecycle: %s -> %s", j.TraceID, done.TraceID)
	}

	// The root span finishes just after the status flips terminal; poll.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		recent, _ := tr.Snapshot(0)
		for _, rec := range recent {
			if rec.TraceID != j.TraceID || len(rec.Roots) == 0 {
				continue
			}
			root := rec.Roots[0]
			if root.Name != "jobs.job" {
				t.Fatalf("root span %q, want jobs.job", root.Name)
			}
			var haveQueue, haveRun, haveStep bool
			for _, c := range root.Children {
				switch c.Name {
				case "jobs.queue":
					haveQueue = true
				case "jobs.run":
					haveRun = true
					for _, g := range c.Children {
						if g.Name == "train.step" {
							haveStep = true
						}
					}
				}
			}
			if haveQueue && haveRun && haveStep {
				if got := root.Attrs["status"]; got != string(StatusDone) {
					t.Fatalf("root status attr = %v", got)
				}
				if got := root.Attrs["kind"]; got != string(KindFinetune) {
					t.Fatalf("root kind attr = %v", got)
				}
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	recent, _ := tr.Snapshot(0)
	t.Fatalf("no complete jobs.job tree for trace %s in %d retained traces", j.TraceID, len(recent))
}

// TestJobSpanUnsampled proves the nil-span path: with no tracer wired the
// job runs normally and exposes no trace id.
func TestJobSpanUnsampled(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer shutdown(t, s)
	j, err := s.Submit(quickFinetune(4))
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceID != "" {
		t.Fatalf("untraced job carries trace id %q", j.TraceID)
	}
	if done := waitTerminal(t, s, j.ID); done.Status != StatusDone {
		t.Fatalf("job status %s (%s)", done.Status, done.Error)
	}
}
