package jobs

import (
	"context"
	"testing"
	"time"

	"longexposure/internal/core"
	"longexposure/internal/registry"
	"longexposure/internal/tensor"
)

// TestBuildBaseMatchesJobBackbone pins the serving contract: the base
// rebuilt from an artifact's BaseDesc is bit-identical to the frozen
// backbone a fine-tuning job trained against. PEFT freezes the backbone,
// so this is what makes a published delta servable on a shared base.
func TestBuildBaseMatchesJobBackbone(t *testing.T) {
	f := FinetuneSpec{Method: "lora"}.normalized()
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewBaseline(cfg) // the exact constructor runFinetune uses

	desc, err := f.baseDesc()
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBase(desc)
	if err != nil {
		t.Fatal(err)
	}

	jobParams := eng.Model.Params()
	for _, p := range base.Params() {
		jp := jobParams.ByName(p.Name)
		if jp == nil {
			t.Fatalf("job model missing base parameter %s", p.Name)
		}
		if d := tensor.MaxAbsDiff(p.W, jp.W); d != 0 {
			t.Fatalf("base parameter %s differs from job backbone by %v", p.Name, d)
		}
	}
	// The job model additionally carries the injected LoRA params.
	if len(jobParams) <= len(base.Params()) {
		t.Fatal("job model carries no injected parameters")
	}
}

// TestFinetuneAutoPublish pins that a store with a registry publishes a
// completed job's delta and threads the adapter id through the result.
func TestFinetuneAutoPublish(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(Config{Workers: 1, Registry: reg})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("store shutdown: %v", err)
		}
	}()

	sparse := false
	j, err := s.Submit(Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Method: "lora", Sparse: &sparse, Steps: 2, Batch: 1, Seq: 12,
	}})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.Status != StatusDone {
		t.Fatalf("job finished %s (error %q)", done.Status, done.Error)
	}
	id := done.Result.Finetune.AdapterID
	if id == "" {
		t.Fatal("completed job carries no adapter id")
	}
	man, ok := reg.Get(id)
	if !ok {
		t.Fatalf("adapter %s not in registry", id)
	}
	if man.Method != "lora" || man.Name != j.ID {
		t.Fatalf("manifest mismatch: %+v", man)
	}
	wantDesc, _ := done.Spec.Finetune.baseDesc()
	if man.Base != wantDesc {
		t.Fatalf("manifest base %+v, want %+v", man.Base, wantDesc)
	}

	// Servability: the method must carry its LoRA pairs for every layer.
	_, params, err := reg.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(params) == 0 {
		t.Fatal("published delta is empty")
	}

	// A cache hit serves the same adapter id without re-running…
	spec := Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Method: "lora", Sparse: &sparse, Steps: 2, Batch: 1, Seq: 12,
	}}
	hit, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Result.Finetune.AdapterID != id {
		t.Fatalf("cache hit lost the adapter id: %+v", hit.Result)
	}

	// …but once the artifact is deleted, the cached result is stale: the
	// job must re-run and republish (content addressing → same id again).
	if err := reg.Delete(id); err != nil {
		t.Fatal(err)
	}
	rerun, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rerun.CacheHit {
		t.Fatal("stale cached result served after its adapter was deleted")
	}
	redone := waitTerminal(t, s, rerun.ID)
	if redone.Status != StatusDone {
		t.Fatalf("re-run finished %s (error %q)", redone.Status, redone.Error)
	}
	if redone.Result.Finetune.AdapterID != id {
		t.Fatalf("re-run republished %s, want the content-addressed id %s", redone.Result.Finetune.AdapterID, id)
	}
	if !reg.Has(id) {
		t.Fatal("re-run did not restore the artifact")
	}
}
