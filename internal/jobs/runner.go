package jobs

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/experiments"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/registry"
	"longexposure/internal/trace"
	"longexposure/internal/train"
)

// worker is one pool goroutine: pop the highest-priority queued job, run
// it, finalize, repeat. Workers exit once the store is closed and the
// queue is drained (graceful shutdown).
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.pending).(*Job)
		if j.Status != StatusQueued {
			// Cancelled while queued; already finalized.
			s.mu.Unlock()
			continue
		}
		j.Status = StatusRunning
		j.Started = time.Now()
		if m := s.metrics; m != nil {
			m.QueueDepth.Dec()
			m.Running.Inc()
			m.WaitSeconds.Observe(j.Started.Sub(j.Created).Seconds())
		}
		s.publishLocked(j.ID, Event{Kind: EventStarted})
		s.mu.Unlock()

		j.span.ChildAt("jobs.queue", j.Created, j.Started)
		s.logJob(j, "job started")
		run := j.span.StartChildAt("jobs.run", j.Started)
		res, err := s.execute(j, run)
		run.Finish()
		s.finish(j, res, err)
	}
}

// execute dispatches on the job kind. The spec was validated at submit,
// but a panic anywhere in the training stack must fail the one job, not
// take down the daemon's worker pool. run is the job's "jobs.run" span
// (nil when unsampled) under which execution-phase children are recorded.
func (s *Store) execute(j *Job, run *trace.Span) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("jobs: job panicked: %v", r)
		}
	}()
	switch j.Spec.Kind {
	case KindFinetune:
		return s.runFinetune(j, run)
	case KindExperiment:
		return s.runExperiment(j)
	default:
		return nil, fmt.Errorf("jobs: unknown kind %q", j.Spec.Kind)
	}
}

// finish moves a running job to its terminal state, publishes the terminal
// event exactly once, and populates the result cache on success.
func (s *Store) finish(j *Job, res *Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.Status != StatusRunning {
		// Only the owning worker transitions out of running; anything else
		// here is a logic error worth surfacing loudly in tests.
		return
	}
	j.Finished = time.Now()
	if m := s.metrics; m != nil {
		m.Running.Dec()
		m.RunSeconds.Observe(j.Finished.Sub(j.Started).Seconds())
	}
	switch {
	case err == nil:
		j.Status = StatusDone
		j.Result = res
		s.cache.put(j.Hash, res)
		if m := s.metrics; m != nil {
			m.Done.Inc()
		}
		s.publishLocked(j.ID, Event{Kind: EventDone, Result: res})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.Status = StatusCancelled
		if m := s.metrics; m != nil {
			m.Cancelled.Inc()
		}
		s.publishLocked(j.ID, Event{Kind: EventCancelled, Message: "cancelled while running"})
	default:
		j.Status = StatusFailed
		j.Error = err.Error()
		if m := s.metrics; m != nil {
			m.Failed.Inc()
		}
		s.publishLocked(j.ID, Event{Kind: EventFailed, Error: err.Error()})
	}
	j.cancel()
	j.span.SetStr("status", string(j.Status))
	if j.Error != "" {
		j.span.SetBool("error", true)
	}
	j.span.Finish()
	s.logJob(j, "job finished")
	s.emitAccountLocked(j)
}

// runFinetune assembles a Long Exposure session (or dense baseline) from
// the spec and trains it step by step, emitting a progress event per step
// through the engine's StepHook.
func (s *Store) runFinetune(j *Job, run *trace.Span) (*Result, error) {
	// Job setup (model build, predictor pretraining) is the bulk of a
	// short job and has no internal cancellation points, so check the
	// context before each uncancellable stage — this is what keeps
	// hard-stopped shutdowns from paying full setup for every queued job.
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	f := j.Spec.Finetune // normalized at submit
	cfg, err := f.CoreConfig()
	if err != nil {
		return nil, err
	}

	corpus := data.NewE2ECorpus(cfg.Spec.Config.Vocab, max(2, f.Seq/6), f.Seed)
	examples := corpus.Generate(f.Steps*f.Batch, f.Seed+1)
	batches := data.Batches(examples, f.Batch, f.Seq)
	if len(batches) == 0 {
		return nil, fmt.Errorf("jobs: finetune spec yields no batches (steps=%d batch=%d)", f.Steps, f.Batch)
	}

	var eng *train.Engine
	var recall predictor.TrainStats
	if *f.Sparse {
		sys := core.New(cfg)
		if err := j.ctx.Err(); err != nil {
			return nil, err
		}
		calib := [][][]int{batches[0].Inputs}
		if len(batches) > 1 {
			calib = append(calib, batches[1].Inputs)
		}
		tPre := time.Now()
		recall = sys.PretrainPredictors(calib, predictor.TrainConfig{Epochs: f.PredictorEpochs, Seed: f.Seed})
		run.ChildAt("jobs.pretrain_predictors", tPre, time.Now())
		s.publish(j.ID, Event{
			Kind:    EventProgress,
			Message: fmt.Sprintf("predictors trained: attention recall %.2f, MLP recall %.2f", recall.AttnRecall, recall.MLPRecall),
		})
		eng = sys.Engine()
	} else {
		eng = core.NewBaseline(cfg)
	}
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	// Thread the store's training and sparsity instruments into this
	// job's engine: every fine-tuning step the daemon runs lands in the
	// same lexp_train_* series, and sparse jobs report per-layer density.
	eng.Metrics = s.train
	eng.Span = run
	if eng.RP != nil {
		eng.RP.Metrics = s.sparsity
	}
	if s.account != nil {
		// Arm the wide-event accumulator: the engine records steps, tokens
		// and analytic FLOPs into it at zero allocations; finish() merges
		// it with the job identity and emits. Partial work on a failed or
		// cancelled run is still accounted.
		j.acct = &account.TrainAccumulator{}
		j.acct.Event.Base = cfg.Spec.Config.Name
		eng.Acct = j.acct
	}

	hook := func(si train.StepInfo) {
		s.publish(j.ID, Event{
			Kind: EventProgress,
			Progress: &StepProgress{
				Epoch:      si.Epoch,
				Step:       si.Step,
				GlobalStep: si.GlobalStep,
				TotalSteps: si.TotalSteps,
				Loss:       si.Loss,
				Times:      si.Times,
			},
		})
	}
	res, err := eng.RunContext(j.ctx, batches, f.Epochs, hook)
	if j.acct != nil {
		if ws := eng.Workspace(); ws != nil {
			j.acct.Event.ArenaBytes = ws.AllocBytes()
		}
	}
	if err != nil {
		return nil, err
	}

	out := &FinetuneResult{
		Model:      cfg.Spec.Config.Name,
		Steps:      res.Steps,
		FinalLoss:  res.FinalLoss(),
		MeanStep:   res.MeanStepTime(),
		AttnRecall: recall.AttnRecall,
		MLPRecall:  recall.MLPRecall,
	}
	if len(res.Losses) > 0 {
		out.FirstLoss = res.Losses[0]
	}
	if s.registry != nil {
		tPub := time.Now()
		man, err := s.publishAdapter(j, f, eng.Model)
		run.ChildAt("jobs.publish", tPub, time.Now())
		if err != nil {
			// Training succeeded but its output is unreachable — that is a
			// failed job, not a quietly adapter-less success.
			return nil, fmt.Errorf("jobs: publishing adapter: %w", err)
		}
		out.AdapterID = man.ID
		s.publish(j.ID, Event{Kind: EventProgress, Message: "adapter published: " + man.ID})
	}
	return &Result{Finetune: out}, nil
}

// publishAdapter extracts the trained delta and stores it as a registry
// artifact keyed to the exact base the job built. Content addressing makes
// this idempotent: re-running identical work republished the same id (and
// a result served from the cache carries the same id without re-running).
func (s *Store) publishAdapter(j *Job, f *FinetuneSpec, m *nn.Transformer) (registry.Manifest, error) {
	desc, err := f.baseDesc()
	if err != nil {
		return registry.Manifest{}, err
	}
	opts := peft.Options{}.Resolved(m.Cfg.Dim) // jobs always run default PEFT options
	return s.registry.Publish(registry.Spec{
		Name:         j.ID,
		Method:       f.Method,
		Base:         desc,
		Rank:         opts.LoRARank,
		Alpha:        opts.LoRAAlpha,
		PromptTokens: opts.PromptTokens,
		Bottleneck:   opts.Bottleneck,
	}, peft.Delta(m))
}

// runExperiment executes one registry driver. Drivers run as a unit (they
// have no internal cancellation points), so the job goroutine races the
// driver against the job context: cancellation finalizes the job
// immediately and the abandoned driver's result is discarded when it
// eventually returns.
func (s *Store) runExperiment(j *Job) (*Result, error) {
	// Don't even spawn the driver for a job cancelled while queued.
	if err := j.ctx.Err(); err != nil {
		return nil, err
	}
	e := j.Spec.Experiment // normalized at submit
	opts := experiments.Options{Quick: *e.Quick, Seed: e.Seed}

	type outcome struct {
		rep *experiments.Report
		err error
	}
	done := make(chan outcome, 1) // buffered: an abandoned driver must not leak forever
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("jobs: experiment %q panicked: %v", e.ID, r)}
			}
		}()
		rep, err := experiments.Run(e.ID, opts)
		done <- outcome{rep, err}
	}()

	select {
	case <-j.ctx.Done():
		return nil, j.ctx.Err()
	case o := <-done:
		if o.err != nil {
			return nil, o.err
		}
		return &Result{Experiment: &ExperimentResult{
			ID:       o.rep.ID,
			Title:    o.rep.Title,
			Markdown: o.rep.Markdown(),
		}}, nil
	}
}
