package jobs

import (
	"fmt"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/registry"
	"longexposure/internal/tensor"
)

// BuildBase reconstructs the frozen base model an adapter artifact was
// trained against, bit-for-bit: the same model resolution, the same RNG
// seed, the same sparsity priming as core's buildModel runs for a
// fine-tuning job. PEFT methods freeze the backbone before training, so a
// rebuild from the manifest's BaseDesc equals the backbone the delta was
// trained on — the shared base the inference gateway serves every adapter
// of that description from.
func BuildBase(desc registry.BaseDesc) (*nn.Transformer, error) {
	spec, err := FinetuneSpec{Model: desc.Model, Activation: desc.Activation}.normalized().modelSpec()
	if err != nil {
		return nil, err
	}
	if desc.Seed == 0 || desc.Blk <= 0 {
		return nil, fmt.Errorf("jobs: base desc missing seed or blk: %+v", desc)
	}
	if !nn.ValidPrecision(desc.Precision) {
		return nil, fmt.Errorf("jobs: unknown base precision %q", desc.Precision)
	}
	rng := tensor.NewRNG(desc.Seed)
	m := nn.NewTransformer(spec.Config, rng)
	if desc.Prime {
		model.PrimeSparsity(m, rng.Split(), desc.Blk)
	}
	// Compress last: priming reads the f32 weights it is about to free.
	if err := m.Compress(desc.Precision); err != nil {
		return nil, err
	}
	return m, nil
}

// baseDesc derives the artifact base description of a normalized finetune
// spec, mirroring CoreConfig's resolution exactly (Prime is always set for
// job-built models).
func (f FinetuneSpec) baseDesc() (registry.BaseDesc, error) {
	cfg, err := f.CoreConfig()
	if err != nil {
		return registry.BaseDesc{}, err
	}
	return registry.BaseDesc{
		Model:      f.Model,
		Activation: f.Activation,
		Seed:       cfg.Seed,
		Blk:        cfg.Blk,
		Prime:      cfg.Prime,
		Precision:  f.Precision,
	}, nil
}
