package jobs

import (
	"context"
	"testing"
	"time"

	"longexposure/internal/obs"
)

// TestSlowSubscriberBoundedBacklog pins the slow-consumer contract: a
// subscriber that stops reading keeps only a bounded backlog — the
// oldest pending events are dropped and replaced by a single EventLost
// marker carrying the count — and the terminal event always arrives.
func TestSlowSubscriberBoundedBacklog(t *testing.T) {
	obsReg := obs.NewRegistry()
	const backlog = 4
	s := NewStore(Config{Workers: 1, EventBacklog: backlog, Obs: obsReg})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// A job emitting well over backlog + channel-buffer events: ~40
	// progress events plus queued/started/done.
	sparse := false
	j, err := s.Submit(Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Sparse: &sparse, Steps: 40, Batch: 1, Seq: 8, Epochs: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Do not read until the job is terminal: the pump must park without
	// growing the backlog past its bound.
	deadline := time.Now().Add(60 * time.Second)
	for {
		got, _ := s.Get(j.ID)
		if got.Status.Terminal() {
			if got.Status != StatusDone {
				t.Fatalf("job finished %s (%s)", got.Status, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	published := len(s.Events(j.ID))
	if published < 20 {
		t.Fatalf("job published only %d events; test needs a chatty job", published)
	}

	var delivered, lostEvents, lostSum int
	var sawTerminal bool
	var lastKind EventKind
	timeout := time.After(60 * time.Second)
	for open := true; open; {
		select {
		case e, ok := <-ch:
			if !ok {
				open = false
				break
			}
			lastKind = e.Kind
			switch e.Kind {
			case EventLost:
				lostEvents++
				lostSum += e.Lost
				if e.Lost < 1 || e.Message == "" {
					t.Fatalf("malformed lost marker: %+v", e)
				}
			default:
				delivered++
				if e.Kind.Terminal() {
					sawTerminal = true
				}
			}
		case <-timeout:
			t.Fatal("stream never closed")
		}
	}

	if !sawTerminal || lastKind != EventDone {
		t.Fatalf("terminal event missing or not last (last %q)", lastKind)
	}
	if lostEvents == 0 || lostSum == 0 {
		t.Fatalf("slow subscriber lost nothing (delivered %d of %d) — backlog unbounded?", delivered, published)
	}
	// Conservation: every published event was either delivered or counted
	// in a lost marker.
	if delivered+lostSum != published {
		t.Fatalf("delivered %d + lost %d != published %d", delivered, lostSum, published)
	}
	// The backlog bound held: deliverable events are at most the channel
	// buffer (16) + one in the pump's hand + the bounded backlog + the
	// replayed prefix read before the drops began.
	if delivered >= published-1 {
		t.Fatalf("delivered %d of %d — nothing was actually bounded", delivered, published)
	}
	if v, ok := obsReg.Value("lexp_jobs_events_dropped_total"); !ok || int(v) != lostSum {
		t.Fatalf("events_dropped metric = %v (ok=%v), want %d", v, ok, lostSum)
	}
}

// TestFastSubscriberSeesEverything guards the other side: a consumer
// whose backlog is never exceeded receives every event, in order, with
// no lost markers (the bound only bites laggards). The backlog is left
// at its default (256), comfortably above this job's ~43 events, because
// even a continuously-reading consumer can lag arbitrarily far behind a
// single-CPU scheduler.
func TestFastSubscriberSeesEverything(t *testing.T) {
	s := NewStore(Config{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	sparse := false
	j, err := s.Submit(Spec{Kind: KindFinetune, Finetune: &FinetuneSpec{
		Sparse: &sparse, Steps: 40, Batch: 1, Seq: 8, Epochs: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Subscribe(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	wantSeq := 0
	for e := range ch {
		if e.Kind == EventLost {
			t.Fatalf("fast consumer got a lost marker: %+v", e)
		}
		if e.Seq != wantSeq {
			t.Fatalf("event seq %d, want %d (gap in a keeping-up stream)", e.Seq, wantSeq)
		}
		wantSeq++
	}
	if got := len(s.Events(j.ID)); wantSeq != got {
		t.Fatalf("consumed %d events, store logged %d", wantSeq, got)
	}
}
