package jobs

import (
	"container/heap"
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/events"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/trace"
)

// Config sizes a Store.
type Config struct {
	// Workers bounds concurrent job execution (default 2).
	Workers int
	// CacheSize bounds the result cache in entries (default 64).
	CacheSize int
	// MaxJobs bounds retained jobs: when exceeded, the oldest terminal
	// jobs (with their event logs) are evicted so a long-running daemon's
	// memory stays bounded. Queued and running jobs are never evicted.
	// Default 1024.
	MaxJobs int
	// Registry, when set, receives every completed fine-tuning job's
	// trainable delta as a published adapter artifact (the job result
	// carries the adapter id). Nil disables auto-publish.
	Registry *registry.Store
	// EventBacklog bounds each subscriber's buffered backlog: a consumer
	// that falls further behind loses its oldest pending events (replaced
	// by a single EventLost marker) instead of growing memory without
	// limit. Terminal events are never dropped. Default 256.
	EventBacklog int
	// Obs, when set, instruments the store: queue depth, wait/run
	// latency, completions, cache hits, event traffic, plus the training
	// and sparsity instruments threaded into every fine-tuning engine
	// the workers build. Nil disables metering.
	Obs *obs.Registry
	// Tracer, when set, gives every sampled job a span timeline
	// (submit → queue → run → publish), parented on the submitting
	// request's span when SubmitCtx carries one. Nil disables tracing.
	Tracer *trace.Tracer
	// Account, when set, receives one wide event per terminal job
	// (finetune or experiment) carrying the tenant, trace id, outcome and
	// the run's resource vector. Nil disables accounting.
	Account *account.Plane
	// Logger, when set, receives structured lifecycle records (queued,
	// started, terminal) tagged with the job id and trace id. Nil
	// disables lifecycle logging.
	Logger *slog.Logger
}

// Store owns every job: the pending priority queue, the bounded worker
// pool that drains it, the per-job event logs and subscribers, and the
// result cache. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	cond *sync.Cond // wakes workers when the queue grows or the store closes

	jobs    map[string]*Job
	order   []string // submission order, for List
	pending jobHeap
	cache   *resultCache

	events map[string][]Event                     // per-job event log
	subs   map[string][]*events.Subscriber[Event] // per-job live subscribers

	baseCtx    context.Context
	baseCancel context.CancelFunc
	registry   *registry.Store // nil: auto-publish disabled
	workers    int
	maxJobs    int
	backlog    int
	nextSeq    int64
	closed     bool
	wg         sync.WaitGroup

	// Observability (all nil when Config.Obs is unset).
	metrics  *obs.JobsMetrics
	train    *obs.TrainMetrics
	sparsity *obs.SparsityMetrics

	tracer  *trace.Tracer  // nil: untraced
	log     *slog.Logger   // nil: unlogged
	account *account.Plane // nil: unaccounted
}

// NewStore builds a store and starts its worker pool.
func NewStore(cfg Config) *Store {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.EventBacklog <= 0 {
		cfg.EventBacklog = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Store{
		jobs:       make(map[string]*Job),
		cache:      newResultCache(cfg.CacheSize),
		events:     make(map[string][]Event),
		subs:       make(map[string][]*events.Subscriber[Event]),
		baseCtx:    ctx,
		baseCancel: cancel,
		registry:   cfg.Registry,
		workers:    cfg.Workers,
		maxJobs:    cfg.MaxJobs,
		backlog:    cfg.EventBacklog,
		tracer:     cfg.Tracer,
		log:        cfg.Logger,
		account:    cfg.Account,
	}
	if cfg.Obs != nil {
		s.metrics = obs.NewJobsMetrics(cfg.Obs)
		s.train = obs.NewTrainMetrics(cfg.Obs)
		s.sparsity = obs.NewSparsityMetrics(cfg.Obs)
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers reports the pool size.
func (s *Store) Workers() int { return s.workers }

// ErrClosed rejects submissions to a draining store.
var ErrClosed = fmt.Errorf("jobs: store is shutting down")

// Submit validates and enqueues a job, returning its snapshot. When the
// spec's hash is already in the result cache the job completes instantly
// with the cached result and CacheHit set, never touching the queue.
func (s *Store) Submit(spec Spec) (Job, error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the submitting request's context: when it
// holds a sampled span, the job's span tree is parented on it, linking the
// HTTP submission to the whole asynchronous job lifecycle under one trace
// id. Without one, the store's tracer head-samples a fresh root. The
// context is used only for trace propagation — job cancellation remains
// tied to the store, not the (short-lived) submitting request.
func (s *Store) SubmitCtx(ctx context.Context, spec Spec) (Job, error) {
	if err := spec.Validate(); err != nil {
		return Job{}, err
	}
	spec = spec.Normalized()
	hash := spec.Hash()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	s.nextSeq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", s.nextSeq),
		Hash:    hash,
		Spec:    spec,
		Tenant:  spec.Tenant,
		Created: time.Now(),
		seq:     s.nextSeq,
	}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	if parent := trace.FromContext(ctx); parent != nil {
		j.span = parent.StartChild("jobs.job")
	} else {
		j.span = s.tracer.StartRoot("jobs.job", trace.SpanContext{})
	}
	j.span.SetStr("job", j.ID)
	j.span.SetStr("kind", string(spec.Kind))
	if j.span.Sampled() {
		j.TraceID = j.span.TraceID().String()
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()

	if m := s.metrics; m != nil {
		m.Submitted.Inc()
	}
	if res, ok := s.cache.get(hash); ok && s.resultServable(res) {
		j.Status = StatusDone
		j.CacheHit = true
		now := time.Now()
		j.Started, j.Finished = now, now
		j.Result = res
		j.cancel()
		if m := s.metrics; m != nil {
			m.CacheHits.Inc()
		}
		s.publishLocked(j.ID, Event{Kind: EventQueued})
		s.publishLocked(j.ID, Event{Kind: EventDone, Message: "cache hit", Result: res})
		j.span.SetBool("cache_hit", true)
		j.span.SetStr("status", string(StatusDone))
		j.span.Finish()
		s.logJob(j, "job served from cache")
		s.emitAccountLocked(j)
		return *j, nil
	}

	j.Status = StatusQueued
	heap.Push(&s.pending, j)
	if m := s.metrics; m != nil {
		m.QueueDepth.Inc()
	}
	s.publishLocked(j.ID, Event{Kind: EventQueued})
	s.logJob(j, "job queued")
	s.cond.Signal()
	return *j, nil
}

// logJob emits one structured lifecycle record for the job. The trace id
// attribute carries the same id /debug/traces and exemplars report, so a
// log line, a span tree and a latency exemplar all join on it.
func (s *Store) logJob(j *Job, msg string) {
	if s.log == nil {
		return
	}
	s.log.Info(msg,
		"job", j.ID,
		"kind", string(j.Spec.Kind),
		"status", string(j.Status),
		"trace_id", j.TraceID)
}

// emitAccountLocked publishes one wide accounting event for a terminal
// job: the worker-filled accumulator (steps, tokens, FLOPs, compute time)
// merged with the job's identity, outcome and scheduling times. Callers
// hold s.mu; a nil plane is a no-op.
func (s *Store) emitAccountLocked(j *Job) {
	if s.account == nil {
		return
	}
	var ev account.Event
	if j.acct != nil {
		ev = j.acct.Event
	}
	ev.Time = j.Finished
	ev.Kind = account.KindFinetune
	if j.Spec.Kind == KindExperiment {
		ev.Kind = account.KindExperiment
	}
	ev.Tenant = j.Tenant
	if ev.Tenant == "" {
		ev.Tenant = "anonymous"
	}
	ev.Route = "/v1/jobs"
	ev.TraceID = j.TraceID
	ev.Outcome = string(j.Status)
	if j.CacheHit {
		ev.Limit = "cache_hit"
	}
	if r := j.Result; r != nil && r.Finetune != nil {
		ev.Adapter = r.Finetune.AdapterID
		ev.Base = r.Finetune.Model
	}
	switch {
	case !j.Started.IsZero():
		ev.QueueWaitNs = j.Started.Sub(j.Created).Nanoseconds()
	case !j.Finished.IsZero():
		// Cancelled while queued: the whole lifetime was queue wait.
		ev.QueueWaitNs = j.Finished.Sub(j.Created).Nanoseconds()
	}
	if ev.TotalNs == 0 && !j.Finished.IsZero() && !j.Started.IsZero() {
		ev.TotalNs = j.Finished.Sub(j.Started).Nanoseconds()
	}
	s.account.Emit(&ev)
}

// resultServable guards cache hits against dangling artifacts: a cached
// fine-tune result naming an adapter that has since been deleted from the
// registry must not be served — the job re-runs and (content addressing)
// republishes the same id.
func (s *Store) resultServable(res *Result) bool {
	if s.registry == nil || res.Finetune == nil || res.Finetune.AdapterID == "" {
		return true
	}
	_, ok := s.registry.Get(res.Finetune.AdapterID)
	return ok
}

// Get returns a snapshot of one job.
func (s *Store) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns snapshots of every job in submission order, optionally
// filtered by status ("" matches all).
func (s *Store) List(status Status) []Job {
	jobs, _ := s.ListPage(status, "", 0, 0)
	return jobs
}

// ListPage is List with pagination: it skips offset matching jobs and
// returns at most limit of them (limit <= 0 means no bound), plus the
// total number of matches. Jobs are matched by status ("" matches all)
// and by submitting tenant ("" matches all). Ordering is stable —
// submission order — so clients can walk a growing list page by page
// without duplicates. Only jobs inside the window are copied, keeping
// listing cheap at high job counts.
func (s *Store) ListPage(status Status, tenant string, limit, offset int) ([]Job, int) {
	if offset < 0 {
		offset = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []Job{}
	total := 0
	for _, id := range s.order {
		j := s.jobs[id]
		if status != "" && j.Status != status {
			continue
		}
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		total++
		if total > offset && (limit <= 0 || len(out) < limit) {
			out = append(out, *j)
		}
	}
	return out, total
}

// Cancel requests cancellation. A queued job transitions to cancelled
// immediately; a running job's context is cancelled and the worker
// finalizes it; a terminal job is left untouched (reported via the
// returned snapshot). Unknown ids return ok=false.
func (s *Store) Cancel(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	j.cancel()
	if j.Status == StatusQueued {
		// The heap entry is removed lazily: workers skip non-queued jobs.
		j.Status = StatusCancelled
		j.Finished = time.Now()
		if m := s.metrics; m != nil {
			m.QueueDepth.Dec()
			m.Cancelled.Inc()
		}
		s.publishLocked(id, Event{Kind: EventCancelled, Message: "cancelled while queued"})
		j.span.SetStr("status", string(StatusCancelled))
		j.span.Finish()
		s.logJob(j, "job cancelled while queued")
		s.emitAccountLocked(j)
	}
	return *j, true
}

// evictLocked drops the oldest terminal jobs (and their event logs) while
// more than maxJobs are retained. Queued/running jobs are kept regardless;
// results already promoted to the cache survive eviction. Callers hold
// s.mu.
func (s *Store) evictLocked() {
	if len(s.jobs) <= s.maxJobs {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		j := s.jobs[id]
		if len(s.jobs) > s.maxJobs && j.Status.Terminal() {
			delete(s.jobs, id)
			delete(s.events, id)
			continue
		}
		if len(s.jobs) <= s.maxJobs {
			kept = append(kept, s.order[i:]...)
			break
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Stats summarizes the store for health endpoints.
type Stats struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	Cached    int `json:"cached"`
}

// Stats counts jobs by status.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Workers: s.workers, Cached: s.cache.len()}
	for _, j := range s.jobs {
		switch j.Status {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		case StatusDone:
			st.Done++
		case StatusFailed:
			st.Failed++
		case StatusCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Shutdown stops accepting submissions and drains the pool: queued and
// running jobs keep executing until the queue is empty or ctx expires, at
// which point every outstanding job is cancelled and the workers are
// awaited. Safe to call once.
func (s *Store) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()

	select {
	case <-drained:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		// Hard stop: cancel everything still outstanding, then wait for
		// the workers to observe it.
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// ---- events ----

// newSubscriber binds the generic bounded-backlog machinery in
// internal/events to this store's Event semantics: terminal job events
// end the stream and are never dropped, slow-consumer gaps surface as a
// single EventLost marker, and every drop is metered.
func newSubscriber(jobID string, replay []Event, max int, dropped *obs.Counter) *events.Subscriber[Event] {
	opts := events.Options[Event]{
		Backlog:  max,
		Terminal: func(e Event) bool { return e.Kind.Terminal() },
		Lost: func(lost int, first, next Event) Event {
			return Event{
				JobID: jobID,
				Kind:  EventLost,
				Seq:   first.Seq,
				Time:  time.Now(),
				Lost:  lost,
				Message: fmt.Sprintf("%d events dropped (slow consumer); next delivered seq is %d",
					lost, next.Seq),
			}
		},
	}
	if dropped != nil {
		opts.OnDrop = dropped.Inc
	}
	return events.New(replay, opts)
}

// Subscribe returns a channel replaying the job's full event history and
// then streaming live events. The channel closes after the terminal event
// (delivered exactly once per subscriber). The returned cancel func
// releases the subscription early; it is safe to call more than once.
func (s *Store) Subscribe(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("jobs: unknown job %q", id)
	}
	var dropped *obs.Counter
	if s.metrics != nil {
		dropped = s.metrics.EventsDropped
	}
	sub := newSubscriber(id, s.events[id], s.backlog, dropped)
	if !j.Status.Terminal() {
		s.subs[id] = append(s.subs[id], sub)
	} else {
		sub.Close()
	}
	cancel := func() {
		sub.Drop()
		s.mu.Lock()
		list := s.subs[id]
		for i, x := range list {
			if x == sub {
				s.subs[id] = append(list[:i], list[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
	}
	return sub.C(), cancel, nil
}

// Events returns a snapshot of the job's event log so far.
func (s *Store) Events(id string) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	log := s.events[id]
	out := make([]Event, len(log))
	copy(out, log)
	return out
}

// publishLocked appends an event to the job's log and fans it out to live
// subscribers. Terminal events detach the subscriber list. Callers hold
// s.mu.
func (s *Store) publishLocked(id string, e Event) {
	e.JobID = id
	e.Seq = len(s.events[id])
	e.Time = time.Now()
	s.events[id] = append(s.events[id], e)
	if m := s.metrics; m != nil {
		m.Events.Inc()
	}
	for _, sub := range s.subs[id] {
		sub.Push(e)
	}
	if e.Kind.Terminal() {
		delete(s.subs, id)
	}
}

// publish is publishLocked for callers not holding the lock.
func (s *Store) publish(id string, e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishLocked(id, e)
}

// ---- priority queue ----

// jobHeap orders pending jobs by (priority desc, submission seq asc):
// higher priorities first, FIFO within a level.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].Spec.Priority != h[j].Spec.Priority {
		return h[i].Spec.Priority > h[j].Spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// pendingIDs is a test helper: ids currently pending, in pop order.
func (s *Store) pendingIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := make(jobHeap, len(s.pending))
	copy(tmp, s.pending)
	ids := make([]string, 0, len(tmp))
	for tmp.Len() > 0 {
		j := heap.Pop(&tmp).(*Job)
		if j.Status == StatusQueued {
			ids = append(ids, j.ID)
		}
	}
	return ids
}
