package peft

import (
	"math"

	"longexposure/internal/nn"
	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// Optimizer updates the trainable subset of a parameter set. The cost of
// Step is proportional to the number of *trainable* scalars — the phase
// PEFT actually shrinks (Table I's Optim. Step column).
type Optimizer interface {
	// Step applies one update from the accumulated gradients.
	Step(params nn.ParamSet)
	// StateBytes reports optimizer-state memory (fp32), for the memory model.
	StateBytes() int64
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*nn.Parameter][]float32
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*nn.Parameter][]float32)}
}

// Step implements Optimizer.
func (o *SGD) Step(params nn.ParamSet) {
	for _, p := range params {
		if p.Frozen {
			continue
		}
		g := p.Grad.Data
		w := p.W.Data
		if o.Momentum == 0 {
			lr := float32(o.LR)
			for i := range w {
				w[i] -= lr * g[i]
			}
			continue
		}
		v, ok := o.vel[p]
		if !ok {
			v = make([]float32, len(w))
			o.vel[p] = v
		}
		mu, lr := float32(o.Momentum), float32(o.LR)
		for i := range w {
			v[i] = mu*v[i] + g[i]
			w[i] -= lr * v[i]
		}
	}
}

// StateBytes implements Optimizer.
func (o *SGD) StateBytes() int64 {
	var n int64
	for _, v := range o.vel {
		n += int64(len(v)) * 4
	}
	return n
}

// AdamW is the decoupled-weight-decay Adam optimizer — the standard choice
// for transformer fine-tuning and the one whose two fp32 moment buffers
// dominate optimizer memory in full fine-tuning.
type AdamW struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64

	step int
	m, v map[*nn.Parameter][]float32
}

// NewAdamW constructs AdamW with the usual defaults for zero fields
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdamW(lr, weightDecay float64) *AdamW {
	return &AdamW{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*nn.Parameter][]float32),
		v: make(map[*nn.Parameter][]float32),
	}
}

// Step implements Optimizer.
func (o *AdamW) Step(params nn.ParamSet) {
	o.step++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.step))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.step))
	for _, p := range params {
		if p.Frozen {
			continue
		}
		w, g := p.W.Data, p.Grad.Data
		mBuf, ok := o.m[p]
		if !ok {
			mBuf = make([]float32, len(w))
			o.m[p] = mBuf
			o.v[p] = make([]float32, len(w))
		}
		vBuf := o.v[p]
		parallel.ForChunkedArg(len(w), adamChunkArgs{
			w: w, g: g, m: mBuf, v: vBuf,
			b1: float32(o.Beta1), b2: float32(o.Beta2),
			bc1: bc1, bc2: bc2, lr: o.LR, wd: o.WeightDecay, eps: o.Eps,
		}, adamChunk)
	}
}

// adamChunkArgs / adamChunk: static update body so the optimizer step does
// not allocate a closure per parameter (see parallel.ForChunkedArg).
type adamChunkArgs struct {
	w, g, m, v  []float32
	b1, b2      float32
	bc1, bc2    float64
	lr, wd, eps float64
}

func adamChunk(a adamChunkArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		a.m[i] = a.b1*a.m[i] + (1-a.b1)*a.g[i]
		a.v[i] = a.b2*a.v[i] + (1-a.b2)*a.g[i]*a.g[i]
		mHat := float64(a.m[i]) / a.bc1
		vHat := float64(a.v[i]) / a.bc2
		upd := a.lr * (mHat/(math.Sqrt(vHat)+a.eps) + a.wd*float64(a.w[i]))
		a.w[i] -= float32(upd)
	}
}

// StateBytes implements Optimizer.
func (o *AdamW) StateBytes() int64 {
	var n int64
	for _, buf := range o.m {
		n += int64(len(buf)) * 4
	}
	for _, buf := range o.v {
		n += int64(len(buf)) * 4
	}
	return n
}

// ClipGradNorm scales gradients so their global L2 norm is at most maxNorm,
// returning the pre-clip norm. Standard fine-tuning hygiene.
func ClipGradNorm(params nn.ParamSet, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		if p.Frozen {
			continue
		}
		n := tensor.L2Norm(p.Grad)
		sq += n * n
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			if p.Frozen {
				continue
			}
			tensor.Scale(p.Grad, scale)
		}
	}
	return norm
}
