package peft

import (
	"math"
	"strings"
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

func TestLoRAFAOnlyBTrains(t *testing.T) {
	m := freshModel(20)
	Apply(m, LoRA, Options{LoRAFreezeA: true}, tensor.NewRNG(21))
	for _, p := range m.Params().Trainable() {
		if !strings.Contains(p.Name, "lora_B") {
			t.Fatalf("LoRA-FA trainable non-B parameter: %s", p.Name)
		}
	}
	// Half the LoRA parameters of plain LoRA.
	m2 := freshModel(20)
	Apply(m2, LoRA, Options{}, tensor.NewRNG(21))
	_, faTrainable := m.NumParams()
	_, plainTrainable := m2.NumParams()
	if faTrainable*2 != plainTrainable {
		t.Fatalf("LoRA-FA trainable %d, plain %d (want half)", faTrainable, plainTrainable)
	}
}

func TestLoRAFAStillLearns(t *testing.T) {
	r := tensor.NewRNG(22)
	m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
	Apply(m, LoRA, Options{LoRAFreezeA: true}, r.Split())
	opt := NewAdamW(5e-3, 0)
	ps := m.Params()

	ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	flat := m.FlattenTargets([][]int{{1, 2, 3, 4, 5, 6, 7, 8}})
	var first, last float64
	for step := 0; step < 40; step++ {
		logits := m.Forward(ids, nil, nil)
		loss, dLogits := nn.CrossEntropy(logits, flat)
		if step == 0 {
			first = loss
		}
		last = loss
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		opt.Step(ps)
	}
	if last >= first {
		t.Fatalf("LoRA-FA did not reduce loss: %.3f → %.3f", first, last)
	}
	// A must be untouched by training.
	for _, b := range m.Blocks {
		if n := tensor.L2Norm(b.Attn.Wq.LoRAA.Grad); n != 0 {
			t.Fatal("frozen LoRA-A accumulated gradient")
		}
	}
}

func TestQuantizeBackboneRoundsFrozenOnly(t *testing.T) {
	m := freshModel(23)
	before := m.Blocks[0].Attn.Wq.W.W.Clone()
	Apply(m, LoRA, Options{QuantizeBackbone: true}, tensor.NewRNG(24))

	// Frozen backbone weights must be fp16-representable now.
	w := m.Blocks[0].Attn.Wq.W.W
	changed := false
	for i, v := range w.Data {
		rt := v // already rounded: rounding again must be identity
		if rt != w.Data[i] {
			t.Fatal("quantized weight not idempotent")
		}
		if v != before.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("quantization changed nothing — suspicious for random floats")
	}

	// Function is perturbed only slightly.
	m2 := freshModel(23)
	Apply(m2, LoRA, Options{}, tensor.NewRNG(24))
	ids := [][]int{{1, 2, 3, 4}}
	a := m.Forward(ids, nil, nil)
	b := m2.Forward(ids, nil, nil)
	if d := tensor.MaxAbsDiff(a, b); d == 0 || d > 0.1 {
		t.Fatalf("fp16 backbone perturbation %v out of expected band", d)
	}
}

func TestQuantizeBackboneKeepsAccuracyBehaviour(t *testing.T) {
	// Quantized and full-precision backbones must train to similar losses.
	run := func(quantize bool) float64 {
		r := tensor.NewRNG(25)
		m := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
		Apply(m, LoRA, Options{QuantizeBackbone: quantize}, r.Split())
		opt := NewAdamW(3e-3, 0)
		ps := m.Params()
		ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
		flat := m.FlattenTargets([][]int{{1, 2, 3, 4, 5, 6, 7, 8}})
		var last float64
		for step := 0; step < 30; step++ {
			logits := m.Forward(ids, nil, nil)
			loss, dLogits := nn.CrossEntropy(logits, flat)
			last = loss
			ps.ZeroGrads()
			m.Backward(dLogits, nil)
			opt.Step(ps)
		}
		return last
	}
	fp32 := run(false)
	fp16 := run(true)
	if math.Abs(fp32-fp16) > 0.2*fp32+0.05 {
		t.Fatalf("quantized training diverges: fp32 %.4f vs fp16 %.4f", fp32, fp16)
	}
}
