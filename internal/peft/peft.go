// Package peft implements the parameter-efficient fine-tuning methods the
// paper evaluates (LoRA, Adapter, BitFit, P-Tuning — Table I / §VII-A) plus
// the full fine-tuning baseline, and the optimizers that update the
// trainable set.
//
// Every method follows the same shape: freeze the whole backbone, then
// inject or unfreeze a small parameter set. The forward/backward cost stays
// essentially that of the backbone (the paper's §II-C analysis); only the
// optimizer-step cost shrinks — which is exactly why Long Exposure targets
// the forward/backward passes.
package peft

import (
	"fmt"
	"strings"

	"longexposure/internal/half"

	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

// Method enumerates the fine-tuning strategies.
type Method uint8

const (
	// FullFT updates every parameter (the non-PEFT baseline).
	FullFT Method = iota
	// LoRA injects low-rank adapters into the attention Q and V projections.
	LoRA
	// Adapter inserts bottleneck adapters after each sublayer.
	Adapter
	// BitFit unfreezes only bias terms.
	BitFit
	// PTuning prepends trainable continuous prompt embeddings.
	PTuning
)

// String names the method as the paper's tables do.
func (m Method) String() string {
	switch m {
	case FullFT:
		return "Full Param."
	case LoRA:
		return "LoRA"
	case Adapter:
		return "Adapter"
	case BitFit:
		return "Bitfit"
	case PTuning:
		return "P-Tuning"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Key returns the stable lowercase identifier used in job specs and
// adapter manifests — the inverse of ParseMethod.
func (m Method) Key() string {
	switch m {
	case FullFT:
		return "full"
	case LoRA:
		return "lora"
	case Adapter:
		return "adapter"
	case BitFit:
		return "bitfit"
	case PTuning:
		return "ptuning"
	default:
		return fmt.Sprintf("method-%d", uint8(m))
	}
}

// ParseMethod resolves a method key (case-insensitive) — the inverse of Key.
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(s) {
	case "full":
		return FullFT, nil
	case "lora":
		return LoRA, nil
	case "adapter":
		return Adapter, nil
	case "bitfit":
		return BitFit, nil
	case "ptuning":
		return PTuning, nil
	default:
		return 0, fmt.Errorf("peft: unknown method %q (want full|lora|adapter|bitfit|ptuning)", s)
	}
}

// AllMethods lists every method in Table I order.
func AllMethods() []Method { return []Method{FullFT, LoRA, Adapter, BitFit, PTuning} }

// PEFTMethods lists only the parameter-efficient ones.
func PEFTMethods() []Method { return []Method{LoRA, Adapter, BitFit, PTuning} }

// Options tunes the injected modules.
type Options struct {
	LoRARank     int     // default 8
	LoRAAlpha    float64 // default 16
	Bottleneck   int     // adapter width, default dim/4 capped at 64
	PromptTokens int     // default 16

	// LoRAFreezeA freezes the LoRA down-projection (LoRA-FA, paper ref
	// [65]): only B trains, halving LoRA optimizer state and skipping the
	// dA computation in backward.
	LoRAFreezeA bool

	// QuantizeBackbone rounds every frozen backbone weight through fp16
	// (QLoRA-style reduced-precision storage, paper ref [60]) — the values
	// kernels actually see under the paper's mixed-precision setup.
	QuantizeBackbone bool
}

// Resolved fills zero fields exactly as Apply would for a model of the
// given width — exported so artifact manifests (internal/registry) record
// the options a session actually ran with.
func (o Options) Resolved(dim int) Options { return o.withDefaults(dim) }

// withDefaults fills zero fields.
func (o Options) withDefaults(dim int) Options {
	if o.LoRARank == 0 {
		o.LoRARank = 8
	}
	if o.LoRAAlpha == 0 {
		o.LoRAAlpha = 16
	}
	if o.Bottleneck == 0 {
		o.Bottleneck = min(64, max(4, dim/4))
	}
	if o.PromptTokens == 0 {
		o.PromptTokens = 16
	}
	return o
}

// Apply configures the model for the given method: freezes the backbone and
// injects/unfreezes the method's trainable set. It must be called once,
// before training, and returns the options actually used.
func Apply(m *nn.Transformer, method Method, opts Options, rng *tensor.RNG) Options {
	opts = opts.withDefaults(m.Cfg.Dim)
	ps := m.Params()

	switch method {
	case FullFT:
		for _, p := range ps {
			p.Frozen = false
		}

	case LoRA:
		ps.FreezeAll()
		for i, b := range m.Blocks {
			name := fmt.Sprintf("layer%d.attn", i)
			b.Attn.Wq.AddLoRA(name+".q_proj", opts.LoRARank, opts.LoRAAlpha, rng)
			b.Attn.Wv.AddLoRA(name+".v_proj", opts.LoRARank, opts.LoRAAlpha, rng)
			if opts.LoRAFreezeA {
				b.Attn.Wq.LoRAA.Frozen = true
				b.Attn.Wv.LoRAA.Frozen = true
			}
		}

	case Adapter:
		ps.FreezeAll()
		for i, b := range m.Blocks {
			b.AdptA = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_attn", i), m.Cfg.Dim, opts.Bottleneck, rng)
			b.AdptM = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_mlp", i), m.Cfg.Dim, opts.Bottleneck, rng)
		}

	case BitFit:
		ps.FreezeAll()
		for _, p := range ps {
			if strings.HasSuffix(p.Name, ".bias") || strings.HasSuffix(p.Name, ".beta") {
				p.Frozen = false
			}
		}

	case PTuning:
		ps.FreezeAll()
		m.EnablePrompt(opts.PromptTokens, rng)

	default:
		panic(fmt.Sprintf("peft: unknown method %v", method))
	}

	if opts.QuantizeBackbone {
		QuantizeFrozen(m)
	}
	return opts
}

// QuantizeFrozen rounds every frozen parameter through fp16 — the value a
// kernel reading half-precision storage would see. Trainable parameters
// stay full precision (the mixed-precision master copy).
func QuantizeFrozen(m *nn.Transformer) {
	for _, p := range m.Params() {
		if !p.Frozen {
			continue
		}
		for i, v := range p.W.Data {
			p.W.Data[i] = half.RoundTrip(v)
		}
	}
}

// Delta returns the detachable fine-tuned parameter set: every parameter
// the method injected (LoRA factors, bottleneck adapters, the prompt) plus
// every unfrozen backbone parameter. Injected-but-frozen parameters (the A
// matrix under LoRA-FA) are included — the artifact must carry the whole
// module, not just what the optimizer walked. This is what
// internal/registry publishes after a fine-tuning run.
func Delta(m *nn.Transformer) nn.ParamSet {
	var out nn.ParamSet
	for _, p := range m.Params() {
		if !p.Frozen || injectedParam(p.Name) {
			out = append(out, p)
		}
	}
	return out
}

// injectedParam reports whether a parameter name belongs to a PEFT-injected
// module rather than the backbone.
func injectedParam(name string) bool {
	return strings.Contains(name, ".lora_") ||
		strings.Contains(name, ".adapter_") ||
		name == "prompt"
}

// TrainableRatio reports trainable/total scalar parameters after Apply.
func TrainableRatio(m *nn.Transformer) float64 {
	total, trainable := m.NumParams()
	if total == 0 {
		return 0
	}
	return float64(trainable) / float64(total)
}
