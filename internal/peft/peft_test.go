package peft

import (
	"math"
	"strings"
	"testing"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

func freshModel(seed uint64) *nn.Transformer {
	r := tensor.NewRNG(seed)
	return nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, r)
}

func TestFullFTEverythingTrainable(t *testing.T) {
	m := freshModel(1)
	Apply(m, FullFT, Options{}, tensor.NewRNG(2))
	if r := TrainableRatio(m); r != 1 {
		t.Fatalf("FullFT trainable ratio = %v", r)
	}
}

func TestLoRAInjectsSmallTrainableSet(t *testing.T) {
	m := freshModel(3)
	opts := Apply(m, LoRA, Options{LoRARank: 2}, tensor.NewRNG(4))
	if opts.LoRARank != 2 || opts.LoRAAlpha != 16 {
		t.Fatalf("options not defaulted correctly: %+v", opts)
	}
	ratio := TrainableRatio(m)
	if ratio <= 0 || ratio > 0.05 {
		t.Fatalf("LoRA trainable ratio = %v, want small and nonzero", ratio)
	}
	for _, p := range m.Params().Trainable() {
		if !strings.Contains(p.Name, "lora") {
			t.Fatalf("non-LoRA parameter trainable: %s", p.Name)
		}
	}
	// Every block's Q and V projections must carry LoRA.
	for i, b := range m.Blocks {
		if !b.Attn.Wq.HasLoRA() || !b.Attn.Wv.HasLoRA() {
			t.Fatalf("block %d missing LoRA", i)
		}
		if b.Attn.Wk.HasLoRA() || b.Attn.Wo.HasLoRA() {
			t.Fatalf("block %d has LoRA on K/O projections", i)
		}
	}
}

func TestLoRAForwardUnchangedAtInit(t *testing.T) {
	// LoRA B starts at zero, so logits must match the frozen backbone's.
	m := freshModel(5)
	ids := [][]int{{1, 2, 3, 4}}
	before := m.Forward(ids, nil, nil).Clone()
	Apply(m, LoRA, Options{}, tensor.NewRNG(6))
	after := m.Forward(ids, nil, nil)
	if d := tensor.MaxAbsDiff(before, after); d != 0 {
		t.Fatalf("LoRA injection changed the function: %v", d)
	}
}

func TestAdapterInjection(t *testing.T) {
	m := freshModel(7)
	ids := [][]int{{1, 2, 3, 4}}
	before := m.Forward(ids, nil, nil).Clone()
	Apply(m, Adapter, Options{Bottleneck: 8}, tensor.NewRNG(8))
	after := m.Forward(ids, nil, nil)
	// Adapters initialize to identity.
	if d := tensor.MaxAbsDiff(before, after); d > 1e-5 {
		t.Fatalf("fresh adapters changed the function: %v", d)
	}
	for _, p := range m.Params().Trainable() {
		if !strings.Contains(p.Name, "adapter") {
			t.Fatalf("non-adapter parameter trainable: %s", p.Name)
		}
	}
}

func TestBitFitUnfreezesBiasesOnly(t *testing.T) {
	m := freshModel(9)
	Apply(m, BitFit, Options{}, tensor.NewRNG(10))
	tr := m.Params().Trainable()
	if len(tr) == 0 {
		t.Fatal("BitFit trained nothing")
	}
	for _, p := range tr {
		if !strings.HasSuffix(p.Name, ".bias") && !strings.HasSuffix(p.Name, ".beta") {
			t.Fatalf("BitFit trainable non-bias: %s", p.Name)
		}
	}
	// Biases are a few percent of a dim-32 toy model (≈0.01% at OPT scale).
	if r := TrainableRatio(m); r > 0.05 {
		t.Fatalf("BitFit ratio = %v, too large", r)
	}
}

func TestPTuningAddsPrompt(t *testing.T) {
	m := freshModel(11)
	Apply(m, PTuning, Options{PromptTokens: 4}, tensor.NewRNG(12))
	if m.Prompt == nil || m.PromptLen != 4 {
		t.Fatal("prompt not enabled")
	}
	tr := m.Params().Trainable()
	if len(tr) != 1 || tr[0].Name != "prompt" {
		t.Fatalf("P-Tuning trainable set = %v", tr)
	}
	// Sequence grows by the prompt length.
	logits := m.Forward([][]int{{1, 2, 3}}, nil, nil)
	if logits.Dim(0) != 7 {
		t.Fatalf("logit rows = %d, want 7", logits.Dim(0))
	}
}

func TestMethodStringsMatchPaperTable(t *testing.T) {
	want := []string{"Full Param.", "LoRA", "Adapter", "Bitfit", "P-Tuning"}
	for i, m := range AllMethods() {
		if m.String() != want[i] {
			t.Fatalf("method %d = %q, want %q", i, m, want[i])
		}
	}
	if len(PEFTMethods()) != 4 {
		t.Fatal("PEFTMethods should exclude FullFT")
	}
}

func TestSGDQuadraticConvergence(t *testing.T) {
	p := nn.NewParameter("w", 4)
	for i := range p.W.Data {
		p.W.Data[i] = 5
	}
	opt := NewSGD(0.2, 0.5)
	ps := nn.ParamSet{p}
	for step := 0; step < 200; step++ {
		for i, w := range p.W.Data {
			p.Grad.Data[i] = 2 * w // ∇(w²)
		}
		opt.Step(ps)
	}
	for _, w := range p.W.Data {
		if math.Abs(float64(w)) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", p.W.Data)
		}
	}
	if opt.StateBytes() != 16 {
		t.Fatalf("SGD StateBytes = %d", opt.StateBytes())
	}
}

func TestAdamWQuadraticConvergence(t *testing.T) {
	p := nn.NewParameter("w", 4)
	for i := range p.W.Data {
		p.W.Data[i] = 3
	}
	opt := NewAdamW(0.1, 0)
	ps := nn.ParamSet{p}
	for step := 0; step < 300; step++ {
		for i, w := range p.W.Data {
			p.Grad.Data[i] = 2 * w
		}
		opt.Step(ps)
	}
	for _, w := range p.W.Data {
		if math.Abs(float64(w)) > 1e-2 {
			t.Fatalf("AdamW did not converge: %v", p.W.Data)
		}
	}
	if opt.StateBytes() != 32 { // m and v, 4 floats each
		t.Fatalf("AdamW StateBytes = %d", opt.StateBytes())
	}
}

func TestOptimizerSkipsFrozen(t *testing.T) {
	pFrozen := nn.NewParameter("a", 2)
	pFrozen.Frozen = true
	pFrozen.W.Fill(1)
	pFrozen.Grad.Fill(10)
	pLive := nn.NewParameter("b", 2)
	pLive.W.Fill(1)
	pLive.Grad.Fill(10)

	opt := NewAdamW(0.1, 0)
	opt.Step(nn.ParamSet{pFrozen, pLive})
	if pFrozen.W.Data[0] != 1 {
		t.Fatal("frozen parameter was updated")
	}
	if pLive.W.Data[0] == 1 {
		t.Fatal("trainable parameter was not updated")
	}
}

func TestAdamWFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first AdamW step is ≈ lr·sign(g).
	p := nn.NewParameter("w", 1)
	p.Grad.Data[0] = 0.7
	opt := NewAdamW(0.01, 0)
	opt.Step(nn.ParamSet{p})
	if math.Abs(float64(p.W.Data[0])+0.01) > 1e-4 {
		t.Fatalf("first step = %v, want ≈ -0.01", p.W.Data[0])
	}
}

func TestWeightDecayDecouples(t *testing.T) {
	// Zero gradient + weight decay must still shrink the weight.
	p := nn.NewParameter("w", 1)
	p.W.Data[0] = 1
	opt := NewAdamW(0.1, 0.5)
	opt.Step(nn.ParamSet{p})
	if p.W.Data[0] >= 1 {
		t.Fatalf("weight decay had no effect: %v", p.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParameter("w", 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm(nn.ParamSet{p}, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	if math.Abs(tensor.L2Norm(p.Grad)-1) > 1e-5 {
		t.Fatalf("post-clip norm = %v", tensor.L2Norm(p.Grad))
	}
	// Under the limit: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm(nn.ParamSet{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip modified in-limit gradient")
	}
}

func TestPaperModelSpecs(t *testing.T) {
	// Parameter counts must land near the nominal sizes (within 20%,
	// untied head included).
	cases := []struct {
		spec model.Spec
		want float64
	}{
		{model.OPT125M(), 125e6},
		{model.OPT350M(), 350e6},
		{model.OPT1p3B(), 1.3e9},
		{model.OPT2p7B(), 2.7e9},
		{model.GPT2Large(), 774e6},
		{model.GPT2XL(), 1.5e9},
	}
	for _, c := range cases {
		got := float64(c.spec.ParamCount())
		if got < c.want*0.8 || got > c.want*1.35 {
			t.Errorf("%s: %e params, nominal %e", c.spec, got, c.want)
		}
	}
	if model.GPT2XL().SupportsMLPSparsity() {
		t.Error("GeLU model claims MLP sparsity")
	}
	if !model.OPT1p3B().SupportsMLPSparsity() {
		t.Error("OPT model denies MLP sparsity")
	}
	if _, err := model.ByName("OPT-1.3B"); err != nil {
		t.Error(err)
	}
	if _, err := model.ByName("nope"); err == nil {
		t.Error("ByName accepted unknown model")
	}
}
