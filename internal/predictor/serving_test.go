package predictor

import (
	"fmt"
	"strings"
	"testing"

	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/tensor"
)

// servingConfig is the test model: ReLU (MLP sparsity eligible), three
// layers so auto mode has a middle layer to sparsify, Hidden 32 at blk 8
// → four neuron blocks, MaxSeq long enough for attention selection to arm.
func servingConfig() nn.Config {
	return nn.Config{Name: "serv-tiny", Vocab: 32, Dim: 16, Layers: 3, Heads: 2, Hidden: 32, MaxSeq: 64, Act: nn.ActReLU}
}

// sgdSteps nudges every trainable parameter so attached PEFT modules carry
// non-trivial deltas (LoRA B starts at zero, adapters at identity).
func sgdSteps(m *nn.Transformer, steps int) {
	ids := [][]int{{2, 5, 3, 7, 2, 5, 3, 7}}
	targets := [][]int{{5, 3, 7, 2, 5, 3, 7, 2}}
	ps := m.Params()
	for i := 0; i < steps; i++ {
		logits := m.Forward(ids, nil, nil)
		_, dLogits := nn.CrossEntropy(logits, m.FlattenTargets(targets))
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps.Trainable() {
			tensor.AddScaledInto(p.W, p.Grad, -0.05)
		}
	}
}

// servingParityModels builds the PEFT variants the density-1.0 gate must
// hold across: LoRA on Q/V, bottleneck adapters, and a trainable prompt.
func servingParityModels() map[string]*nn.Transformer {
	models := map[string]*nn.Transformer{}

	lora := nn.NewTransformer(servingConfig(), tensor.NewRNG(801))
	for li, b := range lora.Blocks {
		name := fmt.Sprintf("layer%d.attn", li)
		b.Attn.Wq.AddLoRA(name+".q_proj", 2, 4, tensor.NewRNG(uint64(810+li)))
		b.Attn.Wv.AddLoRA(name+".v_proj", 2, 4, tensor.NewRNG(uint64(820+li)))
	}
	sgdSteps(lora, 3)
	models["lora"] = lora

	adpt := nn.NewTransformer(servingConfig(), tensor.NewRNG(802))
	for li, b := range adpt.Blocks {
		b.AdptA = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_attn", li), adpt.Cfg.Dim, 4, tensor.NewRNG(uint64(830+li)))
		b.AdptM = nn.NewAdapter(fmt.Sprintf("layer%d.adapter_mlp", li), adpt.Cfg.Dim, 4, tensor.NewRNG(uint64(840+li)))
	}
	sgdSteps(adpt, 3)
	models["adapter"] = adpt

	prompt := nn.NewTransformer(servingConfig(), tensor.NewRNG(803))
	prompt.EnablePrompt(3, tensor.NewRNG(850))
	sgdSteps(prompt, 3)
	models["ptuning"] = prompt

	return models
}

// TestServingDensityOneBitIdentical is the PR's quality gate: a forced
// density-1.0 sequence planner must reproduce the dense cached decode
// token for token — across PEFT variants, greedy and tempered sampling,
// with and without a workspace arena. Full-coverage selections take the
// dense escape (nil plan entries), so identity is structural, not a
// kernel-equivalence accident.
func TestServingDensityOneBitIdentical(t *testing.T) {
	opts := nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 1, AttnDensity: 1}
	prompt := []int{1, 4, 2, 9}
	for name, m := range servingParityModels() {
		sp := NewServingPlanner(m, nil, ServingConfig{})
		for _, temp := range []float64{0, 0.8} {
			for _, withWS := range []bool{false, true} {
				label := fmt.Sprintf("%s/temp=%.1f/ws=%v", name, temp, withWS)
				cfg := nn.GenerateConfig{MaxTokens: 10, Temperature: temp, RNG: tensor.NewRNG(777)}
				want := m.GenerateCached(prompt, cfg, nil, nil, tensor.NewArena())

				planner, err := sp.NewSequencePlanner(opts)
				if err != nil {
					t.Fatal(err)
				}
				var ws *tensor.Arena
				if withWS {
					ws = tensor.NewArena()
				}
				cfg.RNG = tensor.NewRNG(777)
				got := m.GenerateCachedCfg(prompt, cfg, nn.DecodeSession{WS: ws, Planner: planner})
				if len(got) != len(want) {
					t.Fatalf("%s: %d tokens vs dense %d (%v vs %v)", label, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: token %d differs: %v vs dense %v", label, i, got, want)
					}
				}
			}
		}
	}
}

// TestSequencePlannerSelections pins the selection mechanics: forced mode
// hits the density targets on every layer, block lists are ascending with
// sink and recent blocks kept, and the block holding the current position
// is always selected (the attention kernel panics otherwise).
func TestSequencePlannerSelections(t *testing.T) {
	m := nn.NewTransformer(servingConfig(), tensor.NewRNG(860))
	sp := NewServingPlanner(m, nil, ServingConfig{})
	planner, err := sp.NewSequencePlanner(nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 0.5, AttnDensity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := planner.(*SequencePlanner)
	prompt := make([]int, 30)
	for i := range prompt {
		prompt[i] = 1 + i%7
	}
	s.BeginSequence(prompt, nil)

	ws := tensor.NewArena()
	pos := len(prompt) // vb = ceil(31/8) = 4 visible blocks
	plan := s.PlanStep(3, pos, ws)

	if plan.Blk != 8 {
		t.Fatalf("plan blk %d, want 8", plan.Blk)
	}
	if plan.MLPDensity != 0.5 {
		t.Fatalf("plan MLP density %v, want 0.5", plan.MLPDensity)
	}
	for li := 0; li < 3; li++ {
		mlp := plan.MLP[li]
		if len(mlp) != 2 { // k = 0.5 · 4 blocks, forced on every layer
			t.Fatalf("layer %d MLP selection %v, want 2 of 4 blocks", li, mlp)
		}
		for i := 1; i < len(mlp); i++ {
			if mlp[i] <= mlp[i-1] {
				t.Fatalf("layer %d MLP selection %v not strictly ascending", li, mlp)
			}
		}
		attn := plan.Attn[li]
		// vb=4: kb = max(ceil(0.5·4), sink+recent) = 3 → {sink 0, recent 2, 3}.
		if len(attn) != 3 || attn[0] != 0 {
			t.Fatalf("layer %d attention selection %v, want 3 blocks starting at sink 0", li, attn)
		}
		last := attn[len(attn)-1]
		if last != pos/8 {
			t.Fatalf("layer %d attention selection %v misses current block %d", li, attn, pos/8)
		}
	}
	ws.Release()

	// Auto mode protects the first and last layers and short prefixes.
	auto, err := sp.NewSequencePlanner(nn.SparsityOptions{Mode: nn.SparsityAuto})
	if err != nil {
		t.Fatal(err)
	}
	a := auto.(*SequencePlanner)
	a.BeginSequence([]int{1, 2, 3}, nil)
	plan = a.PlanStep(4, 3, ws) // vb=1 < MinAttnBlocks → attention dense
	if plan.MLP[0] != nil || plan.MLP[2] != nil {
		t.Fatalf("auto mode sparsified a sensitive layer: %v / %v", plan.MLP[0], plan.MLP[2])
	}
	if plan.MLP[1] == nil {
		t.Fatal("auto mode left the middle layer dense")
	}
	for li := 0; li < 3; li++ {
		if plan.Attn[li] != nil {
			t.Fatalf("short prefix attended sparsely at layer %d: %v", li, plan.Attn[li])
		}
	}
	ws.Release()
}

// TestSequencePlannerValidation pins the option surface: off is a nil
// planner, unknown modes and out-of-range densities are errors naming the
// offending field.
func TestSequencePlannerValidation(t *testing.T) {
	m := nn.NewTransformer(servingConfig(), tensor.NewRNG(861))
	sp := NewServingPlanner(m, nil, ServingConfig{})

	if p, err := sp.NewSequencePlanner(nn.SparsityOptions{}); p != nil || err != nil {
		t.Fatalf("zero options: (%v, %v), want (nil, nil)", p, err)
	}
	for _, c := range []struct {
		opts    nn.SparsityOptions
		mention string
	}{
		{nn.SparsityOptions{Mode: "bogus"}, "sparsity.mode"},
		{nn.SparsityOptions{Mode: nn.SparsityAuto, MLPDensity: 2}, "sparsity.mlp_density"},
		{nn.SparsityOptions{Mode: nn.SparsityForced, AttnDensity: -1}, "sparsity.attn_density"},
		{nn.SparsityOptions{MLPDensity: 0.5}, "sparsity.mode"},
	} {
		_, err := sp.NewSequencePlanner(c.opts)
		if err == nil || !strings.Contains(err.Error(), c.mention) {
			t.Fatalf("opts %+v: err %v, want mention of %s", c.opts, err, c.mention)
		}
	}
}

// TestServingPlannerUsesTrainedPredictors pins the estimator priority: a
// layer whose trained predictor lines up with the planner geometry skips
// the fallback power iteration; mismatched geometry falls back.
func TestServingPlannerUsesTrainedPredictors(t *testing.T) {
	m := nn.NewTransformer(servingConfig(), tensor.NewRNG(862))
	mk := func(blk int) *MLPPredictor {
		nblk := (m.Cfg.Hidden + blk - 1) / blk
		return &MLPPredictor{
			Dim: m.Cfg.Dim, Hidden: m.Cfg.Hidden, Blk: blk, NBlk: nblk,
			Wa:   tensor.New(m.Cfg.Dim, nblk),
			Bias: make([]float32, nblk),
		}
	}
	set := &Set{Blk: 8, Layers: []LayerPredictors{{MLP: mk(8)}, {}, {MLP: mk(8)}}}
	sp := NewServingPlanner(m, set, ServingConfig{})
	if sp.trainedMLP(0) == nil || sp.trainedMLP(2) == nil {
		t.Fatal("aligned trained predictors not used")
	}
	if sp.trainedMLP(1) != nil {
		t.Fatal("layer without predictor reported trained")
	}
	if sp.fallback[0].sigma != nil || sp.fallback[1].sigma == nil {
		t.Fatal("fallback estimators built for the wrong layers")
	}
}

// TestPlanStepZeroAllocs is the hot-path contract: once the arena pools
// are warm, planning a step allocates nothing — selection buffers come
// from the step arena, everything else is planner-owned scratch.
func TestPlanStepZeroAllocs(t *testing.T) {
	obsReg := obs.NewRegistry()
	m := nn.NewTransformer(servingConfig(), tensor.NewRNG(863))
	sp := NewServingPlanner(m, nil, ServingConfig{Metrics: obs.NewServingSparsityMetrics(obsReg)})
	planner, err := sp.NewSequencePlanner(nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 0.5, AttnDensity: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s := planner.(*SequencePlanner)
	prompt := make([]int, 30)
	for i := range prompt {
		prompt[i] = 1 + i%7
	}
	s.BeginSequence(prompt, nil)

	ws := tensor.NewArena()
	pos := len(prompt)
	s.PlanStep(3, pos, ws) // warm arena pools and gauge caches
	ws.Release()

	allocs := testing.AllocsPerRun(100, func() {
		s.PlanStep(3, pos, ws)
		ws.Release()
	})
	if allocs != 0 {
		t.Fatalf("PlanStep allocates %v per run, want 0", allocs)
	}
}
