package predictor

import (
	"fmt"
	"math"

	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/tensor"
)

// Serving-time contextual sparsity (ROADMAP item 1: the paper's thesis,
// served). A ServingPlanner is built once per base model and shared
// read-only by every sequence; each request gets a SequencePlanner that
// produces one nn.DecodePlan per decode step. Selection must stay off the
// critical path, so the estimator is deliberately cheap — SparseLoRA's
// SVD-style recipe (arXiv:2506.16500):
//
//   - MLP: when trained predictors (a Set) are attached, a block's score
//     is the trained linear head x·Ŵa + b on the step's embedding row;
//     otherwise a low-rank fallback scores block b as σ_b·|v_b·x|, where
//     (σ_b, v_b) is the top singular pair of that block's FC1 weight slab
//     (power iteration at construction — no runtime SVD).
//   - Attention: one shared low-rank sketch (P_q, P_k ∈ R^{d×r}) scores
//     KV-position blocks by q-projection · accumulated k-projection sum,
//     with attention-sink and recency blocks always kept (the shadowy
//     attention shapes the exposer pools: vertical + slash).
//
// Both estimators read only the step's embedding row — never a layer
// activation — so planning one step is O(d·(nBlk + r)) and allocation-free
// against the step arena. Quality is protected per SparseLoRA's
// sensitivity analysis: in auto mode the first and last layers stay dense,
// short prefixes attend densely, and any selection that covers every
// block degrades to the literal dense path (nil plan entry), which is
// what makes density 1.0 bit-identical by construction.

// ServingConfig tunes a ServingPlanner. The zero value serves defaults.
type ServingConfig struct {
	// Blk is the selection block size for MLP neuron blocks and attention
	// KV-position blocks (default 8; an attached Set's Blk wins).
	Blk int
	// Rank is the width of the attention sketch projections (default 4).
	Rank int
	// MLPDensity and AttnDensity are the auto-mode default targets when a
	// request doesn't set its own (default 0.5 each).
	MLPDensity, AttnDensity float64
	// SinkBlocks and RecentBlocks are always kept in attention selections
	// (defaults 1 and 2): the attention-sink prefix and the local window.
	SinkBlocks, RecentBlocks int
	// MinAttnBlocks keeps attention dense until the visible prefix spans
	// at least this many blocks (default 4) — short prefixes have nothing
	// worth skipping and everything to lose.
	MinAttnBlocks int
	// Metrics, when set, receives live per-layer serving densities — the
	// lexp_sparse_serving_* gauges.
	Metrics *obs.SparsityMetrics
	// Seed keys the fallback sketch projections (default 0xA77E); fixed so
	// plans are deterministic across replicas.
	Seed uint64
}

func (c *ServingConfig) fill() {
	if c.Blk <= 0 {
		c.Blk = 8
	}
	if c.Rank <= 0 {
		c.Rank = 4
	}
	if c.MLPDensity <= 0 || c.MLPDensity > 1 {
		c.MLPDensity = 0.5
	}
	if c.AttnDensity <= 0 || c.AttnDensity > 1 {
		c.AttnDensity = 0.5
	}
	if c.SinkBlocks <= 0 {
		c.SinkBlocks = 1
	}
	if c.RecentBlocks <= 0 {
		c.RecentBlocks = 2
	}
	if c.MinAttnBlocks <= 0 {
		c.MinAttnBlocks = 4
	}
	if c.Seed == 0 {
		c.Seed = 0xA77E
	}
}

// mlpEstimator is one layer's fallback block scorer: the top singular
// pair of each FC1 block slab, plus the block's max bias magnitude (a
// neuron can activate on bias alone).
type mlpEstimator struct {
	sigma []float32 // [nBlk]
	v     []float32 // [nBlk * dim], row b = right singular vector of slab b
	bmax  []float32 // [nBlk]
}

// ServingPlanner is the per-base, read-only estimator state. Safe for
// concurrent NewSequencePlanner calls; the sequence planners it hands out
// are single-sequence.
type ServingPlanner struct {
	cfg  ServingConfig
	base *nn.Transformer
	set  *Set // optional trained predictors (nil: fallback estimators)

	layers    int
	dim       int
	nBlk      int  // MLP neuron blocks per layer
	maxBlocks int  // attention KV blocks at MaxSeq
	mlpOK     bool // ReLU model: MLP sparsity is meaningful

	fallback []mlpEstimator // [layers]; nil entries where the Set covers
	pq, pk   []float32      // [dim * rank] shared attention sketch
}

// NewServingPlanner builds the serving-time planner for a base model.
// set may be nil (fallback estimators are derived from the base weights);
// when present its block size wins so trained predictors line up.
func NewServingPlanner(base *nn.Transformer, set *Set, cfg ServingConfig) *ServingPlanner {
	cfg.fill()
	if set != nil && set.Blk > 0 {
		cfg.Blk = set.Blk
	}
	c := base.Cfg
	p := &ServingPlanner{
		cfg:       cfg,
		base:      base,
		set:       set,
		layers:    c.Layers,
		dim:       c.Dim,
		nBlk:      (c.Hidden + cfg.Blk - 1) / cfg.Blk,
		maxBlocks: (c.MaxSeq + cfg.Blk - 1) / cfg.Blk,
		mlpOK:     c.Act == nn.ActReLU,
	}

	rng := tensor.NewRNG(cfg.Seed)
	p.pq = sketchProjection(p.dim, cfg.Rank, rng)
	p.pk = sketchProjection(p.dim, cfg.Rank, rng)

	if p.mlpOK {
		p.fallback = make([]mlpEstimator, p.layers)
		for li := 0; li < p.layers; li++ {
			if p.trainedMLP(li) != nil {
				continue
			}
			p.fallback[li] = buildMLPEstimator(base.Blocks[li].MLP, cfg.Blk, p.nBlk)
		}
	}
	return p
}

// trainedMLP returns the layer's trained predictor when one lines up with
// the planner's block geometry.
func (p *ServingPlanner) trainedMLP(li int) *MLPPredictor {
	if p.set == nil || li >= len(p.set.Layers) {
		return nil
	}
	mp := p.set.Layers[li].MLP
	if mp == nil || mp.Blk != p.cfg.Blk || mp.NBlk != p.nBlk || mp.Dim != p.dim {
		return nil
	}
	return mp
}

// sketchProjection draws a fixed random [dim × rank] projection.
func sketchProjection(dim, rank int, rng *tensor.RNG) []float32 {
	t := tensor.New(dim, rank)
	rng.XavierInit(t, dim, rank)
	return t.Data
}

// buildMLPEstimator extracts each FC1 block slab's top singular pair by
// power iteration. m.W1 stores the conceptual [dim → hidden] matrix as
// [hidden, dim]: row h is neuron h's input weights, so slab b is rows
// [b·blk, (b+1)·blk).
func buildMLPEstimator(m *nn.MLP, blk, nBlk int) mlpEstimator {
	d, H := m.Dim, m.Hidden
	est := mlpEstimator{
		sigma: make([]float32, nBlk),
		v:     make([]float32, nBlk*d),
		bmax:  make([]float32, nBlk),
	}
	w1, b1 := m.W1.W.Data, m.B1.W.Data
	mv := make([]float32, blk) // slab · v scratch
	for b := 0; b < nBlk; b++ {
		lo, hi := b*blk, (b+1)*blk
		if hi > H {
			hi = H
		}
		v := est.v[b*d : (b+1)*d]
		for j := range v {
			v[j] = 1
		}
		normalize(v)
		var sigma float32
		for it := 0; it < 8; it++ {
			// mv = M v; v ← Mᵀ mv, normalized. σ converges to ‖M v‖.
			for r := lo; r < hi; r++ {
				row := w1[r*d : (r+1)*d]
				var s float32
				for j, vv := range v {
					s += vv * row[j]
				}
				mv[r-lo] = s
			}
			clear(v)
			for r := lo; r < hi; r++ {
				row := w1[r*d : (r+1)*d]
				g := mv[r-lo]
				for j, wv := range row {
					v[j] += g * wv
				}
			}
			sigma = normalize(v)
		}
		est.sigma[b] = float32(math.Sqrt(float64(sigma))) // ‖MᵀMv‖ = σ²
		for r := lo; r < hi; r++ {
			if a := abs32(b1[r]); a > est.bmax[b] {
				est.bmax[b] = a
			}
		}
	}
	return est
}

func normalize(v []float32) float32 {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	n := float32(math.Sqrt(ss))
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// NewSequencePlanner hands out one sequence's planner for the requested
// sparsity options. Mode off (the zero value) returns (nil, nil) — the
// caller decodes dense. The returned planner owns all its scratch: a
// PlanStep allocates nothing beyond the plan's arena-backed block lists.
func (p *ServingPlanner) NewSequencePlanner(opts nn.SparsityOptions) (nn.DecodePlanner, error) {
	if err := opts.Validate("sparsity"); err != nil {
		return nil, err
	}
	if !opts.Enabled() {
		return nil, nil
	}
	mlpT, attnT := opts.MLPDensity, opts.AttnDensity
	if mlpT == 0 {
		mlpT = p.cfg.MLPDensity
	}
	if attnT == 0 {
		attnT = p.cfg.AttnDensity
	}
	scratch := p.nBlk
	if p.maxBlocks > scratch {
		scratch = p.maxBlocks
	}
	s := &SequencePlanner{
		sp:      p,
		forced:  opts.Mode == nn.SparsityForced,
		mlpT:    mlpT,
		attnT:   attnT,
		x:       make([]float32, p.dim),
		proj:    make([]float32, p.cfg.Rank),
		ksum:    make([]float32, p.maxBlocks*p.cfg.Rank),
		scores:  make([]float32, scratch),
		mlpSel:  make([][]int, p.layers),
		attnSel: make([][]int, p.layers),
	}
	return s, nil
}

// SequencePlanner plans one sequence's decode steps. Not safe for
// concurrent use — one per sequence, like the KV cache it mirrors.
type SequencePlanner struct {
	sp          *ServingPlanner
	forced      bool
	mlpT, attnT float64
	observed    int // positions ingested into the sketch

	x      []float32 // assembled embedding row scratch
	proj   []float32 // q/k projection scratch [rank]
	ksum   []float32 // per-KV-block accumulated k-projections [maxBlocks*rank]
	scores []float32 // block score scratch

	plan    nn.DecodePlan // reused across steps; consumed before the next
	mlpSel  [][]int
	attnSel [][]int
}

// BeginSequence implements nn.DecodePlanner: reset, then ingest the
// prefill rows (virtual prompt-tuning rows first, then prompt tokens) in
// cache order so the attention sketch covers everything the cache holds.
func (s *SequencePlanner) BeginSequence(prompt []int, ad *nn.DecodeAdapter) {
	s.observed = 0
	clear(s.ksum)
	pos := 0
	for r := 0; r < ad.PromptLen(); r++ {
		s.assembleVirtualRow(ad, r, pos)
		s.observe(pos)
		pos++
	}
	for _, id := range prompt {
		s.assembleTokenRow(id, pos)
		s.observe(pos)
		pos++
	}
}

// assembleTokenRow builds the model-input embedding row for token id at
// absolute position pos into s.x — the same row DecodeStep assembles.
func (s *SequencePlanner) assembleTokenRow(id, pos int) {
	d := s.sp.dim
	m := s.sp.base
	tok := m.TokEmb.Table.W.Data[id*d : (id+1)*d]
	posRow := m.PosEmb.Table.W.Data[pos*d : (pos+1)*d]
	for j := range s.x {
		s.x[j] = tok[j] + posRow[j]
	}
}

// assembleVirtualRow is assembleTokenRow for a prompt-tuning row.
func (s *SequencePlanner) assembleVirtualRow(ad *nn.DecodeAdapter, r, pos int) {
	d := s.sp.dim
	prow := ad.Prompt.Data[r*d : (r+1)*d]
	posRow := s.sp.base.PosEmb.Table.W.Data[pos*d : (pos+1)*d]
	for j := range s.x {
		s.x[j] = prow[j] + posRow[j]
	}
}

// observe folds s.x's k-projection into its position block's summary.
func (s *SequencePlanner) observe(pos int) {
	sp := s.sp
	r := sp.cfg.Rank
	sum := s.ksum[(pos/sp.cfg.Blk)*r : (pos/sp.cfg.Blk+1)*r]
	for j, xv := range s.x {
		if xv == 0 {
			continue
		}
		row := sp.pk[j*r : (j+1)*r]
		for c, wv := range row {
			sum[c] += xv * wv
		}
	}
	s.observed = pos + 1
}

// PlanStep implements nn.DecodePlanner. pos is the token's absolute cache
// position; visible positions are 0..pos. Block lists land in ws and die
// with the step's Release.
func (s *SequencePlanner) PlanStep(id, pos int, ws *tensor.Arena) *nn.DecodePlan {
	sp := s.sp
	s.assembleTokenRow(id, pos)
	s.observe(pos)

	// q-projection of the step row for attention block scoring.
	r := sp.cfg.Rank
	qp := s.proj
	clear(qp)
	for j, xv := range s.x {
		if xv == 0 {
			continue
		}
		row := sp.pq[j*r : (j+1)*r]
		for c, wv := range row {
			qp[c] += xv * wv
		}
	}

	// Attention selection is position-based and shared across layers (the
	// sketch reads embeddings, not layer activations); MLP selection is
	// per layer (per-layer singular structure / trained heads differ).
	attnBlocks := s.selectAttn(pos, qp, ws)

	var mlpSum, attnSum float64
	for li := 0; li < sp.layers; li++ {
		mlpBlocks, mlpD := s.selectMLP(li, ws)
		aBlocks, attnD := attnBlocks, s.attnDensity(pos, attnBlocks)
		if !s.forced && (li == 0 || li == sp.layers-1) {
			// Sensitive layers stay dense in auto mode (SparseLoRA's
			// layer-sensitivity protection).
			mlpBlocks, mlpD = nil, 1
			aBlocks, attnD = nil, 1
		}
		s.mlpSel[li], s.attnSel[li] = mlpBlocks, aBlocks
		mlpSum += mlpD
		attnSum += attnD
		if m := sp.cfg.Metrics; m != nil {
			m.SetMLP(li, mlpD)
			m.SetAttn(li, attnD)
		}
	}

	s.plan = nn.DecodePlan{
		Blk:         sp.cfg.Blk,
		MLP:         s.mlpSel,
		Attn:        s.attnSel,
		MLPDensity:  mlpSum / float64(sp.layers),
		AttnDensity: attnSum / float64(sp.layers),
	}
	return &s.plan
}

// selectMLP scores and picks one layer's neuron blocks. Returns (nil, 1)
// when the layer runs dense (GeLU model, full coverage, or no estimator).
func (s *SequencePlanner) selectMLP(li int, ws *tensor.Arena) ([]int, float64) {
	sp := s.sp
	if !sp.mlpOK {
		return nil, 1
	}
	nBlk := sp.nBlk
	k := int(math.Ceil(s.mlpT * float64(nBlk)))
	if k < 1 {
		k = 1
	}
	if k >= nBlk {
		return nil, 1 // full coverage: take the dense escape, bit-identical
	}

	scores := s.scores[:nBlk]
	if mp := sp.trainedMLP(li); mp != nil {
		// Trained linear head on the embedding row: scores = x·Ŵa + b.
		copy(scores, mp.Bias)
		wa, n := mp.Wa.Data, mp.NBlk
		for j, xv := range s.x {
			if xv == 0 {
				continue
			}
			row := wa[j*n : (j+1)*n]
			for c, wv := range row {
				scores[c] += xv * wv
			}
		}
	} else {
		est := sp.fallback[li]
		d := sp.dim
		for b := 0; b < nBlk; b++ {
			v := est.v[b*d : (b+1)*d]
			var dot float32
			for j, xv := range s.x {
				dot += xv * v[j]
			}
			scores[b] = est.sigma[b]*abs32(dot) + est.bmax[b]
		}
	}
	out := tensor.IntsIn(ws, k)
	topKAscending(scores, out)
	return out, float64(k) / float64(nBlk)
}

// selectAttn picks the visible KV-position blocks for a step: sink blocks
// and recent blocks always, plus the top-scoring middle blocks up to the
// density target. Returns nil for a dense step.
func (s *SequencePlanner) selectAttn(pos int, qp []float32, ws *tensor.Arena) []int {
	sp := s.sp
	blk := sp.cfg.Blk
	vb := (pos + 1 + blk - 1) / blk // visible blocks
	if !s.forced && vb < sp.cfg.MinAttnBlocks {
		return nil
	}
	sink, recent := sp.cfg.SinkBlocks, sp.cfg.RecentBlocks
	kb := int(math.Ceil(s.attnT * float64(vb)))
	if kb < sink+recent {
		kb = sink + recent
	}
	if kb >= vb {
		return nil // full coverage: dense escape
	}

	// Score the middle blocks [sink, vb-recent) by sketch similarity.
	lo, hi := sink, vb-recent
	r := sp.cfg.Rank
	scores := s.scores[:hi-lo]
	for b := lo; b < hi; b++ {
		sum := s.ksum[b*r : (b+1)*r]
		var d float32
		for c, qv := range qp {
			d += qv * sum[c]
		}
		scores[b-lo] = d
	}
	out := tensor.IntsIn(ws, kb)
	for i := 0; i < sink; i++ {
		out[i] = i
	}
	mid := out[sink : kb-recent]
	topKAscending(scores, mid)
	for i := range mid {
		mid[i] += lo
	}
	for i := 0; i < recent; i++ {
		out[kb-recent+i] = vb - recent + i
	}
	return out
}

// attnDensity is the realized density of an attention selection at pos.
func (s *SequencePlanner) attnDensity(pos int, blocks []int) float64 {
	if blocks == nil {
		return 1
	}
	blk := s.sp.cfg.Blk
	vb := (pos + 1 + blk - 1) / blk
	return float64(len(blocks)) / float64(vb)
}

// topKAscending writes the indices of the len(out) largest scores into
// out in ascending index order. scores is destroyed. Deterministic: ties
// break toward the lower index. Repeated max-extract — block counts are
// small enough that O(k·n) beats maintaining a heap.
func topKAscending(scores []float32, out []int) {
	for i := range out {
		best, bestV := -1, float32(math.Inf(-1))
		for j, v := range scores {
			if v > bestV {
				best, bestV = j, v
			}
		}
		scores[best] = float32(math.Inf(-1))
		// Insert ascending.
		at := i
		for at > 0 && out[at-1] > best {
			out[at] = out[at-1]
			at--
		}
		out[at] = best
	}
}

// String describes the planner for logs.
func (p *ServingPlanner) String() string {
	src := "fallback"
	if p.set != nil {
		src = "trained"
	}
	return fmt.Sprintf("predictor.ServingPlanner{blk=%d rank=%d layers=%d nblk=%d est=%s}",
		p.cfg.Blk, p.cfg.Rank, p.layers, p.nBlk, src)
}
