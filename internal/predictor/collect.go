package predictor

import (
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

// LayerSample captures one layer's predictor signals from a dense forward:
// the sublayer inputs, the ground-truth attention probabilities, and the
// MLP activation mask. All tensors are deep copies — they outlive the
// model's forward caches.
type LayerSample struct {
	AttnInput *tensor.Tensor   // LN1 output [batch*seq, dim]
	Probs     []*tensor.Tensor // per (batch, head) [seq, seq]
	MLPInput  *tensor.Tensor   // LN2 output [batch*seq, dim]
	Mask      *tensor.Tensor   // ReLU mask [batch*seq, hidden]; nil for GeLU
	Hidden    *tensor.Tensor   // post-ReLU activations (importance signal); nil for GeLU
}

// Sample is one collected batch: the per-layer signals plus shape info.
type Sample struct {
	Batch, Seq int // Seq includes any prompt tokens
	Layers     []LayerSample
}

// Collect runs dense forward passes over the given batches and snapshots
// every layer's predictor training signals — the offline data-collection
// step of §V-B ("pre-trained offline using data collected from model
// inference").
func Collect(m *nn.Transformer, batches [][][]int) []Sample {
	var out []Sample
	for _, ids := range batches {
		batch := len(ids)
		seq := m.TotalSeq(len(ids[0]))
		m.Forward(ids, nil, nil)
		s := Sample{Batch: batch, Seq: seq}
		for _, blk := range m.Blocks {
			ls := LayerSample{
				AttnInput: blk.LN1Out().Clone(),
				MLPInput:  blk.LN2Out().Clone(),
			}
			for _, p := range blk.Attn.DenseProbs(nil) {
				ls.Probs = append(ls.Probs, p.Clone())
			}
			if mask := blk.MLP.ActivationMask(); mask != nil {
				ls.Mask = mask.Clone()
				ls.Hidden = blk.MLP.HiddenActivations().Clone()
			}
			s.Layers = append(s.Layers, ls)
		}
		out = append(out, s)
	}
	return out
}
