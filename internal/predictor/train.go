package predictor

import (
	"math"

	"longexposure/internal/exposer"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// TrainConfig tunes offline predictor training (§V-B).
type TrainConfig struct {
	LR        float64 // default 0.05
	Epochs    int     // default 30
	PosWeight float64 // loss weight for active targets (recall priority), default 4
	NoiseStd  float64 // input augmentation noise, default 0.05
	Seed      uint64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.PosWeight == 0 {
		c.PosWeight = 4
	}
	if c.NoiseStd == 0 {
		c.NoiseStd = 0.05
	}
	return c
}

// adam is a minimal Adam state for one raw tensor — predictors train outside
// the nn.Parameter machinery because they are not part of the fine-tuned
// model.
type adam struct {
	m, v []float32
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float32, n), v: make([]float32, n)} }

func (a *adam) step(w, g []float32, lr float64) {
	a.t++
	bc1 := 1 - math.Pow(0.9, float64(a.t))
	bc2 := 1 - math.Pow(0.999, float64(a.t))
	for i := range w {
		a.m[i] = 0.9*a.m[i] + 0.1*g[i]
		a.v[i] = 0.999*a.v[i] + 0.001*g[i]*g[i]
		mh := float64(a.m[i]) / bc1
		vh := float64(a.v[i]) / bc2
		w[i] -= float32(lr * mh / (math.Sqrt(vh) + 1e-8))
	}
}

// addNoise returns a noisy copy of x — the data-augmentation step that
// hardens predictors against the input drift caused by the evolving
// trainable parameters during fine-tuning.
func addNoise(x *tensor.Tensor, std float64, rng *tensor.RNG) *tensor.Tensor {
	if std == 0 {
		return x
	}
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] += float32(rng.Norm() * std)
	}
	return y
}

// AttnTarget is one attention training example: a pooled input and the
// needed-block mask (0/1 over the causal block grid) for each head.
type AttnTarget struct {
	Pooled *tensor.Tensor   // [nb, dim]
	Masks  []*tensor.Tensor // per head, [nb, nb] with 1 = needed
}

// BuildAttnTargets converts collected dense probabilities into training
// examples: the exposer's head masks become the 0/1 targets.
func BuildAttnTargets(x *tensor.Tensor, probs []*tensor.Tensor, batch, seq, heads int, exp *exposer.Exposer) []AttnTarget {
	blk := exp.Config().Blk
	pooled := Downsample(x, batch, seq, blk)
	nb := seq / blk
	out := make([]AttnTarget, batch)
	for b := 0; b < batch; b++ {
		tgt := AttnTarget{Pooled: pooled[b]}
		for h := 0; h < heads; h++ {
			mask := exp.HeadMask(probs[b*heads+h])
			mt := tensor.New(nb, nb)
			for br := 0; br < nb; br++ {
				for _, bc := range mask.RowBlocks(br) {
					mt.Set(1, br, int(bc))
				}
			}
			tgt.Masks = append(tgt.Masks, mt)
		}
		out[b] = tgt
	}
	return out
}

// TrainAttn fits the per-head low-rank approximators to the collected
// targets with a recall-weighted logistic loss over the causal block grid:
// the bilinear score must agree in sign with the needed/not-needed label,
// with false negatives penalized PosWeight× harder (§V-B). It returns the
// final mean loss.
func (p *AttnPredictor) TrainAttn(targets []AttnTarget, cfg TrainConfig) float64 {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed + 7)
	optQ := make([]*adam, p.Heads)
	optK := make([]*adam, p.Heads)
	for h := 0; h < p.Heads; h++ {
		optQ[h] = newAdam(p.Wq[h].Len())
		optK[h] = newAdam(p.Wk[h].Len())
	}

	var last float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		var lossSum float64
		var count int
		for _, tgt := range targets {
			xd := addNoise(tgt.Pooled, cfg.NoiseStd, rng)
			nb := xd.Dim(0)
			causal := float64(nb*(nb+1)) / 2
			for h := 0; h < p.Heads; h++ {
				qh := tensor.MatMul(xd, p.Wq[h])
				kh := tensor.MatMul(xd, p.Wk[h])
				s := tensor.MatMulTB(qh, kh)
				ds := tensor.New(nb, nb)
				y := tgt.Masks[h]
				for i := 0; i < nb; i++ {
					for j := 0; j <= i; j++ {
						z := float64(s.At(i, j))
						yv := float64(y.At(i, j))
						w := 1.0
						if yv > 0 {
							w = cfg.PosWeight
						}
						pr := 1 / (1 + math.Exp(-z))
						lossSum += w * (math.Max(z, 0) - z*yv + math.Log1p(math.Exp(-math.Abs(z))))
						ds.Set(float32(w*(pr-yv)/causal), i, j)
						count++
					}
				}
				// Backprop: dQ̂ = dS·K̂, dK̂ = dSᵀ·Q̂, dW = xdᵀ·d(·).
				dq := tensor.MatMul(ds, kh)
				dk := tensor.MatMulTA(ds, qh)
				gWq := tensor.MatMulTA(xd, dq)
				gWk := tensor.MatMulTA(xd, dk)
				optQ[h].step(p.Wq[h].Data, gWq.Data, cfg.LR)
				optK[h].step(p.Wk[h].Data, gWk.Data, cfg.LR)
			}
		}
		if count > 0 {
			last = lossSum / float64(count)
		}
	}
	return last
}

// MLPTarget is one MLP training example: layer input tokens and the 0/1
// per-token block-activity matrix.
type MLPTarget struct {
	X *tensor.Tensor // [tokens, dim]
	Y *tensor.Tensor // [tokens, nBlk], 1 = block has an active neuron
}

// BuildMLPTarget converts a collected ReLU mask into block-activity targets.
func BuildMLPTarget(x, mask *tensor.Tensor, blk int) MLPTarget {
	tokens, H := mask.Dim(0), mask.Dim(1)
	nBlk := (H + blk - 1) / blk
	y := tensor.New(tokens, nBlk)
	for i := 0; i < tokens; i++ {
		for h := 0; h < H; h++ {
			if mask.At(i, h) != 0 {
				y.Set(1, i, h/blk)
			}
		}
	}
	return MLPTarget{X: x, Y: y}
}

// BuildFilteredMLPTarget applies the exposer's importance filter before
// building targets: a block is a positive target for a token only if the
// token activates it *and* the block survives the threshold filter over
// the sample's activations (§IV-B). This is what makes the deployed
// pipeline predict the *filtered* active set — the raw OR over a sequence
// is nearly dense (shadowy sparsity), while the filtered set is not.
func BuildFilteredMLPTarget(x, mask, hidden *tensor.Tensor, blk int, threshold float64) MLPTarget {
	tgt := BuildMLPTarget(x, mask, blk)
	keep := make(map[int]bool)
	for _, b := range exposer.FilterNeuronBlocksAt(hidden, blk, threshold) {
		keep[b] = true
	}
	tokens, nBlk := tgt.Y.Dim(0), tgt.Y.Dim(1)
	for i := 0; i < tokens; i++ {
		for j := 0; j < nBlk; j++ {
			if !keep[j] {
				tgt.Y.Set(0, i, j)
			}
		}
	}
	return tgt
}

// TrainMLP fits Ŵa with a recall-weighted logistic loss. Returns the final
// mean loss.
func (p *MLPPredictor) TrainMLP(targets []MLPTarget, cfg TrainConfig) float64 {
	cfg = cfg.withDefaults()
	rng := tensor.NewRNG(cfg.Seed + 13)
	optW := newAdam(p.Wa.Len())
	optB := newAdam(len(p.Bias))

	var last float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		var lossSum float64
		var count int
		for _, tgt := range targets {
			x := addNoise(tgt.X, cfg.NoiseStd, rng)
			tokens := x.Dim(0)
			s := p.Scores(x)
			ds := tensor.New(tokens, p.NBlk)
			for i := 0; i < tokens; i++ {
				for j := 0; j < p.NBlk; j++ {
					z := float64(s.At(i, j))
					y := float64(tgt.Y.At(i, j))
					pr := 1 / (1 + math.Exp(-z))
					w := 1.0
					if y > 0 {
						w = cfg.PosWeight
					}
					// Numerically-stable BCE.
					lossSum += w * (math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z))))
					ds.Set(float32(w*(pr-y)/float64(tokens)), i, j)
					count++
				}
			}
			gW := tensor.MatMulTA(x, ds)
			gB := make([]float32, p.NBlk)
			for i := 0; i < tokens; i++ {
				for j := 0; j < p.NBlk; j++ {
					gB[j] += ds.At(i, j)
				}
			}
			optW.step(p.Wa.Data, gW.Data, cfg.LR)
			optB.step(p.Bias, gB, cfg.LR)
		}
		if count > 0 {
			last = lossSum / float64(count)
		}
	}
	return last
}

// RecallPrecision compares predicted active blocks against true per-token
// needs: recall = truly-needed blocks that were predicted active / all
// truly-needed; precision = predicted blocks that were needed / all
// predicted. Needs are evaluated at sequence level (a block is needed if
// any token needs it), matching how predictions are consumed.
func RecallPrecision(predicted []int, y *tensor.Tensor) (recall, precision float64) {
	tokens, nBlk := y.Dim(0), y.Dim(1)
	needed := make([]bool, nBlk)
	for i := 0; i < tokens; i++ {
		for j := 0; j < nBlk; j++ {
			if y.At(i, j) != 0 {
				needed[j] = true
			}
		}
	}
	pred := make([]bool, nBlk)
	for _, j := range predicted {
		pred[j] = true
	}
	var tp, fn, fp int
	for j := 0; j < nBlk; j++ {
		switch {
		case needed[j] && pred[j]:
			tp++
		case needed[j] && !pred[j]:
			fn++
		case !needed[j] && pred[j]:
			fp++
		}
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	} else {
		recall = 1
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	} else {
		precision = 1
	}
	return
}

// MaskRecall compares a predicted attention layout against a needed-block
// mask: the fraction of needed blocks the prediction covers.
func MaskRecall(predicted, needed *sparse.Layout) float64 {
	if needed.NNZ() == 0 {
		return 1
	}
	return float64(predicted.Overlap(needed)) / float64(needed.NNZ())
}
