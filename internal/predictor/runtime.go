package predictor

import (
	"time"

	"longexposure/internal/exposer"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// LayerPredictors bundles the attention and MLP predictors of one layer.
// MLP is nil for GeLU models (attention-only optimization, §VII-D).
type LayerPredictors struct {
	Attn *AttnPredictor
	MLP  *MLPPredictor
}

// Set holds the predictors of every layer plus the exposer whose pattern
// pool prediction results are categorized into.
type Set struct {
	Blk     int
	Exposer *exposer.Exposer
	Layers  []LayerPredictors
}

// NewSet constructs untrained predictors for every layer of cfg.
// rank is the low-rank width r ≪ d of the attention approximators.
func NewSet(cfg nn.Config, exp *exposer.Exposer, rank int, rng *tensor.RNG) *Set {
	blk := exp.Config().Blk
	s := &Set{Blk: blk, Exposer: exp}
	for i := 0; i < cfg.Layers; i++ {
		lp := LayerPredictors{
			Attn: NewAttnPredictor(cfg.Dim, cfg.Heads, rank, blk, rng),
		}
		if cfg.Act == nn.ActReLU {
			lp.MLP = NewMLPPredictor(cfg.Dim, cfg.Hidden, blk, rng)
		}
		s.Layers = append(s.Layers, lp)
	}
	return s
}

// TrainStats summarizes offline predictor training.
type TrainStats struct {
	AttnLoss, MLPLoss         float64 // final mean losses
	AttnRecall, MLPRecall     float64 // on the training samples
	AttnDensity, MLPPredRatio float64 // mean predicted densities
}

// Train fits every layer's predictors on collected samples and reports
// aggregate quality. The recall numbers correspond to the paper's §VII-C
// predictor evaluation (96.35% average recall for MLP predictors).
func (s *Set) Train(samples []Sample, heads int, cfg TrainConfig) TrainStats {
	var stats TrainStats
	var attnN, mlpN int

	for li, lp := range s.Layers {
		// Attention predictor.
		var targets []AttnTarget
		for _, sm := range samples {
			targets = append(targets,
				BuildAttnTargets(sm.Layers[li].AttnInput, sm.Layers[li].Probs, sm.Batch, sm.Seq, heads, s.Exposer)...)
		}
		if len(targets) > 0 {
			stats.AttnLoss += lp.Attn.TrainAttn(targets, cfg)
			attnN++
			// Measure recall of raw predicted masks against targets.
			for _, sm := range samples {
				masks := lp.Attn.PredictMasks(sm.Layers[li].AttnInput, sm.Batch, sm.Seq)
				trueMasks := s.Exposer.HeadMasks(sm.Layers[li].Probs, sm.Batch, heads)
				for h := range masks {
					stats.AttnRecall += MaskRecall(masks[h], trueMasks[h])
					stats.AttnDensity += masks[h].Density()
				}
			}
		}

		// MLP predictor.
		if lp.MLP == nil {
			continue
		}
		var mlpTargets []MLPTarget
		threshold := s.Exposer.Config().MLPThreshold
		for _, sm := range samples {
			ls := sm.Layers[li]
			switch {
			case ls.Mask != nil && ls.Hidden != nil:
				mlpTargets = append(mlpTargets,
					BuildFilteredMLPTarget(ls.MLPInput, ls.Mask, ls.Hidden, s.Blk, threshold))
			case ls.Mask != nil:
				mlpTargets = append(mlpTargets,
					BuildMLPTarget(ls.MLPInput, ls.Mask, s.Blk))
			}
		}
		if len(mlpTargets) > 0 {
			stats.MLPLoss += lp.MLP.TrainMLP(mlpTargets, cfg)
			mlpN++
			for _, tgt := range mlpTargets {
				pred := lp.MLP.Predict(tgt.X)
				r, _ := RecallPrecision(pred, tgt.Y)
				stats.MLPRecall += r
				stats.MLPPredRatio += float64(len(pred)) / float64(lp.MLP.NBlk)
			}
		}
	}

	if attnN > 0 {
		stats.AttnLoss /= float64(attnN)
		n := float64(attnN * len(samples) * heads)
		stats.AttnRecall /= n
		stats.AttnDensity /= n
	}
	if mlpN > 0 {
		stats.MLPLoss /= float64(mlpN)
		n := float64(mlpN * len(samples))
		stats.MLPRecall /= n
		stats.MLPPredRatio /= n
	}
	return stats
}

// RuntimePlanner adapts a trained Set to nn.Planner, timing every
// prediction so the engine can report predictor overhead separately
// (the "Prediction" bar of Figure 10).
type RuntimePlanner struct {
	Set *Set

	// DisableMLP forces dense MLPs even when predictors exist (used by the
	// attention-only ablation).
	DisableMLP bool
	// DisableAttn forces dense attention (MLP-only ablation).
	DisableAttn bool
	// Metrics, when set, receives the predicted per-layer densities — the
	// live view of how much shadowy sparsity each plan recovers. Updates
	// happen once per planned layer per step, outside the prediction
	// timing so the Predict phase stays honest.
	Metrics *obs.SparsityMetrics

	elapsed time.Duration
}

// Planner returns a fresh runtime planner over the set.
func (s *Set) Planner() *RuntimePlanner { return &RuntimePlanner{Set: s} }

// Layer implements nn.Planner.
func (rp *RuntimePlanner) Layer(i int) nn.LayerPlanner {
	return runtimeLayer{rp, i}
}

// TakeElapsed returns the accumulated prediction time and resets it.
func (rp *RuntimePlanner) TakeElapsed() time.Duration {
	e := rp.elapsed
	rp.elapsed = 0
	return e
}

type runtimeLayer struct {
	rp *RuntimePlanner
	li int
}

// PlanAttention implements nn.LayerPlanner.
func (rl runtimeLayer) PlanAttention(x *tensor.Tensor, batch, seq int) ([]*sparse.Layout, int) {
	rp := rl.rp
	if rp.DisableAttn {
		return nil, 0
	}
	t0 := time.Now()
	layouts := rp.Set.Layers[rl.li].Attn.Predict(x, batch, seq, rp.Set.Exposer)
	rp.elapsed += time.Since(t0)
	if rp.Metrics != nil && len(layouts) > 0 {
		var d float64
		for _, l := range layouts {
			d += l.Density()
		}
		rp.Metrics.SetAttn(rl.li, d/float64(len(layouts)))
	}
	return layouts, rp.Set.Blk
}

// PlanMLP implements nn.LayerPlanner.
func (rl runtimeLayer) PlanMLP(x *tensor.Tensor, _, _ int) ([]int, int) {
	rp := rl.rp
	mp := rp.Set.Layers[rl.li].MLP
	if mp == nil || rp.DisableMLP {
		return nil, 0
	}
	t0 := time.Now()
	blocks := mp.Predict(x)
	rp.elapsed += time.Since(t0)
	if rp.Metrics != nil && mp.NBlk > 0 {
		rp.Metrics.SetMLP(rl.li, float64(len(blocks))/float64(mp.NBlk))
	}
	return blocks, rp.Set.Blk
}
