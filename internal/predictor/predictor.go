// Package predictor implements the Sequence-oriented Predictor (paper §V):
// small low-rank networks that predict each layer's sparse patterns from the
// layer input *before* the expensive computation happens.
//
// The two-stage sequence design keeps predictor size independent of sequence
// length: stage one processes tokens (block-pooled, the paper's s → √s
// down-sampling), stage two consolidates per-token predictions into one
// pattern for the whole sequence. Predictors are pre-trained offline on
// activations collected from dense inference (internal/predictor/collect.go)
// with noise augmentation and a recall-weighted loss, because a false
// negative (an active weight predicted inactive) hurts the fine-tuned model
// while a false positive merely wastes a little compute.
package predictor

import (
	"fmt"
	"math"

	"longexposure/internal/exposer"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// AttnPredictor predicts per-head block masks for one attention layer.
// For each head it holds low-rank approximators Ŵq, Ŵk ∈ R^{d×r}; the
// approximate scores X̂·Ŵq (X̂·Ŵk)ᵀ are computed on the block-pooled
// sequence X̂ (one pooled embedding per block, so with blk = √s this is
// exactly the paper's √s down-sampling).
type AttnPredictor struct {
	Dim, Heads, Rank, Blk int
	Wq, Wk                []*tensor.Tensor // per head, [dim, rank]
	Threshold             float32          // score binarization threshold
}

// NewAttnPredictor constructs an untrained attention predictor.
func NewAttnPredictor(dim, heads, rank, blk int, rng *tensor.RNG) *AttnPredictor {
	// Threshold 0 is the decision boundary of the logistic training loss
	// (σ(0) = 0.5): blocks scoring positive are predicted needed.
	p := &AttnPredictor{Dim: dim, Heads: heads, Rank: rank, Blk: blk, Threshold: 0}
	for h := 0; h < heads; h++ {
		wq := tensor.New(dim, rank)
		wk := tensor.New(dim, rank)
		rng.XavierInit(wq, dim, rank)
		rng.XavierInit(wk, dim, rank)
		p.Wq = append(p.Wq, wq)
		p.Wk = append(p.Wk, wk)
	}
	return p
}

// Downsample block-pools one sequence: x is [batch*seq, dim]; the result is
// a per-batch slice of [nb, dim] tensors, each row the mean of one block of
// tokens — stage one of the two-stage design.
func Downsample(x *tensor.Tensor, batch, seq, blk int) []*tensor.Tensor {
	if seq%blk != 0 {
		panic(fmt.Sprintf("predictor: seq %d not a multiple of blk %d", seq, blk))
	}
	d := x.Dim(1)
	nb := seq / blk
	out := make([]*tensor.Tensor, batch)
	inv := float32(1) / float32(blk)
	for b := 0; b < batch; b++ {
		xd := tensor.New(nb, d)
		for nbi := 0; nbi < nb; nbi++ {
			dst := xd.Data[nbi*d : (nbi+1)*d]
			for t := 0; t < blk; t++ {
				src := x.Data[(b*seq+nbi*blk+t)*d : (b*seq+nbi*blk+t+1)*d]
				for j, v := range src {
					dst[j] += v
				}
			}
			for j := range dst {
				dst[j] *= inv
			}
		}
		out[b] = xd
	}
	return out
}

// scoreHead computes the approximate block-score matrix Ŝ = Q̂·K̂ᵀ [nb, nb]
// for head h on a pooled sequence.
func (p *AttnPredictor) scoreHead(xd *tensor.Tensor, h int) *tensor.Tensor {
	qh := tensor.MatMul(xd, p.Wq[h])
	kh := tensor.MatMul(xd, p.Wk[h])
	return tensor.MatMulTB(qh, kh)
}

// PredictMasks returns the raw predicted needed-block mask per head
// (batch-reduced by union), before pool categorization.
func (p *AttnPredictor) PredictMasks(x *tensor.Tensor, batch, seq int) []*sparse.Layout {
	masks, _ := p.PredictMasksWithWeights(x, batch, seq)
	return masks
}

// PredictMasksWithWeights additionally returns per-head block weights —
// σ(score), a calibrated estimate of each block's importance — used for
// mass-weighted pool categorization, mirroring the exposer's true-mass
// matching.
func (p *AttnPredictor) PredictMasksWithWeights(x *tensor.Tensor, batch, seq int) ([]*sparse.Layout, [][]float64) {
	pooled := Downsample(x, batch, seq, p.Blk)
	nb := seq / p.Blk
	masks := make([]*sparse.Layout, p.Heads)
	weights := make([][]float64, p.Heads)
	for h := 0; h < p.Heads; h++ {
		needed := make([]bool, nb*nb)
		w := make([]float64, nb*nb)
		for _, xd := range pooled {
			s := p.scoreHead(xd, h)
			for i := 0; i < nb; i++ {
				for j := 0; j <= i; j++ {
					z := float64(s.At(i, j))
					if s.At(i, j) >= p.Threshold {
						needed[i*nb+j] = true
					}
					w[i*nb+j] += 1 / (1 + math.Exp(-z))
				}
			}
		}
		for i := 0; i < nb; i++ {
			needed[i*nb+i] = true
			w[i*nb+i] += float64(batch) // a token always attends to itself
		}
		masks[h] = sparse.NewLayout(nb, func(br, bc int) bool {
			return bc <= br && needed[br*nb+bc]
		})
		weights[h] = w
	}
	return masks, weights
}

// Predict runs the full attention pipeline: predict masks and importance
// weights, then categorize each into the exposer's pattern pool so the
// dynamic-aware operators can reuse pre-computed layouts. Stage two of the
// two-stage design.
func (p *AttnPredictor) Predict(x *tensor.Tensor, batch, seq int, exp *exposer.Exposer) []*sparse.Layout {
	masks, weights := p.PredictMasksWithWeights(x, batch, seq)
	out := make([]*sparse.Layout, p.Heads)
	for h, m := range masks {
		_, out[h] = exp.MatchToPool(m, weights[h])
	}
	return out
}

// MLPPredictor predicts the active neuron blocks of one MLP layer:
// Ŝ = X·Ŵa + b scores each block per token; a block is predicted active for
// the sequence if any token scores it positive (the batch+sequence
// reduction of §V-A).
type MLPPredictor struct {
	Dim, Hidden, Blk, NBlk int
	Wa                     *tensor.Tensor // [dim, nBlk]
	Bias                   []float32      // [nBlk]
}

// NewMLPPredictor constructs an untrained MLP predictor.
func NewMLPPredictor(dim, hidden, blk int, rng *tensor.RNG) *MLPPredictor {
	nBlk := (hidden + blk - 1) / blk
	p := &MLPPredictor{Dim: dim, Hidden: hidden, Blk: blk, NBlk: nBlk,
		Wa:   tensor.New(dim, nBlk),
		Bias: make([]float32, nBlk),
	}
	rng.XavierInit(p.Wa, dim, nBlk)
	return p
}

// Scores returns the raw per-token block scores [tokens, nBlk].
func (p *MLPPredictor) Scores(x *tensor.Tensor) *tensor.Tensor {
	s := tensor.MatMul(x, p.Wa)
	tensor.AddRowVector(s, p.Bias)
	return s
}

// Predict returns the sorted active neuron-block list for the whole batch:
// block j is active if Ŝ[i,j] > 0 for any token i. At least one block is
// always returned.
func (p *MLPPredictor) Predict(x *tensor.Tensor) []int {
	s := p.Scores(x)
	tokens := s.Dim(0)
	active := make([]bool, p.NBlk)
	for i := 0; i < tokens; i++ {
		row := s.Data[i*p.NBlk : (i+1)*p.NBlk]
		for j, v := range row {
			if v > 0 {
				active[j] = true
			}
		}
	}
	var out []int
	for j, a := range active {
		if a {
			out = append(out, j)
		}
	}
	if len(out) == 0 {
		// Degenerate prediction: keep the top-scoring block.
		best, bestV := 0, float32(tensor.NegInf)
		for i := 0; i < tokens; i++ {
			row := s.Data[i*p.NBlk : (i+1)*p.NBlk]
			for j, v := range row {
				if v > bestV {
					best, bestV = j, v
				}
			}
		}
		out = []int{best}
	}
	return out
}
