package predictor

import (
	"testing"

	"longexposure/internal/exposer"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

func TestBuildFilteredMLPTargetDropsWeakBlocks(t *testing.T) {
	// 2 tokens, 8 neurons, blk 4: block 0 strong, block 1 weak but active.
	mask := tensor.FromSlice([]float32{
		1, 1, 1, 1, 1, 0, 0, 0,
		1, 1, 1, 1, 0, 1, 0, 0,
	}, 2, 8)
	hidden := tensor.FromSlice([]float32{
		5, 5, 5, 5, 0.01, 0, 0, 0,
		5, 5, 5, 5, 0, 0.01, 0, 0,
	}, 2, 8)
	x := tensor.New(2, 4)

	raw := BuildMLPTarget(x, mask, 4)
	if raw.Y.At(0, 1) != 1 {
		t.Fatal("raw target should keep the weak block")
	}
	filtered := BuildFilteredMLPTarget(x, mask, hidden, 4, 0.05)
	if filtered.Y.At(0, 0) != 1 {
		t.Fatal("strong block dropped")
	}
	if filtered.Y.At(0, 1) != 0 || filtered.Y.At(1, 1) != 0 {
		t.Fatal("weak block survived the filter")
	}
}

func TestFilteredTargetsShrinkPredictedDensity(t *testing.T) {
	// A primed sim model must yield a meaningfully sparser prediction when
	// the filter participates in target construction — the §IV→§V coupling
	// that turns shadowy MLP sparsity into usable block sparsity.
	spec := model.Sim(model.OPT1p3B())
	rng := tensor.NewRNG(60)
	m := nn.NewTransformer(spec.Config, rng)
	model.PrimeSparsity(m, rng.Split(), 8)

	var batches [][][]int
	r2 := tensor.NewRNG(61)
	for i := 0; i < 3; i++ {
		row := make([]int, 64)
		for j := range row {
			row[j] = 4 + r2.Intn(spec.Config.Vocab-4)
		}
		batches = append(batches, [][]int{row})
	}
	samples := Collect(m, batches)

	exp := exposer.New(exposer.Config{Blk: 8, MLPThreshold: 0.02})
	set := NewSet(spec.Config, exp, 8, rng.Split())
	set.Train(samples, spec.Config.Heads, TrainConfig{Epochs: 12})

	var density float64
	var n int
	for li, lp := range set.Layers {
		for _, sm := range samples {
			pred := lp.MLP.Predict(sm.Layers[li].MLPInput)
			density += float64(len(pred)) / float64(lp.MLP.NBlk)
			n++
		}
	}
	density /= float64(n)
	if density > 0.75 {
		t.Fatalf("filtered predicted density %.3f still near-dense", density)
	}
	if density <= 0 {
		t.Fatal("no blocks predicted")
	}
}

func TestCollectIncludesHiddenForReLUOnly(t *testing.T) {
	relu := nn.NewTransformer(model.SimSmall(nn.ActReLU).Config, tensor.NewRNG(62))
	s := Collect(relu, [][][]int{{{1, 2, 3, 4}}})
	if s[0].Layers[0].Hidden == nil {
		t.Fatal("ReLU sample missing hidden activations")
	}
	gelu := nn.NewTransformer(model.SimSmall(nn.ActGeLU).Config, tensor.NewRNG(63))
	s = Collect(gelu, [][][]int{{{1, 2, 3, 4}}})
	if s[0].Layers[0].Hidden != nil {
		t.Fatal("GeLU sample has hidden activations")
	}
}
