package account

import "time"

// TrainAccumulator assembles one training-run wide event incrementally —
// the train-side counterpart of infer's per-sequence accumulator. The
// owner (a job runner or a standalone trainer) preallocates one per run,
// stamps the identity fields on Event, points the engine at it, and emits
// Event once at completion. AddStep is plain field arithmetic: zero
// allocations per training step.
//
// Training FLOPs are analytic (Model.TrainStepFLOPs) and counted as both
// dense-equivalent and executed: sparsity savings in this codebase are a
// serving-time effect (predictor-gated decode plans), so train events
// always carry SavedFLOPs() == 0 and the attribution stays on the
// generate side of the ledger.
type TrainAccumulator struct {
	Event Event
}

// AddStep records one optimizer step: the tokens it consumed, its
// analytic FLOP cost and its wall-clock duration.
func (a *TrainAccumulator) AddStep(tokens int, flops int64, d time.Duration) {
	e := &a.Event
	e.TrainSteps++
	e.PromptTokens += int64(tokens)
	e.DenseFLOPs += flops
	e.ExecFLOPs += flops
	e.TotalNs += d.Nanoseconds()
}
