package account

import (
	"sync"
	"time"

	"longexposure/internal/obs"
)

// Config sizes a Plane.
type Config struct {
	// Dir, when set, arms the on-disk segmented log; "" keeps events in
	// memory only.
	Dir string
	// Ring bounds the in-memory event ring (default 1024).
	Ring int
	// SegmentBytes rotates the active segment past this size (default 1 MiB).
	SegmentBytes int64
	// MaxBytes prunes sealed segments oldest-first past this total
	// (default 64 MiB; 0 keeps the default, -1 disables size pruning).
	MaxBytes int64
	// Retention prunes sealed segments older than this age (0 disables).
	Retention time.Duration
	// Metrics, when set, folds every emission into the global
	// lexp_account_* and lexp_flops_saved_total instruments.
	Metrics *obs.AccountMetrics
}

func (c Config) withDefaults() Config {
	if c.Ring <= 0 {
		c.Ring = 1024
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	switch {
	case c.MaxBytes == 0:
		c.MaxBytes = 64 << 20
	case c.MaxBytes < 0:
		c.MaxBytes = 0
	}
	return c
}

// Plane is the wide-event accounting plane: a bounded in-memory ring, a
// per-tenant usage rollup, the global metric fold, and the optional disk
// log — all updated atomically under one emission, so the conservation
// invariant (usage sums == counters == ring-visible history) holds at
// every instant. Emit is safe for concurrent use and allocation-free at
// steady state.
type Plane struct {
	cfg Config

	mu    sync.Mutex
	ring  []Event // preallocated; filled in place
	head  int     // next write slot
	n     int     // live events (<= len(ring))
	usage map[string]*Usage
	total Usage
	log   *segLog

	// health, when set, stamps the SLO engine's readiness verdict into
	// every emitted event (empty while healthy).
	health func() (bool, string)
}

// New opens a plane. When cfg.Dir is set, every complete record already
// on disk is replayed into the ring and the usage rollups (metrics are
// process-lifetime and deliberately not replayed), the active segment's
// torn tail (a crash mid-write) is truncated, and appends resume.
func New(cfg Config) (*Plane, error) {
	cfg = cfg.withDefaults()
	p := &Plane{cfg: cfg, ring: make([]Event, cfg.Ring), usage: map[string]*Usage{}}
	if cfg.Dir != "" {
		l, err := openLog(cfg.Dir, cfg.SegmentBytes, cfg.MaxBytes, cfg.Retention, cfg.Metrics, func(e *Event) {
			p.ringPut(e)
			p.rollup(e)
		})
		if err != nil {
			return nil, err
		}
		p.log = l
	}
	return p, nil
}

// SetHealth wires the SLO engine's readiness verdict into emissions
// (e.g. plane.SetHealth(engine.Healthy)). Call before serving traffic.
func (p *Plane) SetHealth(fn func() (bool, string)) {
	p.mu.Lock()
	p.health = fn
	p.mu.Unlock()
}

// Emit records one completed unit of work. The event is copied into the
// ring; the caller keeps ownership of ev (preallocated accumulators are
// reused across sequences). A zero Time is stamped with the current
// time; the SLO verdict is stamped when a health source is attached.
// Disk-log failures are counted and swallowed — accounting must never
// fail the request path.
func (p *Plane) Emit(ev *Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	p.mu.Lock()
	if p.health != nil {
		if ok, status := p.health(); !ok {
			ev.SLO = status
		}
	}
	p.ringPut(ev)
	p.rollup(ev)
	if m := p.cfg.Metrics; m != nil {
		m.Event(ev.Kind).Inc()
		m.PromptTokens.Add(float64(ev.PromptTokens))
		m.OutputTokens.Add(float64(ev.OutputTokens))
		m.DenseFLOPs.Add(float64(ev.DenseFLOPs))
		m.ExecFLOPs.Add(float64(ev.ExecFLOPs))
		m.SavedMLP.Add(float64(ev.MLPSavedFLOPs))
		m.SavedAttn.Add(float64(ev.AttnSavedFLOPs))
		if ev.Shed() {
			m.Shed.Inc()
		}
	}
	if p.log != nil {
		if err := p.log.append(ev); err != nil && p.cfg.Metrics != nil {
			p.cfg.Metrics.LogErrors.Inc()
		}
	}
	p.mu.Unlock()
}

// ringPut copies one event into the next ring slot (caller holds mu,
// except during single-threaded replay in New).
func (p *Plane) ringPut(ev *Event) {
	p.ring[p.head] = *ev
	p.head = (p.head + 1) % len(p.ring)
	if p.n < len(p.ring) {
		p.n++
	}
}

func (p *Plane) rollup(ev *Event) {
	u := p.usage[ev.Tenant]
	if u == nil {
		u = &Usage{}
		p.usage[ev.Tenant] = u
	}
	u.add(ev)
	p.total.add(ev)
}

// Filter selects events out of the ring. Zero-valued fields match
// everything.
type Filter struct {
	Tenant  string
	Route   string
	Adapter string
	TraceID string
	Outcome string
	Kind    string
	Since   time.Time
	Until   time.Time
	Limit   int // max events returned (newest kept); 0 = all
}

func (f *Filter) match(e *Event) bool {
	if f.Tenant != "" && e.Tenant != f.Tenant {
		return false
	}
	if f.Route != "" && e.Route != f.Route {
		return false
	}
	if f.Adapter != "" && e.Adapter != f.Adapter {
		return false
	}
	if f.TraceID != "" && e.TraceID != f.TraceID {
		return false
	}
	if f.Outcome != "" && e.Outcome != f.Outcome {
		return false
	}
	if f.Kind != "" && e.Kind != f.Kind {
		return false
	}
	if !f.Since.IsZero() && e.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && e.Time.After(f.Until) {
		return false
	}
	return true
}

// Events returns the matching events, oldest first (copies — the ring
// keeps rolling underneath).
func (p *Plane) Events(f Filter) []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Event
	start := p.head - p.n
	for i := 0; i < p.n; i++ {
		idx := (start + i + len(p.ring)) % len(p.ring)
		if f.match(&p.ring[idx]) {
			out = append(out, p.ring[idx])
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Recent returns the newest n events, oldest first — the flight
// recorder's wide-event window.
func (p *Plane) Recent(n int) []Event {
	return p.Events(Filter{Limit: n})
}

// UsageByTenant snapshots the cumulative per-tenant rollups plus the
// global total.
func (p *Plane) UsageByTenant() (map[string]Usage, Usage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Usage, len(p.usage))
	for t, u := range p.usage {
		out[t] = *u
	}
	return out, p.total
}

// Close flushes and closes the disk log. The in-memory surfaces keep
// working; further emissions are no longer persisted.
func (p *Plane) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log == nil {
		return nil
	}
	err := p.log.close()
	p.log = nil
	return err
}
