package account

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"longexposure/internal/obs"
)

// Segmented append-only binary event log.
//
// Layout: <dir>/events-NNNNNN.open is the single active segment, appended
// in place; on rotation it is sealed by an atomic rename to
// events-NNNNNN.seg (the same tmp+rename discipline the flight recorder
// uses for dumps — a .seg file is complete by construction, only the
// .open tail can ever be torn). Sealed segments are pruned oldest-first
// by total size and age.
//
// Record framing: a fixed magic byte, a u32 little-endian payload length,
// a u32 CRC32 (IEEE) of the payload, then the payload. Replay stops at
// the first frame that is short, oversized or fails its checksum and
// truncates the file there — a crash mid-write loses at most the torn
// record, never a preceding one.
//
// Payload (version 1): u8 version; i64 unix-nano time; 9 length-prefixed
// strings (kind, tenant, route, adapter, base, trace id, outcome, limit,
// slo); 16 u64 resource fields in Event declaration order.

const (
	segMagic   = "LXACCT01"
	recMagic   = 0xE7
	recVersion = 1
	// maxRecord bounds a frame's declared payload so a corrupt length
	// cannot drive a huge allocation during replay.
	maxRecord = 1 << 20
)

var crcTable = crc32.IEEETable

type segLog struct {
	dir       string
	segBytes  int64
	maxBytes  int64
	retention time.Duration
	metrics   *obs.AccountMetrics

	f    *os.File // active events-NNNNNN.open
	seq  int
	size int64
	buf  []byte // reusable frame buffer: emit appends without allocating
}

// openLog opens (creating if needed) the segment directory, replays every
// complete record into fn (oldest first), truncates a torn active tail,
// and leaves the log ready to append.
func openLog(dir string, segBytes, maxBytes int64, retention time.Duration, m *obs.AccountMetrics, fn func(*Event)) (*segLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("account: open log: %w", err)
	}
	l := &segLog{dir: dir, segBytes: segBytes, maxBytes: maxBytes, retention: retention, metrics: m,
		buf: make([]byte, 0, 4096)}

	names, err := l.segments()
	if err != nil {
		return nil, err
	}
	openName := ""
	for _, name := range names {
		good, err := replayFile(filepath.Join(dir, name), fn)
		if err != nil {
			return nil, err
		}
		seq := segSeq(name)
		if seq > l.seq {
			l.seq = seq
		}
		if strings.HasSuffix(name, ".open") {
			openName = name
			l.size = good
		}
	}
	if openName != "" {
		path := filepath.Join(dir, openName)
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("account: reopen active segment: %w", err)
		}
		if err := f.Truncate(l.size); err != nil { // drop a torn tail
			f.Close()
			return nil, fmt.Errorf("account: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(l.size, 0); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		return l, nil
	}
	return l, l.openNext()
}

// segments lists segment files sorted by sequence (sealed and open).
func (l *segLog) segments() ([]string, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "events-") && (strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".open")) {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return segSeq(names[i]) < segSeq(names[j]) })
	return names, nil
}

func segSeq(name string) int {
	name = strings.TrimPrefix(name, "events-")
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i]
	}
	n, _ := strconv.Atoi(name)
	return n
}

func (l *segLog) openNext() error {
	l.seq++
	f, err := os.OpenFile(filepath.Join(l.dir, fmt.Sprintf("events-%06d.open", l.seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("account: create segment: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, int64(len(segMagic))
	return nil
}

// append frames and writes one event, rotating when the active segment
// fills. The frame buffer is reused across calls — steady-state appends
// do not allocate.
func (l *segLog) append(e *Event) error {
	l.buf = encodeFrame(l.buf[:0], e)
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.size += int64(len(l.buf))
	if l.metrics != nil {
		l.metrics.LogBytes.Add(float64(len(l.buf)))
	}
	if l.size >= l.segBytes {
		return l.rotate()
	}
	return nil
}

// rotate seals the active segment (atomic rename .open -> .seg), prunes
// by retention, and starts the next one.
func (l *segLog) rotate() error {
	if err := l.f.Close(); err != nil {
		return err
	}
	name := fmt.Sprintf("events-%06d", l.seq)
	if err := os.Rename(filepath.Join(l.dir, name+".open"), filepath.Join(l.dir, name+".seg")); err != nil {
		return err
	}
	if l.metrics != nil {
		l.metrics.Segments.Inc()
	}
	l.prune()
	return l.openNext()
}

// prune deletes sealed segments oldest-first while the log exceeds its
// size budget or a segment exceeds the age retention. The active segment
// is never pruned.
func (l *segLog) prune() {
	names, err := l.segments()
	if err != nil {
		return
	}
	var sealed []string
	var total int64
	for _, name := range names {
		if fi, err := os.Stat(filepath.Join(l.dir, name)); err == nil {
			total += fi.Size()
		}
		if strings.HasSuffix(name, ".seg") {
			sealed = append(sealed, name)
		}
	}
	cutoff := time.Time{}
	if l.retention > 0 {
		cutoff = time.Now().Add(-l.retention)
	}
	for _, name := range sealed {
		path := filepath.Join(l.dir, name)
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		overSize := l.maxBytes > 0 && total > l.maxBytes
		overAge := !cutoff.IsZero() && fi.ModTime().Before(cutoff)
		if !overSize && !overAge {
			break // names are oldest-first; nothing newer qualifies either
		}
		if os.Remove(path) == nil {
			total -= fi.Size()
		}
	}
}

func (l *segLog) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ---- record codec ----

func appendStr(b []byte, s string) []byte {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendU64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// encodeFrame appends one framed record to b and returns it.
func encodeFrame(b []byte, e *Event) []byte {
	start := len(b)
	b = append(b, recMagic, 0, 0, 0, 0, 0, 0, 0, 0) // magic + len + crc placeholders
	payload := len(b)
	b = append(b, recVersion)
	b = appendU64(b, e.Time.UnixNano())
	for _, s := range [...]string{e.Kind, e.Tenant, e.Route, e.Adapter, e.Base, e.TraceID, e.Outcome, e.Limit, e.SLO} {
		b = appendStr(b, s)
	}
	for _, v := range [...]int64{
		e.PromptTokens, e.OutputTokens, e.DecodeSteps, e.PlannedSteps, e.TrainSteps,
		e.DenseFLOPs, e.ExecFLOPs, e.MLPSavedFLOPs, e.AttnSavedFLOPs,
		e.PeakKVRows, e.PeakKVBytes, e.ArenaBytes,
		e.QueueWaitNs, e.PrefillNs, e.DecodeNs, e.TotalNs,
	} {
		b = appendU64(b, v)
	}
	binary.LittleEndian.PutUint32(b[start+1:], uint32(len(b)-payload))
	binary.LittleEndian.PutUint32(b[start+5:], crc32.Checksum(b[payload:], crcTable))
	return b
}

// decodeRecord parses one payload into e; used by replay and tests.
func decodeRecord(p []byte, e *Event) error {
	rd := reader{b: p}
	if v := rd.u8(); v != recVersion {
		return fmt.Errorf("account: record version %d", v)
	}
	e.Time = time.Unix(0, rd.i64())
	e.Kind = rd.str()
	e.Tenant = rd.str()
	e.Route = rd.str()
	e.Adapter = rd.str()
	e.Base = rd.str()
	e.TraceID = rd.str()
	e.Outcome = rd.str()
	e.Limit = rd.str()
	e.SLO = rd.str()
	for _, dst := range [...]*int64{
		&e.PromptTokens, &e.OutputTokens, &e.DecodeSteps, &e.PlannedSteps, &e.TrainSteps,
		&e.DenseFLOPs, &e.ExecFLOPs, &e.MLPSavedFLOPs, &e.AttnSavedFLOPs,
		&e.PeakKVRows, &e.PeakKVBytes, &e.ArenaBytes,
		&e.QueueWaitNs, &e.PrefillNs, &e.DecodeNs, &e.TotalNs,
	} {
		*dst = rd.i64()
	}
	if rd.err {
		return fmt.Errorf("account: truncated record payload")
	}
	return nil
}

type reader struct {
	b   []byte
	err bool
}

func (r *reader) u8() byte {
	if r.err || len(r.b) < 1 {
		r.err = true
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) i64() int64 {
	if r.err || len(r.b) < 8 {
		r.err = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return int64(v)
}

func (r *reader) str() string {
	if r.err || len(r.b) < 2 {
		r.err = true
		return ""
	}
	n := int(binary.LittleEndian.Uint16(r.b))
	r.b = r.b[2:]
	if len(r.b) < n {
		r.err = true
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// replayFile streams every complete record of one segment into fn and
// returns the offset of the last good frame (the truncation point for a
// torn active tail). Corruption is tolerated, not fatal: replay keeps
// whatever prefix checks out.
func replayFile(path string, fn func(*Event)) (good int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return int64(len(segMagic)), nil // unrecognized or empty: start over
	}
	off := len(segMagic)
	for {
		if len(data)-off < 9 || data[off] != recMagic {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		sum := binary.LittleEndian.Uint32(data[off+5:])
		if n <= 0 || n > maxRecord || len(data)-off-9 < n {
			break
		}
		payload := data[off+9 : off+9+n]
		if crc32.Checksum(payload, crcTable) != sum {
			break
		}
		var e Event
		if decodeRecord(payload, &e) != nil {
			break
		}
		if fn != nil {
			fn(&e)
		}
		off += 9 + n
	}
	return int64(off), nil
}
