// Package account is the wide-event resource-accounting plane: exactly
// one structured record per completed generate request, fine-tune job and
// train run, carrying identity (tenant, route, adapter, trace id), the
// outcome, and the full resource vector — tokens, decode steps,
// dense-equivalent vs executed FLOPs and the savings attributed to
// predictor-gated sparsity, peak KV footprint, arena traffic, queue wait
// and phase durations. Events join the other observability planes by
// trace id: the span tree at /debug/traces, the SLO verdict and the
// admission decision are all stamped into the same record.
//
// Events are assembled incrementally on the hot path at zero allocations
// (preallocated per-sequence accumulators in infer and train own the
// struct; recording is plain field arithmetic) and emitted once at
// retire/completion into an in-memory ring plus an optional append-only
// segmented binary log on disk (crash-tolerant replay, atomic segment
// rotation, size/age retention). GET /debug/events and GET /v1/usage in
// internal/serve are the query surfaces.
package account

import (
	"slices"
	"time"
)

// Event kinds.
const (
	KindGenerate   = "generate"
	KindFinetune   = "finetune"
	KindExperiment = "experiment"
	KindTrain      = "train"
)

// Event is one wide record: everything the system knows about one
// completed unit of work. String fields are small and interned by the
// caller; the struct is copied by value into the ring on emit.
type Event struct {
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"` // generate | finetune | experiment | train
	Tenant  string    `json:"tenant"`
	Route   string    `json:"route,omitempty"`
	Adapter string    `json:"adapter,omitempty"`
	Base    string    `json:"base,omitempty"`
	TraceID string    `json:"trace_id,omitempty"`

	// Outcome is the unit's terminal state: a finish reason for generates
	// (stop, length, max_seq, cancelled, error), a job status for jobs
	// (done, failed, cancelled), "shed" for requests refused at admission.
	Outcome string `json:"outcome"`
	// Limit is the admission controller's verdict: "admitted", or the
	// shed reason (rate_limited, queue_full, timeout, draining,
	// cancelled). Empty when no limiter guards the route.
	Limit string `json:"limit,omitempty"`
	// SLO is the SLO engine's readiness verdict at emit time: empty while
	// healthy, the firing status (e.g. "slo_firing") otherwise.
	SLO string `json:"slo,omitempty"`

	PromptTokens int64 `json:"prompt_tokens,omitempty"`
	OutputTokens int64 `json:"output_tokens,omitempty"`
	DecodeSteps  int64 `json:"decode_steps,omitempty"`
	PlannedSteps int64 `json:"planned_steps,omitempty"` // steps under a sparsity plan
	TrainSteps   int64 `json:"train_steps,omitempty"`   // fine-tuning steps (job/train events)

	DenseFLOPs     int64 `json:"dense_flops,omitempty"`
	ExecFLOPs      int64 `json:"exec_flops,omitempty"`
	MLPSavedFLOPs  int64 `json:"mlp_saved_flops,omitempty"`
	AttnSavedFLOPs int64 `json:"attn_saved_flops,omitempty"`

	PeakKVRows  int64 `json:"peak_kv_rows,omitempty"`
	PeakKVBytes int64 `json:"peak_kv_bytes,omitempty"`
	ArenaBytes  int64 `json:"arena_bytes,omitempty"` // workspace-arena gets × mean buffer, proxy: gets

	QueueWaitNs int64 `json:"queue_wait_ns,omitempty"`
	PrefillNs   int64 `json:"prefill_ns,omitempty"`
	DecodeNs    int64 `json:"decode_ns,omitempty"`
	TotalNs     int64 `json:"total_ns,omitempty"`
}

// SavedFLOPs is the total sparsity saving across layer kinds.
func (e *Event) SavedFLOPs() int64 { return e.MLPSavedFLOPs + e.AttnSavedFLOPs }

// Shed reports whether the event records a request refused at admission.
func (e *Event) Shed() bool { return e.Outcome == "shed" }

// Usage is a cumulative per-tenant (or global) rollup — the billing/load
// signal GET /v1/usage serves. Conservation invariant: summing any field
// across tenants equals the matching global lexp_account_* counter.
type Usage struct {
	Requests     int64 `json:"requests"`
	Shed         int64 `json:"shed"`
	PromptTokens int64 `json:"prompt_tokens"`
	OutputTokens int64 `json:"output_tokens"`
	DenseFLOPs   int64 `json:"dense_flops"`
	ExecFLOPs    int64 `json:"exec_flops"`
	SavedFLOPs   int64 `json:"saved_flops"`
}

func (u *Usage) add(e *Event) {
	u.Requests++
	if e.Shed() {
		u.Shed++
	}
	u.PromptTokens += e.PromptTokens
	u.OutputTokens += e.OutputTokens
	u.DenseFLOPs += e.DenseFLOPs
	u.ExecFLOPs += e.ExecFLOPs
	u.SavedFLOPs += e.SavedFLOPs()
}

// Aggregate is the ?agg=sum rollup over a filtered event set.
type Aggregate struct {
	Events       int64 `json:"events"`
	Shed         int64 `json:"shed"`
	PromptTokens int64 `json:"prompt_tokens"`
	OutputTokens int64 `json:"output_tokens"`
	DecodeSteps  int64 `json:"decode_steps"`
	DenseFLOPs   int64 `json:"dense_flops"`
	ExecFLOPs    int64 `json:"exec_flops"`
	SavedFLOPs   int64 `json:"saved_flops"`
	PeakKVBytes  int64 `json:"peak_kv_bytes"` // max across events
	TotalNs      int64 `json:"total_ns"`
}

// Sum folds a filtered event set into totals.
func Sum(events []Event) Aggregate {
	var a Aggregate
	for i := range events {
		e := &events[i]
		a.Events++
		if e.Shed() {
			a.Shed++
		}
		a.PromptTokens += e.PromptTokens
		a.OutputTokens += e.OutputTokens
		a.DecodeSteps += e.DecodeSteps
		a.DenseFLOPs += e.DenseFLOPs
		a.ExecFLOPs += e.ExecFLOPs
		a.SavedFLOPs += e.SavedFLOPs()
		if e.PeakKVBytes > a.PeakKVBytes {
			a.PeakKVBytes = e.PeakKVBytes
		}
		a.TotalNs += e.TotalNs
	}
	return a
}

// Quantiles is a ?agg=pNN rollup: the q-th percentile of the per-event
// distributions that matter operationally.
type Quantiles struct {
	Q            float64 `json:"q"`
	Events       int64   `json:"events"`
	TotalNs      int64   `json:"total_ns"`
	QueueWaitNs  int64   `json:"queue_wait_ns"`
	OutputTokens int64   `json:"output_tokens"`
	ExecFLOPs    int64   `json:"exec_flops"`
}

// Percentile computes the q-th (0 < q <= 1) percentile rollup using the
// nearest-rank method over the filtered event set.
func Percentile(events []Event, q float64) Quantiles {
	out := Quantiles{Q: q, Events: int64(len(events))}
	if len(events) == 0 {
		return out
	}
	rank := int(q*float64(len(events)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(events) {
		rank = len(events)
	}
	out.TotalNs = nthInt64(events, rank, func(e *Event) int64 { return e.TotalNs })
	out.QueueWaitNs = nthInt64(events, rank, func(e *Event) int64 { return e.QueueWaitNs })
	out.OutputTokens = nthInt64(events, rank, func(e *Event) int64 { return e.OutputTokens })
	out.ExecFLOPs = nthInt64(events, rank, func(e *Event) int64 { return e.ExecFLOPs })
	return out
}

// nthInt64 returns the rank-th smallest value of field over events.
func nthInt64(events []Event, rank int, field func(*Event) int64) int64 {
	vals := make([]int64, len(events))
	for i := range events {
		vals[i] = field(&events[i])
	}
	slices.Sort(vals)
	return vals[rank-1]
}
