package account

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"longexposure/internal/obs"
)

func sampleEvent(i int) Event {
	return Event{
		Time:           time.Unix(1700000000+int64(i), 123456789),
		Kind:           KindGenerate,
		Tenant:         fmt.Sprintf("tenant-%d", i%3),
		Route:          "POST /v1/generate",
		Adapter:        "ad-abc",
		Base:           "sim-small",
		TraceID:        fmt.Sprintf("%032x", i+1),
		Outcome:        "stop",
		Limit:          "admitted",
		PromptTokens:   int64(4 + i),
		OutputTokens:   int64(8 + i),
		DecodeSteps:    int64(9 + i),
		PlannedSteps:   int64(8 + i),
		TrainSteps:     0,
		DenseFLOPs:     int64(1000 * (i + 1)),
		ExecFLOPs:      int64(700 * (i + 1)),
		MLPSavedFLOPs:  int64(200 * (i + 1)),
		AttnSavedFLOPs: int64(100 * (i + 1)),
		PeakKVRows:     int64(12 + i),
		PeakKVBytes:    int64(4096 * (i + 1)),
		ArenaBytes:     int64(1 << 16),
		QueueWaitNs:    int64(1000 * i),
		PrefillNs:      int64(5000 * (i + 1)),
		DecodeNs:       int64(9000 * (i + 1)),
		TotalNs:        int64(20000 * (i + 1)),
	}
}

func TestCodecRoundtrip(t *testing.T) {
	in := sampleEvent(7)
	frame := encodeFrame(nil, &in)
	var out Event
	if err := decodeRecord(frame[9:], &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Time.Equal(in.Time) {
		t.Fatalf("time: got %v want %v", out.Time, in.Time)
	}
	out.Time = in.Time
	if out != in {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	in := sampleEvent(1)
	frame := encodeFrame(nil, &in)
	var out Event
	for cut := 0; cut < len(frame)-9; cut += 7 {
		if err := decodeRecord(frame[9:9+cut], &out); err == nil {
			t.Fatalf("truncated payload of %d bytes decoded without error", cut)
		}
	}
}

func TestPlaneRingFilterAndUsage(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := New(Config{Ring: 8, Metrics: obs.NewAccountMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		ev := sampleEvent(i)
		p.Emit(&ev)
	}

	// Ring bounded at 8: the 4 oldest rolled off.
	all := p.Events(Filter{})
	if len(all) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(all))
	}
	if all[0].PromptTokens != 4+4 {
		t.Fatalf("oldest retained event is %+v, want the 5th emitted", all[0])
	}

	// Filters compose.
	byTenant := p.Events(Filter{Tenant: "tenant-1"})
	for _, e := range byTenant {
		if e.Tenant != "tenant-1" {
			t.Fatalf("tenant filter leaked %+v", e)
		}
	}
	if got := p.Events(Filter{TraceID: fmt.Sprintf("%032x", 11+1)}); len(got) != 1 {
		t.Fatalf("trace_id filter returned %d events, want 1", len(got))
	}
	if got := p.Events(Filter{Outcome: "shed"}); len(got) != 0 {
		t.Fatalf("outcome filter returned %d events, want 0", len(got))
	}
	if got := p.Events(Filter{Limit: 3}); len(got) != 3 {
		t.Fatalf("limit returned %d events, want 3", len(got))
	}

	// Usage rollups cover ALL 12 emissions (rollups are cumulative, not
	// ring-bounded) and the tenant sum equals the global total — the
	// conservation invariant.
	tenants, total := p.UsageByTenant()
	var sum Usage
	for _, u := range tenants {
		sum.Requests += u.Requests
		sum.PromptTokens += u.PromptTokens
		sum.OutputTokens += u.OutputTokens
		sum.DenseFLOPs += u.DenseFLOPs
		sum.ExecFLOPs += u.ExecFLOPs
		sum.SavedFLOPs += u.SavedFLOPs
	}
	if sum != total {
		t.Fatalf("tenant sum %+v != total %+v", sum, total)
	}
	if total.Requests != 12 {
		t.Fatalf("total.Requests = %d, want 12", total.Requests)
	}

	// And the metric counters agree with the rollups exactly.
	for _, c := range []struct {
		metric string
		want   float64
	}{
		{"lexp_account_prompt_tokens_total", float64(total.PromptTokens)},
		{"lexp_account_output_tokens_total", float64(total.OutputTokens)},
		{"lexp_account_flops_dense_total", float64(total.DenseFLOPs)},
		{"lexp_account_flops_executed_total", float64(total.ExecFLOPs)},
	} {
		got, ok := reg.Value(c.metric)
		if !ok || got != c.want {
			t.Fatalf("%s = %v (ok=%v), want %v", c.metric, got, ok, c.want)
		}
	}
	saved, _, ok := reg.SumValues("lexp_flops_saved_total")
	if !ok || saved != float64(total.SavedFLOPs) {
		t.Fatalf("lexp_flops_saved_total = %v (ok=%v), want %v", saved, ok, total.SavedFLOPs)
	}
	if got, _ := reg.Value("lexp_account_events_total", KindGenerate); got != 12 {
		t.Fatalf("lexp_account_events_total{generate} = %v, want 12", got)
	}
}

func TestAggregates(t *testing.T) {
	events := make([]Event, 10)
	for i := range events {
		events[i] = sampleEvent(i)
	}
	sum := Sum(events)
	if sum.Events != 10 || sum.PromptTokens != 4*10+45 {
		t.Fatalf("sum = %+v", sum)
	}
	if sum.PeakKVBytes != 4096*10 {
		t.Fatalf("PeakKVBytes max = %d, want %d", sum.PeakKVBytes, 4096*10)
	}
	p50 := Percentile(events, 0.5)
	if p50.TotalNs != 20000*5 {
		t.Fatalf("p50 TotalNs = %d, want %d", p50.TotalNs, 20000*5)
	}
	p100 := Percentile(events, 1)
	if p100.TotalNs != 20000*10 {
		t.Fatalf("p100 TotalNs = %d, want %d", p100.TotalNs, 20000*10)
	}
	if q := Percentile(nil, 0.9); q.Events != 0 {
		t.Fatalf("empty percentile = %+v", q)
	}
}

func TestEmitZeroAllocs(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ev := sampleEvent(0)
	ev.Tenant = "warm" // one tenant: the usage map entry exists after warmup
	p.Emit(&ev)
	allocs := testing.AllocsPerRun(200, func() { p.Emit(&ev) })
	if allocs > 0 {
		t.Fatalf("Emit allocates %.1f/op, want 0", allocs)
	}
}

func TestSegmentRotationReplayAndRetention(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few events.
	p, err := New(Config{Dir: dir, Ring: 256, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		ev := sampleEvent(i)
		p.Emit(&ev)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "events-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected multiple sealed segments, got %v", segs)
	}

	// Reopen: every event replays, usage rollups are rebuilt.
	p2, err := New(Config{Dir: dir, Ring: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	_, total := p2.UsageByTenant()
	if total.Requests != n {
		t.Fatalf("replayed %d events, want %d", total.Requests, n)
	}
	if got := p2.Events(Filter{}); len(got) != n || got[0].PromptTokens != 4 {
		t.Fatalf("replayed ring has %d events (first %+v)", len(got), got[0])
	}

	// Size-based pruning: cap total bytes below what is on disk and force
	// a rotation; the oldest sealed segments must be deleted.
	p3, err := New(Config{Dir: dir, Ring: 256, SegmentBytes: 512, MaxBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ev := sampleEvent(i)
		p3.Emit(&ev)
	}
	p3.Close()
	after, _ := filepath.Glob(filepath.Join(dir, "events-*.seg"))
	var totalBytes int64
	for _, s := range after {
		fi, _ := os.Stat(s)
		totalBytes += fi.Size()
	}
	if len(after) >= len(segs)+5 || totalBytes > 4096 {
		t.Fatalf("pruning ineffective: %d sealed segments, %d bytes", len(after), totalBytes)
	}
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev := sampleEvent(i)
		p.Emit(&ev)
	}
	p.Close()

	// Simulate a crash mid-write: append a valid frame prefix with a
	// truncated payload to the active segment.
	opens, _ := filepath.Glob(filepath.Join(dir, "events-*.open"))
	if len(opens) != 1 {
		t.Fatalf("want one active segment, got %v", opens)
	}
	full := encodeFrame(nil, &Event{Kind: KindGenerate, Tenant: "torn", Time: time.Unix(1, 0)})
	torn := full[:len(full)-11]
	f, err := os.OpenFile(opens[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the torn record is dropped, the 5 good ones replay, and
	// appending resumes cleanly at the truncation point.
	p2, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Events(Filter{}); len(got) != 5 {
		t.Fatalf("replayed %d events after torn tail, want 5", len(got))
	}
	ev := sampleEvent(9)
	p2.Emit(&ev)
	p2.Close()

	p3, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	got := p3.Events(Filter{})
	if len(got) != 6 {
		t.Fatalf("after resume, replayed %d events, want 6", len(got))
	}
	if got[5].PromptTokens != 4+9 {
		t.Fatalf("resumed append replayed wrong: %+v", got[5])
	}
}

func TestCorruptCRCStopsReplay(t *testing.T) {
	dir := t.TempDir()
	p, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev := sampleEvent(i)
		p.Emit(&ev)
	}
	p.Close()

	opens, _ := filepath.Glob(filepath.Join(dir, "events-*.open"))
	data, err := os.ReadFile(opens[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the LAST record: its CRC fails, earlier
	// records must still replay. Find it by walking the frames.
	off := len(segMagic)
	last := off
	for off < len(data) {
		if data[off] != recMagic {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off+1:]))
		last = off
		off += 9 + n
	}
	data[last+9+4] ^= 0xFF
	if err := os.WriteFile(opens[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, err := New(Config{Dir: dir, Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Events(Filter{}); len(got) != 2 {
		t.Fatalf("replayed %d events past a corrupt CRC, want 2", len(got))
	}
}

func TestConcurrentEmitConservation(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := New(Config{Ring: 64, Metrics: obs.NewAccountMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ev := sampleEvent(i)
				ev.Tenant = fmt.Sprintf("tenant-%d", w%4)
				p.Emit(&ev)
			}
		}(w)
	}
	wg.Wait()
	tenants, total := p.UsageByTenant()
	if total.Requests != workers*per {
		t.Fatalf("total.Requests = %d, want %d", total.Requests, workers*per)
	}
	var sum Usage
	for _, u := range tenants {
		sum.Requests += u.Requests
		sum.PromptTokens += u.PromptTokens
		sum.ExecFLOPs += u.ExecFLOPs
	}
	if sum.Requests != total.Requests || sum.PromptTokens != total.PromptTokens || sum.ExecFLOPs != total.ExecFLOPs {
		t.Fatalf("tenant sum %+v != total %+v under concurrency", sum, total)
	}
	if got, _ := reg.Value("lexp_account_prompt_tokens_total"); got != float64(total.PromptTokens) {
		t.Fatalf("metric prompt tokens %v != rollup %d", got, total.PromptTokens)
	}
}

func TestHealthStamping(t *testing.T) {
	p, err := New(Config{Ring: 8})
	if err != nil {
		t.Fatal(err)
	}
	firing := false
	p.SetHealth(func() (bool, string) {
		if firing {
			return false, "slo_firing"
		}
		return true, ""
	})
	ev := sampleEvent(0)
	p.Emit(&ev)
	firing = true
	ev2 := sampleEvent(1)
	p.Emit(&ev2)
	got := p.Events(Filter{})
	if got[0].SLO != "" || got[1].SLO != "slo_firing" {
		t.Fatalf("SLO stamping wrong: %q then %q", got[0].SLO, got[1].SLO)
	}
}

func TestTrainAccumulator(t *testing.T) {
	var a TrainAccumulator
	a.AddStep(64, 1000, 2*time.Millisecond)
	a.AddStep(64, 1000, 3*time.Millisecond)
	e := &a.Event
	if e.TrainSteps != 2 || e.PromptTokens != 128 || e.DenseFLOPs != 2000 || e.ExecFLOPs != 2000 {
		t.Fatalf("accumulator = %+v", e)
	}
	if e.SavedFLOPs() != 0 {
		t.Fatalf("train events must carry zero sparsity savings, got %d", e.SavedFLOPs())
	}
	if e.TotalNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("TotalNs = %d", e.TotalNs)
	}
}

func TestKindFilterAndShed(t *testing.T) {
	p, err := New(Config{Ring: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen := Event{Kind: KindGenerate, Tenant: "a", Outcome: "stop"}
	shed := Event{Kind: KindGenerate, Tenant: "a", Outcome: "shed", Limit: "rate_limited"}
	job := Event{Kind: KindFinetune, Tenant: "a", Outcome: "done", TrainSteps: 4}
	for _, e := range []*Event{&gen, &shed, &job} {
		p.Emit(e)
	}
	if got := p.Events(Filter{Kind: KindFinetune}); len(got) != 1 || got[0].TrainSteps != 4 {
		t.Fatalf("kind filter = %+v", got)
	}
	_, total := p.UsageByTenant()
	if total.Requests != 3 || total.Shed != 1 {
		t.Fatalf("usage = %+v", total)
	}
	if !strings.Contains(fmt.Sprint(p.Events(Filter{Outcome: "shed"})), "rate_limited") {
		t.Fatal("shed event lost its limit verdict")
	}
}
