package exposer

import (
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// The Figure 9 baselines: pre-defined sparse-attention masks applied
// uniformly to every head, and the shadowy-sparsity measurements Long
// Exposure is compared against.

// LongformerPattern is the sliding-window + global-token mask of
// Longformer, uniform across heads.
func LongformerPattern() sparse.Pattern {
	return sparse.Pattern{Kind: sparse.KindLocalGlobal, Window: 2, Global: 1}
}

// BigBirdPattern is the window + global + random mask of Big Bird, uniform
// across heads.
func BigBirdPattern() sparse.Pattern {
	return sparse.Pattern{Kind: sparse.KindBigBird, Window: 2, Global: 1, RandomPerRow: 2, Seed: 41}
}

// UniformLayouts replicates one pattern across all heads — how the paper's
// baselines apply their masks.
func UniformLayouts(p sparse.Pattern, pool *sparse.Pool, heads, nb int) []*sparse.Layout {
	l := pool.Get(p, nb)
	out := make([]*sparse.Layout, heads)
	for h := range out {
		out[h] = l
	}
	return out
}

// AttentionSparsity reports the mean sparsity ratio (inactive blocks /
// causal blocks) across head layouts. The causal triangle, not the full
// square, is the denominator: acausal blocks are never computed by anyone.
func AttentionSparsity(layouts []*sparse.Layout) float64 {
	if len(layouts) == 0 {
		return 0
	}
	var total float64
	for _, l := range layouts {
		nb := l.NB()
		causal := nb * (nb + 1) / 2
		total += 1 - float64(l.NNZ())/float64(causal)
	}
	return total / float64(len(layouts))
}

// ShadowyMLPSparsity measures the sparsity of the *overall* activations
// (paper Fig 4d): a neuron counts as inactive only if it is inactive for
// every token in the batch — the logical-AND overlap that creates shadowy
// sparsity.
func ShadowyMLPSparsity(mask *tensor.Tensor) float64 {
	tokens, H := mask.Dim(0), mask.Dim(1)
	inactive := 0
	for h := 0; h < H; h++ {
		everActive := false
		for i := 0; i < tokens; i++ {
			if mask.Data[i*H+h] != 0 {
				everActive = true
				break
			}
		}
		if !everActive {
			inactive++
		}
	}
	return float64(inactive) / float64(H)
}

// PerTokenMLPSparsity measures the mean per-token sparsity (paper Fig 4c):
// the fraction of neurons inactive for each token, averaged — high even
// when the overall sparsity has collapsed into shadow.
func PerTokenMLPSparsity(mask *tensor.Tensor) float64 {
	tokens, H := mask.Dim(0), mask.Dim(1)
	var s float64
	for i := 0; i < tokens; i++ {
		inactive := 0
		for h := 0; h < H; h++ {
			if mask.Data[i*H+h] == 0 {
				inactive++
			}
		}
		s += float64(inactive) / float64(H)
	}
	return s / float64(tokens)
}

// NeuronBlockSparsity reports the block-level sparsity achieved by a filter
// result: 1 − active blocks / total blocks.
func NeuronBlockSparsity(active []int, hiddenDim, blk int) float64 {
	nBlk := (hiddenDim + blk - 1) / blk
	return 1 - float64(len(active))/float64(nBlk)
}
