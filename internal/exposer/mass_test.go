package exposer

import (
	"math"
	"testing"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

func TestHeadMaskWithMassNormalized(t *testing.T) {
	e := New(Config{Blk: 4})
	probs := syntheticProbs(16, 4, [][2]int{{2, 0}, {3, 1}})
	_, mass := e.HeadMaskWithMass(probs)
	var sum float64
	for _, v := range mass {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mass sums to %v", sum)
	}
	// Mass concentrates on the hot blocks.
	nb := 4
	if mass[2*nb+0] < mass[3*nb+0] {
		t.Fatal("hot block (2,0) lighter than cold block (3,0)")
	}
}

func TestMassWeightedMatchIgnoresLowMassStragglers(t *testing.T) {
	// Needed mask: a local band plus one straggler block carrying almost no
	// mass. Count-based matching must fall back to dense (the straggler
	// breaks local patterns' recall); mass-based matching must pick local.
	nb := 8
	needed := sparse.NewLayout(nb, func(br, bc int) bool {
		if bc > br {
			return false
		}
		return br-bc <= 1 || (br == 7 && bc == 2) // band + straggler
	})
	mass := make([]float64, nb*nb)
	for br := 0; br < nb; br++ {
		for bc := 0; bc <= br; bc++ {
			if br-bc <= 1 {
				mass[br*nb+bc] = 1
			}
		}
	}
	mass[7*nb+2] = 1e-6 // straggler has negligible mass

	e := New(Config{Blk: 4, MinRecall: 0.95})
	patMass, layoutMass := e.MatchToPool(needed, mass)
	patCount, _ := e.MatchToPool(needed, nil)

	if patMass.Kind == sparse.KindDense {
		t.Fatalf("mass-weighted match fell back to dense")
	}
	if layoutMass.Density() >= 0.9*e.pool.Get(sparse.Pattern{Kind: sparse.KindDense}, nb).Density() {
		t.Fatal("mass-weighted match not sparser than dense")
	}
	if patCount.Kind != sparse.KindDense {
		t.Fatalf("count-based match unexpectedly found %v — straggler should break recall", patCount)
	}
}

func TestHeadMasksWithMassBatchMean(t *testing.T) {
	e := New(Config{Blk: 4})
	p1 := syntheticProbs(8, 4, [][2]int{{1, 0}})
	p2 := syntheticProbs(8, 4, nil)
	_, masses := e.HeadMasksWithMass([]*tensor.Tensor{p1, p2}, 2, 1)
	var sum float64
	for _, v := range masses[0] {
		sum += v
	}
	// Mean of two normalized distributions stays normalized.
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("batch-mean mass sums to %v", sum)
	}
}
