// Package exposer implements the Shadowy-sparsity Exposer (paper §IV): the
// component that recovers sparsity hidden by the overlap of per-token
// patterns ("shadowy sparsity").
//
// Attention side: instead of one uniform mask covering every head's critical
// scores (the shadowy baseline), the exposer derives a *head-specific* block
// mask per head and categorizes it into the operator pool's atomic patterns.
//
// MLP side: overall activations look dense because different tokens activate
// different neurons; the exposer ranks neuron blocks by importance
// (activation frequency × magnitude) and filters out blocks below a
// threshold defined as a fraction of the peak block importance, turning
// scattered activation sparsity into structured block-wise sparsity.
package exposer

import (
	"fmt"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Config tunes the exposer.
type Config struct {
	Blk           int     // block size in tokens / neurons
	AttnThreshold float64 // keep a block if its peak prob ≥ θ · row peak (default 0.1)
	MLPThreshold  float64 // keep a neuron block if importance ≥ θ · peak (default 0.02, Fig 9's "2%")
	MinRecall     float64 // pool match must cover this fraction of needed blocks (default 0.9)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Blk == 0 {
		c.Blk = 16
	}
	if c.AttnThreshold == 0 {
		c.AttnThreshold = 0.1
	}
	if c.MLPThreshold == 0 {
		c.MLPThreshold = 0.02
	}
	if c.MinRecall == 0 {
		c.MinRecall = 0.85
	}
	return c
}

// Exposer derives sparse patterns from dense activations. It owns the
// offline pattern pool and its pre-computed layouts.
type Exposer struct {
	cfg      Config
	pool     *sparse.Pool
	patterns []sparse.Pattern
}

// New constructs an exposer over the default atomic pattern pool.
func New(cfg Config) *Exposer {
	return &Exposer{
		cfg:      cfg.withDefaults(),
		pool:     sparse.NewPool(),
		patterns: sparse.DefaultPool(),
	}
}

// Config returns the effective (defaulted) configuration.
func (e *Exposer) Config() Config { return e.cfg }

// Pool exposes the layout pool for reuse by the predictor.
func (e *Exposer) Pool() *sparse.Pool { return e.pool }

// Patterns exposes the atomic pattern list.
func (e *Exposer) Patterns() []sparse.Pattern { return e.patterns }

// HeadMask derives the needed-block mask of one head from its dense
// probability matrix [s, s]: block (br, bc) is needed if it holds a
// probability ≥ θ times the peak probability of any row crossing it.
// The diagonal is always needed (causal self-attention).
func (e *Exposer) HeadMask(probs *tensor.Tensor) *sparse.Layout {
	mask, _ := e.HeadMaskWithMass(probs)
	return mask
}

// HeadMaskWithMass additionally returns the attention-mass distribution
// over the block grid (length nb·nb, normalized to sum 1): how much of the
// probability mass each block carries. The mass weights pool matching —
// a candidate pattern must retain most of the *mass*, not most of the
// block count, so low-mass straggler blocks don't force a dense fallback.
func (e *Exposer) HeadMaskWithMass(probs *tensor.Tensor) (*sparse.Layout, []float64) {
	s := probs.Dim(0)
	blk := e.cfg.Blk
	if s%blk != 0 {
		panic(fmt.Sprintf("exposer: seq %d not a multiple of blk %d", s, blk))
	}
	nb := s / blk
	needed := make([]bool, nb*nb)
	mass := make([]float64, nb*nb)
	theta := float32(e.cfg.AttnThreshold)
	var total float64
	for i := 0; i < s; i++ {
		row := probs.Row(i)
		var peak float32
		for j := 0; j <= i; j++ {
			if row[j] > peak {
				peak = row[j]
			}
		}
		cut := theta * peak
		br := i / blk
		for j := 0; j <= i; j++ {
			if row[j] >= cut {
				needed[br*nb+j/blk] = true
			}
			mass[br*nb+j/blk] += float64(row[j])
			total += float64(row[j])
		}
	}
	if total > 0 {
		for i := range mass {
			mass[i] /= total
		}
	}
	for b := 0; b < nb; b++ {
		needed[b*nb+b] = true
	}
	mask := sparse.NewLayout(nb, func(br, bc int) bool { return bc <= br && needed[br*nb+bc] })
	return mask, mass
}

// HeadMasks derives one needed-block mask per head, reducing over the batch
// (a block needed by any batch element is needed). probs is indexed
// batch*heads + head, as nn.MultiHeadAttention.DenseProbs returns it.
func (e *Exposer) HeadMasks(probs []*tensor.Tensor, batch, heads int) []*sparse.Layout {
	masks, _ := e.HeadMasksWithMass(probs, batch, heads)
	return masks
}

// HeadMasksWithMass batch-reduces masks (union) and masses (mean) per head.
func (e *Exposer) HeadMasksWithMass(probs []*tensor.Tensor, batch, heads int) ([]*sparse.Layout, [][]float64) {
	masks := make([]*sparse.Layout, heads)
	masses := make([][]float64, heads)
	for h := 0; h < heads; h++ {
		var acc *sparse.Layout
		var accMass []float64
		for b := 0; b < batch; b++ {
			m, mm := e.HeadMaskWithMass(probs[b*heads+h])
			if acc == nil {
				acc, accMass = m, mm
			} else {
				acc = acc.Union(m)
				for i := range accMass {
					accMass[i] += mm[i]
				}
			}
		}
		if batch > 1 {
			inv := 1 / float64(batch)
			for i := range accMass {
				accMass[i] *= inv
			}
		}
		masks[h], masses[h] = acc, accMass
	}
	return masks, masses
}

// UniformMask is the shadowy baseline: a single mask that must cover the
// significant scores of *all* heads — the union of the per-head masks. Its
// density is what Figure 9 calls "Shadowy".
func UniformMask(heads []*sparse.Layout) *sparse.Layout {
	acc := heads[0]
	for _, h := range heads[1:] {
		acc = acc.Union(h)
	}
	return acc
}

// MatchToPool categorizes a needed-block mask into the best atomic pattern:
// among pool patterns whose recall meets MinRecall, pick the sparsest; if
// none qualifies, fall back to dense. Recall is mass-weighted when mass is
// non-nil (covered attention mass / total mass), otherwise block-count
// based. Returning a pool member is what lets the operator reuse its
// pre-computed layout tables — the offline/online split of §VI-A.
func (e *Exposer) MatchToPool(mask *sparse.Layout, mass []float64) (sparse.Pattern, *sparse.Layout) {
	nb := mask.NB()
	best := sparse.Pattern{Kind: sparse.KindDense}
	bestLayout := e.pool.Get(best, nb)
	bestNNZ := bestLayout.NNZ()
	var totalMass float64
	for _, v := range mass {
		totalMass += v
	}
	for _, p := range e.patterns {
		l := e.pool.Get(p, nb)
		recall := 1.0
		switch {
		case mass != nil && totalMass > 0:
			var covered float64
			for br := 0; br < nb; br++ {
				for _, bc := range l.RowBlocks(br) {
					covered += mass[br*nb+int(bc)]
				}
			}
			recall = covered / totalMass
		case mask.NNZ() > 0:
			recall = float64(l.Overlap(mask)) / float64(mask.NNZ())
		}
		if recall < e.cfg.MinRecall {
			continue
		}
		if l.NNZ() < bestNNZ {
			best, bestLayout, bestNNZ = p, l, l.NNZ()
		}
	}
	return best, bestLayout
}

// ExposeAttention is the full attention pipeline: per-head masks with mass
// → mass-weighted pool categorization → per-head layouts ready for the
// sparse operators. It returns the chosen patterns alongside the layouts.
func (e *Exposer) ExposeAttention(probs []*tensor.Tensor, batch, heads int) ([]sparse.Pattern, []*sparse.Layout) {
	masks, masses := e.HeadMasksWithMass(probs, batch, heads)
	pats := make([]sparse.Pattern, heads)
	layouts := make([]*sparse.Layout, heads)
	for h, m := range masks {
		pats[h], layouts[h] = e.MatchToPool(m, masses[h])
	}
	return pats, layouts
}

// NeuronBlockImportance scores each neuron block from a post-ReLU hidden
// activation matrix [tokens, H]: importance of a neuron is the mean of its
// activation magnitudes over tokens (frequency and value combined, §IV-B),
// and a block scores the mean of its neurons.
func NeuronBlockImportance(hidden *tensor.Tensor, blk int) []float64 {
	tokens, H := hidden.Dim(0), hidden.Dim(1)
	nBlk := (H + blk - 1) / blk
	imp := make([]float64, nBlk)
	for i := 0; i < tokens; i++ {
		row := hidden.Data[i*H : (i+1)*H]
		for h, v := range row {
			if v > 0 {
				imp[h/blk] += float64(v)
			} else if v < 0 {
				imp[h/blk] -= float64(v)
			}
		}
	}
	for b := range imp {
		width := blk
		if (b+1)*blk > H {
			width = H - b*blk
		}
		imp[b] /= float64(tokens * width)
	}
	return imp
}

// FilterNeuronBlocks applies the threshold filter: blocks whose importance
// is below θ · peak are treated as inactive. The returned indices are
// sorted ascending (the order the sparse kernels stream them in).
func (e *Exposer) FilterNeuronBlocks(hidden *tensor.Tensor) []int {
	imp := NeuronBlockImportance(hidden, e.cfg.Blk)
	var peak float64
	for _, v := range imp {
		if v > peak {
			peak = v
		}
	}
	cut := e.cfg.MLPThreshold * peak
	var out []int
	for b, v := range imp {
		if v >= cut && v > 0 {
			out = append(out, b)
		}
	}
	if len(out) == 0 { // never return an empty plan: keep the peak block
		best := 0
		for b, v := range imp {
			if v > imp[best] {
				best = b
			}
		}
		out = []int{best}
	}
	return out
}

// FilterNeuronBlocksAt applies the filter with an explicit threshold,
// for the Figure 9 threshold sweep.
func FilterNeuronBlocksAt(hidden *tensor.Tensor, blk int, threshold float64) []int {
	e := New(Config{Blk: blk, MLPThreshold: threshold})
	return e.FilterNeuronBlocks(hidden)
}
