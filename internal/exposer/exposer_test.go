package exposer

import (
	"testing"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// syntheticProbs builds an s×s causal probability matrix concentrated on
// the blocks listed in hot (block coordinates), with tiny mass elsewhere.
func syntheticProbs(s, blk int, hot [][2]int) *tensor.Tensor {
	p := tensor.New(s, s)
	isHot := make(map[[2]int]bool)
	for _, h := range hot {
		isHot[h] = true
	}
	for i := 0; i < s; i++ {
		// Base: tiny uniform causal mass.
		for j := 0; j <= i; j++ {
			p.Set(0.001, i, j)
		}
		for j := 0; j <= i; j++ {
			if isHot[[2]int{i / blk, j / blk}] {
				p.Set(0.5, i, j)
			}
		}
	}
	return p
}

func TestHeadMaskFindsHotBlocks(t *testing.T) {
	e := New(Config{Blk: 4, AttnThreshold: 0.1})
	hot := [][2]int{{2, 0}, {3, 1}}
	probs := syntheticProbs(16, 4, hot)
	m := e.HeadMask(probs)
	if !m.IsCausal() || !m.CoversDiagonal() {
		t.Fatal("mask violates causal invariants")
	}
	for _, h := range hot {
		if !m.Active(h[0], h[1]) {
			t.Fatalf("hot block %v not captured", h)
		}
	}
	// Cold off-diagonal block must be filtered: (3,0) has only 0.001 mass
	// while row peak is 0.5.
	if m.Active(3, 0) {
		t.Fatal("cold block captured")
	}
}

func TestHeadMaskDiagonalAlwaysActive(t *testing.T) {
	e := New(Config{Blk: 4})
	probs := tensor.New(8, 8) // all-zero probabilities
	m := e.HeadMask(probs)
	if !m.CoversDiagonal() {
		t.Fatal("diagonal dropped on degenerate input")
	}
}

func TestHeadMasksBatchUnion(t *testing.T) {
	e := New(Config{Blk: 4, AttnThreshold: 0.1})
	// Two batch elements exciting different blocks of the same head.
	p1 := syntheticProbs(16, 4, [][2]int{{3, 0}})
	p2 := syntheticProbs(16, 4, [][2]int{{3, 1}})
	masks := e.HeadMasks([]*tensor.Tensor{p1, p2}, 2, 1)
	if len(masks) != 1 {
		t.Fatalf("got %d masks", len(masks))
	}
	if !masks[0].Active(3, 0) || !masks[0].Active(3, 1) {
		t.Fatal("batch union lost a needed block")
	}
}

// TestShadowyEffectOnAttention reproduces the paper's core observation:
// heads with disjoint patterns force a uniform mask to be much denser than
// any head-specific mask.
func TestShadowyEffectOnAttention(t *testing.T) {
	e := New(Config{Blk: 4, AttnThreshold: 0.1})
	heads := []*tensor.Tensor{
		syntheticProbs(32, 4, [][2]int{{4, 0}, {5, 0}, {6, 0}, {7, 0}}),
		syntheticProbs(32, 4, [][2]int{{4, 3}, {5, 4}, {6, 5}, {7, 6}}),
		syntheticProbs(32, 4, [][2]int{{7, 1}, {7, 2}, {7, 3}}),
	}
	masks := e.HeadMasks(heads, 1, 3)
	uniform := UniformMask(masks)
	perHead := AttentionSparsity(masks)
	uniformSparsity := AttentionSparsity([]*sparse.Layout{uniform})
	if perHead <= uniformSparsity {
		t.Fatalf("head-specific sparsity %.3f not better than uniform %.3f", perHead, uniformSparsity)
	}
}

func TestMatchToPoolPicksLocalForLocalMask(t *testing.T) {
	e := New(Config{Blk: 4, MinRecall: 0.9})
	local := sparse.Pattern{Kind: sparse.KindLocal, Window: 2}.Build(8)
	pat, layout := e.MatchToPool(local, nil)
	if pat.Kind == sparse.KindDense {
		t.Fatalf("local mask matched to dense (pattern %v)", pat)
	}
	// Guarantee: recall over the needed mask meets the floor.
	recall := float64(layout.Overlap(local)) / float64(local.NNZ())
	if recall < 0.9 {
		t.Fatalf("match recall %.3f < 0.9", recall)
	}
}

func TestMatchToPoolFallsBackToDense(t *testing.T) {
	e := New(Config{Blk: 4, MinRecall: 0.999})
	// A mask denser than any pool atom: full causal triangle.
	full := sparse.Pattern{Kind: sparse.KindDense}.Build(12)
	pat, _ := e.MatchToPool(full, nil)
	if pat.Kind != sparse.KindDense {
		t.Fatalf("dense-needed mask matched to %v", pat)
	}
}

func TestExposeAttentionEndToEnd(t *testing.T) {
	e := New(Config{Blk: 4, AttnThreshold: 0.1})
	probs := []*tensor.Tensor{
		syntheticProbs(16, 4, [][2]int{{1, 0}, {2, 1}, {3, 2}}), // local-ish
		syntheticProbs(16, 4, [][2]int{{1, 0}, {2, 0}, {3, 0}}), // global-ish
	}
	pats, layouts := e.ExposeAttention(probs, 1, 2)
	if len(pats) != 2 || len(layouts) != 2 {
		t.Fatal("wrong output arity")
	}
	for h, l := range layouts {
		if !l.IsCausal() || !l.CoversDiagonal() {
			t.Fatalf("head %d layout invalid", h)
		}
	}
}

func TestNeuronBlockImportance(t *testing.T) {
	// 2 tokens, 8 neurons, blk 4. Block 0 has strong activations, block 1
	// nearly none.
	hidden := tensor.FromSlice([]float32{
		2, 2, 2, 2, 0, 0, 0, 0.1,
		2, 2, 2, 2, 0, 0, 0, 0,
	}, 2, 8)
	imp := NeuronBlockImportance(hidden, 4)
	if len(imp) != 2 {
		t.Fatalf("got %d blocks", len(imp))
	}
	if imp[0] != 2 {
		t.Fatalf("block 0 importance = %v, want 2", imp[0])
	}
	if imp[1] >= 0.1 {
		t.Fatalf("block 1 importance = %v, want tiny", imp[1])
	}
}

func TestFilterThresholdMonotonic(t *testing.T) {
	// Higher thresholds must never activate more blocks (Fig 9 trend).
	r := tensor.NewRNG(1)
	hidden := tensor.New(16, 64)
	r.FillNormal(hidden, 1)
	tensor.ReLU(hidden, false)
	prev := -1
	for _, th := range []float64{0.01, 0.02, 0.03, 0.05, 0.2, 0.5} {
		n := len(FilterNeuronBlocksAt(hidden, 8, th))
		if prev >= 0 && n > prev {
			t.Fatalf("threshold %v activated %d blocks, more than %d", th, n, prev)
		}
		prev = n
	}
}

func TestFilterNeverEmpty(t *testing.T) {
	hidden := tensor.New(4, 16) // all zeros
	blocks := FilterNeuronBlocksAt(hidden, 4, 0.5)
	if len(blocks) != 1 {
		t.Fatalf("degenerate input gave %d blocks", len(blocks))
	}
}

func TestFilterBlocksSortedAndInRange(t *testing.T) {
	r := tensor.NewRNG(2)
	hidden := tensor.New(8, 32)
	r.FillNormal(hidden, 1)
	tensor.ReLU(hidden, false)
	blocks := FilterNeuronBlocksAt(hidden, 8, 0.01)
	for i, b := range blocks {
		if b < 0 || b >= 4 {
			t.Fatalf("block %d out of range", b)
		}
		if i > 0 && blocks[i] <= blocks[i-1] {
			t.Fatal("blocks not strictly ascending")
		}
	}
}

// TestShadowyEffectOnMLP reproduces Fig 4(c,d): individual tokens are very
// sparse, but the overall (AND-reduced) sparsity collapses.
func TestShadowyEffectOnMLP(t *testing.T) {
	tokens, H := 32, 64
	mask := tensor.New(tokens, H)
	r := tensor.NewRNG(3)
	// Each token activates a random 20% subset — different per token.
	for i := 0; i < tokens; i++ {
		for h := 0; h < H; h++ {
			if r.Float64() < 0.2 {
				mask.Set(1, i, h)
			}
		}
	}
	perToken := PerTokenMLPSparsity(mask)
	overall := ShadowyMLPSparsity(mask)
	if perToken < 0.7 {
		t.Fatalf("per-token sparsity %.3f unexpectedly low", perToken)
	}
	if overall > 0.15 {
		t.Fatalf("overall sparsity %.3f did not collapse (shadowy effect missing)", overall)
	}
}

func TestBaselinePatternsUniform(t *testing.T) {
	pool := sparse.NewPool()
	ls := UniformLayouts(LongformerPattern(), pool, 4, 8)
	if len(ls) != 4 {
		t.Fatalf("got %d layouts", len(ls))
	}
	for _, l := range ls[1:] {
		if l != ls[0] {
			t.Fatal("uniform layouts differ across heads")
		}
	}
	bb := pool.Get(BigBirdPattern(), 8)
	lf := pool.Get(LongformerPattern(), 8)
	if bb.NNZ() <= lf.NNZ() {
		t.Fatal("BigBird should be denser than Longformer at this size")
	}
}

func TestNeuronBlockSparsity(t *testing.T) {
	if s := NeuronBlockSparsity([]int{0, 1}, 64, 8); s != 0.75 {
		t.Fatalf("NeuronBlockSparsity = %v", s)
	}
}
