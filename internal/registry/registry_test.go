package registry

import (
	"os"
	"path/filepath"
	"testing"

	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

func testModel(t *testing.T) *nn.Transformer {
	t.Helper()
	cfg := nn.Config{Name: "reg-test", Vocab: 16, Dim: 16, Layers: 2, Heads: 2, Hidden: 32, MaxSeq: 16, Act: nn.ActReLU}
	m := nn.NewTransformer(cfg, tensor.NewRNG(7))
	peft.Apply(m, peft.LoRA, peft.Options{LoRARank: 2}, tensor.NewRNG(8))
	return m
}

func testSpec() Spec {
	return Spec{
		Name:   "job-000001",
		Method: "lora",
		Base:   BaseDesc{Model: "sim-small", Activation: "relu", Seed: 1, Blk: 8, Prime: true},
		Rank:   2, Alpha: 16,
	}
}

func TestPublishLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	delta := peft.Delta(testModel(t))
	man, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID == "" || man.BaseHash == "" || len(man.Params) != len(delta) {
		t.Fatalf("incomplete manifest: %+v", man)
	}

	got, ps, err := s.Load(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "lora" || got.Base != testSpec().Base {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	if len(ps) != len(delta) {
		t.Fatalf("loaded %d params, want %d", len(ps), len(delta))
	}
	for i, p := range delta {
		if ps[i].Name != p.Name {
			t.Fatalf("param %d name %q, want %q", i, ps[i].Name, p.Name)
		}
		if d := tensor.MaxAbsDiff(ps[i].W, p.W); d != 0 {
			t.Fatalf("param %s differs by %v", p.Name, d)
		}
	}
}

func TestPublishIsContentAddressedAndIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	delta := peft.Delta(testModel(t))
	a, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("identical publish produced distinct ids %s vs %s", a.ID, b.ID)
	}
	if s.Len() != 1 {
		t.Fatalf("idempotent republish grew the store to %d entries", s.Len())
	}

	// Different weights must address differently.
	delta[0].W.Data[0] += 1
	c, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("different weights share an id")
	}
	// Different base must address differently even with equal weights.
	spec := testSpec()
	spec.Base.Seed = 99
	d, err := s.Publish(spec, delta)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID == c.ID {
		t.Fatal("different base shares an id")
	}
	if d.BaseHash == c.BaseHash {
		t.Fatal("different base shares a base hash")
	}
}

func TestOpenRebuildsIndexFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := s.Publish(testSpec(), peft.Delta(testModel(t)))
	if err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", re.Len())
	}
	got, ps, err := re.Load(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != man.ID || len(ps) == 0 {
		t.Fatalf("reopened load mismatch: %+v, %d params", got, len(ps))
	}
}

func TestDeleteRemovesFilesAndIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man, err := s.Publish(testSpec(), peft.Delta(testModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(man.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(man.ID); ok {
		t.Fatal("deleted adapter still indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, man.ID+".lexp")); !os.IsNotExist(err) {
		t.Fatal("weights file survived delete")
	}
	if err := s.Delete(man.ID); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestListOrdersByCreation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	delta := peft.Delta(testModel(t))
	first, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	delta[0].W.Data[0] += 2
	second, err := s.Publish(testSpec(), delta)
	if err != nil {
		t.Fatal(err)
	}
	list := s.List()
	if len(list) != 2 {
		t.Fatalf("listed %d adapters, want 2", len(list))
	}
	ids := map[string]bool{list[0].ID: true, list[1].ID: true}
	if !ids[first.ID] || !ids[second.ID] {
		t.Fatalf("listing missing entries: %v", list)
	}
}
