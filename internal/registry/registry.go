// Package registry is the adapter artifact store closing the loop between
// fine-tuning and serving: a completed PEFT run's trainable delta (see
// peft.Delta) is serialized with the repository's LEXP checkpoint format
// next to a JSON manifest describing the method, its hyper-parameters and
// the exact frozen base it was trained against. Artifacts are
// content-addressed — the ID is a hash of the weight bytes plus the
// manifest core — so republishing identical work is idempotent and an
// artifact can never silently drift from its ID.
//
// The store is disk-backed (two files per artifact: <id>.lexp weights,
// <id>.json manifest) with an in-memory index rebuilt on Open, and safe
// for concurrent use. internal/jobs publishes into it; internal/serve and
// internal/infer read from it.
package registry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"longexposure/internal/nn"
	"longexposure/internal/obs"
)

// BaseDesc identifies the frozen base model an adapter was trained on —
// everything needed to rebuild it bit-for-bit (see jobs.BuildBase): the
// model-zoo name, activation, the construction seed, and the sparsity
// priming parameters.
type BaseDesc struct {
	Model      string `json:"model"`
	Activation string `json:"activation"`
	Seed       uint64 `json:"seed"`
	Blk        int    `json:"blk"`
	Prime      bool   `json:"prime"`

	// Precision selects the frozen base's weight storage at publish time
	// ("", "f32", "f16", "int8", "nm24" — see nn.ValidPrecision). It is
	// part of the content hash: an int8 base is a different serving
	// artifact than the f32 base it was quantized from. Empty (the f32
	// default) is omitted from the JSON, so descriptors and hashes from
	// before the field existed are unchanged.
	Precision string `json:"precision,omitempty"`
}

// Hash returns the content key of the base description. Adapters sharing a
// BaseHash are servable on one shared base model.
func (b BaseDesc) Hash() string {
	j, err := json.Marshal(b)
	if err != nil {
		panic(fmt.Sprintf("registry: hashing base desc: %v", err))
	}
	sum := sha256.Sum256(j)
	return hex.EncodeToString(sum[:8])
}

// ParamInfo describes one artifact parameter (for listings; the weights
// themselves live in the .lexp file).
type ParamInfo struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// Manifest is the artifact metadata stored next to the weights.
type Manifest struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Method   string    `json:"method"` // peft.Method.Key()
	Base     BaseDesc  `json:"base"`
	BaseHash string    `json:"base_hash"`
	Created  time.Time `json:"created"`

	// Resolved PEFT options of the producing run (method-dependent).
	Rank         int     `json:"rank,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	PromptTokens int     `json:"prompt_tokens,omitempty"`
	Bottleneck   int     `json:"bottleneck,omitempty"`

	Params      []ParamInfo `json:"params"`
	WeightBytes int64       `json:"weight_bytes"`
}

// Spec is a publish request: the manifest fields the caller knows; ID,
// BaseHash, Created, Params and WeightBytes are derived.
type Spec struct {
	Name         string
	Method       string
	Base         BaseDesc
	Rank         int
	Alpha        float64
	PromptTokens int
	Bottleneck   int
}

// Store is the disk-backed adapter registry.
type Store struct {
	dir string

	mu      sync.RWMutex
	index   map[string]*Manifest
	metrics *obs.RegistryMetrics // nil: unmetered
}

// Instrument attaches registry observability: artifact count plus
// publish/load/delete traffic. Call once, before the store is shared.
func (s *Store) Instrument(m *obs.RegistryMetrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
	if m != nil {
		m.Adapters.Set(float64(len(s.index)))
	}
}

// Open creates/loads a registry at dir, rebuilding the index from the
// manifests on disk.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, index: map[string]*Manifest{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return nil, fmt.Errorf("registry: parsing %s: %w", e.Name(), err)
		}
		if m.ID == "" || m.ID+".json" != e.Name() {
			return nil, fmt.Errorf("registry: manifest %s names id %q", e.Name(), m.ID)
		}
		s.index[m.ID] = &m
	}
	return s, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// Publish serializes the delta and writes the artifact, returning its
// manifest. Content-addressed: publishing identical weights with an
// identical spec core returns the already-stored manifest.
func (s *Store) Publish(spec Spec, delta nn.ParamSet) (Manifest, error) {
	if len(delta) == 0 {
		return Manifest{}, fmt.Errorf("registry: empty delta")
	}
	var weights bytes.Buffer
	if err := delta.Save(&weights); err != nil {
		return Manifest{}, fmt.Errorf("registry: serializing delta: %w", err)
	}

	man := Manifest{
		Name:         spec.Name,
		Method:       spec.Method,
		Base:         spec.Base,
		BaseHash:     spec.Base.Hash(),
		Rank:         spec.Rank,
		Alpha:        spec.Alpha,
		PromptTokens: spec.PromptTokens,
		Bottleneck:   spec.Bottleneck,
		WeightBytes:  int64(weights.Len()),
	}
	for _, p := range delta {
		man.Params = append(man.Params, ParamInfo{Name: p.Name, Shape: append([]int(nil), p.W.Shape()...)})
	}
	man.ID = artifactID(man, weights.Bytes())
	man.Created = time.Now().UTC()

	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.metrics; m != nil {
		m.Publishes.Inc()
	}
	if existing, ok := s.index[man.ID]; ok {
		return *existing, nil
	}
	if err := writeAtomic(filepath.Join(s.dir, man.ID+".lexp"), weights.Bytes()); err != nil {
		return Manifest{}, err
	}
	manJSON, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return Manifest{}, err
	}
	if err := writeAtomic(filepath.Join(s.dir, man.ID+".json"), append(manJSON, '\n')); err != nil {
		return Manifest{}, err
	}
	s.index[man.ID] = &man
	if m := s.metrics; m != nil {
		m.Adapters.Set(float64(len(s.index)))
	}
	return man, nil
}

// artifactID hashes the identity-bearing manifest core plus the weight
// bytes. Name and Created are excluded: the same trained delta published
// under two display names is the same artifact.
func artifactID(m Manifest, weights []byte) string {
	h := sha256.New()
	core := struct {
		Method   string   `json:"method"`
		BaseHash string   `json:"base_hash"`
		Rank     int      `json:"rank"`
		Alpha    float64  `json:"alpha"`
		Prompt   int      `json:"prompt"`
		Bneck    int      `json:"bneck"`
		Base     BaseDesc `json:"base"`
	}{m.Method, m.BaseHash, m.Rank, m.Alpha, m.PromptTokens, m.Bottleneck, m.Base}
	j, err := json.Marshal(core)
	if err != nil {
		panic(fmt.Sprintf("registry: hashing manifest core: %v", err))
	}
	h.Write(j)
	h.Write(weights)
	return "ad-" + hex.EncodeToString(h.Sum(nil)[:8])
}

func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get returns one artifact's manifest.
func (s *Store) Get(id string) (Manifest, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.index[id]
	if !ok {
		return Manifest{}, false
	}
	return *m, true
}

// Has reports whether an artifact id is stored.
func (s *Store) Has(id string) bool {
	_, ok := s.Get(id)
	return ok
}

// Load returns the manifest and the deserialized delta parameters.
func (s *Store) Load(id string) (Manifest, nn.ParamSet, error) {
	man, ok := s.Get(id)
	if !ok {
		return Manifest{}, nil, fmt.Errorf("registry: unknown adapter %q", id)
	}
	f, err := os.Open(filepath.Join(s.dir, id+".lexp"))
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("registry: opening weights for %s: %w", id, err)
	}
	defer f.Close()
	ps, err := nn.LoadParams(f)
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("registry: loading weights for %s: %w", id, err)
	}
	s.mu.RLock()
	if m := s.metrics; m != nil {
		m.Loads.Inc()
	}
	s.mu.RUnlock()
	return man, ps, nil
}

// List returns every manifest, oldest first (ID tiebreak).
func (s *Store) List() []Manifest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Manifest, 0, len(s.index))
	for _, m := range s.index {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Delete removes an artifact and its files.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[id]; !ok {
		return fmt.Errorf("registry: unknown adapter %q", id)
	}
	delete(s.index, id)
	if m := s.metrics; m != nil {
		m.Deletes.Inc()
		m.Adapters.Set(float64(len(s.index)))
	}
	var firstErr error
	for _, suffix := range []string{".lexp", ".json"} {
		if err := os.Remove(filepath.Join(s.dir, id+suffix)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
