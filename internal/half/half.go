// Package half implements IEEE-754 binary16 (half precision) conversion.
//
// The paper stores model parameters in fp16 and computes in fp32 (mixed
// precision, §VII-A). On CPU we compute in float32, but fp16 storage matters
// twice: it halves the bytes a kernel must stream (the roofline model in
// internal/gpusim charges 2 bytes per parameter), and it is the unit of the
// memory-footprint model behind Figure 8. This package provides the faithful
// round-trip so parameter stores can hold real fp16 bit patterns rather than
// pretending.
package half

import "math"

// Float16 is an IEEE-754 binary16 value stored in its raw bit pattern.
type Float16 uint16

// Bits exposes the raw bit pattern.
func (f Float16) Bits() uint16 { return uint16(f) }

// FromFloat32 converts a float32 to the nearest Float16 using
// round-to-nearest-even, with overflow to ±Inf and graceful handling of
// subnormals, following the IEEE-754 conversion rules.
func FromFloat32(x float32) Float16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	frac := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			// NaN: keep it a NaN, preserve the top fraction bit.
			return Float16(sign | 0x7e00 | uint16(frac>>13))
		}
		return Float16(sign | 0x7c00)
	case exp == 0 && frac == 0: // signed zero
		return Float16(sign)
	}

	// Re-bias the exponent from float32 (127) to float16 (15).
	e := exp - 127 + 15
	switch {
	case e >= 0x1f:
		// Overflow to infinity.
		return Float16(sign | 0x7c00)
	case e <= 0:
		// Subnormal or underflow to zero. The implicit leading 1 becomes
		// explicit and the fraction shifts right by (1 - e) extra places.
		if e < -10 {
			return Float16(sign)
		}
		m := frac | 0x800000 // restore implicit bit
		shift := uint32(14 - e)
		// Round to nearest, ties to even: add just under half, plus the
		// kept lsb so exact ties carry only when the kept bit is odd —
		// the same scheme the normal path uses on its 13 dropped bits.
		rounded := m + (uint32(1)<<(shift-1) - 1) + ((m >> shift) & 1)
		return Float16(sign | uint16(rounded>>shift))
	}

	// Normal case: round the 23-bit fraction to 10 bits, nearest even.
	m := frac
	rounded := m + 0xfff + ((m >> 13) & 1)
	if rounded&0x800000 != 0 {
		// Fraction rounded up past 1.0: bump the exponent.
		rounded = 0
		e++
		if e >= 0x1f {
			return Float16(sign | 0x7c00)
		}
		return Float16(sign | uint16(e)<<10)
	}
	return Float16(sign | uint16(e)<<10 | uint16(rounded>>13))
}

// ToFloat32 converts a Float16 back to float32 exactly (every binary16 value
// is representable in binary32).
//
// The widening is branch-free except for the Inf/NaN class: sign and
// magnitude bits are placed at their binary32 positions, which leaves the
// exponent short by exactly 112 (the bias difference 127-15 minus the 13-bit
// fraction shift already applied), and a single multiply by 2^112 rescales.
// The multiply is exact for normals (pure exponent shift) and for subnormals
// (m·2^-136 · 2^112 = m·2^-24, which binary32 normalizes losslessly), so no
// normalization loop is needed; the sign rides through the multiply, so the
// whole conversion needs one integer→float register move rather than a
// round trip. This is the kernel-facing conversion the packed-GEMM pack
// routines run per weight element, which is why it must be cheap;
// TestToFloat32MatchesReference pins it against the obvious
// shift-and-normalize decoder over all 65536 patterns.
func (f Float16) ToFloat32() float32 {
	if f&0x7c00 == 0x7c00 { // Inf / NaN: payload moves to the top fraction bits
		return math.Float32frombits(uint32(f&0x8000)<<16 | 0x7f800000 | uint32(f&0x3ff)<<13)
	}
	const twoPow112 = 0x1p112
	return math.Float32frombits(uint32(f&0x8000)<<16|uint32(f&0x7fff)<<13) * twoPow112
}

// IsNaN reports whether f encodes a NaN.
func (f Float16) IsNaN() bool {
	return f&0x7c00 == 0x7c00 && f&0x3ff != 0
}

// IsInf reports whether f encodes an infinity.
func (f Float16) IsInf() bool {
	return f&0x7fff == 0x7c00
}

// EncodeSlice converts xs to fp16 bit patterns, appending into dst
// (allocated if nil or too short) and returning it.
func EncodeSlice(dst []Float16, xs []float32) []Float16 {
	if cap(dst) < len(xs) {
		dst = make([]Float16, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = FromFloat32(x)
	}
	return dst
}

// DecodeSlice converts fp16 values back to float32, appending into dst
// (allocated if nil or too short) and returning it.
func DecodeSlice(dst []float32, xs []Float16) []float32 {
	if cap(dst) < len(xs) {
		dst = make([]float32, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = x.ToFloat32()
	}
	return dst
}

// RoundTrip quantizes x through fp16 and back, the exact value a kernel
// reading fp16 parameters would see.
func RoundTrip(x float32) float32 { return FromFloat32(x).ToFloat32() }

// Bytes reports the storage size in bytes of n fp16 values.
func Bytes(n int) int64 { return int64(n) * 2 }
