package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownBitPatterns(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},            // largest finite fp16
		{5.960464477539063e-08, 1}, // smallest positive subnormal
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f).Bits(); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); !got.IsInf() {
		t.Errorf("FromFloat32(70000) = %#04x, want +Inf", got.Bits())
	}
	if got := FromFloat32(-70000); !got.IsInf() || got.Bits()&0x8000 == 0 {
		t.Errorf("FromFloat32(-70000) = %#04x, want -Inf", got.Bits())
	}
}

func TestNaNPreserved(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN encoded as %#04x, not a NaN", h.Bits())
	}
	if back := h.ToFloat32(); !math.IsNaN(float64(back)) {
		t.Fatalf("NaN round-trip gave %v", back)
	}
}

func TestSignedZero(t *testing.T) {
	neg := FromFloat32(float32(math.Copysign(0, -1)))
	if neg.Bits() != 0x8000 {
		t.Fatalf("-0 encoded as %#04x", neg.Bits())
	}
	if f := neg.ToFloat32(); math.Signbit(float64(f)) == false || f != 0 {
		t.Fatalf("-0 round-trip gave %v", f)
	}
}

// TestExactRoundTrip: every value already representable in fp16 must survive
// the round trip bit-exactly. We enumerate all 65536 bit patterns.
func TestExactRoundTrip(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		h := Float16(bits)
		f := h.ToFloat32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %#04x: NaN lost", bits)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %#04x -> %g -> %#04x", bits, f, back.Bits())
		}
	}
}

// TestRelativeErrorBound: for normal-range inputs the fp16 quantization
// error is at most 2^-11 relative (half of the 10-bit mantissa ULP).
func TestRelativeErrorBound(t *testing.T) {
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if ax < 6.2e-5 || ax > 65000 || math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true // outside the normal fp16 range
		}
		rt := float64(RoundTrip(x))
		rel := math.Abs(rt-float64(x)) / ax
		return rel <= math.Pow(2, -11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicOrdering(t *testing.T) {
	// fp16 quantization must preserve (non-strict) ordering.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > 65000 || a < -65000 || b > 65000 || b < -65000 {
			return true
		}
		if a <= b {
			return RoundTrip(a) <= RoundTrip(b)
		}
		return RoundTrip(a) >= RoundTrip(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// referenceToFloat32 is the obvious shift-and-normalize decoder, kept only
// as the oracle for the branch-reduced production ToFloat32.
func referenceToFloat32(f Float16) float32 {
	sign := uint32(f&0x8000) << 16
	exp := uint32(f>>10) & 0x1f
	frac := uint32(f & 0x3ff)
	switch {
	case exp == 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | frac<<13)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3ff
		return math.Float32frombits(sign | (e << 23) | frac<<13)
	}
	return math.Float32frombits(sign | (exp-15+127)<<23 | frac<<13)
}

// TestToFloat32MatchesReference pins the magic-multiply widening against the
// reference decoder bit for bit over every 16-bit pattern, including every
// subnormal and every NaN payload.
func TestToFloat32MatchesReference(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		h := Float16(bits)
		got := math.Float32bits(h.ToFloat32())
		want := math.Float32bits(referenceToFloat32(h))
		if got != want {
			t.Fatalf("bits %#04x: ToFloat32 = %#08x, reference %#08x", bits, got, want)
		}
	}
}

// TestSubnormalExact checks every fp16 subnormal decodes to exactly m·2⁻²⁴.
func TestSubnormalExact(t *testing.T) {
	for m := 1; m <= 0x3ff; m++ {
		want := float32(math.Ldexp(float64(m), -24))
		if got := Float16(m).ToFloat32(); got != want {
			t.Fatalf("subnormal m=%d: got %g, want %g", m, got, want)
		}
		if got := Float16(uint16(m) | 0x8000).ToFloat32(); got != -want {
			t.Fatalf("subnormal m=-%d: got %g, want %g", m, got, -want)
		}
	}
}

// TestNaNPayload: widening moves the 10 payload bits to the top of the f32
// fraction; narrowing moves them back, with FromFloat32 forcing the quiet
// bit. Payload-modulo-quiet-bit must survive the f16→f32→f16 round trip.
func TestNaNPayload(t *testing.T) {
	for _, payload := range []uint16{0x001, 0x155, 0x2aa, 0x3ff} {
		for _, sign := range []uint16{0, 0x8000} {
			h := Float16(sign | 0x7c00 | payload)
			f := h.ToFloat32()
			fb := math.Float32bits(f)
			if fb>>23&0xff != 0xff || fb&0x7fffff != uint32(payload)<<13 {
				t.Fatalf("NaN %#04x widened to %#08x, payload lost", h.Bits(), fb)
			}
			back := FromFloat32(f)
			if !back.IsNaN() || back.Bits()&0x8000 != sign {
				t.Fatalf("NaN %#04x round-tripped to %#04x", h.Bits(), back.Bits())
			}
			if got, want := back.Bits()&0x3ff, payload|0x200; got != want {
				t.Fatalf("NaN payload %#03x round-tripped to %#03x, want %#03x (quieted)", payload, got, want)
			}
		}
	}
}

// TestRoundToNearestEvenTies enumerates every pair of adjacent finite fp16
// values: the exact midpoint (always representable in f32, it has one extra
// mantissa bit) must round to whichever neighbour has an even mantissa, and
// one f32 ulp to either side must round to the nearer neighbour.
func TestRoundToNearestEvenTies(t *testing.T) {
	for bits := 0; bits < 0x7bff; bits++ {
		lo, hi := Float16(bits), Float16(bits+1)
		fl, fh := lo.ToFloat32(), hi.ToFloat32()
		mid := float32((float64(fl) + float64(fh)) / 2)
		if float64(mid) != (float64(fl)+float64(fh))/2 {
			t.Fatalf("bits %#04x: midpoint %g not exactly representable", bits, mid)
		}
		even := lo
		if hi.Bits()&1 == 0 {
			even = hi
		}
		if got := FromFloat32(mid); got != even {
			t.Fatalf("tie between %#04x and %#04x: rounded to %#04x, want even %#04x",
				lo.Bits(), hi.Bits(), got.Bits(), even.Bits())
		}
		below := math.Float32frombits(math.Float32bits(mid) - 1)
		if got := FromFloat32(below); got != lo {
			t.Fatalf("just below tie of %#04x/%#04x: rounded to %#04x, want %#04x",
				lo.Bits(), hi.Bits(), got.Bits(), lo.Bits())
		}
		above := math.Float32frombits(math.Float32bits(mid) + 1)
		if got := FromFloat32(above); got != hi {
			t.Fatalf("just above tie of %#04x/%#04x: rounded to %#04x, want %#04x",
				lo.Bits(), hi.Bits(), got.Bits(), hi.Bits())
		}
		// Mirror for the negative range.
		nmid := math.Float32frombits(math.Float32bits(mid) | 0x80000000)
		if got := FromFloat32(nmid); got.Bits() != even.Bits()|0x8000 {
			t.Fatalf("negative tie of %#04x: rounded to %#04x", bits, got.Bits())
		}
	}
}

func TestSliceHelpers(t *testing.T) {
	xs := []float32{0, 1, -1, 0.5, 3.14159, 65504}
	enc := EncodeSlice(nil, xs)
	dec := DecodeSlice(nil, enc)
	if len(dec) != len(xs) {
		t.Fatalf("len %d, want %d", len(dec), len(xs))
	}
	for i := range xs {
		if math.Abs(float64(dec[i]-xs[i])) > math.Abs(float64(xs[i]))*1e-3+1e-7 {
			t.Errorf("index %d: %g -> %g", i, xs[i], dec[i])
		}
	}
	if Bytes(10) != 20 {
		t.Errorf("Bytes(10) = %d", Bytes(10))
	}
}
