package half

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKnownBitPatterns(t *testing.T) {
	cases := []struct {
		f    float32
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},            // largest finite fp16
		{5.960464477539063e-08, 1}, // smallest positive subnormal
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := FromFloat32(c.f).Bits(); got != c.bits {
			t.Errorf("FromFloat32(%g) = %#04x, want %#04x", c.f, got, c.bits)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := FromFloat32(70000); !got.IsInf() {
		t.Errorf("FromFloat32(70000) = %#04x, want +Inf", got.Bits())
	}
	if got := FromFloat32(-70000); !got.IsInf() || got.Bits()&0x8000 == 0 {
		t.Errorf("FromFloat32(-70000) = %#04x, want -Inf", got.Bits())
	}
}

func TestNaNPreserved(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("NaN encoded as %#04x, not a NaN", h.Bits())
	}
	if back := h.ToFloat32(); !math.IsNaN(float64(back)) {
		t.Fatalf("NaN round-trip gave %v", back)
	}
}

func TestSignedZero(t *testing.T) {
	neg := FromFloat32(float32(math.Copysign(0, -1)))
	if neg.Bits() != 0x8000 {
		t.Fatalf("-0 encoded as %#04x", neg.Bits())
	}
	if f := neg.ToFloat32(); math.Signbit(float64(f)) == false || f != 0 {
		t.Fatalf("-0 round-trip gave %v", f)
	}
}

// TestExactRoundTrip: every value already representable in fp16 must survive
// the round trip bit-exactly. We enumerate all 65536 bit patterns.
func TestExactRoundTrip(t *testing.T) {
	for bits := 0; bits <= 0xffff; bits++ {
		h := Float16(bits)
		f := h.ToFloat32()
		back := FromFloat32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %#04x: NaN lost", bits)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %#04x -> %g -> %#04x", bits, f, back.Bits())
		}
	}
}

// TestRelativeErrorBound: for normal-range inputs the fp16 quantization
// error is at most 2^-11 relative (half of the 10-bit mantissa ULP).
func TestRelativeErrorBound(t *testing.T) {
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if ax < 6.2e-5 || ax > 65000 || math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true // outside the normal fp16 range
		}
		rt := float64(RoundTrip(x))
		rel := math.Abs(rt-float64(x)) / ax
		return rel <= math.Pow(2, -11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicOrdering(t *testing.T) {
	// fp16 quantization must preserve (non-strict) ordering.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > 65000 || a < -65000 || b > 65000 || b < -65000 {
			return true
		}
		if a <= b {
			return RoundTrip(a) <= RoundTrip(b)
		}
		return RoundTrip(a) >= RoundTrip(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceHelpers(t *testing.T) {
	xs := []float32{0, 1, -1, 0.5, 3.14159, 65504}
	enc := EncodeSlice(nil, xs)
	dec := DecodeSlice(nil, enc)
	if len(dec) != len(xs) {
		t.Fatalf("len %d, want %d", len(dec), len(xs))
	}
	for i := range xs {
		if math.Abs(float64(dec[i]-xs[i])) > math.Abs(float64(xs[i]))*1e-3+1e-7 {
			t.Errorf("index %d: %g -> %g", i, xs[i], dec[i])
		}
	}
	if Bytes(10) != 20 {
		t.Errorf("Bytes(10) = %d", Bytes(10))
	}
}
