package model

import (
	"math"

	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

// PrimeSparsity re-initializes a freshly-built sim model so its activation
// statistics match those of a *pre-trained* LLM backbone — the substrate the
// paper fine-tunes (DESIGN.md §2).
//
// Trained transformers exhibit (a) highly sparse ReLU activations — 90%+ of
// MLP neurons inactive per token, with a heavy-tailed importance profile
// across neurons ("parsimonious learners", paper refs [28][30]) — and
// (b) peaked, structured attention (local windows plus sink tokens) rather
// than the near-uniform scores of a random initialization. Tiny sim models
// cannot acquire these statistics from brief synthetic pre-training, so this
// function induces them directly:
//
//   - FC1 biases are shifted negative, pushing most pre-activations below
//     zero (per-token sparsity ≈ 80-90%);
//   - FC1 neuron blocks receive heavy-tailed (lognormal) gain factors, so
//     block importance is concentrated — what the exposer's threshold
//     filter exploits;
//   - positional embeddings are amplified and Q/K projections are given a
//     temperature boost, yielding peaked attention whose structure is
//     consistent across rows (position-driven), differing per head.
//
// blockSize is the neuron-block granularity the gains are drawn at (use the
// experiment's sparsity block size).
func PrimeSparsity(m *nn.Transformer, rng *tensor.RNG, blockSize int) {
	// Structured, peaked attention. Sinusoidal positional embeddings make
	// position inner products decay with distance |i−j|; making Wk a noisy
	// copy of Wq turns each head's scores into a similarity kernel over a
	// random subspace — peaked near the diagonal with a head-specific
	// bandwidth, the local/banded structure trained LLMs exhibit.
	d := m.Cfg.Dim
	for p := 0; p < m.Cfg.MaxSeq; p++ {
		row := m.PosEmb.Table.W.Data[p*d : (p+1)*d]
		for k := 0; k < d/2; k++ {
			freq := math.Pow(10000, -2*float64(k)/float64(d))
			row[2*k] = float32(0.45 * math.Sin(float64(p)*freq))
			row[2*k+1] = float32(0.45 * math.Cos(float64(p)*freq))
		}
	}
	for _, b := range m.Blocks {
		// Wk ← Wq + ε·Wk (near-symmetric scores), then temperature boost.
		wq, wk := b.Attn.Wq.W.W.Data, b.Attn.Wk.W.W.Data
		for i := range wk {
			wk[i] = wq[i] + 0.35*wk[i]
		}
		tensor.Scale(b.Attn.Wq.W.W, 3.0)
		tensor.Scale(b.Attn.Wk.W.W, 3.0)

		// Sparse, heavy-tailed MLP.
		mlp := b.MLP
		if mlp.Act != nn.ActReLU {
			continue
		}
		h, d := mlp.Hidden, mlp.Dim
		nBlk := (h + blockSize - 1) / blockSize
		for nb := 0; nb < nBlk; nb++ {
			gain := float32(lognormal(rng, 1.1))
			for c := nb * blockSize; c < (nb+1)*blockSize && c < h; c++ {
				row := mlp.W1.W.Data[c*d : (c+1)*d] // column-major: neuron c's weights
				for j := range row {
					row[j] *= gain
				}
				mlp.B1.W.Data[c] = mlp.B1.W.Data[c]*gain - 0.45
			}
		}
	}
}

// lognormal draws exp(σ·z)/exp(σ²/2) — mean-1 lognormal gain.
func lognormal(rng *tensor.RNG, sigma float64) float64 {
	z := rng.Norm()
	return expFast(sigma*z - sigma*sigma/2)
}

func expFast(x float64) float64 {
	// Clamp to keep gains finite and training stable.
	if x > 3 {
		x = 3
	}
	if x < -4 {
		x = -4
	}
	// math.Exp via the standard library.
	return math.Exp(x)
}
