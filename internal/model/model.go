// Package model defines the model zoo of the paper's evaluation (Table II):
// the OPT family (ReLU MLPs — both attention and MLP sparsity apply) and the
// GPT-2 family (GeLU MLPs — attention-only optimization, §VII-D), plus
// scaled-down "sim" variants that train for real on CPU.
//
// The full-size configs drive the analytic cost model (internal/gpusim);
// the sim configs drive actual fine-tuning runs whose measured sparsity
// ratios parameterize that model.
package model

import (
	"fmt"

	"longexposure/internal/nn"
)

// Family tags the model lineage, which determines the activation function.
type Family string

const (
	// FamilyOPT uses ReLU activations (sparsity in attention and MLP).
	FamilyOPT Family = "OPT"
	// FamilyGPT2 uses GeLU activations (attention sparsity only).
	FamilyGPT2 Family = "GPT-2"
)

// Spec is a named model configuration.
type Spec struct {
	Family Family
	Config nn.Config
}

// SupportsMLPSparsity reports whether the neuron-sparse MLP path applies
// (ReLU models only).
func (s Spec) SupportsMLPSparsity() bool { return s.Config.Act == nn.ActReLU }

// ParamCount returns the analytic parameter count of the configuration:
// embeddings + per-layer (attention 4·d² + 4·d, MLP 8·d² + 5·d, layer norms
// 4·d) + final norm + untied LM head.
func (s Spec) ParamCount() int64 {
	c := s.Config
	d := int64(c.Dim)
	v := int64(c.Vocab)
	L := int64(c.Layers)
	h := int64(c.Hidden)

	emb := v*d + int64(c.MaxSeq)*d
	attn := 4*d*d + 4*d
	mlp := d*h + h + h*d + d
	norms := 4 * d
	head := d*v + v
	return emb + L*(attn+mlp+norms) + 2*d + head
}

// String renders "OPT-1.3B" style names.
func (s Spec) String() string { return s.Config.Name }

// The paper's evaluation models (Table II). Dimensions follow the published
// OPT and GPT-2 architectures.

// OPT125M returns the OPT-125M configuration.
func OPT125M() Spec {
	return Spec{FamilyOPT, nn.Config{Name: "OPT-125M", Vocab: 50272, Dim: 768, Layers: 12, Heads: 12, Hidden: 3072, MaxSeq: 2048, Act: nn.ActReLU}}
}

// OPT350M returns the OPT-350M configuration.
func OPT350M() Spec {
	return Spec{FamilyOPT, nn.Config{Name: "OPT-350M", Vocab: 50272, Dim: 1024, Layers: 24, Heads: 16, Hidden: 4096, MaxSeq: 2048, Act: nn.ActReLU}}
}

// OPT1p3B returns the OPT-1.3B configuration.
func OPT1p3B() Spec {
	return Spec{FamilyOPT, nn.Config{Name: "OPT-1.3B", Vocab: 50272, Dim: 2048, Layers: 24, Heads: 32, Hidden: 8192, MaxSeq: 2048, Act: nn.ActReLU}}
}

// OPT2p7B returns the OPT-2.7B configuration.
func OPT2p7B() Spec {
	return Spec{FamilyOPT, nn.Config{Name: "OPT-2.7B", Vocab: 50272, Dim: 2560, Layers: 32, Heads: 32, Hidden: 10240, MaxSeq: 2048, Act: nn.ActReLU}}
}

// GPT2Large returns the GPT2-Large (774M) configuration.
func GPT2Large() Spec {
	return Spec{FamilyGPT2, nn.Config{Name: "GPT2-Large", Vocab: 50257, Dim: 1280, Layers: 36, Heads: 20, Hidden: 5120, MaxSeq: 1024, Act: nn.ActGeLU}}
}

// GPT2XL returns the GPT2-XL (1.5B) configuration.
func GPT2XL() Spec {
	return Spec{FamilyGPT2, nn.Config{Name: "GPT2-XL", Vocab: 50257, Dim: 1600, Layers: 48, Heads: 25, Hidden: 6400, MaxSeq: 1024, Act: nn.ActGeLU}}
}

// ByName resolves a paper model by its Table II name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Config.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("model: unknown model %q", name)
}

// All lists every paper configuration.
func All() []Spec {
	return []Spec{OPT125M(), OPT350M(), OPT1p3B(), OPT2p7B(), GPT2Large(), GPT2XL()}
}

// Sim returns a CPU-trainable miniature preserving the named model's shape
// ratios (heads, hidden = 4·dim, ReLU/GeLU) so sparsity statistics measured
// on it transfer qualitatively. The miniature keeps the original's name with
// a "sim-" prefix.
func Sim(base Spec) Spec {
	cfg := nn.Config{
		Name:   "sim-" + base.Config.Name,
		Vocab:  128,
		Dim:    64,
		Layers: 4,
		Heads:  4,
		Hidden: 256,
		MaxSeq: 160,
		Act:    base.Config.Act,
	}
	return Spec{Family: base.Family, Config: cfg}
}

// SimSmall is an even smaller config for fast unit tests and examples.
func SimSmall(act nn.Activation) Spec {
	fam := FamilyOPT
	if act == nn.ActGeLU {
		fam = FamilyGPT2
	}
	return Spec{fam, nn.Config{Name: "sim-small", Vocab: 64, Dim: 32, Layers: 2, Heads: 2, Hidden: 64, MaxSeq: 96, Act: act}}
}
