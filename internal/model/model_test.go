package model

import (
	"testing"

	"longexposure/internal/exposer"
	"longexposure/internal/nn"
	"longexposure/internal/tensor"
)

func TestAllConfigsValidate(t *testing.T) {
	for _, s := range All() {
		if err := s.Config.Validate(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
	for _, s := range All() {
		sim := Sim(s)
		if err := sim.Config.Validate(); err != nil {
			t.Errorf("%s: %v", sim, err)
		}
		if sim.Config.Act != s.Config.Act {
			t.Errorf("%s: sim changed activation", s)
		}
	}
}

func TestFamilyActivationPairing(t *testing.T) {
	for _, s := range All() {
		switch s.Family {
		case FamilyOPT:
			if s.Config.Act != nn.ActReLU {
				t.Errorf("%s: OPT must be ReLU", s)
			}
		case FamilyGPT2:
			if s.Config.Act != nn.ActGeLU {
				t.Errorf("%s: GPT-2 must be GeLU", s)
			}
		}
	}
}

func TestParamCountMonotoneInSize(t *testing.T) {
	sizes := []Spec{OPT125M(), OPT350M(), OPT1p3B(), OPT2p7B()}
	for i := 1; i < len(sizes); i++ {
		if sizes[i].ParamCount() <= sizes[i-1].ParamCount() {
			t.Errorf("%s not larger than %s", sizes[i], sizes[i-1])
		}
	}
}

func TestPrimeSparsityInducesTrainedLLMStatistics(t *testing.T) {
	spec := Sim(OPT1p3B())
	rng := tensor.NewRNG(1)
	m := nn.NewTransformer(spec.Config, rng)
	PrimeSparsity(m, rng.Split(), 8)

	// Drive a forward pass with arbitrary tokens.
	ids := make([][]int, 2)
	r2 := tensor.NewRNG(2)
	for b := range ids {
		row := make([]int, 64)
		for i := range row {
			row[i] = 4 + r2.Intn(spec.Config.Vocab-4)
		}
		ids[b] = row
	}
	m.Forward(ids, nil, nil)

	for li, b := range m.Blocks {
		mask := b.MLP.ActivationMask()
		perTok := exposer.PerTokenMLPSparsity(mask)
		if perTok < 0.6 {
			t.Errorf("layer %d: per-token MLP sparsity %.2f < 0.6 (priming failed)", li, perTok)
		}
		// Importance must be heavy-tailed enough for the 2%-threshold
		// filter to drop something.
		blocks := exposer.FilterNeuronBlocksAt(b.MLP.HiddenActivations(), 8, 0.02)
		total := (spec.Config.Hidden + 7) / 8
		if len(blocks) == total {
			t.Errorf("layer %d: threshold filter dropped nothing", li)
		}
	}
}

func TestPrimeSparsityKeepsModelTrainable(t *testing.T) {
	spec := SimSmall(nn.ActReLU)
	rng := tensor.NewRNG(3)
	m := nn.NewTransformer(spec.Config, rng)
	PrimeSparsity(m, rng.Split(), 4)

	ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	targets := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	flat := m.FlattenTargets(targets)
	ps := m.Params()
	var first, last float64
	for step := 0; step < 40; step++ {
		logits := m.Forward(ids, nil, nil)
		loss, dLogits := nn.CrossEntropy(logits, flat)
		if step == 0 {
			first = loss
		}
		last = loss
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps {
			tensor.AddScaledInto(p.W, p.Grad, -0.3)
		}
	}
	if last > first*0.7 {
		t.Fatalf("primed model does not train: %.3f → %.3f", first, last)
	}
}

func TestPrimeSparsityGeLUSkipsMLP(t *testing.T) {
	spec := SimSmall(nn.ActGeLU)
	rng := tensor.NewRNG(4)
	m := nn.NewTransformer(spec.Config, rng)
	before := m.Blocks[0].MLP.B1.W.Clone()
	PrimeSparsity(m, rng.Split(), 4)
	if d := tensor.MaxAbsDiff(before, m.Blocks[0].MLP.B1.W); d != 0 {
		t.Fatal("GeLU MLP biases were primed")
	}
}

func TestPrimeAttentionIsLocal(t *testing.T) {
	// Priming must concentrate attention mass near the diagonal: the mean
	// attended distance should be well below the uniform-causal value.
	spec := Sim(OPT1p3B())
	rng := tensor.NewRNG(5)
	m := nn.NewTransformer(spec.Config, rng)
	PrimeSparsity(m, rng.Split(), 8)

	seq := 64
	row := make([]int, seq)
	r2 := tensor.NewRNG(6)
	for i := range row {
		row[i] = 4 + r2.Intn(spec.Config.Vocab-4)
	}
	m.Forward([][]int{row}, nil, nil)

	var meanDist, uniformDist float64
	var n int
	for _, b := range m.Blocks {
		for _, p := range b.Attn.DenseProbs(nil) {
			for i := seq / 2; i < seq; i++ { // rows with enough context
				var d float64
				for j := 0; j <= i; j++ {
					d += float64(p.At(i, j)) * float64(i-j)
				}
				meanDist += d
				uniformDist += float64(i) / 2
				n++
			}
		}
	}
	meanDist /= float64(n)
	uniformDist /= float64(n)
	if meanDist > 0.7*uniformDist {
		t.Fatalf("attention not localized: mean distance %.1f vs uniform %.1f", meanDist, uniformDist)
	}
}
