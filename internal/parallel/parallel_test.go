package parallel

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedBoundaries(t *testing.T) {
	n := 103
	var total atomic.Int64
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("chunks cover %d of %d", total.Load(), n)
	}
}

func TestForChunkedZeroAndNegative(t *testing.T) {
	called := false
	ForChunked(0, func(lo, hi int) { called = true })
	ForChunked(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n<=0")
	}
}

func TestReduceFloat64Correct(t *testing.T) {
	n := 1234
	got := ReduceFloat64(n, func(i int) float64 { return float64(i) })
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestReduceFloat64Deterministic(t *testing.T) {
	n := 9999
	body := func(i int) float64 { return 1.0 / float64(i+1) }
	first := ReduceFloat64(n, body)
	for trial := 0; trial < 10; trial++ {
		if got := ReduceFloat64(n, body); got != first {
			t.Fatalf("trial %d: %v != %v", trial, got, first)
		}
	}
}

func TestSetWorkersRestore(t *testing.T) {
	initial := Workers()
	old := SetWorkers(3)
	if old != initial {
		t.Fatalf("SetWorkers returned %d, want the previous value %d", old, initial)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	// The canonical save/restore idiom: restoring the returned value must
	// bring back the exact initial setting.
	if prev := SetWorkers(old); prev != 3 {
		t.Fatalf("restore returned %d, want 3", prev)
	}
	if Workers() != initial {
		t.Fatalf("Workers() = %d after restore, want %d", Workers(), initial)
	}
}

func TestForBlockedBoundaries(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	for _, tc := range []struct{ n, block int }{
		{103, 8}, {64, 16}, {7, 8}, {1, 1}, {100, 1}, {33, 0}, // block<1 clamps to 1
	} {
		var mu sync.Mutex
		covered := make([]int, tc.n)
		ForBlocked(tc.n, tc.block, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d block=%d: bad chunk [%d,%d)", tc.n, tc.block, lo, hi)
			}
			block := max(tc.block, 1)
			if lo%block != 0 {
				t.Errorf("n=%d block=%d: lo=%d not tile-aligned", tc.n, tc.block, lo)
			}
			if hi != tc.n && hi%block != 0 {
				t.Errorf("n=%d block=%d: hi=%d not tile-aligned", tc.n, tc.block, hi)
			}
			mu.Lock()
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			mu.Unlock()
		})
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d block=%d: index %d covered %d times", tc.n, tc.block, i, c)
			}
		}
	}
}

// TestForBlockedDeterministicChunking pins the contract the GEMM drivers
// rely on: the same n, block, and worker count always produce the same
// chunk boundaries, regardless of scheduling.
func TestForBlockedDeterministicChunking(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	record := func(n, block int) [][2]int {
		var mu sync.Mutex
		var chunks [][2]int
		ForBlocked(n, block, func(lo, hi int) {
			mu.Lock()
			chunks = append(chunks, [2]int{lo, hi})
			mu.Unlock()
		})
		sort.Slice(chunks, func(i, j int) bool { return chunks[i][0] < chunks[j][0] })
		return chunks
	}
	for _, tc := range []struct{ n, block int }{{1000, 8}, {37, 4}, {64, 16}} {
		first := record(tc.n, tc.block)
		for trial := 0; trial < 10; trial++ {
			if got := record(tc.n, tc.block); !reflect.DeepEqual(got, first) {
				t.Fatalf("n=%d block=%d trial %d: chunks %v != %v", tc.n, tc.block, trial, got, first)
			}
		}
	}
}

func TestForBlockedZero(t *testing.T) {
	called := false
	ForBlocked(0, 8, func(lo, hi int) { called = true })
	ForBlocked(-3, 8, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n<=0")
	}
}

func TestSetWorkersClamp(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3), want 1", Workers())
	}
	prev := SetWorkers(4)
	if prev != 1 {
		t.Fatalf("SetWorkers returned %d, want previous value 1", prev)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	sum := 0 // no synchronization: must be safe with one worker
	For(100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForChunkedPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForChunked(100, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}
