package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndicesOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForChunkedBoundaries(t *testing.T) {
	n := 103
	var total atomic.Int64
	ForChunked(n, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("chunks cover %d of %d", total.Load(), n)
	}
}

func TestForChunkedZeroAndNegative(t *testing.T) {
	called := false
	ForChunked(0, func(lo, hi int) { called = true })
	ForChunked(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n<=0")
	}
}

func TestReduceFloat64Correct(t *testing.T) {
	n := 1234
	got := ReduceFloat64(n, func(i int) float64 { return float64(i) })
	want := float64(n*(n-1)) / 2
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestReduceFloat64Deterministic(t *testing.T) {
	n := 9999
	body := func(i int) float64 { return 1.0 / float64(i+1) }
	first := ReduceFloat64(n, body)
	for trial := 0; trial < 10; trial++ {
		if got := ReduceFloat64(n, body); got != first {
			t.Fatalf("trial %d: %v != %v", trial, got, first)
		}
	}
}

func TestSetWorkersClamp(t *testing.T) {
	old := Workers()
	defer SetWorkers(old)
	SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-3), want 1", Workers())
	}
	prev := SetWorkers(4)
	if prev != 1 {
		t.Fatalf("SetWorkers returned %d, want previous value 1", prev)
	}
}

func TestSingleWorkerRunsInline(t *testing.T) {
	old := SetWorkers(1)
	defer SetWorkers(old)
	sum := 0 // no synchronization: must be safe with one worker
	For(100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForChunkedPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	ForChunked(100, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}
