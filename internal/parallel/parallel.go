// Package parallel provides the shared-memory parallelism primitives used by
// every compute kernel in the repository: a process-wide worker pool and
// deterministic parallel-for helpers.
//
// The kernels in internal/tensor and internal/sparse are data-parallel over
// independent output regions, so the idiomatic Go approach is a bounded pool
// of goroutines fed index ranges through closures and joined with a
// sync.WaitGroup. Chunking is deterministic: the same n and the same worker
// count always produce the same chunk boundaries, which keeps reductions
// reproducible.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the pool. It defaults to GOMAXPROCS and can be lowered
// (never below 1) with SetWorkers, e.g. to simulate a smaller machine.
var maxWorkers atomic.Int64

func init() {
	maxWorkers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers sets the number of workers used by For and ForBlocked.
// Values below 1 are clamped to 1. It returns the previous setting.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers reports the current worker count.
func Workers() int { return int(maxWorkers.Load()) }

// For runs body(i) for every i in [0, n) across the worker pool.
// Iterations are distributed in contiguous chunks so adjacent indices land on
// the same worker (cache-friendly for row-major tensor kernels).
//
// body must not panic across goroutines; panics propagate to the caller.
func For(n int, body func(i int)) {
	ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked splits [0, n) into at most Workers() contiguous chunks and runs
// body(lo, hi) for each chunk, in parallel. A chunk is never empty.
// With a single worker (or n == 1) the body runs on the calling goroutine,
// which keeps small kernels allocation-free.
//
// Note on allocation: because body may cross a goroutine boundary, a
// closure passed here is always heap-allocated at its creation site, even
// on the single-worker fast path — Go's escape analysis is path-
// insensitive. Hot kernels that must be allocation-free in steady state
// use the *Arg variants below, which take a plain function plus an explicit
// argument struct so nothing escapes.
func ForChunked(n int, body func(lo, hi int)) {
	ForChunkedArg(n, body, func(b func(lo, hi int), lo, hi int) { b(lo, hi) })
}

// ForChunkedArg is ForChunked for allocation-free call sites: body should
// be a plain top-level function (or a closure that captures nothing), with
// all per-call state carried in arg by value. On the single-worker fast
// path neither body nor arg escapes, so a warm training step performs no
// heap allocation; with multiple workers each spawned chunk captures one
// copy of arg.
func ForChunkedArg[T any](n int, arg T, body func(arg T, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		body(arg, 0, n)
		return
	}
	forChunkedArgSlow(n, w, arg, body)
}

// forChunkedArgSlow holds the goroutine fan-out apart from the fast path:
// its WaitGroup/panic-capture locals are moved to the heap by the escape
// analysis, and keeping them here (out of the inlinable fast path) is what
// makes the single-worker ForChunkedArg call truly allocation-free.
func forChunkedArgSlow[T any](n, w int, arg T, body func(arg T, lo, hi int)) {
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	var firstPanic atomic.Value
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					firstPanic.CompareAndSwap(nil, r)
				}
			}()
			body(arg, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(p)
	}
}

// ForArg runs body(arg, i) for every i in [0, n) across the worker pool —
// the allocation-free variant of For (see ForChunkedArg). Implemented
// directly rather than by delegation: referencing a generic function as a
// value binds its dictionary at runtime, which itself allocates.
func ForArg[T any](n int, arg T, body func(arg T, i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			body(arg, i)
		}
		return
	}
	// The slow path may allocate freely (goroutine spawns dwarf an adapter
	// struct), so it reuses forChunkedArgSlow instead of repeating the
	// fan-out. Chunk boundaries are unchanged.
	forChunkedArgSlow(n, w, forItem[T]{arg, body}, forItemChunk[T])
}

// forItem adapts a per-index body onto the chunked slow path.
type forItem[T any] struct {
	arg  T
	body func(arg T, i int)
}

func forItemChunk[T any](p forItem[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		p.body(p.arg, i)
	}
}

// ForBlockedArg is ForBlocked for allocation-free call sites (see
// ForChunkedArg). Chunk boundaries are identical to ForBlocked's: the tile
// count is chunked exactly like ForChunked, and each chunk's half-open
// range is scaled back to elements with the final boundary clamped to n.
func ForBlockedArg[T any](n, block int, arg T, body func(arg T, lo, hi int)) {
	if n <= 0 {
		return
	}
	if block < 1 {
		block = 1
	}
	tiles := (n + block - 1) / block
	w := Workers()
	if w > tiles {
		w = tiles
	}
	if w == 1 {
		body(arg, 0, n)
		return
	}
	// Slow path: chunk the tile count exactly as ForChunked would, mapping
	// each tile chunk back to a clamped element range.
	forChunkedArgSlow(tiles, w, forBlock[T]{n, block, arg, body}, forBlockChunk[T])
}

// forBlock adapts tile-aligned chunking onto the chunked slow path.
type forBlock[T any] struct {
	n, block int
	arg      T
	body     func(arg T, lo, hi int)
}

func forBlockChunk[T any](p forBlock[T], tLo, tHi int) {
	hi := tHi * p.block
	if hi > p.n {
		hi = p.n
	}
	p.body(p.arg, tLo*p.block, hi)
}

// ForBlocked splits [0, n) into at most Workers() contiguous chunks whose
// boundaries are multiples of block (except the final boundary, which is n)
// and runs body(lo, hi) for each chunk, in parallel. It is the tile-aligned
// variant of ForChunked: kernels that amortize per-call setup over rows
// (e.g. the packed-panel GEMM cores) use it so no worker receives a sliver
// smaller than one tile. Chunking is deterministic — the same n, block, and
// Workers() always produce the same boundaries. A chunk is never empty;
// block values below 1 are treated as 1.
func ForBlocked(n, block int, body func(lo, hi int)) {
	ForBlockedArg(n, block, body, func(b func(lo, hi int), lo, hi int) { b(lo, hi) })
}

// ReduceFloat64 computes a deterministic parallel reduction over [0, n):
// each chunk accumulates body(i) into a partial sum in index order, then the
// partials are combined in chunk order. The result is therefore independent
// of scheduling (though it may differ from a single serial sum by the usual
// floating-point reassociation across the fixed chunk boundaries).
func ReduceFloat64(n int, body func(i int) float64) float64 {
	return ReduceFloat64Arg(n, body, func(b func(i int) float64, i int) float64 { return b(i) })
}

// ReduceFloat64Arg is ReduceFloat64 for allocation-free call sites: body
// should be a plain function with per-call state carried in arg (see
// ForChunkedArg). Chunking — and therefore the floating-point association —
// is identical to ReduceFloat64's.
func ReduceFloat64Arg[T any](n int, arg T, body func(arg T, i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += body(arg, i)
		}
		return s
	}
	chunk := (n + w - 1) / w
	nChunks := (n + chunk - 1) / chunk
	partials := make([]float64, nChunks)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += body(arg, i)
			}
			partials[c] = s
		}(c, lo, hi)
	}
	wg.Wait()
	var s float64
	for _, p := range partials {
		s += p
	}
	return s
}
