package data

import (
	"fmt"

	"longexposure/internal/tensor"
)

// Task is one downstream evaluation task (Table III analogue): a seeded
// generator of classification examples where the answer is a single token
// chosen from a small candidate set, predicted at the sequence's final
// position.
type Task struct {
	Name        string
	Description string
	Choices     int
	gen         func(rng *tensor.RNG, vocab int) Example
}

// Generate produces n examples for a model vocabulary.
func (t Task) Generate(n int, vocab int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	out := make([]Example, n)
	for i := range out {
		out[i] = t.gen(rng, vocab)
	}
	return out
}

// classify assembles a classification example: prompt + SEP, answer token
// supervised at the final position.
func classify(prompt []int, label int, choices []int) Example {
	input := append([]int{TokBOS}, prompt...)
	input = append(input, TokSep)
	target := make([]int, len(input))
	for i := range target {
		target[i] = -1 // nn.IgnoreIndex
	}
	target[len(target)-1] = choices[label]
	return Example{Input: input, Target: target, Label: label, Choices: choices, AnswerPos: len(target) - 1}
}

var binaryChoices = []int{TokNo, TokYes}

func fourChoices() []int {
	return []int{TokChoiceBase, TokChoiceBase + 1, TokChoiceBase + 2, TokChoiceBase + 3}
}

// Tasks returns the five downstream tasks in Table III order. Each mirrors
// the *shape* of its namesake (binary or 4-way choice over a structured
// prompt) with a rule a small transformer can learn.
func Tasks() []Task {
	return []Task{
		{
			Name:        "PIQA",
			Description: "Physical commonsense reasoning (majority-evidence choice)",
			Choices:     2,
			gen: func(rng *tensor.RNG, vocab int) Example {
				// Two candidate tokens; the prompt contains more copies of
				// the "physically sensible" one.
				a := TokBase + rng.Intn(vocab-TokBase)
				b := TokBase + rng.Intn(vocab-TokBase)
				for b == a {
					b = TokBase + rng.Intn(vocab-TokBase)
				}
				label := rng.Intn(2)
				maj, minr := a, b
				if label == 0 {
					maj, minr = b, a
				}
				prompt := []int{a, b, TokSep}
				for i := 0; i < 6; i++ {
					prompt = append(prompt, maj)
				}
				for i := 0; i < 3; i++ {
					prompt = append(prompt, minr)
				}
				// Shuffle the evidence region.
				ev := prompt[3:]
				for i := len(ev) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					ev[i], ev[j] = ev[j], ev[i]
				}
				// label==1 ⇔ candidate a is the majority token.
				if maj == a {
					label = 1
				} else {
					label = 0
				}
				return classify(prompt, label, binaryChoices)
			},
		},
		{
			Name:        "Winogrande",
			Description: "Physical interactions understanding (referent matching)",
			Choices:     2,
			gen: func(rng *tensor.RNG, vocab int) Example {
				// A referent token; the "pronoun" slot matches it or not.
				ref := TokBase + rng.Intn(vocab-TokBase)
				other := TokBase + rng.Intn(vocab-TokBase)
				for other == ref {
					other = TokBase + rng.Intn(vocab-TokBase)
				}
				label := rng.Intn(2)
				slot := other
				if label == 1 {
					slot = ref
				}
				prompt := []int{ref, TokSep, slot}
				return classify(prompt, label, binaryChoices)
			},
		},
		{
			Name:        "RTE",
			Description: "Natural language understanding (token entailment)",
			Choices:     2,
			gen: func(rng *tensor.RNG, vocab int) Example {
				// Premise of 6 tokens; hypothesis of 2. Entailed iff both
				// hypothesis tokens occur in the premise.
				prem := make([]int, 6)
				for i := range prem {
					prem[i] = TokBase + rng.Intn(vocab-TokBase)
				}
				label := rng.Intn(2)
				hyp := make([]int, 2)
				if label == 1 {
					hyp[0] = prem[rng.Intn(len(prem))]
					hyp[1] = prem[rng.Intn(len(prem))]
				} else {
					for i := range hyp {
						hyp[i] = TokBase + rng.Intn(vocab-TokBase)
					}
					// Ensure at least one token is really absent.
					present := func(tok int) bool {
						for _, p := range prem {
							if p == tok {
								return true
							}
						}
						return false
					}
					for present(hyp[0]) {
						hyp[0] = TokBase + rng.Intn(vocab-TokBase)
					}
				}
				prompt := append(append([]int{}, prem...), TokSep)
				prompt = append(prompt, hyp...)
				return classify(prompt, label, binaryChoices)
			},
		},
		{
			Name:        "COPA",
			Description: "Commonsense causal reasoning (effect = cause shifted)",
			Choices:     2,
			gen: func(rng *tensor.RNG, vocab int) Example {
				// Cause span; candidate effect is cause+1 (plausible) or
				// random (implausible).
				contentN := vocab - TokBase
				cause := make([]int, 3)
				for i := range cause {
					cause[i] = TokBase + rng.Intn(contentN)
				}
				label := rng.Intn(2)
				effect := make([]int, 3)
				if label == 1 {
					for i, v := range cause {
						effect[i] = TokBase + (v-TokBase+1)%contentN
					}
				} else {
					for i := range effect {
						effect[i] = TokBase + rng.Intn(contentN)
					}
					// Guarantee a mismatch at position 0.
					for effect[0] == TokBase+(cause[0]-TokBase+1)%contentN {
						effect[0] = TokBase + rng.Intn(contentN)
					}
				}
				prompt := append(append([]int{}, cause...), TokSep)
				prompt = append(prompt, effect...)
				return classify(prompt, label, binaryChoices)
			},
		},
		{
			Name:        "HellaSwag",
			Description: "Natural language commonsense (sequence continuation)",
			Choices:     4,
			gen: func(rng *tensor.RNG, vocab int) Example {
				// Arithmetic progression; the label encodes the stride,
				// which the model reads off the prompt.
				contentN := vocab - TokBase
				stride := 1 + rng.Intn(4) // 1..4 → label 0..3
				start := rng.Intn(contentN)
				prompt := make([]int, 5)
				for i := range prompt {
					prompt[i] = TokBase + (start+i*stride)%contentN
				}
				return classify(prompt, stride-1, fourChoices())
			},
		},
	}
}

// TaskByName finds a task.
func TaskByName(name string) (Task, error) {
	for _, t := range Tasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("data: unknown task %q", name)
}
