package data

import "longexposure/internal/tensor"

// E2ECorpus generates the E2E-style slot-to-text workload used for
// performance evaluation: a "meaning representation" of key/value slots
// followed by a deterministic verbalization (each slot pair maps through a
// fixed random table). The mapping is learnable, and the token statistics
// (few hot keys, many values) give the model input-dependent structure that
// drives realistic sparse patterns.
type E2ECorpus struct {
	Vocab    int
	Slots    int // slot pairs per example
	verbtab  []int
	contentN int
}

// NewE2ECorpus builds a corpus generator for a model vocabulary.
func NewE2ECorpus(vocab, slots int, seed uint64) *E2ECorpus {
	rng := tensor.NewRNG(seed)
	contentN := vocab - TokBase
	tab := make([]int, contentN*2)
	for i := range tab {
		tab[i] = TokBase + rng.Intn(contentN)
	}
	return &E2ECorpus{Vocab: vocab, Slots: slots, verbtab: tab, contentN: contentN}
}

// Generate produces n examples.
func (c *E2ECorpus) Generate(n int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	keyN := max(4, c.contentN/8) // few hot keys
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		var prompt, completion []int
		for s := 0; s < c.Slots; s++ {
			key := TokBase + rng.Intn(keyN)
			val := TokBase + rng.Intn(c.contentN)
			prompt = append(prompt, key, val)
			// Verbalization: two tokens per slot from the fixed table.
			completion = append(completion,
				c.verbtab[(key-TokBase)*2%len(c.verbtab)],
				c.verbtab[((val-TokBase)*2+1)%len(c.verbtab)])
		}
		prompt = append(prompt, TokSep)
		completion = append(completion, TokEOS)
		out = append(out, lmExample(prompt, completion))
	}
	return out
}

// AlpacaCorpus generates the Alpaca-style instruction-following workload
// used for accuracy validation: each example draws one of K instruction
// templates (copy, reverse, increment, every-second, last-first), renders an
// instruction prefix, an input span, and the transformed response. All
// templates are exactly learnable, so fine-tuning measurably improves the
// model and sparse-vs-dense deltas are visible.
type AlpacaCorpus struct {
	Vocab   int
	SpanLen int
}

// NewAlpacaCorpus builds the generator.
func NewAlpacaCorpus(vocab, spanLen int) *AlpacaCorpus {
	return &AlpacaCorpus{Vocab: vocab, SpanLen: spanLen}
}

// templates: id token prefixes distinguish the instruction.
const numAlpacaTemplates = 5

// Generate produces n examples.
func (c *AlpacaCorpus) Generate(n int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	contentN := c.Vocab - TokBase
	out := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		tmpl := rng.Intn(numAlpacaTemplates)
		span := make([]int, c.SpanLen)
		for j := range span {
			span[j] = TokBase + rng.Intn(contentN)
		}
		resp := make([]int, len(span))
		switch tmpl {
		case 0: // copy
			copy(resp, span)
		case 1: // reverse
			for j := range span {
				resp[j] = span[len(span)-1-j]
			}
		case 2: // increment (mod content range)
			for j, v := range span {
				resp[j] = TokBase + (v-TokBase+1)%contentN
			}
		case 3: // every second token, repeated to length
			for j := range resp {
				resp[j] = span[(2*j)%len(span)]
			}
		case 4: // rotate by one
			for j := range span {
				resp[j] = span[(j+1)%len(span)]
			}
		}
		prompt := append([]int{TokBase + tmpl}, span...) // template id token
		prompt = append(prompt, TokSep)
		completion := append(resp, TokEOS)
		out = append(out, lmExample(prompt, completion))
	}
	return out
}
