package data

import (
	"testing"

	"longexposure/internal/nn"
)

func TestLMExampleSupervisionRegion(t *testing.T) {
	prompt := []int{10, 11}
	completion := []int{20, 21, 22}
	e := lmExample(prompt, completion)
	// seq = BOS 10 11 20 21 22 ; input drops last.
	wantInput := []int{TokBOS, 10, 11, 20, 21}
	if len(e.Input) != len(wantInput) {
		t.Fatalf("input length %d", len(e.Input))
	}
	for i, v := range wantInput {
		if e.Input[i] != v {
			t.Fatalf("input[%d] = %d, want %d", i, e.Input[i], v)
		}
	}
	wantTarget := []int{nn.IgnoreIndex, nn.IgnoreIndex, 20, 21, 22}
	for i, v := range wantTarget {
		if e.Target[i] != v {
			t.Fatalf("target[%d] = %d, want %d", i, e.Target[i], v)
		}
	}
}

func TestPadToAndBatches(t *testing.T) {
	e := Example{Input: []int{1, 2}, Target: []int{3, 4}}
	p := PadTo(e, 5)
	if len(p.Input) != 5 || p.Input[4] != TokPad {
		t.Fatalf("PadTo input = %v", p.Input)
	}
	if p.Target[4] != nn.IgnoreIndex {
		t.Fatalf("PadTo target = %v", p.Target)
	}

	examples := make([]Example, 7)
	for i := range examples {
		examples[i] = e
	}
	bs := Batches(examples, 2, 5)
	if len(bs) != 3 {
		t.Fatalf("got %d batches, want 3 (ragged tail dropped)", len(bs))
	}
	if len(bs[0].Inputs) != 2 || len(bs[0].Inputs[0]) != 5 {
		t.Fatal("batch shapes wrong")
	}
}

func TestE2EDeterministicAndConsistent(t *testing.T) {
	c := NewE2ECorpus(128, 3, 42)
	a := c.Generate(5, 7)
	b := c.Generate(5, 7)
	if len(a) != 5 {
		t.Fatalf("generated %d", len(a))
	}
	for i := range a {
		if len(a[i].Input) != len(b[i].Input) {
			t.Fatal("nondeterministic lengths")
		}
		for j := range a[i].Input {
			if a[i].Input[j] != b[i].Input[j] {
				t.Fatal("nondeterministic inputs")
			}
		}
	}
	// Verbalization consistency: the same slot key always maps to the same
	// first completion token. Find two examples sharing a key.
	c2 := NewE2ECorpus(64, 1, 1)
	seen := map[int]int{} // key → verb token
	for _, e := range c2.Generate(200, 3) {
		key := e.Input[1] // BOS key val SEP ...
		// First supervised target token after the SEP position.
		var verb int
		for i, tg := range e.Target {
			if tg != nn.IgnoreIndex {
				verb = e.Target[i]
				break
			}
		}
		if prev, ok := seen[key]; ok && prev != verb {
			t.Fatalf("key %d verbalized as both %d and %d", key, prev, verb)
		}
		seen[key] = verb
	}
}

func TestAlpacaTemplatesLearnableStructure(t *testing.T) {
	c := NewAlpacaCorpus(96, 4)
	examples := c.Generate(100, 11)
	if len(examples) != 100 {
		t.Fatal("wrong count")
	}
	reversed := 0
	for _, e := range examples {
		// Input: BOS tmpl s0 s1 s2 s3 SEP r0 r1 r2 (input drops final token)
		tmpl := e.Input[1] - TokBase
		span := e.Input[2:6]
		if e.Input[6] != TokSep {
			t.Fatalf("SEP not where expected: %v", e.Input)
		}
		// Recover the full response from the targets.
		var resp []int
		for _, tg := range e.Target {
			if tg != nn.IgnoreIndex && tg != TokEOS {
				resp = append(resp, tg)
			}
		}
		if len(resp) != 4 {
			t.Fatalf("response length %d", len(resp))
		}
		if tmpl == 1 { // reverse
			reversed++
			for j := range span {
				if resp[j] != span[len(span)-1-j] {
					t.Fatalf("reverse template broken: span %v resp %v", span, resp)
				}
			}
		}
		if tmpl == 0 { // copy
			for j := range span {
				if resp[j] != span[j] {
					t.Fatalf("copy template broken")
				}
			}
		}
	}
	if reversed == 0 {
		t.Fatal("no reverse examples in 100 draws")
	}
}

func TestTasksShapeAndDeterminism(t *testing.T) {
	for _, task := range Tasks() {
		a := task.Generate(20, 64, 5)
		b := task.Generate(20, 64, 5)
		for i := range a {
			if a[i].Label != b[i].Label {
				t.Fatalf("%s: nondeterministic labels", task.Name)
			}
			e := a[i]
			if e.Label < 0 || e.Label >= task.Choices {
				t.Fatalf("%s: label %d outside %d choices", task.Name, e.Label, task.Choices)
			}
			if e.AnswerPos != len(e.Target)-1 {
				t.Fatalf("%s: answer not at final position", task.Name)
			}
			if e.Target[e.AnswerPos] != e.Choices[e.Label] {
				t.Fatalf("%s: target/label mismatch", task.Name)
			}
			for j := 0; j < e.AnswerPos; j++ {
				if e.Target[j] != nn.IgnoreIndex {
					t.Fatalf("%s: prompt position %d supervised", task.Name, j)
				}
			}
		}
	}
}

func TestTaskLabelsReflectRules(t *testing.T) {
	vocab := 64
	// PIQA: label 1 ⇔ first candidate is the majority evidence token.
	for _, e := range TaskByNameMust("PIQA").Generate(50, vocab, 9) {
		a, b := e.Input[1], e.Input[2]
		counts := map[int]int{}
		for _, tok := range e.Input[4:] { // evidence region (skip BOS a b SEP)
			if tok != TokSep {
				counts[tok]++
			}
		}
		want := 0
		if counts[a] > counts[b] {
			want = 1
		}
		if e.Label != want {
			t.Fatalf("PIQA label %d, majority says %d (a=%d#%d b=%d#%d)", e.Label, want, a, counts[a], b, counts[b])
		}
	}
	// Winogrande: label 1 ⇔ slot token equals referent.
	for _, e := range TaskByNameMust("Winogrande").Generate(50, vocab, 10) {
		want := 0
		if e.Input[3] == e.Input[1] {
			want = 1
		}
		if e.Label != want {
			t.Fatal("Winogrande rule broken")
		}
	}
	// HellaSwag: label = stride − 1.
	for _, e := range TaskByNameMust("HellaSwag").Generate(50, vocab, 11) {
		contentN := vocab - TokBase
		d := ((e.Input[2] - e.Input[1]) + contentN) % contentN
		if e.Label != d-1 {
			t.Fatalf("HellaSwag stride %d label %d", d, e.Label)
		}
	}
}

func TaskByNameMust(name string) Task {
	t, err := TaskByName(name)
	if err != nil {
		panic(err)
	}
	return t
}

func TestTaskByNameUnknown(t *testing.T) {
	if _, err := TaskByName("nope"); err == nil {
		t.Fatal("unknown task accepted")
	}
	if len(Tasks()) != 5 {
		t.Fatalf("Table III needs 5 tasks, got %d", len(Tasks()))
	}
}

func TestLabelBalance(t *testing.T) {
	// Generators must be roughly balanced or accuracy numbers are
	// meaningless.
	for _, task := range Tasks() {
		counts := make([]int, task.Choices)
		for _, e := range task.Generate(400, 64, 13) {
			counts[e.Label]++
		}
		for c, n := range counts {
			expected := 400 / task.Choices
			if n < expected/2 {
				t.Fatalf("%s: class %d has only %d of ~%d", task.Name, c, n, expected)
			}
		}
	}
}
