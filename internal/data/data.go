// Package data provides the synthetic workloads standing in for the paper's
// datasets: an E2E-style slot-to-text generation corpus (performance
// evaluation), an Alpaca-style instruction corpus (accuracy fine-tuning),
// and five downstream classification tasks mirroring Table III. Every
// generator is seeded and deterministic.
//
// Substitution note (DESIGN.md §2): the real datasets gate on tokenizers and
// downloads that an offline pure-Go build cannot reproduce; what the
// experiments actually need is (a) realistic token streams to drive sparsity
// measurements and (b) learnable task structure so sparse-vs-dense accuracy
// can be compared. These generators provide exactly that.
package data

import "longexposure/internal/nn"

// Reserved token ids. Generators only emit ids ≥ TokBase for content.
const (
	TokPad = 0
	TokBOS = 1
	TokSep = 2
	TokEOS = 3
	// TokNo / TokYes are the binary-classification answer tokens.
	TokNo  = 4
	TokYes = 5
	// TokChoiceBase starts the multiple-choice answer tokens (4 choices).
	TokChoiceBase = 6
	// TokBase is the first free content token.
	TokBase = 10
)

// Example is one training or evaluation item: equal-length input and target
// token rows. Target positions carrying nn.IgnoreIndex (prompt and padding)
// do not contribute to the loss. Label is the class index for
// classification tasks (-1 for pure LM examples).
type Example struct {
	Input  []int
	Target []int
	Label  int
	// Choices lists the answer-token candidates for classification
	// examples (nil for LM examples). Evaluation restricts argmax to them.
	Choices []int
	// AnswerPos is the target position holding the answer token (-1 for LM).
	AnswerPos int
}

// Batch groups examples into the [][]int form the model consumes.
type Batch struct {
	Inputs  [][]int
	Targets [][]int
	// Examples retains the originals for evaluation metadata.
	Examples []Example
}

// PadTo right-pads input/target to length s (input with TokPad, target with
// IgnoreIndex). Rows longer than s are truncated.
func PadTo(e Example, s int) Example {
	in := make([]int, s)
	tg := make([]int, s)
	for i := range tg {
		tg[i] = nn.IgnoreIndex
	}
	n := min(len(e.Input), s)
	copy(in, e.Input[:n])
	copy(tg, e.Target[:min(len(e.Target), s)])
	out := e
	out.Input, out.Target = in, tg
	return out
}

// Batches packs examples into fixed-shape batches of the given size and
// sequence length, dropping the ragged tail.
func Batches(examples []Example, batchSize, seqLen int) []Batch {
	var out []Batch
	for start := 0; start+batchSize <= len(examples); start += batchSize {
		b := Batch{}
		for _, e := range examples[start : start+batchSize] {
			p := PadTo(e, seqLen)
			b.Inputs = append(b.Inputs, p.Input)
			b.Targets = append(b.Targets, p.Target)
			b.Examples = append(b.Examples, p)
		}
		out = append(out, b)
	}
	return out
}

// lmExample builds a next-token-prediction example from a prompt and a
// completion: the model sees prompt+completion and is supervised only on
// the completion region (standard instruction-tuning masking).
func lmExample(prompt, completion []int) Example {
	seq := make([]int, 0, len(prompt)+len(completion)+1)
	seq = append(seq, TokBOS)
	seq = append(seq, prompt...)
	seq = append(seq, completion...)

	input := seq[:len(seq)-1]
	target := make([]int, len(input))
	for i := range target {
		target[i] = nn.IgnoreIndex
	}
	// Supervise positions whose *next* token is in the completion.
	compStart := 1 + len(prompt) // index in seq where completion begins
	for i := compStart - 1; i < len(input); i++ {
		target[i] = seq[i+1]
	}
	return Example{Input: input, Target: target, Label: -1, AnswerPos: -1}
}
