package bench

import (
	"fmt"

	"longexposure/internal/experiments"
)

// The experiments suite times whole paper-artifact drivers end to end in
// quick mode (real sim-scale training plus the cost model) — the
// macro-level complement to the kernels suite. Each driver runs Once per
// round; the first run also pays the shared calibration cost, which is why
// table1 warms the cache for the others.
func init() {
	Register("experiments", experimentSuite)
}

// experimentIDs are the drivers the suite times: the per-phase breakdown
// (table1), the headline OPT speedup figure (fig7), and the per-layer
// sparsity/performance figure (fig9).
var experimentIDs = []string{"table1", "fig7", "fig9"}

func experimentSuite(o Options) []Benchmark {
	var out []Benchmark
	for _, id := range experimentIDs {
		if !experiments.Known(id) {
			continue
		}
		id := id
		out = append(out, Benchmark{
			Name: "exp/" + id,
			Once: true,
			Fn: func() {
				opt := experiments.Options{Quick: true, Seed: 7}
				if _, err := experiments.Run(id, opt); err != nil {
					panic(fmt.Sprintf("bench: experiment %s: %v", id, err))
				}
			},
		})
	}
	return out
}
