package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"longexposure/internal/parallel"
)

// Result is one benchmark's measurement.
type Result struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops,omitempty"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp is the benchmark's declared memory traffic per op
	// (Benchmark.Bytes) — deterministic, machine-independent, and gated by
	// Compare so a kernel change cannot silently grow its weight or
	// activation streaming. The reduced-precision suites' headline bytes/op
	// ratios (f16 ≈ 2x under f32) live on this axis.
	BytesPerOp      float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
}

// Report is the BENCH_<suite>.json artifact: one suite run plus the
// machine/commit metadata needed to interpret it later.
type Report struct {
	Suite     string    `json:"suite"`
	CreatedAt time.Time `json:"created_at"`
	Commit    string    `json:"commit,omitempty"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	CPUs      int       `json:"cpus"`
	Workers   int       `json:"workers"`
	Host      string    `json:"host,omitempty"`
	Short     bool      `json:"short"`
	Results   []Result  `json:"results"`
}

// newReport stamps an empty report with the environment metadata.
func newReport(suite string, short bool) *Report {
	r := &Report{
		Suite:     suite,
		CreatedAt: time.Now().UTC(),
		Commit:    gitCommit(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Workers:   parallel.Workers(),
		Short:     short,
	}
	if h, err := os.Hostname(); err == nil {
		r.Host = h
	}
	return r
}

// gitCommit best-effort resolves the current short commit hash; empty when
// git or the repository is unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Find returns the result with the given name, if present.
func (r *Report) Find(name string) (Result, bool) {
	for _, res := range r.Results {
		if res.Name == name {
			return res, true
		}
	}
	return Result{}, false
}

// Write serializes the report (indented, trailing newline) to path.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by Write.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &r, nil
}
