// The train_step suite measures a full fine-tuning step — forward,
// backward, optimizer update — on a small primed sim config, with and
// without the workspace arena. Its allocs_per_op numbers are what CI's
// allocation gate locks in: the workspace path must stay at (near) zero
// steady-state allocations, and the nows baseline documents what the
// allocating path costs.
//
// The suite pins the worker pool to one worker for the duration of each
// measurement: allocs/op is a property of the code path, and with multiple
// workers every parallel region adds per-spawn goroutine allocations that
// both paths pay identically — noise that would track the runner's core
// count instead of the memory model.
package bench

import (
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/parallel"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

func init() {
	Register("train_step", trainStepSuite)
}

// trainStepBatch builds a deterministic copy-task batch.
func trainStepBatch(vocab, batchSize, seqLen int, seed uint64) data.Batch {
	rng := tensor.NewRNG(seed)
	var examples []data.Example
	for i := 0; i < batchSize; i++ {
		in := make([]int, seqLen)
		tg := make([]int, seqLen)
		for j := range in {
			in[j] = data.TokBase + rng.Intn(vocab-data.TokBase)
			tg[j] = in[j]
		}
		examples = append(examples, data.Example{Input: in, Target: tg, Label: -1, AnswerPos: -1})
	}
	return data.Batches(examples, batchSize, seqLen)[0]
}

// newTrainStepEngine builds a primed LoRA engine on the small sim config.
func newTrainStepEngine(noWS bool) (*train.Engine, data.Batch) {
	spec := model.SimSmall(nn.ActReLU)
	r := tensor.NewRNG(1234)
	m := nn.NewTransformer(spec.Config, r)
	model.PrimeSparsity(m, r.Split(), 8)
	peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
	e := &train.Engine{Model: m, Opt: peft.NewAdamW(1e-3, 0), NoWorkspace: noWS}
	b := trainStepBatch(spec.Config.Vocab, 2, 16, 99)
	return e, b
}

// stepFlops approximates the arithmetic of one step: forward ≈ 2·P·T
// multiply-adds over P parameters and T tokens, backward ≈ 2× forward.
func stepFlops(spec model.Spec, tokens int) int64 {
	return 3 * 2 * spec.ParamCount() * int64(tokens)
}

func trainStepSuite(o Options) []Benchmark {
	spec := model.SimSmall(nn.ActReLU)
	flops := stepFlops(spec, 2*16)

	mk := func(name string, noWS bool) Benchmark {
		var e *train.Engine
		var b data.Batch
		return Benchmark{
			Name:  name,
			Flops: flops,
			Setup: func() {
				e, b = newTrainStepEngine(noWS)
				old := parallel.SetWorkers(1)
				e.Step(b) // warmup step 1: arena fill, optimizer state
				parallel.SetWorkers(old)
			},
			Fn: func() {
				old := parallel.SetWorkers(1)
				e.Step(b)
				parallel.SetWorkers(old)
			},
		}
	}

	return []Benchmark{
		mk("train_step/ws", false),
		mk("train_step/nows", true),
	}
}
