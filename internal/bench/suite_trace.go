// The trace suite defends the tracing plane's promise: a sampled span's
// start/finish round-trip costs tens of nanoseconds and zero allocations
// (pooled spans, seqlock ring), and with tracing wired in but sampling
// off the flagship zero-alloc paths — the instrumented training step and
// the KV-cached decode step — still allocate nothing: an unsampled span
// is a nil pointer and every operation on it is a single-branch no-op.
// CI gates both the ns/op of the sampled round-trip and the allocs/op of
// the traced-but-unsampled hot paths.
package bench

import (
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
	"longexposure/internal/trace"
	"longexposure/internal/train"
)

func init() {
	Register("trace", traceSuite)
}

func traceSuite(o Options) []Benchmark {
	var benchmarks []Benchmark

	// ---- raw span primitives ----
	var sampled, unsampled *trace.Tracer
	benchmarks = append(benchmarks,
		Benchmark{
			Name: "trace/span_start_finish",
			Setup: func() {
				sampled = trace.New(trace.Config{SampleRatio: 1, Capacity: 1024, Seed: 1})
				for i := 0; i < 64; i++ { // warm the span pool
					sampled.StartRoot("warm", trace.SpanContext{}).Finish()
				}
			},
			Fn: func() {
				sp := sampled.StartRoot("bench.op", trace.SpanContext{})
				sp.SetInt("k", 1)
				sp.Finish()
			},
		},
		Benchmark{
			Name: "trace/span_unsampled",
			Setup: func() {
				unsampled = trace.New(trace.Config{SampleRatio: 0, Capacity: 1024, Seed: 1})
			},
			Fn: func() {
				// The full per-request call shape against a nil span.
				sp := unsampled.StartRoot("bench.op", trace.SpanContext{})
				sp.SetInt("k", 1)
				child := sp.StartChild("bench.child")
				child.SetInt("k", 2)
				child.Finish()
				sp.Finish()
			},
		},
	)

	// ---- traced training step, sampling off ----
	// The production jobs-worker configuration: metrics attached AND the
	// tracer wired (eng.Span comes from a ratio-0 tracer, i.e. nil). The
	// gate proves threading tracing through train.Engine.Step did not
	// reopen the zero-allocation steady state.
	{
		spec := model.SimSmall(nn.ActReLU)
		flops := stepFlops(spec, 2*16)
		var eng *train.Engine
		var b data.Batch
		benchmarks = append(benchmarks, Benchmark{
			Name:  "trace/train_step_traced_off",
			Flops: flops,
			Setup: func() {
				eng, b = newTrainStepEngine(false)
				eng.Metrics = obs.NewTrainMetrics(obs.NewRegistry())
				tr := trace.New(trace.Config{SampleRatio: 0, Seed: 1})
				eng.Span = tr.StartRoot("jobs.run", trace.SpanContext{}) // nil: unsampled
				old := parallel.SetWorkers(1)
				eng.Step(b) // warmup: arena fill, optimizer state
				parallel.SetWorkers(old)
			},
			Fn: func() {
				old := parallel.SetWorkers(1)
				eng.Step(b)
				parallel.SetWorkers(old)
			},
		})
	}

	// ---- traced KV-cached decode step, sampling off ----
	// One token through the cached decode path plus the per-step span
	// operations the infer scheduler performs against an unsampled (nil)
	// sequence span — the serving hot path with tracing wired in.
	{
		spec := model.SimSmall(nn.ActReLU)
		var (
			m       *nn.Transformer
			seqSpan *trace.Span
			cache   *nn.KVCache
			ws      *tensor.Arena
			rng     *tensor.RNG
			p0      int
			buf     [1]int
		)
		benchmarks = append(benchmarks, Benchmark{
			Name:  "trace/decode_step_traced_off",
			Flops: 2 * spec.ParamCount(),
			Setup: func() {
				var prompt []int
				m, prompt = generateModel(true)
				tr := trace.New(trace.Config{SampleRatio: 0, Seed: 1})
				seqSpan = tr.StartRoot("infer.sequence", trace.SpanContext{}) // nil: unsampled
				cache = m.NewKVCache()
				ws = tensor.NewArena()
				rng = tensor.NewRNG(7)
				old := parallel.SetWorkers(1)
				logits := m.DecodeStep(cache, prompt, nil, ws) // prefill
				buf[0] = nn.SampleToken(logits.Row(0), 0, rng)
				ws.Release()
				p0 = cache.Len
				// One warm decode step so arena classes exist.
				m.DecodeStep(cache, buf[:], nil, ws)
				ws.Release()
				parallel.SetWorkers(old)
			},
			Fn: func() {
				old := parallel.SetWorkers(1)
				cache.Len = p0 // rewind: decode the same position every op
				sp := seqSpan.StartChild("infer.decode_step")
				sp.SetInt("step", 1)
				logits := m.DecodeStep(cache, buf[:], nil, ws)
				tok := nn.SampleToken(logits.Row(0), 0, rng)
				sp.SetInt("batch", 1)
				sp.Finish()
				ws.Release()
				buf[0] = tok
				parallel.SetWorkers(old)
			},
		})
	}

	return benchmarks
}
