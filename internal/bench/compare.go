package bench

import (
	"fmt"
	"strings"
)

// Delta is one benchmark's change versus a baseline report.
type Delta struct {
	Name       string  `json:"name"`
	BaseNs     float64 `json:"base_ns_per_op"`
	NewNs      float64 `json:"new_ns_per_op"`
	Ratio      float64 `json:"ratio"` // NewNs / BaseNs; >1 is slower
	BaseAllocs float64 `json:"base_allocs_per_op"`
	NewAllocs  float64 `json:"new_allocs_per_op"`
	BaseBytes  float64 `json:"base_bytes_per_op,omitempty"`
	NewBytes   float64 `json:"new_bytes_per_op,omitempty"`
	// Regressed flags a wall-clock regression (ns/op ratio beyond the
	// tolerance); AllocsRegressed flags an allocation regression (allocs/op
	// grew by more than the absolute tolerance); BytesRegressed flags
	// declared memory traffic growing beyond its relative tolerance. Any
	// axis fails the gate.
	Regressed       bool `json:"regressed"`
	AllocsRegressed bool `json:"allocs_regressed"`
	BytesRegressed  bool `json:"bytes_regressed,omitempty"`
}

// Tolerances bound how much a benchmark may degrade versus its baseline
// before the CI gate fails.
type Tolerances struct {
	// Ns is the allowed relative ns/op slowdown (0.20 = 20% slower).
	Ns float64
	// Allocs is the allowed *absolute* growth in allocs/op. Absolute, not
	// relative: the workspace path's baseline is ~zero, where any relative
	// threshold is either vacuous or infinitely strict. A negative value
	// disables allocation gating.
	Allocs float64
	// Bytes is the allowed relative growth in declared bytes/op. Bytes/op
	// is deterministic (it is the suite's own traffic accounting), so the
	// tolerance mostly absorbs intentional re-accounting; growth beyond it
	// means a kernel started streaming more data. A negative value
	// disables the bytes gate.
	Bytes float64
}

// Compare matches cur's results against base by name and flags regressions:
// wall-clock when a benchmark got more than tol.Ns slower (ns/op ratio
// > 1+tol.Ns), allocation when allocs/op grew by more than tol.Allocs over
// the baseline, bytes when declared bytes/op grew relatively beyond
// tol.Bytes. Benchmarks present on only one side are skipped — suite
// membership changes must not fail CI. The second return is true when any
// benchmark regressed on any axis.
func Compare(base, cur *Report, tol Tolerances) ([]Delta, bool) {
	var deltas []Delta
	anyRegressed := false
	for _, res := range cur.Results {
		b, ok := base.Find(res.Name)
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:       res.Name,
			BaseNs:     b.NsPerOp,
			NewNs:      res.NsPerOp,
			Ratio:      res.NsPerOp / b.NsPerOp,
			BaseAllocs: b.AllocsPerOp,
			NewAllocs:  res.AllocsPerOp,
			BaseBytes:  b.BytesPerOp,
			NewBytes:   res.BytesPerOp,
		}
		d.Regressed = d.Ratio > 1+tol.Ns
		d.AllocsRegressed = tol.Allocs >= 0 && res.AllocsPerOp > b.AllocsPerOp+tol.Allocs
		d.BytesRegressed = tol.Bytes >= 0 && b.BytesPerOp > 0 &&
			res.BytesPerOp > b.BytesPerOp*(1+tol.Bytes)
		anyRegressed = anyRegressed || d.Regressed || d.AllocsRegressed || d.BytesRegressed
		deltas = append(deltas, d)
	}
	return deltas, anyRegressed
}

// FormatDeltas renders a fixed-width comparison table; rows that fail the
// gate are marked REGRESSED (ns/op), ALLOCS-REGRESSED (allocs/op) or
// BYTES-REGRESSED (declared bytes/op).
func FormatDeltas(deltas []Delta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %14s %14s %8s %12s %12s %14s %14s\n",
		"benchmark", "base ns/op", "new ns/op", "ratio", "base allocs", "new allocs", "base B/op", "new B/op")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark += "  REGRESSED"
		}
		if d.AllocsRegressed {
			mark += "  ALLOCS-REGRESSED"
		}
		if d.BytesRegressed {
			mark += "  BYTES-REGRESSED"
		}
		fmt.Fprintf(&sb, "%-36s %14.0f %14.0f %7.2fx %12.0f %12.0f %14.0f %14.0f%s\n",
			d.Name, d.BaseNs, d.NewNs, d.Ratio, d.BaseAllocs, d.NewAllocs, d.BaseBytes, d.NewBytes, mark)
	}
	return sb.String()
}
