package bench

import (
	"fmt"
	"strings"
)

// Delta is one benchmark's change versus a baseline report.
type Delta struct {
	Name      string  `json:"name"`
	BaseNs    float64 `json:"base_ns_per_op"`
	NewNs     float64 `json:"new_ns_per_op"`
	Ratio     float64 `json:"ratio"` // NewNs / BaseNs; >1 is slower
	Regressed bool    `json:"regressed"`
}

// Compare matches cur's results against base by name and flags regressions:
// a benchmark regressed when it got more than tolerance slower (ns/op ratio
// > 1+tolerance). Benchmarks present on only one side are skipped — suite
// membership changes must not fail CI. The second return is true when any
// benchmark regressed.
func Compare(base, cur *Report, tolerance float64) ([]Delta, bool) {
	var deltas []Delta
	anyRegressed := false
	for _, res := range cur.Results {
		b, ok := base.Find(res.Name)
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		d := Delta{
			Name:   res.Name,
			BaseNs: b.NsPerOp,
			NewNs:  res.NsPerOp,
			Ratio:  res.NsPerOp / b.NsPerOp,
		}
		d.Regressed = d.Ratio > 1+tolerance
		anyRegressed = anyRegressed || d.Regressed
		deltas = append(deltas, d)
	}
	return deltas, anyRegressed
}

// FormatDeltas renders a fixed-width comparison table; regressed rows are
// marked REGRESSED.
func FormatDeltas(deltas []Delta) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %14s %14s %8s\n", "benchmark", "base ns/op", "new ns/op", "ratio")
	for _, d := range deltas {
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&sb, "%-36s %14.0f %14.0f %7.2fx%s\n", d.Name, d.BaseNs, d.NewNs, d.Ratio, mark)
	}
	return sb.String()
}
