package bench

import (
	"path/filepath"
	"regexp"
	"testing"
	"time"
)

// fastOpts keeps runner tests quick.
func fastOpts() Options {
	return Options{Warmup: time.Millisecond, MinTime: 2 * time.Millisecond, Repeats: 2}
}

func TestRunOneReportsRates(t *testing.T) {
	n := 64
	a := make([]float32, n)
	var sink float32
	res := RunOne(Benchmark{
		Name:  "axpy",
		Flops: int64(2 * n),
		Bytes: int64(4 * n),
		Fn: func() {
			for i := range a {
				sink += 2 * a[i]
			}
		},
	}, fastOpts())
	_ = sink
	if res.Name != "axpy" || res.Iters < 1 || res.NsPerOp <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.GFLOPS <= 0 || res.MBPerS <= 0 {
		t.Fatalf("rates not computed: %+v", res)
	}
}

func TestRunOneOnce(t *testing.T) {
	calls := 0
	setup := 0
	res := RunOne(Benchmark{
		Name:  "once",
		Once:  true,
		Setup: func() { setup++ },
		Fn:    func() { calls++; time.Sleep(time.Millisecond) },
	}, fastOpts())
	if setup != 1 {
		t.Fatalf("setup ran %d times", setup)
	}
	if res.Iters != 1 {
		t.Fatalf("Iters = %d, want 1", res.Iters)
	}
	// Once benchmarks run per round plus one alloc probe, never calibrated.
	if calls > 4 {
		t.Fatalf("fn called %d times for a Once benchmark", calls)
	}
	if res.NsPerOp < float64(time.Millisecond.Nanoseconds()) {
		t.Fatalf("NsPerOp = %v, want >= 1ms", res.NsPerOp)
	}
}

func TestSuitesRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, s := range Suites() {
		have[s] = true
	}
	for _, want := range []string{"kernels", "experiments"} {
		if !have[want] {
			t.Fatalf("suite %q not registered (have %v)", want, Suites())
		}
	}
}

func TestRunSuiteUnknown(t *testing.T) {
	if _, err := RunSuite("nope", Options{}, nil); err == nil {
		t.Fatal("expected error for unknown suite")
	}
}

func TestRunSuiteFilterAndReport(t *testing.T) {
	o := fastOpts()
	o.Short = true
	o.Filter = regexp.MustCompile(`^gemm/dense/tiled/128$`)
	var seen []string
	rep, err := RunSuite("kernels", o, func(r Result) { seen = append(seen, r.Name) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "gemm/dense/tiled/128" {
		t.Fatalf("filter not applied: %v", seen)
	}
	if rep.Suite != "kernels" || rep.GoVersion == "" || rep.CPUs < 1 || rep.Workers < 1 {
		t.Fatalf("metadata missing: %+v", rep)
	}
	if rep.Results[0].GFLOPS <= 0 {
		t.Fatalf("GFLOP/s missing: %+v", rep.Results[0])
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := newReport("kernels", true)
	r.Results = []Result{{Name: "x", Iters: 3, NsPerOp: 42, GFLOPS: 1.5}}
	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "kernels" || !got.Short || len(got.Results) != 1 || got.Results[0].NsPerOp != 42 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, ok := got.Find("x"); !ok {
		t.Fatal("Find failed")
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Report{Suite: "kernels", Results: []Result{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
	}}
	cur := &Report{Suite: "kernels", Results: []Result{
		{Name: "a", NsPerOp: 115}, // +15%: within 20% tolerance
		{Name: "b", NsPerOp: 130}, // +30%: regression
		{Name: "new", NsPerOp: 50},
	}}
	deltas, regressed := Compare(base, cur, Tolerances{Ns: 0.20, Allocs: 16})
	if !regressed {
		t.Fatal("regression not flagged")
	}
	if len(deltas) != 2 {
		t.Fatalf("want 2 comparable deltas, got %v", deltas)
	}
	for _, d := range deltas {
		switch d.Name {
		case "a":
			if d.Regressed {
				t.Fatal("a within tolerance but flagged")
			}
		case "b":
			if !d.Regressed {
				t.Fatal("b regressed but not flagged")
			}
		}
	}
	if out := FormatDeltas(deltas); !regexp.MustCompile(`REGRESSED`).MatchString(out) {
		t.Fatalf("FormatDeltas missing marker:\n%s", out)
	}
	if _, bad := Compare(base, cur, Tolerances{Ns: 0.5, Allocs: 16}); bad {
		t.Fatal("50% tolerance should pass")
	}
}

func TestCompareFlagsAllocationRegressions(t *testing.T) {
	base := &Report{Suite: "train_step", Results: []Result{
		{Name: "train_step/ws", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "train_step/nows", NsPerOp: 100, AllocsPerOp: 360},
	}}
	cur := &Report{Suite: "train_step", Results: []Result{
		{Name: "train_step/ws", NsPerOp: 100, AllocsPerOp: 120}, // arena leak: +120 allocs
		{Name: "train_step/nows", NsPerOp: 100, AllocsPerOp: 370},
	}}
	deltas, regressed := Compare(base, cur, Tolerances{Ns: 0.20, Allocs: 16})
	if !regressed {
		t.Fatal("allocation regression not flagged")
	}
	for _, d := range deltas {
		switch d.Name {
		case "train_step/ws":
			if !d.AllocsRegressed {
				t.Fatal("ws allocation regression not flagged")
			}
			if d.Regressed {
				t.Fatal("ws wall-clock flagged without a slowdown")
			}
		case "train_step/nows":
			if d.AllocsRegressed {
				t.Fatal("nows +10 allocs is within the absolute tolerance")
			}
		}
	}
	if out := FormatDeltas(deltas); !regexp.MustCompile(`ALLOCS-REGRESSED`).MatchString(out) {
		t.Fatalf("FormatDeltas missing allocation marker:\n%s", out)
	}
	// Negative tolerance disables the allocation gate entirely.
	if _, bad := Compare(base, cur, Tolerances{Ns: 0.20, Allocs: -1}); bad {
		t.Fatal("disabled allocation gate still failed")
	}
}
