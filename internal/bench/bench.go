// Package bench is the repository's performance measurement substrate: a
// registry of named benchmark suites, a warmup/calibrate/repeat runner with
// GFLOP/s, ns/op and allocation accounting, a JSON report writer carrying
// machine and commit metadata (the BENCH_<suite>.json artifacts tracked by
// CI), and baseline comparison for regression gating.
//
// The paper's entire claim is a speedup; this package is how the repo
// measures and defends its own. cmd/lebench is the CLI front end.
package bench

import (
	"regexp"
	"runtime"
	"time"
)

// Benchmark is one registered measurement: Fn performs a single operation.
type Benchmark struct {
	Name  string
	Flops int64  // floating-point ops per op (0: GFLOP/s not reported)
	Bytes int64  // bytes touched per op (0: MB/s not reported)
	Setup func() // run once, untimed, before any iteration (may be nil)
	Fn    func() // one operation
	Once  bool   // run exactly one iteration per round (for whole experiments)
}

// Options tunes the runner.
type Options struct {
	Warmup  time.Duration  // untimed run-in per benchmark (default 50ms)
	MinTime time.Duration  // minimum timed duration per round (default 300ms)
	Repeats int            // rounds; the best (min ns/op) is reported (default 3)
	Filter  *regexp.Regexp // only run matching names (nil: all)
	Short   bool           // suites shrink sizes; runner shrinks budgets
}

func (o Options) warmup() time.Duration {
	if o.Warmup > 0 {
		return o.Warmup
	}
	if o.Short {
		return 20 * time.Millisecond
	}
	return 50 * time.Millisecond
}

func (o Options) minTime() time.Duration {
	if o.MinTime > 0 {
		return o.MinTime
	}
	if o.Short {
		return 100 * time.Millisecond
	}
	return 300 * time.Millisecond
}

func (o Options) repeats() int {
	if o.Repeats > 0 {
		return o.Repeats
	}
	if o.Short {
		return 2
	}
	return 3
}

// RunOne measures a single benchmark: warmup, iteration-count calibration to
// the round budget, Repeats timed rounds keeping the best ns/op (minimum —
// the least-noise estimate on shared machines), then a short instrumented
// run for per-op allocation stats.
func RunOne(b Benchmark, o Options) Result {
	if b.Setup != nil {
		b.Setup()
	}
	res := Result{Name: b.Name}
	if b.Once {
		best := time.Duration(1<<63 - 1)
		rounds := min(o.repeats(), 2)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			b.Fn()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		res.Iters = 1
		res.NsPerOp = float64(best.Nanoseconds())
	} else {
		for t0 := time.Now(); time.Since(t0) < o.warmup(); {
			b.Fn()
		}
		iters, elapsed := calibrate(b.Fn, o.minTime())
		best := perOp(elapsed, iters)
		for r := 1; r < o.repeats(); r++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				b.Fn()
			}
			if d := perOp(time.Since(t0), iters); d < best {
				best = d
			}
		}
		res.Iters = iters
		res.NsPerOp = best
	}
	res.BytesPerOp = float64(b.Bytes)
	if res.NsPerOp > 0 {
		if b.Flops > 0 {
			res.GFLOPS = float64(b.Flops) / res.NsPerOp
		}
		if b.Bytes > 0 {
			res.MBPerS = float64(b.Bytes) / res.NsPerOp * 1e3
		}
	}
	res.AllocsPerOp, res.AllocBytesPerOp = measureAllocs(b.Fn, res.Iters)
	return res
}

// calibrate grows the iteration count geometrically (like testing.B) until
// one round meets the budget, returning the final count and its elapsed time.
func calibrate(fn func(), budget time.Duration) (int, time.Duration) {
	iters := 1
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(t0)
		if elapsed >= budget || iters >= 1<<28 {
			return iters, elapsed
		}
		grow := 2.0
		if elapsed > 0 {
			// Aim 20% past the budget, but at most 100× per step.
			grow = min(1.2*float64(budget)/float64(elapsed), 100)
		}
		iters = max(iters+1, int(float64(iters)*grow))
	}
}

func perOp(d time.Duration, iters int) float64 {
	return float64(d.Nanoseconds()) / float64(iters)
}

// measureAllocs runs a small instrumented batch and reports per-op heap
// allocation counts and bytes. The batch is kept tiny so suites stay fast.
func measureAllocs(fn func(), iters int) (allocs, bytes float64) {
	n := min(iters, 16)
	if n < 1 {
		n = 1
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(n),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
}
