// The kernels_precision suite measures the reduced-precision weight
// pipeline against its f32 references, on both axes the tentpole claims:
//
//   - GFLOP/s of the f16/int8 packed tiled GEMM vs the f32 tiled core at
//     square sizes (the widening happens once per L1 panel, so throughput
//     should track f32 closely while streaming half / a quarter of the
//     weight bytes);
//   - bytes/op on the decode-shaped TB matvec (m=1 and m=8), where weight
//     streaming dominates, and the m=64 prefill shape where the packed path
//     reaches f32 ns/op parity at a ≥1.8x bytes/op reduction — the
//     documented acceptance claim;
//   - the 2:4 N:M structured-sparse matvec vs the dense core at 50%
//     structured sparsity;
//   - end-to-end cached decode on the sim model, f32 base vs int8 base.
//
// CI runs it in short mode and gates ns/op, allocs/op and bytes/op against
// the checked-in BENCH_kernels_precision.json baseline.
package bench

import (
	"fmt"

	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

func init() {
	Register("kernels_precision", precisionSuite)
}

func precisionSuite(o Options) []Benchmark {
	var out []Benchmark
	sizes := []int{128, 256}
	if !o.Short {
		sizes = append(sizes, 512)
	}
	for _, n := range sizes {
		out = append(out, packedGemmBenchmarks(n)...)
	}
	out = append(out, decodeMatvecBenchmarks(1024, 1024)...)
	out = append(out, prefillMatvecBenchmarks(64, 1536, 1536)...)
	out = append(out, nmBenchmarks(1024, 1024)...)
	out = append(out, decodeE2EBenchmarks(o)...)
	return out
}

// packedGemmBenchmarks compares the packed-storage GEMM cores against the
// f32 tiled core at n×n×n, with honest full-traffic byte accounting
// (a + b + c streams; b at its stored width).
func packedGemmBenchmarks(n int) []Benchmark {
	r := tensor.NewRNG(uint64(n))
	a, b, c := tensor.New(n, n), tensor.New(n, n), tensor.New(n, n)
	r.FillNormal(a, 1)
	r.FillNormal(b, 1)
	f16 := tensor.PackF16(b)
	i8 := tensor.PackInt8(b, tensor.ScalePerCol)
	flops := 2 * int64(n) * int64(n) * int64(n)
	f32Bytes := 4 * 3 * int64(n) * int64(n)
	return []Benchmark{
		{Name: fmt.Sprintf("gemm/f32/tiled/%d", n), Flops: flops, Bytes: f32Bytes, Fn: func() {
			c.Zero()
			tensor.GemmRange(c.Data, a.Data, b.Data, n, n, 0, n)
		}},
		{Name: fmt.Sprintf("gemm/f16/packed/%d", n), Flops: flops,
			Bytes: 4*2*int64(n)*int64(n) + f16.Bytes(), Fn: func() {
				c.Zero()
				tensor.GemmRangePacked(c.Data, a.Data, f16, n, n, 0, n)
			}},
		{Name: fmt.Sprintf("gemm/int8/packed/%d", n), Flops: flops,
			Bytes: 4*2*int64(n)*int64(n) + i8.Bytes(), Fn: func() {
				c.Zero()
				tensor.GemmRangePacked(c.Data, a.Data, i8, n, n, 0, n)
			}},
	}
}

// decodeMatvecBenchmarks is the decode-step shape (m tokens against a
// [k → n] weight matrix via the TB kernel) at m=1 and m=8. Compute is thin,
// weight streaming dominates, so bytes/op is the story — f16 packs to half
// the f32 traffic, int8 to under a quarter plus scales. At m=1 the per-panel
// widening is paid on every madd and packed kernels lose wall-clock (kept as
// the honest single-stream cost); at m=8 — one continuous-batching decode
// step — the widening amortizes across the batch and f16 reaches ns parity
// at the documented ≥1.8x traffic reduction.
func decodeMatvecBenchmarks(k, n int) []Benchmark {
	r := tensor.NewRNG(uint64(k + n))
	const mb = 8 // batched-step width
	x, y := tensor.New(mb, k), tensor.New(mb, n)
	w := tensor.New(n, k) // TB layout: row j is output j's weights
	r.FillNormal(x, 1)
	r.FillNormal(w, 1)
	f16 := tensor.PackF16(w)
	i8 := tensor.PackInt8(w, tensor.ScalePerRow)
	var out []Benchmark
	for _, m := range []int{1, mb} {
		m := m
		flops := 2 * int64(m) * int64(k) * int64(n)
		actBytes := 4 * int64(m) * int64(k+n) // x stream + y stream
		tag := fmt.Sprintf("m%dk%dn%d", m, k, n)
		out = append(out,
			Benchmark{Name: "decode/tb/f32/" + tag, Flops: flops, Bytes: actBytes + 4*int64(n)*int64(k), Fn: func() {
				y.Zero()
				tensor.GemmTBRange(y.Data, x.Data, w.Data, k, n, 0, m)
			}},
			Benchmark{Name: "decode/tb/f16/" + tag, Flops: flops, Bytes: actBytes + f16.Bytes(), Fn: func() {
				y.Zero()
				tensor.GemmTBRangePacked(y.Data, x.Data, f16, k, n, 0, m)
			}},
			Benchmark{Name: "decode/tb/int8/" + tag, Flops: flops, Bytes: actBytes + i8.Bytes(), Fn: func() {
				y.Zero()
				tensor.GemmTBRangePacked(y.Data, x.Data, i8, k, n, 0, m)
			}},
		)
	}
	return out
}

// prefillMatvecBenchmarks is the prefill-shaped TB sweep (m tokens at once)
// where the per-quad widening amortizes over all m output rows: at m=64 the
// packed kernels reach f32 ns/op parity (within ~10%, the residual being the
// one-time O(k·n) widening pass) while streaming ≥1.8x fewer bytes/op for
// f16 and >3x fewer for int8 — the documented bytes-at-parity acceptance
// claim for the f16 pipeline.
func prefillMatvecBenchmarks(m, k, n int) []Benchmark {
	r := tensor.NewRNG(uint64(m + k + n))
	x, y := tensor.New(m, k), tensor.New(m, n)
	w := tensor.New(n, k)
	r.FillNormal(x, 1)
	r.FillNormal(w, 1)
	f16 := tensor.PackF16(w)
	i8 := tensor.PackInt8(w, tensor.ScalePerRow)
	flops := 2 * int64(m) * int64(k) * int64(n)
	actBytes := 4 * int64(m) * int64(k+n)
	tag := fmt.Sprintf("m%dk%dn%d", m, k, n)
	return []Benchmark{
		{Name: "prefill/tb/f32/" + tag, Flops: flops, Bytes: actBytes + 4*int64(n)*int64(k), Fn: func() {
			y.Zero()
			tensor.GemmTBRange(y.Data, x.Data, w.Data, k, n, 0, m)
		}},
		{Name: "prefill/tb/f16/" + tag, Flops: flops, Bytes: actBytes + f16.Bytes(), Fn: func() {
			y.Zero()
			tensor.GemmTBRangePacked(y.Data, x.Data, f16, k, n, 0, m)
		}},
		{Name: "prefill/tb/int8/" + tag, Flops: flops, Bytes: actBytes + i8.Bytes(), Fn: func() {
			y.Zero()
			tensor.GemmTBRangePacked(y.Data, x.Data, i8, k, n, 0, m)
		}},
	}
}

// nmBenchmarks compares the 2:4 structured-sparse kernels against the dense
// TB core on the same [rows → cols] matrix — 50% structured sparsity, so
// the N:M kernels do half the multiply-adds and stream 0.625x the bytes.
// Two shapes: the m=1 gather (honest loss — its offset loads outweigh the
// halved madds) and the m=8 token-blocked MulTB, where the metadata loads
// amortize across the four-token panes and the N:M kernel beats the dense
// core outright.
func nmBenchmarks(rows, cols int) []Benchmark {
	r := tensor.NewRNG(uint64(rows * 2))
	w := tensor.New(rows, cols)
	r.FillNormal(w, 1)
	nm := sparse.PackNM(w.Data, rows, cols, 2, 4)
	const mb = 8
	x, y := tensor.New(mb, cols), tensor.New(mb, rows)
	r.FillNormal(x, 1)
	var out []Benchmark
	for _, m := range []int{1, mb} {
		m := m
		actBytes := 4 * int64(m) * int64(rows+cols)
		tag := fmt.Sprintf("m%dr%dc%d", m, rows, cols)
		out = append(out,
			Benchmark{Name: "nm/dense/" + tag, Flops: 2 * int64(m) * int64(rows) * int64(cols),
				Bytes: actBytes + 4*int64(rows)*int64(cols), Fn: func() {
					y.Zero()
					tensor.GemmTBRange(y.Data, x.Data, w.Data, cols, rows, 0, m)
				}},
			Benchmark{Name: "nm/24/" + tag, Flops: int64(m) * int64(rows) * int64(cols),
				Bytes: actBytes + nm.Bytes(), Fn: func() {
					y.Zero()
					nm.MulTB(y.Data, x.Data, m)
				}},
		)
	}
	return out
}

// decodeE2EBenchmarks runs full cached decode to MaxSeq on the sim model,
// f32 base against its int8-compressed twin — the serving-level payoff of
// the packed pipeline (generate-suite idiom: one op = one generation).
func decodeE2EBenchmarks(o Options) []Benchmark {
	spec := model.Sim(model.OPT1p3B())
	if o.Short {
		spec = model.SimSmall(nn.ActReLU)
	}
	promptLen := 8
	tokens := spec.Config.MaxSeq - promptLen
	cfg := nn.GenerateConfig{MaxTokens: spec.Config.MaxSeq}
	flops := genFlops(spec, tokens)

	build := func(precision string) *nn.Transformer {
		r := tensor.NewRNG(1234)
		m := nn.NewTransformer(spec.Config, r)
		model.PrimeSparsity(m, r.Split(), 8)
		if err := m.Compress(precision); err != nil {
			panic(err)
		}
		return m
	}
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = 10 + i
	}

	one := func(name, precision string) Benchmark {
		var m *nn.Transformer
		var cache *nn.KVCache
		var ws *tensor.Arena
		return Benchmark{
			Name:  name,
			Flops: flops,
			Setup: func() {
				m = build(precision)
				cache = m.NewKVCache()
				ws = tensor.NewArena()
				m.GenerateCached(prompt, cfg, nil, cache, ws) // warm the arena
			},
			Fn: func() {
				cache.Reset()
				m.GenerateCached(prompt, cfg, nil, cache, ws)
			},
		}
	}
	return []Benchmark{
		one("decode_e2e/f32", ""),
		one("decode_e2e/int8", nn.PrecisionI8),
	}
}
