// The generate suite measures autoregressive decoding to the model's full
// MaxSeq on a primed sim config — the serving hot path — comparing the
// KV-cached decode (with and without the workspace arena) against the
// naive full-prefix re-run nn.Generate performs. One op is one complete
// generation, so tokens/s = emitted tokens / (ns_per_op · 1e-9) and the
// cached-vs-naive ns/op ratio is exactly the tokens/s speedup the
// inference gateway banks per sequence. allocs_per_op locks in the cached
// path's arena discipline next to the naive path's per-token reallocation
// of the whole prefix.
package bench

import (
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

func init() {
	Register("generate", generateSuite)
}

// generateModel builds the primed LoRA sim model decoding runs on: the
// same construction path fine-tuning jobs use, so the measured shapes are
// the served shapes.
func generateModel(short bool) (*nn.Transformer, []int) {
	spec := model.Sim(model.OPT1p3B())
	if short {
		spec = model.SimSmall(nn.ActReLU)
	}
	r := tensor.NewRNG(1234)
	m := nn.NewTransformer(spec.Config, r)
	model.PrimeSparsity(m, r.Split(), 8)
	peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
	prompt := make([]int, 8)
	for i := range prompt {
		prompt[i] = 10 + i
	}
	return m, prompt
}

// genFlops approximates decode arithmetic per generation: ~2·P multiply
// -adds per token over P parameters for the cached path's per-token cost
// reference (the naive path does the same useful work, just recomputed).
func genFlops(spec model.Spec, tokens int) int64 {
	return 2 * spec.ParamCount() * int64(tokens)
}

func generateSuite(o Options) []Benchmark {
	spec := model.Sim(model.OPT1p3B())
	if o.Short {
		spec = model.SimSmall(nn.ActReLU)
	}
	promptLen := 8
	// Decode to the MaxSeq bound: Generate stops once the model-visible
	// sequence reaches MaxSeq, so MaxTokens just needs to be large enough.
	tokens := spec.Config.MaxSeq - promptLen
	cfg := nn.GenerateConfig{MaxTokens: spec.Config.MaxSeq}
	flops := genFlops(spec, tokens)

	var m *nn.Transformer
	var prompt []int
	setup := func() {
		if m == nil {
			m, prompt = generateModel(o.Short)
		}
	}

	var cache *nn.KVCache
	var ws *tensor.Arena
	return []Benchmark{
		{
			Name:  "generate/cached_ws",
			Flops: flops,
			Setup: func() {
				setup()
				cache = m.NewKVCache()
				ws = tensor.NewArena()
				m.GenerateCached(prompt, cfg, nil, cache, ws) // warm the arena
			},
			Fn: func() {
				cache.Reset()
				m.GenerateCached(prompt, cfg, nil, cache, ws)
			},
		},
		{
			Name:  "generate/cached_nows",
			Flops: flops,
			Setup: setup,
			Fn: func() {
				m.GenerateCached(prompt, cfg, nil, nil, nil)
			},
		},
		{
			Name:  "generate/naive",
			Flops: flops,
			Setup: setup,
			Fn: func() {
				m.Generate(prompt, cfg)
			},
		},
	}
}
