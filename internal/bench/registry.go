package bench

import (
	"fmt"
	"sort"
)

// A Builder constructs a suite's benchmarks for the given options (suites
// size themselves differently under Short).
type Builder func(Options) []Benchmark

var registry = map[string]Builder{}

// Register adds a named suite. Called from init() by the suite files;
// duplicate names panic because they indicate a programming error.
func Register(suite string, build Builder) {
	if _, dup := registry[suite]; dup {
		panic(fmt.Sprintf("bench: duplicate suite %q", suite))
	}
	registry[suite] = build
}

// Suites lists the registered suite names, sorted.
func Suites() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// RunSuite builds and runs one suite, invoking progress (if non-nil) after
// each benchmark completes, and returns the stamped report.
func RunSuite(suite string, o Options, progress func(Result)) (*Report, error) {
	build, ok := registry[suite]
	if !ok {
		return nil, fmt.Errorf("bench: unknown suite %q (have %v)", suite, Suites())
	}
	report := newReport(suite, o.Short)
	for _, b := range build(o) {
		if o.Filter != nil && !o.Filter.MatchString(b.Name) {
			continue
		}
		res := RunOne(b, o)
		report.Results = append(report.Results, res)
		if progress != nil {
			progress(res)
		}
	}
	return report, nil
}
