// The account suite defends the accounting plane's admission ticket: a
// serving replica can afford one wide event per completed request. Two
// claims are gated at zero allocations per op. First, Emit — ring slot
// copy, per-tenant rollup, metric folds, and the segmented disk append
// through the reused encode buffer — allocates nothing once the tenant
// entry and buffers are warm. Second, the instrumented cached decode
// step costs the same as the plain one: DecodeStats recording is plain
// field arithmetic on a caller-owned struct, so attaching the
// accumulator to the per-token hot path adds no GC pressure (the
// plain/stats pair pins the comparison).
package bench

import (
	"os"
	"path/filepath"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/tensor"
)

func init() {
	Register("account", accountSuite)
}

// benchEvent is a representative generate event: every identity string
// set (so the codec path length is realistic) and a full resource vector.
func benchEvent() account.Event {
	return account.Event{
		Kind:           account.KindGenerate,
		Tenant:         "bench-tenant",
		Route:          "POST /v1/generate",
		Adapter:        "sha256:0123456789abcdef",
		Base:           "sim-OPT-1.3B",
		TraceID:        "4bf92f3577b34da6a3ce929d0e0e4736",
		Outcome:        "length",
		Limit:          "admitted",
		PromptTokens:   8,
		OutputTokens:   152,
		DecodeSteps:    153,
		PlannedSteps:   152,
		DenseFLOPs:     9_400_000_000,
		ExecFLOPs:      6_100_000_000,
		MLPSavedFLOPs:  2_900_000_000,
		AttnSavedFLOPs: 400_000_000,
		PeakKVRows:     160,
		PeakKVBytes:    160 * 2048,
		ArenaBytes:     1 << 20,
		QueueWaitNs:    int64(50 * time.Microsecond),
		PrefillNs:      int64(2 * time.Millisecond),
		DecodeNs:       int64(80 * time.Millisecond),
		TotalNs:        int64(83 * time.Millisecond),
	}
}

func accountSuite(o Options) []Benchmark {
	var benchmarks []Benchmark

	// ---- emit, in-memory plane ----
	// The headline gate: ring slot copy + tenant rollup + metric folds at
	// zero allocations. Setup emits once so the tenant map entry exists.
	{
		var (
			plane *account.Plane
			ev    account.Event
		)
		benchmarks = append(benchmarks, Benchmark{
			Name: "account/emit",
			Setup: func() {
				var err error
				plane, err = account.New(account.Config{Ring: 1024, Metrics: obs.NewAccountMetrics(obs.NewRegistry())})
				if err != nil {
					panic(err)
				}
				ev = benchEvent()
				plane.Emit(&ev)
			},
			Fn: func() {
				plane.Emit(&ev)
			},
		})
	}

	// ---- emit, disk-backed plane ----
	// Same path plus the segmented log append: frame encode into the
	// reused buffer, CRC, one file write. The segment bound is set high
	// enough that no rotation happens inside a round, so the number is
	// the steady-state append cost.
	{
		var (
			plane *account.Plane
			ev    account.Event
		)
		dir := filepath.Join(os.TempDir(), "lexp-bench-account")
		benchmarks = append(benchmarks, Benchmark{
			Name: "account/emit_disk",
			Setup: func() {
				os.RemoveAll(dir)
				var err error
				plane, err = account.New(account.Config{
					Dir: dir, Ring: 1024, SegmentBytes: 1 << 30,
					Metrics: obs.NewAccountMetrics(obs.NewRegistry()),
				})
				if err != nil {
					panic(err)
				}
				ev = benchEvent()
				plane.Emit(&ev) // warm the tenant entry and encode buffer
			},
			Fn: func() {
				plane.Emit(&ev)
			},
		})
	}

	// ---- cached decode step, plain vs instrumented ----
	// One op is one single-token KV-cached decode step. The stats variant
	// attaches the DecodeStats accumulator exactly as the serving engine
	// does per sequence; both must hold zero allocations, pinning the
	// claim that per-request accounting is free on the token path.
	for _, withStats := range []bool{false, true} {
		name := "account/decode_step_plain"
		if withStats {
			name = "account/decode_step_stats"
		}
		instrumented := withStats
		var (
			m     *nn.Transformer
			cache *nn.KVCache
			ws    *tensor.Arena
			stats nn.DecodeStats
			feed  []int
		)
		benchmarks = append(benchmarks, Benchmark{
			Name: name,
			Setup: func() {
				m, _ = generateModel(o.Short)
				cache = m.NewKVCache()
				ws = tensor.NewArena()
				feed = []int{7}
				cfg := nn.DecodeStepConfig{WS: ws}
				if instrumented {
					cfg.Stats = &stats
				}
				// Prefill, then one full lap to MaxSeq so the cache and
				// arena buffers reach their high-water marks before timing.
				m.DecodeStepCfg(cache, []int{10, 11, 12, 13, 14, 15, 16, 17}, cfg)
				ws.Release()
				for cache.Len < m.Cfg.MaxSeq {
					m.DecodeStepCfg(cache, feed, cfg)
					ws.Release()
				}
			},
			Fn: func() {
				if cache.Len >= m.Cfg.MaxSeq {
					cache.Reset()
				}
				cfg := nn.DecodeStepConfig{WS: ws}
				if instrumented {
					cfg.Stats = &stats
				}
				m.DecodeStepCfg(cache, feed, cfg)
				ws.Release()
			},
		})
	}

	return benchmarks
}
