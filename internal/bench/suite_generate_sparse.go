// The generate_sparse suite measures predictor-gated contextual sparsity
// on the KV-cached decode hot path: dense cached generation versus the
// same generation planned by the serving estimator in auto mode (the
// /v1/generate default) and at a forced low density (the headroom bound).
// One op is one complete generation to MaxSeq, planner reused across ops
// — allocs_per_op therefore pins the steady-state contract that planning
// and sparse execution allocate nothing beyond what the dense cached path
// already does.
//
// The suite always runs the 4-layer sim miniature, short mode included:
// auto mode keeps the first and last layers dense (SparseLoRA layer
// sensitivity), so a 2-layer model would measure pure planning overhead
// with no sparsity to show for it.
package bench

import (
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

func init() {
	Register("generate_sparse", generateSparseSuite)
}

func generateSparseSuite(o Options) []Benchmark {
	spec := model.Sim(model.OPT1p3B())
	promptLen := 8
	tokens := spec.Config.MaxSeq - promptLen
	cfg := nn.GenerateConfig{MaxTokens: spec.Config.MaxSeq}
	flops := genFlops(spec, tokens)

	var m *nn.Transformer
	var sp *predictor.ServingPlanner
	var prompt []int
	setup := func() {
		if m != nil {
			return
		}
		r := tensor.NewRNG(1234)
		m = nn.NewTransformer(spec.Config, r)
		model.PrimeSparsity(m, r.Split(), 8)
		peft.Apply(m, peft.LoRA, peft.Options{}, r.Split())
		sp = predictor.NewServingPlanner(m, nil, predictor.ServingConfig{})
		prompt = make([]int, promptLen)
		for i := range prompt {
			prompt[i] = 10 + i
		}
	}

	// One cache/arena/planner per benchmark, warmed in Setup so the
	// measured loop reuses pooled buffers only.
	mk := func(opts nn.SparsityOptions) (func(), func()) {
		var cache *nn.KVCache
		var ws *tensor.Arena
		var planner nn.DecodePlanner
		run := func() {
			cache.Reset()
			m.GenerateCachedCfg(prompt, cfg, nn.DecodeSession{Cache: cache, WS: ws, Planner: planner})
		}
		return func() {
			setup()
			cache = m.NewKVCache()
			ws = tensor.NewArena()
			if opts.Enabled() {
				var err error
				planner, err = sp.NewSequencePlanner(opts)
				if err != nil {
					panic(err)
				}
			}
			run() // warm the arena and planner scratch
		}, run
	}

	denseSetup, denseRun := mk(nn.SparsityOptions{})
	autoSetup, autoRun := mk(nn.SparsityOptions{Mode: nn.SparsityAuto})
	forcedSetup, forcedRun := mk(nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 0.25, AttnDensity: 0.25})

	return []Benchmark{
		{Name: "generate_sparse/dense_cached", Flops: flops, Setup: denseSetup, Fn: denseRun},
		{Name: "generate_sparse/auto", Flops: flops, Setup: autoSetup, Fn: autoRun},
		{Name: "generate_sparse/forced_low", Flops: flops, Setup: forcedSetup, Fn: forcedRun},
	}
}
