package bench

import (
	"fmt"
	"math"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// The kernels suite measures the compute cores the whole system is built
// from: the dense GEMM cores (seed naive vs tiled, all three layouts), the
// parallel MatMul driver, the block-sparse attention operators, the
// neuron-sparse MLP kernels, and full causal attention dense vs
// block-sparse. CI runs it in short mode and gates on regressions.

func init() {
	Register("kernels", kernelSuite)
}

func kernelSuite(o Options) []Benchmark {
	var out []Benchmark
	sizes := []int{128, 256, 512}
	if o.Short {
		sizes = []int{128, 256}
	}
	for _, n := range sizes {
		out = append(out, gemmBenchmarks(n)...)
	}
	out = append(out, blockSparseBenchmarks(256, 16)...)
	out = append(out, neuronBenchmarks(256, 1024, 32, 16)...)
	out = append(out, attentionBenchmarks(128, 64)...)
	if !o.Short {
		out = append(out, attentionBenchmarks(256, 64)...)
	}
	return out
}

// gemmBenchmarks covers the three GEMM layouts at n×n×n, naive (the seed
// i-k-j core, kept as the measurement baseline) against the tiled core
// behind the public entry points. Serial calls: these measure the cores,
// not the worker pool; matmul/<n> measures the parallel driver.
func gemmBenchmarks(n int) []Benchmark {
	r := tensor.NewRNG(uint64(n))
	a, b, c := tensor.New(n, n), tensor.New(n, n), tensor.New(n, n)
	r.FillNormal(a, 1)
	r.FillNormal(b, 1)
	flops := 2 * int64(n) * int64(n) * int64(n)
	bytes := 4 * 3 * int64(n) * int64(n)
	core := func(fn func(cc, aa, bb []float32, k, nn, lo, hi int)) func() {
		return func() {
			c.Zero()
			fn(c.Data, a.Data, b.Data, n, n, 0, n)
		}
	}
	coreTA := func(fn func(cc, aa, bb []float32, kDim, m, nn, lo, hi int)) func() {
		return func() {
			c.Zero()
			fn(c.Data, a.Data, b.Data, n, n, n, 0, n)
		}
	}
	return []Benchmark{
		{Name: fmt.Sprintf("gemm/dense/naive/%d", n), Flops: flops, Bytes: bytes, Fn: core(tensor.GemmRangeNaive)},
		{Name: fmt.Sprintf("gemm/dense/tiled/%d", n), Flops: flops, Bytes: bytes, Fn: core(tensor.GemmRange)},
		{Name: fmt.Sprintf("gemm/tb/naive/%d", n), Flops: flops, Bytes: bytes, Fn: core(tensor.GemmTBRangeNaive)},
		{Name: fmt.Sprintf("gemm/tb/tiled/%d", n), Flops: flops, Bytes: bytes, Fn: core(tensor.GemmTBRange)},
		{Name: fmt.Sprintf("gemm/ta/naive/%d", n), Flops: flops, Bytes: bytes, Fn: coreTA(tensor.GemmTARangeNaive)},
		{Name: fmt.Sprintf("gemm/ta/tiled/%d", n), Flops: flops, Bytes: bytes, Fn: coreTA(tensor.GemmTARange)},
		{Name: fmt.Sprintf("matmul/%d", n), Flops: flops, Bytes: bytes, Fn: func() { tensor.MatMul(a, b) }},
	}
}

// benchLayout is the local+global causal pattern used by the sparse
// operator benchmarks: sliding window of two block-diagonals plus one sink
// block-column — the Longformer/A-shape family the paper's pool is built
// from.
func benchLayout(nb int) *sparse.Layout {
	return sparse.NewLayout(nb, func(br, bc int) bool {
		return bc <= br && (br-bc < 2 || bc < 1)
	})
}

func blockSparseBenchmarks(s, blk int) []Benchmark {
	nb := s / blk
	hd := 64
	layout := benchLayout(nb)
	r := tensor.NewRNG(uint64(s * blk))
	q, k, v := tensor.New(s, hd), tensor.New(s, hd), tensor.New(s, hd)
	r.FillNormal(q, 1)
	r.FillNormal(k, 1)
	r.FillNormal(v, 1)
	scores := sparse.NewBlockSparse(layout, blk)
	probs := sparse.NewBlockSparse(layout, blk)
	out := tensor.New(s, hd)
	scale := float32(1 / math.Sqrt(float64(hd)))
	nnz := int64(layout.NNZ())
	blockFlops := 2 * int64(blk) * int64(blk) * int64(hd)
	tag := fmt.Sprintf("s%db%d", s, blk)

	// Keep probs realistic (post-softmax) for DSD/DSDT; runs untimed via
	// the Setup hook so filtered runs never pay for it, and idempotently
	// (Zero first) since both benchmarks share it.
	prewarm := func() {
		probs.Zero()
		sparse.SDD(probs, q.Data, k.Data, hd)
		sparse.CausalSoftmax(probs, scale)
	}

	return []Benchmark{
		{Name: "sparse/sdd/" + tag, Flops: nnz * blockFlops, Fn: func() {
			scores.Zero()
			sparse.SDD(scores, q.Data, k.Data, hd)
		}},
		{Name: "sparse/softmax/" + tag, Setup: prewarm, Fn: func() {
			copy(scores.Data, probs.Data)
			sparse.CausalSoftmax(scores, scale)
		}},
		{Name: "sparse/dsd/" + tag, Flops: nnz * blockFlops, Setup: prewarm, Fn: func() {
			out.Zero()
			sparse.DSD(out.Data, probs, v.Data, hd)
		}},
		{Name: "sparse/dsdt/" + tag, Flops: nnz * blockFlops, Setup: prewarm, Fn: func() {
			out.Zero()
			sparse.DSDT(out.Data, probs, v.Data, hd)
		}},
	}
}

func neuronBenchmarks(d, h, tokens, blk int) []Benchmark {
	r := tensor.NewRNG(uint64(d + h))
	w1 := sparse.NewColMajor(d, h)
	w2 := sparse.NewRowMajor(h, d)
	w1d, w2d := tensor.New(d, h), tensor.New(h, d)
	r.FillNormal(w1d, 0.5)
	r.FillNormal(w2d, 0.5)
	w1.SetFromRowMajor(w1d.Data)
	copy(w2.Data, w2d.Data)
	x := tensor.New(tokens, d)
	hidden := tensor.New(tokens, h)
	out := tensor.New(tokens, d)
	r.FillNormal(x, 1)
	r.FillNormal(hidden, 1)
	// Half the neuron blocks active — a mid-range measured density.
	all := sparse.AllBlocks(h, blk)
	blocks := all[:len(all)/2]
	active := int64(len(blocks) * blk)
	tag := fmt.Sprintf("d%dh%d", d, h)
	return []Benchmark{
		{Name: "sparse/fc1/" + tag, Flops: 2 * int64(tokens) * int64(d) * active, Fn: func() {
			hidden.Zero()
			sparse.FC1Sparse(hidden.Data, x.Data, tokens, w1, blocks, blk)
		}},
		{Name: "sparse/fc2/" + tag, Flops: 2 * int64(tokens) * int64(d) * active, Fn: func() {
			out.Zero()
			sparse.FC2Sparse(out.Data, hidden.Data, tokens, w2, blocks, blk)
		}},
	}
}

// attentionBenchmarks runs one full causal-attention head forward, dense
// versus block-sparse (SDD → CausalSoftmax → DSD on the local+global
// layout), the operator-level comparison behind the paper's Figure 12.
func attentionBenchmarks(s, hd int) []Benchmark {
	blk := 16
	layout := benchLayout(s / blk)
	r := tensor.NewRNG(uint64(s * hd))
	q, k, v := tensor.New(s, hd), tensor.New(s, hd), tensor.New(s, hd)
	r.FillNormal(q, 1)
	r.FillNormal(k, 1)
	r.FillNormal(v, 1)
	out := tensor.New(s, hd)
	scores := sparse.NewBlockSparse(layout, blk)
	scale := float32(1 / math.Sqrt(float64(hd)))
	denseFlops := 4 * int64(s) * int64(s) * int64(hd)
	sparseFlops := 4 * int64(layout.NNZ()) * int64(blk) * int64(blk) * int64(hd)
	tag := fmt.Sprintf("s%dhd%d", s, hd)
	return []Benchmark{
		{Name: "attn/dense/" + tag, Flops: denseFlops, Fn: func() {
			out.Zero()
			sparse.DenseCausalAttention(out.Data, q.Data, k.Data, v.Data, s, hd, scale)
		}},
		{Name: "attn/block/" + tag, Flops: sparseFlops, Fn: func() {
			out.Zero()
			scores.Zero()
			sparse.SDD(scores, q.Data, k.Data, hd)
			sparse.CausalSoftmax(scores, scale)
			sparse.DSD(out.Data, scores, v.Data, hd)
		}},
	}
}
