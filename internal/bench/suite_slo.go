// The slo suite defends the SLO engine's two cost promises. First, the
// steady-state evaluation tick — five objectives sampled from live
// instruments, windowed burn rates over the sample rings, the alert
// state machine, gauge updates, and the flight recorder's per-tick
// delta capture — runs at zero allocations per evaluation, so a 10s
// cadence engine adds no GC pressure to a serving replica. Second, the
// request path pays nothing for the SLO plane: /readyz with an engine
// attached is benchmarked against /readyz without one, and CI gates
// both against the same baseline.
package bench

import (
	"net/http"
	"net/http/httptest"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/obs"
	"longexposure/internal/serve"
	"longexposure/internal/slo"
)

func init() {
	Register("slo", sloSuite)
}

// sloBenchConfig exercises every source kind at a cadence that keeps
// the sample rings busy without firing alerts (traffic below is healthy).
func sloBenchConfig() slo.Config {
	return slo.Config{
		Interval: slo.Duration(time.Second),
		Objectives: []slo.Objective{
			{Name: "latency", Kind: slo.KindLatency, Route: "GET /bench", Threshold: 0.5, Target: 0.99},
			{Name: "availability", Kind: slo.KindAvailability, Route: "GET /bench", Target: 0.99},
			{Name: "queue-wait", Kind: slo.KindQueueWait, Route: "generate", Threshold: 0.5, Target: 0.95},
			{Name: "jobs", Kind: slo.KindJobFailure, Target: 0.9},
			{Name: "density", Kind: slo.KindDensityDrift, Expected: 0.5, Threshold: 0.25, Target: 0.9},
		},
	}
}

// populateSLOInstruments creates and feeds every instrument the bench
// objectives read, so each tick samples real child handles.
func populateSLOInstruments(reg *obs.Registry) {
	httpm := obs.NewHTTPMetrics(reg)
	httpm.Latency.With("GET /bench").Observe(0.001)
	httpm.Requests.With("GET /bench", "2xx").Inc()
	ep := obs.NewLimitMetrics(reg).Endpoint("generate")
	ep.WaitSeconds.Observe(0.001)
	ep.ShedQueueFull.Inc()
	jm := obs.NewJobsMetrics(reg)
	jm.Done.Add(100)
	jm.Failed.Inc()
	sm := obs.NewServingSparsityMetrics(reg)
	for l := 0; l < 8; l++ {
		sm.SetMLP(l, 0.5)
		sm.SetAttn(l, 0.5)
	}
}

func sloSuite(o Options) []Benchmark {
	var benchmarks []Benchmark

	// ---- steady-state evaluation tick ----
	// The headline gate: one full evaluation pass over five objectives at
	// zero allocations. Setup warms the per-objective sample rings and
	// lets every source resolve its instrument handles.
	{
		var (
			eng *slo.Engine
			now time.Time
		)
		benchmarks = append(benchmarks, Benchmark{
			Name: "slo/tick_steady",
			Setup: func() {
				reg := obs.NewRegistry()
				populateSLOInstruments(reg)
				var err error
				eng, err = slo.New(sloBenchConfig(), slo.Deps{Metrics: reg})
				if err != nil {
					panic(err)
				}
				now = time.Unix(1_700_000_000, 0)
				for i := 0; i < 4; i++ { // warm rings + source handle caches
					now = now.Add(time.Second)
					eng.Tick(now)
				}
			},
			Fn: func() {
				now = now.Add(time.Second)
				eng.Tick(now)
			},
		})
	}

	// ---- tick with the flight recorder attached ----
	// Same pass plus the recorder's per-tick delta capture. Setup runs
	// one full lap of the tick ring so every slot is preallocated; after
	// that, recording refills slots in place and stays at zero allocs.
	{
		var (
			eng *slo.Engine
			now time.Time
		)
		const tickRing = 32
		benchmarks = append(benchmarks, Benchmark{
			Name: "slo/tick_recorder",
			Setup: func() {
				reg := obs.NewRegistry()
				populateSLOInstruments(reg)
				rec := slo.NewRecorder(slo.RecorderConfig{TickRing: tickRing}, nil)
				var err error
				eng, err = slo.New(sloBenchConfig(), slo.Deps{Metrics: reg, Recorder: rec})
				if err != nil {
					panic(err)
				}
				now = time.Unix(1_700_000_000, 0)
				for i := 0; i < tickRing+2; i++ {
					now = now.Add(time.Second)
					eng.Tick(now)
				}
			},
			Fn: func() {
				now = now.Add(time.Second)
				eng.Tick(now)
			},
		})
	}

	// ---- readiness with and without the SLO plane ----
	// /readyz is the one request-path surface the engine joins (as a
	// health source). The pair pins the with-SLO cost to the without-SLO
	// cost; the disabled path must not regress when the plane evolves.
	for _, withSLO := range []bool{false, true} {
		name := "slo/readyz_disabled"
		if withSLO {
			name = "slo/readyz_enabled"
		}
		enabled := withSLO
		var handler http.Handler
		req := httptest.NewRequest("GET", "/readyz", nil)
		benchmarks = append(benchmarks, Benchmark{
			Name: name,
			Setup: func() {
				store := jobs.NewStore(jobs.Config{Workers: 1})
				opts := []serve.Option{}
				if enabled {
					reg := obs.NewRegistry()
					populateSLOInstruments(reg)
					eng, err := slo.New(sloBenchConfig(), slo.Deps{Metrics: reg})
					if err != nil {
						panic(err)
					}
					eng.Tick(time.Unix(1_700_000_000, 0))
					opts = append(opts, serve.WithSLO(eng))
				}
				handler = serve.New(store, opts...).Handler()
			},
			Fn: func() {
				rw := httptest.NewRecorder()
				handler.ServeHTTP(rw, req)
				if rw.Code != http.StatusOK {
					panic("readyz not ready")
				}
			},
		})
	}

	// ---- report assembly ----
	// GET /debug/slo's cost: informational (it allocates by design), but
	// tracked so the debug surface cannot silently become quadratic.
	{
		var eng *slo.Engine
		benchmarks = append(benchmarks, Benchmark{
			Name: "slo/report",
			Setup: func() {
				reg := obs.NewRegistry()
				populateSLOInstruments(reg)
				var err error
				eng, err = slo.New(sloBenchConfig(), slo.Deps{Metrics: reg})
				if err != nil {
					panic(err)
				}
				eng.Tick(time.Unix(1_700_000_000, 0))
			},
			Fn: func() {
				if rep := eng.Report(); len(rep.Objectives) != 5 {
					panic("bad report")
				}
			},
		})
	}

	return benchmarks
}
