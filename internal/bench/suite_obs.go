// The obs suite defends the observability plane's core promise: metering
// the hot paths costs nanoseconds and zero allocations. It measures the
// raw instrument primitives, then re-runs the two zero-alloc flagship
// paths — the steady-state training step and the KV-cached decode step —
// with their production instruments attached, exactly as jobs workers and
// the generation engine run them. CI gates the allocs_per_op of the
// instrumented paths at the same (near) zero the uninstrumented suites
// pinned in earlier PRs: observability must never reopen the allocation
// tax PR 3 removed.
package bench

import (
	"longexposure/internal/data"
	"longexposure/internal/model"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
	"longexposure/internal/train"
)

func init() {
	Register("obs", obsSuite)
}

func obsSuite(o Options) []Benchmark {
	var benchmarks []Benchmark

	// ---- raw instrument primitives ----
	var (
		counter   *obs.Counter
		gauge     *obs.Gauge
		histogram *obs.Histogram
		obsIdx    int
	)
	primSetup := func() {
		r := obs.NewRegistry()
		counter = r.Counter("bench_counter_total", "bench")
		gauge = r.Gauge("bench_gauge", "bench")
		histogram = r.Histogram("bench_seconds", "bench", obs.DurationBuckets)
	}
	benchmarks = append(benchmarks,
		Benchmark{
			Name:  "obs/counter_add",
			Setup: primSetup,
			Fn:    func() { counter.Add(1) },
		},
		Benchmark{
			Name:  "obs/histogram_observe",
			Setup: primSetup,
			Fn: func() {
				histogram.Observe(float64(obsIdx&1023) * 1e-6)
				gauge.Set(float64(obsIdx))
				obsIdx++
			},
		},
	)

	// ---- instrumented steady-state training step ----
	// Identical to train_step/ws (one worker, warm arena) plus a live
	// TrainMetrics bundle: the gate proving instrumentation keeps the
	// step at zero steady-state allocations.
	{
		spec := model.SimSmall(nn.ActReLU)
		flops := stepFlops(spec, 2*16)
		var eng *train.Engine
		var b data.Batch
		benchmarks = append(benchmarks, Benchmark{
			Name:  "obs/train_step_instrumented",
			Flops: flops,
			Setup: func() {
				eng, b = newTrainStepEngine(false)
				eng.Metrics = obs.NewTrainMetrics(obs.NewRegistry())
				old := parallel.SetWorkers(1)
				eng.Step(b) // warmup: arena fill, optimizer state
				parallel.SetWorkers(old)
			},
			Fn: func() {
				old := parallel.SetWorkers(1)
				eng.Step(b)
				parallel.SetWorkers(old)
			},
		})
	}

	// ---- instrumented KV-cached decode step ----
	// One token through the cached decode path plus the per-step metric
	// updates the infer scheduler performs (occupancy, tokens, KV
	// residency) — the serving hot path, instrumented, at 0 allocs/op.
	{
		spec := model.SimSmall(nn.ActReLU)
		var (
			m     *nn.Transformer
			im    *obs.InferMetrics
			cache *nn.KVCache
			ws    *tensor.Arena
			rng   *tensor.RNG
			p0    int
			buf   [1]int
		)
		benchmarks = append(benchmarks, Benchmark{
			Name:  "obs/decode_step_instrumented",
			Flops: 2 * spec.ParamCount(),
			Setup: func() {
				var prompt []int
				m, prompt = generateModel(true)
				im = obs.NewInferMetrics(obs.NewRegistry())
				cache = m.NewKVCache()
				ws = tensor.NewArena()
				rng = tensor.NewRNG(7)
				old := parallel.SetWorkers(1)
				logits := m.DecodeStep(cache, prompt, nil, ws) // prefill
				buf[0] = nn.SampleToken(logits.Row(0), 0, rng)
				ws.Release()
				p0 = cache.Len
				// One warm decode step so arena classes exist.
				m.DecodeStep(cache, buf[:], nil, ws)
				ws.Release()
				parallel.SetWorkers(old)
			},
			Fn: func() {
				old := parallel.SetWorkers(1)
				cache.Len = p0 // rewind: decode the same position every op
				logits := m.DecodeStep(cache, buf[:], nil, ws)
				tok := nn.SampleToken(logits.Row(0), 0, rng)
				ws.Release()
				buf[0] = tok
				im.SchedulerSteps.Inc()
				im.BatchOccupancy.Observe(1)
				im.Tokens.Add(1)
				im.KVRows.Set(float64(cache.Len))
				im.Active.Set(1)
				parallel.SetWorkers(old)
			},
		})
	}

	return benchmarks
}
