package nn

import (
	"fmt"

	"longexposure/internal/tensor"
)

// This file is the contextual-sparsity plan surface of the decode path: a
// per-step DecodePlan names exactly which MLP neuron blocks and which
// attention KV-position blocks a step may touch, and a DecodePlanner
// produces one plan per emitted token from whatever runtime estimator the
// caller wires in (internal/predictor's serving planner is the reference
// implementation). The decode kernels treat a nil plan — or a nil
// per-layer entry — as the dense escape hatch: the literal dense code path
// runs, so "density 1.0" degrades to bit-identical dense output by
// construction rather than by kernel equivalence.

// DecodePlan is one decode step's sparsity decision. Block slices are
// typically arena-backed (tensor.IntsIn against the step workspace) and
// valid only until the sequence's next Release — a plan is consumed by
// exactly one DecodeStep call.
type DecodePlan struct {
	// Blk is the block size shared by the MLP neuron blocks and the
	// attention KV-position blocks.
	Blk int

	// MLP lists, per layer, the active neuron blocks (ascending indices
	// into hidden/Blk). A nil per-layer slice runs that layer's MLP dense.
	// Unlisted neurons contribute nothing — not even their bias — matching
	// MLP.Forward's sparse contract.
	MLP [][]int

	// Attn lists, per layer, the visible KV-position blocks (ascending
	// indices into positions/Blk). A nil per-layer slice runs that layer's
	// attention dense. Selections apply only to single-row decode steps
	// (the steady-state token loop); prefill and multi-row steps always
	// attend densely. The planner must keep the block containing the
	// current position selected so the causal diagonal stays visible.
	Attn [][]int

	// MLPDensity and AttnDensity are the realized mean densities across
	// layers (dense layers count as 1.0) — recorded by the planner so the
	// engine can aggregate batch-level density without re-deriving it.
	MLPDensity, AttnDensity float64
}

// layerMLP returns the active MLP blocks for a layer (nil = dense).
func (p *DecodePlan) layerMLP(li int) []int {
	if p == nil || p.MLP == nil || li >= len(p.MLP) {
		return nil
	}
	return p.MLP[li]
}

// layerAttn returns the visible KV blocks for a layer (nil = dense).
func (p *DecodePlan) layerAttn(li int) []int {
	if p == nil || p.Attn == nil || li >= len(p.Attn) {
		return nil
	}
	return p.Attn[li]
}

// DecodePlanner produces per-step sparsity plans for one sequence. A
// planner is sequence-scoped and not safe for concurrent use; concurrent
// sequences each own one (the engine builds one per admitted request).
type DecodePlanner interface {
	// BeginSequence resets the planner and ingests the prefill: the
	// prompt tokens plus the adapter's virtual prompt rows, in cache
	// order, so position summaries cover everything the KV cache holds.
	BeginSequence(prompt []int, ad *DecodeAdapter)

	// PlanStep observes the token about to be decoded at absolute cache
	// position pos (== cache.Len at call time) and returns the step's
	// plan, or nil for a fully dense step. Returned block slices may be
	// arena-backed in ws; they are released with the step.
	PlanStep(id, pos int, ws *tensor.Arena) *DecodePlan
}

// Sparsity mode names for SparsityOptions.Mode.
const (
	// SparsityOff disables contextual sparsity (the zero value).
	SparsityOff = "off"
	// SparsityAuto applies the planner's default densities with its
	// sensitive-layer protections (first/last layer dense, short prefixes
	// dense) — the quality-protecting production mode.
	SparsityAuto = "auto"
	// SparsityForced applies the requested densities on every layer with
	// no protections — the measurement/ablation mode.
	SparsityForced = "forced"
)

// SparsityOptions is the request-level contextual-sparsity control,
// shared verbatim by the serve API ("decode.sparsity" in the generate
// request) and infer.Request. The zero value means off: current dense
// behavior.
type SparsityOptions struct {
	// Mode is "off" (or ""), "auto", or "forced".
	Mode string `json:"mode,omitempty"`
	// MLPDensity and AttnDensity target the fraction of blocks kept per
	// step, in (0, 1]; 0 picks the planner default. 1.0 plans dense.
	MLPDensity  float64 `json:"mlp_density,omitempty"`
	AttnDensity float64 `json:"attn_density,omitempty"`
}

// Enabled reports whether the options request any sparsity.
func (o SparsityOptions) Enabled() bool {
	return o.Mode == SparsityAuto || o.Mode == SparsityForced
}

// Validate rejects out-of-range fields, naming each offender with the
// given prefix (e.g. "decode.sparsity") so API errors point at fields.
func (o SparsityOptions) Validate(prefix string) error {
	switch o.Mode {
	case "", SparsityOff, SparsityAuto, SparsityForced:
	default:
		return fmt.Errorf("%s.mode: unknown mode %q (want \"off\", \"auto\" or \"forced\")", prefix, o.Mode)
	}
	if o.MLPDensity < 0 || o.MLPDensity > 1 {
		return fmt.Errorf("%s.mlp_density: %v outside (0, 1]", prefix, o.MLPDensity)
	}
	if o.AttnDensity < 0 || o.AttnDensity > 1 {
		return fmt.Errorf("%s.attn_density: %v outside (0, 1]", prefix, o.AttnDensity)
	}
	if !o.Enabled() && (o.MLPDensity != 0 || o.AttnDensity != 0) {
		return fmt.Errorf("%s.mode: densities set but mode is %q (want \"auto\" or \"forced\")", prefix, o.Mode)
	}
	return nil
}
