package nn

import (
	"math"

	"longexposure/internal/tensor"
)

// GenerateConfig tunes autoregressive decoding.
type GenerateConfig struct {
	MaxTokens   int     // tokens to emit (default 16)
	Temperature float64 // 0 = greedy; >0 samples from the tempered softmax
	// StopToken stops decoding once this token id has been emitted.
	// Values <= 0 — including the zero value — disable the check, so a
	// zero-value config never silently stops on token 0 (which is TokPad
	// in every corpus here, never a legitimate stop).
	StopToken int
	RNG       *tensor.RNG
}

// Generate decodes autoregressively from a prompt, re-running the full
// prefix each step (no KV cache — fine-tuning, not serving, is this
// repository's subject; the sim scale keeps this cheap). Returns the
// generated continuation (prompt excluded).
func (m *Transformer) Generate(prompt []int, cfg GenerateConfig) []int {
	if cfg.MaxTokens == 0 {
		cfg.MaxTokens = 16
	}
	if cfg.RNG == nil {
		cfg.RNG = tensor.NewRNG(1)
	}
	seq := append([]int(nil), prompt...)
	var out []int
	for t := 0; t < cfg.MaxTokens; t++ {
		if m.TotalSeq(len(seq)) >= m.Cfg.MaxSeq {
			break
		}
		logits := m.Forward([][]int{seq}, nil, nil)
		last := logits.Row(logits.Dim(0) - 1)
		next := pickToken(last, cfg.Temperature, cfg.RNG)
		out = append(out, next)
		if cfg.StopToken > 0 && next == cfg.StopToken {
			break
		}
		seq = append(seq, next)
	}
	return out
}

// pickToken applies greedy or tempered sampling to a logit row.
func pickToken(logits []float32, temperature float64, rng *tensor.RNG) int {
	if temperature <= 0 {
		best, bi := logits[0], 0
		for i, v := range logits[1:] {
			if v > best {
				best, bi = v, i+1
			}
		}
		return bi
	}
	// Stable tempered softmax sampling.
	maxV := logits[0]
	for _, v := range logits[1:] {
		if v > maxV {
			maxV = v
		}
	}
	probs := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		p := math.Exp(float64(v-maxV) / temperature)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	var acc float64
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(logits) - 1
}
