package nn

// Analytic FLOP accounting for the decode path. The model counts matmul
// FLOPs only (2·M·N·K per GEMM) — layer norms, residuals, softmax and
// sampling are O(d) noise against the projections and are excluded so the
// numbers stay comparable across densities. Per new row at absolute
// position p (0-based, visible prefix p+1), each layer costs:
//
//	projections (Q,K,V,O)   4 · 2·d²            always dense
//	attention scores + AV   2 · 2·(p+1)·d       × attention plan density
//	MLP fc1 + fc2           2 · 2·d·hidden      × MLP plan density
//
// plus one 2·d·vocab head projection per step (last row only — the
// prefill skips the vocab projection for earlier rows, and so does the
// accounting). The dense-equivalent number uses density 1 everywhere;
// executed scales the gated terms by the step plan's realized densities,
// matching the kernels: MLP selections apply to every row, attention
// selections only to single-row steps (DecodeStepCfg attends densely on
// multi-row steps). A forced density-1.0 plan yields full-coverage (nil)
// selections and density exactly 1, so executed == dense-equivalent
// exactly — no float drift, the identity the accounting tests pin.

// DecodeStats accumulates per-step FLOP and plan counters across a
// sequence's decode steps. Callers own the struct (preallocate it next to
// the KV cache); recording is plain field arithmetic — no allocation, no
// synchronization — so it is safe on the zero-alloc decode hot path but
// must not be shared across concurrently decoding sequences.
type DecodeStats struct {
	Steps        int64 // DecodeStepCfg calls recorded
	Rows         int64 // token rows processed (prompt rows included)
	PlannedSteps int64 // steps that ran under a non-nil sparsity plan

	DenseFLOPs     int64 // dense-equivalent FLOPs of every recorded step
	ExecFLOPs      int64 // FLOPs actually executed under the step plans
	MLPSavedFLOPs  int64 // dense − executed, MLP term
	AttnSavedFLOPs int64 // dense − executed, attention score/AV term

	PeakKVRows int64 // high-water cache length across recorded steps
}

// Reset zeroes the accumulator for reuse by a new sequence.
func (st *DecodeStats) Reset() { *st = DecodeStats{} }

// SavedFLOPs is the total attributed saving across layer kinds.
func (st *DecodeStats) SavedFLOPs() int64 { return st.MLPSavedFLOPs + st.AttnSavedFLOPs }

// Add folds another accumulator in (for aggregating across sequences).
func (st *DecodeStats) Add(o *DecodeStats) {
	st.Steps += o.Steps
	st.Rows += o.Rows
	st.PlannedSteps += o.PlannedSteps
	st.DenseFLOPs += o.DenseFLOPs
	st.ExecFLOPs += o.ExecFLOPs
	st.MLPSavedFLOPs += o.MLPSavedFLOPs
	st.AttnSavedFLOPs += o.AttnSavedFLOPs
	if o.PeakKVRows > st.PeakKVRows {
		st.PeakKVRows = o.PeakKVRows
	}
}

// noteDecodeStep records one DecodeStepCfg call of n rows appended at
// cache position p0, planned by plan (nil = dense).
func (m *Transformer) noteDecodeStep(st *DecodeStats, n, p0 int, plan *DecodePlan) {
	d := int64(m.Cfg.Dim)
	layers := int64(m.Cfg.Layers)
	projRow := 8 * d * d
	mlpRow := 4 * d * int64(m.Cfg.Hidden)
	var attnRows int64
	for r := 0; r < n; r++ {
		attnRows += int64(p0+r) + 1
	}
	proj := layers * int64(n) * projRow
	mlpDense := layers * int64(n) * mlpRow
	attnDense := layers * 4 * attnRows * d
	head := 2 * d * int64(m.Cfg.Vocab)

	mlpExec, attnExec := mlpDense, attnDense
	if plan != nil {
		st.PlannedSteps++
		mlpExec = int64(float64(mlpDense) * plan.MLPDensity)
		if n == 1 {
			attnExec = int64(float64(attnDense) * plan.AttnDensity)
		}
	}

	st.Steps++
	st.Rows += int64(n)
	st.DenseFLOPs += proj + mlpDense + attnDense + head
	st.ExecFLOPs += proj + mlpExec + attnExec + head
	st.MLPSavedFLOPs += mlpDense - mlpExec
	st.AttnSavedFLOPs += attnDense - attnExec
	if rows := int64(p0 + n); rows > st.PeakKVRows {
		st.PeakKVRows = rows
	}
}

// KVRowBytes is the resident size of one cached position across all
// layers: layers · (K+V) · dim · 4 bytes. PeakKVRows · KVRowBytes is a
// sequence's peak cache footprint.
func (m *Transformer) KVRowBytes() int64 {
	return int64(m.Cfg.Layers) * 2 * int64(m.Cfg.Dim) * 4
}

// TrainStepFLOPs estimates the matmul FLOPs of one fwd+bwd training step
// over batch sequences of seqLen tokens, under the same per-token model
// as decode (projections + causal-average attention + MLP + head, all
// dense) with the standard 3× forward multiplier for the backward pass.
func (m *Transformer) TrainStepFLOPs(batch, seqLen int) int64 {
	d := int64(m.Cfg.Dim)
	layers := int64(m.Cfg.Layers)
	tokens := int64(batch) * int64(seqLen)
	perTok := layers*(8*d*d+4*d*int64(m.Cfg.Hidden)) + 2*d*int64(m.Cfg.Vocab)
	attnPerTok := layers * 4 * d * (int64(seqLen) + 1) / 2
	return 3 * tokens * (perTok + attnPerTok)
}
