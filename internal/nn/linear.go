package nn

import (
	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// Linear is a dense affine layer y = x·W + b with W: [in, out] row-major.
// An optional LoRA branch adds scale·(x·A)·B with A: [in, r], B: [r, out];
// injecting LoRA freezes nothing by itself — PEFT setup decides the flags.
type Linear struct {
	In, Out int
	W       *Parameter
	B       *Parameter

	// Packed, when set, replaces W's f32 storage with reduced-precision
	// weights ([in, out], per-column int8 scales): the forward paths run
	// the widening GEMM kernels and W.W.Data is freed. A packed layer is
	// frozen by construction — Backward refuses it (see Compress).
	Packed *tensor.PackedWeights

	// LoRA branch (nil when absent).
	LoRAA     *Parameter
	LoRAB     *Parameter
	LoRAScale float32

	// Forward cache.
	x  *tensor.Tensor // input [tokens, in]
	xa *tensor.Tensor // x·A [tokens, r], cached for LoRA backward
}

// NewLinear constructs a linear layer with Xavier-initialized weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   NewParameter(name+".weight", in, out),
		B:   NewParameter(name+".bias", out),
	}
	rng.XavierInit(l.W.W, in, out)
	return l
}

// AddLoRA injects a rank-r LoRA branch. A is Gaussian-initialized, B starts
// at zero so the branch initially contributes nothing (the standard LoRA
// init), and scale = alpha/r.
func (l *Linear) AddLoRA(name string, r int, alpha float64, rng *tensor.RNG) {
	l.LoRAA = NewParameter(name+".lora_A", l.In, r)
	l.LoRAB = NewParameter(name+".lora_B", r, l.Out)
	rng.FillNormal(l.LoRAA.W, 0.02)
	l.LoRAScale = float32(alpha / float64(r))
}

// HasLoRA reports whether a LoRA branch is attached.
func (l *Linear) HasLoRA() bool { return l.LoRAA != nil }

// Params returns the layer's parameters (including LoRA when present).
func (l *Linear) Params() ParamSet {
	ps := ParamSet{l.W, l.B}
	if l.HasLoRA() {
		ps = append(ps, l.LoRAA, l.LoRAB)
	}
	return ps
}

// Forward computes y = x·W + b (+ LoRA branch), caching x for backward.
// x: [tokens, in] → y: [tokens, out]. ws is the step workspace all
// step-lived outputs come from (nil allocates, exactly as the seed code).
func (l *Linear) Forward(x *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	l.x = x
	var y *tensor.Tensor
	if l.Packed != nil {
		y = tensor.MatMulPackedIn(ws, x, l.Packed)
	} else {
		y = tensor.MatMulIn(ws, x, l.W.W)
	}
	tensor.AddRowVector(y, l.B.W.Data)
	if l.HasLoRA() {
		l.xa = tensor.MatMulIn(ws, x, l.LoRAA.W)
		delta := tensor.MatMulIn(ws, l.xa, l.LoRAB.W)
		tensor.AddScaledInto(y, delta, l.LoRAScale)
	}
	return y
}

// Backward propagates dy: accumulates parameter gradients for unfrozen
// parameters and returns dx. The frozen-weight gradients are genuinely
// skipped — the PEFT cost structure the paper analyses in §II-C.
func (l *Linear) Backward(dy *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	if l.Packed != nil {
		panic("nn: Backward through a packed (compressed) linear layer — compressed bases are serving-only")
	}
	tokens := dy.Dim(0)
	if !l.W.Frozen {
		tensor.MatMulTAInto(l.W.Grad, l.x, dy) // dW += xᵀ·dy
	}
	if !l.B.Frozen {
		accumulateColumnSum(l.B.Grad.Data, dy)
	}
	dx := tensor.NewIn(ws, tokens, l.In)
	tensor.MatMulTBInto(dx, dy, l.W.W) // dx = dy·Wᵀ  (W: [in,out])

	if l.HasLoRA() {
		// d(xa) = scale · dy·Bᵀ ; dB += scale · xaᵀ·dy ; dA += xᵀ·dxa ;
		// dx += dxa·Aᵀ.
		dxa := tensor.MatMulTBIn(ws, dy, l.LoRAB.W) // B: [r,out] → dy·Bᵀ
		tensor.Scale(dxa, l.LoRAScale)
		if !l.LoRAB.Frozen {
			ga := tensor.MatMulTAIn(ws, l.xa, dy)
			tensor.AddScaledInto(l.LoRAB.Grad, ga, l.LoRAScale)
		}
		if !l.LoRAA.Frozen {
			tensor.MatMulTAInto(l.LoRAA.Grad, l.x, dxa)
		}
		dxL := tensor.MatMulTBIn(ws, dxa, l.LoRAA.W) // A: [in,r] → dxa·Aᵀ
		tensor.AddInto(dx, dxL)
	}
	return dx
}

// colSumArgs / columnSumChunk: static body for accumulateColumnSum so the
// bias-gradient reduction allocates nothing on the hot path.
type colSumArgs struct {
	dst, data []float32
	tokens, n int
}

func columnSumChunk(a colSumArgs, lo, hi int) {
	for j := lo; j < hi; j++ {
		var s float32
		for i := 0; i < a.tokens; i++ {
			s += a.data[i*a.n+j]
		}
		a.dst[j] += s
	}
}

// accumulateColumnSum adds the column sums of a [tokens, n] tensor into dst.
func accumulateColumnSum(dst []float32, t *tensor.Tensor) {
	tokens, n := t.Dim(0), t.Dim(1)
	parallel.ForChunkedArg(n, colSumArgs{dst, t.Data, tokens, n}, columnSumChunk)
}
