package nn

import (
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// TransformerBlock is a pre-LayerNorm decoder block:
//
//	x ← x + [AdapterA](Attn(LN1(x)))
//	x ← x + [AdapterM](MLP(LN2(x)))
//
// Adapters are optional (nil when the PEFT method is not adapter-based).
type TransformerBlock struct {
	LN1, LN2 *LayerNorm
	Attn     *MultiHeadAttention
	MLP      *MLP
	AdptA    *Adapter
	AdptM    *Adapter

	ln1Out, ln2Out *tensor.Tensor // cached sublayer inputs (predictor signals)
}

// LN1Out returns the normalized input the attention sublayer saw in the last
// forward — the input the attention predictor is trained on.
func (b *TransformerBlock) LN1Out() *tensor.Tensor { return b.ln1Out }

// LN2Out returns the normalized input the MLP sublayer saw in the last
// forward — the input the MLP predictor is trained on.
func (b *TransformerBlock) LN2Out() *tensor.Tensor { return b.ln2Out }

// NewTransformerBlock builds one decoder block.
func NewTransformerBlock(name string, dim, heads, hidden int, act Activation, rng *tensor.RNG) *TransformerBlock {
	return &TransformerBlock{
		LN1:  NewLayerNorm(name+".ln1", dim),
		LN2:  NewLayerNorm(name+".ln2", dim),
		Attn: NewMultiHeadAttention(name+".attn", dim, heads, rng),
		MLP:  NewMLP(name+".mlp", dim, hidden, act, rng),
	}
}

// Params returns the block's parameters, adapters included when present.
func (b *TransformerBlock) Params() ParamSet {
	ps := append(b.LN1.Params(), b.Attn.Params()...)
	ps = append(ps, b.LN2.Params()...)
	ps = append(ps, b.MLP.Params()...)
	if b.AdptA != nil {
		ps = append(ps, b.AdptA.Params()...)
	}
	if b.AdptM != nil {
		ps = append(ps, b.AdptM.Params()...)
	}
	return ps
}

// Forward runs the block. planner supplies the sparse decisions for each
// sublayer at runtime (nil → fully dense). The planner is consulted with
// the LayerNorm outputs — the exact tensors the sublayers consume, and the
// inputs the predictors were trained on.
func (b *TransformerBlock) Forward(x *tensor.Tensor, batch, seq int, planner LayerPlanner, ws *tensor.Arena) *tensor.Tensor {
	h := b.LN1.Forward(x, ws)
	b.ln1Out = h
	var attnLayouts []*sparse.Layout
	blk := 0
	if planner != nil {
		attnLayouts, blk = planner.PlanAttention(h, batch, seq)
	}
	attnOut := b.Attn.Forward(h, batch, seq, attnLayouts, blk, ws)
	if b.AdptA != nil {
		attnOut = b.AdptA.Forward(attnOut, ws)
	}
	x1 := tensor.CloneIn(ws, x)
	tensor.AddInto(x1, attnOut)

	h2 := b.LN2.Forward(x1, ws)
	b.ln2Out = h2
	var mlpBlocks []int
	mblk := 0
	if planner != nil {
		mlpBlocks, mblk = planner.PlanMLP(h2, batch, seq)
	}
	mlpOut := b.MLP.Forward(h2, mlpBlocks, mblk, ws)
	if b.AdptM != nil {
		mlpOut = b.AdptM.Forward(mlpOut, ws)
	}
	x2 := tensor.CloneIn(ws, x1)
	tensor.AddInto(x2, mlpOut)
	return x2
}

// Backward propagates dy through both residual sublayers.
func (b *TransformerBlock) Backward(dy *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	// MLP sublayer: x2 = x1 + f(LN2(x1)).
	dm := dy
	if b.AdptM != nil {
		dm = b.AdptM.Backward(dm, ws)
	}
	dm = b.MLP.Backward(dm, ws)
	dm = b.LN2.Backward(dm, ws)
	dx1 := tensor.CloneIn(ws, dy)
	tensor.AddInto(dx1, dm)

	// Attention sublayer: x1 = x + g(LN1(x)).
	da := dx1
	if b.AdptA != nil {
		da = b.AdptA.Backward(da, ws)
	}
	da = b.Attn.Backward(da, ws)
	da = b.LN1.Backward(da, ws)
	dx := tensor.CloneIn(ws, dx1)
	tensor.AddInto(dx, da)
	return dx
}
