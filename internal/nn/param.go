// Package nn implements the transformer layer stack used for fine-tuning:
// parameters with freeze flags, linear/LoRA/embedding/layer-norm layers,
// multi-head attention and MLP blocks with both dense and block-sparse
// execution paths, and the decoder-only Transformer model.
//
// Layers expose explicit Forward/Backward pairs instead of a generic
// autograd tape: the model is a fixed pipeline of coarse fused kernels —
// exactly how the paper reasons about the computation — and each layer
// caches what its backward needs. The sparse paths consume the layouts and
// neuron-block lists produced by internal/exposer and internal/predictor and
// execute through internal/sparse, so "inactive weights drop out of the
// gradient computation" (paper §II-D) is literally what the code does.
package nn

import (
	"fmt"

	"longexposure/internal/tensor"
)

// Parameter is a named weight tensor with its gradient buffer and a freeze
// flag. PEFT methods work by freezing all backbone parameters and leaving
// only the injected/selected ones trainable; the optimizer walks the
// trainable set only.
type Parameter struct {
	Name   string
	W      *tensor.Tensor
	Grad   *tensor.Tensor
	Frozen bool
}

// NewParameter allocates a parameter (and its gradient) of the given shape.
func NewParameter(name string, shape ...int) *Parameter {
	return &Parameter{
		Name: name,
		W:    tensor.New(shape...),
		Grad: tensor.New(shape...),
	}
}

// ZeroGrad clears the gradient buffer.
func (p *Parameter) ZeroGrad() { p.Grad.Zero() }

// NumElems returns the number of scalar weights.
func (p *Parameter) NumElems() int { return p.W.Len() }

// String describes the parameter.
func (p *Parameter) String() string {
	state := "trainable"
	if p.Frozen {
		state = "frozen"
	}
	return fmt.Sprintf("%s%v (%s)", p.Name, p.W.Shape(), state)
}

// ParamSet is an ordered collection of parameters with bulk operations.
type ParamSet []*Parameter

// Trainable returns the subset with Frozen == false, preserving order.
func (ps ParamSet) Trainable() ParamSet {
	var out ParamSet
	for _, p := range ps {
		if !p.Frozen {
			out = append(out, p)
		}
	}
	return out
}

// FreezeAll marks every parameter frozen — the first step of every PEFT
// method.
func (ps ParamSet) FreezeAll() {
	for _, p := range ps {
		p.Frozen = true
	}
}

// ZeroGrads clears every gradient buffer (trainable or not).
func (ps ParamSet) ZeroGrads() {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar count, and the trainable scalar count.
func (ps ParamSet) NumParams() (total, trainable int) {
	for _, p := range ps {
		n := p.NumElems()
		total += n
		if !p.Frozen {
			trainable += n
		}
	}
	return
}

// ByName finds a parameter by exact name, or nil.
func (ps ParamSet) ByName(name string) *Parameter {
	for _, p := range ps {
		if p.Name == name {
			return p
		}
	}
	return nil
}
