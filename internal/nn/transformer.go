package nn

import (
	"fmt"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Config describes a decoder-only transformer.
type Config struct {
	Name   string
	Vocab  int
	Dim    int
	Layers int
	Heads  int
	Hidden int // MLP hidden width (usually 4·Dim)
	MaxSeq int
	Act    Activation
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Vocab <= 0 || c.Dim <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.Hidden <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("nn: non-positive field in config %+v", c)
	case c.Dim%c.Heads != 0:
		return fmt.Errorf("nn: dim %d not divisible by heads %d", c.Dim, c.Heads)
	default:
		return nil
	}
}

// LayerPlanner supplies one layer's sparse execution decisions at runtime,
// invoked with the exact tensors the sublayers are about to consume (the
// LayerNorm outputs). This is how the sequence-oriented predictor plugs in:
// it sees the layer input, predicts the sparse pattern, and the layer then
// computes only that pattern. Nil returns select the dense path.
type LayerPlanner interface {
	// PlanAttention returns per-head layouts (len == heads) and the block
	// size, or (nil, 0) for dense attention.
	PlanAttention(x *tensor.Tensor, batch, seq int) ([]*sparse.Layout, int)
	// PlanMLP returns the active neuron blocks and the block size, or
	// (nil, 0) for a dense MLP.
	PlanMLP(x *tensor.Tensor, batch, seq int) ([]int, int)
}

// Planner supplies a LayerPlanner for each layer. A nil Planner runs the
// whole model dense.
type Planner interface {
	Layer(i int) LayerPlanner
}

// SparsePlan is a static Planner: fixed per-layer per-head attention
// layouts and active MLP neuron blocks, decided before the step. Nil
// entries run dense.
type SparsePlan struct {
	Blk  int
	Attn [][]*sparse.Layout // [layer][head]
	MLP  [][]int            // [layer] active neuron blocks
}

// NewDensePlan returns a plan with every component dense — the baseline.
func NewDensePlan(layers int) *SparsePlan {
	return &SparsePlan{Attn: make([][]*sparse.Layout, layers), MLP: make([][]int, layers)}
}

// Layer implements Planner. A nil *SparsePlan plans everything dense, so a
// typed-nil plan passed through the Planner interface stays harmless.
func (p *SparsePlan) Layer(i int) LayerPlanner {
	if p == nil {
		return nil
	}
	return staticLayerPlan{p, i}
}

type staticLayerPlan struct {
	p  *SparsePlan
	li int
}

func (s staticLayerPlan) PlanAttention(_ *tensor.Tensor, _, _ int) ([]*sparse.Layout, int) {
	if s.p.Attn == nil || s.p.Attn[s.li] == nil {
		return nil, 0
	}
	return s.p.Attn[s.li], s.p.Blk
}

func (s staticLayerPlan) PlanMLP(_ *tensor.Tensor, _, _ int) ([]int, int) {
	if s.p.MLP == nil || s.p.MLP[s.li] == nil {
		return nil, 0
	}
	return s.p.MLP[s.li], s.p.Blk
}

// Transformer is a decoder-only language model: token + learned positional
// embeddings, a stack of blocks, a final LayerNorm and a vocabulary head.
// An optional trainable prompt (P-Tuning) is prepended to every sequence.
type Transformer struct {
	Cfg    Config
	TokEmb *Embedding
	PosEmb *Embedding
	Blocks []*TransformerBlock
	LNF    *LayerNorm
	Head   *Linear

	Prompt    *Parameter // nil unless prompt tuning is enabled
	PromptLen int

	// Forward cache.
	batch, seq int // seq includes the prompt
	realSeq    int
}

// NewTransformer builds and initializes the model.
func NewTransformer(cfg Config, rng *tensor.RNG) *Transformer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Transformer{
		Cfg:    cfg,
		TokEmb: NewEmbedding("tok_emb", cfg.Vocab, cfg.Dim, rng),
		PosEmb: NewEmbedding("pos_emb", cfg.MaxSeq, cfg.Dim, rng),
		LNF:    NewLayerNorm("ln_f", cfg.Dim),
		Head:   NewLinear("lm_head", cfg.Dim, cfg.Vocab, rng),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks,
			NewTransformerBlock(fmt.Sprintf("layer%d", i), cfg.Dim, cfg.Heads, cfg.Hidden, cfg.Act, rng))
	}
	return m
}

// Params returns every parameter in the model.
func (m *Transformer) Params() ParamSet {
	ps := append(m.TokEmb.Params(), m.PosEmb.Params()...)
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.LNF.Params()...)
	ps = append(ps, m.Head.Params()...)
	if m.Prompt != nil {
		ps = append(ps, m.Prompt)
	}
	return ps
}

// EnablePrompt attaches a trainable continuous prompt of n vectors
// (P-Tuning). Sequences grow by n tokens at the front.
func (m *Transformer) EnablePrompt(n int, rng *tensor.RNG) {
	m.Prompt = NewParameter("prompt", n, m.Cfg.Dim)
	rng.FillNormal(m.Prompt.W, 0.02)
	m.PromptLen = n
}

// TotalSeq returns the model-visible sequence length for an input of s
// tokens (s plus the prompt).
func (m *Transformer) TotalSeq(s int) int { return s + m.PromptLen }

// Forward runs the model over a batch of equal-length token sequences and
// returns logits [batch·totalSeq, vocab]. planner selects sparse execution
// per layer at runtime; pass nil for fully dense. ws is the step workspace
// every step-lived buffer comes from — nil allocates exactly like the seed
// code; the logits (and all saved-for-backward state) are valid until the
// workspace's Release.
func (m *Transformer) Forward(ids [][]int, planner Planner, ws *tensor.Arena) *tensor.Tensor {
	batch := len(ids)
	if batch == 0 {
		panic("nn: empty batch")
	}
	s := len(ids[0])
	for _, row := range ids {
		if len(row) != s {
			panic("nn: ragged batch")
		}
	}
	total := m.TotalSeq(s)
	if total > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("nn: sequence %d exceeds MaxSeq %d", total, m.Cfg.MaxSeq))
	}
	m.batch, m.seq, m.realSeq = batch, total, s
	d := m.Cfg.Dim

	// Token embeddings for the real tokens.
	flat := tensor.IntsIn(ws, batch*s)
	fi := 0
	for _, row := range ids {
		fi += copy(flat[fi:], row)
	}
	tok := m.TokEmb.Forward(flat, ws)

	// Assemble [batch·total, dim]: prompt rows then token rows, per batch.
	x := tensor.NewIn(ws, batch*total, d)
	for b := 0; b < batch; b++ {
		for p := 0; p < m.PromptLen; p++ {
			copy(x.Data[(b*total+p)*d:(b*total+p+1)*d], m.Prompt.W.Data[p*d:(p+1)*d])
		}
		for si := 0; si < s; si++ {
			copy(x.Data[(b*total+m.PromptLen+si)*d:(b*total+m.PromptLen+si+1)*d],
				tok.Data[(b*s+si)*d:(b*s+si+1)*d])
		}
	}

	// Positional embeddings over all positions.
	posIDs := tensor.IntsIn(ws, batch*total)
	for b := 0; b < batch; b++ {
		for p := 0; p < total; p++ {
			posIDs[b*total+p] = p
		}
	}
	pos := m.PosEmb.Forward(posIDs, ws)
	tensor.AddInto(x, pos)

	for li, blk := range m.Blocks {
		var lp LayerPlanner
		if planner != nil {
			lp = planner.Layer(li)
		}
		x = blk.Forward(x, batch, total, lp, ws)
	}

	x = m.LNF.Forward(x, ws)
	return m.Head.Forward(x, ws)
}

// Backward propagates dLogits through the whole model, accumulating
// gradients on every trainable parameter. ws must be the workspace the
// matching Forward ran with (or nil for both).
func (m *Transformer) Backward(dLogits *tensor.Tensor, ws *tensor.Arena) {
	dx := m.Head.Backward(dLogits, ws)
	dx = m.LNF.Backward(dx, ws)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx, ws)
	}

	// Positional embeddings see every position.
	m.PosEmb.Backward(dx)

	batch, total, s, d := m.batch, m.seq, m.realSeq, m.Cfg.Dim
	// Prompt gradient: sum over batch at prompt positions.
	if m.Prompt != nil && !m.Prompt.Frozen {
		for b := 0; b < batch; b++ {
			for p := 0; p < m.PromptLen; p++ {
				src := dx.Data[(b*total+p)*d : (b*total+p+1)*d]
				dst := m.Prompt.Grad.Data[p*d : (p+1)*d]
				for j, v := range src {
					dst[j] += v
				}
			}
		}
	}

	// Token embedding gradient: gather real-token rows.
	if !m.TokEmb.Table.Frozen {
		dTok := tensor.NewIn(ws, batch*s, d)
		for b := 0; b < batch; b++ {
			for si := 0; si < s; si++ {
				copy(dTok.Data[(b*s+si)*d:(b*s+si+1)*d],
					dx.Data[(b*total+m.PromptLen+si)*d:(b*total+m.PromptLen+si+1)*d])
			}
		}
		m.TokEmb.Backward(dTok)
	}
}

// FlattenTargets aligns per-sequence targets with the model's flattened
// logits: prompt positions receive IgnoreIndex.
func (m *Transformer) FlattenTargets(targets [][]int) []int {
	return m.FlattenTargetsIn(nil, targets)
}

// FlattenTargetsIn is FlattenTargets with the flat slice taken from the
// step workspace.
func (m *Transformer) FlattenTargetsIn(ws *tensor.Arena, targets [][]int) []int {
	batch := len(targets)
	s := len(targets[0])
	total := m.TotalSeq(s)
	out := tensor.IntsIn(ws, batch*total)
	for b := 0; b < batch; b++ {
		for p := 0; p < m.PromptLen; p++ {
			out[b*total+p] = IgnoreIndex
		}
		copy(out[b*total+m.PromptLen:], targets[b])
	}
	return out
}

// NumParams reports total and trainable scalar parameter counts.
func (m *Transformer) NumParams() (total, trainable int) {
	return m.Params().NumParams()
}
