package nn

import (
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// LayerNorm normalizes each token vector to zero mean / unit variance and
// applies a learned affine (gamma, beta).
type LayerNorm struct {
	Dim   int
	Gamma *Parameter
	Beta  *Parameter
	Eps   float64

	// Forward cache.
	xhat   *tensor.Tensor // normalized input [tokens, dim]
	invStd []float32      // per-token 1/σ
}

// NewLayerNorm constructs a layer norm with gamma=1, beta=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Gamma: NewParameter(name+".gamma", dim),
		Beta:  NewParameter(name+".beta", dim),
		Eps:   1e-5,
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Params returns gamma and beta.
func (ln *LayerNorm) Params() ParamSet { return ParamSet{ln.Gamma, ln.Beta} }

// Forward normalizes x: [tokens, dim] → y of the same shape.
func (ln *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	tokens, d := x.Dim(0), x.Dim(1)
	y := tensor.New(tokens, d)
	ln.xhat = tensor.New(tokens, d)
	ln.invStd = make([]float32, tokens)
	g, b := ln.Gamma.W.Data, ln.Beta.W.Data
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.Data[i*d : (i+1)*d]
			var mean float64
			for _, v := range xi {
				mean += float64(v)
			}
			mean /= float64(d)
			var varr float64
			for _, v := range xi {
				dv := float64(v) - mean
				varr += dv * dv
			}
			varr /= float64(d)
			inv := float32(1 / math.Sqrt(varr+ln.Eps))
			ln.invStd[i] = inv
			xh := ln.xhat.Data[i*d : (i+1)*d]
			yi := y.Data[i*d : (i+1)*d]
			for j, v := range xi {
				h := (v - float32(mean)) * inv
				xh[j] = h
				yi[j] = h*g[j] + b[j]
			}
		}
	})
	return y
}

// Backward propagates dy and accumulates dGamma/dBeta when trainable.
func (ln *LayerNorm) Backward(dy *tensor.Tensor) *tensor.Tensor {
	tokens, d := dy.Dim(0), dy.Dim(1)
	dx := tensor.New(tokens, d)
	g := ln.Gamma.W.Data

	// Parameter grads: reductions over tokens, parallel over features.
	if !ln.Gamma.Frozen || !ln.Beta.Frozen {
		gg, gb := ln.Gamma.Grad.Data, ln.Beta.Grad.Data
		parallel.ForChunked(d, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				var sg, sb float64
				for i := 0; i < tokens; i++ {
					dyv := float64(dy.Data[i*d+j])
					sg += dyv * float64(ln.xhat.Data[i*d+j])
					sb += dyv
				}
				if !ln.Gamma.Frozen {
					gg[j] += float32(sg)
				}
				if !ln.Beta.Frozen {
					gb[j] += float32(sb)
				}
			}
		})
	}

	// Input grad: dx = (invStd/d) · (d·dŷ − Σdŷ − x̂·Σ(dŷ·x̂)) with
	// dŷ = dy ⊙ gamma.
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dyi := dy.Data[i*d : (i+1)*d]
			xh := ln.xhat.Data[i*d : (i+1)*d]
			dxi := dx.Data[i*d : (i+1)*d]
			var sum1, sum2 float64
			for j := range dyi {
				dh := float64(dyi[j]) * float64(g[j])
				sum1 += dh
				sum2 += dh * float64(xh[j])
			}
			inv := float64(ln.invStd[i])
			for j := range dyi {
				dh := float64(dyi[j]) * float64(g[j])
				dxi[j] = float32(inv * (dh - sum1/float64(d) - float64(xh[j])*sum2/float64(d)))
			}
		}
	})
	return dx
}
