package nn

import (
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// LayerNorm normalizes each token vector to zero mean / unit variance and
// applies a learned affine (gamma, beta).
type LayerNorm struct {
	Dim   int
	Gamma *Parameter
	Beta  *Parameter
	Eps   float64

	// Forward cache.
	xhat   *tensor.Tensor // normalized input [tokens, dim]
	invStd []float32      // per-token 1/σ
}

// NewLayerNorm constructs a layer norm with gamma=1, beta=0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Gamma: NewParameter(name+".gamma", dim),
		Beta:  NewParameter(name+".beta", dim),
		Eps:   1e-5,
	}
	ln.Gamma.W.Fill(1)
	return ln
}

// Params returns gamma and beta.
func (ln *LayerNorm) Params() ParamSet { return ParamSet{ln.Gamma, ln.Beta} }

// Forward normalizes x: [tokens, dim] → y of the same shape. ws is the
// step workspace (nil allocates).
func (ln *LayerNorm) Forward(x *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	tokens, d := x.Dim(0), x.Dim(1)
	y := tensor.NewIn(ws, tokens, d)
	ln.xhat = tensor.NewIn(ws, tokens, d)
	ln.invStd = tensor.FloatsIn(ws, tokens)
	g, b := ln.Gamma.W.Data, ln.Beta.W.Data
	parallel.ForChunkedArg(tokens, lnFwdArgs{
		x: x.Data, y: y.Data, xhat: ln.xhat.Data, invStd: ln.invStd,
		g: g, b: b, d: d, eps: ln.Eps,
	}, lnForwardChunk)
	return y
}

// lnFwdArgs / lnForwardChunk: static normalization body (allocation-free
// parallel fan-out, see parallel.ForChunkedArg).
type lnFwdArgs struct {
	x, y, xhat, invStd, g, b []float32
	d                        int
	eps                      float64
}

func lnForwardChunk(a lnFwdArgs, lo, hi int) {
	d := a.d
	for i := lo; i < hi; i++ {
		xi := a.x[i*d : (i+1)*d]
		var mean float64
		for _, v := range xi {
			mean += float64(v)
		}
		mean /= float64(d)
		var varr float64
		for _, v := range xi {
			dv := float64(v) - mean
			varr += dv * dv
		}
		varr /= float64(d)
		inv := float32(1 / math.Sqrt(varr+a.eps))
		a.invStd[i] = inv
		xh := a.xhat[i*d : (i+1)*d]
		yi := a.y[i*d : (i+1)*d]
		for j, v := range xi {
			h := (v - float32(mean)) * inv
			xh[j] = h
			yi[j] = h*a.g[j] + a.b[j]
		}
	}
}

// Backward propagates dy and accumulates dGamma/dBeta when trainable.
func (ln *LayerNorm) Backward(dy *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	tokens, d := dy.Dim(0), dy.Dim(1)
	dx := tensor.NewIn(ws, tokens, d)
	g := ln.Gamma.W.Data

	// Parameter grads: reductions over tokens, parallel over features.
	if !ln.Gamma.Frozen || !ln.Beta.Frozen {
		parallel.ForChunkedArg(d, lnGradArgs{
			dy: dy.Data, xhat: ln.xhat.Data,
			gg: ln.Gamma.Grad.Data, gb: ln.Beta.Grad.Data,
			tokens: tokens, d: d,
			wantG: !ln.Gamma.Frozen, wantB: !ln.Beta.Frozen,
		}, lnParamGradChunk)
	}

	// Input grad: dx = (invStd/d) · (d·dŷ − Σdŷ − x̂·Σ(dŷ·x̂)) with
	// dŷ = dy ⊙ gamma.
	parallel.ForChunkedArg(tokens, lnBwdArgs{
		dy: dy.Data, xhat: ln.xhat.Data, dx: dx.Data,
		g: g, invStd: ln.invStd, d: d,
	}, lnInputGradChunk)
	return dx
}

type lnGradArgs struct {
	dy, xhat, gg, gb []float32
	tokens, d        int
	wantG, wantB     bool
}

func lnParamGradChunk(a lnGradArgs, lo, hi int) {
	for j := lo; j < hi; j++ {
		var sg, sb float64
		for i := 0; i < a.tokens; i++ {
			dyv := float64(a.dy[i*a.d+j])
			sg += dyv * float64(a.xhat[i*a.d+j])
			sb += dyv
		}
		if a.wantG {
			a.gg[j] += float32(sg)
		}
		if a.wantB {
			a.gb[j] += float32(sb)
		}
	}
}

type lnBwdArgs struct {
	dy, xhat, dx, g, invStd []float32
	d                       int
}

func lnInputGradChunk(a lnBwdArgs, lo, hi int) {
	d := a.d
	for i := lo; i < hi; i++ {
		dyi := a.dy[i*d : (i+1)*d]
		xh := a.xhat[i*d : (i+1)*d]
		dxi := a.dx[i*d : (i+1)*d]
		var sum1, sum2 float64
		for j := range dyi {
			dh := float64(dyi[j]) * float64(a.g[j])
			sum1 += dh
			sum2 += dh * float64(xh[j])
		}
		inv := float64(a.invStd[i])
		for j := range dyi {
			dh := float64(dyi[j]) * float64(a.g[j])
			dxi[j] = float32(inv * (dh - sum1/float64(d) - float64(xh[j])*sum2/float64(d)))
		}
	}
}
