package nn

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

// compressedPair builds two identically-seeded models and compresses one.
func compressedPair(t *testing.T, precision string) (f32, comp *Transformer) {
	t.Helper()
	f32 = NewTransformer(tinyConfig(), tensor.NewRNG(99))
	comp = NewTransformer(tinyConfig(), tensor.NewRNG(99))
	if err := comp.Compress(precision); err != nil {
		t.Fatal(err)
	}
	return f32, comp
}

// TestCompressDecodeTolerance: the cached decode path through each
// compressed storage format stays within a small logit tolerance of the f32
// base, and greedy decoding agrees on this model (quantization noise far
// below the logit margins of a deterministic tiny model).
func TestCompressDecodeTolerance(t *testing.T) {
	prompt := []int{2, 5, 3, 7}
	for _, tc := range []struct {
		precision string
		tol       float64
		greedy    bool // argmax must survive quantization
	}{
		{PrecisionF16, 1e-2, true},
		{PrecisionI8, 0.1, true},
		// 2:4 prunes half the MLP weights of an untrained random model:
		// logits stay in the neighbourhood, the argmax has no margin to
		// survive on.
		{PrecisionNM24, 1.5, false},
	} {
		f32m, comp := compressedPair(t, tc.precision)
		cacheA, cacheB := f32m.NewKVCache(), comp.NewKVCache()
		la := f32m.DecodeStep(cacheA, prompt, nil, nil)
		lb := comp.DecodeStep(cacheB, prompt, nil, nil)
		var maxd float64
		for i := range la.Data {
			if d := math.Abs(float64(la.Data[i] - lb.Data[i])); d > maxd {
				maxd = d
			}
		}
		if maxd > tc.tol {
			t.Fatalf("%s: max logit diff %g exceeds %g", tc.precision, maxd, tc.tol)
		}
		if a, b := SampleToken(la.Row(0), 0, nil), SampleToken(lb.Row(0), 0, nil); tc.greedy && a != b {
			t.Fatalf("%s: greedy token diverged: %d vs %d", tc.precision, a, b)
		}
	}
}

// TestCompressForwardMatchesDecode: the batch Forward path of a compressed
// model dispatches through the same packed kernels as decode — the two must
// produce bit-identical logits for the same prefix (the decode-parity
// contract, unchanged by compression).
func TestCompressForwardMatchesDecode(t *testing.T) {
	for _, precision := range []string{PrecisionF16, PrecisionI8, PrecisionNM24} {
		_, comp := compressedPair(t, precision)
		prompt := []int{2, 5, 3, 7}
		fwd := comp.Forward([][]int{prompt}, nil, nil)
		cache := comp.NewKVCache()
		dec := comp.DecodeStep(cache, prompt, nil, nil)
		last := fwd.Row(len(prompt) - 1)
		for i := range last {
			if math.Float32bits(last[i]) != math.Float32bits(dec.Data[i]) {
				t.Fatalf("%s: forward/decode diverge at logit %d: %g vs %g",
					precision, i, last[i], dec.Data[i])
			}
		}
	}
}

// TestCompressFreesStorage pins the footprint story: compression must
// actually shrink resident weight bytes (f16 roughly halves the big
// matrices, int8 roughly quarters them) and null out the f32 buffers.
func TestCompressFreesStorage(t *testing.T) {
	f32m, f16m := compressedPair(t, PrecisionF16)
	_, i8m := compressedPair(t, PrecisionI8)
	full, hb, qb := f32m.WeightBytes(), f16m.WeightBytes(), i8m.WeightBytes()
	if hb >= full || qb >= hb {
		t.Fatalf("weight bytes not shrinking: f32=%d f16=%d int8=%d", full, hb, qb)
	}
	if !f16m.Compressed() || f32m.Compressed() {
		t.Fatal("Compressed() flag wrong")
	}
	if f16m.Blocks[0].Attn.Wq.W.W.Data != nil || f16m.Blocks[0].MLP.W1.W.Data != nil {
		t.Fatal("f32 storage not freed")
	}
	if !f16m.Blocks[0].MLP.W1.Frozen {
		t.Fatal("compressed parameter not frozen")
	}
}

// TestCompressGuards: serving-only means Backward and the neuron-sparsity
// paths refuse compressed layers, invalid names are rejected, and f32 is a
// no-op.
func TestCompressGuards(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(1))
	if err := m.Compress("f4"); err == nil {
		t.Fatal("unknown precision accepted")
	}
	if err := m.Compress(PrecisionF32); err != nil || m.Compressed() {
		t.Fatalf("f32 compress not a no-op: %v", err)
	}
	if err := m.Compress(PrecisionF16); err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mlp := m.Blocks[0].MLP
	x := tensor.New(1, m.Cfg.Dim)
	mustPanic("sparse forward", func() { mlp.Forward(x, []int{0}, 8, nil) })
	mustPanic("backward", func() {
		mlp.Forward(x, nil, 0, nil)
		mlp.Backward(tensor.New(1, m.Cfg.Dim), nil)
	})

	lora := NewTransformer(tinyConfig(), tensor.NewRNG(2))
	lora.Blocks[0].Attn.Wq.AddLoRA("q", 2, 4, tensor.NewRNG(3))
	if err := lora.Compress(PrecisionI8); err == nil {
		t.Fatal("compressing a LoRA-carrying layer was accepted")
	}
}
