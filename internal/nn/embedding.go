package nn

import (
	"fmt"

	"longexposure/internal/tensor"
)

// Embedding is a lookup table [vocab, dim]. The transformer uses two:
// token embeddings and learned positional embeddings.
type Embedding struct {
	Vocab, Dim int
	Table      *Parameter

	ids []int // forward cache
}

// NewEmbedding constructs an embedding with N(0, 0.02) init.
func NewEmbedding(name string, vocab, dim int, rng *tensor.RNG) *Embedding {
	e := &Embedding{
		Vocab: vocab,
		Dim:   dim,
		Table: NewParameter(name+".weight", vocab, dim),
	}
	rng.FillNormal(e.Table.W, 0.02)
	return e
}

// Params returns the table.
func (e *Embedding) Params() ParamSet { return ParamSet{e.Table} }

// Forward gathers rows for ids → [len(ids), dim]. ws is the step
// workspace; ids may itself be workspace-backed (it is only read until the
// step's Release).
func (e *Embedding) Forward(ids []int, ws *tensor.Arena) *tensor.Tensor {
	e.ids = ids
	out := tensor.NewIn(ws, len(ids), e.Dim)
	for i, id := range ids {
		if id < 0 || id >= e.Vocab {
			panic(fmt.Sprintf("nn: embedding id %d outside vocab %d", id, e.Vocab))
		}
		copy(out.Data[i*e.Dim:(i+1)*e.Dim], e.Table.W.Data[id*e.Dim:(id+1)*e.Dim])
	}
	return out
}

// Backward scatter-adds dy into the table gradient (when trainable).
// Embeddings produce no input gradient.
func (e *Embedding) Backward(dy *tensor.Tensor) {
	if e.Table.Frozen {
		return
	}
	for i, id := range e.ids {
		src := dy.Data[i*e.Dim : (i+1)*e.Dim]
		dst := e.Table.Grad.Data[id*e.Dim : (id+1)*e.Dim]
		for j, v := range src {
			dst[j] += v
		}
	}
}

// ForwardRange gathers the rows [lo, lo+n) — the positional-embedding path.
func (e *Embedding) ForwardRange(lo, n int, ws *tensor.Arena) *tensor.Tensor {
	ids := tensor.IntsIn(ws, n)
	for i := range ids {
		ids[i] = lo + i
	}
	return e.Forward(ids, ws)
}
