package nn

import (
	"longexposure/internal/tensor"
)

// Adapter is the Houlsby-style bottleneck module inserted after a sublayer:
// y = z + up(relu(down(z))) with a small bottleneck width. The up-projection
// starts at zero so a freshly injected adapter is the identity.
type Adapter struct {
	Dim, Bottleneck int
	Down, Up        *Linear

	mask *tensor.Tensor // ReLU mask cache
}

// NewAdapter constructs an adapter with near-identity initialization.
func NewAdapter(name string, dim, bottleneck int, rng *tensor.RNG) *Adapter {
	a := &Adapter{
		Dim:        dim,
		Bottleneck: bottleneck,
		Down:       NewLinear(name+".down", dim, bottleneck, rng),
		Up:         NewLinear(name+".up", bottleneck, dim, rng),
	}
	a.Up.W.W.Zero() // identity at injection time
	return a
}

// Params returns the adapter's parameters.
func (a *Adapter) Params() ParamSet {
	return append(a.Down.Params(), a.Up.Params()...)
}

// Forward computes y = z + up(relu(down(z))). ws is the step workspace.
func (a *Adapter) Forward(z *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	h := a.Down.Forward(z, ws)
	a.mask = tensor.ReLUIn(ws, h, true)
	y := a.Up.Forward(h, ws)
	tensor.AddInto(y, z)
	return y
}

// Backward propagates dy through the bottleneck and the residual.
func (a *Adapter) Backward(dy *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	dh := a.Up.Backward(dy, ws)
	tensor.MulInto(dh, a.mask)
	dz := a.Down.Backward(dh, ws)
	tensor.AddInto(dz, dy) // residual branch
	return dz
}
