package nn

import (
	"testing"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

func tinyConfig() Config {
	return Config{Name: "tiny", Vocab: 17, Dim: 16, Layers: 2, Heads: 2, Hidden: 32, MaxSeq: 16, Act: ActReLU}
}

// fullSparsePlan builds a plan whose layouts/blocks cover everything, so the
// sparse execution path must reproduce the dense path exactly.
func fullSparsePlan(cfg Config, seq, blk int) *SparsePlan {
	nb := seq / blk
	dense := sparse.Pattern{Kind: sparse.KindDense}.Build(nb)
	plan := &SparsePlan{Blk: blk}
	for l := 0; l < cfg.Layers; l++ {
		heads := make([]*sparse.Layout, cfg.Heads)
		for h := range heads {
			heads[h] = dense
		}
		plan.Attn = append(plan.Attn, heads)
		plan.MLP = append(plan.MLP, sparse.AllBlocks(cfg.Hidden, blk))
	}
	return plan
}

func TestSparseFullPlanMatchesDenseForward(t *testing.T) {
	r := tensor.NewRNG(200)
	cfg := tinyConfig()
	m := NewTransformer(cfg, r)
	ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1}}

	dense := m.Forward(ids, nil, nil)
	sparseOut := m.Forward(ids, fullSparsePlan(cfg, 8, 4), nil)
	if d := tensor.MaxAbsDiff(dense, sparseOut); d > 1e-3 {
		t.Fatalf("sparse full plan diverges from dense: %v", d)
	}
}

func TestSparseFullPlanMatchesDenseGradients(t *testing.T) {
	r := tensor.NewRNG(201)
	cfg := tinyConfig()
	m := NewTransformer(cfg, r)
	ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 8}}
	targets := [][]int{{2, 3, 4, 5, 6, 7, 8, 9}}
	flat := m.FlattenTargets(targets)

	run := func(plan *SparsePlan) map[string][]float32 {
		logits := m.Forward(ids, plan, nil)
		_, dLogits := CrossEntropy(logits, flat)
		m.Params().ZeroGrads()
		m.Backward(dLogits, nil)
		out := make(map[string][]float32)
		for _, p := range m.Params() {
			out[p.Name] = append([]float32(nil), p.Grad.Data...)
		}
		return out
	}

	gDense := run(nil)
	gSparse := run(fullSparsePlan(cfg, 8, 4))
	for name, gd := range gDense {
		gs := gSparse[name]
		for i := range gd {
			diff := float64(gd[i] - gs[i])
			if diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("%s grad[%d]: dense %v vs sparse %v", name, i, gd[i], gs[i])
			}
		}
	}
}

func TestMLPSparseSubsetMatchesMaskedDense(t *testing.T) {
	r := tensor.NewRNG(202)
	dim, hidden, blk := 8, 16, 4
	m := NewMLP("mlp", dim, hidden, ActReLU, r)
	x := tensor.New(6, dim)
	r.FillNormal(x, 1)

	blocks := []int{0, 2} // neurons 0-3 and 8-11 active
	got := m.Forward(x, blocks, blk, nil)

	// Reference: dense forward with inactive neurons' FC1 columns, biases
	// and FC2 rows zeroed.
	m2 := NewMLP("mlp2", dim, hidden, ActReLU, r.Split())
	m2.W1.W.CopyFrom(m.W1.W)
	m2.B1.W.CopyFrom(m.B1.W)
	m2.W2.W.CopyFrom(m.W2.W)
	m2.B2.W.CopyFrom(m.B2.W)
	active := func(h int) bool { return h/blk == 0 || h/blk == 2 }
	for h := 0; h < hidden; h++ {
		if !active(h) {
			for j := 0; j < dim; j++ {
				m2.W1.W.Set(0, h, j)
				m2.W2.W.Set(0, h, j)
			}
			m2.B1.W.Data[h] = 0
		}
	}
	want := m2.Forward(x, nil, 0, nil)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("sparse subset forward mismatch: %v", d)
	}

	// Backward equivalence for the input gradient.
	dOut := tensor.New(6, dim)
	r.FillNormal(dOut, 1)
	m.Params().ZeroGrads()
	m2.Params().ZeroGrads()
	dx := m.Backward(dOut, nil)
	dx2 := m2.Backward(dOut, nil)
	if d := tensor.MaxAbsDiff(dx, dx2); d > 1e-4 {
		t.Fatalf("sparse subset backward mismatch: %v", d)
	}
}

func TestMLPGeLURejectsSparsity(t *testing.T) {
	r := tensor.NewRNG(203)
	m := NewMLP("mlp", 8, 16, ActGeLU, r)
	defer func() {
		if recover() == nil {
			t.Fatal("GeLU MLP accepted a sparse plan")
		}
	}()
	x := tensor.New(2, 8)
	m.Forward(x, []int{0}, 4, nil)
}

func TestFrozenParametersReceiveNoGradient(t *testing.T) {
	r := tensor.NewRNG(204)
	cfg := tinyConfig()
	m := NewTransformer(cfg, r)
	ps := m.Params()
	ps.FreezeAll()
	// Unfreeze one bias only (BitFit-style).
	b := m.Blocks[0].Attn.Wq.B
	b.Frozen = false

	ids := [][]int{{1, 2, 3, 4}}
	flat := m.FlattenTargets([][]int{{2, 3, 4, 5}})
	logits := m.Forward(ids, nil, nil)
	_, dLogits := CrossEntropy(logits, flat)
	ps.ZeroGrads()
	m.Backward(dLogits, nil)

	for _, p := range ps {
		norm := tensor.L2Norm(p.Grad)
		if p.Frozen && norm != 0 {
			t.Errorf("frozen %s has gradient norm %v", p.Name, norm)
		}
		if !p.Frozen && norm == 0 {
			t.Errorf("trainable %s has zero gradient", p.Name)
		}
	}
}

func TestParamSetBookkeeping(t *testing.T) {
	r := tensor.NewRNG(205)
	cfg := tinyConfig()
	m := NewTransformer(cfg, r)
	ps := m.Params()
	total, trainable := ps.NumParams()
	if total != trainable {
		t.Fatalf("fresh model should be fully trainable: %d vs %d", total, trainable)
	}
	ps.FreezeAll()
	_, trainable = ps.NumParams()
	if trainable != 0 {
		t.Fatalf("FreezeAll left %d trainable", trainable)
	}
	if ps.ByName("lm_head.weight") == nil {
		t.Fatal("ByName failed to find lm_head.weight")
	}
	if ps.ByName("nonexistent") != nil {
		t.Fatal("ByName found a ghost")
	}
}

func TestTransformerLearnsCopyTask(t *testing.T) {
	// A two-layer model must be able to fit "predict the same token" in a
	// few dozen SGD steps — the smoke test that forward+backward are
	// coherent end to end.
	r := tensor.NewRNG(206)
	cfg := Config{Name: "tiny", Vocab: 8, Dim: 16, Layers: 1, Heads: 2, Hidden: 32, MaxSeq: 8, Act: ActReLU}
	m := NewTransformer(cfg, r)
	ps := m.Params()

	ids := [][]int{{1, 2, 3, 4, 5, 6, 7, 1}}
	targets := [][]int{{1, 2, 3, 4, 5, 6, 7, 1}} // predict input itself
	flat := m.FlattenTargets(targets)

	var first, last float64
	for step := 0; step < 60; step++ {
		logits := m.Forward(ids, nil, nil)
		loss, dLogits := CrossEntropy(logits, flat)
		if step == 0 {
			first = loss
		}
		last = loss
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps {
			tensor.AddScaledInto(p.W, p.Grad, -0.5)
		}
	}
	if last > first*0.5 {
		t.Fatalf("loss did not halve: first %v, last %v", first, last)
	}
}

func TestAttentionHeadSplitMergeRoundTrip(t *testing.T) {
	r := tensor.NewRNG(207)
	a := NewMultiHeadAttention("attn", 12, 3, r)
	batch, seq := 2, 4
	x := tensor.New(8, 12)
	r.FillNormal(x, 1)
	heads := a.splitHeads(nil, x, batch, seq, nil)
	if len(heads) != 6 {
		t.Fatalf("splitHeads gave %d buffers", len(heads))
	}
	back := a.mergeHeads(heads, batch, seq, nil)
	if d := tensor.MaxAbsDiff(back, x); d != 0 {
		t.Fatalf("merge∘split != identity: %v", d)
	}
}

func TestAccuracyHelper(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 9, 0,
		5, 1, 0,
		0, 0, 7,
	}, 3, 3)
	targets := []int{1, 0, IgnoreIndex}
	if acc := Accuracy(logits, targets); acc != 1 {
		t.Fatalf("Accuracy = %v, want 1", acc)
	}
	targets = []int{0, 0, IgnoreIndex}
	if acc := Accuracy(logits, targets); acc != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", acc)
	}
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Heads = 3 // 16 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid heads accepted")
	}
	bad = good
	bad.Vocab = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero vocab accepted")
	}
}
