package nn

import (
	"longexposure/internal/parallel"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Activation selects the MLP nonlinearity. ReLU models (OPT family) expose
// neuron sparsity; GeLU models (GPT-2 family) do not, so their MLPs always
// run dense (paper §VII-D).
type Activation uint8

const (
	// ActReLU is the rectifier (OPT).
	ActReLU Activation = iota
	// ActGeLU is the Gaussian error linear unit (GPT-2).
	ActGeLU
)

// String names the activation.
func (a Activation) String() string {
	if a == ActGeLU {
		return "gelu"
	}
	return "relu"
}

// MLP is the transformer feed-forward block FC1 → activation → FC2 with
// layout-aware weight storage (§VI-B): FC1 is held column-major (each
// neuron's input weights contiguous), FC2 row-major (each neuron's output
// weights contiguous), so the neuron-block sparse kernels stream exactly
// the active weights with unit stride.
//
// Concretely, the FC1 parameter has shape [hidden, dim] whose row h is
// column h of the conceptual [dim → hidden] matrix; FC2 is the natural
// [hidden, dim].
type MLP struct {
	Dim, Hidden int
	Act         Activation
	W1, B1      *Parameter // W1: [hidden, dim] column-major view of [dim→hidden]
	W2, B2      *Parameter // W2: [hidden, dim] row-major

	// Reduced-precision storage for a compressed frozen base (Compress):
	// at most one of Packed/NM is set per matrix, the f32 data is freed,
	// and the dense forward paths dispatch to the widening or N:M kernels.
	// Compressed MLPs are serving-only — Backward and the neuron-block
	// contextual-sparsity paths refuse them.
	PackedW1, PackedW2 *tensor.PackedWeights // W1: per-row scales, W2: per-col
	NMW1, NMW2         *sparse.NMWeights     // 2:4 block-structured

	// Forward cache.
	x       *tensor.Tensor
	hidden  *tensor.Tensor // post-activation [tokens, hidden]
	preAct  *tensor.Tensor // pre-activation copy (GeLU backward)
	mask    *tensor.Tensor // ReLU activation mask
	blocks  []int          // active neuron blocks; nil → dense
	blk     int
	lastAct *tensor.Tensor // hidden used by FC2 (== hidden)
}

// NewMLP constructs the feed-forward block with Xavier init.
func NewMLP(name string, dim, hidden int, act Activation, rng *tensor.RNG) *MLP {
	m := &MLP{
		Dim:    dim,
		Hidden: hidden,
		Act:    act,
		W1:     NewParameter(name+".fc1.weight", hidden, dim),
		B1:     NewParameter(name+".fc1.bias", hidden),
		W2:     NewParameter(name+".fc2.weight", hidden, dim),
		B2:     NewParameter(name+".fc2.bias", dim),
	}
	rng.XavierInit(m.W1.W, dim, hidden)
	rng.XavierInit(m.W2.W, hidden, dim)
	return m
}

// Params returns the block's parameters.
func (m *MLP) Params() ParamSet { return ParamSet{m.W1, m.B1, m.W2, m.B2} }

// colMajorW1 views the FC1 parameter as the sparse kernels' ColMajor type.
func (m *MLP) colMajorW1(t *tensor.Tensor) *sparse.ColMajor {
	return &sparse.ColMajor{In: m.Dim, Out: m.Hidden, Data: t.Data}
}

// rowMajorW2 views the FC2 parameter as the sparse kernels' RowMajor type.
func (m *MLP) rowMajorW2(t *tensor.Tensor) *sparse.RowMajor {
	return &sparse.RowMajor{In: m.Hidden, Out: m.Dim, Data: t.Data}
}

// Forward computes the block over x: [tokens, dim]. blocks selects the
// execution path: nil runs dense; otherwise only the listed neuron blocks
// (of size blk) are computed, and all other hidden units are treated as
// inactive — including their biases, matching the predictor contract that
// unlisted neurons contribute nothing.
func (m *MLP) Forward(x *tensor.Tensor, blocks []int, blk int, ws *tensor.Arena) *tensor.Tensor {
	if blocks != nil && m.Act == ActGeLU {
		panic("nn: neuron sparsity requires ReLU activation")
	}
	tokens := x.Dim(0)
	m.x = x
	m.blocks, m.blk = blocks, blk

	if blocks != nil && m.compressed() {
		panic("nn: neuron-block sparsity on a compressed MLP — compressed bases serve dense")
	}
	m.hidden = tensor.NewIn(ws, tokens, m.Hidden)
	if blocks == nil {
		// Dense: hidden = x·W1ᵀ(param) + b1.
		m.fc1Dense(m.hidden, x, tokens)
		tensor.AddRowVector(m.hidden, m.B1.W.Data)
		switch m.Act {
		case ActReLU:
			m.mask = tensor.ReLUIn(ws, m.hidden, true)
			m.preAct = nil
		case ActGeLU:
			m.preAct = tensor.GeLUIn(ws, m.hidden)
			m.mask = nil
		}
	} else {
		sparse.FC1Sparse(m.hidden.Data, x.Data, tokens, m.colMajorW1(m.W1.W), blocks, blk)
		addBiasBlocks(m.hidden, m.B1.W.Data, blocks, blk)
		m.mask = tensor.ReLUIn(ws, m.hidden, true)
		m.preAct = nil
	}

	out := tensor.NewIn(ws, tokens, m.Dim)
	if blocks == nil {
		m.fc2Dense(out, m.hidden, tokens)
	} else {
		sparse.FC2Sparse(out.Data, m.hidden.Data, tokens, m.rowMajorW2(m.W2.W), blocks, blk)
	}
	tensor.AddRowVector(out, m.B2.W.Data)
	return out
}

// compressed reports whether either weight matrix left f32 storage.
func (m *MLP) compressed() bool {
	return m.PackedW1 != nil || m.PackedW2 != nil || m.NMW1 != nil || m.NMW2 != nil
}

// fc1Dense accumulates hidden += x·W1ᵀ through whichever storage W1 is in.
// hidden arrives zeroed, so the accumulate is an overwrite.
func (m *MLP) fc1Dense(hidden, x *tensor.Tensor, tokens int) {
	switch {
	case m.NMW1 != nil:
		m.NMW1.MulTB(hidden.Data, x.Data, tokens)
	case m.PackedW1 != nil:
		tensor.MatMulTBPackedInto(hidden, x, m.PackedW1)
	default:
		tensor.MatMulTBInto(hidden, x, m.W1.W)
	}
}

// fc2Dense accumulates out += hidden·W2 through whichever storage W2 is in.
func (m *MLP) fc2Dense(out, hidden *tensor.Tensor, tokens int) {
	switch {
	case m.NMW2 != nil:
		m.NMW2.TMulBatch(out.Data, hidden.Data, tokens)
	case m.PackedW2 != nil:
		tensor.MatMulPackedInto(out, hidden, m.PackedW2)
	default:
		tensor.MatMulInto(out, hidden, m.W2.W)
	}
}

// Backward propagates dOut and returns dx. Under neuron sparsity, both the
// hidden gradient and any weight gradients are computed only on active
// blocks — inactive neurons are excluded from gradient computation exactly
// as §II-D derives.
func (m *MLP) Backward(dOut *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	if m.compressed() {
		panic("nn: Backward through a compressed MLP — compressed bases are serving-only")
	}
	tokens := dOut.Dim(0)
	if !m.B2.Frozen {
		accumulateColumnSum(m.B2.Grad.Data, dOut)
	}

	dHidden := tensor.NewIn(ws, tokens, m.Hidden)
	if m.blocks == nil {
		tensor.MatMulTBInto(dHidden, dOut, m.W2.W) // dHidden = dOut·W2ᵀ (W2: [hidden,dim])
		if !m.W2.Frozen {
			tensor.MatMulTAInto(m.W2.Grad, m.hidden, dOut)
		}
	} else {
		sparse.FC2GradHidden(dHidden.Data, dOut.Data, tokens, m.rowMajorW2(m.W2.W), m.blocks, m.blk)
		if !m.W2.Frozen {
			sparse.FC2GradWeight(m.rowMajorW2(m.W2.Grad), m.hidden.Data, dOut.Data, tokens, m.blocks, m.blk)
		}
	}

	// Activation backward.
	switch m.Act {
	case ActReLU:
		tensor.MulInto(dHidden, m.mask)
	case ActGeLU:
		dh := dHidden.Data
		pre := m.preAct.Data
		dy := tensor.FloatsDirtyIn(ws, len(dh))
		copy(dy, dh)
		clear(dh)
		parallel.ForChunkedArg(len(dh), geluGradArgs{dh, dy, pre}, geluGradChunk)
	}

	if !m.B1.Frozen {
		accumulateColumnSum(m.B1.Grad.Data, dHidden)
	}

	dx := tensor.NewIn(ws, tokens, m.Dim)
	if m.blocks == nil {
		tensor.MatMulInto(dx, dHidden, m.W1.W) // dx = dHidden·W1(param) = dHidden·Wcᵀ
		if !m.W1.Frozen {
			tensor.MatMulTAInto(m.W1.Grad, dHidden, m.x)
		}
	} else {
		sparse.FC1GradInput(dx.Data, dHidden.Data, tokens, m.colMajorW1(m.W1.W), m.blocks, m.blk)
		if !m.W1.Frozen {
			sparse.FC1GradWeight(m.colMajorW1(m.W1.Grad), m.x.Data, dHidden.Data, tokens, m.blocks, m.blk)
		}
	}
	return dx
}

// ActivationMask exposes the last forward's ReLU mask [tokens, hidden] —
// the raw signal the exposer and predictor-training data collection read.
func (m *MLP) ActivationMask() *tensor.Tensor { return m.mask }

// HiddenActivations exposes the last forward's post-activation hidden
// matrix [tokens, hidden] — the magnitude signal the exposer's neuron
// importance filter ranks.
func (m *MLP) HiddenActivations() *tensor.Tensor { return m.hidden }

type geluGradArgs struct{ dh, dy, pre []float32 }

func geluGradChunk(a geluGradArgs, lo, hi int) { tensor.GeLUGradRange(a.dh, a.dy, a.pre, lo, hi) }

type biasBlockArgs struct {
	hidden, b []float32
	blocks    []int
	blk, h    int
}

func addBiasBlocksChunk(a biasBlockArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.hidden[i*a.h : (i+1)*a.h]
		for _, nb := range a.blocks {
			for c := nb * a.blk; c < (nb+1)*a.blk && c < a.h; c++ {
				row[c] += a.b[c]
			}
		}
	}
}

// addBiasBlocks adds b to hidden only on the listed neuron blocks.
func addBiasBlocks(hidden *tensor.Tensor, b []float32, blocks []int, blk int) {
	tokens, H := hidden.Dim(0), hidden.Dim(1)
	parallel.ForChunkedArg(tokens, biasBlockArgs{hidden.Data, b, blocks, blk, H}, addBiasBlocksChunk)
}
