package nn

import (
	"testing"

	"longexposure/internal/tensor"
)

// fixedPlanner is a DecodePlanner stub returning the same plan every step
// — the nn-level tests exercise the plan plumbing without depending on
// the predictor package's runtime estimators.
type fixedPlanner struct {
	plan  *DecodePlan
	began int
	steps int
}

func (f *fixedPlanner) BeginSequence([]int, *DecodeAdapter) { f.began++ }
func (f *fixedPlanner) PlanStep(int, int, *tensor.Arena) *DecodePlan {
	f.steps++
	return f.plan
}

// TestDecodePlanDenseEscape pins the escape hatch the density-1.0 quality
// gate is built on: a plan whose per-layer selections are nil (what the
// serving planner emits at full coverage) runs the literal dense code
// path — bit-identical tokens, planner threaded through every step.
func TestDecodePlanDenseEscape(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(700))
	trainSteps(m, 2)
	prompt := []int{1, 4, 2, 9}
	cfg := GenerateConfig{MaxTokens: 8, RNG: tensor.NewRNG(77)}
	want := m.GenerateCached(prompt, cfg, nil, nil, tensor.NewArena())

	p := &fixedPlanner{plan: &DecodePlan{Blk: 8, MLPDensity: 1, AttnDensity: 1}}
	cfg.RNG = tensor.NewRNG(77)
	got := m.GenerateCachedCfg(prompt, cfg, DecodeSession{WS: tensor.NewArena(), Planner: p})
	if p.began != 1 || p.steps != len(got)-1 {
		t.Fatalf("planner saw %d BeginSequence / %d PlanStep calls over %d tokens", p.began, p.steps, len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dense-escape plan diverged: got %v, want %v", got, want)
		}
	}
}

// TestDecodeAttentionSparseFullCoverage pins that a plan listing every
// visible attention block is bit-identical to the dense read: the compact
// gather visits the same positions in the same order, so selecting
// everything must change nothing.
func TestDecodeAttentionSparseFullCoverage(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(701))
	trainSteps(m, 2)
	prompt := []int{2, 7, 1, 3, 5, 6, 4, 8}
	cfg := GenerateConfig{MaxTokens: 6, RNG: tensor.NewRNG(78)}
	want := m.GenerateCached(prompt, cfg, nil, nil, tensor.NewArena())

	// MaxSeq 16 at blk 4 → blocks {0,1,2,3} cover every position the run
	// can reach; MLP selections stay nil (dense).
	attn := make([][]int, m.Cfg.Layers)
	for li := range attn {
		attn[li] = []int{0, 1, 2, 3}
	}
	p := &fixedPlanner{plan: &DecodePlan{Blk: 4, Attn: attn, MLPDensity: 1, AttnDensity: 1}}
	cfg.RNG = tensor.NewRNG(78)
	got := m.GenerateCachedCfg(prompt, cfg, DecodeSession{WS: tensor.NewArena(), Planner: p})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full-coverage sparse attention diverged: got %v, want %v", got, want)
		}
	}
}

// TestDecodeMLPSparseMatchesTrainingKernel pins the serial decode
// gather/scatter kernels to the training sparse path (MLP.Forward with
// the same block selection) bit for bit — the decode path must disagree
// with training only by being cheaper, never by computing different
// numbers.
func TestDecodeMLPSparseMatchesTrainingKernel(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(702))
	mlp := m.Blocks[0].MLP
	blk := 8 // Hidden 32 → blocks {0..3}
	rng := tensor.NewRNG(9)
	x := tensor.New(3, m.Cfg.Dim)
	rng.FillNormal(x, 1)

	for _, blocks := range [][]int{{0}, {1, 3}, {0, 1, 2, 3}} {
		want := mlp.Forward(x, blocks, blk, nil)
		got := decodeMLP(mlp, x, blocks, blk, nil)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("blocks %v: decode MLP[%d] = %v, training %v", blocks, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestDecodeSparseGuards pins the two misuse panics: MLP selections on a
// non-ReLU model, and an attention selection that misses every visible
// position.
func TestDecodeSparseGuards(t *testing.T) {
	gelu := tinyConfig()
	gelu.Act = ActGeLU
	gm := NewTransformer(gelu, tensor.NewRNG(703))
	mustPanic(t, "gelu sparse MLP", func() {
		plan := &DecodePlan{Blk: 8, MLP: [][]int{{0}, {0}}}
		cache := gm.NewKVCache()
		gm.DecodeStep(cache, []int{1, 2}, nil, nil) // prefill
		gm.DecodeStepCfg(cache, []int{3}, DecodeStepConfig{Plan: plan})
	})

	m := NewTransformer(tinyConfig(), tensor.NewRNG(704))
	mustPanic(t, "empty attention selection", func() {
		// Position 2 lives in block 0 at blk 4; selecting only block 3
		// leaves the query row with nothing visible.
		plan := &DecodePlan{Blk: 4, Attn: [][]int{{3}, {3}}}
		cache := m.NewKVCache()
		m.DecodeStep(cache, []int{1, 2}, nil, nil)
		m.DecodeStepCfg(cache, []int{3}, DecodeStepConfig{Plan: plan})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}
