package nn

import (
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// IgnoreIndex marks target positions excluded from the loss (padding and
// prompt tokens in instruction tuning).
const IgnoreIndex = -1

// CrossEntropy computes the mean softmax cross-entropy of logits
// [tokens, vocab] against integer targets, skipping IgnoreIndex positions,
// and returns the loss together with dLogits (already divided by the count
// of contributing positions). This is the fused loss kernel: probabilities
// are never materialized beyond the gradient buffer.
func CrossEntropy(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	tokens, vocab := logits.Dim(0), logits.Dim(1)
	if len(targets) != tokens {
		panic("nn: CrossEntropy targets length mismatch")
	}
	dLogits := tensor.New(tokens, vocab)

	count := 0
	for _, t := range targets {
		if t != IgnoreIndex {
			count++
		}
	}
	if count == 0 {
		return 0, dLogits
	}
	invCount := float32(1 / float64(count))

	losses := make([]float64, tokens)
	parallel.ForChunked(tokens, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t := targets[i]
			if t == IgnoreIndex {
				continue
			}
			row := logits.Data[i*vocab : (i+1)*vocab]
			grad := dLogits.Data[i*vocab : (i+1)*vocab]
			// Stable log-softmax.
			maxV := row[0]
			for _, v := range row[1:] {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(float64(v - maxV))
			}
			logSum := math.Log(sum)
			losses[i] = logSum - float64(row[t]-maxV)
			for j, v := range row {
				p := math.Exp(float64(v-maxV)) / sum
				grad[j] = float32(p) * invCount
			}
			grad[t] -= invCount
		}
	})

	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(count), dLogits
}

// Accuracy returns the fraction of non-ignored positions where the argmax
// of logits equals the target.
func Accuracy(logits *tensor.Tensor, targets []int) float64 {
	tokens := logits.Dim(0)
	correct, count := 0, 0
	for i := 0; i < tokens; i++ {
		if targets[i] == IgnoreIndex {
			continue
		}
		count++
		if tensor.ArgmaxRow(logits, i) == targets[i] {
			correct++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(correct) / float64(count)
}
