package nn

import (
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/tensor"
)

// IgnoreIndex marks target positions excluded from the loss (padding and
// prompt tokens in instruction tuning).
const IgnoreIndex = -1

// CrossEntropy computes the mean softmax cross-entropy of logits
// [tokens, vocab] against integer targets, skipping IgnoreIndex positions,
// and returns the loss together with dLogits (already divided by the count
// of contributing positions). This is the fused loss kernel: probabilities
// are never materialized beyond the gradient buffer.
func CrossEntropy(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	return CrossEntropyIn(nil, logits, targets)
}

// CrossEntropyIn is CrossEntropy with dLogits and the per-token loss
// scratch taken from the step workspace (plain allocation when ws is nil).
// The returned gradient is valid until the workspace's Release.
func CrossEntropyIn(ws *tensor.Arena, logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	tokens, vocab := logits.Dim(0), logits.Dim(1)
	if len(targets) != tokens {
		panic("nn: CrossEntropy targets length mismatch")
	}
	dLogits := tensor.NewIn(ws, tokens, vocab)

	count := 0
	for _, t := range targets {
		if t != IgnoreIndex {
			count++
		}
	}
	if count == 0 {
		return 0, dLogits
	}
	invCount := float32(1 / float64(count))

	losses := tensor.Float64sIn(ws, tokens)
	parallel.ForChunkedArg(tokens, ceArgs{
		logits: logits.Data, grad: dLogits.Data, losses: losses,
		targets: targets, vocab: vocab, invCount: invCount,
	}, crossEntropyChunk)

	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(count), dLogits
}

// ceArgs / crossEntropyChunk: static fused-loss body (allocation-free
// parallel fan-out, see parallel.ForChunkedArg).
type ceArgs struct {
	logits, grad []float32
	losses       []float64
	targets      []int
	vocab        int
	invCount     float32
}

func crossEntropyChunk(a ceArgs, lo, hi int) {
	vocab := a.vocab
	for i := lo; i < hi; i++ {
		t := a.targets[i]
		if t == IgnoreIndex {
			continue
		}
		row := a.logits[i*vocab : (i+1)*vocab]
		grad := a.grad[i*vocab : (i+1)*vocab]
		// Stable log-softmax.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxV))
		}
		logSum := math.Log(sum)
		a.losses[i] = logSum - float64(row[t]-maxV)
		for j, v := range row {
			p := math.Exp(float64(v-maxV)) / sum
			grad[j] = float32(p) * a.invCount
		}
		grad[t] -= a.invCount
	}
}

// Accuracy returns the fraction of non-ignored positions where the argmax
// of logits equals the target.
func Accuracy(logits *tensor.Tensor, targets []int) float64 {
	tokens := logits.Dim(0)
	correct, count := 0, 0
	for i := 0; i < tokens; i++ {
		if targets[i] == IgnoreIndex {
			continue
		}
		count++
		if tensor.ArgmaxRow(logits, i) == targets[i] {
			correct++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(correct) / float64(count)
}
