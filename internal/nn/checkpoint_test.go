package nn

import (
	"bytes"
	"strings"
	"testing"

	"longexposure/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	r := tensor.NewRNG(400)
	cfg := tinyConfig()
	m := NewTransformer(cfg, r)
	var buf bytes.Buffer
	if err := m.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh model with different weights; loading must restore function.
	m2 := NewTransformer(cfg, tensor.NewRNG(401))
	ids := [][]int{{1, 2, 3, 4}}
	before := m2.Forward(ids, nil, nil).Clone()
	if err := m2.Params().Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := m2.Forward(ids, nil, nil)
	orig := m.Forward(ids, nil, nil)
	if d := tensor.MaxAbsDiff(after, orig); d != 0 {
		t.Fatalf("restored model diverges: %v", d)
	}
	if d := tensor.MaxAbsDiff(before, after); d == 0 {
		t.Fatal("load was a no-op")
	}
}

func TestCheckpointBackboneIntoPEFTModel(t *testing.T) {
	r := tensor.NewRNG(402)
	cfg := tinyConfig()
	backbone := NewTransformer(cfg, r)
	var buf bytes.Buffer
	if err := backbone.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Extended model: LoRA params exist in the model but not the
	// checkpoint — loading must succeed and leave them untouched.
	ext := NewTransformer(cfg, tensor.NewRNG(403))
	ext.Blocks[0].Attn.Wq.AddLoRA("layer0.attn.q_proj", 2, 4, tensor.NewRNG(404))
	loraBefore := ext.Blocks[0].Attn.Wq.LoRAA.W.Clone()
	if err := ext.Params().Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(loraBefore, ext.Blocks[0].Attn.Wq.LoRAA.W); d != 0 {
		t.Fatal("load touched LoRA params missing from checkpoint")
	}
	if d := tensor.MaxAbsDiff(ext.TokEmb.Table.W, backbone.TokEmb.Table.W); d != 0 {
		t.Fatal("backbone weights not restored")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(405))
	if err := m.Params().Load(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := m.Params().Load(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	a := NewTransformer(tinyConfig(), tensor.NewRNG(406))
	var buf bytes.Buffer
	if err := a.Params().Save(&buf); err != nil {
		t.Fatal(err)
	}
	big := tinyConfig()
	big.Dim *= 2
	big.Hidden *= 2
	b := NewTransformer(big, tensor.NewRNG(407))
	if err := b.Params().Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	r := tensor.NewRNG(408)
	m := NewTransformer(tinyConfig(), r)
	a := m.Generate([]int{1, 2, 3}, GenerateConfig{MaxTokens: 5, StopToken: -1})
	b := m.Generate([]int{1, 2, 3}, GenerateConfig{MaxTokens: 5, StopToken: -1})
	if len(a) != 5 {
		t.Fatalf("generated %d tokens", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy decoding nondeterministic")
		}
	}
}

func TestGenerateStopsAtStopToken(t *testing.T) {
	r := tensor.NewRNG(409)
	m := NewTransformer(tinyConfig(), r)
	out := m.Generate([]int{1}, GenerateConfig{MaxTokens: 20})
	// Force stop on the first emitted positive token (StopToken <= 0 means
	// disabled, so token 0 cannot be a stop).
	stopAt := -1
	for i, tok := range out {
		if tok > 0 {
			stopAt = i
			break
		}
	}
	if stopAt < 0 {
		t.Skip("greedy decode emitted only token 0")
	}
	out2 := m.Generate([]int{1}, GenerateConfig{MaxTokens: 20, StopToken: out[stopAt]})
	if len(out2) != stopAt+1 || out2[stopAt] != out[stopAt] {
		t.Fatalf("stop token ignored: %v (want stop after %d tokens)", out2, stopAt+1)
	}
}

func TestGenerateZeroValueConfigDoesNotStopOnToken0(t *testing.T) {
	// The footgun this pins: StopToken's zero value used to mean "stop on
	// token 0", so a default GenerateConfig silently truncated the first
	// time the argmax landed on the padding token. Force token 0 to win
	// every step and check a zero-value config decodes to MaxTokens.
	cfg := tinyConfig()
	cfg.MaxSeq = 32 // room for the prompt plus the full MaxTokens default
	m := NewTransformer(cfg, tensor.NewRNG(413))
	for _, p := range m.Params() {
		if p.Name == "lm_head.bias" {
			p.W.Data[0] = 100 // token 0 dominates every logit row
		}
	}
	out := m.Generate([]int{1}, GenerateConfig{})
	if len(out) != 16 {
		t.Fatalf("zero-value config emitted %d tokens, want the MaxTokens default 16", len(out))
	}
	for _, tok := range out {
		if tok != 0 {
			t.Fatalf("expected forced token 0, got %v", out)
		}
	}
}

func TestGenerateRespectsMaxSeq(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSeq = 6
	m := NewTransformer(cfg, tensor.NewRNG(410))
	out := m.Generate([]int{1, 2, 3}, GenerateConfig{MaxTokens: 50, StopToken: -1})
	if len(out) > 3 { // 3 prompt + 3 generated = 6 = MaxSeq
		t.Fatalf("generated %d tokens past MaxSeq", len(out))
	}
}

func TestGenerateLearnedPattern(t *testing.T) {
	// Train a model to continue the repeating token pattern and check
	// greedy decoding reproduces it.
	r := tensor.NewRNG(411)
	cfg := Config{Name: "gen", Vocab: 8, Dim: 16, Layers: 1, Heads: 2, Hidden: 32, MaxSeq: 16, Act: ActReLU}
	m := NewTransformer(cfg, r)
	ids := [][]int{{2, 3, 2, 3, 2, 3, 2, 3}}
	targets := [][]int{{3, 2, 3, 2, 3, 2, 3, 2}}
	flat := m.FlattenTargets(targets)
	ps := m.Params()
	for i := 0; i < 120; i++ {
		logits := m.Forward(ids, nil, nil)
		_, dLogits := CrossEntropy(logits, flat)
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps {
			tensor.AddScaledInto(p.W, p.Grad, -0.3)
		}
	}
	out := m.Generate([]int{2, 3, 2, 3}, GenerateConfig{MaxTokens: 4, StopToken: -1})
	want := []int{2, 3, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("generated %v, want %v", out, want)
		}
	}
}

func TestTemperatureSamplingVariesAndStaysInVocab(t *testing.T) {
	r := tensor.NewRNG(412)
	m := NewTransformer(tinyConfig(), r)
	seen := map[int]bool{}
	for trial := 0; trial < 8; trial++ {
		out := m.Generate([]int{1, 2}, GenerateConfig{
			MaxTokens: 3, Temperature: 2.0, StopToken: -1, RNG: tensor.NewRNG(uint64(500 + trial)),
		})
		for _, tok := range out {
			if tok < 0 || tok >= m.Cfg.Vocab {
				t.Fatalf("token %d outside vocab", tok)
			}
			seen[tok] = true
		}
	}
	if len(seen) < 2 {
		t.Fatal("high-temperature sampling produced a single token")
	}
}
