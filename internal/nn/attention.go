package nn

import (
	"fmt"
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// MultiHeadAttention implements causal self-attention with two execution
// paths sharing the projection layers:
//
//   - dense: full causal scores per head (the PEFT-library baseline), and
//   - sparse: per-head block-sparse layouts from the exposer/predictor,
//     executed with the SDD/DSD dynamic-aware operators. Head-specific masks
//     are the paper's §IV design — each head runs its own layout, and work
//     is balanced at block granularity.
//
// The backward pass mirrors the forward structure, so the computational
// savings of a sparse layout apply to gradient computation too (§II-D).
type MultiHeadAttention struct {
	Dim, Heads, HeadDim int
	Wq, Wk, Wv, Wo      *Linear

	// Forward cache.
	batch, seq  int
	qh, kh, vh  [][]float32 // per (b,h): [seq*headDim]
	probsDense  []*tensor.Tensor
	probsSparse []*sparse.BlockSparse
	layouts     []*sparse.Layout // per head; nil → dense path
	blk         int
}

// NewMultiHeadAttention constructs the four projection layers.
func NewMultiHeadAttention(name string, dim, heads int, rng *tensor.RNG) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim:     dim,
		Heads:   heads,
		HeadDim: dim / heads,
		Wq:      NewLinear(name+".q_proj", dim, dim, rng),
		Wk:      NewLinear(name+".k_proj", dim, dim, rng),
		Wv:      NewLinear(name+".v_proj", dim, dim, rng),
		Wo:      NewLinear(name+".out_proj", dim, dim, rng),
	}
}

// Params returns all projection parameters.
func (a *MultiHeadAttention) Params() ParamSet {
	var ps ParamSet
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// splitHeads copies a [batch*seq, dim] tensor into per-(batch, head)
// contiguous [seq, headDim] buffers — the permute step of multi-head
// attention.
func (a *MultiHeadAttention) splitHeads(x *tensor.Tensor) [][]float32 {
	b, s, h, hd := a.batch, a.seq, a.Heads, a.HeadDim
	out := make([][]float32, b*h)
	parallel.For(b*h, func(bh int) {
		bi, hi := bh/h, bh%h
		buf := make([]float32, s*hd)
		for si := 0; si < s; si++ {
			src := x.Data[(bi*s+si)*a.Dim+hi*hd : (bi*s+si)*a.Dim+(hi+1)*hd]
			copy(buf[si*hd:(si+1)*hd], src)
		}
		out[bh] = buf
	})
	return out
}

// mergeHeads inverts splitHeads.
func (a *MultiHeadAttention) mergeHeads(heads [][]float32) *tensor.Tensor {
	b, s, h, hd := a.batch, a.seq, a.Heads, a.HeadDim
	out := tensor.New(b*s, a.Dim)
	parallel.For(b*h, func(bh int) {
		bi, hi := bh/h, bh%h
		buf := heads[bh]
		for si := 0; si < s; si++ {
			dst := out.Data[(bi*s+si)*a.Dim+hi*hd : (bi*s+si)*a.Dim+(hi+1)*hd]
			copy(dst, buf[si*hd:(si+1)*hd])
		}
	})
	return out
}

// Forward runs attention over x: [batch*seq, dim]. layouts selects the
// execution path: nil runs dense causal attention; otherwise layouts[h] is
// head h's block layout (blk is the block size in tokens, and seq must be
// a multiple of blk).
func (a *MultiHeadAttention) Forward(x *tensor.Tensor, batch, seq int, layouts []*sparse.Layout, blk int) *tensor.Tensor {
	a.batch, a.seq = batch, seq
	a.layouts, a.blk = layouts, blk
	if layouts != nil {
		if len(layouts) != a.Heads {
			panic(fmt.Sprintf("nn: %d layouts for %d heads", len(layouts), a.Heads))
		}
		if seq%blk != 0 {
			panic(fmt.Sprintf("nn: seq %d not a multiple of block size %d", seq, blk))
		}
	}

	q := a.Wq.Forward(x)
	k := a.Wk.Forward(x)
	v := a.Wv.Forward(x)
	a.qh, a.kh, a.vh = a.splitHeads(q), a.splitHeads(k), a.splitHeads(v)

	bh := batch * a.Heads
	ctx := make([][]float32, bh)
	scale := float32(1 / math.Sqrt(float64(a.HeadDim)))

	if layouts == nil {
		a.probsDense = make([]*tensor.Tensor, bh)
		a.probsSparse = nil
		parallel.For(bh, func(i int) {
			out := make([]float32, seq*a.HeadDim)
			a.probsDense[i] = sparse.DenseCausalAttention(out, a.qh[i], a.kh[i], a.vh[i], seq, a.HeadDim, scale)
			ctx[i] = out
		})
	} else {
		a.probsSparse = make([]*sparse.BlockSparse, bh)
		a.probsDense = nil
		parallel.For(bh, func(i int) {
			h := i % a.Heads
			sp := sparse.NewBlockSparse(layouts[h], blk)
			sparse.SDD(sp, a.qh[i], a.kh[i], a.HeadDim)
			sparse.CausalSoftmax(sp, scale)
			out := make([]float32, seq*a.HeadDim)
			sparse.DSD(out, sp, a.vh[i], a.HeadDim)
			a.probsSparse[i] = sp
			ctx[i] = out
		})
	}

	return a.Wo.Forward(a.mergeHeads(ctx))
}

// DenseProbs exposes the per-(batch,head) probability matrices of the last
// dense forward — the ground-truth signal the exposer derives head-specific
// masks from and the predictor trains against. Index is batch*Heads + head.
// Nil after a sparse forward.
func (a *MultiHeadAttention) DenseProbs() []*tensor.Tensor { return a.probsDense }

// Backward propagates dOut: [batch*seq, dim] and returns dx. The sparse
// path computes gradients only on active blocks.
func (a *MultiHeadAttention) Backward(dOut *tensor.Tensor) *tensor.Tensor {
	seq, hd := a.seq, a.HeadDim
	scale := float32(1 / math.Sqrt(float64(hd)))

	dCtx := a.Wo.Backward(dOut)
	dCtxH := a.splitHeads(dCtx)

	bh := a.batch * a.Heads
	dqh := make([][]float32, bh)
	dkh := make([][]float32, bh)
	dvh := make([][]float32, bh)

	if a.layouts == nil {
		parallel.For(bh, func(i int) {
			p := a.probsDense[i] // [seq, seq]
			// dProb = dCtx·Vᵀ.
			dProb := make([]float32, seq*seq)
			tensor.GemmTBRange(dProb, dCtxH[i], a.vh[i], hd, seq, 0, seq)
			// Softmax backward row-wise, then score scale.
			dScore := make([]float32, seq*seq)
			for r := 0; r < seq; r++ {
				tensor.SoftmaxBackwardRow(dScore[r*seq:(r+1)*seq], p.Row(r), dProb[r*seq:(r+1)*seq])
			}
			for j := range dScore {
				dScore[j] *= scale
			}
			dq := make([]float32, seq*hd)
			dk := make([]float32, seq*hd)
			dv := make([]float32, seq*hd)
			tensor.GemmRange(dq, dScore, a.kh[i], seq, hd, 0, seq)        // dQ = dS·K
			tensor.GemmTARange(dk, dScore, a.qh[i], seq, seq, hd, 0, seq) // dK = dSᵀ·Q
			tensor.GemmTARange(dv, p.Data, dCtxH[i], seq, seq, hd, 0, seq)
			dqh[i], dkh[i], dvh[i] = dq, dk, dv
		})
	} else {
		parallel.For(bh, func(i int) {
			p := a.probsSparse[i]
			// dProb restricted to active blocks (SDD).
			dProb := sparse.NewBlockSparse(p.L, p.Blk)
			sparse.SDD(dProb, dCtxH[i], a.vh[i], hd)
			sparse.SoftmaxBackward(dProb, p, scale) // dProb now holds dScore
			dq := make([]float32, seq*hd)
			dk := make([]float32, seq*hd)
			dv := make([]float32, seq*hd)
			sparse.DSD(dq, dProb, a.kh[i], hd)
			sparse.DSDT(dk, dProb, a.qh[i], hd)
			sparse.DSDT(dv, p, dCtxH[i], hd)
			dqh[i], dkh[i], dvh[i] = dq, dk, dv
		})
	}

	dq := a.mergeHeads(dqh)
	dk := a.mergeHeads(dkh)
	dv := a.mergeHeads(dvh)
	dx := a.Wq.Backward(dq)
	tensor.AddInto(dx, a.Wk.Backward(dk))
	tensor.AddInto(dx, a.Wv.Backward(dv))
	return dx
}
