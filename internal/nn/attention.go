package nn

import (
	"fmt"
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// MultiHeadAttention implements causal self-attention with two execution
// paths sharing the projection layers:
//
//   - dense: full causal scores per head (the PEFT-library baseline), and
//   - sparse: per-head block-sparse layouts from the exposer/predictor,
//     executed with the SDD/DSD dynamic-aware operators. Head-specific masks
//     are the paper's §IV design — each head runs its own layout, and work
//     is balanced at block granularity.
//
// The backward pass mirrors the forward structure, so the computational
// savings of a sparse layout apply to gradient computation too (§II-D).
//
// Saved-for-backward attention state does not live on the layer struct:
// each invocation's state is keyed by the workspace it ran with (the
// layer's own fallback state serves nil-workspace calls), removing the
// probsDense/probsSparse layer-struct sharing hazard. Note this makes the
// *attention state* invocation-scoped, not the whole layer: the Linear
// projections still cache their inputs on their structs, so the supported
// unit of concurrency remains one model replica per worker (as
// train.DataParallel arranges and the -race replica tests pin) — not one
// layer shared by concurrent steps.
type MultiHeadAttention struct {
	Dim, Heads, HeadDim int
	Wq, Wk, Wv, Wo      *Linear

	// def serves nil-workspace invocations (single-owner usage).
	def attnState
}

// attnState is one invocation's forward cache plus backward scratch. The
// [][]float32 headers and backing structs persist across steps (they live
// on the arena's per-layer state or on the layer's def), while the float
// buffers they point at are re-Got from the workspace every step.
type attnState struct {
	batch, seq int
	blk        int
	layouts    []*sparse.Layout

	qh, kh, vh  [][]float32 // per (b,h): [seq*headDim]
	ctx         [][]float32
	probsDense  []*tensor.Tensor
	probsSparse []*sparse.BlockSparse
	spBacking   []sparse.BlockSparse // storage behind probsSparse
	dpBacking   []sparse.BlockSparse // storage behind backward's dProb
	dpViews     []*sparse.BlockSparse

	// Backward scratch headers (buffers are step-lived).
	dCtxH, dqh, dkh, dvh [][]float32
	dProbH, dScoreH      [][]float32
}

// state resolves the invocation state for a workspace: the arena-held
// per-layer state when ws is non-nil, the layer's own fallback otherwise.
func (a *MultiHeadAttention) state(ws *tensor.Arena) *attnState {
	if ws == nil {
		return &a.def
	}
	return ws.StateFor(a, func() any { return new(attnState) }).(*attnState)
}

// NewMultiHeadAttention constructs the four projection layers.
func NewMultiHeadAttention(name string, dim, heads int, rng *tensor.RNG) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by heads %d", dim, heads))
	}
	return &MultiHeadAttention{
		Dim:     dim,
		Heads:   heads,
		HeadDim: dim / heads,
		Wq:      NewLinear(name+".q_proj", dim, dim, rng),
		Wk:      NewLinear(name+".k_proj", dim, dim, rng),
		Wv:      NewLinear(name+".v_proj", dim, dim, rng),
		Wo:      NewLinear(name+".out_proj", dim, dim, rng),
	}
}

// Params returns all projection parameters.
func (a *MultiHeadAttention) Params() ParamSet {
	var ps ParamSet
	for _, l := range []*Linear{a.Wq, a.Wk, a.Wv, a.Wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// headBuffers returns bh buffers of n floats reusing the header slice hdr.
// With a workspace the buffers are carved from one slab Got on the calling
// goroutine (so parallel fills never touch the arena); without one each
// buffer is a fresh make, exactly like the seed code. dirty skips zeroing
// on the arena path — only for buffers the caller fully overwrites.
func headBuffers(hdr [][]float32, bh, n int, ws *tensor.Arena, dirty bool) [][]float32 {
	if cap(hdr) < bh {
		hdr = make([][]float32, 0, bh)
	}
	hdr = hdr[:0]
	if ws == nil {
		for i := 0; i < bh; i++ {
			hdr = append(hdr, make([]float32, n))
		}
		return hdr
	}
	var slab []float32
	if dirty {
		slab = ws.FloatsDirty(bh * n)
	} else {
		slab = ws.Floats(bh * n)
	}
	for i := 0; i < bh; i++ {
		hdr = append(hdr, slab[i*n:(i+1)*n])
	}
	return hdr
}

// splitHeads copies a [batch*seq, dim] tensor into per-(batch, head)
// contiguous [seq, headDim] buffers — the permute step of multi-head
// attention. hdr is the reused header slice of the destination.
func (a *MultiHeadAttention) splitHeads(hdr [][]float32, x *tensor.Tensor, batch, seq int, ws *tensor.Arena) [][]float32 {
	h, hd := a.Heads, a.HeadDim
	out := headBuffers(hdr, batch*h, seq*hd, ws, true)
	parallel.ForArg(batch*h, permuteArgs{out, x.Data, a.Dim, hd, h, seq}, splitHeadsItem)
	return out
}

// mergeHeads inverts splitHeads.
func (a *MultiHeadAttention) mergeHeads(heads [][]float32, batch, seq int, ws *tensor.Arena) *tensor.Tensor {
	h, hd := a.Heads, a.HeadDim
	out := tensor.NewIn(ws, batch*seq, a.Dim)
	parallel.ForArg(batch*h, permuteArgs{heads, out.Data, a.Dim, hd, h, seq}, mergeHeadsItem)
	return out
}

// Forward runs attention over x: [batch*seq, dim]. layouts selects the
// execution path: nil runs dense causal attention; otherwise layouts[h] is
// head h's block layout (blk is the block size in tokens, and seq must be
// a multiple of blk). ws is the step workspace (nil allocates).
func (a *MultiHeadAttention) Forward(x *tensor.Tensor, batch, seq int, layouts []*sparse.Layout, blk int, ws *tensor.Arena) *tensor.Tensor {
	st := a.state(ws)
	st.batch, st.seq = batch, seq
	st.layouts, st.blk = layouts, blk
	if layouts != nil {
		if len(layouts) != a.Heads {
			panic(fmt.Sprintf("nn: %d layouts for %d heads", len(layouts), a.Heads))
		}
		if seq%blk != 0 {
			panic(fmt.Sprintf("nn: seq %d not a multiple of block size %d", seq, blk))
		}
	}

	q := a.Wq.Forward(x, ws)
	k := a.Wk.Forward(x, ws)
	v := a.Wv.Forward(x, ws)
	st.qh = a.splitHeads(st.qh, q, batch, seq, ws)
	st.kh = a.splitHeads(st.kh, k, batch, seq, ws)
	st.vh = a.splitHeads(st.vh, v, batch, seq, ws)

	bh := batch * a.Heads
	st.ctx = headBuffers(st.ctx, bh, seq*a.HeadDim, ws, false)
	ctx := st.ctx
	scale := float32(1 / math.Sqrt(float64(a.HeadDim)))

	if layouts == nil {
		if cap(st.probsDense) < bh {
			st.probsDense = make([]*tensor.Tensor, 0, bh)
		}
		st.probsDense = st.probsDense[:0]
		for i := 0; i < bh; i++ {
			st.probsDense = append(st.probsDense, tensor.NewIn(ws, seq, seq))
		}
		st.probsSparse = nil
		parallel.ForArg(bh, denseFwdArgs{st.probsDense, ctx, st.qh, st.kh, st.vh, seq, a.HeadDim, scale}, denseFwdItem)
	} else {
		st.probsSparse = resetBlockSparse(&st.spBacking, st.probsSparse, bh, a.Heads, layouts, blk, ws)
		st.probsDense = nil
		parallel.ForArg(bh, sparseFwdArgs{st.probsSparse, ctx, st.qh, st.kh, st.vh, a.HeadDim, scale}, sparseFwdItem)
	}

	return a.Wo.Forward(a.mergeHeads(ctx, batch, seq, ws), ws)
}

// resetBlockSparse rebuilds the per-(batch, head) block-sparse views over a
// persistent backing array, taking each view's storage from the workspace.
// Arena Gets run serially here, on the owning goroutine, before any
// parallel fill.
func resetBlockSparse(backing *[]sparse.BlockSparse, views []*sparse.BlockSparse, bh, heads int, layouts []*sparse.Layout, blk int, ws *tensor.Arena) []*sparse.BlockSparse {
	if cap(*backing) < bh {
		*backing = make([]sparse.BlockSparse, bh)
	}
	*backing = (*backing)[:bh]
	if cap(views) < bh {
		views = make([]*sparse.BlockSparse, 0, bh)
	}
	views = views[:0]
	for i := 0; i < bh; i++ {
		(*backing)[i].ResetIn(ws, layouts[i%heads], blk)
		views = append(views, &(*backing)[i])
	}
	return views
}

// DenseProbs exposes the per-(batch,head) probability matrices of the last
// dense forward run with the given workspace (nil for workspace-less
// forwards) — the ground-truth signal the exposer derives head-specific
// masks from and the predictor trains against. Index is batch*Heads + head.
// Nil after a sparse forward.
func (a *MultiHeadAttention) DenseProbs(ws *tensor.Arena) []*tensor.Tensor {
	return a.state(ws).probsDense
}

// Backward propagates dOut: [batch*seq, dim] and returns dx. The sparse
// path computes gradients only on active blocks. ws must be the workspace
// the matching Forward ran with.
func (a *MultiHeadAttention) Backward(dOut *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	st := a.state(ws)
	batch, seq, hd := st.batch, st.seq, a.HeadDim
	scale := float32(1 / math.Sqrt(float64(hd)))

	dCtx := a.Wo.Backward(dOut, ws)
	st.dCtxH = a.splitHeads(st.dCtxH, dCtx, batch, seq, ws)
	dCtxH := st.dCtxH

	bh := batch * a.Heads
	st.dqh = headBuffers(st.dqh, bh, seq*hd, ws, false)
	st.dkh = headBuffers(st.dkh, bh, seq*hd, ws, false)
	st.dvh = headBuffers(st.dvh, bh, seq*hd, ws, false)
	dqh, dkh, dvh := st.dqh, st.dkh, st.dvh

	if st.layouts == nil {
		st.dProbH = headBuffers(st.dProbH, bh, seq*seq, ws, false)
		st.dScoreH = headBuffers(st.dScoreH, bh, seq*seq, ws, false)
		parallel.ForArg(bh, denseBwdArgs{
			probs: st.probsDense, dProbH: st.dProbH, dScoreH: st.dScoreH,
			dCtxH: dCtxH, qh: st.qh, kh: st.kh, vh: st.vh,
			dqh: dqh, dkh: dkh, dvh: dvh, seq: seq, hd: hd, scale: scale,
		}, denseBwdItem)
	} else {
		st.dpViews = resetBlockSparse(&st.dpBacking, st.dpViews, bh, a.Heads, st.layouts, st.blk, ws)
		parallel.ForArg(bh, sparseBwdArgs{
			probs: st.probsSparse, dProbs: st.dpViews,
			dCtxH: dCtxH, qh: st.qh, kh: st.kh, vh: st.vh,
			dqh: dqh, dkh: dkh, dvh: dvh, hd: hd, scale: scale,
		}, sparseBwdItem)
	}

	dq := a.mergeHeads(dqh, batch, seq, ws)
	dk := a.mergeHeads(dkh, batch, seq, ws)
	dv := a.mergeHeads(dvh, batch, seq, ws)
	dx := a.Wq.Backward(dq, ws)
	tensor.AddInto(dx, a.Wk.Backward(dk, ws))
	tensor.AddInto(dx, a.Wv.Backward(dv, ws))
	return dx
}

// The static parallel bodies below carry their state in small arg structs
// so the per-(batch, head) fan-outs allocate nothing per call (see
// parallel.ForArg). Their loops are verbatim the former closures.

// permuteArgs serves both split (heads = dst) and merge (heads = src).
type permuteArgs struct {
	heads   [][]float32
	flat    []float32
	dim, hd int
	h, seq  int
}

func splitHeadsItem(a permuteArgs, bh int) {
	bi, hi := bh/a.h, bh%a.h
	buf := a.heads[bh]
	for si := 0; si < a.seq; si++ {
		src := a.flat[(bi*a.seq+si)*a.dim+hi*a.hd : (bi*a.seq+si)*a.dim+(hi+1)*a.hd]
		copy(buf[si*a.hd:(si+1)*a.hd], src)
	}
}

func mergeHeadsItem(a permuteArgs, bh int) {
	bi, hi := bh/a.h, bh%a.h
	buf := a.heads[bh]
	for si := 0; si < a.seq; si++ {
		dst := a.flat[(bi*a.seq+si)*a.dim+hi*a.hd : (bi*a.seq+si)*a.dim+(hi+1)*a.hd]
		copy(dst, buf[si*a.hd:(si+1)*a.hd])
	}
}

type denseFwdArgs struct {
	probs      []*tensor.Tensor
	ctx        [][]float32
	qh, kh, vh [][]float32
	seq, hd    int
	scale      float32
}

func denseFwdItem(a denseFwdArgs, i int) {
	sparse.DenseCausalAttentionInto(a.probs[i], a.ctx[i], a.qh[i], a.kh[i], a.vh[i], a.seq, a.hd, a.scale)
}

type sparseFwdArgs struct {
	probs      []*sparse.BlockSparse
	ctx        [][]float32
	qh, kh, vh [][]float32
	hd         int
	scale      float32
}

func sparseFwdItem(a sparseFwdArgs, i int) {
	sp := a.probs[i]
	sparse.SDD(sp, a.qh[i], a.kh[i], a.hd)
	sparse.CausalSoftmax(sp, a.scale)
	sparse.DSD(a.ctx[i], sp, a.vh[i], a.hd)
}

type denseBwdArgs struct {
	probs           []*tensor.Tensor
	dProbH, dScoreH [][]float32
	dCtxH           [][]float32
	qh, kh, vh      [][]float32
	dqh, dkh, dvh   [][]float32
	seq, hd         int
	scale           float32
}

func denseBwdItem(a denseBwdArgs, i int) {
	seq, hd := a.seq, a.hd
	p := a.probs[i] // [seq, seq]
	// dProb = dCtx·Vᵀ.
	dProb := a.dProbH[i]
	tensor.GemmTBRange(dProb, a.dCtxH[i], a.vh[i], hd, seq, 0, seq)
	// Softmax backward row-wise, then score scale.
	dScore := a.dScoreH[i]
	for r := 0; r < seq; r++ {
		tensor.SoftmaxBackwardRow(dScore[r*seq:(r+1)*seq], p.Row(r), dProb[r*seq:(r+1)*seq])
	}
	for j := range dScore {
		dScore[j] *= a.scale
	}
	tensor.GemmRange(a.dqh[i], dScore, a.kh[i], seq, hd, 0, seq)        // dQ = dS·K
	tensor.GemmTARange(a.dkh[i], dScore, a.qh[i], seq, seq, hd, 0, seq) // dK = dSᵀ·Q
	tensor.GemmTARange(a.dvh[i], p.Data, a.dCtxH[i], seq, seq, hd, 0, seq)
}

type sparseBwdArgs struct {
	probs, dProbs []*sparse.BlockSparse
	dCtxH         [][]float32
	qh, kh, vh    [][]float32
	dqh, dkh, dvh [][]float32
	hd            int
	scale         float32
}

func sparseBwdItem(a sparseBwdArgs, i int) {
	p := a.probs[i]
	// dProb restricted to active blocks (SDD).
	dProb := a.dProbs[i]
	sparse.SDD(dProb, a.dCtxH[i], a.vh[i], a.hd)
	sparse.SoftmaxBackward(dProb, p, a.scale) // dProb now holds dScore
	sparse.DSD(a.dqh[i], dProb, a.kh[i], a.hd)
	sparse.DSDT(a.dkh[i], dProb, a.qh[i], a.hd)
	sparse.DSDT(a.dvh[i], p, a.dCtxH[i], a.hd)
}
