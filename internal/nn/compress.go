package nn

import (
	"fmt"

	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// Frozen-base weight compression. The paper stores parameters in fp16 and
// computes in fp32 (§VII-A); serving a frozen base additionally admits int8
// and N:M structured storage because precision becomes a compile-time
// property of a read-only artifact — the registry selects it at publish
// time, and every PEFT delta stays f32 on top. Compress rewrites the big
// matrices in place and FREES their f32 storage (weights and gradient
// buffers), so a compressed model is serving-only: Backward, the exposer,
// and the contextual-sparsity planner all need the f32 weights and refuse or
// must be skipped.

// Precision names accepted by Compress and the registry's base descriptor.
const (
	// PrecisionF32 (or empty) is the uncompressed default.
	PrecisionF32 = "f32"
	// PrecisionF16 stores every large matrix (attention projections, MLP,
	// LM head) as IEEE binary16: half the weight bytes, ≤2⁻¹¹ relative
	// error per weight.
	PrecisionF16 = "f16"
	// PrecisionI8 stores the same matrices as symmetric per-channel int8:
	// a quarter of the weight bytes, ≤scale/2 absolute error per weight.
	PrecisionI8 = "int8"
	// PrecisionNM24 prunes the MLP matrices to 2:4 block-structured
	// sparsity (f32 values, halved multiply-adds, 0.625x weight bytes);
	// attention and head stay f32.
	PrecisionNM24 = "nm24"
)

// ValidPrecision reports whether p names a supported storage precision.
func ValidPrecision(p string) bool {
	switch p {
	case "", PrecisionF32, PrecisionF16, PrecisionI8, PrecisionNM24:
		return true
	}
	return false
}

// CompressedPrecision reports whether p names a format that leaves f32 —
// i.e. whether a base built at p is serving-only.
func CompressedPrecision(p string) bool {
	return p == PrecisionF16 || p == PrecisionI8 || p == PrecisionNM24
}

// Compress converts the model's large frozen matrices to the named storage
// precision and frees their f32 weight and gradient buffers. Embeddings,
// LayerNorms, biases and any attached PEFT modules stay f32 (they are small
// and, for PEFT, trainable). The model must not carry LoRA branches on the
// layers being packed — compression is a base-artifact operation, applied
// before adapters attach.
func (m *Transformer) Compress(precision string) error {
	switch precision {
	case "", PrecisionF32:
		return nil
	case PrecisionF16, PrecisionI8:
		for _, b := range m.Blocks {
			for _, l := range []*Linear{b.Attn.Wq, b.Attn.Wk, b.Attn.Wv, b.Attn.Wo} {
				if err := packLinear(l, precision); err != nil {
					return err
				}
			}
			mlp := b.MLP
			if precision == PrecisionF16 {
				mlp.PackedW1 = tensor.PackF16(mlp.W1.W)
				mlp.PackedW2 = tensor.PackF16(mlp.W2.W)
			} else {
				// W1 runs the TB kernel (rows are output neurons), W2 the
				// A·B kernel (columns are) — scales follow the kernel.
				mlp.PackedW1 = tensor.PackInt8(mlp.W1.W, tensor.ScalePerRow)
				mlp.PackedW2 = tensor.PackInt8(mlp.W2.W, tensor.ScalePerCol)
			}
			freeParam(mlp.W1)
			freeParam(mlp.W2)
		}
		return packLinear(m.Head, precision)
	case PrecisionNM24:
		if m.Cfg.Dim%4 != 0 {
			return fmt.Errorf("nn: %s needs dim %% 4 == 0, got %d", precision, m.Cfg.Dim)
		}
		for _, b := range m.Blocks {
			mlp := b.MLP
			mlp.NMW1 = sparse.PackNM(mlp.W1.W.Data, mlp.Hidden, mlp.Dim, 2, 4)
			mlp.NMW2 = sparse.PackNM(mlp.W2.W.Data, mlp.Hidden, mlp.Dim, 2, 4)
			freeParam(mlp.W1)
			freeParam(mlp.W2)
		}
		return nil
	}
	return fmt.Errorf("nn: unknown precision %q", precision)
}

func packLinear(l *Linear, precision string) error {
	if l.HasLoRA() {
		return fmt.Errorf("nn: cannot compress %s: LoRA branch attached", l.W.Name)
	}
	if precision == PrecisionF16 {
		l.Packed = tensor.PackF16(l.W.W)
	} else {
		l.Packed = tensor.PackInt8(l.W.W, tensor.ScalePerCol)
	}
	freeParam(l.W)
	return nil
}

// freeParam drops a parameter's f32 weight and gradient storage (shape
// metadata survives) and freezes it. Any dense kernel that still reads the
// weight will fail fast on the nil slice rather than compute with zeros.
func freeParam(p *Parameter) {
	p.W.Data = nil
	p.Grad.Data = nil
	p.Frozen = true
}

// WeightBytes reports the resident bytes of every weight the model serves
// with — f32 parameters (embeddings, norms, biases, uncompressed matrices,
// PEFT modules) plus packed and N:M storage. The serve gateway exports this
// per base as lexp_base_weight_bytes.
func (m *Transformer) WeightBytes() int64 {
	var total int64
	for _, p := range m.Params() {
		total += 4 * int64(p.W.Len())
	}
	for _, b := range m.Blocks {
		for _, l := range []*Linear{b.Attn.Wq, b.Attn.Wk, b.Attn.Wv, b.Attn.Wo} {
			if l.Packed != nil {
				total += l.Packed.Bytes()
			}
		}
		mlp := b.MLP
		if mlp.PackedW1 != nil {
			total += mlp.PackedW1.Bytes()
		}
		if mlp.PackedW2 != nil {
			total += mlp.PackedW2.Bytes()
		}
		if mlp.NMW1 != nil {
			total += mlp.NMW1.Bytes()
		}
		if mlp.NMW2 != nil {
			total += mlp.NMW2.Bytes()
		}
	}
	if m.Head.Packed != nil {
		total += m.Head.Packed.Bytes()
	}
	return total
}

// Compressed reports whether any layer left f32 storage.
func (m *Transformer) Compressed() bool {
	for _, b := range m.Blocks {
		if b.Attn.Wq.Packed != nil || b.MLP.compressed() {
			return true
		}
	}
	return m.Head.Packed != nil
}
