package nn

import (
	"math"
	"testing"

	"longexposure/internal/tensor"
)

// checkGrad compares an analytic gradient against central differences for a
// sample of indices of w. loss must recompute the full forward pass from
// scratch on every call.
func checkGrad(t *testing.T, name string, loss func() float64, w, grad *tensor.Tensor, indices []int) {
	t.Helper()
	const eps = 1e-2
	for _, i := range indices {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		fp := loss()
		w.Data[i] = orig - eps
		fm := loss()
		w.Data[i] = orig
		num := (fp - fm) / (2 * eps)
		ana := float64(grad.Data[i])
		diff := math.Abs(num - ana)
		scale := math.Max(math.Abs(num), math.Abs(ana))
		if diff > 5e-2*scale+2e-3 {
			t.Errorf("%s[%d]: numeric %.6f vs analytic %.6f", name, i, num, ana)
		}
	}
}

func sampleIndices(r *tensor.RNG, n, count int) []int {
	if count >= n {
		count = n
	}
	idx := make([]int, count)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	return idx
}

func cloneGrads(ps ParamSet) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Grad.Clone()
	}
	return out
}

// checkWorkspaceParity is the workspace-vs-nil regression harness every
// gradcheck test runs through: pass performs one forward + ZeroGrads +
// backward with the given workspace and returns the output and the input
// gradient. The nil pass establishes the reference; two arena passes (the
// second exercising recycled buffers) must reproduce output, input
// gradient, and every parameter gradient bit-for-bit — the refactor's
// "results stay bit-identical to the allocating path" contract.
func checkWorkspaceParity(t *testing.T, params ParamSet, pass func(ws *tensor.Arena) (y, dx *tensor.Tensor)) (yRef, dxRef *tensor.Tensor) {
	t.Helper()
	yRef, dxRef = pass(nil)
	gradsRef := cloneGrads(params)

	ws := tensor.NewArena()
	for round := 0; round < 2; round++ {
		y, dx := pass(ws)
		if d := tensor.MaxAbsDiff(yRef, y); d != 0 {
			t.Fatalf("workspace round %d: output differs by %v", round, d)
		}
		if dxRef != nil {
			if d := tensor.MaxAbsDiff(dxRef, dx); d != 0 {
				t.Fatalf("workspace round %d: input gradient differs by %v", round, d)
			}
		}
		for i, p := range params {
			if d := tensor.MaxAbsDiff(gradsRef[i], p.Grad); d != 0 {
				t.Fatalf("workspace round %d: %s gradient differs by %v", round, p.Name, d)
			}
		}
		ws.Release()
	}

	// Leave the nil-workspace analytic gradients in place for the numeric
	// check that follows (the arena passes reproduced them exactly).
	return yRef, dxRef
}

func TestLinearGradCheck(t *testing.T) {
	r := tensor.NewRNG(100)
	l := NewLinear("lin", 6, 5, r)
	l.AddLoRA("lin", 2, 4, r)
	// Make LoRA B nonzero so its gradient path is exercised.
	r.FillNormal(l.LoRAB.W, 0.1)
	x := tensor.New(4, 6)
	r.FillNormal(x, 1)
	target := tensor.New(4, 5)
	r.FillNormal(target, 1)

	// Scalar loss: 0.5·‖y − target‖².
	loss := func() float64 {
		y := l.Forward(x, nil)
		var s float64
		for i := range y.Data {
			dv := float64(y.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}

	// Analytic gradients, workspace and allocating paths bit-identical.
	_, dx := checkWorkspaceParity(t, l.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		y := l.Forward(x, ws)
		dy := y.Clone()
		tensor.AddScaledInto(dy, target, -1)
		l.Params().ZeroGrads()
		return y.Clone(), l.Backward(dy, ws).Clone()
	})

	checkGrad(t, "W", loss, l.W.W, l.W.Grad, sampleIndices(r, l.W.W.Len(), 10))
	checkGrad(t, "B", loss, l.B.W, l.B.Grad, sampleIndices(r, l.B.W.Len(), 5))
	checkGrad(t, "loraA", loss, l.LoRAA.W, l.LoRAA.Grad, sampleIndices(r, l.LoRAA.W.Len(), 8))
	checkGrad(t, "loraB", loss, l.LoRAB.W, l.LoRAB.Grad, sampleIndices(r, l.LoRAB.W.Len(), 8))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 10))
}

func TestLayerNormGradCheck(t *testing.T) {
	r := tensor.NewRNG(101)
	ln := NewLayerNorm("ln", 7)
	r.FillNormal(ln.Gamma.W, 0.3)
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] += 1
	}
	x := tensor.New(3, 7)
	r.FillNormal(x, 2)
	target := tensor.New(3, 7)
	r.FillNormal(target, 1)

	loss := func() float64 {
		y := ln.Forward(x, nil)
		var s float64
		for i := range y.Data {
			dv := float64(y.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}

	_, dx := checkWorkspaceParity(t, ln.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		y := ln.Forward(x, ws)
		dy := y.Clone()
		tensor.AddScaledInto(dy, target, -1)
		ln.Params().ZeroGrads()
		return y.Clone(), ln.Backward(dy, ws).Clone()
	})

	checkGrad(t, "gamma", loss, ln.Gamma.W, ln.Gamma.Grad, sampleIndices(r, 7, 7))
	checkGrad(t, "beta", loss, ln.Beta.W, ln.Beta.Grad, sampleIndices(r, 7, 7))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 10))
}

func TestCrossEntropyGradCheck(t *testing.T) {
	r := tensor.NewRNG(102)
	logits := tensor.New(4, 6)
	r.FillNormal(logits, 1)
	targets := []int{2, IgnoreIndex, 0, 5}

	lossVal, dLogits := CrossEntropy(logits, targets)
	if lossVal <= 0 {
		t.Fatalf("loss = %v", lossVal)
	}

	// The workspace variant must reproduce loss and gradient exactly,
	// including on recycled buffers.
	ws := tensor.NewArena()
	for round := 0; round < 2; round++ {
		lw, dw := CrossEntropyIn(ws, logits, targets)
		if lw != lossVal {
			t.Fatalf("round %d: workspace loss %v vs %v", round, lw, lossVal)
		}
		if d := tensor.MaxAbsDiff(dLogits, dw); d != 0 {
			t.Fatalf("round %d: workspace dLogits differs by %v", round, d)
		}
		ws.Release()
	}

	loss := func() float64 {
		l, _ := CrossEntropy(logits, targets)
		return l
	}
	checkGrad(t, "logits", loss, logits, dLogits, sampleIndices(r, logits.Len(), 15))

	// Ignored row must have zero gradient.
	for j := 0; j < 6; j++ {
		if dLogits.At(1, j) != 0 {
			t.Fatalf("ignored position has gradient %v", dLogits.At(1, j))
		}
	}
}

func TestTransformerFullGradCheck(t *testing.T) {
	r := tensor.NewRNG(103)
	cfg := Config{Name: "tiny", Vocab: 11, Dim: 8, Layers: 2, Heads: 2, Hidden: 12, MaxSeq: 8, Act: ActReLU}
	m := NewTransformer(cfg, r)
	// Re-initialize the embeddings at unit scale: with the production 0.02
	// init, LayerNorm's 1/σ amplification makes the finite-difference step
	// a ~50% relative perturbation and the numeric gradient meaningless.
	r.FillNormal(m.TokEmb.Table.W, 1)
	r.FillNormal(m.PosEmb.Table.W, 1)

	ids := [][]int{{1, 3, 5, 7}, {2, 4, 6, 8}}
	targets := [][]int{{3, 5, 7, 9}, {4, 6, 8, 10}}
	flat := m.FlattenTargets(targets)

	loss := func() float64 {
		logits := m.Forward(ids, nil, nil)
		l, _ := CrossEntropy(logits, flat)
		return l
	}

	checkWorkspaceParity(t, m.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		logits := m.Forward(ids, nil, ws)
		_, dLogits := CrossEntropyIn(ws, logits, flat)
		m.Params().ZeroGrads()
		m.Backward(dLogits, ws)
		return logits.Clone(), nil
	})

	// Spot-check a parameter from every layer family.
	cases := []*Parameter{
		m.TokEmb.Table,
		m.PosEmb.Table,
		m.Blocks[0].Attn.Wq.W,
		m.Blocks[0].Attn.Wo.W,
		m.Blocks[1].MLP.W1,
		m.Blocks[1].MLP.W2,
		m.Blocks[0].LN1.Gamma,
		m.Blocks[1].MLP.B1,
		m.LNF.Beta,
		m.Head.W,
	}
	for _, p := range cases {
		checkGrad(t, p.Name, loss, p.W, p.Grad, sampleIndices(r, p.W.Len(), 6))
	}
}

func TestTransformerPromptGradCheck(t *testing.T) {
	r := tensor.NewRNG(104)
	cfg := Config{Name: "tiny", Vocab: 9, Dim: 8, Layers: 1, Heads: 2, Hidden: 12, MaxSeq: 10, Act: ActReLU}
	m := NewTransformer(cfg, r)
	m.EnablePrompt(2, r)
	r.FillNormal(m.TokEmb.Table.W, 1)
	r.FillNormal(m.PosEmb.Table.W, 1)
	r.FillNormal(m.Prompt.W, 1)
	m.Params().FreezeAll()
	m.Prompt.Frozen = false

	ids := [][]int{{1, 2, 3, 4}}
	targets := [][]int{{2, 3, 4, 5}}
	flat := m.FlattenTargets(targets)
	if len(flat) != 6 || flat[0] != IgnoreIndex || flat[1] != IgnoreIndex {
		t.Fatalf("FlattenTargets = %v", flat)
	}

	loss := func() float64 {
		logits := m.Forward(ids, nil, nil)
		l, _ := CrossEntropy(logits, flat)
		return l
	}
	checkWorkspaceParity(t, m.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		logits := m.Forward(ids, nil, ws)
		_, dLogits := CrossEntropyIn(ws, logits, flat)
		m.Params().ZeroGrads()
		m.Backward(dLogits, ws)
		return logits.Clone(), nil
	})
	checkGrad(t, "prompt", loss, m.Prompt.W, m.Prompt.Grad, sampleIndices(r, m.Prompt.W.Len(), 8))
}

func TestAdapterGradCheckAndIdentityInit(t *testing.T) {
	r := tensor.NewRNG(105)
	a := NewAdapter("adpt", 6, 3, r)
	x := tensor.New(4, 6)
	r.FillNormal(x, 1)

	// Identity at init: Up.W is zero, so y = x + Up.B (bias is zero too).
	y := a.Forward(x, nil)
	if d := tensor.MaxAbsDiff(y, x); d > 1e-6 {
		t.Fatalf("fresh adapter is not identity: diff %v", d)
	}

	// Perturb so gradients are non-trivial.
	r.FillNormal(a.Up.W.W, 0.3)
	target := tensor.New(4, 6)
	r.FillNormal(target, 1)
	loss := func() float64 {
		out := a.Forward(x, nil)
		var s float64
		for i := range out.Data {
			dv := float64(out.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}
	_, dx := checkWorkspaceParity(t, a.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		out := a.Forward(x, ws)
		dy := out.Clone()
		tensor.AddScaledInto(dy, target, -1)
		a.Params().ZeroGrads()
		return out.Clone(), a.Backward(dy, ws).Clone()
	})

	checkGrad(t, "down.W", loss, a.Down.W.W, a.Down.W.Grad, sampleIndices(r, a.Down.W.W.Len(), 8))
	checkGrad(t, "up.W", loss, a.Up.W.W, a.Up.W.Grad, sampleIndices(r, a.Up.W.W.Len(), 8))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 8))
}

func TestAttentionIsolatedGradCheck(t *testing.T) {
	r := tensor.NewRNG(300)
	a := NewMultiHeadAttention("attn", 8, 2, r)
	batch, seq := 1, 4
	x := tensor.New(batch*seq, 8)
	r.FillNormal(x, 1)
	target := tensor.New(batch*seq, 8)
	r.FillNormal(target, 1)

	loss := func() float64 {
		y := a.Forward(x, batch, seq, nil, 0, nil)
		var s float64
		for i := range y.Data {
			dv := float64(y.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}
	_, dx := checkWorkspaceParity(t, a.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		y := a.Forward(x, batch, seq, nil, 0, ws)
		dy := y.Clone()
		tensor.AddScaledInto(dy, target, -1)
		a.Params().ZeroGrads()
		return y.Clone(), a.Backward(dy, ws).Clone()
	})

	checkGrad(t, "Wq", loss, a.Wq.W.W, a.Wq.W.Grad, sampleIndices(r, 64, 12))
	checkGrad(t, "Wk", loss, a.Wk.W.W, a.Wk.W.Grad, sampleIndices(r, 64, 12))
	checkGrad(t, "Wv", loss, a.Wv.W.W, a.Wv.W.Grad, sampleIndices(r, 64, 12))
	checkGrad(t, "Wo", loss, a.Wo.W.W, a.Wo.W.Grad, sampleIndices(r, 64, 12))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 16))
}

func TestMLPIsolatedGradCheck(t *testing.T) {
	r := tensor.NewRNG(301)
	m := NewMLP("mlp", 6, 12, ActReLU, r)
	x := tensor.New(4, 6)
	r.FillNormal(x, 1)
	target := tensor.New(4, 6)
	r.FillNormal(target, 1)
	loss := func() float64 {
		y := m.Forward(x, nil, 0, nil)
		var s float64
		for i := range y.Data {
			dv := float64(y.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}
	_, dx := checkWorkspaceParity(t, m.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		y := m.Forward(x, nil, 0, ws)
		dy := y.Clone()
		tensor.AddScaledInto(dy, target, -1)
		m.Params().ZeroGrads()
		return y.Clone(), m.Backward(dy, ws).Clone()
	})
	checkGrad(t, "W1", loss, m.W1.W, m.W1.Grad, sampleIndices(r, m.W1.W.Len(), 12))
	checkGrad(t, "W2", loss, m.W2.W, m.W2.Grad, sampleIndices(r, m.W2.W.Len(), 12))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 12))
}

func TestBlockIsolatedGradCheck(t *testing.T) {
	r := tensor.NewRNG(302)
	b := NewTransformerBlock("blk", 8, 2, 16, ActReLU, r)
	batch, seq := 1, 4
	x := tensor.New(batch*seq, 8)
	r.FillNormal(x, 1)
	target := tensor.New(batch*seq, 8)
	r.FillNormal(target, 1)

	loss := func() float64 {
		y := b.Forward(x, batch, seq, nil, nil)
		var s float64
		for i := range y.Data {
			dv := float64(y.Data[i] - target.Data[i])
			s += 0.5 * dv * dv
		}
		return s
	}
	_, dx := checkWorkspaceParity(t, b.Params(), func(ws *tensor.Arena) (*tensor.Tensor, *tensor.Tensor) {
		y := b.Forward(x, batch, seq, nil, ws)
		dy := y.Clone()
		tensor.AddScaledInto(dy, target, -1)
		b.Params().ZeroGrads()
		return y.Clone(), b.Backward(dy, ws).Clone()
	})

	checkGrad(t, "ln1.gamma", loss, b.LN1.Gamma.W, b.LN1.Gamma.Grad, sampleIndices(r, 8, 8))
	checkGrad(t, "Wq", loss, b.Attn.Wq.W.W, b.Attn.Wq.W.Grad, sampleIndices(r, 64, 10))
	checkGrad(t, "W1", loss, b.MLP.W1.W, b.MLP.W1.Grad, sampleIndices(r, b.MLP.W1.W.Len(), 10))
	checkGrad(t, "x", loss, x, dx, sampleIndices(r, x.Len(), 16))
}
