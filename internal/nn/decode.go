package nn

import (
	"fmt"
	"math"

	"longexposure/internal/parallel"
	"longexposure/internal/sparse"
	"longexposure/internal/tensor"
)

// This file is the serving-side forward path: incremental decoding with a
// per-sequence KV cache, bit-identical to re-running Forward over the full
// prefix every token (the naive Generate loop). Bit-identity holds because
// every kernel in the training forward is per-row independent — a row's
// result depends only on that row's input and the weights, never on how
// many rows share the call — and the tiled/naive GEMM cores are pinned
// bit-identical. The decode path recomputes exactly the rows the naive
// path would have appended, against cached K/V rows that are themselves
// bit-equal to what a full re-run would produce.
//
// Unlike Forward, nothing here writes to the layer structs (no l.x, no
// ln.xhat, no attention state): the model is treated as read-only weights,
// so any number of sequences — each with its own KVCache, Arena and
// DecodeAdapter — can decode concurrently on one shared frozen base. That
// is the multi-adapter serving structure internal/infer builds on.

// KVCache holds one sequence's cached attention keys and values: per layer,
// per head, a packed [MaxSeq·headDim] buffer. Len counts cached positions
// (prompt-tuning rows included). Buffers are plainly allocated — a cache
// outlives every step arena the sequence uses.
type KVCache struct {
	Heads, HeadDim, MaxSeq int
	Len                    int

	layers []kvLayer
}

type kvLayer struct {
	k, v [][]float32 // [head][MaxSeq*headDim]
}

// NewKVCache allocates an empty cache sized for the model.
func (m *Transformer) NewKVCache() *KVCache {
	hd := m.Cfg.Dim / m.Cfg.Heads
	c := &KVCache{Heads: m.Cfg.Heads, HeadDim: hd, MaxSeq: m.Cfg.MaxSeq}
	c.layers = make([]kvLayer, m.Cfg.Layers)
	for li := range c.layers {
		c.layers[li].k = make([][]float32, c.Heads)
		c.layers[li].v = make([][]float32, c.Heads)
		for h := 0; h < c.Heads; h++ {
			c.layers[li].k[h] = make([]float32, c.MaxSeq*hd)
			c.layers[li].v[h] = make([]float32, c.MaxSeq*hd)
		}
	}
	return c
}

// Reset empties the cache for reuse by a new sequence.
func (c *KVCache) Reset() { c.Len = 0 }

// LoRAPair is one linear layer's low-rank delta: y += Scale·(x·A)·B.
type LoRAPair struct {
	A, B  *tensor.Tensor // A: [in, r], B: [r, out]
	Scale float32
}

// BottleneckWeights is one Houlsby adapter's weight set:
// y = z + (relu(z·DownW + DownB))·UpW + UpB.
type BottleneckWeights struct {
	DownW, DownB *tensor.Tensor // [dim, bottleneck], [bottleneck]
	UpW, UpB     *tensor.Tensor // [bottleneck, dim], [dim]
}

// LayerAdapter carries one transformer block's adapter weights. Nil fields
// leave that injection point at the frozen base behavior.
type LayerAdapter struct {
	Q, V       *LoRAPair          // attention Q/V projection LoRA
	AttnScaled *BottleneckWeights // bottleneck after the attention sublayer
	MLPScaled  *BottleneckWeights // bottleneck after the MLP sublayer
}

// DecodeAdapter is a detachable PEFT delta applied functionally during
// decoding — the base model's weights are never touched, so different
// requests can decode with different adapters on one shared base
// concurrently. A nil *DecodeAdapter decodes the plain base.
type DecodeAdapter struct {
	Prompt *tensor.Tensor // [P, dim] trainable prompt (P-Tuning), or nil
	Layers []LayerAdapter // len == Cfg.Layers, or nil
}

// PromptLen returns the number of virtual prompt rows the adapter prepends.
func (a *DecodeAdapter) PromptLen() int {
	if a == nil || a.Prompt == nil {
		return 0
	}
	return a.Prompt.Dim(0)
}

func (a *DecodeAdapter) layer(li int) *LayerAdapter {
	if a == nil || a.Layers == nil {
		return nil
	}
	return &a.Layers[li]
}

// SelfAdapter views the model's own attached PEFT modules (LoRA branches,
// bottleneck adapters, trainable prompt) as a DecodeAdapter, so a
// fine-tuned model decodes through the serving path without extracting an
// artifact first. The returned adapter aliases the model's weights.
func (m *Transformer) SelfAdapter() *DecodeAdapter {
	ad := &DecodeAdapter{}
	if m.Prompt != nil {
		ad.Prompt = m.Prompt.W
	}
	ad.Layers = make([]LayerAdapter, len(m.Blocks))
	for li, b := range m.Blocks {
		la := &ad.Layers[li]
		if b.Attn.Wq.HasLoRA() {
			la.Q = &LoRAPair{A: b.Attn.Wq.LoRAA.W, B: b.Attn.Wq.LoRAB.W, Scale: b.Attn.Wq.LoRAScale}
		}
		if b.Attn.Wv.HasLoRA() {
			la.V = &LoRAPair{A: b.Attn.Wv.LoRAA.W, B: b.Attn.Wv.LoRAB.W, Scale: b.Attn.Wv.LoRAScale}
		}
		if b.AdptA != nil {
			la.AttnScaled = bottleneckOf(b.AdptA)
		}
		if b.AdptM != nil {
			la.MLPScaled = bottleneckOf(b.AdptM)
		}
	}
	return ad
}

func bottleneckOf(a *Adapter) *BottleneckWeights {
	return &BottleneckWeights{
		DownW: a.Down.W.W, DownB: a.Down.B.W,
		UpW: a.Up.W.W, UpB: a.Up.B.W,
	}
}

// DecodeStepConfig consolidates DecodeStep's per-call knobs: the adapter,
// the step's sparsity plan, and the workspace arena. Passing the zero
// value decodes the plain base, densely, with allocating scratch — every
// field's zero means "current behavior".
type DecodeStepConfig struct {
	// Adapter is the PEFT delta to decode with; nil decodes the plain base.
	Adapter *DecodeAdapter
	// Plan gates contextual sparsity for this step; nil runs fully dense.
	// Attention selections apply only to single-row steps (prefill and
	// multi-row steps attend densely); MLP selections apply to every row.
	Plan *DecodePlan
	// WS is the step workspace (nil allocates). The returned logits are
	// workspace-backed and must be read before the caller's Release.
	WS *tensor.Arena
	// Stats, when set, accumulates the step's analytic FLOP and plan
	// counters (see DecodeStats). Recording is plain field arithmetic on
	// the caller-owned struct — the zero-alloc hot path stays zero-alloc.
	Stats *DecodeStats
}

// DecodeStep feeds ids (batch 1) through the model against the cache,
// appending their K/V rows, and returns the logits of the last new row as
// a [1, vocab] tensor. The first call on an empty cache is the prefill: if
// the adapter carries a trainable prompt, its rows are prepended exactly
// as Forward prepends them. ws is the step workspace (nil allocates); the
// returned logits are workspace-backed and must be read before the
// caller's Release. The cache must not be shared across concurrent calls;
// the model itself is only read.
//
// DecodeStep is the dense compat wrapper over DecodeStepCfg.
func (m *Transformer) DecodeStep(cache *KVCache, ids []int, ad *DecodeAdapter, ws *tensor.Arena) *tensor.Tensor {
	return m.DecodeStepCfg(cache, ids, DecodeStepConfig{Adapter: ad, WS: ws})
}

// DecodeStepCfg is DecodeStep with the consolidated config: the plan-aware
// primary entry point of the cached decode path.
func (m *Transformer) DecodeStepCfg(cache *KVCache, ids []int, cfg DecodeStepConfig) *tensor.Tensor {
	ad, ws := cfg.Adapter, cfg.WS
	if len(ids) == 0 {
		panic("nn: DecodeStep with no tokens")
	}
	d := m.Cfg.Dim
	promptRows := 0
	if cache.Len == 0 {
		promptRows = ad.PromptLen()
	}
	n := promptRows + len(ids)
	p0 := cache.Len
	if p0+n > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("nn: sequence %d exceeds MaxSeq %d", p0+n, m.Cfg.MaxSeq))
	}

	// Row assembly mirrors Forward: prompt rows, then token embeddings,
	// then positional embeddings added over all rows.
	x := tensor.NewIn(ws, n, d)
	for p := 0; p < promptRows; p++ {
		copy(x.Data[p*d:(p+1)*d], ad.Prompt.Data[p*d:(p+1)*d])
	}
	for i, id := range ids {
		if id < 0 || id >= m.Cfg.Vocab {
			panic(fmt.Sprintf("nn: embedding id %d outside vocab %d", id, m.Cfg.Vocab))
		}
		copy(x.Data[(promptRows+i)*d:(promptRows+i+1)*d], m.TokEmb.Table.W.Data[id*d:(id+1)*d])
	}
	for r := 0; r < n; r++ {
		pos := m.PosEmb.Table.W.Data[(p0+r)*d : (p0+r+1)*d]
		row := x.Data[r*d : (r+1)*d]
		for j, v := range pos {
			row[j] += v
		}
	}

	for li, blk := range m.Blocks {
		x = decodeBlock(blk, x, &cache.layers[li], cache, p0, ad.layer(li), cfg.Plan, li, ws)
	}
	cache.Len = p0 + n
	if cfg.Stats != nil {
		m.noteDecodeStep(cfg.Stats, n, p0, cfg.Plan)
	}

	// Only the last row's logits are consumed downstream (the final norm
	// and head feed nothing back into the blocks), so the prefill skips
	// the vocab projection for every earlier row.
	last := tensor.WrapIn(ws, x.Data[(n-1)*d:n*d], 1, d)
	ln := decodeLayerNorm(m.LNF, last, ws)
	var logits *tensor.Tensor
	if m.Head.Packed != nil {
		logits = tensor.MatMulPackedIn(ws, ln, m.Head.Packed)
	} else {
		logits = tensor.MatMulIn(ws, ln, m.Head.W.W)
	}
	tensor.AddRowVector(logits, m.Head.B.W.Data)
	return logits
}

// decodeBlock mirrors TransformerBlock.Forward's dense path, with the
// adapter's injections applied functionally and the step plan's per-layer
// selections gating the attention and MLP kernels.
func decodeBlock(b *TransformerBlock, x *tensor.Tensor, kv *kvLayer, cache *KVCache, p0 int, la *LayerAdapter, plan *DecodePlan, li int, ws *tensor.Arena) *tensor.Tensor {
	var attnBlocks, mlpBlocks []int
	blk := 0
	if plan != nil {
		attnBlocks, mlpBlocks, blk = plan.layerAttn(li), plan.layerMLP(li), plan.Blk
	}
	h := decodeLayerNorm(b.LN1, x, ws)
	attnOut := decodeAttention(b.Attn, h, kv, cache, p0, la, attnBlocks, blk, ws)
	if la != nil && la.AttnScaled != nil {
		attnOut = decodeBottleneck(la.AttnScaled, attnOut, ws)
	}
	x1 := tensor.CloneIn(ws, x)
	tensor.AddInto(x1, attnOut)

	h2 := decodeLayerNorm(b.LN2, x1, ws)
	mlpOut := decodeMLP(b.MLP, h2, mlpBlocks, blk, ws)
	if la != nil && la.MLPScaled != nil {
		mlpOut = decodeBottleneck(la.MLPScaled, mlpOut, ws)
	}
	x2 := tensor.CloneIn(ws, x1)
	tensor.AddInto(x2, mlpOut)
	return x2
}

// decodeLayerNorm is LayerNorm.Forward without the saved-for-backward
// caches on the layer struct (scratch comes from the workspace instead).
func decodeLayerNorm(ln *LayerNorm, x *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	tokens, d := x.Dim(0), x.Dim(1)
	y := tensor.NewIn(ws, tokens, d)
	xhat := tensor.FloatsDirtyIn(ws, tokens*d)
	invStd := tensor.FloatsDirtyIn(ws, tokens)
	parallel.ForChunkedArg(tokens, lnFwdArgs{
		x: x.Data, y: y.Data, xhat: xhat, invStd: invStd,
		g: ln.Gamma.W.Data, b: ln.Beta.W.Data, d: d, eps: ln.Eps,
	}, lnForwardChunk)
	return y
}

// decodeLinear is Linear.Forward against explicit LoRA weights, caching
// nothing: y = x·W + b (+ Scale·(x·A)·B), the exact op sequence of the
// training layer.
func decodeLinear(l *Linear, x *tensor.Tensor, lw *LoRAPair, ws *tensor.Arena) *tensor.Tensor {
	var y *tensor.Tensor
	if l.Packed != nil {
		y = tensor.MatMulPackedIn(ws, x, l.Packed)
	} else {
		y = tensor.MatMulIn(ws, x, l.W.W)
	}
	tensor.AddRowVector(y, l.B.W.Data)
	if lw != nil {
		xa := tensor.MatMulIn(ws, x, lw.A)
		delta := tensor.MatMulIn(ws, xa, lw.B)
		tensor.AddScaledInto(y, delta, lw.Scale)
	}
	return y
}

// decodeAttention computes causal attention for the n new rows against the
// cached prefix, appending the rows' K/V to the cache. Per new row r at
// absolute position p0+r it mirrors row p0+r of the training kernel
// (sparse.DenseCausalAttentionInto) operation for operation: raw dot
// scores, scale on the visible prefix, stable softmax, probability-weighted
// V accumulation with the zero-probability skip.
//
// attnBlocks, when non-nil on a single-row step, restricts the visible
// prefix to the listed KV-position blocks of size blk (ascending; the
// block holding the current position must be listed): scores are gathered
// compactly over just the selected positions, softmax normalizes over that
// support, and only the selected V rows accumulate — the block-sparse
// attention read of the paper's shadowy attention, on the cache. Prefill
// and multi-row steps ignore the selection and attend densely.
func decodeAttention(a *MultiHeadAttention, x *tensor.Tensor, kv *kvLayer, cache *KVCache, p0 int, la *LayerAdapter, attnBlocks []int, blk int, ws *tensor.Arena) *tensor.Tensor {
	var loraQ, loraV *LoRAPair
	if la != nil {
		loraQ, loraV = la.Q, la.V
	}
	q := decodeLinear(a.Wq, x, loraQ, ws)
	k := decodeLinear(a.Wk, x, nil, ws)
	v := decodeLinear(a.Wv, x, loraV, ws)

	n, d := x.Dim(0), a.Dim
	hd := a.HeadDim
	for r := 0; r < n; r++ {
		for h := 0; h < a.Heads; h++ {
			copy(kv.k[h][(p0+r)*hd:(p0+r+1)*hd], k.Data[r*d+h*hd:r*d+(h+1)*hd])
			copy(kv.v[h][(p0+r)*hd:(p0+r+1)*hd], v.Data[r*d+h*hd:r*d+(h+1)*hd])
		}
	}
	if attnBlocks != nil && n == 1 {
		return decodeAttentionSparse(a, q, kv, p0, attnBlocks, blk, ws)
	}

	scale := float32(1 / math.Sqrt(float64(hd)))
	ctx := tensor.NewIn(ws, n, d)
	scores := tensor.FloatsDirtyIn(ws, p0+n)
	for h := 0; h < a.Heads; h++ {
		kh, vh := kv.k[h], kv.v[h]
		for r := 0; r < n; r++ {
			p := p0 + r // absolute position; rows 0..p are visible
			qrow := q.Data[r*d+h*hd : r*d+(h+1)*hd]
			row := scores[:p+1]
			for j := 0; j <= p; j++ {
				kj := kh[j*hd : (j+1)*hd]
				var s float32
				for c, qv := range qrow {
					s += qv * kj[c]
				}
				row[j] = s
			}
			for j := range row {
				row[j] *= scale
			}
			tensor.SoftmaxRow(row)
			out := ctx.Data[r*d+h*hd : r*d+(h+1)*hd]
			for j, pj := range row {
				if pj == 0 {
					continue
				}
				vj := vh[j*hd : (j+1)*hd]
				for c, vv := range vj {
					out[c] += pj * vv
				}
			}
		}
	}

	return decodeLinear(a.Wo, ctx, nil, ws)
}

// decodeAttentionSparse is the single-row block-sparse attention read: the
// query row attends only to the KV positions inside the selected blocks.
// The compact gather touches selected K/V rows once each — skipped
// positions cost nothing, which is where the tokens/sec win at long
// prefixes comes from.
func decodeAttentionSparse(a *MultiHeadAttention, q *tensor.Tensor, kv *kvLayer, p int, blocks []int, blk int, ws *tensor.Arena) *tensor.Tensor {
	d, hd := a.Dim, a.HeadDim
	scale := float32(1 / math.Sqrt(float64(hd)))
	ctx := tensor.NewIn(ws, 1, d)
	scores := tensor.FloatsDirtyIn(ws, p+1)
	for h := 0; h < a.Heads; h++ {
		kh, vh := kv.k[h], kv.v[h]
		qrow := q.Data[h*hd : (h+1)*hd]
		cnt := 0
		for _, nb := range blocks {
			hi := (nb + 1) * blk
			if hi > p+1 {
				hi = p + 1
			}
			for j := nb * blk; j < hi; j++ {
				kj := kh[j*hd : (j+1)*hd]
				var s float32
				for c, qv := range qrow {
					s += qv * kj[c]
				}
				scores[cnt] = s * scale
				cnt++
			}
		}
		if cnt == 0 {
			panic("nn: decode plan selects no visible attention blocks")
		}
		row := scores[:cnt]
		tensor.SoftmaxRow(row)
		out := ctx.Data[h*hd : (h+1)*hd]
		cnt = 0
		for _, nb := range blocks {
			hi := (nb + 1) * blk
			if hi > p+1 {
				hi = p + 1
			}
			for j := nb * blk; j < hi; j++ {
				pj := row[cnt]
				cnt++
				if pj == 0 {
					continue
				}
				vj := vh[j*hd : (j+1)*hd]
				for c, vv := range vj {
					out[c] += pj * vv
				}
			}
		}
	}
	return decodeLinear(a.Wo, ctx, nil, ws)
}

// decodeMLP is MLP.Forward without the layer-struct caches. blocks selects
// the execution path exactly as MLP.Forward does: nil runs dense;
// otherwise only the listed neuron blocks compute, their biases included
// and everything else — bias too — contributing nothing. The sparse path
// uses the serial single-row gather/scatter kernels: decode steps are one
// row, where the training kernels' parallel dispatch would cost more than
// the math.
func decodeMLP(m *MLP, x *tensor.Tensor, blocks []int, blk int, ws *tensor.Arena) *tensor.Tensor {
	if blocks != nil && m.Act != ActReLU {
		panic("nn: neuron sparsity requires ReLU activation")
	}
	tokens := x.Dim(0)
	if blocks != nil {
		if m.compressed() {
			panic("nn: neuron-block sparsity on a compressed MLP — compressed bases serve dense")
		}
		hidden := tensor.NewIn(ws, tokens, m.Hidden) // zeroed: inactive neurons stay 0
		out := tensor.NewIn(ws, tokens, m.Dim)
		w1 := sparse.ColMajor{In: m.Dim, Out: m.Hidden, Data: m.W1.W.Data}
		w2 := sparse.RowMajor{In: m.Hidden, Out: m.Dim, Data: m.W2.W.Data}
		for r := 0; r < tokens; r++ {
			sparse.DecodeFC1Gather(hidden.Data[r*m.Hidden:(r+1)*m.Hidden], x.Data[r*m.Dim:(r+1)*m.Dim], &w1, m.B1.W.Data, blocks, blk)
			sparse.DecodeFC2Scatter(out.Data[r*m.Dim:(r+1)*m.Dim], hidden.Data[r*m.Hidden:(r+1)*m.Hidden], &w2, blocks, blk)
		}
		tensor.AddRowVector(out, m.B2.W.Data)
		return out
	}
	hidden := tensor.NewIn(ws, tokens, m.Hidden)
	m.fc1Dense(hidden, x, tokens)
	tensor.AddRowVector(hidden, m.B1.W.Data)
	switch m.Act {
	case ActReLU:
		tensor.ReLUIn(ws, hidden, false)
	case ActGeLU:
		tensor.GeLUIn(ws, hidden)
	}
	out := tensor.NewIn(ws, tokens, m.Dim)
	m.fc2Dense(out, hidden, tokens)
	tensor.AddRowVector(out, m.B2.W.Data)
	return out
}

// decodeBottleneck is Adapter.Forward against explicit weights:
// y = z + up(relu(down(z))).
func decodeBottleneck(bw *BottleneckWeights, z *tensor.Tensor, ws *tensor.Arena) *tensor.Tensor {
	h := tensor.MatMulIn(ws, z, bw.DownW)
	tensor.AddRowVector(h, bw.DownB.Data)
	tensor.ReLUIn(ws, h, false)
	y := tensor.MatMulIn(ws, h, bw.UpW)
	tensor.AddRowVector(y, bw.UpB.Data)
	tensor.AddInto(y, z)
	return y
}

// DecodeSession consolidates GenerateCached's per-sequence state: the
// adapter, the KV cache, the workspace arena, and an optional sparsity
// planner. Every field's zero value means "current behavior" — fresh
// cache, self adapter, allocating scratch, fully dense steps.
type DecodeSession struct {
	// Adapter selects the PEFT delta; nil applies the model's own attached
	// modules (SelfAdapter), matching what Forward would run.
	Adapter *DecodeAdapter
	// Cache may be nil (a fresh one is made); pass a Reset cache to reuse
	// its buffers.
	Cache *KVCache
	// WS is released after every emitted token.
	WS *tensor.Arena
	// Planner, when set, plans contextual sparsity for every single-token
	// step (the prefill always runs dense). BeginSequence is called before
	// the loop starts.
	Planner DecodePlanner
	// Stats, when set, accumulates per-step FLOP and plan counters across
	// the whole generation (prefill included).
	Stats *DecodeStats
}

// GenerateCached is Generate on the KV-cached decode path: same sampling,
// same stop conditions, same RNG consumption, bit-identical tokens — one
// full-prefix prefill, then one row of compute per emitted token instead
// of the naive O(prefix) re-run.
//
// GenerateCached is the dense compat wrapper over GenerateCachedCfg.
func (m *Transformer) GenerateCached(prompt []int, cfg GenerateConfig, ad *DecodeAdapter, cache *KVCache, ws *tensor.Arena) []int {
	return m.GenerateCachedCfg(prompt, cfg, DecodeSession{Adapter: ad, Cache: cache, WS: ws})
}

// GenerateCachedCfg is GenerateCached with the consolidated session
// config, threading a sparsity planner through the token loop when one is
// set: one PlanStep per emitted token, plan buffers released with the
// step's workspace.
func (m *Transformer) GenerateCachedCfg(prompt []int, cfg GenerateConfig, sess DecodeSession) []int {
	if cfg.MaxTokens == 0 {
		cfg.MaxTokens = 16
	}
	if cfg.RNG == nil {
		cfg.RNG = tensor.NewRNG(1)
	}
	if sess.Cache == nil {
		sess.Cache = m.NewKVCache()
	}
	if sess.Adapter == nil {
		sess.Adapter = m.SelfAdapter() // covers a prompt-tuned model's own prompt too
	}
	promptRows := sess.Adapter.PromptLen()
	if sess.Planner != nil {
		sess.Planner.BeginSequence(prompt, sess.Adapter)
	}

	var out []int
	feed := prompt
	var nextBuf [1]int
	for t := 0; t < cfg.MaxTokens; t++ {
		if promptRows+len(prompt)+len(out) >= m.Cfg.MaxSeq {
			break
		}
		var plan *DecodePlan
		if sess.Planner != nil && t > 0 {
			plan = sess.Planner.PlanStep(feed[0], sess.Cache.Len, sess.WS)
		}
		logits := m.DecodeStepCfg(sess.Cache, feed, DecodeStepConfig{Adapter: sess.Adapter, Plan: plan, WS: sess.WS, Stats: sess.Stats})
		next := pickToken(logits.Row(0), cfg.Temperature, cfg.RNG)
		sess.WS.Release()
		out = append(out, next)
		if cfg.StopToken > 0 && next == cfg.StopToken {
			break
		}
		nextBuf[0] = next
		feed = nextBuf[:]
	}
	return out
}

// SampleToken picks the next token from a logit row: greedy argmax when
// temperature <= 0, tempered softmax sampling otherwise (rng may be nil
// for greedy).
func SampleToken(logits []float32, temperature float64, rng *tensor.RNG) int {
	if rng == nil {
		rng = tensor.NewRNG(1)
	}
	return pickToken(logits, temperature, rng)
}
