package nn

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"longexposure/internal/tensor"
)

// trainSteps nudges every trainable parameter with a few plain SGD steps on
// a fixed batch, so injected modules (LoRA B starts at zero, adapters start
// at identity) carry non-trivial deltas before decode parity is checked.
func trainSteps(m *Transformer, steps int) {
	ids := [][]int{{2, 5, 3, 7, 2, 5, 3, 7}}
	targets := [][]int{{5, 3, 7, 2, 5, 3, 7, 2}}
	ps := m.Params()
	for i := 0; i < steps; i++ {
		logits := m.Forward(ids, nil, nil)
		flat := m.FlattenTargets(targets)
		_, dLogits := CrossEntropy(logits, flat)
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps.Trainable() {
			tensor.AddScaledInto(p.W, p.Grad, -0.05)
		}
	}
}

// decodeParityModels builds the PEFT variants the cached decode path must
// reproduce: a plain base, LoRA on Q/V, bottleneck adapters, and a
// trainable prompt — each trained a little so the deltas are non-zero.
func decodeParityModels(t *testing.T) map[string]*Transformer {
	t.Helper()
	models := map[string]*Transformer{}

	base := NewTransformer(tinyConfig(), tensor.NewRNG(420))
	trainSteps(base, 3)
	models["base"] = base

	lora := NewTransformer(tinyConfig(), tensor.NewRNG(421))
	for li, b := range lora.Blocks {
		name := fmt.Sprintf("layer%d.attn", li)
		b.Attn.Wq.AddLoRA(name+".q_proj", 2, 4, tensor.NewRNG(uint64(430+li)))
		b.Attn.Wv.AddLoRA(name+".v_proj", 2, 4, tensor.NewRNG(uint64(440+li)))
	}
	trainSteps(lora, 3)
	models["lora"] = lora

	adpt := NewTransformer(tinyConfig(), tensor.NewRNG(422))
	for li, b := range adpt.Blocks {
		b.AdptA = NewAdapter(fmt.Sprintf("layer%d.adapter_attn", li), adpt.Cfg.Dim, 4, tensor.NewRNG(uint64(450+li)))
		b.AdptM = NewAdapter(fmt.Sprintf("layer%d.adapter_mlp", li), adpt.Cfg.Dim, 4, tensor.NewRNG(uint64(460+li)))
	}
	trainSteps(adpt, 3)
	models["adapter"] = adpt

	prompt := NewTransformer(tinyConfig(), tensor.NewRNG(423))
	prompt.EnablePrompt(3, tensor.NewRNG(470))
	trainSteps(prompt, 3)
	models["ptuning"] = prompt

	gelu := tinyConfig()
	gelu.Act = ActGeLU
	gm := NewTransformer(gelu, tensor.NewRNG(424))
	trainSteps(gm, 3)
	models["gelu"] = gm

	return models
}

// TestDecodeBitIdenticalToGenerate pins the KV-cached decode path to the
// naive full-prefix re-run: identical token sequences, across PEFT
// variants, greedy and tempered sampling, with and without the workspace
// arena. Exact (==) comparison — the decode path recomputes the same
// floating-point operations in the same order.
func TestDecodeBitIdenticalToGenerate(t *testing.T) {
	prompt := []int{1, 4, 2, 9}
	for name, m := range decodeParityModels(t) {
		for _, temp := range []float64{0, 0.8} {
			for _, withWS := range []bool{false, true} {
				label := fmt.Sprintf("%s/temp=%.1f/ws=%v", name, temp, withWS)
				cfg := GenerateConfig{MaxTokens: 10, Temperature: temp, RNG: tensor.NewRNG(777)}
				want := m.Generate(prompt, cfg)

				var ws *tensor.Arena
				if withWS {
					ws = tensor.NewArena()
				}
				cfg.RNG = tensor.NewRNG(777) // same sampling stream
				got := m.GenerateCached(prompt, cfg, nil, nil, ws)
				if len(got) != len(want) {
					t.Fatalf("%s: cached emitted %d tokens, naive %d (%v vs %v)", label, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: token %d differs: cached %v, naive %v", label, i, got, want)
					}
				}
			}
		}
	}
}

// TestDecodeStepIncrementalMatchesPrefill pins that feeding a prompt token
// by token produces the same logits as one prefill call — the continuous
// batching scheduler relies on chunk-size independence.
func TestDecodeStepIncrementalMatchesPrefill(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(480))
	prompt := []int{3, 1, 4, 1, 5}

	oneShot := m.DecodeStep(m.NewKVCache(), prompt, nil, nil)

	cache := m.NewKVCache()
	var last *tensor.Tensor
	for _, tok := range prompt {
		last = m.DecodeStep(cache, []int{tok}, nil, nil)
	}
	for i := range oneShot.Data {
		if oneShot.Data[i] != last.Data[i] {
			t.Fatalf("logit %d differs between one-shot and token-by-token prefill", i)
		}
	}
}

// TestDecodeRespectsMaxSeq mirrors TestGenerateRespectsMaxSeq on the cached
// path, prompt rows included.
func TestDecodeRespectsMaxSeq(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxSeq = 6
	m := NewTransformer(cfg, tensor.NewRNG(481))
	naive := m.Generate([]int{1, 2, 3}, GenerateConfig{MaxTokens: 50})
	cached := m.GenerateCached([]int{1, 2, 3}, GenerateConfig{MaxTokens: 50}, nil, nil, nil)
	if len(cached) != len(naive) {
		t.Fatalf("cached emitted %d tokens at MaxSeq, naive %d", len(cached), len(naive))
	}
}

// TestConcurrentDecodeSharedBase decodes many sequences concurrently on
// one shared frozen base, each with a different external adapter, and
// checks every stream against its naive single-threaded reference — the
// serving concurrency model, run under -race by CI.
func TestConcurrentDecodeSharedBase(t *testing.T) {
	base := NewTransformer(tinyConfig(), tensor.NewRNG(490))

	// Distinct external LoRA adapters over the same untouched base.
	mkAdapter := func(seed uint64) *DecodeAdapter {
		ad := &DecodeAdapter{Layers: make([]LayerAdapter, len(base.Blocks))}
		r := tensor.NewRNG(seed)
		for li := range base.Blocks {
			mk := func() *LoRAPair {
				A := tensor.New(base.Cfg.Dim, 2)
				B := tensor.New(2, base.Cfg.Dim)
				r.FillNormal(A, 0.1)
				r.FillNormal(B, 0.1)
				return &LoRAPair{A: A, B: B, Scale: 2}
			}
			ad.Layers[li].Q = mk()
			ad.Layers[li].V = mk()
		}
		return ad
	}

	type job struct {
		ad     *DecodeAdapter
		prompt []int
		want   []int
	}
	var jobs []job
	for i := 0; i < 4; i++ {
		ad := mkAdapter(uint64(500 + i))
		prompt := []int{1 + i, 2, 3 + i}
		// Naive reference: a throwaway clone of the base with the adapter's
		// LoRA weights attached, so Generate runs the training forward.
		ref := NewTransformer(tinyConfig(), tensor.NewRNG(490))
		for li, b := range ref.Blocks {
			name := fmt.Sprintf("layer%d.attn", li)
			b.Attn.Wq.AddLoRA(name+".q_proj", 2, 4, tensor.NewRNG(1))
			b.Attn.Wv.AddLoRA(name+".v_proj", 2, 4, tensor.NewRNG(1))
			copy(b.Attn.Wq.LoRAA.W.Data, ad.Layers[li].Q.A.Data)
			copy(b.Attn.Wq.LoRAB.W.Data, ad.Layers[li].Q.B.Data)
			copy(b.Attn.Wv.LoRAA.W.Data, ad.Layers[li].V.A.Data)
			copy(b.Attn.Wv.LoRAB.W.Data, ad.Layers[li].V.B.Data)
		}
		want := ref.Generate(prompt, GenerateConfig{MaxTokens: 8})
		jobs = append(jobs, job{ad: ad, prompt: prompt, want: want})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for rep := 0; rep < 2; rep++ { // two rounds: caches/arenas fully private
		for ji := range jobs {
			wg.Add(1)
			go func(ji int) {
				defer wg.Done()
				j := jobs[ji]
				got := base.GenerateCached(j.prompt, GenerateConfig{MaxTokens: 8}, j.ad, nil, tensor.NewArena())
				if len(got) != len(j.want) {
					errs[ji] = fmt.Errorf("seq %d: got %v, want %v", ji, got, j.want)
					return
				}
				for i := range got {
					if got[i] != j.want[i] {
						errs[ji] = fmt.Errorf("seq %d: got %v, want %v", ji, got, j.want)
						return
					}
				}
			}(ji)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadParamsRoundTrip pins the structure-free checkpoint loader the
// registry uses: Save → LoadParams preserves names, shapes and bits.
func TestLoadParamsRoundTrip(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(495))
	ps := m.Params()
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("loaded %d params, want %d", len(got), len(ps))
	}
	for i, p := range ps {
		g := got[i]
		if g.Name != p.Name {
			t.Fatalf("param %d name %q, want %q", i, g.Name, p.Name)
		}
		if d := tensor.MaxAbsDiff(g.W, p.W); d != 0 {
			t.Fatalf("param %s data differs by %v", p.Name, d)
		}
	}
}

// TestLoRAFreezeADeltaIncluded guards the delta-extraction contract: with
// LoRA-FA the frozen A matrix must still travel with the artifact (see
// peft.Delta), otherwise the served adapter is missing half its weights.
// The decode path is exercised with an A-frozen model to make the failure
// observable end to end.
func TestDecodeLoRAFreezeAParity(t *testing.T) {
	m := NewTransformer(tinyConfig(), tensor.NewRNG(496))
	for li, b := range m.Blocks {
		name := fmt.Sprintf("layer%d.attn", li)
		b.Attn.Wq.AddLoRA(name+".q_proj", 2, 4, tensor.NewRNG(uint64(600+li)))
		b.Attn.Wv.AddLoRA(name+".v_proj", 2, 4, tensor.NewRNG(uint64(610+li)))
		b.Attn.Wq.LoRAA.Frozen = true
		b.Attn.Wv.LoRAA.Frozen = true
	}
	trainSteps(m, 3)
	prompt := []int{2, 7, 1}
	want := m.Generate(prompt, GenerateConfig{MaxTokens: 6})
	got := m.GenerateCached(prompt, GenerateConfig{MaxTokens: 6}, nil, nil, tensor.NewArena())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LoRA-FA decode diverges: got %v, want %v", got, want)
		}
	}
}
