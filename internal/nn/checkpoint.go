package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: a simple self-describing binary stream —
//
//	magic "LEXP" | version u32 | param count u32 |
//	per param: name (u32 len + bytes) | rank u32 | dims u32... | f32 data
//
// Only parameter values are stored; structure (config, PEFT modules) must
// match at load time, which Load verifies by name and shape.

const (
	ckptMagic   = "LEXP"
	ckptVersion = 1
)

// Save writes every parameter of the set to w.
func (ps ParamSet) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(ps))); err != nil {
		return err
	}
	for _, p := range ps {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 4*len(p.W.Data))
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a checkpoint written by Save into the set. Every stored
// parameter must exist with an identical shape; parameters present in the
// set but missing from the checkpoint are left untouched (so a backbone
// checkpoint can be loaded into a PEFT-extended model).
func (ps ParamSet) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	byName := make(map[string]*Parameter, len(ps))
	for _, p := range ps {
		byName[p.Name] = p
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return err
		}
		n := 1
		shape := make([]int, rank)
		for d := range shape {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return err
			}
			shape[d] = int(v)
			n *= int(v)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("nn: reading %s data: %w", name, err)
		}
		p, ok := byName[name]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not in model", name)
		}
		if p.W.Len() != n {
			return fmt.Errorf("nn: %s shape mismatch: checkpoint %v vs model %v", name, shape, p.W.Shape())
		}
		for j := 0; j < n; j++ {
			p.W.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
	}
	return nil
}

// LoadParams reads a checkpoint stream written by Save and returns a
// freshly allocated parameter set in checkpoint order — the loader for
// artifacts whose structure is not known in advance (the adapter deltas
// internal/registry stores).
func LoadParams(r io.Reader) (ParamSet, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return nil, fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != ckptVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	ps := make(ParamSet, 0, count)
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		var rank uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return nil, err
		}
		if rank > 8 {
			return nil, fmt.Errorf("nn: implausible rank %d for %s", rank, name)
		}
		n := 1
		shape := make([]int, rank)
		for d := range shape {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			shape[d] = int(v)
			n *= int(v)
		}
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("nn: reading %s data: %w", name, err)
		}
		p := NewParameter(name, shape...)
		for j := 0; j < n; j++ {
			p.W.Data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
		ps = append(ps, p)
	}
	return ps, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: implausible name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
