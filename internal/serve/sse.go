package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/slo"
)

// streamEvents serves GET /v1/jobs/{id}/events as a server-sent event
// stream: the job's full history is replayed, then live events follow
// until the terminal event (done/failed/cancelled) ends the stream. Each
// frame is
//
//	event: <kind>
//	id: <seq>
//	data: <event JSON>
//
// Clients that reconnect simply replay from the start — event logs are
// small (one frame per training step) and replay keeps the protocol
// stateless.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.store.Subscribe(id)
	if err != nil {
		writeError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ka, kaStop := s.keepaliveTicker()
	defer kaStop()
	for {
		select {
		case <-r.Context().Done():
			return // client went away
		case <-ka:
			if writeSSEKeepalive(w) != nil {
				return
			}
			flusher.Flush()
		case e, open := <-ch:
			if !open {
				return // terminal event delivered
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// keepaliveTicker returns the keepalive channel for an SSE loop (nil —
// never firing — when keepalives are disabled) plus its stop func.
func (s *Server) keepaliveTicker() (<-chan time.Time, func()) {
	if s.keepalive <= 0 {
		return nil, func() {}
	}
	t := time.NewTicker(s.keepalive)
	return t.C, t.Stop
}

// writeSSEKeepalive emits one SSE comment frame. Comments are invisible
// to EventSource consumers but keep idle connections alive through
// proxies that reap quiet streams.
func writeSSEKeepalive(w io.Writer) error {
	_, err := io.WriteString(w, ": keepalive\n\n")
	return err
}

func writeSSE(w http.ResponseWriter, e jobs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Kind, e.Seq, data)
	return err
}

// writeSSEAlert frames one alert transition for the /v1/alerts stream;
// the frame's event name is the new alert state.
func writeSSEAlert(w http.ResponseWriter, e slo.AlertEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.State, e.Seq, data)
	return err
}
