package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"longexposure/internal/jobs"
)

// streamEvents serves GET /v1/jobs/{id}/events as a server-sent event
// stream: the job's full history is replayed, then live events follow
// until the terminal event (done/failed/cancelled) ends the stream. Each
// frame is
//
//	event: <kind>
//	id: <seq>
//	data: <event JSON>
//
// Clients that reconnect simply replay from the start — event logs are
// small (one frame per training step) and replay keeps the protocol
// stateless.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.store.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer cancel()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return // client went away
		case e, open := <-ch:
			if !open {
				return // terminal event delivered
			}
			if err := writeSSE(w, e); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, e jobs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", e.Kind, e.Seq, data)
	return err
}
