package serve

import (
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"longexposure/internal/limit"
	"longexposure/internal/obs"
	"longexposure/internal/trace"
)

// LimitConfig configures the server's traffic-control plane: per-tenant
// and global token-bucket rate limiting plus load-shedding admission
// control, guarding the two expensive endpoints (POST /v1/generate and
// POST /v1/jobs). Shed and rate-limited requests receive 429 with a
// Retry-After header; every decision is metered through the server's
// metrics registry when one is attached.
type LimitConfig struct {
	// Limit configures the rate tiers; a zero value disables rate
	// limiting while keeping admission control.
	Limit limit.Config
	// TenantHeader names the header identifying the tenant for the
	// per-tenant tier (default "X-API-Key"). Requests without it share
	// the "anonymous" bucket.
	TenantHeader string
	// MaxInFlight bounds concurrently admitted requests per guarded
	// endpoint; 0 disables admission control.
	MaxInFlight int
	// MaxWait bounds the admission wait queue per endpoint (default 0:
	// shed immediately at the cap).
	MaxWait int
	// WaitTimeout bounds how long a queued request waits (default 2s).
	WaitTimeout time.Duration
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
}

// WithLimits enables the traffic-control plane.
func WithLimits(cfg LimitConfig) Option {
	return func(s *Server) {
		if cfg.TenantHeader == "" {
			cfg.TenantHeader = "X-API-Key"
		}
		s.limits = &cfg
	}
}

// guard is one endpoint's traffic control: the shared limiter plus the
// endpoint's admission controller and metric handles.
type guard struct {
	tenantHeader string
	limiter      *limit.Limiter            // nil: no rate limiting
	adm          *limit.Admission          // nil: no admission control
	m            *obs.EndpointLimitMetrics // nil: unmetered
}

// admit applies rate limiting then admission control. It either returns
// a release func (call when the request finishes) or writes the 429
// itself and returns ok=false. verdict reports the admission decision
// for the request's accounting event: "admitted", or the shed reason
// (rate_limited, queue_full, timeout, draining, cancelled); "" when no
// traffic control guards the route.
func (g *guard) admit(w http.ResponseWriter, r *http.Request) (release func(), verdict string, ok bool) {
	if g == nil {
		return func() {}, "", true
	}
	if g.limiter != nil {
		tenant := r.Header.Get(g.tenantHeader)
		if tenant == "" {
			tenant = "anonymous"
		}
		if allowed, retryAfter := g.limiter.Allow(tenant); !allowed {
			if g.m != nil {
				g.m.ShedRateLimited.Inc()
			}
			writeRetryAfter(w, retryAfter)
			writeError(w, r, http.StatusTooManyRequests, "rate limit exceeded for tenant %q", tenant)
			return nil, "rate_limited", false
		}
	}
	if g.adm == nil {
		return func() {}, "admitted", true
	}
	release, shed := g.adm.Acquire(r.Context())
	if shed != nil {
		writeRetryAfter(w, shed.RetryAfter)
		writeError(w, r, http.StatusTooManyRequests, "%v", shed)
		return nil, shed.Reason, false
	}
	return release, "admitted", true
}

// writeRetryAfter sets Retry-After in whole seconds, at least 1 — the
// contract load-shedding clients back off on.
func writeRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// statusRecorder captures the response status for the metrics middleware
// while passing Flush through — the SSE endpoints depend on it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// skipTrace exempts the observability surface itself from tracing and
// request logging: scrapes and trace reads would otherwise dominate the
// span ring and the log with self-traffic.
func skipTrace(path string) bool {
	return path == "/metrics" || strings.HasPrefix(path, "/debug/")
}

// observe is the combined request middleware: per-route latency and
// status metering (WithMetrics), a root span honoring any inbound W3C
// traceparent header (WithTracing), trace-id exemplars on the latency
// histogram when both are attached, and one structured record per
// request (WithLogger). The route label is the matched mux pattern
// (e.g. "POST /v1/generate"), read after routing so path parameters
// never explode cardinality — the mux stamps Pattern on the same request
// value we pass down.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.httpm != nil {
			s.httpm.InFlight.Inc()
			defer s.httpm.InFlight.Dec()
		}
		var sp *trace.Span
		if s.tracer != nil && !skipTrace(r.URL.Path) {
			remote, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
			if sp = s.tracer.StartRoot("http.request", remote); sp != nil {
				r = r.WithContext(trace.ContextWith(r.Context(), sp))
				w.Header().Set("X-Trace-Id", sp.TraceID().String())
			}
		}
		sw := &statusRecorder{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(t0)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if s.httpm != nil {
			lat := s.httpm.Latency.With(route)
			if sp != nil {
				lat.ObserveExemplar(dur.Seconds(), sp.TraceID().String())
			} else {
				lat.Observe(dur.Seconds())
			}
			s.httpm.Requests.With(route, statusClass(sw.status)).Inc()
		}
		sp.SetStr("route", route)
		sp.SetInt("status", int64(sw.status))
		if s.limits != nil {
			if tenant := r.Header.Get(s.limits.TenantHeader); tenant != "" {
				sp.SetStr("tenant", tenant)
			}
		}
		sp.Finish()
		if s.log != nil && !skipTrace(r.URL.Path) {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("duration", dur))
		}
	})
}

func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}
