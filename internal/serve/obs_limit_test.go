package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/limit"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
)

// newObsGatewayEnv builds a gateway env with the observability plane (and
// optionally the traffic-control plane) attached, returning the metrics
// registry so tests can read instrument values directly.
func newObsGatewayEnv(t *testing.T, workers, maxBatch int, limits *serve.LimitConfig) (*gwEnv, *obs.Registry) {
	t.Helper()
	obsReg := obs.NewRegistry()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg.Instrument(obs.NewRegistryMetrics(obsReg))
	store := jobs.NewStore(jobs.Config{Workers: workers, Registry: reg, Obs: obsReg})
	opts := []serve.Option{serve.WithRegistry(reg, maxBatch), serve.WithMetrics(obsReg)}
	if limits != nil {
		opts = append(opts, serve.WithLimits(*limits))
	}
	srv := serve.New(store, opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return &gwEnv{env: &env{t: t, store: store, ts: ts}, reg: reg}, obsReg
}

// metricValue reads a counter/gauge from the registry, defaulting to 0.
func metricValue(r *obs.Registry, name string, labels ...string) float64 {
	v, _ := r.Value(name, labels...)
	return v
}

// TestMetricsEndpoint runs one fine-tuning job and one generation, then
// checks GET /metrics serves Prometheus text format covering the serve,
// jobs, infer, and train instruments — the acceptance sweep for the
// observability plane.
func TestMetricsEndpoint(t *testing.T) {
	e, obsReg := newObsGatewayEnv(t, 1, 2, nil)

	// One sparse fine-tune job (exercises train + sparsity instruments
	// and publishes an adapter) …
	j := e.submit(map[string]any{
		"kind": "finetune",
		"finetune": map[string]any{
			"steps": 3, "batch": 1, "seq": 16, "blk": 8, "predictor_epochs": 1,
		},
	}, http.StatusAccepted)
	e.waitStatus(j.ID, jobs.StatusDone)

	// … and one base-desc generation (exercises the infer instruments).
	tokens, _ := e.generateSSE(map[string]any{
		"base":   map[string]any{"model": "sim-small", "activation": "relu", "seed": 1, "blk": 8, "prime": true},
		"prompt": []int{5, 6, 7},
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 4}},
	})
	if len(tokens) == 0 {
		t.Fatal("generation emitted no tokens")
	}

	resp, err := http.Get(e.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every subsystem must be present in the exposition.
	for _, series := range []string{
		"# TYPE lexp_jobs_submitted_total counter",
		"# TYPE lexp_train_step_seconds histogram",
		"lexp_train_step_seconds_bucket{le=",
		`lexp_jobs_completed_total{status="done"}`,
		`lexp_train_phase_seconds_total{phase="forward"}`,
		"lexp_infer_tokens_total",
		"lexp_infer_batch_occupancy_bucket",
		"lexp_gateway_engines",
		"lexp_registry_adapters",
		`lexp_http_requests_total{route="POST /v1/jobs",code="2xx"}`,
		"lexp_http_request_seconds_bucket",
		"lexp_sparse_attn_density",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics exposition missing %q", series)
		}
	}

	// Spot-check values through the registry.
	if v := metricValue(obsReg, "lexp_jobs_submitted_total"); v != 1 {
		t.Errorf("jobs submitted = %v, want 1", v)
	}
	if v := metricValue(obsReg, "lexp_jobs_completed_total", "done"); v != 1 {
		t.Errorf("jobs done = %v, want 1", v)
	}
	if v := metricValue(obsReg, "lexp_train_steps_total"); v < 3 {
		t.Errorf("train steps = %v, want >= 3", v)
	}
	if v := metricValue(obsReg, "lexp_infer_tokens_total"); v < 4 {
		t.Errorf("infer tokens = %v, want >= 4", v)
	}
	if v := metricValue(obsReg, "lexp_train_arena_gets_total"); v <= 0 {
		t.Errorf("arena gets = %v, want > 0", v)
	}
	if v := metricValue(obsReg, "lexp_registry_adapters"); v != 1 {
		t.Errorf("registry adapters = %v, want 1", v)
	}
}

// TestJobsPagination pins ?limit=/?offset= semantics: stable submit-time
// ordering, X-Total-Count, and 400s on malformed parameters.
func TestJobsPagination(t *testing.T) {
	e := newEnv(t, 1)
	var ids []string
	for i := 0; i < 5; i++ {
		j := e.submit(map[string]any{
			"kind": "finetune",
			"finetune": map[string]any{
				"sparse": false, "steps": 1, "batch": 1, "seq": 8, "seed": 100 + i,
			},
		}, http.StatusAccepted)
		ids = append(ids, j.ID)
		e.waitStatus(j.ID, jobs.StatusDone)
	}

	page := func(query string, wantTotal int, wantIDs ...string) {
		t.Helper()
		resp, body := e.do("GET", "/v1/jobs"+query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: %d: %s", query, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Total-Count"); got != "" && wantTotal >= 0 {
			if want := intToStr(wantTotal); got != want {
				t.Fatalf("query %s: X-Total-Count %s, want %s", query, got, want)
			}
		}
		var listed []jobs.Job
		if err := json.Unmarshal(body, &listed); err != nil {
			t.Fatalf("query %s: %v: %s", query, err, body)
		}
		if len(listed) != len(wantIDs) {
			t.Fatalf("query %s: %d jobs, want %d (%s)", query, len(listed), len(wantIDs), body)
		}
		for i, want := range wantIDs {
			if listed[i].ID != want {
				t.Fatalf("query %s: job[%d] = %s, want %s", query, i, listed[i].ID, want)
			}
		}
	}

	page("?limit=2", 5, ids[0], ids[1])
	page("?limit=2&offset=1", 5, ids[1], ids[2])
	page("?offset=4", 5, ids[4])
	page("?offset=99", 5)
	page("?status=done&limit=3&offset=3", 5, ids[3], ids[4])
	page("?status=failed", 0)
	page("", 5, ids...) // no pagination: full list, unchanged shape

	for _, bad := range []string{"?limit=-1", "?limit=x", "?offset=-2", "?offset=1.5"} {
		resp, _ := e.do("GET", "/v1/jobs"+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs%s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

func intToStr(n int) string { return string(rune('0' + n)) }

// TestLivenessReadinessSplit pins the /healthz vs /readyz contract:
// liveness stays 200 through a drain while readiness flips to 503 the
// moment shutdown starts.
func TestLivenessReadinessSplit(t *testing.T) {
	store := jobs.NewStore(jobs.Config{Workers: 1})
	srv := serve.New(store)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	e := &env{t: t, store: store, ts: ts}

	probe := func(path string) (int, string) {
		t.Helper()
		resp, body := e.do("GET", path, nil)
		var out struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v: %s", path, err, body)
		}
		return resp.StatusCode, out.Status
	}

	if code, status := probe("/readyz"); code != http.StatusOK || status != "ready" {
		t.Fatalf("idle readyz: %d %q", code, status)
	}

	// Park a long-running job so the drain has something to wait on.
	slow := e.submit(map[string]any{
		"kind": "finetune",
		"finetune": map[string]any{
			"sparse": false, "steps": 4, "epochs": 500, "batch": 1, "seq": 12,
		},
	}, http.StatusAccepted)
	e.waitStatus(slow.ID, jobs.StatusRunning)

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Mid-drain: not ready, but alive.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, status := probe("/readyz")
		if code == http.StatusServiceUnavailable {
			if status != "draining" {
				t.Fatalf("draining readyz status %q", status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, status := probe("/healthz"); code != http.StatusOK || status != "ok" {
		t.Fatalf("healthz during drain: %d %q (liveness must not flip)", code, status)
	}

	// Cancel the parked job so the drain completes cleanly.
	if resp, body := e.do("DELETE", "/v1/jobs/"+slow.ID, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel during drain: %d: %s", resp.StatusCode, body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code, _ := probe("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown readyz: %d, want 503", code)
	}
}

// saturationBody is the long-running generation the saturation test uses:
// a sim-OPT-125M base decoded to its MaxSeq bound (max_tokens clamps), so
// holders stay in flight long enough to observe shedding deterministically.
func saturationBody() map[string]any {
	return map[string]any{
		"base":   map[string]any{"model": "OPT-125M", "activation": "relu", "seed": 1, "blk": 8, "prime": true},
		"prompt": []int{5, 6, 7},
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 100000, "seed": 1}},
	}
}

// TestGenerateSaturationSheds is the concurrency-cap acceptance test:
// with MaxInFlight=2 and no wait queue, two long generations hold the
// slots, further requests are shed with 429 + Retry-After (and readiness
// reports shedding), and the admitted generations finish bit-identical to
// an unthrottled server's output.
func TestGenerateSaturationSheds(t *testing.T) {
	// On a single-CPU runner GOMAXPROCS=1 lets the compute-bound decode
	// goroutines starve this goroutine for the holders' whole lifetime —
	// no probe could ever land inside the saturation window. Extra Ps get
	// time-sliced by the OS, restoring interleaving without changing any
	// semantics under test.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	// The throttled engine decodes one sequence at a time (MaxBatch 1), so
	// the second holder keeps its admission slot parked in the engine
	// queue until the first full generation retires — the saturation
	// window the probes below rely on is a whole generation wide, not a
	// scheduling race.
	throttled, obsReg := newObsGatewayEnv(t, 1, 1, &serve.LimitConfig{MaxInFlight: 2, MaxWait: 0})
	unthrottled, _ := newObsGatewayEnv(t, 1, 2, nil)

	// Unthrottled reference run (deterministic: same base, seed, greedy).
	wantTokens, wantReason := unthrottled.generateSSE(saturationBody())
	if len(wantTokens) == 0 {
		t.Fatal("reference generation emitted no tokens")
	}

	// Each round saturates the controller with two long "holder"
	// generations and probes with extra requests while both admission
	// slots are held. On a single-CPU runner the compute-bound decode
	// goroutines can starve this goroutine past the holders' lifetime, so
	// a round whose probes arrived after the window closed (observable:
	// the probe was admitted) is retried rather than failed — every
	// admitted generation, holder or late probe, must still be
	// bit-identical to the unthrottled reference.
	const holders = 2
	const probes = 3
	checkTokens := func(who string, tokens []int, reason string) {
		t.Helper()
		if reason != wantReason {
			t.Fatalf("%s reason %q, want %q", who, reason, wantReason)
		}
		if len(tokens) != len(wantTokens) {
			t.Fatalf("%s emitted %d tokens, want %d", who, len(tokens), len(wantTokens))
		}
		for k := range wantTokens {
			if tokens[k] != wantTokens[k] {
				t.Fatalf("%s token %d = %d, want %d (throttled output diverged)", who, k, tokens[k], wantTokens[k])
			}
		}
	}

	saturated := false
	for round := 0; round < 8 && !saturated; round++ {
		var wg sync.WaitGroup
		gotTokens := make([][]int, holders)
		gotReasons := make([]string, holders)
		for i := 0; i < holders; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				gotTokens[i], gotReasons[i] = throttled.generateSSE(saturationBody())
			}(i)
		}

		// Wait until both holders are admitted and in flight.
		deadline := time.Now().Add(30 * time.Second)
		for metricValue(obsReg, "lexp_limit_inflight", "POST /v1/generate") < holders {
			if time.Now().After(deadline) {
				t.Fatal("holders never filled the admission slots")
			}
			time.Sleep(time.Millisecond)
		}

		roundShed := 0
		for i := 0; i < probes; i++ {
			resp, err := http.Post(throttled.ts.URL+"/v1/generate", "application/json",
				strings.NewReader(`{"base":{"model":"OPT-125M","activation":"relu","seed":1,"blk":8,"prime":true},"prompt":[5,6,7],"decode":{"sampling":{"max_tokens":100000,"seed":1}}}`))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				roundShed++
				if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
					t.Fatalf("round %d probe %d: Retry-After %q, want >= 1s", round, i, ra)
				}
			case http.StatusOK:
				// Window closed (a holder finished first): the admitted
				// probe must still match the reference bit for bit.
				tokens, reason := parseSSETokens(t, string(body))
				checkTokens("late probe", tokens, reason)
			default:
				t.Fatalf("round %d probe %d: %d: %s", round, i, resp.StatusCode, body)
			}
		}

		if roundShed == probes {
			// Probes ran inside the saturation window. Readiness must
			// report full shedding while both slots are still held —
			// verifiable only if the window is still open when we probe
			// it, so tolerate "ready" (window closed) without failing.
			resp, body := throttled.do("GET", "/readyz", nil)
			if resp.StatusCode == http.StatusServiceUnavailable {
				if !strings.Contains(string(body), "shedding") {
					t.Fatalf("readyz under full shed: %d: %s", resp.StatusCode, body)
				}
				saturated = true
			}
		}

		wg.Wait()
		for i := 0; i < holders; i++ {
			checkTokens("holder", gotTokens[i], gotReasons[i])
		}
	}
	if !saturated {
		t.Fatal("no round observed full shedding (429s + not-ready) while both slots were held")
	}

	if v := metricValue(obsReg, "lexp_limit_admitted_total", "POST /v1/generate"); v < holders {
		t.Errorf("admitted = %v, want >= %d", v, holders)
	}
	if v := metricValue(obsReg, "lexp_limit_shed_total", "POST /v1/generate", "queue_full"); v < probes {
		t.Errorf("shed queue_full = %v, want >= %d", v, probes)
	}
	// Releases run in handler defers, which the server executes after the
	// client already saw EOF — poll briefly instead of asserting instantly.
	deadline := time.Now().Add(10 * time.Second)
	for metricValue(obsReg, "lexp_limit_inflight", "POST /v1/generate") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight never drained to 0 (stuck at %v)",
				metricValue(obsReg, "lexp_limit_inflight", "POST /v1/generate"))
		}
		time.Sleep(time.Millisecond)
	}
}

// parseSSETokens decodes a buffered SSE generate response body.
func parseSSETokens(t *testing.T, body string) (tokens []int, reason string) {
	t.Helper()
	event := ""
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			switch event {
			case "token":
				var tok struct {
					Token int `json:"token"`
				}
				if err := json.Unmarshal([]byte(payload), &tok); err != nil {
					t.Fatalf("bad token frame %q: %v", payload, err)
				}
				tokens = append(tokens, tok.Token)
			case "done":
				var done struct {
					Reason string `json:"reason"`
				}
				if err := json.Unmarshal([]byte(payload), &done); err != nil {
					t.Fatalf("bad done frame %q: %v", payload, err)
				}
				return tokens, done.Reason
			case "error":
				t.Fatalf("error frame: %s", payload)
			}
		}
	}
	t.Fatalf("SSE body ended without done frame")
	return nil, ""
}

// TestTenantRateLimit pins the per-tenant tier: each API key gets its own
// bucket, anonymous requests share one, and denials carry Retry-After.
func TestTenantRateLimit(t *testing.T) {
	e, obsReg := newObsGatewayEnv(t, 1, 2, &serve.LimitConfig{
		Limit: limit.Config{Rate: 0.001, Burst: 1}, // effectively: one request per tenant
	})

	gen := func(tenant string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", e.ts.URL+"/v1/generate",
			strings.NewReader(`{"base":{"model":"sim-small","activation":"relu","seed":1,"blk":8,"prime":true},"prompt":[1,2],"decode":{"sampling":{"max_tokens":1}}}`))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-API-Key", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := gen("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice 1: %d", resp.StatusCode)
	}
	if resp := gen("alice"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice 2: %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited response without Retry-After")
	}
	if resp := gen("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob (fresh tenant): %d", resp.StatusCode)
	}
	if resp := gen(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous 1: %d", resp.StatusCode)
	}
	if resp := gen(""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("anonymous 2: %d, want 429", resp.StatusCode)
	}
	if v := metricValue(obsReg, "lexp_limit_shed_total", "POST /v1/generate", "rate_limited"); v != 2 {
		t.Errorf("rate_limited sheds = %v, want 2", v)
	}
	if v := metricValue(obsReg, "lexp_limit_tenants"); v != 3 { // alice, bob, anonymous
		t.Errorf("tenant buckets = %v, want 3", v)
	}
}
