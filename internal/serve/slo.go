package serve

import (
	"net/http"

	"longexposure/internal/slo"
)

// WithSLO attaches an SLO engine (internal/slo): GET /debug/slo serves
// the live objective report with error-budget arithmetic, GET /v1/alerts
// streams burn-rate alert transitions as SSE (recent transitions
// replayed, then live), and — when the engine carries a flight
// recorder — GET /debug/flightrecorder serves the black-box snapshot
// and the on-disk dump inventory. The engine also becomes a readiness
// input: /readyz reports 503 "slo_firing" while any critical objective
// is firing. The caller owns the engine lifecycle (Start/Stop);
// serve only reads from it.
func WithSLO(eng *slo.Engine) Option {
	return func(s *Server) { s.slo = eng }
}

// debugSLO serves GET /debug/slo.
func (s *Server) debugSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// flightRecorderResponse is the GET /debug/flightrecorder body: the live
// black-box snapshot (same payload a dump file carries) plus the dumps
// already on disk.
type flightRecorderResponse struct {
	Snapshot slo.Dump       `json:"snapshot"`
	Dumps    []slo.DumpFile `json:"dumps"`
}

// debugFlightRecorder serves GET /debug/flightrecorder (mounted only
// when the engine has a recorder attached).
func (s *Server) debugFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	rec := s.slo.Recorder()
	writeJSON(w, http.StatusOK, flightRecorderResponse{
		Snapshot: rec.Snapshot("debug-endpoint"),
		Dumps:    rec.List(),
	})
}

// streamAlerts serves GET /v1/alerts: recent alert transitions replayed,
// then live ones, as SSE frames
//
//	event: <state>
//	id: <seq>
//	data: <AlertEvent JSON>
//
// The stream ends when the client disconnects, the engine stops, or the
// server begins draining (streams must not pin a closing listener).
func (s *Server) streamAlerts(w http.ResponseWriter, r *http.Request) {
	ch, cancel := s.slo.SubscribeAlerts()
	defer cancel()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ka, kaStop := s.keepaliveTicker()
	defer kaStop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.shutdownC:
			return
		case <-ka:
			if writeSSEKeepalive(w) != nil {
				return
			}
			flusher.Flush()
		case e, open := <-ch:
			if !open {
				return // engine stopped
			}
			if err := writeSSEAlert(w, e); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
