package serve

import (
	"net/http"
	"net/http/pprof"

	"longexposure/internal/trace"
)

// tracesResponse is the GET /debug/traces body: recently finished traces
// assembled into span trees, newest first, plus the slowest individual
// spans the tracer has retained since startup.
type tracesResponse struct {
	Recent  []trace.TraceRecord `json:"recent"`
	Slowest []*trace.SpanRecord `json:"slowest"`
}

// debugTraces serves GET /debug/traces (mounted by WithTracing).
// ?limit= bounds how many recent traces are assembled (default 20);
// ?trace_id= instead returns exactly the one named trace (the 32-char
// hex id every error envelope and X-Trace-Id header carries), 404 when
// its spans have already rotated out of the ring. The endpoint is
// diagnostic: it reads the lock-free span ring without stopping
// writers, so a trace finishing mid-read may be partially represented —
// acceptable for a debugging surface, and the reason this endpoint is
// itself exempt from tracing.
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("trace_id"); id != "" {
		if len(id) != 32 || !isHex(id) {
			writeError(w, r, http.StatusBadRequest, "invalid trace_id %q: want 32 hex characters", id)
			return
		}
		rec, ok := s.tracer.SnapshotTrace(id)
		if !ok {
			writeError(w, r, http.StatusNotFound, "trace %s not found (it may have rotated out of the ring)", id)
			return
		}
		writeJSON(w, http.StatusOK, tracesResponse{Recent: []trace.TraceRecord{rec}})
		return
	}
	limitN, ok := queryInt(w, r, r.URL.Query().Get("limit"), "limit")
	if !ok {
		return
	}
	recent, slowest := s.tracer.Snapshot(limitN)
	writeJSON(w, http.StatusOK, tracesResponse{Recent: recent, Slowest: slowest})
}

// isHex reports whether id is entirely lowercase-or-uppercase hex.
func isHex(id string) bool {
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

// mountPprof exposes net/http/pprof under /debug/pprof/ (the Index
// handler serves the named profiles — heap, goroutine, block, mutex —
// from the trailing-slash subtree).
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
