package serve

import (
	"net/http"
	"net/http/pprof"

	"longexposure/internal/trace"
)

// tracesResponse is the GET /debug/traces body: recently finished traces
// assembled into span trees, newest first, plus the slowest individual
// spans the tracer has retained since startup.
type tracesResponse struct {
	Recent  []trace.TraceRecord `json:"recent"`
	Slowest []*trace.SpanRecord `json:"slowest"`
}

// debugTraces serves GET /debug/traces (mounted by WithTracing).
// ?limit= bounds how many recent traces are assembled (default 20).
// The endpoint is diagnostic: it reads the lock-free span ring without
// stopping writers, so a trace finishing mid-read may be partially
// represented — acceptable for a debugging surface, and the reason this
// endpoint is itself exempt from tracing.
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	limitN, ok := queryInt(w, r, r.URL.Query().Get("limit"), "limit")
	if !ok {
		return
	}
	recent, slowest := s.tracer.Snapshot(limitN)
	writeJSON(w, http.StatusOK, tracesResponse{Recent: recent, Slowest: slowest})
}

// mountPprof exposes net/http/pprof under /debug/pprof/ (the Index
// handler serves the named profiles — heap, goroutine, block, mutex —
// from the trailing-slash subtree).
func (s *Server) mountPprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
