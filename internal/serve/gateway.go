package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"longexposure/internal/account"
	"longexposure/internal/infer"
	"longexposure/internal/jobs"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/predictor"
	"longexposure/internal/registry"
)

// maxEngines bounds how many distinct base models the gateway keeps in
// memory. Registry-published adapters funnel into very few bases (equal
// BaseDesc → equal hash → shared engine); the cap exists because
// /v1/generate also accepts client-supplied base descriptions, which must
// not be able to grow models and scheduler goroutines without bound.
const maxEngines = 8

// gateway is the inference half of the API: the adapter registry plus a
// lazily-built infer.Engine per distinct base description (adapters that
// share a BaseHash share one engine — one frozen base model in memory,
// however many adapters are served from it), and a compiled-adapter cache
// keyed by artifact id — artifacts are immutable and content-addressed,
// so a compile is valid until the artifact is deleted.
type gateway struct {
	reg      *registry.Store
	maxBatch int

	// Wired by serve.New when WithMetrics is set (nil otherwise).
	metrics      *obs.GatewayMetrics
	inferMetrics *obs.InferMetrics    // shared by every engine built here
	sparsity     *obs.SparsityMetrics // serving-density gauges, shared by every planner
	// Wired by serve.New when WithAccounting is set: every engine built
	// here emits one wide event per retired sequence into the plane.
	account *account.Plane

	mu        sync.Mutex
	engines   map[string]*infer.Engine     // by BaseDesc.Hash()
	compiled  map[string]*nn.DecodeAdapter // by artifact id
	baseBytes map[string]float64           // resident weight bytes by precision (gauge mirror)
}

func newGateway(reg *registry.Store, maxBatch int) *gateway {
	return &gateway{
		reg:       reg,
		maxBatch:  maxBatch,
		engines:   map[string]*infer.Engine{},
		compiled:  map[string]*nn.DecodeAdapter{},
		baseBytes: map[string]float64{},
	}
}

// engineFor returns (building if needed) the engine serving a base.
func (g *gateway) engineFor(desc registry.BaseDesc) (*infer.Engine, error) {
	key := desc.Hash()
	g.mu.Lock()
	defer g.mu.Unlock()
	if eng, ok := g.engines[key]; ok {
		return eng, nil
	}
	if len(g.engines) >= maxEngines {
		return nil, fmt.Errorf("serve: engine cache full (%d distinct bases); delete adapters or restart to serve new bases", maxEngines)
	}
	base, err := jobs.BuildBase(desc)
	if err != nil {
		return nil, err
	}
	// Every f32 engine gets a serving planner: contextual sparsity is then
	// a per-request decision (decode.sparsity.mode), not a deployment one.
	// Compressed bases (f16/int8/nm24) serve dense — the planner reads the
	// f32 MLP weights Compress freed, and the sparse kernels do too.
	var planner *predictor.ServingPlanner
	if !nn.CompressedPrecision(desc.Precision) {
		planner = predictor.NewServingPlanner(base, nil, predictor.ServingConfig{Metrics: g.sparsity})
	}
	eng := infer.New(base, infer.Config{MaxBatch: g.maxBatch, Metrics: g.inferMetrics, Planner: planner, Account: g.account})
	g.engines[key] = eng
	if g.metrics != nil {
		g.metrics.Engines.Set(float64(len(g.engines)))
		prec := desc.Precision
		if prec == "" {
			prec = nn.PrecisionF32
		}
		g.baseBytes[prec] += float64(base.WeightBytes())
		g.metrics.BaseWeightBytes.With(prec).Set(g.baseBytes[prec])
	}
	return eng, nil
}

// adapterFor loads and compiles an artifact, serving repeats from the
// compiled cache (no disk read on the hot path).
func (g *gateway) adapterFor(id string) (registry.Manifest, *nn.DecodeAdapter, error) {
	man, ok := g.reg.Get(id)
	if !ok {
		return registry.Manifest{}, nil, fmt.Errorf("registry: unknown adapter %q", id)
	}
	g.mu.Lock()
	ad, hit := g.compiled[id]
	g.mu.Unlock()
	if hit {
		if g.metrics != nil {
			g.metrics.AdapterHits.Inc()
		}
		return man, ad, nil
	}
	if g.metrics != nil {
		g.metrics.AdapterMisses.Inc()
	}
	man, params, err := g.reg.Load(id)
	if err != nil {
		return registry.Manifest{}, nil, err
	}
	eng, err := g.engineFor(man.Base)
	if err != nil {
		return registry.Manifest{}, nil, err
	}
	ad, err = infer.Compile(man.Method, man.Rank, man.Alpha, eng.Base().Cfg, params)
	if err != nil {
		return registry.Manifest{}, nil, err
	}
	g.mu.Lock()
	g.compiled[id] = ad
	g.mu.Unlock()
	return man, ad, nil
}

// evict drops an artifact's compiled form (on delete).
func (g *gateway) evict(id string) {
	g.mu.Lock()
	_, present := g.compiled[id]
	delete(g.compiled, id)
	g.mu.Unlock()
	if present && g.metrics != nil {
		g.metrics.AdapterEvictions.Inc()
	}
}

// close shuts every engine down.
func (g *gateway) close() {
	g.mu.Lock()
	engines := g.engines
	g.engines = map[string]*infer.Engine{}
	g.compiled = map[string]*nn.DecodeAdapter{}
	resident := g.baseBytes
	g.baseBytes = map[string]float64{}
	g.mu.Unlock()
	for _, eng := range engines {
		eng.Close()
	}
	if g.metrics != nil {
		g.metrics.Engines.Set(0)
		for prec := range resident {
			g.metrics.BaseWeightBytes.With(prec).Set(0)
		}
	}
}

// ---- handlers ----

func (s *Server) listAdapters(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.gw.reg.List())
}

func (s *Server) getAdapter(w http.ResponseWriter, r *http.Request) {
	man, ok := s.gw.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown adapter %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, man)
}

func (s *Server) deleteAdapter(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.gw.reg.Delete(id); err != nil {
		writeError(w, r, http.StatusNotFound, "%v", err)
		return
	}
	s.gw.evict(id)
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{id})
}

// samplingOptions is the decode.sampling block of a generate request.
type samplingOptions struct {
	Temperature float64 `json:"temperature,omitempty"`
	MaxTokens   int     `json:"max_tokens,omitempty"`
	StopToken   int     `json:"stop_token,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
}

// decodeOptions is the structured per-request decode configuration: how
// to sample and whether to decode sparsely. The zero value (or an absent
// block) reproduces the default dense greedy decode exactly.
type decodeOptions struct {
	Sampling *samplingOptions    `json:"sampling,omitempty"`
	Sparsity *nn.SparsityOptions `json:"sparsity,omitempty"`
}

// generateRequest is the POST /v1/generate body. Exactly one of Adapter
// (a registry id) or Base (an explicit base description, served without a
// delta) selects the model. Sampling parameters live under Decode; the
// old flat top-level fields are REMOVED — they stay in the struct only so
// a request still sending one gets a targeted 400 naming its
// decode.sampling replacement instead of a generic unknown-field error.
type generateRequest struct {
	Adapter string             `json:"adapter,omitempty"`
	Base    *registry.BaseDesc `json:"base,omitempty"`

	Prompt []int          `json:"prompt"`
	Decode *decodeOptions `json:"decode,omitempty"`

	// Removed flat sampling fields (see struct comment).
	MaxTokens   int     `json:"max_tokens,omitempty"`
	Temperature float64 `json:"temperature,omitempty"`
	StopToken   int     `json:"stop_token,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
}

// resolveDecode validates the structured decode block and rejects any use
// of the removed flat sampling fields, naming the replacement field.
func (req *generateRequest) resolveDecode() (samplingOptions, nn.SparsityOptions, error) {
	for _, f := range []struct {
		set  bool
		name string
	}{
		{req.MaxTokens != 0, "max_tokens"},
		{req.Temperature != 0, "temperature"},
		{req.StopToken != 0, "stop_token"},
		{req.Seed != 0, "seed"},
	} {
		if f.set {
			return samplingOptions{}, nn.SparsityOptions{},
				fmt.Errorf("flat field %q has been removed; set decode.sampling.%s instead", f.name, f.name)
		}
	}
	var sampling samplingOptions
	var sparsity nn.SparsityOptions
	if req.Decode != nil {
		if req.Decode.Sampling != nil {
			sampling = *req.Decode.Sampling
		}
		if req.Decode.Sparsity != nil {
			sparsity = *req.Decode.Sparsity
		}
	}
	if err := sparsity.Validate("decode.sparsity"); err != nil {
		return samplingOptions{}, nn.SparsityOptions{}, err
	}
	return sampling, sparsity, nil
}

// generate serves POST /v1/generate as a server-sent event stream: one
// "token" frame per emitted token, then a terminal "done" frame with the
// finish reason and the full token list (or an "error" frame).
func (s *Server) generate(w http.ResponseWriter, r *http.Request) {
	release, verdict, ok := s.gdGenerate.admit(w, r)
	if !ok {
		s.accountShed(r, account.KindGenerate, "POST /v1/generate", verdict)
		return
	}
	defer release()
	var req generateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding generate request: %v", err)
		return
	}
	sampling, sparsity, err := req.resolveDecode()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	var (
		desc    registry.BaseDesc
		adapter *nn.DecodeAdapter
	)
	switch {
	case req.Adapter != "" && req.Base != nil:
		writeError(w, r, http.StatusBadRequest, "set adapter or base, not both")
		return
	case req.Adapter != "":
		man, ad, err := s.gw.adapterFor(req.Adapter)
		switch {
		case err != nil && !s.gw.reg.Has(req.Adapter):
			writeError(w, r, http.StatusNotFound, "%v", err)
			return
		case errors.Is(err, infer.ErrNotServable):
			writeError(w, r, http.StatusUnprocessableEntity, "%v", err)
			return
		case err != nil:
			// The artifact exists but could not be served (load, base
			// rebuild, or compile failure) — a server-side condition.
			writeError(w, r, http.StatusInternalServerError, "%v", err)
			return
		}
		adapter, desc = ad, man.Base
	case req.Base != nil:
		desc = *req.Base
	default:
		writeError(w, r, http.StatusBadRequest, "a generate request needs an adapter id or a base description")
		return
	}
	if sparsity.Enabled() && nn.CompressedPrecision(desc.Precision) {
		writeError(w, r, http.StatusBadRequest,
			"decode.sparsity.mode %q is unavailable on a %s-precision base: compressed bases serve dense", sparsity.Mode, desc.Precision)
		return
	}

	eng, err := s.gw.engineFor(desc)
	if err != nil {
		// For adapter requests the engine already exists (adapterFor built
		// it); reaching here means a client-supplied base was rejected.
		writeError(w, r, http.StatusBadRequest, "building base: %v", err)
		return
	}
	stream, err := eng.Generate(r.Context(), infer.Request{
		Prompt:       req.Prompt,
		MaxTokens:    sampling.MaxTokens,
		Temperature:  sampling.Temperature,
		StopToken:    sampling.StopToken,
		Seed:         sampling.Seed,
		Sparsity:     sparsity,
		Adapter:      adapter,
		AdapterID:    req.Adapter,
		Tenant:       s.tenantOf(r),
		Route:        "POST /v1/generate",
		LimitVerdict: verdict,
	})
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ka, kaStop := s.keepaliveTicker()
	defer kaStop()
	var tokens []int
	for {
		var ev infer.Event
		var open bool
		select {
		case <-ka:
			if writeSSEKeepalive(w) != nil {
				return
			}
			flusher.Flush()
			continue
		case ev, open = <-stream.Events:
			if !open {
				return
			}
		}
		switch {
		case ev.Err != nil:
			writeSSEFrame(w, "error", struct {
				Error  string `json:"error"`
				Reason string `json:"reason,omitempty"`
			}{ev.Err.Error(), ev.Reason})
			flusher.Flush()
			return
		case ev.Done:
			writeSSEFrame(w, "done", struct {
				Tokens  []int  `json:"tokens"`
				Reason  string `json:"reason"`
				Adapter string `json:"adapter,omitempty"`
			}{tokens, ev.Reason, req.Adapter})
			flusher.Flush()
			return
		default:
			tokens = append(tokens, ev.Token)
			writeSSEFrame(w, "token", struct {
				Token int `json:"token"`
				Index int `json:"index"`
			}{ev.Token, ev.Index})
			flusher.Flush()
		}
	}
}

func writeSSEFrame(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// shutdownGateway is called from Server.Shutdown.
func (s *Server) shutdownGateway(context.Context) {
	if s.gw != nil {
		s.gw.close()
	}
}
