package serve_test

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/jobs"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
	"longexposure/internal/trace"
)

// acctEnv is a fully instrumented server: registry-backed gateway,
// metrics, tracing, and the wide-event accounting plane persisting to
// dir (so tests can reopen it and check replay).
type acctEnv struct {
	*env
	obsReg *obs.Registry
	plane  *account.Plane
	dir    string
}

func newAccountEnv(t *testing.T, workers int) *acctEnv {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	obsReg := obs.NewRegistry()
	plane, err := account.New(account.Config{Dir: dir, Metrics: obs.NewAccountMetrics(obsReg)})
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{SampleRatio: 1, Seed: 11})
	store := jobs.NewStore(jobs.Config{Workers: workers, Registry: reg, Obs: obsReg, Tracer: tracer, Account: plane})
	srv := serve.New(store,
		serve.WithRegistry(reg, 2),
		serve.WithMetrics(obsReg),
		serve.WithTracing(tracer),
		serve.WithAccounting(plane, true),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		plane.Close()
	})
	return &acctEnv{env: &env{t: t, store: store, ts: ts}, obsReg: obsReg, plane: plane, dir: dir}
}

// simBase is a 4-layer client-supplied base description: auto-mode
// sparsity keeps the first and last layers dense, so a ≥3-layer base is
// required for any saving to be attributable at all.
func simBase() map[string]any {
	return map[string]any{"model": "OPT-125M", "activation": "relu", "seed": 1, "blk": 8, "prime": true}
}

// generateAs posts a tenant-stamped /v1/generate and drains the SSE
// stream to its done frame, returning the finish reason.
func (e *acctEnv) generateAs(tenant string, sparsity map[string]any) string {
	e.t.Helper()
	body := map[string]any{
		"base": simBase(), "prompt": []int{5, 6, 7},
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 6}},
	}
	if sparsity != nil {
		body["decode"].(map[string]any)["sparsity"] = sparsity
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		e.t.Fatal(err)
	}
	req, err := http.NewRequest("POST", e.ts.URL+"/v1/generate", &buf)
	if err != nil {
		e.t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		e.t.Fatalf("POST /v1/generate as %s: %d: %s", tenant, resp.StatusCode, out)
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "done":
			var done struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &done); err != nil {
				e.t.Fatal(err)
			}
			return done.Reason
		case strings.HasPrefix(line, "data: ") && event == "error":
			e.t.Fatalf("error frame: %s", line)
		}
	}
	e.t.Fatal("stream ended without done frame")
	return ""
}

// getJSON fetches a path and decodes the JSON body into out.
func (e *acctEnv) getJSON(path string, out any) {
	e.t.Helper()
	resp, body := e.do("GET", path, nil)
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		e.t.Fatalf("GET %s: bad body %s: %v", path, body, err)
	}
}

// waitEvents polls until the plane holds want events matching f.
func (e *acctEnv) waitEvents(f account.Filter, want int) []account.Event {
	e.t.Helper()
	var evs []account.Event
	for i := 0; i < 1000; i++ {
		if evs = e.plane.Events(f); len(evs) >= want {
			return evs
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.t.Fatalf("plane holds %d events matching %+v, want %d", len(evs), f, want)
	return nil
}

type usageBody struct {
	Tenants map[string]account.Usage `json:"tenants"`
	Total   account.Usage            `json:"total"`
}

type eventsBody struct {
	Count  int             `json:"count"`
	Events []account.Event `json:"events"`
}

// TestAccountingEndToEnd is the acceptance walk-through for the
// accounting plane over HTTP: two tenants drive sparse generate traffic,
// and the per-tenant /v1/usage rollups must agree with the raw
// /debug/events records (joined per tenant and per trace id) and with
// the global lexp_account_* counters; auto-mode sparsity attributes a
// positive saving while forced density 1.0 attributes exactly zero; and
// a plane reopened over the same directory replays the same totals.
func TestAccountingEndToEnd(t *testing.T) {
	e := newAccountEnv(t, 1)

	// alpha: two auto-sparsity requests (4-layer base → saving > 0).
	// beta: one forced density-1.0 request (saving == 0 exactly).
	for i := 0; i < 2; i++ {
		if r := e.generateAs("alpha", map[string]any{"mode": "auto"}); r != "length" {
			t.Fatalf("alpha finish reason %q", r)
		}
	}
	if r := e.generateAs("beta", map[string]any{"mode": "forced", "mlp_density": 1.0, "attn_density": 1.0}); r != "length" {
		t.Fatalf("beta finish reason %q", r)
	}
	e.waitEvents(account.Filter{Kind: account.KindGenerate}, 3)

	// Raw event surface: identities stamped, FLOP attribution per mode.
	var evs eventsBody
	e.getJSON("/debug/events?kind=generate", &evs)
	if evs.Count != 3 || len(evs.Events) != 3 {
		t.Fatalf("GET /debug/events: %d events, want 3", evs.Count)
	}
	var alphaSaved int64
	for _, ev := range evs.Events {
		if ev.Route != "POST /v1/generate" || ev.Base != "sim-OPT-125M" || ev.Outcome != "length" {
			t.Fatalf("event identity: %+v", ev)
		}
		if ev.TraceID == "" {
			t.Fatalf("event has no trace id: %+v", ev)
		}
		switch ev.Tenant {
		case "alpha":
			alphaSaved += ev.SavedFLOPs()
		case "beta":
			if ev.DenseFLOPs != ev.ExecFLOPs || ev.SavedFLOPs() != 0 {
				t.Fatalf("forced 1.0: dense %d exec %d saved %d", ev.DenseFLOPs, ev.ExecFLOPs, ev.SavedFLOPs())
			}
		default:
			t.Fatalf("unexpected tenant %q", ev.Tenant)
		}
	}
	if alphaSaved <= 0 {
		t.Fatal("auto sparsity on a 4-layer base attributed no saving")
	}

	// Join by trace id: each event is retrievable alone.
	for _, ev := range evs.Events {
		var one eventsBody
		e.getJSON("/debug/events?trace_id="+ev.TraceID, &one)
		if one.Count != 1 || one.Events[0].Tenant != ev.Tenant {
			t.Fatalf("trace join %s: %+v", ev.TraceID, one)
		}
	}

	// /v1/usage must agree with the events and the global counters.
	var u usageBody
	e.getJSON("/v1/usage", &u)
	if len(u.Tenants) != 2 || u.Tenants["alpha"].Requests != 2 || u.Tenants["beta"].Requests != 1 {
		t.Fatalf("usage tenants: %+v", u.Tenants)
	}
	var evSum account.Usage
	for _, ev := range evs.Events {
		evSum.Requests++
		evSum.PromptTokens += ev.PromptTokens
		evSum.OutputTokens += ev.OutputTokens
		evSum.DenseFLOPs += ev.DenseFLOPs
		evSum.ExecFLOPs += ev.ExecFLOPs
		evSum.SavedFLOPs += ev.SavedFLOPs()
	}
	if u.Total != evSum {
		t.Fatalf("usage total %+v != event sum %+v", u.Total, evSum)
	}
	if u.Tenants["beta"].SavedFLOPs != 0 {
		t.Fatalf("beta usage attributes saving: %+v", u.Tenants["beta"])
	}
	for metric, want := range map[string]int64{
		"lexp_account_prompt_tokens_total":  evSum.PromptTokens,
		"lexp_account_output_tokens_total":  evSum.OutputTokens,
		"lexp_account_flops_dense_total":    evSum.DenseFLOPs,
		"lexp_account_flops_executed_total": evSum.ExecFLOPs,
	} {
		if v, ok := e.obsReg.Value(metric); !ok || int64(v) != want {
			t.Fatalf("%s = %v (ok=%v), want %d", metric, v, ok, want)
		}
	}
	if saved, _, _ := e.obsReg.SumValues("lexp_flops_saved_total"); int64(saved) != evSum.SavedFLOPs {
		t.Fatalf("lexp_flops_saved_total %v != %d", saved, evSum.SavedFLOPs)
	}

	// ?tenant= narrows the usage map; ?agg= rolls events up.
	var one usageBody
	e.getJSON("/v1/usage?tenant=alpha", &one)
	if len(one.Tenants) != 1 || one.Tenants["alpha"].Requests != 2 {
		t.Fatalf("usage?tenant=alpha: %+v", one.Tenants)
	}
	var agg struct {
		Count int               `json:"count"`
		Sum   account.Aggregate `json:"sum"`
	}
	e.getJSON("/debug/events?kind=generate&agg=sum", &agg)
	if agg.Count != 3 || agg.Sum.DenseFLOPs != evSum.DenseFLOPs || agg.Sum.SavedFLOPs != evSum.SavedFLOPs {
		t.Fatalf("agg=sum: %+v vs %+v", agg, evSum)
	}
	var pct struct {
		Count      int               `json:"count"`
		Percentile account.Quantiles `json:"percentile"`
	}
	e.getJSON("/debug/events?agg=p50", &pct)
	if pct.Count != 3 || pct.Percentile.TotalNs <= 0 {
		t.Fatalf("agg=p50: %+v", pct)
	}
	for _, bad := range []string{"?agg=bogus", "?agg=p0", "?agg=p101", "?since=notatime", "?limit=x"} {
		if resp, body := e.do("GET", "/debug/events"+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/events%s: %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}

	// Crash tolerance: a second plane over the same directory replays the
	// same ledger from the segmented log.
	replayed, err := account.New(account.Config{Dir: e.dir})
	if err != nil {
		t.Fatal(err)
	}
	defer replayed.Close()
	tenants, total := replayed.UsageByTenant()
	if total != u.Total || tenants["alpha"] != u.Tenants["alpha"] || tenants["beta"] != u.Tenants["beta"] {
		t.Fatalf("replayed usage %+v / %+v != served %+v", tenants, total, u)
	}
}

// TestJobsTenantFilter pins the tenant capture on job submission and the
// ?tenant= filter on GET /v1/jobs: totals (X-Total-Count) follow the
// filtered set, and terminal jobs land in the accounting plane under the
// submitting tenant.
func TestJobsTenantFilter(t *testing.T) {
	e := newAccountEnv(t, 2)
	submitAs := func(tenant string, lr float64) jobs.Job {
		t.Helper()
		spec := map[string]any{"kind": "finetune", "finetune": map[string]any{
			"method": "lora", "sparse": false,
			"steps": 1, "batch": 1, "seq": 8, "epochs": 1, "lr": lr,
		}}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(spec); err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", e.ts.URL+"/v1/jobs", &buf)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-API-Key", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/jobs as %s: %d: %s", tenant, resp.StatusCode, body)
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		return j
	}

	for _, tc := range []struct {
		tenant string
		lr     float64
	}{{"alpha", 1e-3}, {"alpha", 2e-3}, {"beta", 3e-3}} {
		j := submitAs(tc.tenant, tc.lr)
		e.waitStatus(j.ID, jobs.StatusDone)
	}

	cases := []struct {
		query string
		want  int
	}{
		{"?tenant=alpha", 2},
		{"?tenant=beta", 1},
		{"?tenant=nobody", 0},
		{"", 3},
		{"?tenant=alpha&limit=1", 2}, // total counts all matches
	}
	for _, c := range cases {
		resp, body := e.do("GET", "/v1/jobs"+c.query, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s: %d: %s", c.query, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Total-Count"); got != strconv.Itoa(c.want) {
			t.Fatalf("GET /v1/jobs%s: X-Total-Count=%s, want %d", c.query, got, c.want)
		}
		var list []jobs.Job
		if err := json.Unmarshal(body, &list); err != nil {
			t.Fatal(err)
		}
		for _, j := range list {
			if c.query == "?tenant=alpha" && j.Tenant != "alpha" {
				t.Fatalf("tenant filter leaked job %+v", j)
			}
		}
	}
	if resp, body := e.do("GET", "/v1/jobs?limit=-1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/jobs?limit=-1: %d (%s), want 400", resp.StatusCode, body)
	}

	// Terminal jobs became finetune events under the submitting tenant.
	evs := e.waitEvents(account.Filter{Kind: account.KindFinetune}, 3)
	byTenant := map[string]int{}
	for _, ev := range evs {
		byTenant[ev.Tenant]++
		if ev.Outcome != "done" || ev.TrainSteps == 0 || ev.DenseFLOPs == 0 {
			t.Fatalf("job event: %+v", ev)
		}
	}
	if byTenant["alpha"] != 2 || byTenant["beta"] != 1 {
		t.Fatalf("job events by tenant: %v", byTenant)
	}
}

// TestGzipNegotiation pins transfer-encoding negotiation on the two
// large read surfaces: Accept-Encoding: gzip compresses /metrics (without
// disturbing the OpenMetrics content negotiation) and /debug/events;
// clients that don't advertise gzip get identity bodies.
func TestGzipNegotiation(t *testing.T) {
	e := newAccountEnv(t, 1)
	if r := e.generateAs("zipper", nil); r != "length" {
		t.Fatalf("finish reason %q", r)
	}
	e.waitEvents(account.Filter{}, 1)

	get := func(path string, hdr map[string]string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", e.ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		// Disable the transport's transparent gzip so the negotiated
		// Content-Encoding is observable.
		tr := &http.Transport{DisableCompression: true}
		resp, err := (&http.Client{Transport: tr}).Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	gunzip := func(resp *http.Response) []byte {
		t.Helper()
		defer resp.Body.Close()
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		out, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	// /metrics: compressed body, classic and OpenMetrics content types.
	resp := get("/metrics", map[string]string{"Accept-Encoding": "gzip"})
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("metrics Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	if body := gunzip(resp); !bytes.Contains(body, []byte("lexp_account_events_total")) {
		t.Fatal("gzipped /metrics body missing account families")
	}
	resp = get("/metrics", map[string]string{"Accept-Encoding": "gzip", "Accept": "application/openmetrics-text"})
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Fatalf("OpenMetrics negotiation lost under gzip: %q", ct)
	}
	if body := gunzip(resp); !bytes.HasSuffix(bytes.TrimSpace(body), []byte("# EOF")) {
		t.Fatal("gzipped OpenMetrics body missing # EOF terminator")
	}
	resp = get("/metrics", nil)
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity /metrics got Content-Encoding %q", enc)
	}
	resp.Body.Close()

	// /debug/events: compressed JSON parses.
	resp = get("/debug/events", map[string]string{"Accept-Encoding": "gzip"})
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("events Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}
	var evs eventsBody
	if err := json.Unmarshal(gunzip(resp), &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Count != 1 || evs.Events[0].Tenant != "zipper" {
		t.Fatalf("gzipped events body: %+v", evs)
	}
	resp = get("/debug/events", nil)
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("identity /debug/events got Content-Encoding %q", enc)
	}
	resp.Body.Close()
}
