package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// simSmallBase is the client-supplied base description the decode-option
// tests generate against (ReLU so the sparse MLP path is eligible).
func simSmallBase() map[string]any {
	return map[string]any{"model": "sim-small", "activation": "relu", "seed": 1, "blk": 8, "prime": true}
}

// postGenerate posts a raw body to /v1/generate and returns the response
// with its decoded error envelope (zero-valued on 200s).
func postGenerate(t *testing.T, url, body string) (*http.Response, string, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/generate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp, "", ""
	}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return resp, envelope.Error.Code, envelope.Error.Message
}

// TestGenerateDecodeOptionsValidation pins the structured decode block's
// 400 surface: every rejection is an invalid_request envelope whose
// message names the offending field with its dotted path.
func TestGenerateDecodeOptionsValidation(t *testing.T) {
	e := newGatewayEnv(t, 1)
	base, _ := json.Marshal(simSmallBase())
	cases := []struct {
		name    string
		decode  string
		mention string
	}{
		{"unknown mode", `{"sparsity":{"mode":"bogus"}}`, "decode.sparsity.mode"},
		{"mlp density out of range", `{"sparsity":{"mode":"auto","mlp_density":1.5}}`, "decode.sparsity.mlp_density"},
		{"attn density negative", `{"sparsity":{"mode":"forced","attn_density":-0.25}}`, "decode.sparsity.attn_density"},
		{"density without mode", `{"sparsity":{"mlp_density":0.5}}`, "decode.sparsity.mode"},
		{"unknown decode field", `{"sapling":{"temperature":1}}`, "sapling"},
	}
	for _, c := range cases {
		body := `{"base":` + string(base) + `,"prompt":[5,6,7],"decode":` + c.decode + `}`
		resp, code, msg := postGenerate(t, e.ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if code != "invalid_request" {
			t.Fatalf("%s: error code %q, want invalid_request", c.name, code)
		}
		if !strings.Contains(msg, c.mention) {
			t.Fatalf("%s: message %q does not name %q", c.name, msg, c.mention)
		}
	}

}

// TestGenerateRemovedFlatFields checks that the old flat sampling fields
// are gone: every one is a 400 naming its decode.sampling replacement, and
// the structured spelling still decodes.
func TestGenerateRemovedFlatFields(t *testing.T) {
	e := newGatewayEnv(t, 1)
	base, _ := json.Marshal(simSmallBase())

	for _, c := range []struct{ field, value string }{
		{"max_tokens", "4"},
		{"temperature", "0.7"},
		{"stop_token", "3"},
		{"seed", "9"},
	} {
		body := `{"base":` + string(base) + `,"prompt":[5,6,7],"` + c.field + `":` + c.value + `}`
		resp, code, msg := postGenerate(t, e.ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest || code != "invalid_request" {
			t.Fatalf("flat %s: %d/%s, want 400/invalid_request", c.field, resp.StatusCode, code)
		}
		if !strings.Contains(msg, c.field) || !strings.Contains(msg, "decode.sampling."+c.field) {
			t.Fatalf("flat %s: message %q does not point at decode.sampling.%s", c.field, msg, c.field)
		}
	}
	// Even alongside an identical structured value, a flat field is a 400.
	dup := `{"base":` + string(base) + `,"prompt":[5],"max_tokens":4,` +
		`"decode":{"sampling":{"max_tokens":4}}}`
	if resp, _, _ := postGenerate(t, e.ts.URL, dup); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("flat max_tokens next to structured twin accepted: %d", resp.StatusCode)
	}

	structured := map[string]any{
		"base": simSmallBase(), "prompt": []int{5, 6, 7},
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 4}},
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(structured); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/v1/generate", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("structured decode block rejected: %d", resp.StatusCode)
	}
	if tokens, reason := e.generateSSE(structured); reason != "length" || len(tokens) != 4 {
		t.Fatalf("structured decode: %v (%s)", tokens, reason)
	}
}

// TestGenerateSparseServing drives /v1/generate with contextual sparsity
// on and checks (a) the stream still terminates normally, (b) sparsity
// mode off or density 1.0 reproduces the dense stream token for token,
// and (c) the serving-density gauges and sparse-step counter report the
// load.
func TestGenerateSparseServing(t *testing.T) {
	e, obsReg := newObsGatewayEnv(t, 1, 2, nil)

	req := func(sparsity map[string]any) map[string]any {
		body := map[string]any{
			"base": simSmallBase(), "prompt": []int{5, 6, 7},
			"decode": map[string]any{"sampling": map[string]any{"max_tokens": 6}},
		}
		if sparsity != nil {
			body["decode"].(map[string]any)["sparsity"] = sparsity
		}
		return body
	}

	dense, reason := e.generateSSE(req(nil))
	if reason != "length" || len(dense) != 6 {
		t.Fatalf("dense decode: %v (%s)", dense, reason)
	}

	// Density 1.0 in forced mode must be bit-identical to the dense path.
	full, _ := e.generateSSE(req(map[string]any{"mode": "forced", "mlp_density": 1, "attn_density": 1}))
	for k := range dense {
		if full[k] != dense[k] {
			t.Fatalf("forced density 1.0 diverged: %v vs dense %v", full, dense)
		}
	}

	// Forced half-density MLP: the stream still completes, the scheduler
	// counts sparse steps, and the per-layer serving gauges go live below
	// 1.0 (sim-small has 2 layers; forced mode applies the target to both).
	sparse, reason := e.generateSSE(req(map[string]any{"mode": "forced", "mlp_density": 0.5}))
	if reason != "length" || len(sparse) != 6 {
		t.Fatalf("sparse decode: %v (%s)", sparse, reason)
	}
	if steps := metricValue(obsReg, "lexp_infer_sparse_steps_total"); steps == 0 {
		t.Fatal("lexp_infer_sparse_steps_total did not count planned steps")
	}
	for layer := 0; layer < 2; layer++ {
		label := []string{"0", "1"}[layer]
		got := metricValue(obsReg, "lexp_sparse_serving_mlp_density", label)
		if got <= 0 || got >= 1 {
			t.Fatalf("lexp_sparse_serving_mlp_density{layer=%s} = %v, want in (0,1)", label, got)
		}
		if attn := metricValue(obsReg, "lexp_sparse_serving_attn_density", label); attn != 1 {
			t.Fatalf("lexp_sparse_serving_attn_density{layer=%s} = %v, want 1 (short context stays dense)", label, attn)
		}
	}
	if d := metricValue(obsReg, "lexp_infer_plan_mlp_density"); d <= 0 || d >= 1 {
		t.Fatalf("lexp_infer_plan_mlp_density = %v, want in (0,1)", d)
	}

	// Mode "off" with densities set is rejected before reaching the engine.
	base, _ := json.Marshal(simSmallBase())
	resp, code, _ := postGenerate(t, e.ts.URL,
		`{"base":`+string(base)+`,"prompt":[5],"decode":{"sparsity":{"mode":"off","mlp_density":0.5}}}`)
	if resp.StatusCode != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("off-mode densities: %d/%s, want 400/invalid_request", resp.StatusCode, code)
	}
}
