package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/obs"
	"longexposure/internal/slo"
	"longexposure/internal/trace"
)

// sloTestStack is everything the SLO e2e needs: a serve handler with
// metrics, tracing, logging and an SLO engine whose Tick is driven
// manually on a synthetic clock.
type sloTestStack struct {
	store *jobs.Store
	reg   *obs.Registry
	eng   *slo.Engine
	rec   *slo.Recorder
	srv   *Server
	ts    *httptest.Server
	now   time.Time
}

func newSLOStack(t *testing.T, dumpDir string) *sloTestStack {
	t.Helper()
	reg := obs.NewRegistry()
	tr := trace.New(trace.Config{SampleRatio: 1, Capacity: 256, SlowestN: 8, Seed: 11})
	rec := slo.NewRecorder(slo.RecorderConfig{Dir: dumpDir, MaxDumps: 8}, tr)
	logger := slog.New(rec.LogHandler(trace.NewLogHandler(slog.NewTextHandler(io.Discard, nil))))

	cfg := slo.Config{
		Interval: slo.Duration(time.Second),
		Windows: slo.Windows{
			FastShort: slo.Duration(10 * time.Second), FastLong: slo.Duration(time.Minute), FastBurn: 10,
			SlowShort: slo.Duration(30 * time.Second), SlowLong: slo.Duration(2 * time.Minute), SlowBurn: 5,
			For: slo.Duration(2 * time.Second),
		},
		Objectives: []slo.Objective{{
			// Threshold below the first histogram bucket bound (1µs): every
			// real request is an SLO violation, so plain traffic drives the
			// alert lifecycle.
			Name: "healthz-latency", Kind: slo.KindLatency, Route: "GET /healthz",
			Threshold: 1e-7, Target: 0.99, Critical: true,
		}},
	}
	eng, err := slo.New(cfg, slo.Deps{Metrics: reg, Tracer: tr, Logger: logger, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	store := jobs.NewStore(jobs.Config{Workers: 1, Obs: reg, Logger: logger})
	srv := New(store,
		WithMetrics(reg),
		WithTracing(tr),
		WithLogger(logger),
		WithSLO(eng),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		eng.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		store.Shutdown(ctx)
	})
	return &sloTestStack{
		store: store, reg: reg, eng: eng, rec: rec, srv: srv, ts: ts,
		now: time.Unix(1_700_000_000, 0),
	}
}

// tickTraffic makes n requests against the route under objective, one
// engine tick after each.
func (st *sloTestStack) tickTraffic(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := http.Get(st.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		st.now = st.now.Add(time.Second)
		st.eng.Tick(st.now)
	}
}

func (st *sloTestStack) tickQuiet(n int) {
	for i := 0; i < n; i++ {
		st.now = st.now.Add(time.Second)
		st.eng.Tick(st.now)
	}
}

// alertStream subscribes to /v1/alerts and returns a function that
// blocks for the next SSE event frame's (event, data) pair.
func alertStream(t *testing.T, url string) (next func() (string, slo.AlertEvent), stop func()) {
	t.Helper()
	resp, err := http.Get(url + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("alert stream: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	type frame struct {
		event string
		data  slo.AlertEvent
	}
	frames := make(chan frame, 16)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		var f frame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data)
			case line == "" && f.event != "":
				frames <- f
				f = frame{}
			}
		}
	}()
	next = func() (string, slo.AlertEvent) {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatal("alert stream closed early")
			}
			return f.event, f.data
		case <-time.After(10 * time.Second):
			t.Fatal("timed out waiting for alert frame")
			return "", slo.AlertEvent{}
		}
	}
	return next, func() { resp.Body.Close() }
}

// TestSLOAlertLifecycleEndToEnd is the acceptance path: real traffic
// through a serve test server violates a latency objective; the alert
// walks pending -> firing on the /v1/alerts stream and in the lexp_slo_*
// metrics, readiness fails while the critical alert fires, the
// flight recorder dumps a correlated black box at the firing edge, and
// recovery resolves the alert and readiness.
func TestSLOAlertLifecycleEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st := newSLOStack(t, dir)

	next, stop := alertStream(t, st.ts.URL)
	defer stop()

	st.eng.Tick(st.now) // baseline: route not yet hit, no data
	st.tickTraffic(t, 8)

	if ev, e := next(); ev != slo.StatePending || e.Objective != "healthz-latency" {
		t.Fatalf("first frame = (%s, %+v), want pending", ev, e)
	}
	if ev, e := next(); ev != slo.StateFiring || !e.Critical {
		t.Fatalf("second frame = (%s, %+v), want critical firing", ev, e)
	}

	if v, _ := st.reg.Value("lexp_slo_alert_state", "healthz-latency"); v != 2 {
		t.Fatalf("lexp_slo_alert_state = %v, want 2 (firing)", v)
	}

	// A critical firing objective fails readiness.
	resp, err := http.Get(st.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "slo_firing") {
		t.Fatalf("readyz while firing = %d %s", resp.StatusCode, body)
	}

	// The firing edge produced exactly one flight-recorder dump, and it
	// correlates all four axes: alerts, logs, span trees, metric deltas.
	dumps := st.rec.List()
	if len(dumps) != 1 || !strings.Contains(dumps[0].Name, "alert-firing-healthz-latency") {
		t.Fatalf("dumps = %+v, want one alert-firing dump", dumps)
	}
	raw, err := os.ReadFile(filepath.Join(dir, dumps[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	var d slo.Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if len(d.Alerts) == 0 || d.Alerts[len(d.Alerts)-1].State != slo.StateFiring {
		t.Fatalf("dump alerts = %+v", d.Alerts)
	}
	if len(d.Logs) == 0 {
		t.Fatal("dump captured no slog records")
	}
	var reqLogs int
	for _, lr := range d.Logs {
		if lr.Attrs["route"] == "GET /healthz" {
			reqLogs++
			if lr.TraceID == "" {
				t.Fatal("request log record lost its trace id")
			}
		}
	}
	if reqLogs == 0 {
		t.Fatalf("no request records among %d captured logs", len(d.Logs))
	}
	var spanTrees int
	for _, rec := range d.RecentTraces {
		for _, root := range rec.Roots {
			if root.Name == "http.request" {
				spanTrees++
			}
		}
	}
	if spanTrees == 0 {
		t.Fatal("dump has no http.request span trees")
	}
	if len(d.MetricDeltas) == 0 {
		t.Fatal("dump has no metric tick deltas")
	}
	lastTick := d.MetricDeltas[len(d.MetricDeltas)-1].Objectives
	if len(lastTick) != 1 || lastTick[0].DTotal <= 0 {
		t.Fatalf("newest tick delta = %+v, want DTotal > 0", lastTick)
	}

	// Recovery: quiet ticks drain the violation out of every window.
	st.tickQuiet(40)
	if ev, _ := next(); ev != slo.StateResolved {
		t.Fatalf("third frame = %s, want resolved", ev)
	}
	if v, _ := st.reg.Value("lexp_slo_alert_state", "healthz-latency"); v != 3 {
		t.Fatalf("lexp_slo_alert_state = %v, want 3 (resolved)", v)
	}
	resp, err = http.Get(st.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", resp.StatusCode)
	}

	// The exposition surface carries the whole lexp_slo_* family.
	resp, err = http.Get(st.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`lexp_slo_alert_state{objective="healthz-latency"} 3`,
		`lexp_slo_alert_transitions_total{objective="healthz-latency",state="firing"} 1`,
		"lexp_slo_evaluations_total",
		"lexp_slo_error_budget_remaining",
		"lexp_slo_burn_rate",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugSLOAndFlightRecorderEndpoints(t *testing.T) {
	st := newSLOStack(t, t.TempDir())
	st.eng.Tick(st.now)
	st.tickTraffic(t, 8) // drive to firing so the report has content

	resp, err := http.Get(st.ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rep.Objectives) != 1 || rep.Objectives[0].Name != "healthz-latency" {
		t.Fatalf("report objectives = %+v", rep.Objectives)
	}
	o := rep.Objectives[0]
	if o.State != slo.StateFiring || o.BudgetRemaining >= 1 || !o.HasData {
		t.Fatalf("firing objective status = %+v", o)
	}

	resp, err = http.Get(st.ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	var fr struct {
		Snapshot slo.Dump       `json:"snapshot"`
		Dumps    []slo.DumpFile `json:"dumps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fr.Snapshot.Reason != "debug-endpoint" || len(fr.Snapshot.MetricDeltas) == 0 {
		t.Fatalf("flight recorder snapshot = reason %q, %d deltas", fr.Snapshot.Reason, len(fr.Snapshot.MetricDeltas))
	}
	if len(fr.Dumps) != 1 {
		t.Fatalf("flight recorder lists %d dumps, want 1", len(fr.Dumps))
	}
}

// TestAlertStreamEndsOnShutdown verifies a hanging /v1/alerts consumer
// cannot pin a draining server.
func TestAlertStreamEndsOnShutdown(t *testing.T) {
	st := newSLOStack(t, t.TempDir())
	resp, err := http.Get(st.ts.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body) // blocks until the stream ends
		done <- err
	}()
	ctx, cancelCtx := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelCtx()
	if err := st.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("alert stream still open after Shutdown")
	}
}

func TestDebugTracesTraceIDFilter(t *testing.T) {
	st := newSLOStack(t, t.TempDir())

	resp, err := http.Get(st.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("traced request returned no X-Trace-Id header")
	}

	get := func(q string) (int, []byte) {
		resp, err := http.Get(st.ts.URL + "/debug/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	code, body := get("?trace_id=" + traceID)
	if code != http.StatusOK {
		t.Fatalf("exact-trace lookup = %d %s", code, body)
	}
	var tr tracesResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Recent) != 1 || tr.Recent[0].TraceID != traceID {
		t.Fatalf("filter returned %+v, want exactly trace %s", tr.Recent, traceID)
	}
	if len(tr.Recent[0].Roots) == 0 || tr.Recent[0].Roots[0].Name != "http.request" {
		t.Fatalf("filtered trace roots = %+v", tr.Recent[0].Roots)
	}

	if code, _ := get("?trace_id=not-hex"); code != http.StatusBadRequest {
		t.Fatalf("malformed id = %d, want 400", code)
	}
	if code, _ := get("?trace_id=" + strings.Repeat("0", 32)); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", code)
	}
}
