package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"longexposure/internal/core"
	"longexposure/internal/data"
	"longexposure/internal/jobs"
	"longexposure/internal/nn"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
)

// gwEnv is env plus a registry-backed gateway.
type gwEnv struct {
	*env
	reg *registry.Store
}

func newGatewayEnv(t *testing.T, workers int) *gwEnv {
	t.Helper()
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := jobs.NewStore(jobs.Config{Workers: workers, Registry: reg})
	srv := serve.New(store, serve.WithRegistry(reg, 2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return &gwEnv{env: &env{t: t, store: store, ts: ts}, reg: reg}
}

// finetuneSpec is the dense-baseline job both gateway tests train: small,
// deterministic, and rebuildable in-process for the naive reference.
func finetuneSpec(lr float64) map[string]any {
	return map[string]any{
		"kind": "finetune",
		"finetune": map[string]any{
			"method": "lora", "sparse": false,
			"steps": 2, "batch": 1, "seq": 12, "epochs": 1,
			"lr": lr,
		},
	}
}

// naiveReference reruns the job pipeline in-process (everything is seeded)
// and returns the fine-tuned model — the ground truth the served stream
// must reproduce token for token.
func naiveReference(t *testing.T, lr float64) *nn.Transformer {
	t.Helper()
	var spec jobs.Spec
	raw, _ := json.Marshal(finetuneSpec(lr))
	if err := json.Unmarshal(raw, &spec); err != nil {
		t.Fatal(err)
	}
	f := spec.Normalized().Finetune
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	corpus := data.NewE2ECorpus(cfg.Spec.Config.Vocab, max(2, f.Seq/6), f.Seed)
	batches := data.Batches(corpus.Generate(f.Steps*f.Batch, f.Seed+1), f.Batch, f.Seq)
	eng := core.NewBaseline(cfg)
	eng.Run(batches, f.Epochs)
	return eng.Model
}

// generateSSE posts to /v1/generate and parses the SSE stream into tokens
// plus the terminal frame's reason.
func (e *gwEnv) generateSSE(body map[string]any) (tokens []int, reason string) {
	e.t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.Post(e.ts.URL+"/v1/generate", "application/json", &buf)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		e.t.Fatalf("POST /v1/generate: %d: %s", resp.StatusCode, out.String())
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			payload := strings.TrimPrefix(line, "data: ")
			switch event {
			case "token":
				var tok struct {
					Token int `json:"token"`
				}
				if err := json.Unmarshal([]byte(payload), &tok); err != nil {
					e.t.Fatalf("bad token frame %q: %v", payload, err)
				}
				tokens = append(tokens, tok.Token)
			case "done":
				var done struct {
					Tokens []int  `json:"tokens"`
					Reason string `json:"reason"`
				}
				if err := json.Unmarshal([]byte(payload), &done); err != nil {
					e.t.Fatalf("bad done frame %q: %v", payload, err)
				}
				return tokens, done.Reason
			case "error":
				e.t.Fatalf("error frame: %s", payload)
			}
		}
	}
	e.t.Fatalf("stream ended without done frame (got %d tokens)", len(tokens))
	return nil, ""
}

// TestGatewayEndToEnd drives the whole loop over HTTP: two fine-tune jobs
// complete and auto-publish adapters, the adapters appear in /v1/adapters,
// and /v1/generate streams tokens from both concurrently on one shared
// base — each stream bit-identical to the fine-tuned model's naive
// Generate.
func TestGatewayEndToEnd(t *testing.T) {
	e := newGatewayEnv(t, 2)

	lrs := []float64{1e-3, 5e-3} // same base (seed/model), different adapters
	adapterIDs := make([]string, len(lrs))
	for i, lr := range lrs {
		j := e.submit(finetuneSpec(lr), http.StatusAccepted)
		done := e.waitStatus(j.ID, jobs.StatusDone)
		if done.Result == nil || done.Result.Finetune == nil || done.Result.Finetune.AdapterID == "" {
			t.Fatalf("job %s finished without an adapter id: %+v", j.ID, done.Result)
		}
		adapterIDs[i] = done.Result.Finetune.AdapterID
	}
	if adapterIDs[0] == adapterIDs[1] {
		t.Fatalf("distinct jobs published the same adapter %s", adapterIDs[0])
	}

	// Registry listing over HTTP.
	resp, body := e.do("GET", "/v1/adapters", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/adapters: %d: %s", resp.StatusCode, body)
	}
	var manifests []registry.Manifest
	if err := json.Unmarshal(body, &manifests); err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 2 {
		t.Fatalf("listed %d adapters, want 2: %s", len(manifests), body)
	}
	if manifests[0].BaseHash != manifests[1].BaseHash {
		t.Fatal("same-spec jobs published adapters with different base hashes")
	}

	// Concurrent generation with both adapters, pinned to the in-process
	// reference models (the jobs pipeline is fully deterministic).
	prompt := []int{11, 12, 13}
	wants := make([][]int, len(lrs))
	for i, lr := range lrs {
		ref := naiveReference(t, lr)
		wants[i] = ref.Generate(prompt, nn.GenerateConfig{MaxTokens: 8})
	}
	var wg sync.WaitGroup
	got := make([][]int, len(lrs))
	reasons := make([]string, len(lrs))
	for i := range lrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], reasons[i] = e.generateSSE(map[string]any{
				"adapter": adapterIDs[i], "prompt": prompt,
				"decode": map[string]any{"sampling": map[string]any{"max_tokens": 8}},
			})
		}(i)
	}
	wg.Wait()
	for i := range lrs {
		if reasons[i] != "length" {
			t.Fatalf("adapter %d finish reason %q, want length", i, reasons[i])
		}
		if len(got[i]) != len(wants[i]) {
			t.Fatalf("adapter %d served %v, want %v", i, got[i], wants[i])
		}
		for k := range wants[i] {
			if got[i][k] != wants[i][k] {
				t.Fatalf("adapter %d served %v, want %v", i, got[i], wants[i])
			}
		}
	}
	if len(got[0]) > 0 && len(got[1]) > 0 {
		same := len(got[0]) == len(got[1])
		if same {
			for k := range got[0] {
				if got[0][k] != got[1][k] {
					same = false
					break
				}
			}
		}
		if same {
			t.Log("note: both adapters emitted identical tokens (tiny training delta)")
		}
	}

	// Resubmitting the first job is a cache hit carrying the same adapter.
	cached := e.submit(finetuneSpec(lrs[0]), http.StatusOK)
	if !cached.CacheHit || cached.Result.Finetune.AdapterID != adapterIDs[0] {
		t.Fatalf("cache hit lost the adapter id: %+v", cached.Result)
	}

	// Adapter CRUD: get, delete, then 404s.
	resp, _ = e.do("GET", "/v1/adapters/"+adapterIDs[0], nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET adapter: %d", resp.StatusCode)
	}
	resp, _ = e.do("DELETE", "/v1/adapters/"+adapterIDs[0], nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE adapter: %d", resp.StatusCode)
	}
	resp, _ = e.do("GET", "/v1/adapters/"+adapterIDs[0], nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted adapter still served: %d", resp.StatusCode)
	}
	var errBody bytes.Buffer
	gen, err := http.Post(e.ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"adapter":"`+adapterIDs[0]+`","prompt":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	errBody.ReadFrom(gen.Body)
	gen.Body.Close()
	if gen.StatusCode != http.StatusNotFound {
		t.Fatalf("generate with deleted adapter: %d: %s", gen.StatusCode, errBody.String())
	}
}

// TestGatewayBaseOnlyGenerate serves the plain frozen base from an
// explicit base description — no adapter involved.
func TestGatewayBaseOnlyGenerate(t *testing.T) {
	e := newGatewayEnv(t, 1)
	desc := registry.BaseDesc{Model: "sim-small", Activation: "relu", Seed: 1, Blk: 8, Prime: true}
	base, err := jobs.BuildBase(desc)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{5, 6, 7}
	want := base.Generate(prompt, nn.GenerateConfig{MaxTokens: 6, Temperature: 0.5, RNG: nil})
	got, reason := e.generateSSE(map[string]any{
		"base":   map[string]any{"model": "sim-small", "activation": "relu", "seed": 1, "blk": 8, "prime": true},
		"prompt": prompt,
		"decode": map[string]any{"sampling": map[string]any{"max_tokens": 6, "temperature": 0.5, "seed": 1}},
	})
	if reason != "length" {
		t.Fatalf("finish reason %q", reason)
	}
	if len(got) != len(want) {
		t.Fatalf("served %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served %v, want %v", got, want)
		}
	}
}

// TestGatewayRejectsBadRequests pins the 4xx surface: every rejection
// arrives as the structured error envelope with a machine-readable code.
func TestGatewayRejectsBadRequests(t *testing.T) {
	e := newGatewayEnv(t, 1)
	for _, c := range []struct {
		body string
		code string
	}{
		{`{"prompt":[1,2]}`, "invalid_request"},                               // neither adapter nor base
		{`{"adapter":"ad-none","prompt":[1,2]}`, "not_found"},                 // unknown adapter
		{`{"adapter":"x","base":{"model":"sim-small"}}`, "invalid_request"},   // both selectors
		{`{"base":{"model":"nope","seed":1},"prompt":[]}`, "invalid_request"}, // unknown model / empty prompt
	} {
		resp, err := http.Post(e.ts.URL+"/v1/generate", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("body %s: decoding error envelope: %v", c.body, err)
		}
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Fatalf("body %s: status %d, want 4xx", c.body, resp.StatusCode)
		}
		if envelope.Error.Code != c.code || envelope.Error.Message == "" {
			t.Fatalf("body %s: envelope %+v, want code %q with a message", c.body, envelope.Error, c.code)
		}
	}
}
