package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"longexposure/internal/jobs"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/serve"
	"longexposure/internal/trace"
)

// syncBuffer is an io.Writer the slog handler and the test can share:
// handler goroutines write records while the test polls the contents.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// tracesPayload mirrors the GET /debug/traces response body.
type tracesPayload struct {
	Recent  []trace.TraceRecord `json:"recent"`
	Slowest []*trace.SpanRecord `json:"slowest"`
}

// findSpan walks a span tree breadth-first for the first span by name.
func findSpan(roots []*trace.SpanRecord, name string) *trace.SpanRecord {
	for len(roots) > 0 {
		s := roots[0]
		roots = roots[1:]
		if s.Name == name {
			return s
		}
		roots = append(roots, s.Children...)
	}
	return nil
}

// TestTraceEndToEnd is the acceptance path for the tracing plane: a
// /v1/generate request carrying a W3C traceparent yields, at
// /debug/traces, one trace under the remote trace id whose tree runs
// root HTTP span → admission span → engine sequence span → decode steps —
// and the same trace id shows up in the structured log records and as an
// exemplar on the latency histogram's OpenMetrics exposition.
func TestTraceEndToEnd(t *testing.T) {
	reg, err := registry.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{SampleRatio: 1, Seed: 7})
	obsReg := obs.NewRegistry()
	var logBuf syncBuffer
	logger := trace.NewLogger(&logBuf, "info", "json")

	store := jobs.NewStore(jobs.Config{
		Workers: 1, Registry: reg, Tracer: tracer, Logger: logger,
	})
	srv := serve.New(store,
		serve.WithRegistry(reg, 2),
		serve.WithMetrics(obsReg),
		serve.WithTracing(tracer),
		serve.WithLogger(logger),
		serve.WithLimits(serve.LimitConfig{MaxInFlight: 2}),
	)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})

	const tid = "0123456789abcdef0123456789abcdef"
	body := `{"base":{"model":"sim-small","activation":"relu","seed":1,"blk":8,"prime":true},` +
		`"prompt":[5,6,7],"decode":{"sampling":{"max_tokens":4,"seed":1}}}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/generate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+tid+"-00f067aa0ba902b7-01")
	req.Header.Set("X-API-Key", "tenant-a")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/generate: %d: %s", resp.StatusCode, raw)
	}
	// The root span must have adopted the remote trace id and echoed it.
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id = %q, want %q", got, tid)
	}
	if !strings.Contains(string(raw), "event: done") {
		t.Fatalf("stream missing done frame:\n%s", raw)
	}

	// Spans land in the ring at Finish; the sequence span finishes just
	// after the done frame, so poll the debug endpoint for the full tree.
	var (
		tree     trace.TraceRecord
		found    bool
		deadline = time.Now().Add(10 * time.Second)
	)
	for time.Now().Before(deadline) && !found {
		dresp, err := http.Get(ts.URL + "/debug/traces?limit=50")
		if err != nil {
			t.Fatal(err)
		}
		var payload tracesPayload
		err = json.NewDecoder(dresp.Body).Decode(&payload)
		dresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range payload.Recent {
			if tr.TraceID != tid {
				continue
			}
			root := findSpan(tr.Roots, "http.request")
			seq := findSpan(tr.Roots, "infer.sequence")
			if root != nil && seq != nil &&
				findSpan(tr.Roots, "limit.acquire") != nil &&
				findSpan(seq.Children, "infer.decode_step") != nil &&
				strings.Contains(logBuf.String(), tid) {
				tree, found = tr, true
				break
			}
		}
		if !found {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !found {
		recent, _ := tracer.Snapshot(0)
		t.Fatalf("no complete span tree for trace %s; ring has %d traces; logs:\n%s",
			tid, len(recent), logBuf.String())
	}

	root := findSpan(tree.Roots, "http.request")
	if got := root.Attrs["route"]; got != "POST /v1/generate" {
		t.Errorf("root route attr = %v", got)
	}
	if got := root.Attrs["status"]; got != float64(http.StatusOK) {
		t.Errorf("root status attr = %v", got)
	}
	if got := root.Attrs["tenant"]; got != "tenant-a" {
		t.Errorf("root tenant attr = %v", got)
	}
	// The admission and sequence spans hang off the request's trace; the
	// decode steps carry batch occupancy.
	seq := findSpan(tree.Roots, "infer.sequence")
	step := findSpan(seq.Children, "infer.decode_step")
	if step.Attrs["batch"] != float64(1) {
		t.Errorf("decode step batch attr = %v", step.Attrs["batch"])
	}
	if findSpan(seq.Children, "infer.prefill") == nil {
		t.Errorf("sequence span missing prefill child")
	}
	if adm := findSpan(tree.Roots, "limit.acquire"); adm.Attrs["outcome"] != "admitted" {
		t.Errorf("admission outcome attr = %v", adm.Attrs["outcome"])
	}

	// Structured logs carry the same trace id on the request record.
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"http request"`) || !strings.Contains(logs, `"trace_id":"`+tid+`"`) {
		t.Errorf("log records missing trace-correlated request line:\n%s", logs)
	}

	// And the latency histogram's OpenMetrics exposition carries the
	// trace id as an exemplar (classic text format must not).
	mreq, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	mreq.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	mresp, err := http.DefaultClient.Do(mreq)
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `trace_id="`+tid+`"`) {
		t.Errorf("OpenMetrics exposition missing trace exemplar %s", tid)
	}
}

// TestSSEKeepalive pins the idle-stream satellite: with keepalives
// enabled, a job event stream that has nothing to say (its job is parked
// behind a busy worker) still emits SSE comment frames at the configured
// interval, so intermediaries keep the connection alive.
func TestSSEKeepalive(t *testing.T) {
	store := jobs.NewStore(jobs.Config{Workers: 1})
	srv := serve.New(store, serve.WithSSEKeepalive(25*time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	e := &env{t: t, store: store, ts: ts}

	// Occupy the only worker, then queue a second job: its event stream
	// replays the queued event and goes idle.
	slow := e.submit(map[string]any{"kind": "finetune", "finetune": map[string]any{
		"method": "lora", "sparse": false, "steps": 4, "batch": 1, "seq": 12, "epochs": 500,
	}}, http.StatusAccepted)
	queued := e.submit(map[string]any{"kind": "finetune", "finetune": map[string]any{
		"method": "lora", "sparse": false, "steps": 2, "batch": 1, "seq": 12, "epochs": 1, "seed": 9,
	}}, http.StatusAccepted)
	t.Cleanup(func() {
		for _, id := range []string{queued.ID, slow.ID} {
			req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+queued.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", resp.StatusCode)
	}

	keepalives := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			if keepalives++; keepalives >= 2 {
				return
			}
		}
	}
	t.Fatalf("stream ended after %d keepalive frames (want >= 2): %v", keepalives, sc.Err())
}
