package serve_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// int8Base is simSmallBase published at int8 storage precision.
func int8Base() map[string]any {
	b := simSmallBase()
	b["precision"] = "int8"
	return b
}

// TestGenerateCompressedBase serves an int8 frozen base end to end: the
// decode stream completes, the resident-weight gauge reports the quantized
// footprint (strictly below the f32 base's), and a contextual-sparsity
// request against the compressed base is a 400 — compressed bases serve
// dense because the planner and the sparse kernels need the freed f32
// weights.
func TestGenerateCompressedBase(t *testing.T) {
	e, obsReg := newObsGatewayEnv(t, 1, 2, nil)

	req := func(base map[string]any) map[string]any {
		return map[string]any{
			"base": base, "prompt": []int{5, 6, 7},
			"decode": map[string]any{"sampling": map[string]any{"max_tokens": 6}},
		}
	}
	dense, reason := e.generateSSE(req(simSmallBase()))
	if reason != "length" || len(dense) != 6 {
		t.Fatalf("f32 decode: %v (%s)", dense, reason)
	}
	quant, reason := e.generateSSE(req(int8Base()))
	if reason != "length" || len(quant) != 6 {
		t.Fatalf("int8 decode: %v (%s)", quant, reason)
	}

	f32Bytes := metricValue(obsReg, "lexp_base_weight_bytes", "f32")
	i8Bytes := metricValue(obsReg, "lexp_base_weight_bytes", "int8")
	if f32Bytes <= 0 || i8Bytes <= 0 {
		t.Fatalf("lexp_base_weight_bytes not populated: f32=%v int8=%v", f32Bytes, i8Bytes)
	}
	if i8Bytes >= f32Bytes/2 {
		t.Fatalf("int8 base not compressed: %v bytes vs f32 %v", i8Bytes, f32Bytes)
	}

	base, _ := json.Marshal(int8Base())
	body := `{"base":` + string(base) + `,"prompt":[5],"decode":{"sparsity":{"mode":"forced","mlp_density":0.5}}}`
	resp, code, msg := postGenerate(t, e.ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("sparsity on int8 base: %d/%s, want 400/invalid_request", resp.StatusCode, code)
	}
	if !strings.Contains(msg, "int8") || !strings.Contains(msg, "dense") {
		t.Fatalf("rejection %q does not explain the compressed-base dense contract", msg)
	}

	// An unknown precision in a client-supplied base is rejected, not built.
	bad := simSmallBase()
	bad["precision"] = "f4"
	badBody, _ := json.Marshal(map[string]any{"base": bad, "prompt": []int{5}})
	if resp, _, msg := postGenerate(t, e.ts.URL, string(badBody)); resp.StatusCode != http.StatusBadRequest || !strings.Contains(msg, "f4") {
		t.Fatalf("unknown precision: %d %q, want 400 naming it", resp.StatusCode, msg)
	}
}
