package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"longexposure/internal/experiments"
	"longexposure/internal/jobs"
	"longexposure/internal/serve"
)

type env struct {
	t     *testing.T
	store *jobs.Store
	ts    *httptest.Server
}

func newEnv(t *testing.T, workers int) *env {
	t.Helper()
	store := jobs.NewStore(jobs.Config{Workers: workers})
	ts := httptest.NewServer(serve.New(store).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := store.Shutdown(ctx); err != nil {
			t.Errorf("store shutdown: %v", err)
		}
	})
	return &env{t: t, store: store, ts: ts}
}

func (e *env) do(method, path string, body any) (*http.Response, []byte) {
	e.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			e.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, e.ts.URL+path, &buf)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		e.t.Fatal(err)
	}
	return resp, out.Bytes()
}

func (e *env) submit(spec map[string]any, wantCode int) jobs.Job {
	e.t.Helper()
	resp, body := e.do("POST", "/v1/jobs", spec)
	if resp.StatusCode != wantCode {
		e.t.Fatalf("POST /v1/jobs: %d (want %d): %s", resp.StatusCode, wantCode, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		e.t.Fatalf("decoding job: %v: %s", err, body)
	}
	return j
}

func (e *env) getJob(id string) jobs.Job {
	e.t.Helper()
	resp, body := e.do("GET", "/v1/jobs/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("GET job: %d: %s", resp.StatusCode, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		e.t.Fatal(err)
	}
	return j
}

func (e *env) waitStatus(id string, want jobs.Status) jobs.Job {
	e.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j := e.getJob(id)
		if j.Status == want {
			return j
		}
		if j.Status.Terminal() {
			e.t.Fatalf("job %s terminal as %s (error %q), want %s", id, j.Status, j.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.t.Fatalf("job %s never reached %s", id, want)
	return jobs.Job{}
}

// streamEvents consumes the SSE endpoint until the terminal event, calling
// onEvent for each decoded frame.
func (e *env) streamEvents(id string, onEvent func(jobs.Event)) {
	e.t.Helper()
	resp, err := http.Get(e.ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("GET events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		e.t.Fatalf("events content-type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev jobs.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			e.t.Fatalf("decoding SSE data: %v: %s", err, line)
		}
		onEvent(ev)
		if ev.Kind.Terminal() {
			return
		}
	}
	e.t.Fatalf("event stream ended without a terminal event: %v", sc.Err())
}

// TestServiceEndToEnd is the acceptance walk-through: submit a Sim-spec
// fine-tune job and an experiment job, stream progress events with
// non-zero PhaseTimes, cancel a running job, and observe a cache hit on
// identical resubmission.
func TestServiceEndToEnd(t *testing.T) {
	e := newEnv(t, 2)

	// --- Sim-spec fine-tune job (sparse Long Exposure path) ---
	ftSpec := map[string]any{
		"kind": "finetune",
		"finetune": map[string]any{
			"model": "OPT-125M", "method": "lora",
			"steps": 3, "batch": 2, "seq": 24, "blk": 4,
			"predictor_epochs": 2, "seed": 5,
		},
	}
	ft := e.submit(ftSpec, http.StatusAccepted)
	if ft.Status != jobs.StatusQueued || ft.CacheHit {
		t.Fatalf("fresh submission: status %s cache_hit %v", ft.Status, ft.CacheHit)
	}

	progress, nonZeroTimes := 0, 0
	var terminal jobs.EventKind
	e.streamEvents(ft.ID, func(ev jobs.Event) {
		if ev.Kind == jobs.EventProgress && ev.Progress != nil {
			progress++
			if ev.Progress.Times.Total() > 0 {
				nonZeroTimes++
			}
		}
		if ev.Kind.Terminal() {
			terminal = ev.Kind
		}
	})
	if terminal != jobs.EventDone {
		t.Fatalf("fine-tune terminal event %s, want done", terminal)
	}
	if progress == 0 || nonZeroTimes == 0 {
		t.Fatalf("streamed %d progress events, %d with non-zero PhaseTimes", progress, nonZeroTimes)
	}
	final := e.getJob(ft.ID)
	if final.Result == nil || final.Result.Finetune == nil {
		t.Fatalf("fine-tune job has no result: %+v", final)
	}
	if got := final.Result.Finetune.Model; got != "sim-OPT-125M" {
		t.Errorf("result model %q, want sim-OPT-125M", got)
	}
	if final.Result.Finetune.MeanStep.Total() <= 0 {
		t.Errorf("result mean step times are zero")
	}

	// --- identical resubmission is a cache hit, served instantly ---
	hit := e.submit(ftSpec, http.StatusOK)
	if !hit.CacheHit || hit.Status != jobs.StatusDone {
		t.Fatalf("resubmission: cache_hit=%v status=%s", hit.CacheHit, hit.Status)
	}
	if hit.Result == nil || hit.Result.Finetune == nil ||
		hit.Result.Finetune.FinalLoss != final.Result.Finetune.FinalLoss {
		t.Fatalf("cache hit result differs from original")
	}

	// --- experiment job ---
	exp := e.submit(map[string]any{
		"kind":       "experiment",
		"experiment": map[string]any{"id": "fig4"},
	}, http.StatusAccepted)
	e.streamEvents(exp.ID, func(ev jobs.Event) {
		if ev.Kind.Terminal() && ev.Kind != jobs.EventDone {
			t.Fatalf("experiment terminal event %s: %s", ev.Kind, ev.Error)
		}
	})
	expJob := e.getJob(exp.ID)
	if expJob.Result == nil || expJob.Result.Experiment == nil ||
		!strings.Contains(expJob.Result.Experiment.Markdown, "fig4") {
		t.Fatalf("experiment job result: %+v", expJob.Result)
	}

	// --- cancel a running job ---
	slow := e.submit(map[string]any{
		"kind": "finetune",
		"finetune": map[string]any{
			"sparse": false, "steps": 4, "epochs": 500, "batch": 1, "seq": 12, "seed": 77,
		},
	}, http.StatusAccepted)
	e.waitStatus(slow.ID, jobs.StatusRunning)
	resp, body := e.do("DELETE", "/v1/jobs/"+slow.ID, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j := e.getJob(slow.ID)
		if j.Status.Terminal() {
			if j.Status != jobs.StatusCancelled {
				t.Fatalf("cancelled job status %s", j.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job never terminal")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// --- listing and filtering ---
	resp, body = e.do("GET", "/v1/jobs?status=cancelled", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var listed []jobs.Job
	if err := json.Unmarshal(body, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != 1 || listed[0].ID != slow.ID {
		t.Fatalf("cancelled filter returned %+v", listed)
	}
}

func TestExperimentCatalogueAndHealth(t *testing.T) {
	e := newEnv(t, 1)

	resp, body := e.do("GET", "/v1/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments: %d", resp.StatusCode)
	}
	var infos []experiments.Info
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(experiments.IDs()) {
		t.Fatalf("catalogue has %d entries, registry %d", len(infos), len(experiments.IDs()))
	}
	for _, info := range infos {
		if info.Title == "" {
			t.Errorf("experiment %s has no title", info.ID)
		}
	}

	resp, body = e.do("GET", "/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, body)
	}
}

func TestBadRequests(t *testing.T) {
	e := newEnv(t, 1)

	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/v1/jobs", map[string]any{"kind": "mystery"}, http.StatusBadRequest},
		{"POST", "/v1/jobs", map[string]any{"kind": "experiment", "experiment": map[string]any{"id": "nope"}}, http.StatusBadRequest},
		{"POST", "/v1/jobs", map[string]any{"bogus_field": 1}, http.StatusBadRequest},
		{"GET", "/v1/jobs/job-404404", nil, http.StatusNotFound},
		{"DELETE", "/v1/jobs/job-404404", nil, http.StatusNotFound},
		{"GET", "/v1/jobs/job-404404/events", nil, http.StatusNotFound},
		{"GET", "/v1/jobs?status=bogus", nil, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := e.do(c.method, c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: %d (want %d): %s", c.method, c.path, resp.StatusCode, c.want, body)
		}
	}
}

func TestSubmitAfterShutdownIsUnavailable(t *testing.T) {
	store := jobs.NewStore(jobs.Config{Workers: 1})
	ts := httptest.NewServer(serve.New(store).Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := store.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"finetune","finetune":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %d, want 503", resp.StatusCode)
	}
}
