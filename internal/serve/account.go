package serve

import (
	"compress/gzip"
	"net/http"
	"strconv"
	"strings"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/trace"
)

// WithAccounting attaches the wide-event accounting plane: every
// completed generate request and terminal job (plus every request shed
// at admission) lands in the plane as one structured event, queryable at
// GET /debug/events with filters and ?agg= rollups. usageAPI additionally
// mounts GET /v1/usage, the per-tenant cumulative rollup endpoint. Pair
// it with jobs.Config.Account on the same plane so job events and request
// events share one ledger.
func WithAccounting(p *account.Plane, usageAPI bool) Option {
	return func(s *Server) {
		s.account = p
		s.usageAPI = usageAPI
	}
}

// tenantOf resolves the request's tenant from the traffic-control
// plane's tenant header (default "X-API-Key"); requests without one are
// "anonymous" — the same identity the rate limiter buckets them under.
func (s *Server) tenantOf(r *http.Request) string {
	h := "X-API-Key"
	if s.limits != nil && s.limits.TenantHeader != "" {
		h = s.limits.TenantHeader
	}
	if t := r.Header.Get(h); t != "" {
		return t
	}
	return "anonymous"
}

// accountShed records a request refused at admission: sheds never reach
// an engine, so the gateway emits their (resource-less) event here.
func (s *Server) accountShed(r *http.Request, kind, route, verdict string) {
	if s.account == nil {
		return
	}
	ev := account.Event{Kind: kind, Tenant: s.tenantOf(r), Route: route, Outcome: "shed", Limit: verdict}
	if id := trace.FromContext(r.Context()).TraceID(); id.Valid() {
		ev.TraceID = id.String()
	}
	s.account.Emit(&ev)
}

// acceptsGzip reports whether the client advertised gzip support.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// gzipResponseWriter routes the body through a gzip.Writer while headers
// and status pass straight to the underlying writer.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (w *gzipResponseWriter) Write(b []byte) (int, error) { return w.gz.Write(b) }

// maybeGzip negotiates gzip content-encoding for a buffered JSON
// response. The returned done func must be called after the body is
// written (it flushes the compressor); it is a no-op on the identity
// path.
func maybeGzip(w http.ResponseWriter, r *http.Request) (http.ResponseWriter, func()) {
	if !acceptsGzip(r) {
		return w, func() {}
	}
	w.Header().Set("Content-Encoding", "gzip")
	gz := gzip.NewWriter(w)
	return &gzipResponseWriter{ResponseWriter: w, gz: gz}, func() { gz.Close() }
}

// debugEvents serves GET /debug/events: the wide-event ring filtered by
// ?tenant= ?route= ?adapter= ?trace_id= ?outcome= ?kind= ?since= ?until=
// (RFC 3339) and ?limit=, either raw (oldest first) or rolled up by
// ?agg=sum or ?agg=pNN (nearest-rank percentiles, e.g. p50, p99).
func (s *Server) debugEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := account.Filter{
		Tenant:  q.Get("tenant"),
		Route:   q.Get("route"),
		Adapter: q.Get("adapter"),
		TraceID: q.Get("trace_id"),
		Outcome: q.Get("outcome"),
		Kind:    q.Get("kind"),
	}
	limitN, ok := queryInt(w, r, q.Get("limit"), "limit")
	if !ok {
		return
	}
	f.Limit = limitN
	var err error
	if f.Since, err = queryTime(q.Get("since")); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid since %q: want RFC 3339", q.Get("since"))
		return
	}
	if f.Until, err = queryTime(q.Get("until")); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid until %q: want RFC 3339", q.Get("until"))
		return
	}

	events := s.account.Events(f)
	var body any
	switch agg := q.Get("agg"); {
	case agg == "":
		body = struct {
			Count  int             `json:"count"`
			Events []account.Event `json:"events"`
		}{len(events), events}
	case agg == "sum":
		body = struct {
			Count int               `json:"count"`
			Sum   account.Aggregate `json:"sum"`
		}{len(events), account.Sum(events)}
	case len(agg) > 1 && agg[0] == 'p':
		pct, perr := strconv.ParseFloat(agg[1:], 64)
		if perr != nil || pct <= 0 || pct > 100 {
			writeError(w, r, http.StatusBadRequest, "invalid agg %q: want sum or pNN with 0 < NN <= 100", agg)
			return
		}
		body = struct {
			Count      int               `json:"count"`
			Percentile account.Quantiles `json:"percentile"`
		}{len(events), account.Percentile(events, pct/100)}
	default:
		writeError(w, r, http.StatusBadRequest, "invalid agg %q: want sum or pNN", q.Get("agg"))
		return
	}
	gw, done := maybeGzip(w, r)
	writeJSON(gw, http.StatusOK, body)
	done()
}

// queryTime parses an optional RFC 3339 query parameter.
func queryTime(raw string) (time.Time, error) {
	if raw == "" {
		return time.Time{}, nil
	}
	return time.Parse(time.RFC3339, raw)
}

// usage serves GET /v1/usage: cumulative per-tenant rollups plus the
// global total (which, by the plane's conservation invariant, always
// equals both the tenant sum and the lexp_account_* counters). ?tenant=
// narrows the map to one tenant (present with zero usage when unknown).
func (s *Server) usage(w http.ResponseWriter, r *http.Request) {
	tenants, total := s.account.UsageByTenant()
	if t := r.URL.Query().Get("tenant"); t != "" {
		tenants = map[string]account.Usage{t: tenants[t]}
	}
	writeJSON(w, http.StatusOK, struct {
		Tenants map[string]account.Usage `json:"tenants"`
		Total   account.Usage            `json:"total"`
	}{tenants, total})
}
