// Package serve exposes the job subsystem (internal/jobs) and the
// inference gateway (internal/infer + internal/registry) as a JSON HTTP
// API — the full train → publish → serve loop over the Long Exposure
// reproduction:
//
//	POST   /v1/jobs             submit a job (202; 200 on a cache hit)
//	GET    /v1/jobs             list jobs; ?status=/?tenant= filter, ?limit=/?offset= pages
//	GET    /v1/jobs/{id}        one job
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events server-sent event stream (replay + live)
//	GET    /v1/experiments      registered experiment catalogue
//	GET    /v1/adapters         published adapter artifacts (WithRegistry)
//	GET    /v1/adapters/{id}    one adapter manifest
//	DELETE /v1/adapters/{id}    delete an adapter artifact
//	POST   /v1/generate         KV-cached token generation (SSE stream)
//	GET    /v1/alerts           SLO alert-transition stream (SSE, WithSLO)
//	GET    /v1/usage            per-tenant usage rollups (WithAccounting)
//	GET    /debug/events        wide-event ring with filters and ?agg= rollups
//	GET    /healthz             liveness + queue stats
//	GET    /readyz              readiness (503 while draining/shedding/slo_firing)
//	GET    /metrics             Prometheus text exposition (WithMetrics)
//	GET    /debug/slo           objective report + error budgets (WithSLO)
//	GET    /debug/flightrecorder black-box snapshot + dump list (WithSLO)
//
// Shutdown is graceful: in-flight HTTP requests finish and the job store
// drains queued and running jobs before the process exits; /readyz flips
// to 503 the moment the drain starts so load balancers stop routing here.
//
// WithMetrics attaches the observability plane (internal/obs): per-route
// HTTP latency/status, gateway cache and engine instruments, and the
// /metrics endpoint. WithLimits attaches the traffic-control plane
// (internal/limit): per-tenant and global rate limiting plus
// load-shedding admission control on POST /v1/generate and POST /v1/jobs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/experiments"
	"longexposure/internal/jobs"
	"longexposure/internal/limit"
	"longexposure/internal/obs"
	"longexposure/internal/registry"
	"longexposure/internal/slo"
	"longexposure/internal/trace"
)

// Server wires the job store into an http.Handler and manages graceful
// shutdown of both the listener and the worker pool.
type Server struct {
	store   *jobs.Store
	gw      *gateway // nil without WithRegistry
	mux     *http.ServeMux
	handler http.Handler // mux, wrapped by middleware when configured

	// Observability plane (nil without WithMetrics).
	obs   *obs.Registry
	httpm *obs.HTTPMetrics

	// Tracing / logging / profiling plane.
	tracer    *trace.Tracer // nil without WithTracing
	log       *slog.Logger  // nil without WithLogger
	pprof     bool          // WithPprof mounts net/http/pprof
	keepalive time.Duration // WithSSEKeepalive; 0 disables comment frames

	// Traffic-control plane (nil without WithLimits).
	limits     *LimitConfig
	gdGenerate *guard
	gdJobs     *guard

	// SLO plane (nil without WithSLO).
	slo    *slo.Engine
	health []slo.HealthSource // readiness inputs, checked in order

	// Accounting plane (nil without WithAccounting).
	account  *account.Plane
	usageAPI bool

	draining     atomic.Bool   // set when Shutdown begins; read by /readyz
	shutdownC    chan struct{} // closed when Shutdown begins; ends /v1/alerts streams
	shutdownOnce sync.Once

	mu     sync.Mutex // guards http/closed against Shutdown from another goroutine
	http   *http.Server
	closed bool
}

// Option configures optional server subsystems.
type Option func(*Server)

// WithRegistry enables the inference gateway over an adapter registry:
// the /v1/adapters CRUD and the /v1/generate streaming endpoint, with
// maxBatch sequences decoded concurrently per shared base (<= 0 uses the
// infer default). Pair it with jobs.Config.Registry on the same store so
// completed fine-tuning jobs are immediately servable.
func WithRegistry(reg *registry.Store, maxBatch int) Option {
	return func(s *Server) {
		s.gw = newGateway(reg, maxBatch)
		s.mux.HandleFunc("GET /v1/adapters", s.listAdapters)
		s.mux.HandleFunc("GET /v1/adapters/{id}", s.getAdapter)
		s.mux.HandleFunc("DELETE /v1/adapters/{id}", s.deleteAdapter)
		s.mux.HandleFunc("POST /v1/generate", s.generate)
	}
}

// WithMetrics attaches a metrics registry: per-route HTTP instruments,
// gateway and generation-engine instruments (when WithRegistry is also
// set), traffic-control instruments (when WithLimits is also set), and
// the GET /metrics exposition endpoint. Pair it with jobs.Config.Obs and
// registry.Store.Instrument on the same registry for full coverage.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.obs = reg }
}

// WithTracing attaches a request tracer: every API request gets a root
// span (honoring an inbound W3C traceparent header), spans thread through
// admission control, the job lifecycle, the training engine, and the
// per-token decode path, and GET /debug/traces serves recent and
// slowest-N span trees. Pair it with jobs.Config.Tracer on the same
// tracer so job spans land in the same ring. When WithMetrics is also
// set, sampled requests attach trace-id exemplars to the HTTP latency
// histograms.
func WithTracing(tr *trace.Tracer) Option {
	return func(s *Server) { s.tracer = tr }
}

// WithLogger attaches a structured request/lifecycle logger. Wrap the
// handler with trace.LogHandler (trace.NewLogger does) so every record
// carries the request's trace and span ids. Pair it with
// jobs.Config.Logger for job lifecycle records.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithPprof mounts net/http/pprof under GET /debug/pprof/. Off by
// default: the profiling surface is opt-in (flag-gated in longexpd), not
// something every deployment should expose.
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithSSEKeepalive emits an SSE comment frame (": keepalive") on the
// /v1/generate and /v1/jobs/{id}/events streams whenever d elapses
// without a real event, so idle streams survive proxies and LBs that
// reap quiet connections. d <= 0 disables (the default — tests and
// embedders opt in explicitly).
func WithSSEKeepalive(d time.Duration) Option {
	return func(s *Server) { s.keepalive = d }
}

// New builds a server over the store.
func New(store *jobs.Store, opts ...Option) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), shutdownC: make(chan struct{})}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.streamEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.listExperiments)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	for _, opt := range opts {
		opt(s)
	}

	// Finalize cross-option wiring now that every option has run (the
	// registry gateway, limits, metrics, and tracing may arrive in any
	// order).
	s.handler = s.mux
	if s.obs != nil {
		s.httpm = obs.NewHTTPMetrics(s.obs)
		s.mux.Handle("GET /metrics", s.obs.Handler())
		if s.gw != nil {
			s.gw.metrics = obs.NewGatewayMetrics(s.obs)
			s.gw.inferMetrics = obs.NewInferMetrics(s.obs)
			s.gw.sparsity = obs.NewServingSparsityMetrics(s.obs)
		}
	}
	if s.tracer != nil {
		s.mux.HandleFunc("GET /debug/traces", s.debugTraces)
	}
	if s.pprof {
		s.mountPprof()
	}
	if s.httpm != nil || s.tracer != nil || s.log != nil {
		s.handler = s.observe(s.mux)
	}
	if s.limits != nil {
		var lm *obs.LimitMetrics
		if s.obs != nil {
			lm = obs.NewLimitMetrics(s.obs)
		}
		var limiter *limit.Limiter
		if s.limits.Limit.Enabled() {
			limiter = limit.New(s.limits.Limit)
			limiter.Instrument(lm)
		}
		mk := func(endpoint string) *guard {
			var em *obs.EndpointLimitMetrics
			if lm != nil {
				em = lm.Endpoint(endpoint)
			}
			g := &guard{tenantHeader: s.limits.TenantHeader, limiter: limiter, m: em}
			if s.limits.MaxInFlight > 0 {
				g.adm = limit.NewAdmission(limit.AdmissionConfig{
					MaxInFlight: s.limits.MaxInFlight,
					MaxWait:     s.limits.MaxWait,
					WaitTimeout: s.limits.WaitTimeout,
					RetryAfter:  s.limits.RetryAfter,
				}, em)
			}
			return g
		}
		s.gdGenerate = mk("POST /v1/generate")
		s.gdJobs = mk("POST /v1/jobs")
	}

	// Readiness inputs, checked in order by /readyz: admission shedding
	// first (the historical behavior), then the SLO engine when present.
	s.health = append(s.health, slo.HealthFunc("admission", func() (bool, string) {
		for _, g := range []*guard{s.gdGenerate, s.gdJobs} {
			if g != nil && g.adm != nil && g.adm.Shedding() {
				return false, "shedding"
			}
		}
		return true, ""
	}))
	if s.slo != nil {
		s.health = append(s.health, s.slo)
		s.mux.HandleFunc("GET /debug/slo", s.debugSLO)
		s.mux.HandleFunc("GET /v1/alerts", s.streamAlerts)
		if s.slo.Recorder() != nil {
			s.mux.HandleFunc("GET /debug/flightrecorder", s.debugFlightRecorder)
		}
	}
	if s.account != nil {
		if s.gw != nil {
			s.gw.account = s.account
		}
		s.mux.HandleFunc("GET /debug/events", s.debugEvents)
		if s.usageAPI {
			s.mux.HandleFunc("GET /v1/usage", s.usage)
		}
	}
	return s
}

// Handler returns the routing handler (for httptest and embedding),
// wrapped with the metrics middleware when WithMetrics is set.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe blocks serving the API on addr until Shutdown. Calling
// it after Shutdown is a no-op (a signal can win the race at startup).
func (s *Server) ListenAndServe(addr string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	srv := &http.Server{Addr: addr, Handler: s.handler}
	s.http = srv
	s.mu.Unlock()

	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops the listener (finishing in-flight requests) and drains
// the job store; ctx bounds the whole drain. Readiness flips to 503 and
// the admission controllers shed everything the moment the drain starts,
// so new traffic fails fast with Retry-After instead of queuing behind a
// closing server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.shutdownOnce.Do(func() { close(s.shutdownC) })
	for _, g := range []*guard{s.gdGenerate, s.gdJobs} {
		if g != nil && g.adm != nil {
			g.adm.SetDraining(true)
		}
	}
	s.mu.Lock()
	s.closed = true
	srv := s.http
	s.mu.Unlock()

	var httpErr error
	if srv != nil {
		httpErr = srv.Shutdown(ctx)
	}
	if err := s.store.Shutdown(ctx); err != nil {
		s.shutdownGateway(ctx)
		return err
	}
	s.shutdownGateway(ctx)
	return httpErr
}

// ---- handlers ----

// apiError is the structured error envelope every endpoint emits:
//
//	{"error": {"code": "...", "message": "...", "trace_id": "..."}}
//
// code is a stable machine-readable slug (derived from the HTTP status
// unless overridden), message is human-readable, and trace_id — present
// when the request is traced — links the failure to its span tree under
// /debug/traces and to the X-Trace-Id response header.
type apiError struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}

// errorCode maps an HTTP status to the envelope's default code slug.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusUnprocessableEntity:
		return "not_servable"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		if status >= 500 {
			return "internal"
		}
		return "invalid_request"
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the structured envelope with the status's default code
// slug. r supplies the span context the trace id is read from; nil (or an
// untraced request) omits the field.
func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeErrorCode(w, r, status, errorCode(status), format, args...)
}

// writeErrorCode is writeError with an explicit code slug.
func writeErrorCode(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	body := errorBody{Code: code, Message: fmt.Sprintf(format, args...)}
	if r != nil {
		if id := trace.FromContext(r.Context()).TraceID(); id.Valid() {
			body.TraceID = id.String()
		}
	}
	writeJSON(w, status, apiError{Error: body})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	release, verdict, ok := s.gdJobs.admit(w, r)
	if !ok {
		// Sheds happen before the body is decoded, so the endpoint's
		// primary kind stands in for the unknown spec kind.
		s.accountShed(r, account.KindFinetune, "POST /v1/jobs", verdict)
		return
	}
	defer release()
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	spec.Tenant = s.tenantOf(r)
	j, err := s.store.SubmitCtx(r.Context(), spec)
	switch {
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, r, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if j.CacheHit {
		code = http.StatusOK // served instantly from the result cache
	}
	writeJSON(w, code, j)
}

// listJobs serves GET /v1/jobs with ?status= filtering and ?limit=/
// ?offset= pagination. Ordering is stable (submission time); the total
// match count rides the X-Total-Count header so the body stays a plain
// job array for pagination-unaware clients.
func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := jobs.Status(q.Get("status"))
	switch status {
	case "", jobs.StatusQueued, jobs.StatusRunning, jobs.StatusDone, jobs.StatusFailed, jobs.StatusCancelled:
	default:
		writeError(w, r, http.StatusBadRequest, "unknown status %q", status)
		return
	}
	limitN, ok := queryInt(w, r, q.Get("limit"), "limit")
	if !ok {
		return
	}
	offset, ok := queryInt(w, r, q.Get("offset"), "offset")
	if !ok {
		return
	}
	list, total := s.store.ListPage(status, q.Get("tenant"), limitN, offset)
	w.Header().Set("X-Total-Count", strconv.Itoa(total))
	writeJSON(w, http.StatusOK, list)
}

// queryInt parses a non-negative integer query parameter ("" = 0),
// writing the 400 itself on bad input.
func queryInt(w http.ResponseWriter, r *http.Request, raw, name string) (int, bool) {
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		writeError(w, r, http.StatusBadRequest, "invalid %s %q: want a non-negative integer", name, raw)
		return 0, false
	}
	return n, true
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) listExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Describe())
}

// healthz is the liveness probe: the process is up and can answer, even
// mid-drain. Restart decisions key off this; routing decisions belong to
// /readyz.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string     `json:"status"`
		Stats  jobs.Stats `json:"stats"`
	}{Status: "ok", Stats: s.store.Stats()})
}

// readyz is the readiness probe: 503 while the server is draining for
// shutdown, while an admission controller is fully shedding (at its
// concurrency cap with a full wait queue), or while a critical SLO
// objective is firing — in every such state new traffic belongs
// elsewhere. Non-drain conditions are expressed as slo.HealthSource
// inputs, checked in registration order; the first unhealthy one names
// the status.
func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	status := "ready"
	if s.draining.Load() {
		status = "draining"
	} else {
		for _, h := range s.health {
			if ok, st := h.Healthy(); !ok {
				status = st
				break
			}
		}
	}
	code := http.StatusOK
	if status != "ready" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string     `json:"status"`
		Stats  jobs.Stats `json:"stats"`
	}{Status: status, Stats: s.store.Stats()})
}
