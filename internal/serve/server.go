// Package serve exposes the job subsystem (internal/jobs) and the
// inference gateway (internal/infer + internal/registry) as a JSON HTTP
// API — the full train → publish → serve loop over the Long Exposure
// reproduction:
//
//	POST   /v1/jobs             submit a job (202; 200 on a cache hit)
//	GET    /v1/jobs             list jobs, optional ?status= filter
//	GET    /v1/jobs/{id}        one job
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/events server-sent event stream (replay + live)
//	GET    /v1/experiments      registered experiment catalogue
//	GET    /v1/adapters         published adapter artifacts (WithRegistry)
//	GET    /v1/adapters/{id}    one adapter manifest
//	DELETE /v1/adapters/{id}    delete an adapter artifact
//	POST   /v1/generate         KV-cached token generation (SSE stream)
//	GET    /healthz             liveness + queue stats
//
// Shutdown is graceful: in-flight HTTP requests finish and the job store
// drains queued and running jobs before the process exits.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"longexposure/internal/experiments"
	"longexposure/internal/jobs"
	"longexposure/internal/registry"
)

// Server wires the job store into an http.Handler and manages graceful
// shutdown of both the listener and the worker pool.
type Server struct {
	store *jobs.Store
	gw    *gateway // nil without WithRegistry
	mux   *http.ServeMux

	mu     sync.Mutex // guards http/closed against Shutdown from another goroutine
	http   *http.Server
	closed bool
}

// Option configures optional server subsystems.
type Option func(*Server)

// WithRegistry enables the inference gateway over an adapter registry:
// the /v1/adapters CRUD and the /v1/generate streaming endpoint, with
// maxBatch sequences decoded concurrently per shared base (<= 0 uses the
// infer default). Pair it with jobs.Config.Registry on the same store so
// completed fine-tuning jobs are immediately servable.
func WithRegistry(reg *registry.Store, maxBatch int) Option {
	return func(s *Server) {
		s.gw = newGateway(reg, maxBatch)
		s.mux.HandleFunc("GET /v1/adapters", s.listAdapters)
		s.mux.HandleFunc("GET /v1/adapters/{id}", s.getAdapter)
		s.mux.HandleFunc("DELETE /v1/adapters/{id}", s.deleteAdapter)
		s.mux.HandleFunc("POST /v1/generate", s.generate)
	}
}

// New builds a server over the store.
func New(store *jobs.Store, opts ...Option) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.streamEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.listExperiments)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Handler returns the routing handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe blocks serving the API on addr until Shutdown. Calling
// it after Shutdown is a no-op (a signal can win the race at startup).
func (s *Server) ListenAndServe(addr string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	srv := &http.Server{Addr: addr, Handler: s.mux}
	s.http = srv
	s.mu.Unlock()

	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops the listener (finishing in-flight requests) and drains
// the job store; ctx bounds the whole drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	srv := s.http
	s.mu.Unlock()

	var httpErr error
	if srv != nil {
		httpErr = srv.Shutdown(ctx)
	}
	if err := s.store.Shutdown(ctx); err != nil {
		s.shutdownGateway(ctx)
		return err
	}
	s.shutdownGateway(ctx)
	return httpErr
}

// ---- handlers ----

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	j, err := s.store.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if j.CacheHit {
		code = http.StatusOK // served instantly from the result cache
	}
	writeJSON(w, code, j)
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	status := jobs.Status(r.URL.Query().Get("status"))
	switch status {
	case "", jobs.StatusQueued, jobs.StatusRunning, jobs.StatusDone, jobs.StatusFailed, jobs.StatusCancelled:
	default:
		writeError(w, http.StatusBadRequest, "unknown status %q", status)
		return
	}
	writeJSON(w, http.StatusOK, s.store.List(status))
}

func (s *Server) getJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) listExperiments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, experiments.Describe())
}

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string     `json:"status"`
		Stats  jobs.Stats `json:"stats"`
	}{Status: "ok", Stats: s.store.Stats()})
}
