package slo

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"longexposure/internal/obs"
	"longexposure/internal/trace"
)

// sample is one evaluation tick's cumulative good/total reading.
type sample struct {
	t           int64 // UnixNano
	good, total float64
}

// sampleRing is a fixed-capacity ordered ring of samples. Pushing past
// capacity overwrites the oldest; lookups binary-search the logical
// order. No method allocates after construction.
type sampleRing struct {
	buf   []sample
	start int // index of the oldest sample
	n     int
}

func newSampleRing(capacity int) *sampleRing {
	return &sampleRing{buf: make([]sample, capacity)}
}

func (r *sampleRing) push(s sample) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % len(r.buf)
}

func (r *sampleRing) at(i int) sample { return r.buf[(r.start+i)%len(r.buf)] }

// before returns the newest sample no newer than cutoff, falling back
// to the oldest retained sample when the whole ring is newer (a window
// longer than recorded history measures over what exists). ok is false
// only on an empty ring.
func (r *sampleRing) before(cutoff int64) (sample, bool) {
	if r.n == 0 {
		return sample{}, false
	}
	lo, hi := 0, r.n-1 // invariant: answer index is in [lo, hi] if any sample <= cutoff
	if r.at(0).t > cutoff {
		return r.at(0), true
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if r.at(mid).t <= cutoff {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return r.at(lo), true
}

// objective is one configured SLO plus its live evaluation state.
type objective struct {
	spec Objective
	src  source
	ring *sampleRing
	m    *obs.ObjectiveSLOMetrics

	state        string
	since        time.Time // entered current state
	pendingSince time.Time
	hasData      bool

	good, total float64 // latest cumulative reading
	burn        [4]float64
	budget      float64
	fastActive  bool
	slowActive  bool
}

// Deps wires an Engine to the rest of the daemon. Metrics is required —
// it is both the source the objectives read and where lexp_slo_* is
// registered; everything else is optional.
type Deps struct {
	Metrics  *obs.Registry
	Tracer   *trace.Tracer // span trees in flight-recorder dumps
	Logger   *slog.Logger  // structured records per alert transition
	Recorder *Recorder     // black-box capture + dump-on-firing
}

// Engine evaluates a Config's objectives on a fixed tick. Construct
// with New; either drive Tick manually (tests) or call Start for the
// background loop. All methods are safe for concurrent use.
type Engine struct {
	cfg    Config
	reg    *obs.Registry
	m      *obs.SLOMetrics
	tracer *trace.Tracer
	rec    *Recorder
	log    *slog.Logger
	hub    *hub

	mu         sync.Mutex
	objs       []*objective
	firing     int
	critFiring int
	lastTick   time.Time
	ticks      uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates cfg, binds every objective to its live instruments on
// d.Metrics, and registers the lexp_slo_* instrument families there.
// One registry carries at most one engine (registration is
// panic-on-duplicate by design).
func New(cfg Config, d Deps) (*Engine, error) {
	if d.Metrics == nil {
		return nil, fmt.Errorf("slo: Deps.Metrics is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	// Ring capacity: enough samples to cover the longest lookback window
	// at the configured tick, bounded so a pathological interval cannot
	// eat memory (beyond the bound, long windows measure over the
	// retained horizon — still monotone, just truncated).
	longest := cfg.Windows.Budget
	for _, w := range []Duration{cfg.Windows.FastLong, cfg.Windows.SlowLong} {
		if w > longest {
			longest = w
		}
	}
	capacity := int(longest.Std()/cfg.Interval.Std()) + 2
	if capacity < 16 {
		capacity = 16
	}
	if capacity > 8192 {
		capacity = 8192
	}

	e := &Engine{
		cfg:    cfg,
		reg:    d.Metrics,
		m:      obs.NewSLOMetrics(d.Metrics),
		tracer: d.Tracer,
		rec:    d.Recorder,
		log:    d.Logger,
		hub:    newHub(cfg.AlertBacklog),
		stop:   make(chan struct{}),
	}
	for _, spec := range cfg.Objectives {
		src, err := newSource(d.Metrics, spec)
		if err != nil {
			return nil, err
		}
		e.objs = append(e.objs, &objective{
			spec:  spec,
			src:   src,
			ring:  newSampleRing(capacity),
			m:     e.m.Objective(spec.Name),
			state: StateInactive,
		})
	}
	if e.rec != nil {
		e.rec.attach(e, len(e.objs))
	}
	return e, nil
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Recorder returns the attached flight recorder (nil when absent).
func (e *Engine) Recorder() *Recorder { return e.rec }

// SubscribeAlerts returns a channel replaying recent alert transitions
// and then streaming live ones, plus a cancel func. The channel closes
// after Stop (or cancel).
func (e *Engine) SubscribeAlerts() (<-chan AlertEvent, func()) {
	return e.hub.subscribe()
}

// Start launches the background evaluation loop at the configured
// interval. Stop ends it.
func (e *Engine) Start() {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		t := time.NewTicker(e.cfg.Interval.Std())
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				e.Tick(now)
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop ends the evaluation loop and closes every alert subscription
// (after their backlogs drain). Idempotent.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	e.hub.close()
}

// Tick runs one evaluation pass as of now. Exported so tests (and the
// bench suite) can drive a synthetic clock; the Start loop calls it
// with wall time. Steady state — no alert transition — allocates
// nothing.
func (e *Engine) Tick(now time.Time) {
	e.mu.Lock()
	e.lastTick = now
	e.ticks++

	var slot []ObjectiveTick
	if e.rec != nil {
		slot = e.rec.beginTick(now)
	}

	var fired []*objective
	firing, critical := 0, 0
	for i, o := range e.objs {
		prev := o.state
		e.evaluate(o, now)
		if o.state != prev {
			e.publishTransition(o, prev, now)
			if o.state == StateFiring {
				fired = append(fired, o)
			}
		}
		if o.state == StateFiring {
			firing++
			if o.spec.Critical {
				critical++
			}
		}
		if slot != nil {
			slot[i] = ObjectiveTick{
				Objective: o.spec.Name,
				State:     o.state,
				Good:      o.good,
				Total:     o.total,
				Burn:      o.burn,
				Budget:    o.budget,
			}
			if prevTick, ok := e.rec.prevTick(i); ok {
				slot[i].DGood = o.good - prevTick.Good
				slot[i].DTotal = o.total - prevTick.Total
			}
		}
	}
	e.firing, e.critFiring = firing, critical
	e.m.Evaluations.Inc()
	e.m.AlertsFiring.Set(float64(firing))

	// Dump after state settles so the report inside the dump already
	// shows the firing objective. Rare path; allocation is fine here.
	var report *Report
	if len(fired) > 0 && e.rec != nil {
		report = e.reportLocked(now)
	}
	e.mu.Unlock()

	if report != nil {
		for _, o := range fired {
			path, err := e.rec.dump("alert-firing-"+o.spec.Name, report)
			if e.log != nil {
				if err != nil {
					e.log.Error("flight-recorder dump failed", "objective", o.spec.Name, "err", err)
				} else if path != "" {
					e.log.Info("flight-recorder dump written", "objective", o.spec.Name, "path", path)
				}
			}
		}
	}
}

// evaluate advances one objective's burn rates and alert state. Callers
// hold e.mu.
func (e *Engine) evaluate(o *objective, now time.Time) {
	good, total, ok := o.src.sample()
	o.hasData = ok
	if !ok {
		// Instruments not live yet: no data, no alert pressure.
		o.burn = [4]float64{}
		o.budget = 1
		o.fastActive, o.slowActive = false, false
	} else {
		o.good, o.total = good, total
		o.ring.push(sample{t: now.UnixNano(), good: good, total: total})

		w := e.cfg.Windows
		o.burn[0] = o.burnOver(now, w.FastShort)
		o.burn[1] = o.burnOver(now, w.FastLong)
		o.burn[2] = o.burnOver(now, w.SlowShort)
		o.burn[3] = o.burnOver(now, w.SlowLong)
		o.budget = 1 - o.burnOver(now, w.Budget)

		o.fastActive = o.burn[0] >= w.FastBurn && o.burn[1] >= w.FastBurn
		o.slowActive = o.burn[2] >= w.SlowBurn && o.burn[3] >= w.SlowBurn
	}

	active := o.fastActive || o.slowActive
	switch o.state {
	case StateInactive, StateResolved:
		if active {
			o.state = StatePending
			o.since, o.pendingSince = now, now
		}
	case StatePending:
		if !active {
			// A pending alert that clears never fired: return to inactive
			// silently (the state gauge still moves).
			o.state = StateInactive
			o.since = now
		} else if now.Sub(o.pendingSince) >= e.cfg.Windows.For.Std() {
			o.state = StateFiring
			o.since = now
		}
	case StateFiring:
		if !active {
			o.state = StateResolved
			o.since = now
		}
	}

	o.m.BurnFastShort.Set(o.burn[0])
	o.m.BurnFastLong.Set(o.burn[1])
	o.m.BurnSlowShort.Set(o.burn[2])
	o.m.BurnSlowLong.Set(o.burn[3])
	o.m.BudgetRemaining.Set(o.budget)
	o.m.State.Set(stateGauge(o.state))
}

// burnOver measures the error-budget burn rate across the trailing
// window: the bad-event fraction of the window's traffic divided by the
// error budget (1 - target). Zero traffic burns nothing — which is also
// what lets a quiet system recover: once the window holds only
// flat samples, the burn is 0 and firing alerts resolve.
func (o *objective) burnOver(now time.Time, window Duration) float64 {
	prev, ok := o.ring.before(now.Add(-window.Std()).UnixNano())
	if !ok {
		return 0
	}
	dTotal := o.total - prev.total
	if dTotal <= 0 {
		return 0
	}
	dBad := dTotal - (o.good - prev.good)
	if dBad <= 0 {
		return 0
	}
	return (dBad / dTotal) / (1 - o.spec.Target)
}

// publishTransition fans one state change out to the alert hub,
// metrics, the structured log and the flight recorder. Callers hold
// e.mu. Pending→inactive moves only the gauge, not the stream.
func (e *Engine) publishTransition(o *objective, prev string, now time.Time) AlertEvent {
	switch o.state {
	case StatePending:
		o.m.ToPending.Inc()
	case StateFiring:
		o.m.ToFiring.Inc()
	case StateResolved:
		o.m.ToResolved.Inc()
	default:
		return AlertEvent{} // pending → inactive: silent
	}
	ev := AlertEvent{
		Time:            now,
		Objective:       o.spec.Name,
		Kind:            o.spec.Kind,
		State:           o.state,
		Prev:            prev,
		Critical:        o.spec.Critical,
		BurnFastShort:   o.burn[0],
		BurnFastLong:    o.burn[1],
		BurnSlowShort:   o.burn[2],
		BurnSlowLong:    o.burn[3],
		BudgetRemaining: o.budget,
		Message: fmt.Sprintf("objective %s: %s -> %s (budget remaining %.3f)",
			o.spec.Name, prev, o.state, o.budget),
	}
	ev = e.hub.publish(ev)
	if e.rec != nil {
		e.rec.noteAlert(ev)
	}
	if e.log != nil {
		e.log.LogAttrs(context.Background(), transitionLevel(o.state), "slo alert transition",
			slog.String("objective", o.spec.Name),
			slog.String("state", o.state),
			slog.String("prev", prev),
			slog.Float64("budget_remaining", o.budget),
			slog.Float64("burn_fast_short", o.burn[0]),
			slog.Bool("critical", o.spec.Critical))
	}
	return ev
}

func transitionLevel(state string) slog.Level {
	switch state {
	case StateFiring:
		return slog.LevelError
	case StatePending:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

// ---- health ----

// HealthSource reports one subsystem's readiness verdict; /readyz
// aggregates them. status is a short token surfaced in the readyz body
// when not ok (e.g. "shedding", "slo_firing").
type HealthSource interface {
	HealthName() string
	Healthy() (ok bool, status string)
}

// healthFunc adapts a closure to a HealthSource.
type healthFunc struct {
	name string
	fn   func() (bool, string)
}

func (h healthFunc) HealthName() string           { return h.name }
func (h healthFunc) Healthy() (ok bool, s string) { return h.fn() }

// HealthFunc adapts fn to a HealthSource.
func HealthFunc(name string, fn func() (ok bool, status string)) HealthSource {
	return healthFunc{name: name, fn: fn}
}

// HealthName implements HealthSource.
func (e *Engine) HealthName() string { return "slo" }

// Healthy implements HealthSource: the engine is unhealthy while any
// critical objective is firing, which fails /readyz and (in a cluster)
// steers the router away from this replica.
func (e *Engine) Healthy() (bool, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.critFiring > 0 {
		return false, "slo_firing"
	}
	return true, "ready"
}

// ---- report ----

// BurnRates is one objective's burn per evaluation window.
type BurnRates struct {
	FastShort float64 `json:"fast_short"`
	FastLong  float64 `json:"fast_long"`
	SlowShort float64 `json:"slow_short"`
	SlowLong  float64 `json:"slow_long"`
}

// ObjectiveStatus is one objective's line in the /debug/slo report.
type ObjectiveStatus struct {
	Objective
	State           string    `json:"state"`
	Since           time.Time `json:"since"`
	HasData         bool      `json:"has_data"`
	GoodEvents      float64   `json:"good_events"`
	TotalEvents     float64   `json:"total_events"`
	BudgetRemaining float64   `json:"error_budget_remaining"`
	Burn            BurnRates `json:"burn"`
}

// Report is the /debug/slo payload.
type Report struct {
	Time         time.Time         `json:"time"`
	Interval     Duration          `json:"interval"`
	Windows      Windows           `json:"windows"`
	Evaluations  uint64            `json:"evaluations"`
	AlertsFiring int               `json:"alerts_firing"`
	Objectives   []ObjectiveStatus `json:"objectives"`
}

// Report summarizes every objective's current judgement.
func (e *Engine) Report() *Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reportLocked(e.lastTick)
}

func (e *Engine) reportLocked(now time.Time) *Report {
	rep := &Report{
		Time:         now,
		Interval:     e.cfg.Interval,
		Windows:      e.cfg.Windows,
		Evaluations:  e.ticks,
		AlertsFiring: e.firing,
		Objectives:   make([]ObjectiveStatus, 0, len(e.objs)),
	}
	for _, o := range e.objs {
		rep.Objectives = append(rep.Objectives, ObjectiveStatus{
			Objective:       o.spec,
			State:           o.state,
			Since:           o.since,
			HasData:         o.hasData,
			GoodEvents:      o.good,
			TotalEvents:     o.total,
			BudgetRemaining: o.budget,
			Burn: BurnRates{
				FastShort: o.burn[0], FastLong: o.burn[1],
				SlowShort: o.burn[2], SlowLong: o.burn[3],
			},
		})
	}
	return rep
}
