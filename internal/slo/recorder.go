package slo

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"longexposure/internal/trace"
)

// RecorderConfig sizes a flight recorder. Zero values take the noted
// defaults.
type RecorderConfig struct {
	// Dir is where dumps land. Empty disables on-disk dumps (the live
	// ring and /debug/flightrecorder still work).
	Dir string
	// LogRing bounds retained slog records (default 256).
	LogRing int
	// TickRing bounds retained per-tick metric deltas (default 120 —
	// 20 minutes at the default 10s tick).
	TickRing int
	// AlertRing bounds retained alert transitions (default 64).
	AlertRing int
	// SpanLimit bounds recent traces included per dump (default 10).
	SpanLimit int
	// MaxDumps bounds dump files retained in Dir; the oldest are pruned
	// (default 16).
	MaxDumps int
}

func (c RecorderConfig) withDefaults() RecorderConfig {
	if c.LogRing <= 0 {
		c.LogRing = 256
	}
	if c.TickRing <= 0 {
		c.TickRing = 120
	}
	if c.AlertRing <= 0 {
		c.AlertRing = 64
	}
	if c.SpanLimit <= 0 {
		c.SpanLimit = 10
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 16
	}
	return c
}

// LogRecord is one captured slog record, as retained in the ring and
// rendered into dumps.
type LogRecord struct {
	Time    time.Time         `json:"time"`
	Level   string            `json:"level"`
	Message string            `json:"msg"`
	TraceID string            `json:"trace_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// ObjectiveTick is one objective's reading at one evaluation tick: the
// cumulative counts, their delta since the previous tick, and the
// derived judgement — the "metric snapshot delta" axis of a dump.
type ObjectiveTick struct {
	Objective string     `json:"objective"`
	State     string     `json:"state"`
	Good      float64    `json:"good"`
	Total     float64    `json:"total"`
	DGood     float64    `json:"d_good"`
	DTotal    float64    `json:"d_total"`
	Burn      [4]float64 `json:"burn"` // fast_short, fast_long, slow_short, slow_long
	Budget    float64    `json:"budget_remaining"`
}

// TickDelta is one whole evaluation tick in the ring.
type TickDelta struct {
	Time       time.Time       `json:"time"`
	Objectives []ObjectiveTick `json:"objectives"`
}

// Dump is the flight-recorder payload: everything the black box knows,
// correlated — alert transitions, recent log records (with trace ids),
// span trees from the trace ring, and per-tick metric deltas.
type Dump struct {
	Time         time.Time           `json:"time"`
	Reason       string              `json:"reason"`
	Alerts       []AlertEvent        `json:"alerts,omitempty"`
	Logs         []LogRecord         `json:"logs,omitempty"`
	RecentTraces []trace.TraceRecord `json:"recent_traces,omitempty"`
	SlowestSpans []*trace.SpanRecord `json:"slowest_spans,omitempty"`
	MetricDeltas []TickDelta         `json:"metric_deltas,omitempty"`
	SLO          *Report             `json:"slo,omitempty"`
	// WideEvents carries the accounting plane's most recent per-request
	// resource records, captured at snapshot time via SetEventSource. The
	// concrete type is whatever the source returns (the account plane
	// hands back its event slice) — slo stays decoupled from accounting.
	WideEvents any `json:"wide_events,omitempty"`
}

// DumpFile describes one dump on disk.
type DumpFile struct {
	Name    string    `json:"name"`
	Size    int64     `json:"size"`
	ModTime time.Time `json:"mod_time"`
}

// Recorder is the black-box flight recorder: fixed-size rings of log
// records, alert transitions and per-tick metric deltas, dumped
// atomically (write temp + rename) to disk on alert-firing, SIGQUIT or
// panic. Construct with NewRecorder; attach to an Engine via Deps.
type Recorder struct {
	cfg    RecorderConfig
	tracer *trace.Tracer // nil: dumps carry no spans

	mu     sync.Mutex
	engine *Engine // attached by Engine.New; nil until then

	logs    []LogRecord
	logHead int
	logN    int

	alerts    []AlertEvent
	alertHead int
	alertN    int

	// Per-tick delta ring. Slots are preallocated on first use and then
	// refilled in place, so recording a tick never allocates at steady
	// state.
	ticks     [][]ObjectiveTick
	tickTimes []int64
	tickHead  int
	tickN     int
	tickTotal int // ticks ever recorded (for first-tick delta suppression)
	nObjs     int

	// events, when set, supplies the wide-event window included in every
	// snapshot (see Dump.WideEvents).
	events func() any

	dumpSeq int
}

// NewRecorder builds a flight recorder. tracer may be nil.
func NewRecorder(cfg RecorderConfig, tracer *trace.Tracer) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:       cfg,
		tracer:    tracer,
		logs:      make([]LogRecord, cfg.LogRing),
		alerts:    make([]AlertEvent, cfg.AlertRing),
		ticks:     make([][]ObjectiveTick, cfg.TickRing),
		tickTimes: make([]int64, cfg.TickRing),
	}
}

// Dir returns the dump directory ("" when on-disk dumps are disabled).
func (r *Recorder) Dir() string { return r.cfg.Dir }

// SetEventSource attaches a wide-event source consulted at every
// snapshot — typically func() any { return plane.Recent(n) } over the
// accounting plane, so dumps carry the last requests' resource records
// alongside the spans, logs and metric deltas they join by trace id.
func (r *Recorder) SetEventSource(fn func() any) {
	r.mu.Lock()
	r.events = fn
	r.mu.Unlock()
}

// attach is called by Engine.New.
func (r *Recorder) attach(e *Engine, nObjs int) {
	r.mu.Lock()
	r.engine = e
	r.nObjs = nObjs
	r.mu.Unlock()
}

// beginTick claims and returns the next tick slot, sized for the
// attached engine's objectives. The caller (Engine.Tick, holding its
// own lock) fills the slot in place. Allocation-free once every ring
// slot has been claimed once.
func (r *Recorder) beginTick(now time.Time) []ObjectiveTick {
	r.mu.Lock()
	defer r.mu.Unlock()
	var i int
	if r.tickN < len(r.ticks) {
		i = (r.tickHead + r.tickN) % len(r.ticks)
		r.tickN++
	} else {
		i = r.tickHead
		r.tickHead = (r.tickHead + 1) % len(r.ticks)
	}
	r.tickTotal++
	r.tickTimes[i] = now.UnixNano()
	if cap(r.ticks[i]) < r.nObjs {
		r.ticks[i] = make([]ObjectiveTick, r.nObjs)
	}
	r.ticks[i] = r.ticks[i][:r.nObjs]
	return r.ticks[i]
}

// prevTick returns objective i's reading from the tick before the one
// beginTick just claimed, for delta computation. ok is false on the
// first tick.
func (r *Recorder) prevTick(i int) (ObjectiveTick, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tickTotal < 2 || len(r.ticks) < 2 {
		return ObjectiveTick{}, false
	}
	// The slot beginTick just claimed is logical tickN-1; its
	// predecessor is logical tickN-2.
	prev := (r.tickHead + r.tickN - 2 + len(r.ticks)) % len(r.ticks)
	if i >= len(r.ticks[prev]) {
		return ObjectiveTick{}, false
	}
	return r.ticks[prev][i], true
}

// noteAlert retains one alert transition.
func (r *Recorder) noteAlert(e AlertEvent) {
	r.mu.Lock()
	if r.alertN < len(r.alerts) {
		r.alerts[(r.alertHead+r.alertN)%len(r.alerts)] = e
		r.alertN++
	} else {
		r.alerts[r.alertHead] = e
		r.alertHead = (r.alertHead + 1) % len(r.alerts)
	}
	r.mu.Unlock()
}

// noteLog retains one log record.
func (r *Recorder) noteLog(rec LogRecord) {
	r.mu.Lock()
	if r.logN < len(r.logs) {
		r.logs[(r.logHead+r.logN)%len(r.logs)] = rec
		r.logN++
	} else {
		r.logs[r.logHead] = rec
		r.logHead = (r.logHead + 1) % len(r.logs)
	}
	r.mu.Unlock()
}

// Snapshot assembles the live black-box state (the /debug/flightrecorder
// payload and the body of every dump).
func (r *Recorder) Snapshot(reason string) Dump {
	var report *Report
	r.mu.Lock()
	engine := r.engine
	r.mu.Unlock()
	if engine != nil {
		report = engine.Report()
	}
	return r.snapshot(reason, report)
}

func (r *Recorder) snapshot(reason string, report *Report) Dump {
	d := Dump{Time: time.Now(), Reason: reason, SLO: report}

	r.mu.Lock()
	d.Logs = make([]LogRecord, 0, r.logN)
	for i := 0; i < r.logN; i++ {
		d.Logs = append(d.Logs, r.logs[(r.logHead+i)%len(r.logs)])
	}
	d.Alerts = make([]AlertEvent, 0, r.alertN)
	for i := 0; i < r.alertN; i++ {
		d.Alerts = append(d.Alerts, r.alerts[(r.alertHead+i)%len(r.alerts)])
	}
	d.MetricDeltas = make([]TickDelta, 0, r.tickN)
	for i := 0; i < r.tickN; i++ {
		j := (r.tickHead + i) % len(r.ticks)
		td := TickDelta{Time: time.Unix(0, r.tickTimes[j])}
		td.Objectives = append([]ObjectiveTick(nil), r.ticks[j]...)
		d.MetricDeltas = append(d.MetricDeltas, td)
	}
	events := r.events
	r.mu.Unlock()

	if events != nil {
		d.WideEvents = events()
	}
	if r.tracer != nil {
		d.RecentTraces, d.SlowestSpans = r.tracer.Snapshot(r.cfg.SpanLimit)
	}
	return d
}

// Dump assembles and writes one dump, returning its path. With no
// configured directory it returns "" and no error (the snapshot is
// still useful via /debug/flightrecorder). Dumps are written to a temp
// file and renamed into place, so a reader never sees a torn file even
// if the process dies mid-dump.
func (r *Recorder) Dump(reason string) (string, error) {
	return r.writeDump(r.Snapshot(reason))
}

// dump is Dump with the report already in hand — the engine calls it
// from inside Tick, where calling back into Engine.Report would
// deadlock.
func (r *Recorder) dump(reason string, report *Report) (string, error) {
	return r.writeDump(r.snapshot(reason, report))
}

func (r *Recorder) writeDump(d Dump) (string, error) {
	if r.cfg.Dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("slo: flight recorder: %w", err)
	}
	r.mu.Lock()
	r.dumpSeq++
	seq := r.dumpSeq
	r.mu.Unlock()

	name := fmt.Sprintf("flight-%s-%04d-%s.json",
		d.Time.UTC().Format("20060102T150405"), seq, sanitizeReason(d.Reason))
	path := filepath.Join(r.cfg.Dir, name)
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", fmt.Errorf("slo: flight recorder: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return "", fmt.Errorf("slo: flight recorder: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("slo: flight recorder: %w", err)
	}
	r.prune()
	return path, nil
}

// List returns the on-disk dumps, newest first.
func (r *Recorder) List() []DumpFile {
	if r.cfg.Dir == "" {
		return nil
	}
	names, err := filepath.Glob(filepath.Join(r.cfg.Dir, "flight-*.json"))
	if err != nil {
		return nil
	}
	out := make([]DumpFile, 0, len(names))
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			continue
		}
		out = append(out, DumpFile{Name: filepath.Base(n), Size: fi.Size(), ModTime: fi.ModTime()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name > out[j].Name })
	return out
}

// prune removes the oldest dumps beyond MaxDumps. Filenames sort
// chronologically by construction.
func (r *Recorder) prune() {
	names, err := filepath.Glob(filepath.Join(r.cfg.Dir, "flight-*.json"))
	if err != nil || len(names) <= r.cfg.MaxDumps {
		return
	}
	sort.Strings(names)
	for _, n := range names[:len(names)-r.cfg.MaxDumps] {
		os.Remove(n)
	}
}

// HandlePanic is a deferred panic hook: it dumps the black box with the
// panic value as the reason, then re-panics so the process still dies
// with its stack trace. Usage: defer rec.HandlePanic().
func (r *Recorder) HandlePanic() {
	if p := recover(); p != nil {
		r.Dump(fmt.Sprintf("panic-%v", p))
		panic(p)
	}
}

func sanitizeReason(reason string) string {
	var b strings.Builder
	for _, c := range reason {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	s := b.String()
	if len(s) > 48 {
		s = s[:48]
	}
	if s == "" {
		s = "manual"
	}
	return s
}

// ---- log capture ----

// logCaptureHandler tees slog records into the recorder's ring before
// delegating to the wrapped handler. Wrap the OUTERMOST handler (e.g.
// the trace-aware one), so the recorder captures everything the
// application logs; trace ids are extracted from the context directly.
type logCaptureHandler struct {
	rec   *Recorder
	inner slog.Handler
	attrs []slog.Attr // accumulated WithAttrs context
}

// LogHandler wraps inner so every record the logger emits is also
// retained in the recorder's bounded ring.
func (r *Recorder) LogHandler(inner slog.Handler) slog.Handler {
	return &logCaptureHandler{rec: r, inner: inner}
}

func (h *logCaptureHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *logCaptureHandler) Handle(ctx context.Context, rec slog.Record) error {
	lr := LogRecord{Time: rec.Time, Level: rec.Level.String(), Message: rec.Message}
	if s := trace.FromContext(ctx); s != nil {
		lr.TraceID = s.TraceID().String()
	}
	n := rec.NumAttrs() + len(h.attrs)
	if n > 0 {
		lr.Attrs = make(map[string]string, n)
		for _, a := range h.attrs {
			lr.Attrs[a.Key] = a.Value.String()
		}
		rec.Attrs(func(a slog.Attr) bool {
			lr.Attrs[a.Key] = a.Value.String()
			if lr.TraceID == "" && a.Key == "trace_id" {
				lr.TraceID = a.Value.String()
			}
			return true
		})
	}
	h.rec.noteLog(lr)
	return h.inner.Handle(ctx, rec)
}

func (h *logCaptureHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &logCaptureHandler{rec: h.rec, inner: h.inner.WithAttrs(attrs), attrs: merged}
}

func (h *logCaptureHandler) WithGroup(name string) slog.Handler {
	// Groups pass through to the inner handler; ring capture stays flat.
	return &logCaptureHandler{rec: h.rec, inner: h.inner.WithGroup(name), attrs: h.attrs}
}
