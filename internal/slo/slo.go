// Package slo is the daemon's judgement plane: it turns the raw
// instruments internal/obs accumulates into declarative service-level
// objectives, evaluates them on a fixed tick by diffing live counter
// and histogram state into windowed rates, and runs a Google-SRE-style
// multi-window multi-burn-rate alert state machine (pending → firing →
// resolved) per objective. Results surface three ways: lexp_slo_*
// metrics on the same registry the objectives read, a JSON report with
// error-budget remaining (GET /debug/slo), and an SSE alert stream
// (GET /v1/alerts) built on the bounded-backlog machinery in
// internal/events.
//
// The evaluation tick is allocation-free at steady state: objectives
// bind live instrument handles through the registry's Peek lookups
// (precomputed label keys, no snapshot, no closure), samples land in
// fixed-capacity rings, and burn rates are plain arithmetic over ring
// deltas. Alert transitions — rare by construction — are the only
// allocating events.
//
// The companion flight recorder (recorder.go) keeps a black-box ring of
// recent log records, alert transitions and per-tick metric deltas, and
// dumps them (with span trees from internal/trace) atomically to disk
// when an alert fires, on SIGQUIT, or on panic.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("5m", "1h30m") or a plain number of seconds, so SLO config
// files stay human-writable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("slo: empty duration")
	}
	if b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("slo: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	secs, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("slo: bad duration %s: %w", b, err)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Kind names what signal an objective judges.
type Kind string

const (
	// KindLatency judges per-route request latency against a threshold:
	// good events are requests the lexp_http_request_seconds{route}
	// histogram bucketizes at or under Threshold seconds.
	KindLatency Kind = "latency"
	// KindAvailability judges per-route availability: bad events are 5xx
	// responses in lexp_http_requests_total{route,code}.
	KindAvailability Kind = "availability"
	// KindQueueWait judges admission quality for one guarded endpoint:
	// good events waited at most Threshold seconds in the admission
	// queue (lexp_limit_wait_seconds{endpoint}); requests shed for
	// queue_full or timeout count as bad.
	KindQueueWait Kind = "queue_wait"
	// KindJobFailure judges the async job plane: bad events are jobs
	// reaching the failed status in lexp_jobs_completed_total.
	KindJobFailure Kind = "job_failure"
	// KindDensityDrift judges sparse-serving quality: a tick is bad when
	// the mean live per-layer density (lexp_sparse_serving_*_density)
	// drifts more than Threshold from the Expected plan density.
	KindDensityDrift Kind = "density_drift"
)

// Objective is one declarative SLO.
type Objective struct {
	// Name identifies the objective in metrics, reports and alerts.
	Name string `json:"name"`
	// Kind selects the signal (see the Kind constants).
	Kind Kind `json:"kind"`
	// Route scopes latency/availability objectives to one route pattern
	// (e.g. "POST /v1/generate") and queue_wait objectives to one
	// admission endpoint (e.g. "generate").
	Route string `json:"route,omitempty"`
	// Signal selects the density family for density_drift: "mlp"
	// (default) or "attn".
	Signal string `json:"signal,omitempty"`
	// Threshold is the good/bad cut: seconds for latency and queue_wait,
	// absolute density deviation for density_drift. Unused otherwise.
	Threshold float64 `json:"threshold,omitempty"`
	// Expected is the requested plan density a density_drift objective
	// compares against.
	Expected float64 `json:"expected,omitempty"`
	// Target is the objective: the minimum good fraction, in (0, 1),
	// e.g. 0.99. The error budget is 1 - Target.
	Target float64 `json:"target"`
	// Critical marks objectives whose firing alerts flip the engine's
	// HealthSource to unhealthy, failing /readyz.
	Critical bool `json:"critical,omitempty"`
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %s: target must be in (0, 1), got %g", o.Name, o.Target)
	}
	switch o.Kind {
	case KindLatency, KindQueueWait:
		if o.Route == "" {
			return fmt.Errorf("slo: objective %s: %s needs a route", o.Name, o.Kind)
		}
		if o.Threshold <= 0 {
			return fmt.Errorf("slo: objective %s: %s needs a positive threshold (seconds)", o.Name, o.Kind)
		}
	case KindAvailability:
		if o.Route == "" {
			return fmt.Errorf("slo: objective %s: availability needs a route", o.Name)
		}
	case KindJobFailure:
	case KindDensityDrift:
		if o.Threshold <= 0 || o.Threshold >= 1 {
			return fmt.Errorf("slo: objective %s: density_drift needs a threshold in (0, 1)", o.Name)
		}
		if o.Expected <= 0 || o.Expected > 1 {
			return fmt.Errorf("slo: objective %s: density_drift needs expected density in (0, 1]", o.Name)
		}
		if o.Signal != "" && o.Signal != "mlp" && o.Signal != "attn" {
			return fmt.Errorf("slo: objective %s: signal must be mlp or attn, got %q", o.Name, o.Signal)
		}
	default:
		return fmt.Errorf("slo: objective %s: unknown kind %q", o.Name, o.Kind)
	}
	return nil
}

// Windows configures the multi-window multi-burn-rate alert rules — the
// Google SRE workbook shape. An objective alerts when either rule is
// active; a rule is active when the burn rate over BOTH its windows
// meets its threshold (the short window gates on current behavior, the
// long window on sustained damage, so a recovered incident stops
// alerting fast).
type Windows struct {
	// Fast rule: catches sharp burns quickly. Defaults 5m / 1h at 14.4x
	// (2% of a 30-day budget in one hour, scaled to the budget window).
	FastShort Duration `json:"fast_short"`
	FastLong  Duration `json:"fast_long"`
	FastBurn  float64  `json:"fast_burn"`
	// Slow rule: catches sustained moderate burns. Defaults 30m / 6h at 6x.
	SlowShort Duration `json:"slow_short"`
	SlowLong  Duration `json:"slow_long"`
	SlowBurn  float64  `json:"slow_burn"`
	// For is how long a rule must stay active before pending escalates
	// to firing. Default 2 evaluation intervals.
	For Duration `json:"for"`
	// Budget is the error-budget accounting horizon for the
	// budget-remaining gauge and report. Default: SlowLong (the ring
	// only retains enough history for the longest alert window).
	Budget Duration `json:"budget"`
}

func (w Windows) withDefaults(interval Duration) Windows {
	def := func(d *Duration, v time.Duration) {
		if *d <= 0 {
			*d = Duration(v)
		}
	}
	def(&w.FastShort, 5*time.Minute)
	def(&w.FastLong, time.Hour)
	def(&w.SlowShort, 30*time.Minute)
	def(&w.SlowLong, 6*time.Hour)
	def(&w.For, 2*interval.Std())
	def(&w.Budget, w.SlowLong.Std())
	if w.FastBurn <= 0 {
		w.FastBurn = 14.4
	}
	if w.SlowBurn <= 0 {
		w.SlowBurn = 6
	}
	return w
}

func (w Windows) validate() error {
	if w.FastShort >= w.FastLong {
		return fmt.Errorf("slo: fast_short (%v) must be shorter than fast_long (%v)", w.FastShort.Std(), w.FastLong.Std())
	}
	if w.SlowShort >= w.SlowLong {
		return fmt.Errorf("slo: slow_short (%v) must be shorter than slow_long (%v)", w.SlowShort.Std(), w.SlowLong.Std())
	}
	return nil
}

// Config is a full SLO engine configuration, as loaded from the
// -slo-config JSON file.
type Config struct {
	// Interval is the evaluation tick period. Default 10s.
	Interval Duration `json:"interval"`
	// Windows configures the alert rules (see Windows).
	Windows Windows `json:"windows"`
	// Objectives are the SLOs to evaluate.
	Objectives []Objective `json:"objectives"`
	// AlertBacklog bounds each /v1/alerts subscriber's pending queue.
	// Default 256.
	AlertBacklog int `json:"alert_backlog"`
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = Duration(10 * time.Second)
	}
	c.Windows = c.Windows.withDefaults(c.Interval)
	if c.AlertBacklog <= 0 {
		c.AlertBacklog = 256
	}
	return c
}

// Validate checks the configuration (after defaulting).
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.Windows.validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, o := range c.Objectives {
		if err := o.validate(); err != nil {
			return err
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
	}
	return nil
}

// LoadConfig reads and validates a JSON config file.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("slo: read config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(b, &c); err != nil {
		return Config{}, fmt.Errorf("slo: parse config %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("slo: config %s: %w", path, err)
	}
	return c, nil
}

// DefaultConfig is the built-in objective set longexpd uses with
// -slo-config=default: latency and availability on the generate route,
// admission queue wait, job failures, and MLP serving-density drift.
func DefaultConfig() Config {
	return Config{
		Objectives: []Objective{
			{Name: "generate-latency", Kind: KindLatency, Route: "POST /v1/generate",
				Threshold: 2, Target: 0.95, Critical: true},
			{Name: "generate-availability", Kind: KindAvailability, Route: "POST /v1/generate",
				Target: 0.999, Critical: true},
			{Name: "generate-queue-wait", Kind: KindQueueWait, Route: "generate",
				Threshold: 0.5, Target: 0.95},
			{Name: "job-failures", Kind: KindJobFailure, Target: 0.9},
			{Name: "serving-density-drift", Kind: KindDensityDrift, Signal: "mlp",
				Expected: 0.5, Threshold: 0.25, Target: 0.9},
		},
	}
}
