package slo

import (
	"sync"
	"time"

	"longexposure/internal/events"
)

// Alert states. The gauge encoding (lexp_slo_alert_state) is their
// index: 0 inactive, 1 pending, 2 firing, 3 resolved.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
	// StateLost marks a synthesized slow-consumer gap on the alert
	// stream, never a real objective state.
	StateLost = "lost"
)

func stateGauge(state string) float64 {
	switch state {
	case StatePending:
		return 1
	case StateFiring:
		return 2
	case StateResolved:
		return 3
	default:
		return 0
	}
}

// AlertEvent is one alert state transition, as delivered on the
// /v1/alerts SSE stream and retained in the flight recorder.
type AlertEvent struct {
	Seq       int64     `json:"seq"`
	Time      time.Time `json:"time"`
	Objective string    `json:"objective,omitempty"`
	Kind      Kind      `json:"kind,omitempty"`
	State     string    `json:"state"`
	Prev      string    `json:"prev,omitempty"`
	Critical  bool      `json:"critical,omitempty"`

	// Burn rates per window at transition time.
	BurnFastShort float64 `json:"burn_fast_short,omitempty"`
	BurnFastLong  float64 `json:"burn_fast_long,omitempty"`
	BurnSlowShort float64 `json:"burn_slow_short,omitempty"`
	BurnSlowLong  float64 `json:"burn_slow_long,omitempty"`
	// BudgetRemaining is the error-budget fraction left over the budget
	// window (1 = untouched).
	BudgetRemaining float64 `json:"budget_remaining"`

	// Lost counts dropped events when State is "lost".
	Lost    int    `json:"lost,omitempty"`
	Message string `json:"message,omitempty"`
}

// hub fans alert transitions out to /v1/alerts subscribers, replaying a
// bounded ring of recent transitions to newcomers. It reuses the same
// bounded-backlog subscriber machinery job event streams run on.
type hub struct {
	backlog int

	mu     sync.Mutex
	seq    int64
	recent []AlertEvent // bounded replay ring, oldest first
	subs   []*events.Subscriber[AlertEvent]
	closed bool
}

const hubRecent = 64

func newHub(backlog int) *hub { return &hub{backlog: backlog} }

// publish stamps a sequence number and fans the event out. Returns the
// stamped event (for the flight recorder).
func (h *hub) publish(e AlertEvent) AlertEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	e.Seq = h.seq
	if h.closed {
		return e
	}
	h.recent = append(h.recent, e)
	if len(h.recent) > hubRecent {
		h.recent = h.recent[len(h.recent)-hubRecent:]
	}
	for _, sub := range h.subs {
		sub.Push(e)
	}
	return e
}

// subscribe returns a channel replaying recent transitions then
// streaming live ones, plus a cancel func (safe to call repeatedly).
// On a closed hub the channel closes after the replay.
func (h *hub) subscribe() (<-chan AlertEvent, func()) {
	h.mu.Lock()
	replay := append([]AlertEvent(nil), h.recent...)
	sub := events.New(replay, events.Options[AlertEvent]{
		Backlog: h.backlog,
		Lost: func(lost int, first, next AlertEvent) AlertEvent {
			return AlertEvent{
				Seq:   first.Seq,
				Time:  time.Now(),
				State: StateLost,
				Lost:  lost,
			}
		},
	})
	if h.closed {
		sub.Close()
	} else {
		h.subs = append(h.subs, sub)
	}
	h.mu.Unlock()
	cancel := func() {
		sub.Drop()
		h.mu.Lock()
		for i, x := range h.subs {
			if x == sub {
				h.subs = append(h.subs[:i], h.subs[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
	}
	return sub.C(), cancel
}

// close ends every subscription after its backlog drains. Idempotent.
func (h *hub) close() {
	h.mu.Lock()
	h.closed = true
	subs := h.subs
	h.subs = nil
	h.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}
