package slo

import (
	"encoding/json"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"longexposure/internal/obs"
	"longexposure/internal/trace"
)

// quietHandler discards output; tests only care about the recorder tee.
// It must stay Enabled at Info, or slog never calls Handle at all.
func quietHandler() slog.Handler {
	return slog.NewTextHandler(io.Discard, nil)
}

func newFiringEngine(t *testing.T, dir string) (*Engine, *obs.HistogramVec) {
	t.Helper()
	reg := obs.NewRegistry()
	httpm := obs.NewHTTPMetrics(reg)
	tr := trace.New(trace.Config{SampleRatio: 1, Capacity: 128, SlowestN: 4, Seed: 7})
	rec := NewRecorder(RecorderConfig{Dir: dir, MaxDumps: 4}, tr)
	cfg := Config{
		Interval: Duration(time.Second),
		Windows:  testWindows(),
		Objectives: []Objective{{
			Name: "lat", Kind: KindLatency, Route: "GET /x",
			Threshold: 1e-6, Target: 0.99, Critical: true,
		}},
	}
	logger := slog.New(rec.LogHandler(quietHandler()))
	eng, err := New(cfg, Deps{Metrics: reg, Tracer: tr, Logger: logger, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	// Leave a span tree in the trace ring so the dump has something to
	// correlate, and a log record carrying its trace id.
	span := tr.StartRoot("http.request", trace.SpanContext{})
	child := span.StartChild("model.forward")
	child.Finish()
	span.Finish()
	logger.Info("handled request", "route", "GET /x", "trace_id", span.TraceID().String())

	return eng, httpm.Latency
}

func driveToFiring(t *testing.T, eng *Engine, lat *obs.HistogramVec) {
	t.Helper()
	h := lat.With("GET /x")
	now := time.Unix(1_700_000_000, 0)
	eng.Tick(now)
	for i := 0; i < 6; i++ {
		h.Observe(0.25)
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	if v, _ := eng.reg.Value("lexp_slo_alert_state", "lat"); v != 2 {
		t.Fatalf("engine not firing, state = %v", v)
	}
}

func TestDumpOnFiring(t *testing.T) {
	dir := t.TempDir()
	eng, lat := newFiringEngine(t, dir)
	defer eng.Stop()
	driveToFiring(t, eng, lat)

	files := eng.Recorder().List()
	if len(files) != 1 {
		t.Fatalf("dumps on disk = %d, want exactly 1 (the firing transition)", len(files))
	}
	if !strings.Contains(files[0].Name, "alert-firing-lat") {
		t.Fatalf("dump name %q missing reason", files[0].Name)
	}

	raw, err := os.ReadFile(filepath.Join(dir, files[0].Name))
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(d.Alerts) == 0 || d.Alerts[len(d.Alerts)-1].State != StateFiring {
		t.Fatalf("dump alerts = %+v", d.Alerts)
	}
	var logged bool
	for _, lr := range d.Logs {
		if lr.Message == "handled request" {
			logged = true
			if lr.TraceID == "" {
				t.Fatal("captured log record lost its trace id")
			}
			if lr.Attrs["route"] != "GET /x" {
				t.Fatalf("captured attrs = %v", lr.Attrs)
			}
		}
	}
	if !logged {
		t.Fatal("dump missing the slog record routed through LogHandler")
	}
	var sawSpan bool
	for _, rec := range d.RecentTraces {
		for _, root := range rec.Roots {
			if root.Name != "http.request" {
				continue
			}
			sawSpan = true
			if len(root.Children) != 1 || root.Children[0].Name != "model.forward" {
				t.Fatalf("span tree not assembled: %+v", root)
			}
		}
	}
	if !sawSpan {
		t.Fatal("dump missing the http.request span tree")
	}
	if len(d.MetricDeltas) == 0 {
		t.Fatal("dump has no metric tick deltas")
	}
	last := d.MetricDeltas[len(d.MetricDeltas)-1]
	if len(last.Objectives) != 1 || last.Objectives[0].DTotal <= 0 {
		t.Fatalf("newest tick delta = %+v, want DTotal > 0", last.Objectives)
	}
	if d.SLO == nil || len(d.SLO.Objectives) != 1 || d.SLO.Objectives[0].State != StateFiring {
		t.Fatalf("dump SLO report = %+v", d.SLO)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestManualSnapshotAndPrune(t *testing.T) {
	dir := t.TempDir()
	eng, lat := newFiringEngine(t, dir)
	defer eng.Stop()
	lat.With("GET /x").Observe(0.5)
	eng.Tick(time.Unix(1_700_000_000, 0))

	d := eng.Recorder().Snapshot("manual")
	if d.Reason != "manual" || len(d.MetricDeltas) == 0 {
		t.Fatalf("snapshot = reason %q, %d deltas", d.Reason, len(d.MetricDeltas))
	}

	for i := 0; i < 6; i++ {
		if _, err := eng.Recorder().Dump("manual"); err != nil {
			t.Fatal(err)
		}
	}
	files := eng.Recorder().List()
	if len(files) != 4 { // MaxDumps
		t.Fatalf("retained dumps = %d, want 4", len(files))
	}
	for i := 1; i < len(files); i++ { // newest-first ordering
		if files[i-1].Name < files[i].Name {
			t.Fatalf("List not newest-first: %v", files)
		}
	}
}

func TestHandlePanicDumps(t *testing.T) {
	dir := t.TempDir()
	eng, _ := newFiringEngine(t, dir)
	defer eng.Stop()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("HandlePanic swallowed the panic")
			}
		}()
		defer eng.Recorder().HandlePanic()
		panic("boom")
	}()

	files := eng.Recorder().List()
	if len(files) == 0 {
		t.Fatal("no panic dump written")
	}
	if !strings.Contains(files[0].Name, "panic") {
		t.Fatalf("dump name %q missing panic reason", files[0].Name)
	}
}

func TestRecorderWithoutDirStillSnapshots(t *testing.T) {
	rec := NewRecorder(RecorderConfig{}, nil)
	path, err := rec.Dump("manual")
	if err != nil || path != "" {
		t.Fatalf("dir-less Dump = (%q, %v), want no-op", path, err)
	}
	if files := rec.List(); len(files) != 0 {
		t.Fatalf("List on dir-less recorder = %v", files)
	}
	if d := rec.Snapshot("manual"); d.Reason != "manual" {
		t.Fatalf("snapshot = %+v", d)
	}
}

func TestLogHandlerWithAttrsAndFallbackTraceID(t *testing.T) {
	rec := NewRecorder(RecorderConfig{LogRing: 8}, nil)
	logger := slog.New(rec.LogHandler(quietHandler())).With("component", "serve")
	logger.Warn("queue saturated", "trace_id", "deadbeef", "depth", 12)
	if got := rec.Snapshot("t").Logs; len(got) != 1 {
		t.Fatalf("records = %+v", got)
	} else {
		r := got[0]
		if r.Level != "WARN" || r.Message != "queue saturated" {
			t.Fatalf("record = %+v", r)
		}
		if r.TraceID != "deadbeef" {
			t.Fatalf("trace_id attr fallback not captured: %+v", r)
		}
		if r.Attrs["component"] != "serve" || r.Attrs["depth"] != "12" {
			t.Fatalf("attrs = %v", r.Attrs)
		}
	}

	for i := 0; i < 10; i++ { // overflow the ring
		logger.Info("filler", "i", i)
	}
	logs := rec.Snapshot("t").Logs
	if len(logs) != 8 {
		t.Fatalf("log ring kept %d records, want 8", len(logs))
	}
	if logs[len(logs)-1].Attrs["i"] != "9" {
		t.Fatalf("ring did not keep the newest records: %+v", logs[len(logs)-1])
	}
}

func TestPrevTickDeltas(t *testing.T) {
	rec := NewRecorder(RecorderConfig{TickRing: 4}, nil)
	reg := obs.NewRegistry()
	jm := obs.NewJobsMetrics(reg)
	cfg := Config{
		Interval:   Duration(time.Second),
		Windows:    testWindows(),
		Objectives: []Objective{{Name: "jobs", Kind: KindJobFailure, Target: 0.9}},
	}
	eng, err := New(cfg, Deps{Metrics: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	now := time.Unix(1_700_000_000, 0)
	jm.Done.Add(5)
	eng.Tick(now)
	jm.Done.Add(3)
	jm.Failed.Inc()
	eng.Tick(now.Add(time.Second))

	d := rec.Snapshot("t")
	if len(d.MetricDeltas) != 2 {
		t.Fatalf("tick deltas = %d, want 2", len(d.MetricDeltas))
	}
	first, second := d.MetricDeltas[0].Objectives[0], d.MetricDeltas[1].Objectives[0]
	if first.DTotal != 0 {
		t.Fatalf("first tick has no predecessor, DTotal = %v", first.DTotal)
	}
	if second.DGood != 3 || second.DTotal != 4 {
		t.Fatalf("second tick delta = (%v, %v), want (3, 4)", second.DGood, second.DTotal)
	}
	if second.Good != 8 || second.Total != 9 {
		t.Fatalf("second tick cumulative = (%v, %v), want (8, 9)", second.Good, second.Total)
	}
}
