package slo

import (
	"fmt"
	"math"

	"longexposure/internal/obs"
)

// source feeds one objective: cumulative good/total event counts read
// from live registry instruments. sample is called once per evaluation
// tick, under the engine lock, and must not allocate at steady state —
// hence the precomputed label keys and Peek lookups below. ok is false
// until the instrumented code path has run at least once (a route never
// hit has no histogram child yet); the engine treats that as "no data"
// rather than an error.
type source interface {
	sample() (good, total float64, ok bool)
}

// newSource binds an objective to its instruments on reg.
func newSource(reg *obs.Registry, o Objective) (source, error) {
	switch o.Kind {
	case KindLatency:
		return &latencySource{reg: reg, key: obs.LabelKey(o.Route), threshold: o.Threshold}, nil
	case KindAvailability:
		s := &availabilitySource{reg: reg}
		for i, class := range [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
			s.keys[i] = obs.LabelKey(o.Route, class)
		}
		return s, nil
	case KindQueueWait:
		return &queueWaitSource{
			reg:       reg,
			waitKey:   obs.LabelKey(o.Route),
			qfKey:     obs.LabelKey(o.Route, "queue_full"),
			toKey:     obs.LabelKey(o.Route, "timeout"),
			threshold: o.Threshold,
		}, nil
	case KindJobFailure:
		return &jobFailureSource{
			reg:     reg,
			doneKey: obs.LabelKey("done"),
			failKey: obs.LabelKey("failed"),
		}, nil
	case KindDensityDrift:
		family := "lexp_sparse_serving_mlp_density"
		if o.Signal == "attn" {
			family = "lexp_sparse_serving_attn_density"
		}
		return &densityDriftSource{reg: reg, family: family, expected: o.Expected, tolerance: o.Threshold}, nil
	default:
		return nil, fmt.Errorf("slo: no source for kind %q", o.Kind)
	}
}

// latencySource reads lexp_http_request_seconds{route}: good events are
// requests bucketized at or under the threshold.
type latencySource struct {
	reg       *obs.Registry
	key       string
	threshold float64
	h         *obs.Histogram // resolved lazily, then cached
}

func (s *latencySource) sample() (float64, float64, bool) {
	if s.h == nil {
		h, ok := s.reg.PeekHistogramKey("lexp_http_request_seconds", s.key)
		if !ok {
			return 0, 0, false
		}
		s.h = h
	}
	return float64(s.h.CountAtMost(s.threshold)), float64(s.h.Count()), true
}

// availabilitySource reads lexp_http_requests_total{route,code}: bad
// events are 5xx responses. Status-class children appear as each class
// is first served, so absent children are re-peeked every tick (an
// allocation-free map lookup) instead of cached as permanently missing.
type availabilitySource struct {
	reg      *obs.Registry
	keys     [5]string // 1xx..5xx
	counters [5]*obs.Counter
}

func (s *availabilitySource) sample() (float64, float64, bool) {
	var total, bad float64
	any := false
	for i := range s.keys {
		if s.counters[i] == nil {
			c, ok := s.reg.PeekCounterKey("lexp_http_requests_total", s.keys[i])
			if !ok {
				continue
			}
			s.counters[i] = c
		}
		v := s.counters[i].Value()
		total += v
		if i == 4 { // 5xx
			bad += v
		}
		any = true
	}
	if !any {
		return 0, 0, false
	}
	return total - bad, total, true
}

// queueWaitSource reads the admission plane for one endpoint: admitted
// requests that waited at most threshold seconds
// (lexp_limit_wait_seconds{endpoint}) are good; requests shed for
// queue_full or timeout (lexp_limit_shed_total) are bad events that
// never reached the wait histogram at all.
type queueWaitSource struct {
	reg                   *obs.Registry
	waitKey, qfKey, toKey string
	threshold             float64
	h                     *obs.Histogram
	qf, to                *obs.Counter
}

func (s *queueWaitSource) sample() (float64, float64, bool) {
	if s.h == nil {
		h, ok := s.reg.PeekHistogramKey("lexp_limit_wait_seconds", s.waitKey)
		if !ok {
			return 0, 0, false
		}
		s.h = h
	}
	if s.qf == nil {
		s.qf, _ = s.reg.PeekCounterKey("lexp_limit_shed_total", s.qfKey)
	}
	if s.to == nil {
		s.to, _ = s.reg.PeekCounterKey("lexp_limit_shed_total", s.toKey)
	}
	good := float64(s.h.CountAtMost(s.threshold))
	total := float64(s.h.Count())
	if s.qf != nil {
		total += s.qf.Value()
	}
	if s.to != nil {
		total += s.to.Value()
	}
	return good, total, true
}

// jobFailureSource reads lexp_jobs_completed_total{status}: done jobs
// are good, failed jobs are bad; cancellations are a user action and
// count for neither side.
type jobFailureSource struct {
	reg              *obs.Registry
	doneKey, failKey string
	done, failed     *obs.Counter
}

func (s *jobFailureSource) sample() (float64, float64, bool) {
	if s.done == nil {
		s.done, _ = s.reg.PeekCounterKey("lexp_jobs_completed_total", s.doneKey)
	}
	if s.failed == nil {
		s.failed, _ = s.reg.PeekCounterKey("lexp_jobs_completed_total", s.failKey)
	}
	if s.done == nil && s.failed == nil {
		return 0, 0, false
	}
	var good, bad float64
	if s.done != nil {
		good = s.done.Value()
	}
	if s.failed != nil {
		bad = s.failed.Value()
	}
	return good, good + bad, true
}

// densityDriftSource folds the live per-layer serving-density gauges
// into a per-tick pass/fail: a tick whose mean density deviates from
// the expected plan density by more than the tolerance is one bad
// event. Unlike the counter-backed sources this one synthesizes its own
// cumulative series, because gauges have no history — the ring diffing
// then works identically.
type densityDriftSource struct {
	reg       *obs.Registry
	family    string
	expected  float64
	tolerance float64

	ticks, bad float64
}

func (s *densityDriftSource) sample() (float64, float64, bool) {
	sum, n, ok := s.reg.SumValues(s.family)
	if !ok || n == 0 {
		return 0, 0, false
	}
	s.ticks++
	if math.Abs(sum/float64(n)-s.expected) > s.tolerance {
		s.bad++
	}
	return s.ticks - s.bad, s.ticks, true
}
