package slo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"longexposure/internal/obs"
)

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"5m"`), &d); err != nil || d.Std() != 5*time.Minute {
		t.Fatalf(`"5m" -> %v, err %v`, d.Std(), err)
	}
	if err := json.Unmarshal([]byte(`2.5`), &d); err != nil || d.Std() != 2500*time.Millisecond {
		t.Fatalf(`2.5 -> %v, err %v`, d.Std(), err)
	}
	if err := json.Unmarshal([]byte(`"nope"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Fatalf("marshal: %s, %v", b, err)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Objective{Name: "a", Kind: KindLatency, Route: "GET /x", Threshold: 0.1, Target: 0.99}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Objectives: []Objective{good}}, true},
		{"default config", DefaultConfig(), true},
		{"no name", Config{Objectives: []Objective{{Kind: KindJobFailure, Target: 0.9}}}, false},
		{"bad target", Config{Objectives: []Objective{{Name: "a", Kind: KindJobFailure, Target: 1.5}}}, false},
		{"latency no route", Config{Objectives: []Objective{{Name: "a", Kind: KindLatency, Threshold: 1, Target: 0.9}}}, false},
		{"latency no threshold", Config{Objectives: []Objective{{Name: "a", Kind: KindLatency, Route: "x", Target: 0.9}}}, false},
		{"unknown kind", Config{Objectives: []Objective{{Name: "a", Kind: "nope", Target: 0.9}}}, false},
		{"dup names", Config{Objectives: []Objective{good, good}}, false},
		{"drift bad signal", Config{Objectives: []Objective{{Name: "a", Kind: KindDensityDrift, Expected: 0.5, Threshold: 0.1, Signal: "conv", Target: 0.9}}}, false},
		{"drift valid", Config{Objectives: []Objective{{Name: "a", Kind: KindDensityDrift, Expected: 0.5, Threshold: 0.1, Target: 0.9}}}, true},
		{"inverted windows", Config{Windows: Windows{FastShort: Duration(2 * time.Hour)}}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slo.json")
	body := `{
		"interval": "1s",
		"windows": {"fast_short": "10s", "fast_long": "1m", "for": 2},
		"objectives": [
			{"name": "lat", "kind": "latency", "route": "GET /x", "threshold": 0.25, "target": 0.99, "critical": true}
		]
	}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Interval.Std() != time.Second || cfg.Windows.FastShort.Std() != 10*time.Second ||
		cfg.Windows.For.Std() != 2*time.Second || !cfg.Objectives[0].Critical {
		t.Fatalf("parsed config wrong: %+v", cfg)
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte(`{"objectives": [{}]}`), 0o644)
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("invalid objective accepted")
	}
}

func TestSampleRing(t *testing.T) {
	r := newSampleRing(4)
	if _, ok := r.before(100); ok {
		t.Fatal("empty ring reported a sample")
	}
	for i := 1; i <= 6; i++ { // overwrites 1 and 2
		r.push(sample{t: int64(i * 10), total: float64(i)})
	}
	// Retained: t=30..60. Exact hit, between, before-history, after-all.
	if s, _ := r.before(40); s.total != 4 {
		t.Fatalf("before(40) = %+v", s)
	}
	if s, _ := r.before(45); s.total != 4 {
		t.Fatalf("before(45) = %+v", s)
	}
	if s, _ := r.before(5); s.total != 3 {
		t.Fatalf("before(5) should fall back to oldest, got %+v", s)
	}
	if s, _ := r.before(999); s.total != 6 {
		t.Fatalf("before(999) = %+v", s)
	}
}

// testWindows are tight enough to drive a full alert lifecycle in a few
// dozen synthetic 1s ticks.
func testWindows() Windows {
	return Windows{
		FastShort: Duration(10 * time.Second), FastLong: Duration(time.Minute), FastBurn: 10,
		SlowShort: Duration(30 * time.Second), SlowLong: Duration(2 * time.Minute), SlowBurn: 5,
		For: Duration(2 * time.Second),
	}
}

func TestAlertLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	httpm := obs.NewHTTPMetrics(reg)
	lat := httpm.Latency.With("GET /x")

	cfg := Config{
		Interval: Duration(time.Second),
		Windows:  testWindows(),
		Objectives: []Objective{{
			Name: "lat", Kind: KindLatency, Route: "GET /x",
			Threshold: 1e-6, Target: 0.99, Critical: true,
		}},
	}
	eng, err := New(cfg, Deps{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := eng.SubscribeAlerts()
	defer cancel()

	now := time.Unix(1_700_000_000, 0)
	eng.Tick(now) // no data yet: route never hit

	if ok, _ := eng.Healthy(); !ok {
		t.Fatal("engine unhealthy before any alert")
	}

	// Violate the objective: every request is slower than 1µs.
	state := func() float64 {
		v, _ := reg.Value("lexp_slo_alert_state", "lat")
		return v
	}
	for i := 0; i < 10; i++ {
		lat.Observe(0.25)
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	if got := state(); got != 2 {
		t.Fatalf("alert state gauge = %v, want 2 (firing)", got)
	}
	if ok, status := eng.Healthy(); ok || status != "slo_firing" {
		t.Fatalf("critical firing must fail health, got (%v, %q)", ok, status)
	}
	if v, _ := reg.Value("lexp_slo_alerts_firing"); v != 1 {
		t.Fatalf("lexp_slo_alerts_firing = %v", v)
	}
	if v, _ := reg.Value("lexp_slo_error_budget_remaining", "lat"); v >= 1 {
		t.Fatalf("budget remaining %v, want < 1 while burning", v)
	}

	// Recovery: stop traffic; the short windows drain and the alert
	// resolves (the multi-window rule: the long window alone cannot hold
	// it firing).
	for i := 0; i < 40; i++ {
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	if got := state(); got != 3 {
		t.Fatalf("alert state gauge = %v, want 3 (resolved)", got)
	}
	if ok, _ := eng.Healthy(); !ok {
		t.Fatal("engine still unhealthy after resolve")
	}

	// The stream saw the full lifecycle, in order.
	var states []string
	timeout := time.After(5 * time.Second)
	for len(states) < 3 {
		select {
		case e := <-ch:
			states = append(states, e.State)
		case <-timeout:
			t.Fatalf("timed out waiting for transitions, got %v", states)
		}
	}
	want := []string{StatePending, StateFiring, StateResolved}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", states, want)
		}
	}
	for _, s := range want {
		if v, _ := reg.Value("lexp_slo_alert_transitions_total", "lat", s); v != 1 {
			t.Fatalf("transitions{%s} = %v, want 1", s, v)
		}
	}

	// Report reflects the resolved objective.
	rep := eng.Report()
	if len(rep.Objectives) != 1 || rep.Objectives[0].State != StateResolved || !rep.Objectives[0].HasData {
		t.Fatalf("report = %+v", rep.Objectives)
	}

	eng.Stop()
	for range ch { // closes after Stop
	}
}

func TestPendingClearsWithoutFiring(t *testing.T) {
	reg := obs.NewRegistry()
	httpm := obs.NewHTTPMetrics(reg)
	lat := httpm.Latency.With("GET /x")
	cfg := Config{
		Interval: Duration(time.Second),
		Windows: Windows{
			FastShort: Duration(5 * time.Second), FastLong: Duration(10 * time.Second), FastBurn: 10,
			SlowShort: Duration(15 * time.Second), SlowLong: Duration(30 * time.Second), SlowBurn: 5,
			// Longer than the burst survives in ANY window (the slow rule
			// stays active ~slow_short past the burst), so the alert never
			// graduates from pending.
			For: Duration(30 * time.Second),
		},
		Objectives: []Objective{{Name: "lat", Kind: KindLatency, Route: "GET /x", Threshold: 1e-6, Target: 0.99}},
	}
	eng, err := New(cfg, Deps{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	eng.Tick(now)
	for i := 0; i < 3; i++ { // a short burst
		lat.Observe(1)
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	if v, _ := reg.Value("lexp_slo_alert_state", "lat"); v != 1 {
		t.Fatalf("state = %v, want 1 (pending)", v)
	}
	for i := 0; i < 30; i++ {
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	if v, _ := reg.Value("lexp_slo_alert_state", "lat"); v != 0 {
		t.Fatalf("state = %v, want 0 (inactive: pending cleared silently)", v)
	}
	if v, _ := reg.Value("lexp_slo_alert_transitions_total", "lat", StateFiring); v != 0 {
		t.Fatal("a cleared pending must never fire")
	}
	eng.Stop()
}

func TestSources(t *testing.T) {
	t.Run("availability", func(t *testing.T) {
		reg := obs.NewRegistry()
		httpm := obs.NewHTTPMetrics(reg)
		src, err := newSource(reg, Objective{Name: "a", Kind: KindAvailability, Route: "GET /x", Target: 0.99})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := src.sample(); ok {
			t.Fatal("availability reported data before any request")
		}
		httpm.Requests.With("GET /x", "2xx").Add(9)
		httpm.Requests.With("GET /x", "5xx").Add(1)
		httpm.Requests.With("GET /other", "5xx").Add(100) // scoped out
		good, total, ok := src.sample()
		if !ok || total != 10 || good != 9 {
			t.Fatalf("availability = (%g, %g, %v)", good, total, ok)
		}
	})
	t.Run("queue_wait", func(t *testing.T) {
		reg := obs.NewRegistry()
		lm := obs.NewLimitMetrics(reg).Endpoint("generate")
		src, err := newSource(reg, Objective{Name: "q", Kind: KindQueueWait, Route: "generate", Threshold: 0.001, Target: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		lm.WaitSeconds.Observe(1e-6) // good: under threshold
		lm.WaitSeconds.Observe(0.5)  // bad: over
		lm.ShedQueueFull.Inc()       // bad
		lm.ShedTimeout.Inc()         // bad
		lm.ShedDraining.Inc()        // deliberate shed: not counted
		good, total, ok := src.sample()
		if !ok || good != 1 || total != 4 {
			t.Fatalf("queue_wait = (%g, %g, %v), want (1, 4, true)", good, total, ok)
		}
	})
	t.Run("job_failure", func(t *testing.T) {
		reg := obs.NewRegistry()
		jm := obs.NewJobsMetrics(reg)
		src, err := newSource(reg, Objective{Name: "j", Kind: KindJobFailure, Target: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		jm.Done.Add(8)
		jm.Failed.Add(2)
		jm.Cancelled.Add(5) // user action: excluded
		good, total, ok := src.sample()
		if !ok || good != 8 || total != 10 {
			t.Fatalf("job_failure = (%g, %g, %v), want (8, 10, true)", good, total, ok)
		}
	})
	t.Run("density_drift", func(t *testing.T) {
		reg := obs.NewRegistry()
		sm := obs.NewServingSparsityMetrics(reg)
		src, err := newSource(reg, Objective{Name: "d", Kind: KindDensityDrift, Expected: 0.5, Threshold: 0.1, Target: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, ok := src.sample(); ok {
			t.Fatal("drift reported data before any layer gauge")
		}
		sm.SetMLP(0, 0.5)
		sm.SetMLP(1, 0.52)
		if good, total, ok := src.sample(); !ok || good != 1 || total != 1 {
			t.Fatalf("in-tolerance tick = (%g, %g, %v)", good, total, ok)
		}
		sm.SetMLP(0, 0.9) // mean 0.71: drifted
		sm.SetMLP(1, 0.9)
		if good, total, _ := src.sample(); good != 1 || total != 2 {
			t.Fatalf("drifted tick = (%g, %g)", good, total)
		}
	})
	t.Run("density_drift_attn_signal", func(t *testing.T) {
		reg := obs.NewRegistry()
		sm := obs.NewServingSparsityMetrics(reg)
		sm.SetAttn(0, 0.5)
		src, _ := newSource(reg, Objective{Name: "d", Kind: KindDensityDrift, Signal: "attn", Expected: 0.5, Threshold: 0.1, Target: 0.9})
		if _, total, ok := src.sample(); !ok || total != 1 {
			t.Fatal("attn signal not wired")
		}
	})
}

func TestHubReplayAndClose(t *testing.T) {
	h := newHub(16)
	h.publish(AlertEvent{State: StatePending, Objective: "a"})
	h.publish(AlertEvent{State: StateFiring, Objective: "a"})
	ch, cancel := h.subscribe()
	defer cancel()
	var got []AlertEvent
	for len(got) < 2 {
		e, ok := <-ch
		if !ok {
			t.Fatal("channel closed early")
		}
		got = append(got, e)
	}
	if got[0].Seq != 1 || got[1].Seq != 2 || got[1].State != StateFiring {
		t.Fatalf("replay = %+v", got)
	}
	h.close()
	h.close() // idempotent
	for range ch {
	}
	// Subscribing after close yields a closed (possibly replaying) channel.
	ch2, cancel2 := h.subscribe()
	defer cancel2()
	n := 0
	for range ch2 {
		n++
	}
	if n != 2 {
		t.Fatalf("post-close replay delivered %d events, want 2", n)
	}
}

func TestEngineStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Interval:   Duration(10 * time.Millisecond),
		Windows:    testWindows(),
		Objectives: []Objective{{Name: "j", Kind: KindJobFailure, Target: 0.9}},
	}
	eng, err := New(cfg, Deps{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, _ := reg.Value("lexp_slo_evaluations_total"); v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background loop never ticked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	eng.Stop()
	eng.Stop() // idempotent
}

func TestNewRejectsBadDeps(t *testing.T) {
	if _, err := New(Config{}, Deps{}); err == nil {
		t.Fatal("nil Metrics accepted")
	}
	bad := Config{Objectives: []Objective{{Name: "x", Kind: "nope", Target: 0.9}}}
	if _, err := New(bad, Deps{Metrics: obs.NewRegistry()}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
