package events

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

type ev struct {
	Seq      int
	Kind     string
	Lost     int
	terminal bool
}

func opts(backlog int, drops *int, mu *sync.Mutex) Options[ev] {
	o := Options[ev]{
		Backlog:  backlog,
		Terminal: func(e ev) bool { return e.terminal },
		Lost: func(lost int, first, next ev) ev {
			return ev{Seq: first.Seq, Kind: "lost", Lost: lost}
		},
	}
	if drops != nil {
		o.OnDrop = func() {
			mu.Lock()
			*drops++
			mu.Unlock()
		}
	}
	return o
}

func collect(t *testing.T, sub *Subscriber[ev], want int) []ev {
	t.Helper()
	var got []ev
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case e, ok := <-sub.C():
			if !ok {
				return got
			}
			got = append(got, e)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events: %v", len(got), want, got)
		}
	}
	return got
}

func TestReplayThenLiveThenTerminalCloses(t *testing.T) {
	replay := []ev{{Seq: 0}, {Seq: 1}}
	sub := New(replay, opts(0, nil, nil))
	sub.Push(ev{Seq: 2})
	sub.Push(ev{Seq: 3, Kind: "done", terminal: true})
	got := collect(t, sub, 4)
	for i, e := range got {
		if e.Seq != i {
			t.Fatalf("event %d: got seq %d", i, e.Seq)
		}
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after terminal event")
	}
	// Pushes after terminal are ignored, not a panic.
	sub.Push(ev{Seq: 99})
}

func TestBoundedBacklogDropsOldestAndSynthesizesMarker(t *testing.T) {
	var mu sync.Mutex
	drops := 0
	sub := New[ev](nil, opts(3, &drops, &mu))
	// Stall delivery by not reading; fill past the bound. The channel
	// buffer (16) can absorb early events, so push enough to guarantee
	// pending-queue pressure.
	n := 40
	for i := 0; i < n; i++ {
		sub.Push(ev{Seq: i})
	}
	sub.Push(ev{Seq: n, Kind: "done", terminal: true})
	var got []ev
	for e := range sub.C() {
		got = append(got, e)
	}
	mu.Lock()
	d := drops
	mu.Unlock()
	if d == 0 {
		t.Fatal("expected drops under a backlog of 3")
	}
	lost := 0
	for _, e := range got {
		if e.Kind == "lost" {
			lost += e.Lost
		}
	}
	if lost != d {
		t.Fatalf("lost markers account for %d events, %d were dropped", lost, d)
	}
	last := got[len(got)-1]
	if !last.terminal || last.Seq != n {
		t.Fatalf("terminal event not delivered last: %+v", last)
	}
	// Sequence numbers of delivered (non-marker) events must be ascending.
	prev := -1
	for _, e := range got {
		if e.Kind == "lost" {
			continue
		}
		if e.Seq <= prev {
			t.Fatalf("out-of-order delivery: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
}

func TestTerminalNeverDropped(t *testing.T) {
	sub := New[ev](nil, opts(1, nil, nil))
	sub.Push(ev{Seq: 0, Kind: "done", terminal: true})
	// Flood with droppable events; the terminal one must survive.
	for i := 1; i < 30; i++ {
		sub.Push(ev{Seq: i})
	}
	var sawTerminal bool
	for e := range sub.C() {
		if e.terminal {
			sawTerminal = true
		}
	}
	if !sawTerminal {
		t.Fatal("terminal event was dropped")
	}
}

func TestDropReleasesBlockedPump(t *testing.T) {
	sub := New[ev](nil, opts(0, nil, nil))
	// Fill the channel buffer and beyond so the pump blocks on send.
	for i := 0; i < 64; i++ {
		sub.Push(ev{Seq: i})
	}
	time.Sleep(10 * time.Millisecond) // let the pump hit the blocked send
	done := make(chan struct{})
	go func() {
		sub.Drop()
		sub.Drop() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Drop did not return with a blocked pump")
	}
}

func TestCloseDrainsWithoutTerminal(t *testing.T) {
	sub := New[ev](nil, Options[ev]{})
	for i := 0; i < 5; i++ {
		sub.Push(ev{Seq: i})
	}
	sub.Close()
	var got []ev
	for e := range sub.C() {
		got = append(got, e)
	}
	if len(got) != 5 {
		t.Fatalf("got %d events after Close, want 5", len(got))
	}
}

func TestSilentDropsWithoutLostFunc(t *testing.T) {
	sub := New[ev](nil, Options[ev]{Backlog: 2})
	for i := 0; i < 20; i++ {
		sub.Push(ev{Seq: i})
	}
	sub.Close()
	for e := range sub.C() {
		if e.Kind == "lost" {
			t.Fatal("lost marker synthesized without a Lost func")
		}
	}
}

func TestConcurrentPushersAndConsumer(t *testing.T) {
	var mu sync.Mutex
	drops := 0
	sub := New[ev](nil, opts(8, &drops, &mu))
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sub.Push(ev{Seq: p*1000 + i})
			}
		}(p)
	}
	consumed := make(chan int)
	go func() {
		n := 0
		for range sub.C() {
			n++
		}
		consumed <- n
	}()
	wg.Wait()
	sub.Close()
	select {
	case n := <-consumed:
		mu.Lock()
		d := drops
		mu.Unlock()
		if n+d < 400 {
			t.Fatalf("delivered %d + dropped %d < 400 pushed (markers may add to delivered)", n, d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer never finished")
	}
}

func ExampleNew() {
	sub := New([]ev{{Seq: 0}}, Options[ev]{
		Terminal: func(e ev) bool { return e.terminal },
	})
	sub.Push(ev{Seq: 1, terminal: true})
	for e := range sub.C() {
		fmt.Println(e.Seq)
	}
	// Output:
	// 0
	// 1
}
