// Package events is the bounded-backlog fan-out machinery behind every
// SSE stream in this repository. It began life inside internal/jobs as
// the per-job event subscriber; the SLO alert stream needed the same
// semantics, so the type was extracted here and made generic.
//
// A Subscriber is one stream consumer: a bounded pending queue drained
// by a pump goroutine, so slow consumers never block publishers and
// never grow memory without limit. Once the backlog exceeds the bound,
// the oldest droppable pending events are discarded and the consumer
// receives a single synthesized "lost" marker in their place. Events
// the Terminal predicate marks are never dropped — they end the stream
// and must always be deliverable. A consumer that stops reading without
// unsubscribing cannot strand the pump either: sends race a done
// channel closed by Drop.
package events

import "sync"

// Options configures a Subscriber's backlog policy. The zero value is a
// valid unbounded, droppable-everything, unmetered stream.
type Options[T any] struct {
	// Backlog bounds the pending queue (<= 0: unbounded).
	Backlog int
	// Terminal, when set, marks events that end the stream: the pump
	// closes the channel after delivering one, and such events are never
	// dropped to make room. Nil means no event is terminal.
	Terminal func(T) bool
	// Lost synthesizes the marker delivered in place of a dropped run of
	// events: lost is how many were dropped, first is the first of them
	// and next is the event that will be delivered right after the
	// marker. Nil means drops are silent.
	Lost func(lost int, first, next T) T
	// OnDrop is called once per dropped event (metering hook — keeps
	// this package free of any metrics dependency). Nil disables.
	OnDrop func()
}

// Subscriber is one bounded-backlog stream consumer. Create with New;
// all methods are safe for concurrent use.
type Subscriber[T any] struct {
	opts Options[T]

	mu      sync.Mutex
	cond    *sync.Cond
	pending []T
	stopped bool // no further events will be queued
	lost    int  // events dropped since the last lost marker
	first   T    // the first of them

	done     chan struct{} // closed when the consumer abandons the stream
	dropOnce sync.Once
	ch       chan T
}

// New builds a subscriber, seeds its backlog with replay (delivered
// before any live event) and starts the pump.
func New[T any](replay []T, opts Options[T]) *Subscriber[T] {
	sub := &Subscriber[T]{
		opts: opts,
		ch:   make(chan T, 16),
		done: make(chan struct{}),
	}
	sub.cond = sync.NewCond(&sub.mu)
	sub.pending = append(sub.pending, replay...)
	go sub.pump()
	return sub
}

// C returns the delivery channel. It closes after a terminal event, or
// after Close once the backlog has drained.
func (sub *Subscriber[T]) C() <-chan T { return sub.ch }

// Push queues one event, evicting the oldest droppable pending event
// when the backlog is full.
func (sub *Subscriber[T]) Push(e T) {
	sub.mu.Lock()
	if !sub.stopped {
		if sub.opts.Backlog > 0 && len(sub.pending) >= sub.opts.Backlog {
			// Drop the oldest non-terminal pending event (terminal events
			// are always deliverable: they end the stream).
			for i := range sub.pending {
				if sub.opts.Terminal != nil && sub.opts.Terminal(sub.pending[i]) {
					continue
				}
				if sub.lost == 0 {
					sub.first = sub.pending[i]
				}
				sub.lost++
				sub.pending = append(sub.pending[:i], sub.pending[i+1:]...)
				if sub.opts.OnDrop != nil {
					sub.opts.OnDrop()
				}
				break
			}
		}
		sub.pending = append(sub.pending, e)
		sub.cond.Signal()
	}
	sub.mu.Unlock()
}

// Close stops the stream after any already-queued events are delivered.
func (sub *Subscriber[T]) Close() {
	sub.mu.Lock()
	sub.stopped = true
	sub.cond.Signal()
	sub.mu.Unlock()
}

// Drop abandons the stream immediately (consumer went away): pending
// events are discarded and a pump blocked on a send is released. Safe
// to call more than once.
func (sub *Subscriber[T]) Drop() {
	sub.dropOnce.Do(func() { close(sub.done) })
	sub.mu.Lock()
	sub.stopped = true
	sub.pending = nil
	sub.cond.Signal()
	sub.mu.Unlock()
}

func (sub *Subscriber[T]) pump() {
	for {
		sub.mu.Lock()
		for len(sub.pending) == 0 && !sub.stopped {
			sub.cond.Wait()
		}
		if len(sub.pending) == 0 {
			sub.mu.Unlock()
			close(sub.ch)
			return
		}
		var e T
		if sub.lost > 0 && sub.opts.Lost != nil {
			// Surface the gap before the next surviving event.
			e = sub.opts.Lost(sub.lost, sub.first, sub.pending[0])
			sub.lost = 0
		} else {
			sub.lost = 0
			e = sub.pending[0]
			sub.pending = sub.pending[1:]
		}
		sub.mu.Unlock()
		select {
		case sub.ch <- e:
		case <-sub.done:
			return // abandoned; nobody reads ch anymore
		}
		if sub.opts.Terminal != nil && sub.opts.Terminal(e) {
			// Terminal is always the last event; drain and close.
			sub.Close()
		}
	}
}
