package limit

import (
	"context"
	"sync"
	"testing"
	"time"

	"longexposure/internal/obs"
)

// fakeClock drives buckets deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBucket(rate, burst float64) (*TokenBucket, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewTokenBucket(rate, burst)
	b.now = clk.now
	b.last = clk.now()
	return b, clk
}

func TestTokenBucketRefill(t *testing.T) {
	b, clk := newTestBucket(2, 4) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("empty bucket allowed a request")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s] at 2 tokens/s", ra)
	}

	clk.advance(500 * time.Millisecond) // refills exactly 1 token
	if !b.Allow() {
		t.Fatal("refilled token denied")
	}
	if b.Allow() {
		t.Fatal("second token allowed after 0.5s at 2/s")
	}

	clk.advance(time.Hour) // refill clamps at burst
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("post-clamp token %d denied", i)
		}
	}
	if b.Allow() {
		t.Fatal("burst clamp exceeded")
	}
}

func TestLimiterTenantIsolationAndGlobalTier(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 1, Burst: 2, GlobalRate: 1, GlobalBurst: 3})
	l.now = clk.now
	l.global.now = clk.now
	l.global.last = clk.now()
	fix := func(tenant string) {
		tb := l.bucketFor(tenant)
		tb.mu.Lock()
		tb.now = clk.now
		tb.last = clk.now()
		tb.mu.Unlock()
	}
	fix("alice")
	fix("bob")

	// Alice burns her burst of 2; Bob is unaffected (tenant isolation)
	// but the third request trips the global burst of 3.
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("alice 1 denied")
	}
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("alice 2 denied")
	}
	if ok, ra := l.Allow("alice"); ok || ra <= 0 {
		t.Fatalf("alice over-burst allowed (ok=%v retry=%v)", ok, ra)
	}
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("bob denied despite fresh tenant bucket")
	}
	if ok, ra := l.Allow("bob"); ok || ra <= 0 {
		t.Fatalf("global tier did not trip (ok=%v retry=%v)", ok, ra)
	}
}

// TestGlobalDenialRefundsTenantToken pins overload fairness: a request
// rejected by the global tier must not also drain the tenant's own
// bucket (per-tenant refill here is negligible, so a missing refund
// would leave alice empty).
func TestGlobalDenialRefundsTenantToken(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := New(Config{Rate: 1e-4, Burst: 2, GlobalRate: 1e-3, GlobalBurst: 1})
	l.now = clk.now
	l.global.now = clk.now
	l.global.last = clk.now()
	alice := l.bucketFor("alice")
	alice.mu.Lock()
	alice.now = clk.now
	alice.last = clk.now()
	alice.mu.Unlock()

	if ok, _ := l.Allow("alice"); !ok { // tenant 2→1, global 1→0
		t.Fatal("first request denied")
	}
	if ok, _ := l.Allow("alice"); ok { // tenant would pass; global denies → refund
		t.Fatal("second request passed a drained global tier")
	}
	clk.advance(1001 * time.Second) // global refills 1 token; tenant ~0.1
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("global denial drained alice's bucket (refund missing)")
	}
}

func TestLimiterEvictsLRUTenant(t *testing.T) {
	l := New(Config{Rate: 1, MaxTenants: 2})
	l.Allow("a")
	l.Allow("b")
	l.Allow("c") // evicts the LRU tenant (a)
	if n := l.Tenants(); n != 2 {
		t.Fatalf("tenants = %d, want 2", n)
	}
	l.mu.Lock()
	_, hasA := l.tenants["a"]
	l.mu.Unlock()
	if hasA {
		t.Fatal("LRU tenant a not evicted")
	}
}

func TestAdmissionCapAndQueue(t *testing.T) {
	r := obs.NewRegistry()
	em := obs.NewLimitMetrics(r).Endpoint("/test")
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxWait: 1, WaitTimeout: 50 * time.Millisecond}, em)

	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 {
		t.Fatalf("inflight = %d", a.InFlight())
	}

	// Third request parks; releasing a slot admits it.
	admitted := make(chan struct{})
	go func() {
		rel3, err := a.Acquire(context.Background())
		if err != nil {
			t.Errorf("parked request shed: %v", err)
			close(admitted)
			return
		}
		close(admitted)
		rel3()
	}()
	for a.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Fourth request finds the wait queue full → immediate shed.
	_, shedErr := a.Acquire(context.Background())
	if shedErr == nil || shedErr.Reason != "queue_full" {
		t.Fatalf("queue-full request not shed: %v", shedErr)
	}
	if !a.Shedding() {
		t.Fatal("saturated controller does not report Shedding")
	}
	if shedErr.RetryAfter <= 0 {
		t.Fatal("shed without Retry-After hint")
	}

	rel1()
	<-admitted
	rel2()
	rel1() // idempotent release must not free a second slot
	if a.InFlight() != 0 {
		t.Fatalf("inflight after releases = %d", a.InFlight())
	}

	if v, ok := r.Value("lexp_limit_shed_total", "/test", "queue_full"); !ok || v != 1 {
		t.Fatalf("shed metric = %v, %v", v, ok)
	}
	if v, _ := r.Value("lexp_limit_admitted_total", "/test"); v != 3 {
		t.Fatalf("admitted metric = %v, want 3", v)
	}
}

func TestAdmissionWaitTimeout(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxWait: 4, WaitTimeout: 20 * time.Millisecond}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := a.Acquire(context.Background()); err == nil || err.Reason != "timeout" {
		t.Fatalf("parked request did not time out: %v", err)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxWait: 4, WaitTimeout: time.Minute}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := a.Acquire(ctx); err == nil || err.Reason != "cancelled" {
		t.Fatalf("cancelled waiter not shed: %v", err)
	}
}

func TestAdmissionDraining(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxWait: 2}, nil)
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a.SetDraining(true)
	if !a.Shedding() {
		t.Fatal("draining controller does not report Shedding")
	}
	if _, err := a.Acquire(context.Background()); err == nil || err.Reason != "draining" {
		t.Fatalf("request during drain not shed: %v", err)
	}
	rel() // in-flight work still drains normally
	if a.InFlight() != 0 {
		t.Fatalf("inflight after drain release = %d", a.InFlight())
	}
}
