// Package limit is the traffic-control half of the observability plane:
// token-bucket rate limiting with per-tenant and global tiers (limit.go)
// and a load-shedding admission controller with a bounded wait queue
// (admit.go). Serving systems built on contextual sparsity only deliver
// their measured steady-state performance while the hot path stays inside
// its measured regime — these types are what keep arbitrary traffic from
// pushing it out, and every decision they make is metered through
// internal/obs so overload is visible before it is fatal.
package limit

import (
	"math"
	"sync"
	"time"

	"longexposure/internal/obs"
)

// TokenBucket is a classic token bucket: capacity Burst, refilled at Rate
// tokens per second. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for deterministic tests
}

// NewTokenBucket builds a full bucket. rate must be positive; burst is
// clamped to at least 1 token.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, burst: burst, tokens: burst, now: time.Now}
	b.last = b.now()
	return b
}

// refillLocked advances the bucket to now.
func (b *TokenBucket) refillLocked() {
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
}

// Allow takes one token if available.
func (b *TokenBucket) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// refund returns one token (capped at burst) — used when a later tier
// rejects a request this bucket already charged.
func (b *TokenBucket) refund() {
	b.mu.Lock()
	b.tokens = math.Min(b.burst, b.tokens+1)
	b.mu.Unlock()
}

// RetryAfter reports how long until one token will be available — the
// Retry-After hint for a denied request (zero when a token is available
// right now).
func (b *TokenBucket) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if b.tokens >= 1 {
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Config sizes a Limiter. A zero rate disables that tier.
type Config struct {
	// Rate / Burst bound each tenant individually (tokens per second;
	// Burst defaults to max(1, 2·Rate)).
	Rate  float64
	Burst float64
	// GlobalRate / GlobalBurst bound the sum of all tenants.
	GlobalRate  float64
	GlobalBurst float64
	// MaxTenants bounds live tenant buckets; beyond it, the least
	// recently used bucket is evicted (its tenant restarts with a full
	// bucket — forgetting is strictly generous). Default 1024.
	MaxTenants int
}

func (c Config) withDefaults() Config {
	if c.Burst <= 0 {
		c.Burst = math.Max(1, 2*c.Rate)
	}
	if c.GlobalBurst <= 0 {
		c.GlobalBurst = math.Max(1, 2*c.GlobalRate)
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	return c
}

// Enabled reports whether any tier is configured.
func (c Config) Enabled() bool { return c.Rate > 0 || c.GlobalRate > 0 }

// Limiter applies two token-bucket tiers: per-tenant (keyed by the
// API-key header value, or whatever the caller uses as identity) and
// global. A request must pass both.
type Limiter struct {
	cfg    Config
	global *TokenBucket

	mu      sync.Mutex
	tenants map[string]*tenantBucket

	tenantsGauge *obs.Gauge // optional
	now          func() time.Time
}

type tenantBucket struct {
	b        *TokenBucket
	lastSeen time.Time
}

// New builds a limiter.
func New(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	l := &Limiter{cfg: cfg, tenants: map[string]*tenantBucket{}, now: time.Now}
	if cfg.GlobalRate > 0 {
		l.global = NewTokenBucket(cfg.GlobalRate, cfg.GlobalBurst)
	}
	return l
}

// Instrument attaches the live tenant-count gauge.
func (l *Limiter) Instrument(m *obs.LimitMetrics) {
	if m != nil {
		l.tenantsGauge = m.Tenants
	}
}

// Allow charges one request to the tenant. When denied it reports how
// long the client should wait before retrying. A request rejected by the
// global tier refunds the tenant token it already took: during global
// overload a well-behaved tenant must not find its own bucket drained by
// requests that were never served.
func (l *Limiter) Allow(tenant string) (bool, time.Duration) {
	var tb *TokenBucket
	if l.cfg.Rate > 0 {
		tb = l.bucketFor(tenant)
		if !tb.Allow() {
			return false, tb.RetryAfter()
		}
	}
	if l.global != nil && !l.global.Allow() {
		if tb != nil {
			tb.refund()
		}
		return false, l.global.RetryAfter()
	}
	return true, 0
}

// bucketFor returns (creating if needed) the tenant's bucket, evicting
// the least recently used one past MaxTenants.
func (l *Limiter) bucketFor(tenant string) *TokenBucket {
	l.mu.Lock()
	defer l.mu.Unlock()
	tb, ok := l.tenants[tenant]
	if !ok {
		if len(l.tenants) >= l.cfg.MaxTenants {
			var oldest string
			var oldestAt time.Time
			for k, v := range l.tenants {
				if oldest == "" || v.lastSeen.Before(oldestAt) {
					oldest, oldestAt = k, v.lastSeen
				}
			}
			delete(l.tenants, oldest)
		}
		tb = &tenantBucket{b: NewTokenBucket(l.cfg.Rate, l.cfg.Burst)}
		l.tenants[tenant] = tb
		if l.tenantsGauge != nil {
			l.tenantsGauge.Set(float64(len(l.tenants)))
		}
	}
	tb.lastSeen = l.now()
	return tb.b
}

// Tenants reports the live tenant-bucket count.
func (l *Limiter) Tenants() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.tenants)
}
