package limit

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"longexposure/internal/obs"
	"longexposure/internal/trace"
)

// AdmissionConfig sizes an admission controller.
type AdmissionConfig struct {
	// MaxInFlight bounds concurrently admitted requests (required > 0).
	MaxInFlight int
	// MaxWait bounds the wait queue: requests arriving with MaxInFlight
	// in flight park here until a slot frees. 0 means shed immediately
	// when saturated.
	MaxWait int
	// WaitTimeout bounds how long a parked request waits before being
	// shed (default 2s).
	WaitTimeout time.Duration
	// RetryAfter is the hint attached to shed responses (default 1s).
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// ShedError reports a load-shedding decision: the request was not
// admitted and the client should retry after the hint.
type ShedError struct {
	Reason     string // "draining", "queue_full", "timeout", "cancelled"
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("limit: request shed (%s); retry after %s", e.Reason, e.RetryAfter)
}

// Admission is a load-shedding admission controller: a concurrency cap
// with a bounded wait queue. Requests beyond MaxInFlight park (up to
// MaxWait of them, for up to WaitTimeout each); everything else is shed
// immediately so overload degrades into fast 429s instead of collapse.
// SetDraining flips the controller into full shedding for shutdown.
type Admission struct {
	cfg      AdmissionConfig
	slots    chan struct{} // buffered MaxInFlight; a held slot = admitted
	waiting  atomic.Int64
	draining atomic.Bool
	m        *obs.EndpointLimitMetrics // nil: unmetered
}

// NewAdmission builds a controller; m (optional) meters its decisions.
func NewAdmission(cfg AdmissionConfig, m *obs.EndpointLimitMetrics) *Admission {
	if cfg.MaxInFlight <= 0 {
		panic("limit: AdmissionConfig.MaxInFlight must be positive")
	}
	cfg = cfg.withDefaults()
	return &Admission{cfg: cfg, slots: make(chan struct{}, cfg.MaxInFlight), m: m}
}

// Acquire admits the request or sheds it. On admission the returned
// release func must be called exactly once when the request finishes; on
// shed it returns a *ShedError carrying the reason and Retry-After hint.
func (a *Admission) Acquire(ctx context.Context) (release func(), err *ShedError) {
	sp := trace.FromContext(ctx).StartChild("limit.acquire")
	defer func() {
		if err != nil {
			sp.SetStr("outcome", err.Reason)
		} else {
			sp.SetStr("outcome", "admitted")
		}
		sp.Finish()
	}()
	if a.draining.Load() {
		return nil, a.shed("draining")
	}
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	default:
	}

	// Saturated: park in the bounded wait queue or shed. The slot is
	// claimed with a CAS loop — a plain check-then-Add would let a burst
	// of simultaneous arrivals all pass the check and park far more than
	// MaxWait waiters.
	for {
		w := a.waiting.Load()
		if a.cfg.MaxWait <= 0 || int(w) >= a.cfg.MaxWait {
			return nil, a.shed("queue_full")
		}
		if a.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	if a.m != nil {
		a.m.Waiting.Inc()
	}
	sp.SetBool("queued", true)
	t0 := time.Now()
	timer := time.NewTimer(a.cfg.WaitTimeout)
	defer func() {
		timer.Stop()
		a.waiting.Add(-1)
		if a.m != nil {
			a.m.Waiting.Dec()
		}
	}()

	select {
	case a.slots <- struct{}{}:
		if a.draining.Load() {
			// Drain began while parked; give the slot back and shed.
			<-a.slots
			return nil, a.shed("draining")
		}
		if a.m != nil {
			a.m.WaitSeconds.Observe(time.Since(t0).Seconds())
		}
		sp.SetFloat("wait_seconds", time.Since(t0).Seconds())
		return a.admitted(), nil
	case <-timer.C:
		return nil, a.shed("timeout")
	case <-ctx.Done():
		return nil, a.shed("cancelled")
	}
}

func (a *Admission) admitted() func() {
	if a.m != nil {
		a.m.Admitted.Inc()
		a.m.InFlight.Inc()
	}
	var done atomic.Bool
	return func() {
		if done.Swap(true) {
			return // release is idempotent
		}
		<-a.slots
		if a.m != nil {
			a.m.InFlight.Dec()
		}
	}
}

func (a *Admission) shed(reason string) *ShedError {
	if a.m != nil {
		switch reason {
		case "draining":
			a.m.ShedDraining.Inc()
		case "queue_full":
			a.m.ShedQueueFull.Inc()
		case "timeout":
			a.m.ShedTimeout.Inc()
		case "cancelled":
			a.m.ShedCancelled.Inc()
		}
	}
	return &ShedError{Reason: reason, RetryAfter: a.cfg.RetryAfter}
}

// SetDraining flips full-shedding mode: every subsequent Acquire is shed
// with reason "draining". In-flight requests keep their slots and drain
// normally.
func (a *Admission) SetDraining(v bool) { a.draining.Store(v) }

// Draining reports drain mode.
func (a *Admission) Draining() bool { return a.draining.Load() }

// InFlight reports currently admitted requests.
func (a *Admission) InFlight() int { return len(a.slots) }

// Waiting reports requests parked in the wait queue.
func (a *Admission) Waiting() int { return int(a.waiting.Load()) }

// Shedding reports whether the controller is fully shedding new work:
// draining, or saturated with a full wait queue. Readiness probes report
// not-ready while this holds.
func (a *Admission) Shedding() bool {
	if a.draining.Load() {
		return true
	}
	return len(a.slots) >= a.cfg.MaxInFlight && int(a.waiting.Load()) >= a.cfg.MaxWait
}
