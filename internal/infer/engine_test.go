package infer

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"longexposure/internal/nn"
	"longexposure/internal/peft"
	"longexposure/internal/tensor"
)

func testConfig() nn.Config {
	return nn.Config{Name: "infer-test", Vocab: 24, Dim: 16, Layers: 2, Heads: 2, Hidden: 32, MaxSeq: 32, Act: nn.ActReLU}
}

// trainedPEFT builds a model from the base seed, applies the method, and
// runs a few SGD steps so the delta is non-trivial. The returned model's
// backbone still equals a fresh base built from the same seed (PEFT
// freezes it), which is what serving relies on.
func trainedPEFT(t *testing.T, method peft.Method, seed uint64) *nn.Transformer {
	t.Helper()
	m := nn.NewTransformer(testConfig(), tensor.NewRNG(seed))
	peft.Apply(m, method, peft.Options{LoRARank: 2, Bottleneck: 4, PromptTokens: 3}, tensor.NewRNG(seed+1))
	ids := [][]int{{2, 5, 3, 7, 2, 5, 3, 7}}
	targets := [][]int{{5, 3, 7, 2, 5, 3, 7, 2}}
	ps := m.Params()
	for i := 0; i < 4; i++ {
		logits := m.Forward(ids, nil, nil)
		flat := m.FlattenTargets(targets)
		_, dLogits := nn.CrossEntropy(logits, flat)
		ps.ZeroGrads()
		m.Backward(dLogits, nil)
		for _, p := range ps.Trainable() {
			tensor.AddScaledInto(p.W, p.Grad, -0.05)
		}
	}
	return m
}

// compiled extracts the delta, round-trips it through the LEXP encoding
// the registry uses, and compiles it for serving — the full artifact path.
func compiled(t *testing.T, m *nn.Transformer, method peft.Method, rank int, alpha float64) *nn.DecodeAdapter {
	t.Helper()
	delta := peft.Delta(m)
	ad, err := Compile(method.Key(), rank, alpha, m.Cfg, delta)
	if err != nil {
		t.Fatal(err)
	}
	return ad
}

// TestCompiledAdapterMatchesNaiveGenerate serves extracted artifacts over
// a clean shared base and pins the streamed tokens to the fine-tuned
// model's naive Generate — the end-to-end train → extract → serve
// contract, per method.
func TestCompiledAdapterMatchesNaiveGenerate(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1000))
	eng := New(base, Config{MaxBatch: 2})
	defer eng.Close()

	cases := []struct {
		method peft.Method
		rank   int
		alpha  float64
	}{
		{peft.LoRA, 2, 16},
		{peft.Adapter, 0, 0},
		{peft.PTuning, 0, 0},
	}
	prompt := []int{1, 4, 2}
	for _, tc := range cases {
		trained := trainedPEFT(t, tc.method, 1000) // same base seed as the engine's base
		want := trained.Generate(prompt, nn.GenerateConfig{MaxTokens: 8})
		ad := compiled(t, trained, tc.method, tc.rank, tc.alpha)

		stream, err := eng.Generate(context.Background(), Request{Prompt: prompt, MaxTokens: 8, Adapter: ad})
		if err != nil {
			t.Fatalf("%v: %v", tc.method, err)
		}
		got, reason, err := stream.Collect()
		if err != nil {
			t.Fatalf("%v: %v", tc.method, err)
		}
		if reason != "length" {
			t.Fatalf("%v: finish reason %q, want length", tc.method, reason)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: served %v, naive %v", tc.method, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: served %v, naive %v", tc.method, got, want)
			}
		}
	}
}

// TestNotServableMethods pins the rejection of backbone-mutating methods.
func TestNotServableMethods(t *testing.T) {
	for _, method := range []peft.Method{peft.FullFT, peft.BitFit} {
		m := trainedPEFT(t, method, 1010)
		if _, err := Compile(method.Key(), 0, 0, m.Cfg, peft.Delta(m)); err == nil {
			t.Fatalf("%v artifact compiled; want ErrNotServable", method)
		}
	}
}

// TestCompileRejectsForeignParams pins that an artifact with unexpected
// parameters fails loudly instead of decoding wrong.
func TestCompileRejectsForeignParams(t *testing.T) {
	m := trainedPEFT(t, peft.LoRA, 1020)
	delta := peft.Delta(m)
	delta = append(delta, nn.NewParameter("layer9.attn.q_proj.lora_A", 16, 2))
	if _, err := Compile("lora", 2, 16, m.Cfg, delta); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
	delta2 := peft.Delta(trainedPEFT(t, peft.Adapter, 1021))
	if _, err := Compile("lora", 2, 16, m.Cfg, delta2); err == nil {
		t.Fatal("adapter params accepted as lora artifact")
	}
}

// TestConcurrentAdaptersOneBase drives more sequences than MaxBatch
// through one engine — different adapters, interleaved admission — and
// checks every stream against its naive reference. Run under -race by CI:
// this is the shared-frozen-base concurrency claim.
func TestConcurrentAdaptersOneBase(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1000))
	eng := New(base, Config{MaxBatch: 2}) // forces batching churn with 6 requests
	defer eng.Close()

	type job struct {
		ad     *nn.DecodeAdapter
		prompt []int
		want   []int
		seed   uint64
		temp   float64
	}
	var jobs []job
	loraTrained := trainedPEFT(t, peft.LoRA, 1000)
	adptTrained := trainedPEFT(t, peft.Adapter, 1000)
	loraAd := compiled(t, loraTrained, peft.LoRA, 2, 16)
	adptAd := compiled(t, adptTrained, peft.Adapter, 0, 0)
	for i := 0; i < 6; i++ {
		trained, ad := loraTrained, loraAd
		if i%2 == 1 {
			trained, ad = adptTrained, adptAd
		}
		prompt := []int{1 + i, 3, 2}
		temp := 0.0
		if i >= 4 {
			temp = 0.7
		}
		seed := uint64(2000 + i)
		want := trained.Generate(prompt, nn.GenerateConfig{
			MaxTokens: 10, Temperature: temp, RNG: tensor.NewRNG(seed),
		})
		jobs = append(jobs, job{ad: ad, prompt: prompt, want: want, seed: seed, temp: temp})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			stream, err := eng.Generate(context.Background(), Request{
				Prompt: j.prompt, MaxTokens: 10, Temperature: j.temp, Seed: j.seed, Adapter: j.ad,
			})
			if err != nil {
				errs[ji] = err
				return
			}
			got, _, err := stream.Collect()
			if err != nil {
				errs[ji] = err
				return
			}
			if len(got) != len(j.want) {
				errs[ji] = fmt.Errorf("seq %d: served %v, want %v", ji, got, j.want)
				return
			}
			for i := range got {
				if got[i] != j.want[i] {
					errs[ji] = fmt.Errorf("seq %d: served %v, want %v", ji, got, j.want)
					return
				}
			}
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGenerateValidation pins request validation.
func TestGenerateValidation(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1030))
	eng := New(base, Config{})
	defer eng.Close()

	if _, err := eng.Generate(context.Background(), Request{}); err == nil {
		t.Fatal("empty prompt accepted")
	}
	if _, err := eng.Generate(context.Background(), Request{Prompt: []int{999}}); err == nil {
		t.Fatal("out-of-vocab prompt accepted")
	}
	long := make([]int, base.Cfg.MaxSeq)
	if _, err := eng.Generate(context.Background(), Request{Prompt: long}); err == nil {
		t.Fatal("over-long prompt accepted")
	}

	// A hostile MaxTokens must not size a huge stream buffer: the request
	// is clamped to MaxSeq (which bounds emission anyway) and completes.
	stream, err := eng.Generate(context.Background(), Request{Prompt: []int{1, 2}, MaxTokens: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	tokens, reason, err := stream.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if reason != "max_seq" && reason != "length" {
		t.Fatalf("clamped generation finished with reason %q", reason)
	}
	if len(tokens) >= base.Cfg.MaxSeq {
		t.Fatalf("emitted %d tokens past MaxSeq %d", len(tokens), base.Cfg.MaxSeq)
	}
}

// TestStopTokenAndCancellation pins the stop-token finish reason and
// context cancellation mid-stream.
func TestStopTokenAndCancellation(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1040))
	eng := New(base, Config{})
	defer eng.Close()

	prompt := []int{2, 3}
	ref := base.Generate(prompt, nn.GenerateConfig{MaxTokens: 12})
	stopAt := -1
	for i, tok := range ref {
		if tok > 0 {
			stopAt = i
			break
		}
	}
	if stopAt >= 0 {
		stream, err := eng.Generate(context.Background(), Request{Prompt: prompt, MaxTokens: 12, StopToken: ref[stopAt]})
		if err != nil {
			t.Fatal(err)
		}
		got, reason, err := stream.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if reason != "stop" || len(got) != stopAt+1 {
			t.Fatalf("stop token: got %v reason %q, want %d tokens reason stop", got, reason, stopAt+1)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before admission: the stream must terminate promptly
	stream, err := eng.Generate(ctx, Request{Prompt: prompt, MaxTokens: 1 << 10})
	if err != nil {
		return // rejected at submit — also acceptable
	}
	_, reason, err := stream.Collect()
	if err == nil && reason != "cancelled" {
		t.Fatalf("cancelled stream finished with reason %q", reason)
	}
}

// TestEngineCloseFailsInFlight pins that Close terminates queued work with
// an error instead of leaking streams.
func TestEngineCloseFailsInFlight(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1050))
	eng := New(base, Config{MaxBatch: 1})
	stream, err := eng.Generate(context.Background(), Request{Prompt: []int{1, 2}, MaxTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	if _, err := eng.Generate(context.Background(), Request{Prompt: []int{1}}); err == nil {
		t.Fatal("closed engine accepted a request")
	}
	// The stream either completed normally before close or was failed —
	// it must terminate either way.
	if _, _, err := stream.Collect(); err != nil && !isClosed(err) {
		t.Fatalf("unexpected stream error: %v", err)
	}
}

func isClosed(err error) bool { return err == ErrClosed }
