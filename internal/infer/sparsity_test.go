package infer

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

// TestHeterogeneousPlansInOneBatch runs a continuous batch whose sequences
// carry different sparsity options — off, forced density 1.0, forced half
// density, auto — concurrently on one engine, and pins every stream to a
// single-threaded reference decoded with its own sequence planner. Run
// under -race by CI: per-sequence planners must never share mutable state.
func TestHeterogeneousPlansInOneBatch(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1100))
	obsReg := obs.NewRegistry()
	sp := predictor.NewServingPlanner(base, nil, predictor.ServingConfig{Metrics: obs.NewServingSparsityMetrics(obsReg)})
	eng := New(base, Config{MaxBatch: 2, Planner: sp, Metrics: obs.NewInferMetrics(obsReg)})
	defer eng.Close()

	modes := []nn.SparsityOptions{
		{},
		{Mode: nn.SparsityForced, MLPDensity: 1, AttnDensity: 1},
		{Mode: nn.SparsityForced, MLPDensity: 0.5},
		{Mode: nn.SparsityAuto},
		{Mode: nn.SparsityForced, MLPDensity: 0.5},
		{Mode: nn.SparsityAuto, MLPDensity: 0.75},
	}
	type job struct {
		opts   nn.SparsityOptions
		prompt []int
		temp   float64
		seed   uint64
		want   []int
	}
	jobs := make([]job, len(modes))
	for i, opts := range modes {
		prompt := []int{1 + i, 3, 2}
		temp := 0.0
		if i >= 4 {
			temp = 0.7
		}
		seed := uint64(3000 + i)
		// Single-threaded reference with an independent sequence planner —
		// planning reads only the prompt and emitted tokens, so a fresh
		// planner over the same base reproduces the engine's plans exactly.
		planner, err := sp.NewSequencePlanner(opts)
		if err != nil {
			t.Fatal(err)
		}
		want := base.GenerateCachedCfg(prompt, nn.GenerateConfig{
			MaxTokens: 10, Temperature: temp, RNG: tensor.NewRNG(seed),
		}, nn.DecodeSession{WS: tensor.NewArena(), Planner: planner})
		jobs[i] = job{opts: opts, prompt: prompt, temp: temp, seed: seed, want: want}
	}

	// The dense, forced-1.0 — and on this 2-layer model, auto-default —
	// references must agree with the plain dense decode (quality gate).
	dense := base.GenerateCached(jobs[0].prompt, nn.GenerateConfig{MaxTokens: 10, RNG: tensor.NewRNG(3000)}, nil, nil, nil)
	for i := range dense {
		if jobs[0].want[i] != dense[i] {
			t.Fatalf("off-mode reference diverged from dense: %v vs %v", jobs[0].want, dense)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(jobs))
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			stream, err := eng.Generate(context.Background(), Request{
				Prompt: j.prompt, MaxTokens: 10, Temperature: j.temp, Seed: j.seed, Sparsity: j.opts,
			})
			if err != nil {
				errs[ji] = err
				return
			}
			got, _, err := stream.Collect()
			if err != nil {
				errs[ji] = err
				return
			}
			if len(got) != len(j.want) {
				errs[ji] = fmt.Errorf("seq %d (%+v): served %v, want %v", ji, j.opts, got, j.want)
				return
			}
			for i := range got {
				if got[i] != j.want[i] {
					errs[ji] = fmt.Errorf("seq %d (%+v): served %v, want %v", ji, j.opts, got, j.want)
					return
				}
			}
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if v, _ := obsReg.Value("lexp_infer_sparse_steps_total"); v == 0 {
		t.Fatal("no sparse steps counted across the batch")
	}
}

// TestSparsityRequestValidation pins the engine-side option surface: a
// sparsity request without a planner is rejected, as are invalid options
// even when no planner is attached.
func TestSparsityRequestValidation(t *testing.T) {
	base := nn.NewTransformer(testConfig(), tensor.NewRNG(1110))
	eng := New(base, Config{})
	defer eng.Close()

	if _, err := eng.Generate(context.Background(), Request{
		Prompt: []int{1, 2}, Sparsity: nn.SparsityOptions{Mode: nn.SparsityAuto},
	}); err == nil {
		t.Fatal("sparsity request accepted by a planner-less engine")
	}
	if _, err := eng.Generate(context.Background(), Request{
		Prompt: []int{1, 2}, Sparsity: nn.SparsityOptions{Mode: "bogus"},
	}); err == nil {
		t.Fatal("invalid sparsity mode accepted")
	}
	if _, err := eng.Generate(context.Background(), Request{
		Prompt: []int{1, 2}, Sparsity: nn.SparsityOptions{MLPDensity: 0.5},
	}); err == nil {
		t.Fatal("off-mode densities accepted")
	}
}
