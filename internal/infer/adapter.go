// Package infer is the generation engine behind the inference gateway: it
// compiles registry adapter artifacts into the functional decode weights
// nn.DecodeStep consumes, and schedules concurrent generation requests
// over one shared frozen base with continuous batching — sequences are
// admitted and retired every decode step, each carrying its own KV cache,
// workspace arena and adapter, so requests for different adapters run side
// by side without touching the base model's weights.
package infer

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"

	"longexposure/internal/nn"
)

// ErrNotServable rejects adapter methods that cannot be applied
// functionally over a shared frozen base: full fine-tuning and BitFit
// mutate the backbone itself, so their artifacts describe a different
// base, not a detachable delta.
var ErrNotServable = errors.New("infer: method not servable on a shared base (only lora, adapter and ptuning attach functionally)")

var (
	loraRe       = regexp.MustCompile(`^layer(\d+)\.attn\.(q|v)_proj\.lora_(A|B)$`)
	bottleneckRe = regexp.MustCompile(`^layer(\d+)\.adapter_(attn|mlp)\.(down|up)\.(weight|bias)$`)
)

// Compile turns an artifact's parameter set into the decode-time adapter
// for a base with the given config. method is the manifest's method key;
// rank/alpha size the LoRA scale. Every parameter must be recognized and
// shape-consistent — a partial artifact must fail here, not decode wrong.
func Compile(method string, rank int, alpha float64, cfg nn.Config, params nn.ParamSet) (*nn.DecodeAdapter, error) {
	switch method {
	case "lora":
		return compileLoRA(rank, alpha, cfg, params)
	case "adapter":
		return compileBottleneck(cfg, params)
	case "ptuning":
		return compilePrompt(cfg, params)
	case "full", "bitfit":
		return nil, fmt.Errorf("%w: %q", ErrNotServable, method)
	default:
		return nil, fmt.Errorf("infer: unknown adapter method %q", method)
	}
}

func layerIndex(s string, cfg nn.Config) (int, error) {
	li, err := strconv.Atoi(s)
	if err != nil || li < 0 || li >= cfg.Layers {
		return 0, fmt.Errorf("infer: layer index %q outside model of %d layers", s, cfg.Layers)
	}
	return li, nil
}

func compileLoRA(rank int, alpha float64, cfg nn.Config, params nn.ParamSet) (*nn.DecodeAdapter, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("infer: lora artifact with rank %d", rank)
	}
	scale := float32(alpha / float64(rank))
	ad := &nn.DecodeAdapter{Layers: make([]nn.LayerAdapter, cfg.Layers)}
	pair := func(li int, proj string) **nn.LoRAPair {
		if proj == "q" {
			return &ad.Layers[li].Q
		}
		return &ad.Layers[li].V
	}
	for _, p := range params {
		m := loraRe.FindStringSubmatch(p.Name)
		if m == nil {
			return nil, fmt.Errorf("infer: unexpected parameter %q in lora artifact", p.Name)
		}
		li, err := layerIndex(m[1], cfg)
		if err != nil {
			return nil, err
		}
		lp := pair(li, m[2])
		if *lp == nil {
			*lp = &nn.LoRAPair{Scale: scale}
		}
		switch m[3] {
		case "A":
			if p.W.Dim(0) != cfg.Dim || p.W.Dim(1) != rank {
				return nil, fmt.Errorf("infer: %s shape %v, want [%d %d]", p.Name, p.W.Shape(), cfg.Dim, rank)
			}
			(*lp).A = p.W
		case "B":
			if p.W.Dim(0) != rank || p.W.Dim(1) != cfg.Dim {
				return nil, fmt.Errorf("infer: %s shape %v, want [%d %d]", p.Name, p.W.Shape(), rank, cfg.Dim)
			}
			(*lp).B = p.W
		}
	}
	for li := range ad.Layers {
		for _, lp := range []*nn.LoRAPair{ad.Layers[li].Q, ad.Layers[li].V} {
			if lp != nil && (lp.A == nil || lp.B == nil) {
				return nil, fmt.Errorf("infer: layer %d lora pair missing A or B", li)
			}
		}
	}
	return ad, nil
}

func compileBottleneck(cfg nn.Config, params nn.ParamSet) (*nn.DecodeAdapter, error) {
	ad := &nn.DecodeAdapter{Layers: make([]nn.LayerAdapter, cfg.Layers)}
	slot := func(li int, where string) **nn.BottleneckWeights {
		if where == "attn" {
			return &ad.Layers[li].AttnScaled
		}
		return &ad.Layers[li].MLPScaled
	}
	for _, p := range params {
		m := bottleneckRe.FindStringSubmatch(p.Name)
		if m == nil {
			return nil, fmt.Errorf("infer: unexpected parameter %q in adapter artifact", p.Name)
		}
		li, err := layerIndex(m[1], cfg)
		if err != nil {
			return nil, err
		}
		bw := slot(li, m[2])
		if *bw == nil {
			*bw = &nn.BottleneckWeights{}
		}
		switch m[3] + "." + m[4] {
		case "down.weight":
			(*bw).DownW = p.W
		case "down.bias":
			(*bw).DownB = p.W
		case "up.weight":
			(*bw).UpW = p.W
		case "up.bias":
			(*bw).UpB = p.W
		}
	}
	for li := range ad.Layers {
		for _, bw := range []*nn.BottleneckWeights{ad.Layers[li].AttnScaled, ad.Layers[li].MLPScaled} {
			if bw == nil {
				continue
			}
			if bw.DownW == nil || bw.DownB == nil || bw.UpW == nil || bw.UpB == nil {
				return nil, fmt.Errorf("infer: layer %d bottleneck incomplete", li)
			}
			if bw.DownW.Dim(0) != cfg.Dim || bw.UpW.Dim(1) != cfg.Dim || bw.DownW.Dim(1) != bw.UpW.Dim(0) {
				return nil, fmt.Errorf("infer: layer %d bottleneck shapes %v/%v inconsistent with dim %d",
					li, bw.DownW.Shape(), bw.UpW.Shape(), cfg.Dim)
			}
			if bw.DownB.Len() != bw.DownW.Dim(1) || bw.UpB.Len() != cfg.Dim {
				return nil, fmt.Errorf("infer: layer %d bottleneck bias lengths %d/%d inconsistent with shapes %v/%v",
					li, bw.DownB.Len(), bw.UpB.Len(), bw.DownW.Shape(), bw.UpW.Shape())
			}
		}
	}
	return ad, nil
}

func compilePrompt(cfg nn.Config, params nn.ParamSet) (*nn.DecodeAdapter, error) {
	if len(params) != 1 || params[0].Name != "prompt" {
		return nil, fmt.Errorf("infer: ptuning artifact must contain exactly the prompt parameter")
	}
	p := params[0].W
	if p.Rank() != 2 || p.Dim(1) != cfg.Dim || p.Dim(0) <= 0 || p.Dim(0) >= cfg.MaxSeq {
		return nil, fmt.Errorf("infer: prompt shape %v inconsistent with dim %d / MaxSeq %d", p.Shape(), cfg.Dim, cfg.MaxSeq)
	}
	return &nn.DecodeAdapter{Prompt: p}, nil
}
