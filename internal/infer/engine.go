package infer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/tensor"
	"longexposure/internal/trace"
)

// PlannerProvider hands out per-sequence contextual-sparsity planners.
// internal/predictor's ServingPlanner is the implementation; the interface
// lives here so the engine never imports the predictor machinery. A
// provider must be safe for concurrent NewSequencePlanner calls and must
// return (nil, nil) when the options request no sparsity.
type PlannerProvider interface {
	NewSequencePlanner(opts nn.SparsityOptions) (nn.DecodePlanner, error)
}

// Config sizes an Engine.
type Config struct {
	// MaxBatch bounds sequences decoded per scheduler step (default 4).
	MaxBatch int
	// Queue bounds submitted-but-unadmitted sequences (default 64).
	Queue int
	// Metrics, when set, receives scheduler observability: batch
	// occupancy, tokens/sec, KV-cache residency, queue depth, admissions
	// and retirements. All updates are atomic handle writes on the
	// scheduler goroutine — the per-token decode path stays zero-alloc.
	Metrics *obs.InferMetrics
	// Planner, when set, enables contextual sparsity: requests carrying
	// sparsity options get a per-sequence planner and decode under
	// per-step plans. Nil (or a request with mode off) decodes dense.
	Planner PlannerProvider
	// Account, when set, emits one wide event per retired sequence into
	// the accounting plane: tokens, FLOPs (dense-equivalent, executed,
	// saved by sparsity), peak KV footprint, queue wait and phase
	// durations. Accumulation rides the preallocated sequence struct —
	// the per-token decode path stays zero-alloc.
	Account *account.Plane
}

// ErrClosed rejects submissions to a closed engine.
var ErrClosed = errors.New("infer: engine closed")

// Engine decodes generation requests on one shared frozen base with
// continuous batching: a scheduler loop admits queued sequences up to
// MaxBatch, runs one decode step for every active sequence concurrently,
// retires finished ones, and immediately backfills from the queue — a new
// request never waits for the longest running sequence to drain. The base
// model is strictly read-only here; every sequence owns its KV cache,
// workspace arena, RNG and adapter.
type Engine struct {
	base *nn.Transformer
	cfg  Config

	submit    chan *sequence
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// closeMu orders submissions against Close: a Generate holding the
	// read lock past the isClosed check completes its enqueue before Close
	// (write lock) proceeds to drain the queue, so no stream is orphaned.
	closeMu  sync.RWMutex
	isClosed bool

	// Last values this engine contributed to the shared level gauges.
	// Metrics bundles are shared across engines (the gateway builds one
	// engine per base), so levels are reported as deltas — each engine
	// adds its own change and the gauge aggregates correctly — instead of
	// Set calls that would clobber the other engines' contributions.
	// Scheduler-goroutine only.
	prevActive, prevQueue, prevKV int
}

// New starts an engine over the base model.
func New(base *nn.Transformer, cfg Config) *Engine {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	e := &Engine{
		base:   base,
		cfg:    cfg,
		submit: make(chan *sequence, cfg.Queue),
		closed: make(chan struct{}),
	}
	e.wg.Add(1)
	go e.run()
	return e
}

// Base returns the engine's shared model (read-only by contract).
func (e *Engine) Base() *nn.Transformer { return e.base }

// Close stops the scheduler. Queued and in-flight sequences are terminated
// with an "engine closed" error event.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		e.closeMu.Lock()
		e.isClosed = true
		e.closeMu.Unlock()
		close(e.closed)
	})
	e.wg.Wait()
}

// Request describes one generation.
type Request struct {
	Prompt      []int
	MaxTokens   int     // default 16
	Temperature float64 // 0 = greedy
	StopToken   int     // stop after emitting this token; <= 0 disables
	Seed        uint64  // sampling seed (default 1)

	// Adapter is the compiled PEFT delta to decode with; nil serves the
	// plain base. Concurrent requests may carry different adapters.
	Adapter *nn.DecodeAdapter
	// AdapterID tags events for observability (not interpreted here).
	AdapterID string

	// Tenant, Route and LimitVerdict stamp the request's wide event when
	// the engine carries an accounting plane (not interpreted here).
	// Tenant defaults to "anonymous"; LimitVerdict is the admission
	// controller's decision ("admitted"), empty when no limiter guards
	// the route.
	Tenant       string
	Route        string
	LimitVerdict string

	// Sparsity requests contextual sparsity for this sequence. The zero
	// value (mode off) decodes dense; "auto"/"forced" require the engine
	// to carry a Config.Planner. Concurrent sequences may carry different
	// options — plans are strictly per sequence.
	Sparsity nn.SparsityOptions
}

// Event is one item on a generation stream: a token, or the terminal
// marker carrying the finish reason ("stop", "length", "max_seq",
// "cancelled", or an error).
type Event struct {
	Token  int    `json:"token,omitempty"`
	Index  int    `json:"index"`
	Done   bool   `json:"done,omitempty"`
	Reason string `json:"reason,omitempty"`
	Err    error  `json:"-"`
}

// Stream delivers a generation's events. The channel is buffered for the
// whole generation, so a slow consumer never stalls the scheduler, and is
// closed after the terminal event.
type Stream struct {
	Events <-chan Event
}

// Collect drains the stream into the emitted tokens plus the finish
// reason — the non-streaming consumption mode.
func (s *Stream) Collect() (tokens []int, reason string, err error) {
	for ev := range s.Events {
		if ev.Err != nil {
			return tokens, ev.Reason, ev.Err
		}
		if ev.Done {
			return tokens, ev.Reason, nil
		}
		tokens = append(tokens, ev.Token)
	}
	return tokens, "", fmt.Errorf("infer: stream ended without terminal event")
}

type sequence struct {
	ctx     context.Context
	prompt  []int
	ad      *nn.DecodeAdapter
	pRows   int // adapter prompt rows
	maxTok  int
	temp    float64
	stop    int
	rng     *tensor.RNG
	cache   *nn.KVCache
	ws      *tensor.Arena
	planner nn.DecodePlanner // nil: dense sequence
	out     chan Event
	emitted int
	started bool
	nextBuf [1]int

	// Realized densities of the last step's plan (1.0 when dense),
	// aggregated by the scheduler into the batch-level gauges. Written by
	// the sequence's step goroutine, read by the scheduler after Wait.
	planMLPDensity, planAttnDensity float64
	planned                         bool
	queued                          time.Time // when Generate enqueued the sequence
	admitted                        time.Time // when the scheduler first saw the sequence

	// span covers the sequence's whole lifetime (enqueue through terminal
	// event); per-step children hang off it. nil when the request is
	// unsampled — every use below is a nil-safe no-op.
	span *trace.Span

	// Accounting accumulator: stats is written by the step goroutine
	// (plain field arithmetic via DecodeStepConfig.Stats — the hot path
	// stays zero-alloc), ev is assembled at Generate time and completed
	// on the scheduler goroutine at retirement. statsp is nil when the
	// engine carries no accounting plane, making every recording site a
	// no-op.
	statsp              *nn.DecodeStats
	stats               nn.DecodeStats
	ev                  account.Event
	prefillNs, decodeNs int64

	done   bool
	reason string
	err    error
}

// Generate validates and enqueues a request. The returned stream starts
// delivering as soon as the scheduler admits the sequence. ctx cancels a
// queued or running sequence.
func (e *Engine) Generate(ctx context.Context, req Request) (*Stream, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("infer: empty prompt")
	}
	for _, tok := range req.Prompt {
		if tok < 0 || tok >= e.base.Cfg.Vocab {
			return nil, fmt.Errorf("infer: prompt token %d outside vocab %d", tok, e.base.Cfg.Vocab)
		}
	}
	if req.MaxTokens <= 0 {
		req.MaxTokens = 16
	}
	// MaxSeq already bounds how many tokens any sequence can emit, and
	// MaxTokens sizes the stream buffer below — clamp it so a hostile
	// request cannot turn the buffer allocation into memory exhaustion.
	if req.MaxTokens > e.base.Cfg.MaxSeq {
		req.MaxTokens = e.base.Cfg.MaxSeq
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	pRows := req.Adapter.PromptLen()
	if pRows+len(req.Prompt) >= e.base.Cfg.MaxSeq {
		return nil, fmt.Errorf("infer: prompt of %d tokens (+%d prompt-tuning rows) leaves no room under MaxSeq %d",
			len(req.Prompt), pRows, e.base.Cfg.MaxSeq)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var planner nn.DecodePlanner
	if req.Sparsity.Enabled() {
		if e.cfg.Planner == nil {
			return nil, fmt.Errorf("infer: sparsity mode %q requested but the engine has no planner", req.Sparsity.Mode)
		}
		var err error
		planner, err = e.cfg.Planner.NewSequencePlanner(req.Sparsity)
		if err != nil {
			return nil, fmt.Errorf("infer: %w", err)
		}
	} else if err := req.Sparsity.Validate("sparsity"); err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}

	s := &sequence{
		ctx:     ctx,
		prompt:  append([]int(nil), req.Prompt...),
		ad:      req.Adapter,
		pRows:   pRows,
		maxTok:  req.MaxTokens,
		temp:    req.Temperature,
		stop:    req.StopToken,
		rng:     tensor.NewRNG(req.Seed),
		cache:   e.base.NewKVCache(),
		ws:      tensor.NewArena(),
		planner: planner,
		// One slot per possible token plus the terminal event: sends from
		// the scheduler can never block on a lagging consumer.
		out: make(chan Event, req.MaxTokens+1),
	}
	s.queued = time.Now()
	if planner != nil {
		planner.BeginSequence(s.prompt, req.Adapter)
	}
	s.span = trace.FromContext(ctx).StartChild("infer.sequence")
	s.span.SetStr("adapter", req.AdapterID)
	s.span.SetInt("prompt_tokens", int64(len(req.Prompt)))
	if req.Sparsity.Enabled() {
		s.span.SetStr("sparsity", req.Sparsity.Mode)
	}
	if e.cfg.Account != nil {
		// The event's identity is fixed here, off the hot path; the
		// resource vector fills in at retirement from s.stats.
		s.statsp = &s.stats
		tenant := req.Tenant
		if tenant == "" {
			tenant = "anonymous"
		}
		s.ev = account.Event{
			Kind:         account.KindGenerate,
			Tenant:       tenant,
			Route:        req.Route,
			Adapter:      req.AdapterID,
			Base:         e.base.Cfg.Name,
			Limit:        req.LimitVerdict,
			PromptTokens: int64(len(req.Prompt)),
		}
		if tid := s.span.TraceID(); tid.Valid() {
			s.ev.TraceID = tid.String()
		}
	}
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.isClosed {
		return nil, ErrClosed
	}
	select {
	case e.submit <- s:
		return &Stream{Events: s.out}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// run is the continuous-batching scheduler loop.
func (e *Engine) run() {
	defer e.wg.Done()
	m := e.cfg.Metrics
	var active []*sequence
	for {
		// Block for work when idle; otherwise top up without blocking.
		if len(active) == 0 {
			select {
			case s := <-e.submit:
				active = append(active, e.admit(s))
			case <-e.closed:
				e.failAll(active)
				return
			}
		}
		for len(active) < e.cfg.MaxBatch {
			select {
			case s := <-e.submit:
				active = append(active, e.admit(s))
			default:
				goto step
			}
		}
	step:
		if m != nil {
			m.SchedulerSteps.Inc()
			m.BatchOccupancy.Observe(float64(len(active)))
			e.setLevels(len(active), len(e.submit), e.prevKV)
		}

		// One decode step per active sequence, concurrently. Each sequence
		// touches only its own cache/arena/RNG; the base is read-only.
		emitted := 0
		for _, s := range active {
			emitted -= s.emitted
		}
		var wg sync.WaitGroup
		for _, s := range active {
			wg.Add(1)
			batch := len(active)
			go func(s *sequence) {
				defer wg.Done()
				s.step(e.base, batch)
			}(s)
		}
		wg.Wait()

		kvRows := 0
		sparseSteps := 0
		var mlpD, attnD float64
		keep := active[:0]
		for _, s := range active {
			emitted += s.emitted
			if s.planned {
				sparseSteps++
				mlpD += s.planMLPDensity
				attnD += s.planAttnDensity
			}
			if s.done {
				s.finish()
				e.account(s)
				if m != nil {
					m.Retired(s.reason).Inc()
					m.SeqSeconds.Observe(time.Since(s.admitted).Seconds())
				}
				continue
			}
			kvRows += s.cache.Len
			keep = append(keep, s)
		}
		active = keep
		if m != nil {
			m.Tokens.Add(float64(emitted))
			e.setLevels(len(active), e.prevQueue, kvRows)
			if sparseSteps > 0 {
				m.SparseSteps.Add(float64(sparseSteps))
				m.PlanMLPDensity.Set(mlpD / float64(sparseSteps))
				m.PlanAttnDensity.Set(attnD / float64(sparseSteps))
			}
		}

		select {
		case <-e.closed:
			e.failAll(active)
			return
		default:
		}
	}
}

// account completes and emits the sequence's wide event — identity from
// Generate, resource vector from the step accumulator. No-op without a
// plane.
func (e *Engine) account(s *sequence) {
	p := e.cfg.Account
	if p == nil {
		return
	}
	end := time.Now()
	ev := &s.ev
	ev.Time = end
	ev.Outcome = s.reason
	ev.OutputTokens = int64(s.emitted)
	ev.DecodeSteps = s.stats.Steps
	ev.PlannedSteps = s.stats.PlannedSteps
	ev.DenseFLOPs = s.stats.DenseFLOPs
	ev.ExecFLOPs = s.stats.ExecFLOPs
	ev.MLPSavedFLOPs = s.stats.MLPSavedFLOPs
	ev.AttnSavedFLOPs = s.stats.AttnSavedFLOPs
	ev.PeakKVRows = s.stats.PeakKVRows
	ev.PeakKVBytes = s.stats.PeakKVRows * e.base.KVRowBytes()
	ev.ArenaBytes = s.ws.AllocBytes()
	if !s.admitted.IsZero() {
		ev.QueueWaitNs = s.admitted.Sub(s.queued).Nanoseconds()
	} else {
		// Never admitted (engine closed while queued): the whole lifetime
		// was queue wait.
		ev.QueueWaitNs = end.Sub(s.queued).Nanoseconds()
	}
	ev.PrefillNs = s.prefillNs
	ev.DecodeNs = s.decodeNs
	ev.TotalNs = end.Sub(s.queued).Nanoseconds()
	p.Emit(ev)
}

// admit stamps and meters a sequence entering the decode batch.
func (e *Engine) admit(s *sequence) *sequence {
	s.admitted = time.Now()
	s.span.ChildAt("infer.queue", s.queued, s.admitted)
	if m := e.cfg.Metrics; m != nil {
		m.Admitted.Inc()
	}
	return s
}

// setLevels moves this engine's contribution to the shared level gauges
// to the given values (delta reporting; see the prev* fields).
func (e *Engine) setLevels(active, queue, kv int) {
	m := e.cfg.Metrics
	if m == nil {
		return
	}
	if active != e.prevActive {
		m.Active.Add(float64(active - e.prevActive))
		e.prevActive = active
	}
	if queue != e.prevQueue {
		m.QueueDepth.Add(float64(queue - e.prevQueue))
		e.prevQueue = queue
	}
	if kv != e.prevKV {
		m.KVRows.Add(float64(kv - e.prevKV))
		e.prevKV = kv
	}
}

// failAll terminates every active and queued sequence on engine close.
func (e *Engine) failAll(active []*sequence) {
	m := e.cfg.Metrics
	for _, s := range active {
		s.err, s.reason = ErrClosed, "error"
		s.finish()
		e.account(s)
		if m != nil {
			// Only admitted sequences retire: retired_total must never
			// exceed admitted_total.
			m.Retired(s.reason).Inc()
		}
	}
	e.setLevels(0, 0, 0) // withdraw this engine's gauge contributions
	for {
		select {
		case s := <-e.submit:
			// Never admitted — failed without counting as retired.
			s.err, s.reason = ErrClosed, "error"
			s.finish()
			e.account(s)
		default:
			return
		}
	}
}

// step advances the sequence by one token: the first call runs the full
// prompt prefill, later calls decode exactly one row against the cache.
// Bounds and stop conditions mirror nn.Generate so served tokens are
// bit-identical to the naive path. batch is the decode batch occupancy
// this step ran under, recorded as a span attribute.
func (s *sequence) step(base *nn.Transformer, batch int) {
	defer func() {
		if r := recover(); r != nil {
			s.done = true
			s.reason = "error"
			s.err = fmt.Errorf("infer: decode panicked: %v", r)
		}
	}()
	if s.ctx.Err() != nil {
		s.done, s.reason = true, "cancelled"
		return
	}
	if s.pRows+len(s.prompt)+s.emitted >= base.Cfg.MaxSeq {
		s.done, s.reason = true, "max_seq"
		return
	}

	var logits *tensor.Tensor
	var sp *trace.Span
	var t0 time.Time
	if s.statsp != nil {
		t0 = time.Now()
	}
	prefill := !s.started
	s.planned, s.planMLPDensity, s.planAttnDensity = false, 1, 1
	if prefill {
		// Prefill always runs dense: the planner's position summaries are
		// built from these very rows, and prefill is one step regardless.
		sp = s.span.StartChild("infer.prefill")
		logits = base.DecodeStepCfg(s.cache, s.prompt, nn.DecodeStepConfig{Adapter: s.ad, WS: s.ws, Stats: s.statsp})
		s.started = true
	} else {
		sp = s.span.StartChild("infer.decode_step")
		sp.SetInt("step", int64(s.emitted))
		var plan *nn.DecodePlan
		if s.planner != nil {
			plan = s.planner.PlanStep(s.nextBuf[0], s.cache.Len, s.ws)
		}
		if plan != nil {
			s.planned = true
			s.planMLPDensity, s.planAttnDensity = plan.MLPDensity, plan.AttnDensity
			sp.SetBool("sparse", true)
		}
		logits = base.DecodeStepCfg(s.cache, s.nextBuf[:], nn.DecodeStepConfig{Adapter: s.ad, Plan: plan, WS: s.ws, Stats: s.statsp})
	}
	tok := nn.SampleToken(logits.Row(0), s.temp, s.rng)
	sp.SetInt("batch", int64(batch))
	sp.Finish()
	s.ws.Release()
	if s.statsp != nil {
		d := time.Since(t0).Nanoseconds()
		if prefill {
			s.prefillNs += d
		} else {
			s.decodeNs += d
		}
	}
	s.nextBuf[0] = tok

	s.out <- Event{Token: tok, Index: s.emitted} // buffered for the full run
	s.emitted++

	switch {
	case s.stop > 0 && tok == s.stop:
		s.done, s.reason = true, "stop"
	case s.emitted >= s.maxTok:
		s.done, s.reason = true, "length"
	}
}

// finish emits the terminal event, closes the stream, and retires the
// sequence span with its outcome.
func (s *sequence) finish() {
	s.out <- Event{Done: true, Index: s.emitted, Reason: s.reason, Err: s.err}
	close(s.out)
	s.span.SetInt("tokens", int64(s.emitted))
	s.span.SetStr("reason", s.reason)
	if s.err != nil {
		s.span.SetBool("error", true)
	}
	s.span.Finish()
}
