package infer

import (
	"context"
	"sync"
	"testing"
	"time"

	"longexposure/internal/account"
	"longexposure/internal/nn"
	"longexposure/internal/obs"
	"longexposure/internal/predictor"
	"longexposure/internal/tensor"
)

// accountedEngine builds an engine over cfg with a sparsity planner and a
// metrics-instrumented accounting plane attached.
func accountedEngine(t *testing.T, cfg nn.Config, seed uint64) (*Engine, *account.Plane, *obs.Registry) {
	t.Helper()
	base := nn.NewTransformer(cfg, tensor.NewRNG(seed))
	reg := obs.NewRegistry()
	plane, err := account.New(account.Config{Metrics: obs.NewAccountMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	sp := predictor.NewServingPlanner(base, nil, predictor.ServingConfig{})
	eng := New(base, Config{MaxBatch: 4, Planner: sp, Account: plane})
	return eng, plane, reg
}

// TestAccountConservationConcurrent drives mixed-tenant, mixed-sparsity
// traffic through one engine concurrently (run under -race by CI) and
// pins the conservation invariant the plane promises: the sum of the
// per-tenant /v1/usage rollups equals the global lexp_account_* counters
// equals the sum over the raw ring events — nothing double-counted,
// nothing dropped.
func TestAccountConservationConcurrent(t *testing.T) {
	eng, plane, reg := accountedEngine(t, testConfig(), 1400)

	tenants := []string{"acme", "globex", "initech"}
	const perTenant = 4
	var wg sync.WaitGroup
	errs := make([]error, len(tenants)*perTenant)
	for ti, tenant := range tenants {
		for j := 0; j < perTenant; j++ {
			wg.Add(1)
			go func(ti, j int, tenant string) {
				defer wg.Done()
				opts := nn.SparsityOptions{}
				if j%2 == 1 {
					opts = nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 0.5}
				}
				stream, err := eng.Generate(context.Background(), Request{
					Prompt:    []int{1 + ti, 2 + j, 3},
					MaxTokens: 6,
					Seed:      uint64(100*ti + j),
					Sparsity:  opts,
					Tenant:    tenant,
					Route:     "POST /v1/generate",
				})
				if err != nil {
					errs[ti*perTenant+j] = err
					return
				}
				if _, _, err := stream.Collect(); err != nil {
					errs[ti*perTenant+j] = err
				}
			}(ti, j, tenant)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Retirement emits on the scheduler goroutine after the terminal
	// stream event; Close joins it, so every event is in the plane now.
	eng.Close()

	want := len(tenants) * perTenant
	events := plane.Events(account.Filter{})
	if len(events) != want {
		t.Fatalf("ring holds %d events, want %d", len(events), want)
	}
	var evSum account.Usage
	for i := range events {
		e := &events[i]
		if e.Kind != account.KindGenerate || e.Outcome != "length" {
			t.Fatalf("event %d: kind=%q outcome=%q", i, e.Kind, e.Outcome)
		}
		if e.DenseFLOPs != e.ExecFLOPs+e.MLPSavedFLOPs+e.AttnSavedFLOPs {
			t.Fatalf("event %d: dense %d != exec %d + saved %d",
				i, e.DenseFLOPs, e.ExecFLOPs, e.SavedFLOPs())
		}
		evSum.PromptTokens += e.PromptTokens
		evSum.OutputTokens += e.OutputTokens
		evSum.DenseFLOPs += e.DenseFLOPs
		evSum.ExecFLOPs += e.ExecFLOPs
		evSum.SavedFLOPs += e.SavedFLOPs()
	}

	byTenant, total := plane.UsageByTenant()
	if len(byTenant) != len(tenants) {
		t.Fatalf("usage spans %d tenants, want %d: %v", len(byTenant), len(tenants), byTenant)
	}
	var tenantSum account.Usage
	for _, tenant := range tenants {
		u, ok := byTenant[tenant]
		if !ok || u.Requests != perTenant {
			t.Fatalf("tenant %s: usage %+v, want %d requests", tenant, u, perTenant)
		}
		tenantSum.Requests += u.Requests
		tenantSum.PromptTokens += u.PromptTokens
		tenantSum.OutputTokens += u.OutputTokens
		tenantSum.DenseFLOPs += u.DenseFLOPs
		tenantSum.ExecFLOPs += u.ExecFLOPs
		tenantSum.SavedFLOPs += u.SavedFLOPs
	}

	if total != tenantSum {
		t.Fatalf("global rollup %+v != tenant sum %+v", total, tenantSum)
	}
	checks := []struct {
		metric string
		labels []string
		want   int64
	}{
		{"lexp_account_events_total", []string{"generate"}, int64(want)},
		{"lexp_account_prompt_tokens_total", nil, evSum.PromptTokens},
		{"lexp_account_output_tokens_total", nil, evSum.OutputTokens},
		{"lexp_account_flops_dense_total", nil, evSum.DenseFLOPs},
		{"lexp_account_flops_executed_total", nil, evSum.ExecFLOPs},
	}
	for _, c := range checks {
		v, ok := reg.Value(c.metric, c.labels...)
		if !ok || int64(v) != c.want {
			t.Fatalf("%s{%v} = %v (ok=%v), want %d", c.metric, c.labels, v, ok, c.want)
		}
	}
	if saved, _, _ := reg.SumValues("lexp_flops_saved_total"); int64(saved) != evSum.SavedFLOPs {
		t.Fatalf("lexp_flops_saved_total sum %v != event-sum saving %d", saved, evSum.SavedFLOPs)
	}
	if tenantSum.PromptTokens != evSum.PromptTokens ||
		tenantSum.OutputTokens != evSum.OutputTokens ||
		tenantSum.DenseFLOPs != evSum.DenseFLOPs ||
		tenantSum.ExecFLOPs != evSum.ExecFLOPs ||
		tenantSum.SavedFLOPs != evSum.SavedFLOPs {
		t.Fatalf("tenant rollup sum %+v != event sum %+v", tenantSum, evSum)
	}
	// Half the requests ran at forced half density: the saving must be
	// real, and executed strictly below dense-equivalent.
	if evSum.SavedFLOPs <= 0 || evSum.ExecFLOPs >= evSum.DenseFLOPs {
		t.Fatalf("no saving attributed: %+v", evSum)
	}
}

// TestAccountForcedDensityOneExact pins the exactness identity the FLOP
// model promises: a forced density-1.0 plan executes full-coverage
// selections, so the event's executed FLOPs equal the dense-equivalent
// FLOPs exactly — integer equality, no float drift — and the attributed
// saving is zero across both layer kinds.
func TestAccountForcedDensityOneExact(t *testing.T) {
	eng, plane, reg := accountedEngine(t, testConfig(), 1410)
	defer eng.Close()

	stream, err := eng.Generate(context.Background(), Request{
		Prompt:    []int{1, 2, 3, 4},
		MaxTokens: 8,
		Sparsity:  nn.SparsityOptions{Mode: nn.SparsityForced, MLPDensity: 1, AttnDensity: 1},
		Tenant:    "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := stream.Collect(); err != nil {
		t.Fatal(err)
	}
	e := waitEvent(t, plane, "exact")
	// The prefill step decodes dense; every subsequent step is planned.
	if e.DecodeSteps == 0 || e.PlannedSteps != e.DecodeSteps-1 {
		t.Fatalf("steps=%d planned=%d, want every post-prefill step planned", e.DecodeSteps, e.PlannedSteps)
	}
	if e.DenseFLOPs != e.ExecFLOPs {
		t.Fatalf("forced 1.0: dense %d != exec %d (drift %d)", e.DenseFLOPs, e.ExecFLOPs, e.DenseFLOPs-e.ExecFLOPs)
	}
	if s := e.SavedFLOPs(); s != 0 {
		t.Fatalf("forced 1.0 attributed saving %d (mlp %d, attn %d)", s, e.MLPSavedFLOPs, e.AttnSavedFLOPs)
	}
	if saved, _, _ := reg.SumValues("lexp_flops_saved_total"); saved != 0 {
		t.Fatalf("lexp_flops_saved_total = %v under forced density 1.0", saved)
	}
	if e.PeakKVRows == 0 || e.PeakKVBytes != e.PeakKVRows*eng.base.KVRowBytes() {
		t.Fatalf("KV footprint: rows=%d bytes=%d", e.PeakKVRows, e.PeakKVBytes)
	}
}

// TestAccountAutoSparsitySaves runs auto-mode sparsity on a three-layer
// base — auto keeps the first and last layers dense, so a middle layer
// must exist for any gating to happen — and requires a positive
// attributed saving in both the event and the layer-kind metric.
func TestAccountAutoSparsitySaves(t *testing.T) {
	cfg := nn.Config{Name: "infer-test-3l", Vocab: 24, Dim: 16, Layers: 3, Heads: 2, Hidden: 32, MaxSeq: 48, Act: nn.ActReLU}
	eng, plane, reg := accountedEngine(t, cfg, 1420)
	defer eng.Close()

	stream, err := eng.Generate(context.Background(), Request{
		Prompt:    []int{1, 2, 3, 4, 5, 6},
		MaxTokens: 10,
		Sparsity:  nn.SparsityOptions{Mode: nn.SparsityAuto},
		Tenant:    "auto",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := stream.Collect(); err != nil {
		t.Fatal(err)
	}
	e := waitEvent(t, plane, "auto")
	if e.SavedFLOPs() <= 0 || e.ExecFLOPs >= e.DenseFLOPs {
		t.Fatalf("auto sparsity saved nothing: dense=%d exec=%d mlp=%d attn=%d",
			e.DenseFLOPs, e.ExecFLOPs, e.MLPSavedFLOPs, e.AttnSavedFLOPs)
	}
	if saved, _, _ := reg.SumValues("lexp_flops_saved_total"); int64(saved) != e.SavedFLOPs() {
		t.Fatalf("metric saving %v != event saving %d", saved, e.SavedFLOPs())
	}
}

// waitEvent blocks until the plane holds exactly one event for tenant,
// which retires asynchronously after the stream's terminal event.
func waitEvent(t *testing.T, plane *account.Plane, tenant string) account.Event {
	t.Helper()
	for i := 0; i < 500; i++ {
		if evs := plane.Events(account.Filter{Tenant: tenant}); len(evs) == 1 {
			return evs[0]
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("no event for tenant %q", tenant)
	return account.Event{}
}
