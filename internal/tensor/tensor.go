// Package tensor implements the dense numeric substrate: contiguous
// row-major float32 tensors and the parallel CPU kernels (blocked matrix
// multiplication, elementwise maps, reductions, softmax) that the training
// engine and the sparse operators are built on.
//
// Tensors are deliberately simple — shape plus flat storage, no strides or
// views with gaps — because every kernel in this repository works on
// contiguous row-major data, exactly like the GPU kernels in the paper.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a contiguous row-major float32 tensor.
type Tensor struct {
	shape []int
	Data  []float32
}

// New allocates a zero-filled tensor with the given shape.
// A zero-dimensional tensor (no shape arguments) holds a single scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape returns a tensor sharing t's storage with a new shape of the same
// total size. A single -1 dimension is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	infer := -1
	out := append([]int(nil), shape...)
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dimensions in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.Data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		out[infer] = len(t.Data) / n
		n *= out[infer]
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.shape, len(t.Data), shape))
	}
	return &Tensor{shape: out, Data: t.Data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal total size.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", src.shape, t.shape))
	}
	copy(t.Data, src.Data)
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Row returns the i-th row of a rank-2 tensor as a slice sharing storage.
func (t *Tensor) Row(i int) []float32 {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on rank-%d tensor", len(t.shape)))
	}
	n := t.shape[1]
	return t.Data[i*n : (i+1)*n]
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// tensors of equal size — the workhorse of numeric equivalence tests.
func MaxAbsDiff(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: MaxAbsDiff size mismatch")
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// HasNaN reports whether any element is NaN or infinite.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.Data[:n])
}
