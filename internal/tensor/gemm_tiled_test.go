package tensor

import (
	"fmt"
	"testing"
)

// The tiled cores promise bit-identical results to the naive seed cores —
// every float32 addition happens in the same order. These tests pin that
// promise across shapes that exercise full tiles, partial panels, and
// remainder columns, with exact (== on bits) comparison.

func gemmShapes() [][3]int {
	return [][3]int{
		{1, 8, 4}, {3, 8, 5}, {8, 8, 8}, {7, 9, 11},
		{16, 130, 67}, {33, 128, 64}, {40, 129, 65}, {64, 256, 256},
		{5, 300, 3}, {6, 4, 300}, // skinny: naive fallback paths
	}
}

func fillWithZeros(r *RNG, t *Tensor) {
	r.FillNormal(t, 1)
	for i := 0; i < len(t.Data); i += 7 {
		t.Data[i] = 0 // exercise the zero-skip branches
	}
}

func TestGemmTiledBitIdentical(t *testing.T) {
	r := NewRNG(11)
	for _, d := range gemmShapes() {
		m, k, n := d[0], d[1], d[2]
		a, b := New(m, k), New(k, n)
		fillWithZeros(r, a)
		fillWithZeros(r, b)
		got, want := New(m, n), New(m, n)
		r.FillNormal(got, 1)
		want.CopyFrom(got)
		GemmRange(got.Data, a.Data, b.Data, k, n, 0, m)
		GemmRangeNaive(want.Data, a.Data, b.Data, k, n, 0, m)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("GemmRange m,k,n=%v: bit mismatch at %d: %v vs %v", d, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmTBTiledBitIdentical(t *testing.T) {
	r := NewRNG(12)
	for _, d := range gemmShapes() {
		m, k, n := d[0], d[1], d[2]
		a, b := New(m, k), New(n, k)
		fillWithZeros(r, a)
		fillWithZeros(r, b)
		got, want := New(m, n), New(m, n)
		r.FillNormal(got, 1)
		want.CopyFrom(got)
		GemmTBRange(got.Data, a.Data, b.Data, k, n, 0, m)
		GemmTBRangeNaive(want.Data, a.Data, b.Data, k, n, 0, m)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("GemmTBRange m,k,n=%v: bit mismatch at %d: %v vs %v", d, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestGemmTATiledBitIdentical(t *testing.T) {
	r := NewRNG(13)
	for _, d := range gemmShapes() {
		m, k, n := d[0], d[1], d[2]
		a, b := New(k, m), New(k, n)
		fillWithZeros(r, a)
		fillWithZeros(r, b)
		got, want := New(m, n), New(m, n)
		r.FillNormal(got, 1)
		want.CopyFrom(got)
		GemmTARange(got.Data, a.Data, b.Data, k, m, n, 0, m)
		GemmTARangeNaive(want.Data, a.Data, b.Data, k, m, n, 0, m)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("GemmTARange m,k,n=%v: bit mismatch at %d: %v vs %v", d, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGemmTiledSubrange checks the cores honor [loM, hiM) exactly: rows
// outside the range are untouched.
func TestGemmTiledSubrange(t *testing.T) {
	r := NewRNG(14)
	m, k, n := 20, 64, 48
	a, b := New(m, k), New(k, n)
	r.FillNormal(a, 1)
	r.FillNormal(b, 1)
	c := New(m, n)
	r.FillNormal(c, 1)
	before := New(m, n)
	before.CopyFrom(c)
	lo, hi := 5, 13
	GemmRange(c.Data, a.Data, b.Data, k, n, lo, hi)
	for i := 0; i < m; i++ {
		changed := false
		for j := 0; j < n; j++ {
			if c.Data[i*n+j] != before.Data[i*n+j] {
				changed = true
				break
			}
		}
		if inRange := i >= lo && i < hi; changed != inRange {
			t.Fatalf("row %d: changed=%v, in range=%v", i, changed, inRange)
		}
	}
}

func benchGemmCore(b *testing.B, n int, core func(c, a, bb []float32, k, nn, lo, hi int)) {
	r := NewRNG(21)
	x, y, c := New(n, n), New(n, n), New(n, n)
	r.FillNormal(x, 1)
	r.FillNormal(y, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core(c.Data, x.Data, y.Data, n, n, 0, n)
	}
	flops := 2 * int64(n) * int64(n) * int64(n)
	b.ReportMetric(float64(flops*int64(b.N))/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkGemmCores(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("naive/%d", n), func(b *testing.B) { benchGemmCore(b, n, GemmRangeNaive) })
		b.Run(fmt.Sprintf("tiled/%d", n), func(b *testing.B) { benchGemmCore(b, n, GemmRange) })
		b.Run(fmt.Sprintf("tb-naive/%d", n), func(b *testing.B) { benchGemmCore(b, n, GemmTBRangeNaive) })
		b.Run(fmt.Sprintf("tb-tiled/%d", n), func(b *testing.B) { benchGemmCore(b, n, GemmTBRange) })
	}
}
