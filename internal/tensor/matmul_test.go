package tensor

import (
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation all kernels are checked
// against.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(a.At(i, kk)) * float64(b.At(kk, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func randTensor(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	r.FillNormal(t, 1)
	return t
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 17, 9}} {
		a := randTensor(r, dims[0], dims[1])
		b := randTensor(r, dims[1], dims[2])
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(got, want); d > 1e-4 {
			t.Fatalf("dims %v: MaxAbsDiff = %v", dims, d)
		}
	}
}

func TestMatMulTBEqualsMatMulWithTranspose(t *testing.T) {
	r := NewRNG(2)
	a := randTensor(r, 9, 13)
	b := randTensor(r, 11, 13) // b: [n,k]
	got := MatMulTB(a, b)
	want := MatMul(a, Transpose(b))
	if d := MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestMatMulTAEqualsMatMulWithTranspose(t *testing.T) {
	r := NewRNG(3)
	a := randTensor(r, 13, 9) // a: [k,m]
	b := randTensor(r, 13, 11)
	got := MatMulTA(a, b)
	want := MatMul(Transpose(a), b)
	if d := MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(4)
	a := randTensor(r, 8, 8)
	id := New(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(1, i, i)
	}
	if d := MaxAbsDiff(MatMul(a, id), a); d > 1e-6 {
		t.Fatalf("A·I != A, diff %v", d)
	}
	if d := MaxAbsDiff(MatMul(id, a), a); d > 1e-6 {
		t.Fatalf("I·A != A, diff %v", d)
	}
}

func TestMatMulIntoAccumulates(t *testing.T) {
	r := NewRNG(5)
	a := randTensor(r, 4, 6)
	b := randTensor(r, 6, 5)
	c := New(4, 5)
	c.Fill(1)
	MatMulInto(c, a, b)
	want := naiveMatMul(a, b)
	for i := range c.Data {
		want.Data[i]++
	}
	if d := MaxAbsDiff(c, want); d > 1e-4 {
		t.Fatalf("accumulation broken, diff %v", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := NewRNG(6)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed) + 1)
		m, n := 1+rr.Intn(20), 1+rr.Intn(20)
		a := randTensor(r, m, n)
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	r := NewRNG(7)
	f := func(seed uint16) bool {
		rr := NewRNG(uint64(seed)*2654435761 + 1)
		m, k, n := 1+rr.Intn(12), 1+rr.Intn(12), 1+rr.Intn(12)
		a := randTensor(r, m, k)
		b := randTensor(r, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}
