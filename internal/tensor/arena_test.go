package tensor

import (
	"testing"
)

func TestArenaGetZeroedAndShaped(t *testing.T) {
	ws := NewArena()
	a := ws.Get(3, 4)
	if a.Dim(0) != 3 || a.Dim(1) != 4 || a.Len() != 12 {
		t.Fatalf("shape %v len %d", a.Shape(), a.Len())
	}
	for i := range a.Data {
		a.Data[i] = float32(i + 1)
	}
	ws.Release()

	// Same size class must recycle the dirtied storage, zeroed again.
	b := ws.Get(4, 3)
	if b.Len() != 12 {
		t.Fatalf("len %d", b.Len())
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestArenaReusesAfterRelease(t *testing.T) {
	ws := NewArena()
	shapes := [][]int{{8, 8}, {16}, {4, 4, 4}, {100}}
	for step := 0; step < 5; step++ {
		for _, s := range shapes {
			_ = ws.Get(s...)
		}
		_ = ws.Floats(77)
		_ = ws.Ints(33)
		_ = ws.Float64s(9)
		ws.Release()
	}
	// After the first step every Get must be a hit: misses stop growing.
	warmMisses := ws.Misses()
	for step := 0; step < 3; step++ {
		for _, s := range shapes {
			_ = ws.Get(s...)
		}
		_ = ws.Floats(77)
		_ = ws.Ints(33)
		_ = ws.Float64s(9)
		ws.Release()
	}
	if ws.Misses() != warmMisses {
		t.Fatalf("warm arena still allocating: misses %d -> %d", warmMisses, ws.Misses())
	}
	if ws.Gets() <= warmMisses {
		t.Fatalf("gets %d misses %d", ws.Gets(), ws.Misses())
	}
}

func TestArenaSteadyStateAllocationFree(t *testing.T) {
	ws := NewArena()
	step := func() {
		a := ws.Get(32, 32)
		b := ws.GetDirty(32, 32)
		copy(b.Data, a.Data)
		_ = ws.Floats(1000)
		_ = ws.Ints(64)
		ws.Release()
	}
	step() // warmup
	if n := testing.AllocsPerRun(20, step); n > 0 {
		t.Fatalf("warm arena step allocates %v times", n)
	}
}

func TestArenaNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dimension")
		}
	}()
	NewArena().Get(2, -1)
}

func TestArenaStateSurvivesRelease(t *testing.T) {
	ws := NewArena()
	key := new(int)
	made := 0
	mk := func() any { made++; return &made }
	s1 := ws.StateFor(key, mk)
	ws.Release()
	s2 := ws.StateFor(key, mk)
	if s1 != s2 || made != 1 {
		t.Fatalf("state not stable across Release (made %d)", made)
	}
}

func TestNilArenaHelpersAllocate(t *testing.T) {
	a := NewIn(nil, 2, 3)
	if a.Len() != 6 {
		t.Fatalf("NewIn(nil) len %d", a.Len())
	}
	if len(FloatsIn(nil, 5)) != 5 || len(IntsIn(nil, 5)) != 5 || len(Float64sIn(nil, 5)) != 5 {
		t.Fatal("nil helpers wrong length")
	}
	src := New(2, 2)
	src.Data[3] = 7
	c := CloneIn(nil, src)
	if c == src || c.Data[3] != 7 {
		t.Fatal("CloneIn(nil) not a copy")
	}
	var ws *Arena
	ws.Release() // must not panic
}

func TestMatMulInMatchesMatMul(t *testing.T) {
	r := NewRNG(11)
	a, b := New(5, 7), New(7, 3)
	r.FillNormal(a, 1)
	r.FillNormal(b, 1)
	ws := NewArena()
	for step := 0; step < 2; step++ { // second step exercises recycled buffers
		if d := MaxAbsDiff(MatMul(a, b), MatMulIn(ws, a, b)); d != 0 {
			t.Fatalf("MatMulIn differs by %v", d)
		}
		bt := Transpose(b)
		if d := MaxAbsDiff(MatMulTB(a, bt), MatMulTBIn(ws, a, bt)); d != 0 {
			t.Fatalf("MatMulTBIn differs by %v", d)
		}
		at := Transpose(a)
		if d := MaxAbsDiff(MatMulTA(at, at), MatMulTAIn(ws, at, at)); d != 0 {
			t.Fatalf("MatMulTAIn differs by %v", d)
		}
		ws.Release()
	}
}

func TestSizeClass(t *testing.T) {
	f32 := map[int]int{0: 64, 1: 64, 64: 64, 65: 128, 1000: 1024, 4096: 4096}
	for n, want := range f32 {
		if got := sizeClass(n, 4); got != want {
			t.Fatalf("sizeClass(%d, 4) = %d, want %d", n, got, want)
		}
	}
	// The floor is 256 bytes, not 64 elements: wider elements get a lower
	// element floor, narrower ones a higher one.
	for _, c := range []struct{ n, elem, want int }{
		{1, 8, 32}, {32, 8, 32}, {33, 8, 64}, // float64, int
		{1, 2, 128}, {129, 2, 256}, // fp16
		{1, 1, 256}, {257, 1, 512}, // int8
		{1, 1024, 1}, {3, 1024, 4}, // wider than the floor: per-element classes
	} {
		if got := sizeClass(c.n, c.elem); got != c.want {
			t.Fatalf("sizeClass(%d, %d) = %d, want %d", c.n, c.elem, got, c.want)
		}
	}
}

// TestArenaBucketWidths pins the byte-based floor end to end: the capacity a
// pool hands out reflects its element width, and recycled buffers come back
// from the matching class (a float64 buffer must never be sized as if its
// elements were 4 bytes wide).
func TestArenaBucketWidths(t *testing.T) {
	ws := NewArena()
	f := ws.Floats(9)
	d := ws.Float64s(9)
	if cap(f) != 64 {
		t.Fatalf("float32 floor bucket cap = %d, want 64 (256 bytes)", cap(f))
	}
	if cap(d) != 32 {
		t.Fatalf("float64 floor bucket cap = %d, want 32 (256 bytes)", cap(d))
	}
	ws.Release()
	// Same class on reuse: a request within the floor gets the recycled
	// backing array, one beyond it allocates the next class up.
	d2 := ws.Float64s(32)
	if &d2[0] != &d[0] {
		t.Fatal("float64 floor bucket was not recycled within its class")
	}
	d3 := ws.Float64s(33)
	if cap(d3) != 64 {
		t.Fatalf("float64 second class cap = %d, want 64", cap(d3))
	}
	ws.Release()
}
