package tensor

import (
	"fmt"
	"math"

	"longexposure/internal/half"
	"longexposure/internal/parallel"
)

// Reduced-precision weight storage for the frozen base. The paper stores
// parameters in fp16 and computes in fp32 (§VII-A); on CPU the win is not
// arithmetic but bytes: a packed matrix streams half (fp16) or a quarter
// (int8) of the weight bytes of the f32 path through the same register-
// blocked micro-kernels. The conversion to f32 happens once per L1 panel at
// pack time — amortized over every output row of the range — so the inner
// loops are byte-for-byte the dense micro-kernels from gemm_tiled.go and the
// packed product is bit-identical to the f32 product over the dequantized
// matrix (TestGemmPackedBitIdentical pins this). Packed weights are
// read-only by construction: there is no gradient path, which is exactly the
// frozen-base contract PEFT serving relies on.

// WeightFormat selects the storage element of a PackedWeights.
type WeightFormat uint8

const (
	// WeightF16 stores IEEE-754 binary16 bit patterns: 2 bytes/element,
	// exact for every weight already representable in fp16.
	WeightF16 WeightFormat = iota + 1
	// WeightI8 stores symmetric per-channel int8: 1 byte/element plus one
	// f32 scale per output channel (the bitsandbytes LLM.int8 scheme
	// without the outlier path — frozen bases are published post-training,
	// so outliers are a publish-time decision, not a runtime one).
	WeightI8
)

func (f WeightFormat) String() string {
	switch f {
	case WeightF16:
		return "f16"
	case WeightI8:
		return "int8"
	}
	return fmt.Sprintf("WeightFormat(%d)", uint8(f))
}

// Scale axes for WeightI8: per-channel means per output neuron, and which
// storage axis that is depends on the orientation the kernel consumes.
const (
	// ScalePerRow: Scale[r] dequantizes row r — the layout GemmTBRangePacked
	// needs (rows are output channels in c += a·bᵀ).
	ScalePerRow = 0
	// ScalePerCol: Scale[c] dequantizes column c — the layout
	// GemmRangePacked needs (columns are output channels in c += a·b).
	ScalePerCol = 1
)

// PackedWeights is a read-only weight matrix in reduced-precision storage,
// logically row-major [Rows][Cols]. Exactly one of F16/I8 is populated.
type PackedWeights struct {
	Rows, Cols int
	Format     WeightFormat

	F16 []half.Float16 // WeightF16: Rows*Cols fp16 bit patterns

	I8        []int8    // WeightI8: Rows*Cols quantized values
	Scale     []float32 // WeightI8: per-channel dequant scales
	ScaleAxis int       // WeightI8: ScalePerRow or ScalePerCol
}

// Bytes reports the resident storage footprint of the packed matrix.
func (p *PackedWeights) Bytes() int64 {
	switch p.Format {
	case WeightF16:
		return half.Bytes(len(p.F16))
	case WeightI8:
		return int64(len(p.I8)) + 4*int64(len(p.Scale))
	}
	return 0
}

// PackF16 quantizes a rank-2 f32 matrix to fp16 storage (round to nearest
// even). Weights already representable in fp16 survive exactly.
func PackF16(w *Tensor) *PackedWeights {
	rows, cols := check2D(w, "w")
	return &PackedWeights{
		Rows:   rows,
		Cols:   cols,
		Format: WeightF16,
		F16:    half.EncodeSlice(nil, w.Data),
	}
}

// PackInt8 quantizes a rank-2 f32 matrix to symmetric per-channel int8:
// scale = absmax/127 along the given axis (ScalePerRow or ScalePerCol),
// values rounded to nearest even and clamped to [-127, 127]. An all-zero
// channel gets scale 0 and dequantizes to exact zeros.
func PackInt8(w *Tensor, axis int) *PackedWeights {
	rows, cols := check2D(w, "w")
	if axis != ScalePerRow && axis != ScalePerCol {
		panic(fmt.Sprintf("tensor: PackInt8 axis %d, want ScalePerRow or ScalePerCol", axis))
	}
	channels := rows
	if axis == ScalePerCol {
		channels = cols
	}
	scale := make([]float32, channels)
	for r := 0; r < rows; r++ {
		for c, v := range w.Data[r*cols : (r+1)*cols] {
			ch := r
			if axis == ScalePerCol {
				ch = c
			}
			if av := float32(math.Abs(float64(v))); av > scale[ch] {
				scale[ch] = av
			}
		}
	}
	for ch := range scale {
		scale[ch] /= 127
	}
	q := make([]int8, rows*cols)
	for r := 0; r < rows; r++ {
		for c, v := range w.Data[r*cols : (r+1)*cols] {
			ch := r
			if axis == ScalePerCol {
				ch = c
			}
			if scale[ch] == 0 {
				continue
			}
			t := math.RoundToEven(float64(v / scale[ch]))
			if t > 127 {
				t = 127
			} else if t < -127 {
				t = -127
			}
			q[r*cols+c] = int8(t)
		}
	}
	return &PackedWeights{Rows: rows, Cols: cols, Format: WeightI8, I8: q, Scale: scale, ScaleAxis: axis}
}

// Dequant widens the packed matrix back to a fresh f32 tensor — the exact
// values every packed kernel computes with. Tests and estimators use it; the
// serving path never does.
func (p *PackedWeights) Dequant() *Tensor {
	t := New(p.Rows, p.Cols)
	switch p.Format {
	case WeightF16:
		half.DecodeSlice(t.Data, p.F16)
	case WeightI8:
		for r := 0; r < p.Rows; r++ {
			for c := 0; c < p.Cols; c++ {
				var s float32
				if p.ScaleAxis == ScalePerCol {
					s = p.Scale[c]
				} else {
					s = p.Scale[r]
				}
				t.Data[r*p.Cols+c] = float32(p.I8[r*p.Cols+c]) * s
			}
		}
	default:
		panic(fmt.Sprintf("tensor: Dequant of unpopulated PackedWeights (format %v)", p.Format))
	}
	return t
}

// The widening pack routines below are the packPanelT counterparts for
// reduced-precision storage: same transposed column-stream layout, same
// 32 KiB L1 write region, with the element conversion folded into the copy.
// After packing, the panel is plain f32 and the dense micro-kernels run
// unchanged — the conversion cost is O(k·n) per sweep regardless of how many
// output rows amortize it, which is why m=1 decode steps see bandwidth
// savings rather than flops savings.

// packPanelTF16 packs b[k0:k0+kc, j0:j0+nc] of an fp16 [k,n] matrix,
// transposed and widened.
func packPanelTF16(packed []float32, b []half.Float16, n, k0, j0, kc, nc int) {
	for kk := 0; kk < kc; kk++ {
		src := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nc]
		for j, v := range src {
			packed[j*kc+kk] = v.ToFloat32()
		}
	}
}

// packPanelTI8 packs the same region of an int8 [k,n] matrix with
// per-column scales (ScalePerCol layout).
func packPanelTI8(packed []float32, b []int8, scale []float32, n, k0, j0, kc, nc int) {
	for kk := 0; kk < kc; kk++ {
		src := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+nc]
		for j, v := range src {
			packed[j*kc+kk] = float32(v) * scale[j0+j]
		}
	}
}

// packRowsF16 packs rows j0..j0+nc of an fp16 [n,k] matrix, slice
// [k0:k0+kc], widened — rows are already the dot streams of the TB kernel,
// so the copy is stride-1 on both sides.
func packRowsF16(packed []float32, b []half.Float16, k, k0, j0, kc, nc int) {
	for r := 0; r < nc; r++ {
		src := b[(j0+r)*k+k0 : (j0+r)*k+k0+kc]
		dst := packed[r*kc : (r+1)*kc]
		for t, v := range src {
			dst[t] = v.ToFloat32()
		}
	}
}

// packRowsI8 packs the same region of an int8 [n,k] matrix with per-row
// scales (ScalePerRow layout) — the scale is loop-invariant per stream.
func packRowsI8(packed []float32, b []int8, scale []float32, k, k0, j0, kc, nc int) {
	for r := 0; r < nc; r++ {
		src := b[(j0+r)*k+k0 : (j0+r)*k+k0+kc]
		dst := packed[r*kc : (r+1)*kc]
		s := scale[j0+r]
		for t, v := range src {
			dst[t] = float32(v) * s
		}
	}
}

// GemmRangePacked computes c[i,:] += a[i,:]·B for rows i in [loM, hiM),
// where B is the packed matrix p viewed as [k,n] (p.Rows == k, p.Cols == n).
// Bit-identical to GemmRange over p.Dequant(). WeightI8 requires
// ScalePerCol.
func GemmRangePacked(c, a []float32, p *PackedWeights, k, n, loM, hiM int) {
	var packed [gemmKC * gemmNC]float32
	for k0 := 0; k0 < k; k0 += gemmKC {
		kc := min(gemmKC, k-k0)
		for j0 := 0; j0 < n; j0 += gemmNC {
			nc := min(gemmNC, n-j0)
			if p.Format == WeightF16 {
				packPanelTF16(packed[:], p.F16, n, k0, j0, kc, nc)
			} else {
				packPanelTI8(packed[:], p.I8, p.Scale, n, k0, j0, kc, nc)
			}
			for i := loM; i < hiM; i++ {
				gemmMicroRowDispatch(c[i*n+j0:i*n+j0+nc], a[i*k+k0:i*k+k0+kc], packed[:nc*kc])
			}
		}
	}
}

// GemmTBRangePacked computes c[i,j] += dot(a[i,:], B[j,:]) (c += a·Bᵀ) for
// rows i in [loM, hiM), where B is p viewed as [n,k] (p.Rows == n, p.Cols ==
// k). B's rows are already the TB dot streams, so four rows at a time are
// widened into an L1-resident buffer over the full contraction (chunked at
// 2048 when k exceeds the buffer) and swept by every output row before the
// next quad — c is touched once per chunk and the per-element widening cost
// amortizes over hiM-loM output rows, which is what pulls the packed TB
// path toward f32 parity as the batch grows. Bit-identical to GemmTBRange
// over p.Dequant() for k ≤ 2048 (same 4-wide stripe, one accumulator per
// output element, k ascending); past that the per-chunk partial sums are
// added to c in chunk order. TestGemmTBPacked pins the contract. WeightI8
// requires ScalePerRow.
func GemmTBRangePacked(c, a []float32, p *PackedWeights, k, n, loM, hiM int) {
	const kChunk = 2048
	var wbuf [gemmNR * kChunk]float32
	for k0 := 0; k0 < k; k0 += kChunk {
		kc := min(kChunk, k-k0)
		jFull := n - n%gemmNR
		for j := 0; j < jFull; j += gemmNR {
			if p.Format == WeightF16 {
				packRowsF16(wbuf[:], p.F16, k, k0, j, kc, gemmNR)
			} else {
				packRowsI8(wbuf[:], p.I8, p.Scale, k, k0, j, kc, gemmNR)
			}
			w0 := wbuf[0*kc:][:kc]
			w1 := wbuf[1*kc:][:kc]
			w2 := wbuf[2*kc:][:kc]
			w3 := wbuf[3*kc:][:kc]
			for i := loM; i < hiM; i++ {
				ai := a[i*k+k0:][:kc]
				var s0, s1, s2, s3 float32
				for kk, av := range ai {
					s0 += av * w0[kk]
					s1 += av * w1[kk]
					s2 += av * w2[kk]
					s3 += av * w3[kk]
				}
				ci := c[i*n+j : i*n+j+4]
				ci[0] += s0
				ci[1] += s1
				ci[2] += s2
				ci[3] += s3
			}
		}
		for j := jFull; j < n; j++ {
			if p.Format == WeightF16 {
				packRowsF16(wbuf[:], p.F16, k, k0, j, kc, 1)
			} else {
				packRowsI8(wbuf[:], p.I8, p.Scale, k, k0, j, kc, 1)
			}
			wj := wbuf[:kc]
			for i := loM; i < hiM; i++ {
				ai := a[i*k+k0:][:kc]
				var s float32
				for kk, av := range ai {
					s += av * wj[kk]
				}
				c[i*n+j] += s
			}
		}
	}
}

// gemmPackedCall mirrors gemmCall for the packed drivers: static chunk
// functions, no closures on the single-worker fast path.
type gemmPackedCall struct {
	c, a []float32
	p    *PackedWeights
	k, n int
}

func gemmRangePackedChunk(g gemmPackedCall, lo, hi int) {
	GemmRangePacked(g.c, g.a, g.p, g.k, g.n, lo, hi)
}

func gemmTBRangePackedChunk(g gemmPackedCall, lo, hi int) {
	GemmTBRangePacked(g.c, g.a, g.p, g.k, g.n, lo, hi)
}

func checkPacked(p *PackedWeights, wantAxis int, op string) {
	switch p.Format {
	case WeightF16:
	case WeightI8:
		if p.ScaleAxis != wantAxis {
			panic(fmt.Sprintf("tensor: %s needs int8 scale axis %d, packed with %d", op, wantAxis, p.ScaleAxis))
		}
	default:
		panic(fmt.Sprintf("tensor: %s on unpopulated PackedWeights (format %v)", op, p.Format))
	}
}

// MatMulPackedInto accumulates a·P into c (c += a·P) for a: [m,k] and P
// packed [k,n], in parallel — the packed counterpart of MatMulInto.
func MatMulPackedInto(c, a *Tensor, p *PackedWeights) {
	m, k := check2D(a, "a")
	cm, cn := check2D(c, "c")
	if k != p.Rows || cm != m || cn != p.Cols {
		panic(fmt.Sprintf("tensor: MatMulPackedInto shapes a%v P[%d %d] c%v", a.Shape(), p.Rows, p.Cols, c.Shape()))
	}
	checkPacked(p, ScalePerCol, "MatMulPackedInto")
	parallel.ForBlockedArg(m, matmulRowTile, gemmPackedCall{c.Data, a.Data, p, k, p.Cols}, gemmRangePackedChunk)
}

// MatMulPackedIn returns a·P with the result taken from ws (allocating when
// ws is nil) — the packed counterpart of MatMulIn.
func MatMulPackedIn(ws *Arena, a *Tensor, p *PackedWeights) *Tensor {
	c := NewIn(ws, a.Dim(0), p.Cols)
	MatMulPackedInto(c, a, p)
	return c
}

// MatMulTBPackedInto accumulates a·Pᵀ into c for a: [m,k] and P packed
// [n,k], in parallel — the packed counterpart of MatMulTBInto.
func MatMulTBPackedInto(c, a *Tensor, p *PackedWeights) {
	m, k := check2D(a, "a")
	cm, cn := check2D(c, "c")
	if k != p.Cols || cm != m || cn != p.Rows {
		panic(fmt.Sprintf("tensor: MatMulTBPackedInto shapes a%v P[%d %d] c%v", a.Shape(), p.Rows, p.Cols, c.Shape()))
	}
	checkPacked(p, ScalePerRow, "MatMulTBPackedInto")
	parallel.ForBlockedArg(m, matmulRowTile, gemmPackedCall{c.Data, a.Data, p, k, p.Rows}, gemmTBRangePackedChunk)
}

// MatMulTBPackedIn returns a·Pᵀ with the result taken from ws.
func MatMulTBPackedIn(ws *Arena, a *Tensor, p *PackedWeights) *Tensor {
	c := NewIn(ws, a.Dim(0), p.Rows)
	MatMulTBPackedInto(c, a, p)
	return c
}
