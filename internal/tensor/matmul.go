package tensor

import (
	"fmt"

	"longexposure/internal/parallel"
)

// The slice-level GEMM cores below are the single source of truth for dense
// matrix multiplication. They *accumulate* into the destination (c += a·b),
// which is what gradient accumulation wants; callers needing overwrite
// semantics zero the destination first. All higher-level and sparse kernels
// reuse these cores on sub-ranges, so the dense and sparse paths share
// per-element arithmetic exactly.

// GemmRange computes c[i,:] += a[i,:]·b for rows i in [loM, hiM), with
// a: [m,k], b: [k,n], c: [m,n], all row-major. Large shapes run the
// register-blocked, panel-tiled core (gemm_tiled.go); skinny ones fall back
// to the naive core. Both produce bit-identical results.
func GemmRange(c, a, b []float32, k, n, loM, hiM int) {
	if gemmTiledWorthIt(k, n) {
		gemmRangeTiled(c, a, b, k, n, loM, hiM)
		return
	}
	GemmRangeNaive(c, a, b, k, n, loM, hiM)
}

// GemmRangeNaive is the seed i-k-j core, retained as the correctness
// reference, the fallback for skinny shapes, and the baseline that
// cmd/lebench measures the tiled core against. The i-k-j loop order streams
// rows of b, the cache-friendly order for row-major data.
func GemmRangeNaive(c, a, b []float32, k, n, loM, hiM int) {
	for i := loM; i < hiM; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			aik := ai[kk]
			if aik == 0 {
				continue
			}
			bk := b[kk*n : (kk+1)*n]
			for j, bv := range bk {
				ci[j] += aik * bv
			}
		}
	}
}

// GemmTBRange computes c[i,j] += dot(a[i,:], b[j,:]) for rows i in [loM,
// hiM), with a: [m,k], b: [n,k] (i.e. c += a·bᵀ). Row-row dot products make
// this the fastest core on CPU; attention scores use it. Large shapes run
// the cache-blocked 4-wide core; results are bit-identical either way.
func GemmTBRange(c, a, b []float32, k, n, loM, hiM int) {
	if gemmTiledWorthIt(k, n) {
		gemmTBRangeTiled(c, a, b, k, n, loM, hiM)
		return
	}
	GemmTBRangeNaive(c, a, b, k, n, loM, hiM)
}

// GemmTBRangeNaive is the seed dot-product core, retained as the
// correctness reference and lebench baseline.
func GemmTBRangeNaive(c, a, b []float32, k, n, loM, hiM int) {
	for i := loM; i < hiM; i++ {
		ai := a[i*k : (i+1)*k]
		ci := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s float32
			for kk, av := range ai {
				s += av * bj[kk]
			}
			ci[j] += s
		}
	}
}

// GemmTARange computes c[i,:] += Σ_k a[k,i]·b[k,:] for rows i in [loM, hiM),
// with a: [kDim,m], b: [kDim,n] (i.e. c += aᵀ·b). Weight gradients
// (xᵀ·dy) use it. Large shapes run the panel-tiled core; results are
// bit-identical either way.
func GemmTARange(c, a, b []float32, kDim, m, n, loM, hiM int) {
	if gemmTiledWorthIt(kDim, n) {
		gemmTARangeTiled(c, a, b, kDim, m, n, loM, hiM)
		return
	}
	GemmTARangeNaive(c, a, b, kDim, m, n, loM, hiM)
}

// GemmTARangeNaive is the seed aᵀ·b core, retained as the correctness
// reference and lebench baseline.
func GemmTARangeNaive(c, a, b []float32, kDim, m, n, loM, hiM int) {
	for i := loM; i < hiM; i++ {
		ci := c[i*n : (i+1)*n]
		for kk := 0; kk < kDim; kk++ {
			aki := a[kk*m+i]
			if aki == 0 {
				continue
			}
			bk := b[kk*n : (kk+1)*n]
			for j, bv := range bk {
				ci[j] += aki * bv
			}
		}
	}
}

// matmulRowTile is the row granularity handed to parallel.ForBlocked by the
// MatMul drivers: no worker receives fewer rows than this (except the tail),
// so the per-call panel packing of the tiled cores stays amortized.
const matmulRowTile = 8

// gemmCall carries one driver invocation's operands so the parallel fan-out
// uses static chunk functions — no closure, no per-call heap allocation on
// the single-worker fast path (see parallel.ForChunkedArg).
type gemmCall struct {
	c, a, b []float32
	k, n, m int
}

func gemmRangeChunk(g gemmCall, lo, hi int)   { GemmRange(g.c, g.a, g.b, g.k, g.n, lo, hi) }
func gemmTBRangeChunk(g gemmCall, lo, hi int) { GemmTBRange(g.c, g.a, g.b, g.k, g.n, lo, hi) }
func gemmTARangeChunk(g gemmCall, lo, hi int) { GemmTARange(g.c, g.a, g.b, g.k, g.m, g.n, lo, hi) }

func check2D(t *Tensor, name string) (rows, cols int) {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: %s must be rank 2, got shape %v", name, t.Shape()))
	}
	return t.Dim(0), t.Dim(1)
}

// MatMul returns a·b for a: [m,k], b: [k,n], computed in parallel over row
// chunks.
func MatMul(a, b *Tensor) *Tensor {
	m, k := check2D(a, "a")
	k2, n := check2D(b, "b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(m, n)
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, k, n, m}, gemmRangeChunk)
	return c
}

// MatMulInto accumulates a·b into c (c += a·b), in parallel.
func MatMulInto(c, a, b *Tensor) {
	m, k := check2D(a, "a")
	k2, n := check2D(b, "b")
	cm, cn := check2D(c, "c")
	if k != k2 || cm != m || cn != n {
		panic(fmt.Sprintf("tensor: MatMulInto shapes a%v b%v c%v", a.Shape(), b.Shape(), c.Shape()))
	}
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, k, n, m}, gemmRangeChunk)
}

// MatMulTB returns a·bᵀ for a: [m,k], b: [n,k], in parallel.
func MatMulTB(a, b *Tensor) *Tensor {
	m, k := check2D(a, "a")
	n, k2 := check2D(b, "b")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTB inner dims %d vs %d", k, k2))
	}
	c := New(m, n)
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, k, n, m}, gemmTBRangeChunk)
	return c
}

// MatMulTBInto accumulates a·bᵀ into c, in parallel.
func MatMulTBInto(c, a, b *Tensor) {
	m, k := check2D(a, "a")
	n, k2 := check2D(b, "b")
	cm, cn := check2D(c, "c")
	if k != k2 || cm != m || cn != n {
		panic(fmt.Sprintf("tensor: MatMulTBInto shapes a%v b%v c%v", a.Shape(), b.Shape(), c.Shape()))
	}
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, k, n, m}, gemmTBRangeChunk)
}

// MatMulTA returns aᵀ·b for a: [kDim,m], b: [kDim,n], in parallel.
func MatMulTA(a, b *Tensor) *Tensor {
	kDim, m := check2D(a, "a")
	kDim2, n := check2D(b, "b")
	if kDim != kDim2 {
		panic(fmt.Sprintf("tensor: MatMulTA leading dims %d vs %d", kDim, kDim2))
	}
	c := New(m, n)
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, kDim, n, m}, gemmTARangeChunk)
	return c
}

// MatMulTAInto accumulates aᵀ·b into c, in parallel.
func MatMulTAInto(c, a, b *Tensor) {
	kDim, m := check2D(a, "a")
	kDim2, n := check2D(b, "b")
	cm, cn := check2D(c, "c")
	if kDim != kDim2 || cm != m || cn != n {
		panic(fmt.Sprintf("tensor: MatMulTAInto shapes a%v b%v c%v", a.Shape(), b.Shape(), c.Shape()))
	}
	parallel.ForBlockedArg(m, matmulRowTile, gemmCall{c.Data, a.Data, b.Data, kDim, n, m}, gemmTARangeChunk)
}

// MatMulIn returns a·b with the result taken from ws (plain MatMul when ws
// is nil) — the workspace entry point of the forward/backward drivers.
func MatMulIn(ws *Arena, a, b *Tensor) *Tensor {
	if ws == nil {
		return MatMul(a, b)
	}
	c := ws.Get(a.Dim(0), b.Dim(1))
	MatMulInto(c, a, b)
	return c
}

// MatMulTBIn returns a·bᵀ with the result taken from ws.
func MatMulTBIn(ws *Arena, a, b *Tensor) *Tensor {
	if ws == nil {
		return MatMulTB(a, b)
	}
	c := ws.Get(a.Dim(0), b.Dim(0))
	MatMulTBInto(c, a, b)
	return c
}

// MatMulTAIn returns aᵀ·b with the result taken from ws.
func MatMulTAIn(ws *Arena, a, b *Tensor) *Tensor {
	if ws == nil {
		return MatMulTA(a, b)
	}
	c := ws.Get(a.Dim(1), b.Dim(1))
	MatMulTAInto(c, a, b)
	return c
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	m, n := check2D(a, "a")
	t := New(n, m)
	parallel.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*n : (i+1)*n]
			for j, v := range ai {
				t.Data[j*m+i] = v
			}
		}
	})
	return t
}
