package tensor

import (
	"fmt"
	"math"

	"longexposure/internal/parallel"
)

// AddInto computes dst[i] += src[i].
func AddInto(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: AddInto size mismatch %v vs %v", dst.Shape(), src.Shape()))
	}
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] += s[i]
	}
}

// AddScaledInto computes dst[i] += alpha*src[i] (axpy).
func AddScaledInto(dst, src *Tensor, alpha float32) {
	if len(dst.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: AddScaledInto size mismatch %v vs %v", dst.Shape(), src.Shape()))
	}
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] += alpha * s[i]
	}
}

// Scale multiplies every element by alpha in place.
func Scale(t *Tensor, alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MulInto computes dst[i] *= src[i] (Hadamard product).
func MulInto(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: MulInto size mismatch %v vs %v", dst.Shape(), src.Shape()))
	}
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] *= s[i]
	}
}

// rowVecArgs / addRowVectorChunk: static kernel body for AddRowVector so
// the hot bias-add never allocates a closure (parallel.ForChunkedArg).
type rowVecArgs struct {
	data, v []float32
	n       int
}

func addRowVectorChunk(a rowVecArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a.data[i*a.n : (i+1)*a.n]
		for j := range row {
			row[j] += a.v[j]
		}
	}
}

// AddRowVector adds vector v (length n) to every row of a [m,n] tensor —
// the bias-add kernel.
func AddRowVector(t *Tensor, v []float32) {
	m, n := check2D(t, "t")
	if len(v) != n {
		panic(fmt.Sprintf("tensor: AddRowVector length %d vs cols %d", len(v), n))
	}
	parallel.ForChunkedArg(m, rowVecArgs{t.Data, v, n}, addRowVectorChunk)
}

// Sum returns the sum of all elements (deterministic parallel reduction).
func Sum(t *Tensor) float64 {
	d := t.Data
	return parallel.ReduceFloat64Arg(len(d), d, func(d []float32, i int) float64 { return float64(d[i]) })
}

// Mean returns the arithmetic mean of all elements.
func Mean(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return Sum(t) / float64(len(t.Data))
}

// Max returns the maximum element. It panics on an empty tensor.
func Max(t *Tensor) float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgmaxRow returns the index of the maximum value in row i of a rank-2
// tensor — the greedy-decoding / classification kernel.
func ArgmaxRow(t *Tensor, i int) int {
	row := t.Row(i)
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}

// ReLURange applies max(0, x) to dst[lo:hi] and records the activation mask
// (1 where active) into mask if non-nil. The mask is what the backward pass
// and the shadowy-sparsity measurements consume.
func ReLURange(dst, mask []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		if dst[i] > 0 {
			if mask != nil {
				mask[i] = 1
			}
		} else {
			dst[i] = 0
			if mask != nil {
				mask[i] = 0
			}
		}
	}
}

// ReLU applies the rectifier in place, in parallel, returning the 0/1
// activation mask when wantMask is set.
func ReLU(t *Tensor, wantMask bool) *Tensor {
	return ReLUIn(nil, t, wantMask)
}

// ReLUIn is ReLU with the mask taken from ws (allocated when ws is nil).
func ReLUIn(ws *Arena, t *Tensor, wantMask bool) *Tensor {
	var mask *Tensor
	var md []float32
	if wantMask {
		mask = NewIn(ws, t.Shape()...)
		md = mask.Data
	}
	d := t.Data
	parallel.ForChunkedArg(len(d), reluArgs{d, md}, reluChunk)
	return mask
}

type reluArgs struct{ d, mask []float32 }

func reluChunk(a reluArgs, lo, hi int) { ReLURange(a.d, a.mask, lo, hi) }

// GeLU applies the Gaussian error linear unit (tanh approximation) in place
// and returns the pre-activation copy needed for backward.
func GeLU(t *Tensor) *Tensor {
	return GeLUIn(nil, t)
}

// GeLUIn is GeLU with the pre-activation copy taken from ws.
func GeLUIn(ws *Arena, t *Tensor) *Tensor {
	pre := CloneIn(ws, t)
	parallel.ForChunkedArg(len(t.Data), t.Data, geluChunk)
	return pre
}

func geluChunk(d []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		x := float64(d[i])
		d[i] = float32(0.5 * x * (1 + math.Tanh(0.7978845608028654*(x+0.044715*x*x*x))))
	}
}

// GeLUGradRange computes dx[i] += dy[i] * gelu'(pre[i]) over [lo, hi).
func GeLUGradRange(dx, dy, pre []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		x := float64(pre[i])
		t := math.Tanh(0.7978845608028654 * (x + 0.044715*x*x*x))
		dt := (1 - t*t) * 0.7978845608028654 * (1 + 3*0.044715*x*x)
		dx[i] += dy[i] * float32(0.5*(1+t)+0.5*x*dt)
	}
}

// SoftmaxRows applies a numerically-stable softmax independently to each row
// of a [rows, cols] tensor, in place. Entries equal to NegInf are treated as
// masked: they receive probability zero and a fully-masked row becomes all
// zeros rather than NaN.
func SoftmaxRows(t *Tensor) {
	rows, cols := check2D(t, "t")
	parallel.ForChunked(rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			SoftmaxRow(t.Data[i*cols : (i+1)*cols])
		}
	})
}

// NegInf is the mask value for softmax: scores set to NegInf are excluded.
var NegInf = float32(math.Inf(-1))

// SoftmaxRow applies the stable softmax to a single row in place, honouring
// NegInf masking.
func SoftmaxRow(row []float32) {
	maxV := NegInf
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == NegInf { // fully masked row
		clear(row)
		return
	}
	var sum float64
	for i, v := range row {
		if v == NegInf {
			row[i] = 0
			continue
		}
		e := math.Exp(float64(v - maxV))
		row[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range row {
		row[i] *= inv
	}
}

// SoftmaxBackwardRow computes dscore from dprob for one softmax row:
// dscore_j = p_j * (dprob_j - Σ_k p_k dprob_k), written into dst (+=).
func SoftmaxBackwardRow(dst, p, dprob []float32) {
	var dot float64
	for k := range p {
		dot += float64(p[k]) * float64(dprob[k])
	}
	for j := range p {
		dst[j] += p[j] * (dprob[j] - float32(dot))
	}
}

// L2Norm returns the Euclidean norm of the tensor.
func L2Norm(t *Tensor) float64 {
	d := t.Data
	s := parallel.ReduceFloat64Arg(len(d), d, func(d []float32, i int) float64 { return float64(d[i]) * float64(d[i]) })
	return math.Sqrt(s)
}

// Clamp limits every element to [lo, hi] in place.
func Clamp(t *Tensor, lo, hi float32) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}
