package tensor

import "math"

// RNG is a small, fast, deterministic generator (splitmix64 core) used for
// all stochastic behaviour in the repository: weight init, synthetic data,
// dropout masks, predictor noise augmentation. Using our own generator keeps
// every experiment reproducible from a single seed and independent of Go
// runtime changes to math/rand.
type RNG struct {
	state uint64
	// Box-Muller cache.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box-Muller with caching).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			f := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * f
			r.hasSpare = true
			return u * f
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r, so subsystems can consume
// randomness without perturbing each other's streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// FillNormal fills t with N(0, std²) samples.
func (r *RNG) FillNormal(t *Tensor, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.Norm() * std)
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// XavierInit fills a [fanOut, fanIn]-shaped weight with the Glorot uniform
// distribution, the default initialization for the transformer layers.
func (r *RNG) XavierInit(t *Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	r.FillUniform(t, -limit, limit)
}
